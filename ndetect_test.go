package ndetect

import (
	"strings"
	"testing"
)

func TestFacadeBuilderFlow(t *testing.T) {
	b := NewBuilder("f")
	b.Input("a")
	b.Input("c")
	b.Input("d")
	b.Gate(And, "g1", "a", "c")
	b.Gate(And, "g2", "c", "d")
	b.Gate(Or, "g3", "g1", "g2")
	b.Output("g3")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	u, err := Analyze(c)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(u.Targets) == 0 || len(u.Untargeted) == 0 {
		t.Fatal("empty universes")
	}
	wc := WorstCase(&u.Universe)
	if len(wc.NMin) != len(u.Untargeted) {
		t.Fatal("result length mismatch")
	}
	res, err := Procedure1(&u.Universe, Procedure1Options{NMax: 3, K: 50, Seed: 1})
	if err != nil {
		t.Fatalf("Procedure1: %v", err)
	}
	// Worst-case/average-case consistency: a fault guaranteed at n must be
	// detected by all K test sets at that n.
	for j := range u.Untargeted {
		for n := 1; n <= 3; n++ {
			if wc.NMin[j] <= n && res.Detected[n-1][j] != res.K {
				t.Fatalf("fault %d guaranteed at n=%d but d=%d < K", j, n, res.Detected[n-1][j])
			}
		}
	}
}

func TestFacadeParseNetlist(t *testing.T) {
	c, err := ParseNetlist(`
circuit t
input a b
output g
gate and g a b
`)
	if err != nil {
		t.Fatalf("ParseNetlist: %v", err)
	}
	if c.NumGates() != 1 {
		t.Fatal("wrong gate count")
	}
	if _, err := ParseNetlist("garbage"); err == nil {
		t.Fatal("ParseNetlist accepted garbage")
	}
}

func TestFacadeKISS2Synthesis(t *testing.T) {
	m, err := ParseKISS2("toy", `
.i 1
.o 1
.r a
0 a a 0
1 a b 1
- b a 1
.e
`)
	if err != nil {
		t.Fatalf("ParseKISS2: %v", err)
	}
	r, err := Synthesize(m, DefaultSynthOptions())
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if r.Circuit.NumInputs() != 2 { // 1 PI + 1 state bit
		t.Fatalf("inputs = %d, want 2", r.Circuit.NumInputs())
	}
}

func TestLoadBenchmark(t *testing.T) {
	u, err := LoadBenchmark("lion")
	if err != nil {
		t.Fatalf("LoadBenchmark: %v", err)
	}
	if u.Size != 16 {
		t.Fatalf("lion |U| = %d, want 16", u.Size)
	}
	if _, err := LoadBenchmark("nope"); err == nil {
		t.Fatal("LoadBenchmark accepted unknown name")
	} else if !strings.Contains(err.Error(), "nope") {
		t.Fatalf("unhelpful error %q", err)
	}
}

func TestBenchmarksRegistry(t *testing.T) {
	all := Benchmarks()
	if len(all) != 35 {
		t.Fatalf("Benchmarks() = %d circuits, want 35", len(all))
	}
	b, ok := BenchmarkByName("dvram")
	if !ok || b.Inputs != 7 {
		t.Fatal("BenchmarkByName(dvram) wrong")
	}
}

func TestNMinPairFacade(t *testing.T) {
	u, err := LoadBenchmark("train4")
	if err != nil {
		t.Fatalf("LoadBenchmark: %v", err)
	}
	g := u.Untargeted[0]
	direct := NMin(g, u.Targets)
	best := Unbounded
	for _, f := range u.Targets {
		if v := NMinPair(g, f); v < best {
			best = v
		}
	}
	if direct != best {
		t.Fatalf("NMin %d != min over NMinPair %d", direct, best)
	}
	contribs := ContributingFaults(g, u.Targets)
	cbest := Unbounded
	for _, pc := range contribs {
		if pc.NMin < cbest {
			cbest = pc.NMin
		}
	}
	if len(contribs) > 0 && cbest != direct {
		t.Fatalf("ContributingFaults min %d != NMin %d", cbest, direct)
	}
}

func TestFacadeDef2EndToEnd(t *testing.T) {
	u, err := LoadBenchmark("lion9")
	if err != nil {
		t.Fatalf("LoadBenchmark: %v", err)
	}
	opts := Procedure1Options{NMax: 3, K: 30, Seed: 2, Definition: Def2, Checker: NewDef2Checker(u)}
	res, err := Procedure1(&u.Universe, opts)
	if err != nil {
		t.Fatalf("Procedure1(Def2): %v", err)
	}
	if res.K != 30 {
		t.Fatal("result K wrong")
	}
}

func TestFacadePartition(t *testing.T) {
	b := NewBuilder("w")
	for _, n := range []string{"a", "c", "d", "e"} {
		b.Input(n)
	}
	b.Gate(And, "g1", "a", "c")
	b.Gate(And, "g2", "d", "e")
	b.Output("g1")
	b.Output("g2")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	parts, err := SplitCircuit(c, PartitionOptions{MaxInputs: 2})
	if err != nil {
		t.Fatalf("SplitCircuit: %v", err)
	}
	if len(parts) != 2 {
		t.Fatalf("parts = %d, want 2", len(parts))
	}
	merged := MergePartNMin([]map[string]int{{"x": 3}, {"x": 1, "y": 2}})
	if merged["x"] != 1 || merged["y"] != 2 {
		t.Fatalf("MergePartNMin = %v", merged)
	}
}

func TestFacadeBenchFormat(t *testing.T) {
	c, err := ParseBench("half", `
		INPUT(a)
		INPUT(b)
		OUTPUT(s)
		OUTPUT(co)
		s = XOR(a, b)
		co = AND(a, b)
	`)
	if err != nil {
		t.Fatalf("ParseBench: %v", err)
	}
	if c.NumInputs() != 2 || c.NumOutputs() != 2 {
		t.Fatalf("half adder interface = %d/%d", c.NumInputs(), c.NumOutputs())
	}
	names := EmbeddedBenchNames()
	if len(names) == 0 {
		t.Fatal("no embedded bench samples")
	}
	if _, err := EmbeddedBenchCircuit("c17"); err != nil {
		t.Fatalf("EmbeddedBenchCircuit(c17): %v", err)
	}
}

// TestFacadeAnalyzePartitioned runs the end-to-end large-circuit pipeline
// through the public API: a >60-input .bench sample that Analyze must
// reject, analysed part by part instead.
func TestFacadeAnalyzePartitioned(t *testing.T) {
	c, err := EmbeddedBenchCircuit("w64")
	if err != nil {
		t.Fatalf("EmbeddedBenchCircuit(w64): %v", err)
	}
	if _, err := Analyze(c); err == nil {
		t.Fatal("Analyze accepted a 64-input circuit; MaxInputs guard gone")
	}
	res, err := AnalyzePartitioned(c, PartitionOptions{MaxInputs: 16}, 0)
	if err != nil {
		t.Fatalf("AnalyzePartitioned: %v", err)
	}
	if len(res.Parts) < 2 || len(res.Merged) == 0 {
		t.Fatalf("partitioned result too small: %d parts, %d merged faults", len(res.Parts), len(res.Merged))
	}
	wc := WorstCaseWorkers(&Universe{Size: 4, Targets: []Fault{}, Untargeted: []Fault{}}, 2)
	if len(wc.NMin) != 0 {
		t.Fatal("WorstCaseWorkers facade broken")
	}
}

func TestTestSetFacade(t *testing.T) {
	ts := NewTestSet(8)
	ts.Add(1)
	ts.Add(5)
	if ts.Len() != 2 {
		t.Fatal("TestSet facade broken")
	}
}
