module ndetect

go 1.22
