// Partitioned analysis: the paper's exhaustive method only works for
// circuits with few inputs; Section 4 suggests partitioning a larger design
// into subcircuits and analysing each. This example builds a 24-input
// circuit (too wide to enumerate directly at a reasonable cost), splits it
// into output cones, analyses every part, and merges the verdicts.
//
// Run with:
//
//	go run ./examples/partition
package main

import (
	"fmt"
	"log"

	"ndetect"
)

func main() {
	c := buildWide()
	fmt.Printf("circuit %s: %s\n", c.Name, c.ComputeStats())
	fmt.Printf("exhaustive analysis would need 2^%d = %d vectors — partitioning instead\n\n",
		c.NumInputs(), c.VectorSpaceSize())

	parts, err := ndetect.SplitCircuit(c, ndetect.PartitionOptions{MaxInputs: 10})
	if err != nil {
		log.Fatal(err)
	}

	var perPart []map[string]int
	for i, p := range parts {
		u, err := ndetect.Analyze(p.Circuit)
		if err != nil {
			log.Fatal(err)
		}
		wc := ndetect.WorstCase(&u.Universe)
		fmt.Printf("part %d: outputs %v, %d inputs (|U| = %d), |G| = %d, worst-case coverage at n=10: %.2f%%\n",
			i, p.Outputs, p.Circuit.NumInputs(), u.Size, len(u.Untargeted), 100*wc.CoverageAt(10))

		m := make(map[string]int, len(u.Untargeted))
		for j, g := range u.Untargeted {
			m[g.Name] = wc.NMin[j]
		}
		perPart = append(perPart, m)
	}

	merged := ndetect.MergePartNMin(perPart)
	hist := map[string]int{"n=1": 0, "2≤n≤10": 0, "n>10": 0}
	worstName, worstN := "", 0
	for name, v := range merged {
		switch {
		case v == 1:
			hist["n=1"]++
		case v <= 10:
			hist["2≤n≤10"]++
		default:
			hist["n>10"]++
		}
		if v != ndetect.Unbounded && v > worstN {
			worstName, worstN = name, v
		}
	}
	fmt.Printf("\nmerged over %d distinct bridging faults:\n", len(merged))
	fmt.Printf("  guaranteed by any 1-detection test set: %d\n", hist["n=1"])
	fmt.Printf("  guaranteed within n ≤ 10:               %d\n", hist["2≤n≤10"])
	fmt.Printf("  needing n > 10:                         %d\n", hist["n>10"])
	fmt.Printf("  hardest: %s with nmin = %d\n", worstName, worstN)
	fmt.Println("\nnote: per-part guarantees are an approximation (each part sees a projection")
	fmt.Println("of the input space and only its own outputs); see the partition package docs.")
}

// buildWide makes a 24-input, 6-output circuit of three interleaved
// comparator/parity blocks, with enough shared structure that cones
// overlap but each stays under 10 inputs.
func buildWide() *ndetect.Circuit {
	b := ndetect.NewBuilder("wide24")
	for i := 0; i < 24; i++ {
		b.Input(in(i))
	}
	for blk := 0; blk < 3; blk++ {
		base := blk * 8
		// eq: 4-bit equality comparator between the block's two nibbles.
		for k := 0; k < 4; k++ {
			b.Gate(ndetect.Xnor, sig("eq", blk, k), in(base+k), in(base+4+k))
		}
		b.Gate(ndetect.And, sig("alleq", blk, 0),
			sig("eq", blk, 0), sig("eq", blk, 1), sig("eq", blk, 2), sig("eq", blk, 3))
		// par: parity of the first nibble.
		b.Gate(ndetect.Xor, sig("par", blk, 0), in(base), in(base+1), in(base+2), in(base+3))
		// Outputs mix the block with its neighbour's parity input bit.
		neighbour := in(((blk + 1) % 3) * 8)
		b.Gate(ndetect.Or, sig("oeq", blk, 0), sig("alleq", blk, 0), neighbour)
		b.Gate(ndetect.And, sig("opar", blk, 0), sig("par", blk, 0), neighbour)
		b.Output(sig("oeq", blk, 0))
		b.Output(sig("opar", blk, 0))
	}
	c, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func in(i int) string                 { return fmt.Sprintf("x%02d", i) }
func sig(p string, blk, k int) string { return fmt.Sprintf("%s_%d_%d", p, blk, k) }
