// Definition 2: the paper's Section 4 shows that counting only
// "sufficiently different" tests as repeated detections (Definition 2)
// makes n-detection test sets better at catching untargeted faults without
// growing n. This example reproduces that comparison on one benchmark.
//
// Two tests t_i, t_j count as distinct detections of a fault f only if the
// partial vector t_ij — specified where t_i and t_j agree, X elsewhere —
// does NOT already detect f: if the shared bits alone detect the fault,
// the two tests exercise it the same way.
//
// Run with:
//
//	go run ./examples/definition2 [circuit]
package main

import (
	"fmt"
	"log"
	"os"

	"ndetect"
)

var thresholds = []float64{1.0, 0.9, 0.8, 0.6, 0.4, 0.2, 0.0}

func main() {
	name := "keyb"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	u, err := ndetect.LoadBenchmark(name)
	if err != nil {
		log.Fatal(err)
	}
	wc := ndetect.WorstCase(&u.Universe)
	idx := wc.IndicesAtLeast(11)
	if len(idx) == 0 {
		log.Fatalf("%s has no faults with nmin ≥ 11; try dvram or s1a", name)
	}
	if len(idx) > 300 {
		idx = idx[:300]
	}
	sub := u.SubsetUntargeted(idx)
	fmt.Printf("circuit %s: comparing Definitions 1 and 2 on %d faults not guaranteed at n = 10\n\n",
		name, len(idx))

	const K = 200
	opts := ndetect.Procedure1Options{NMax: 10, K: K, Seed: 11}
	r1, err := ndetect.Procedure1(sub, opts)
	if err != nil {
		log.Fatal(err)
	}

	opts.Definition = ndetect.Def2
	opts.Checker = ndetect.NewDef2Checker(u)
	r2, err := ndetect.Procedure1(sub, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("faults with p(10,g) at or above each threshold (K = %d random test sets):\n\n", K)
	fmt.Printf("  %-12s", "p(10,g) ≥")
	for _, th := range thresholds {
		fmt.Printf(" %6.1f", th)
	}
	fmt.Println()
	printRow("Definition 1", countsAt(r1, len(idx)))
	printRow("Definition 2", countsAt(r2, len(idx)))

	var mean1, mean2 float64
	for j := range sub.Untargeted {
		mean1 += r1.P(10, j)
		mean2 += r2.P(10, j)
	}
	mean1 /= float64(len(idx))
	mean2 /= float64(len(idx))
	fmt.Printf("\nmean detection probability: %.3f (Def 1) vs %.3f (Def 2)\n", mean1, mean2)
	fmt.Printf("expected escapes:           %.1f (Def 1) vs %.1f (Def 2)\n",
		r1.ExpectedEscapes(10), r2.ExpectedEscapes(10))
	fmt.Printf("mean 10-detection set size: %.1f (Def 1) vs %.1f (Def 2) vectors\n",
		r1.MeanSetSize(10), r2.MeanSetSize(10))
	fmt.Println("\nDefinition 2 buys coverage with test-set diversity instead of a larger n —")
	fmt.Println("the paper's recommended lever when the worst-case tail makes raising n futile.")
}

func countsAt(r *ndetect.Procedure1Result, total int) []int {
	out := make([]int, len(thresholds))
	for j := 0; j < total; j++ {
		p := r.P(10, j)
		for i, th := range thresholds {
			if p >= th-1e-12 {
				out[i]++
			}
		}
	}
	return out
}

func printRow(label string, counts []int) {
	fmt.Printf("  %-12s", label)
	for _, c := range counts {
		fmt.Printf(" %6d", c)
	}
	fmt.Println()
}
