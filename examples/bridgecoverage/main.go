// Bridge coverage: the paper's motivating question on a real benchmark —
// how much four-way bridging fault coverage does a bound on n cost, and how
// far would n have to rise to close the gap?
//
// This walks the dvram surrogate (the paper's heaviest-tailed circuit)
// through the worst-case coverage curve, the hardest faults, and the
// average-case escape estimate.
//
// Run with:
//
//	go run ./examples/bridgecoverage [circuit]
package main

import (
	"fmt"
	"log"
	"os"

	"ndetect"
)

func main() {
	name := "dvram"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	u, err := ndetect.LoadBenchmark(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit %s: %s\n", name, u.Circuit.ComputeStats())
	fmt.Printf("|F| = %d collapsed stuck-at targets, |G| = %d bridging faults\n\n",
		len(u.Targets), len(u.Untargeted))

	wc := ndetect.WorstCase(&u.Universe)

	// Question 1 (paper §1): how much untargeted coverage is missed by
	// restricting n? The guaranteed-coverage curve answers it per n.
	fmt.Println("guaranteed bridging coverage of an ARBITRARY n-detection test set:")
	prev := -1.0
	for _, n := range []int{1, 2, 3, 5, 10, 20, 50, 100, 200, 500} {
		cov := 100 * wc.CoverageAt(n)
		marker := ""
		if cov == prev {
			marker = "  (no gain)"
		}
		fmt.Printf("  n = %-4d → %6.2f%%%s\n", n, cov, marker)
		prev = cov
		if cov >= 100 {
			break
		}
	}

	// Question 2: how much higher must n go to lose nothing?
	maxN := wc.MaxFinite()
	unbounded := 0
	for _, v := range wc.NMin {
		if v == ndetect.Unbounded {
			unbounded++
		}
	}
	fmt.Printf("\nto guarantee every detectable bridging fault: n ≥ %d", maxN)
	if unbounded > 0 {
		fmt.Printf(" — and %d faults have NO guaranteeing n at all", unbounded)
	}
	fmt.Println()
	fmt.Println("(the paper's conclusion: increasing n is not an effective way to chase the tail)")

	// The tail in detail: the hardest faults and why they are hard.
	fmt.Println("\nhardest five faults:")
	idx := wc.IndicesAtLeast(11)
	sortByNMinDesc(idx, wc.NMin)
	for i, j := range idx {
		if i >= 5 {
			break
		}
		g := u.Untargeted[j]
		contribs := ndetect.ContributingFaults(g, u.Targets)
		minN := 0
		for _, pc := range contribs {
			if minN == 0 || pc.N < minN {
				minN = pc.N
			}
		}
		fmt.Printf("  %-26s nmin = %-5d |T(g)| = %-4d overlapping targets: %d (smallest N(f) among them: %d)\n",
			g.Name, wc.NMin[j], g.T.Count(), len(contribs), minN)
	}

	// Average-case: of the faults not guaranteed at n = 10, how many does a
	// RANDOM 10-detection test set actually catch?
	if len(idx) == 0 {
		fmt.Println("\nevery fault is guaranteed at n ≤ 10; no average-case tail to analyse")
		return
	}
	cap := 400
	if len(idx) < cap {
		cap = len(idx)
	}
	sub := u.SubsetUntargeted(idx[:cap])
	res, err := ndetect.Procedure1(sub, ndetect.Procedure1Options{NMax: 10, K: 400, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naverage case over the %d hardest faults (K = 400 random 10-detection test sets):\n", cap)
	certain, likely, coinflip, unlikely := 0, 0, 0, 0
	for j := range sub.Untargeted {
		switch p := res.P(10, j); {
		case p >= 0.999:
			certain++
		case p >= 0.8:
			likely++
		case p >= 0.4:
			coinflip++
		default:
			unlikely++
		}
	}
	fmt.Printf("  always detected: %d   likely (p≥0.8): %d   toss-up: %d   unlikely (p<0.4): %d\n",
		certain, likely, coinflip, unlikely)
	fmt.Printf("  expected number of these faults escaping a random 10-detection test set: %.1f\n",
		res.ExpectedEscapes(10))
}

func sortByNMinDesc(idx []int, nmin []int) {
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && nmin[idx[j]] > nmin[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}
