// Quickstart: build a small circuit, compute both of the paper's analyses,
// and walk through the arithmetic of the worst-case bound the way the
// paper's Table 1 does.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ndetect"
)

func main() {
	// A 4-input circuit in the spirit of the paper's Figure 1: two AND
	// gates feeding an OR, with input i2 fanning out.
	b := ndetect.NewBuilder("quickstart")
	b.Input("i1")
	b.Input("i2")
	b.Input("i3")
	b.Input("i4")
	b.Gate(ndetect.And, "g9", "i1", "i2")
	b.Gate(ndetect.And, "g10", "i2", "i3", "i4")
	b.Gate(ndetect.Or, "g11", "g9", "g10")
	b.Output("g11")
	c, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Analyze builds the paper's two fault universes over the exhaustive
	// input space U = {0..15}: F = collapsed stuck-at faults (targets),
	// G = four-way bridging faults (untargeted).
	u, err := ndetect.Analyze(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit %s: %s\n", c.Name, c.ComputeStats())
	fmt.Printf("|F| = %d target faults, |G| = %d untargeted faults\n\n",
		len(u.Targets), len(u.Untargeted))

	// ---- Worst-case analysis (paper Section 2) -------------------------
	wc := ndetect.WorstCase(&u.Universe)
	fmt.Println("worst-case guarantees:")
	for j, g := range u.Untargeted {
		nm := wc.NMin[j]
		if nm == ndetect.Unbounded {
			fmt.Printf("  %-22s no n-detection test set is ever guaranteed to detect it\n", g.Name)
			continue
		}
		fmt.Printf("  %-22s guaranteed by every n-detection test set with n ≥ %d\n", g.Name, nm)
	}

	// The Table 1 view for the hardest bridge: which target faults
	// constrain it, and how nmin(g) = min over f of N(f) − M(g,f) + 1.
	hardest, hv := 0, 0
	for j, v := range wc.NMin {
		if v != ndetect.Unbounded && v > hv {
			hardest, hv = j, v
		}
	}
	g := u.Untargeted[hardest]
	fmt.Printf("\nTable-1 style breakdown for %s (T(g) = %s):\n", g.Name, g.T)
	fmt.Printf("  %-14s %-6s %-8s %s\n", "target f", "N(f)", "M(g,f)", "nmin(g,f)")
	for _, pc := range ndetect.ContributingFaults(g, u.Targets) {
		fmt.Printf("  %-14s %-6d %-8d %d\n", pc.Name, pc.N, pc.M, pc.NMin)
	}
	fmt.Printf("  → nmin(g) = %d\n\n", wc.NMin[hardest])

	// ---- Average-case analysis (paper Section 3) -----------------------
	// Procedure 1 builds K random n-detection test sets per n and counts
	// how many detect each untargeted fault.
	res, err := ndetect.Procedure1(&u.Universe, ndetect.Procedure1Options{
		NMax: 4, K: 1000, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("average-case detection probabilities p(n, g):")
	fmt.Printf("  %-22s", "fault")
	for n := 1; n <= 4; n++ {
		fmt.Printf("  n=%d  ", n)
	}
	fmt.Println()
	for j, g := range u.Untargeted {
		fmt.Printf("  %-22s", g.Name)
		for n := 1; n <= 4; n++ {
			fmt.Printf(" %.3f", res.P(n, j))
		}
		fmt.Println()
	}
	fmt.Printf("\nmean test set sizes: n=1 → %.1f vectors, n=4 → %.1f vectors\n",
		res.MeanSetSize(1), res.MeanSetSize(4))
}
