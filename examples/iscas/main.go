// ISCAS .bench frontend + partitioned pipeline: load a real-format
// benchmark circuit, run the paper's analysis where the input space allows
// it, and fall back to the Section 4 partitioned pipeline where it does
// not.
//
// c17 (5 inputs) is analysed exhaustively; w64 (64 inputs — |U| = 2^64
// vectors, far beyond any exhaustive pass) goes through
// AnalyzePartitioned: Split into ≤16-input output cones, per-part
// worst-case analysis in parallel, merged verdicts.
//
// Run with:
//
//	go run ./examples/iscas
package main

import (
	"fmt"
	"log"

	"ndetect"
)

func main() {
	// Small ISCAS circuit: the full exhaustive analysis applies.
	c17, err := ndetect.EmbeddedBenchCircuit("c17")
	if err != nil {
		log.Fatal(err)
	}
	u, err := ndetect.Analyze(c17)
	if err != nil {
		log.Fatal(err)
	}
	wc := ndetect.WorstCase(&u.Universe)
	fmt.Printf("c17: %s\n", c17.ComputeStats())
	fmt.Printf("  |F| = %d stuck-at targets, |G| = %d bridging faults\n", len(u.Targets), len(u.Untargeted))
	fmt.Printf("  every bridge guaranteed by any %d-detection test set\n\n", wc.MaxFinite())

	// Wide ISCAS-style circuit: exhaustive analysis is impossible (2^64
	// vectors), so partition into output cones and analyse per part.
	w64, err := ndetect.EmbeddedBenchCircuit("w64")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("w64: %s\n", w64.ComputeStats())
	if _, err := ndetect.Analyze(w64); err != nil {
		fmt.Printf("  full analysis rejected as expected: %v\n", err)
	}

	res, err := ndetect.AnalyzePartitioned(w64, ndetect.PartitionOptions{MaxInputs: 16}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  partitioned into %d parts (input limit %d):\n", len(res.Parts), res.MaxInputs)
	for i, a := range res.Parts {
		fmt.Printf("    part %d: outputs %v, %d inputs, |G| = %d, coverage at n=10: %.2f%%\n",
			i, a.Part.Outputs, a.Stats.Inputs, a.Untargeted, 100*a.CoverageAt(10))
	}
	fmt.Printf("  merged: %d distinct bridging faults, %.2f%% guaranteed within some part at n ≤ 10\n",
		len(res.Merged), 100*res.MergedCoverageAt(10))
	fmt.Printf("  largest finite per-part nmin: %d\n", res.MergedMaxFinite())
	fmt.Println("\nnote: per-part guarantees are relative to each part's own input space and")
	fmt.Println("outputs — exact for the part, conservative for the whole (DESIGN.md §8).")
}
