// Package ndetect reproduces "Worst-Case and Average-Case Analysis of
// n-Detection Test Sets" (Pomeranz & Reddy, DATE 2005): given a
// combinational circuit, it computes
//
//   - the worst-case guarantee nmin(g) for every untargeted fault g — the
//     smallest n such that EVERY n-detection test set for the single
//     stuck-at faults is guaranteed to detect g — and
//   - the average-case probability p(n,g) that an arbitrary n-detection
//     test set detects g, estimated over K random test sets built with the
//     paper's Procedure 1, under Definition 1 (plain detection counting) or
//     the stricter Definition 2 (similarity-filtered counting).
//
// The target faults F are the circuit's collapsed single stuck-at faults;
// the untargeted faults G are the detectable non-feedback four-way bridging
// faults between outputs of multi-input gates, exactly as in the paper.
//
// # Quick start
//
//	c, _ := ndetect.ParseNetlist(netlistText)
//	u, _ := ndetect.Analyze(c)
//	wc := ndetect.WorstCase(&u.Universe)
//	fmt.Println(wc.CoverageAt(10)) // fraction of G guaranteed by any 10-detection set
//
//	res, _ := ndetect.Procedure1(&u.Universe, ndetect.Procedure1Options{NMax: 10, K: 1000})
//	fmt.Println(res.P(10, 0)) // detection probability of fault 0
//
// Benchmark circuits (surrogates for the paper's MCNC suite) are available
// via Benchmarks and LoadBenchmark; see DESIGN.md for what is surrogate and
// why. The cmd/paper tool regenerates every table and figure of the paper.
package ndetect

import (
	"io"

	"ndetect/internal/bench"
	"ndetect/internal/circuit"
	"ndetect/internal/fault"
	"ndetect/internal/kiss"
	core "ndetect/internal/ndetect"
	"ndetect/internal/partition"
	"ndetect/internal/sim"
	"ndetect/internal/synth"
	"ndetect/internal/testgen"
)

// MaxExhaustiveInputs is the widest circuit Analyze accepts: the streaming
// engine keeps only block-sized scratch plus the per-fault T-sets, so the
// bound is set by result memory and simulation time, not by materialized
// per-node universes. Wider circuits go through AnalyzePartitioned.
const MaxExhaustiveInputs = sim.MaxInputs

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// Circuit is a gate-level combinational netlist.
	Circuit = circuit.Circuit
	// Builder incrementally constructs a Circuit.
	Builder = circuit.Builder
	// Kind is a gate kind (And, Or, Not, ...).
	Kind = circuit.Kind
	// STG is a symbolic finite-state machine parsed from KISS2.
	STG = kiss.STG
	// SynthOptions controls FSM-to-netlist synthesis.
	SynthOptions = synth.Options
	// SynthResult is a synthesized circuit plus its interface mapping.
	SynthResult = synth.Result
	// StuckAt is a single stuck-at fault.
	StuckAt = fault.StuckAt
	// Bridge is a four-way dominance bridging fault.
	Bridge = fault.Bridge
	// Fault is a named fault with its exhaustive detection set T(f).
	Fault = core.Fault
	// Universe is a target set F and untargeted set G over a vector space.
	Universe = core.Universe
	// CircuitUniverse binds a Universe to the circuit it came from.
	CircuitUniverse = core.CircuitUniverse
	// WorstCaseResult holds nmin(g) for every untargeted fault.
	WorstCaseResult = core.WorstCaseResult
	// PairContribution is one row of the paper's Table 1.
	PairContribution = core.PairContribution
	// TestSet is an ordered duplicate-free set of input vectors.
	TestSet = core.TestSet
	// Procedure1Options configures the random test set generator.
	Procedure1Options = core.Procedure1Options
	// Progress observes coarse stage transitions of a long-running
	// analysis (stage name, done, total). It never influences results.
	Progress = core.Progress
	// AnalyzeOptions configures AnalyzeWith: a worker budget and an
	// optional progress hook, neither part of the result identity.
	AnalyzeOptions = core.AnalyzeOptions
	// Procedure1Result holds detection statistics over the K runs.
	Procedure1Result = core.Procedure1Result
	// Definition selects Definition 1 or Definition 2 counting.
	Definition = core.Definition
	// DistinctChecker is Definition 2's similarity oracle.
	DistinctChecker = core.DistinctChecker
	// Benchmark is one circuit of the embedded benchmark suite.
	Benchmark = bench.Benchmark
)

// Gate kinds, re-exported for Builder users.
const (
	And  = circuit.And
	Nand = circuit.Nand
	Or   = circuit.Or
	Nor  = circuit.Nor
	Xor  = circuit.Xor
	Xnor = circuit.Xnor
	Not  = circuit.Not
	Buf  = circuit.Buf
)

// Definitions of "detected n times" (paper Section 4).
const (
	Def1 = core.Def1
	Def2 = core.Def2
)

// Unbounded is the nmin value of faults no n-detection test set is ever
// guaranteed to detect.
const Unbounded = core.Unbounded

// NewBuilder starts a new circuit description.
func NewBuilder(name string) *Builder { return circuit.NewBuilder(name) }

// ParseNetlist reads a circuit in the text netlist format (see
// internal/circuit's format documentation: circuit/input/output/gate/const
// statements).
func ParseNetlist(src string) (*Circuit, error) { return circuit.ParseString(src) }

// ReadNetlist reads a circuit from a reader.
func ReadNetlist(r io.Reader) (*Circuit, error) { return circuit.Parse(r) }

// ParseBench reads a circuit in the ISCAS-85/89 .bench format
// (INPUT/OUTPUT declarations and `out = GATE(in, ...)` statements).
// ISCAS-89 DFFs are stripped to the full-scan combinational view: each
// flip-flop's output becomes a pseudo primary input and its data signal a
// pseudo primary output. The name is the circuit name to record (.bench
// files carry none).
func ParseBench(name, src string) (*Circuit, error) { return circuit.ParseBenchString(name, src) }

// ReadBench reads a .bench circuit from a reader.
func ReadBench(name string, r io.Reader) (*Circuit, error) { return circuit.ParseBench(name, r) }

// EmbeddedBenchNames lists the embedded ISCAS .bench samples (c17, s27,
// and the 64-input partition workload w64).
func EmbeddedBenchNames() []string { return circuit.EmbeddedBenchNames() }

// EmbeddedBenchCircuit parses one embedded .bench sample by name.
func EmbeddedBenchCircuit(name string) (*Circuit, error) { return circuit.EmbeddedBench(name) }

// ParseKISS2 reads a KISS2 finite-state machine.
func ParseKISS2(name, src string) (*STG, error) { return kiss.ParseString(name, src) }

// ReadKISS2 reads a KISS2 machine from a reader.
func ReadKISS2(name string, r io.Reader) (*STG, error) { return kiss.Parse(name, r) }

// Synthesize builds the combinational next-state/output logic of a machine.
func Synthesize(m *STG, opts SynthOptions) (*SynthResult, error) {
	return synth.Synthesize(m, opts)
}

// Analyze builds the paper's experimental setup for a circuit: F = collapsed
// stuck-at faults, G = detectable non-feedback four-way bridging faults
// between outputs of multi-input gates, with all T-sets computed by
// streaming the exhaustive input space in word blocks through the compiled
// circuit (one worker per CPU; see AnalyzeParallel). Circuits are accepted
// up to MaxExhaustiveInputs inputs, subject to the result-memory budget
// check described in DESIGN.md §9.
func Analyze(c *Circuit) (*CircuitUniverse, error) { return core.FromCircuit(c) }

// AnalyzeParallel is Analyze with an explicit worker count for the
// exhaustive simulation and T-set construction: 0 means one worker per CPU,
// 1 forces the serial path. The universe built is identical for every
// worker count; only wall-clock time changes. See DESIGN.md §5.
func AnalyzeParallel(c *Circuit, workers int) (*CircuitUniverse, error) {
	return core.FromCircuitWorkers(c, workers)
}

// AnalyzeWith is Analyze with explicit options: a worker budget and an
// optional progress hook observing the construction stages (simulate,
// stuck-at T-sets, bridge T-sets). Long-lived callers — the ndetectd
// serving layer is one — use the hook for live job status; it never
// changes the universe built.
func AnalyzeWith(c *Circuit, opts AnalyzeOptions) (*CircuitUniverse, error) {
	return core.FromCircuitOptions(c, opts)
}

// FaultModels lists the registered fault-model IDs in sorted order. The
// default model — the paper's setup, DefaultFaultModel — is always
// present; "transition" (two-pattern transition faults) and "msa2"
// (pairwise double stuck-at faults) ship with the package.
func FaultModels() []string { return fault.ModelIDs() }

// DefaultFaultModel is the registry's default model ID: collapsed single
// stuck-at targets with four-way bridging untargeted faults, the paper's
// experimental setup.
const DefaultFaultModel = fault.DefaultModelID

// AnalyzeModel is AnalyzeWith under an explicit fault model: the target
// and untargeted sets — and the test-index space their T-sets range over
// — come from the registered model instead of the paper's stuck-at +
// bridging default ("" selects the default; see FaultModels). For the
// "transition" model the universe indexes ordered two-pattern tests
// (v1, v2) ∈ U×U, so Universe.Size is |U|²; Definition 2 requires single
// stuck-at targets and is unavailable under models without them.
func AnalyzeModel(c *Circuit, model string, opts AnalyzeOptions) (*CircuitUniverse, error) {
	m, err := fault.Resolve(model)
	if err != nil {
		return nil, err
	}
	return core.BuildUniverse(c, m, opts)
}

// StuckAtCollapseRatio reports the fault-collapsing ratio for a circuit:
// collapsed stuck-at faults over the uncollapsed 2·(number of lines)
// total. The paper's Table 2 reports |F| after collapsing; this exposes
// how much the equivalence-class collapse shrank it.
func StuckAtCollapseRatio(c *Circuit) float64 { return fault.CollapseRatio(c) }

// WorstCase runs the paper's Section 2 analysis: nmin(g) for every
// untargeted fault, with one worker per CPU.
func WorstCase(u *Universe) *WorstCaseResult { return core.WorstCase(u) }

// WorstCaseWorkers is WorstCase with an explicit worker bound (0 = one per
// CPU, 1 = the exact serial path). The result is identical for every
// worker count.
func WorstCaseWorkers(u *Universe, workers int) *WorstCaseResult {
	return core.WorstCaseWorkers(u, workers)
}

// NMin computes nmin(g) for a single fault against a target set.
func NMin(g Fault, targets []Fault) int { return core.NMin(g, targets) }

// NMinPair computes nmin(g,f) = N(f) − M(g,f) + 1.
func NMinPair(g, f Fault) int { return core.NMinPair(g, f) }

// ContributingFaults lists F(g) with per-fault nmin(g,f) — the paper's
// Table 1 for one untargeted fault.
func ContributingFaults(g Fault, targets []Fault) []PairContribution {
	return core.ContributingFaults(g, targets)
}

// Procedure1 constructs K random n-detection test sets for n = 1..NMax and
// records which untargeted faults each detects (the paper's Section 3).
func Procedure1(u *Universe, opts Procedure1Options) (*Procedure1Result, error) {
	return core.Procedure1(u, opts)
}

// NewDef2Checker builds Definition 2's similarity oracle for a circuit
// universe, backed by memoized 3-valued fault simulation.
func NewDef2Checker(u *CircuitUniverse) DistinctChecker {
	return core.NewCircuitCheckerFor(u)
}

// NewTestSet returns an empty test set over a universe of the given size.
func NewTestSet(size int) *TestSet { return core.NewTestSet(size) }

// Benchmarks returns the embedded benchmark suite (surrogates for the
// paper's MCNC circuits; see DESIGN.md §4).
func Benchmarks() []*Benchmark { return bench.All() }

// BenchmarkByName looks up one benchmark.
func BenchmarkByName(name string) (*Benchmark, bool) { return bench.ByName(name) }

// DefaultSynthOptions returns the synthesis options the experiment suite
// uses (multi-level netlists, fanin cap 4).
func DefaultSynthOptions() SynthOptions { return bench.DefaultOptions() }

// LoadBenchmark synthesizes a benchmark with the default options and builds
// its fault universe — the one-call path from a circuit name to both
// analyses.
func LoadBenchmark(name string) (*CircuitUniverse, error) {
	b, ok := bench.ByName(name)
	if !ok {
		return nil, &UnknownBenchmarkError{Name: name}
	}
	r, err := b.SynthesizeDefault()
	if err != nil {
		return nil, err
	}
	return core.FromCircuit(r.Circuit)
}

// GenerateCompact builds a compact n-detection test set deterministically:
// greedy deficit-driven selection followed by reverse-order compaction.
// Procedure1 studies arbitrary n-detection test sets; GenerateCompact
// produces the small ones a test generator would actually emit.
func GenerateCompact(u *Universe, n int) *TestSet {
	return testgen.GreedyCompact(u, n)
}

// TestSetLowerBound returns a lower bound on the size of any n-detection
// test set for the universe.
func TestSetLowerBound(u *Universe, n int) int {
	return testgen.LowerBound(u, n)
}

// UntargetedCoverage counts how many of the given untargeted faults the
// test set detects.
func UntargetedCoverage(ts *TestSet, untargeted []Fault) int {
	return testgen.Coverage(ts, untargeted)
}

// Part is one subcircuit produced by SplitCircuit.
type Part = partition.Part

// PartitionOptions controls SplitCircuit and AnalyzePartitioned.
type PartitionOptions = partition.Options

// PartAnalysis is one part's summarized worst-case analysis.
type PartAnalysis = partition.PartAnalysis

// PartitionedResult is the outcome of AnalyzePartitioned: per-part
// summaries in Split order plus the merged per-fault nmin map.
type PartitionedResult = partition.AnalysisResult

// AnalyzePartitioned runs the paper's Section 4 workaround end to end for
// circuits too wide for exhaustive analysis: Split into ≤ MaxInputs-input
// output cones, exhaustive worst-case analysis per part across a bounded
// worker pool (the budget is split between parts and their inner
// simulation, DESIGN.md §5), and MergeNMin over the per-part verdicts.
// The result is identical for every worker count.
func AnalyzePartitioned(c *Circuit, opts PartitionOptions, workers int) (*PartitionedResult, error) {
	return partition.AnalyzeParts(c, opts, workers)
}

// SplitCircuit partitions a circuit into output-cone subcircuits whose
// input counts stay within the limit, the paper's Section 4 workaround for
// designs too large for exhaustive analysis. Each part can be passed to
// Analyze independently; MergePartNMin combines per-part worst-case results.
func SplitCircuit(c *Circuit, opts PartitionOptions) ([]*Part, error) {
	return partition.Split(c, opts)
}

// MergePartNMin merges per-part nmin maps (keyed by fault name): the
// smallest value per fault wins.
func MergePartNMin(perPart []map[string]int) map[string]int {
	return partition.MergeNMin(perPart)
}

// UnknownBenchmarkError reports a LoadBenchmark miss.
type UnknownBenchmarkError struct{ Name string }

func (e *UnknownBenchmarkError) Error() string {
	return "ndetect: unknown benchmark " + e.Name
}
