package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Server-Sent Events framing (the wire format of GET /jobs/{id}/events,
// DESIGN.md §14): each event is an optional "id:" line, an optional
// "event:" line, one "data:" line per payload line, and a blank
// terminator. Payloads are JSON documents, so in practice one data line
// per event; multi-line payloads are framed correctly anyway.

// SSEContentType is the media type of an event stream response.
const SSEContentType = "text/event-stream"

// WriteSSEEvent writes one SSE frame. id < 0 omits the id line; event ""
// omits the event line (the stream's default event type).
func WriteSSEEvent(w io.Writer, id int64, event string, data []byte) error {
	var b strings.Builder
	if id >= 0 {
		fmt.Fprintf(&b, "id: %d\n", id)
	}
	if event != "" {
		fmt.Fprintf(&b, "event: %s\n", event)
	}
	for _, line := range strings.Split(string(data), "\n") {
		fmt.Fprintf(&b, "data: %s\n", line)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// SSEHeaders stamps the response headers of an event stream: the
// content type, no-store caching (a stream is never reusable), and a
// keep-alive connection.
func SSEHeaders(h http.Header) {
	h.Set("Content-Type", SSEContentType)
	h.Set("Cache-Control", "no-store")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no") // proxies must not buffer live streams
}
