package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Metrics primitives: lock-cheap atomics recorded on the serving hot
// path, rendered on demand into the Prometheus text exposition format
// (version 0.0.4) with HELP/TYPE headers, stable order and no duplicate
// names — the properties the /metrics golden test pins.

// Gauge is an instantaneous value backed by one atomic.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default latency histogram bounds in seconds:
// half-millisecond resolution at the fast end (cache probes, store I/O)
// up to minutes (cold universe constructions on wide circuits).
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// Histogram is a fixed-bucket latency histogram. Observations are two
// atomic adds and one atomic float accumulation — cheap enough for
// per-progress-event call sites. The zero Histogram is not usable; use
// NewHistogram.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []atomic.Uint64
	sum    atomicFloat
	count  atomic.Uint64
}

// NewHistogram creates a histogram over the given ascending upper bounds
// (nil means DefBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value (seconds for latency histograms).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// HistogramSnapshot is a consistent-enough copy of a histogram for
// rendering: per-bucket cumulative counts (ending with +Inf), the total
// count and the observation sum. The JSON form is what the
// ndetect.load/v1 document embeds per workload class, so SLO tooling can
// re-derive any quantile from the raw buckets (load.go).
type HistogramSnapshot struct {
	Bounds     []float64 `json:"bounds"`     // upper bounds, ascending, excluding +Inf
	Cumulative []uint64  `json:"cumulative"` // len(Bounds)+1, cumulative, last = Count
	Count      uint64    `json:"count"`
	Sum        float64   `json:"sum"`
}

// Quantile estimates the q-quantile (0 < q <= 1) of the observed
// distribution by linear interpolation within the winning bucket. The
// estimate is an upper bound in the usual histogram sense: every
// observation is attributed to its bucket's upper edge range, so the
// returned value never undershoots the true quantile by more than one
// bucket width (and p100 is exactly the +Inf bucket's lower edge when
// observations landed there). Observations in the +Inf overflow bucket
// clamp to the highest finite bound — a q that lands there reports that
// bound, the largest value the histogram can still resolve. NaN when the
// histogram is empty or q is outside (0, 1].
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || q <= 0 || q > 1 || len(s.Cumulative) == 0 {
		return math.NaN()
	}
	// rank is the 1-based index of the target observation; ceil keeps
	// q=1 at the final observation and tiny q at the first.
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	i := 0
	for i < len(s.Cumulative) && s.Cumulative[i] < rank {
		i++
	}
	if i >= len(s.Bounds) { // +Inf bucket: clamp to the last finite bound
		if len(s.Bounds) == 0 {
			return math.NaN()
		}
		return s.Bounds[len(s.Bounds)-1]
	}
	lo := 0.0
	prev := uint64(0)
	if i > 0 {
		lo = s.Bounds[i-1]
		prev = s.Cumulative[i-1]
	}
	hi := s.Bounds[i]
	inBucket := s.Cumulative[i] - prev
	if inBucket == 0 { // unreachable given the scan, but keep the math safe
		return hi
	}
	return lo + (hi-lo)*float64(rank-prev)/float64(inBucket)
}

// Quantile estimates the q-quantile of the live histogram; see
// HistogramSnapshot.Quantile for the interpolation and its upper-bound
// caveat.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// Snapshot returns the histogram's current cumulative bucket counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:     h.bounds,
		Cumulative: make([]uint64, len(h.counts)),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Cumulative[i] = cum
	}
	s.Count = cum
	s.Sum = h.sum.load()
	return s
}

// HistogramVec is a histogram family partitioned by one label (stage
// name, store operation). Children are created on first observation and
// render in sorted label order.
type HistogramVec struct {
	bounds []float64
	mu     sync.Mutex
	kids   map[string]*Histogram
}

// NewHistogramVec creates a labeled histogram family (nil bounds means
// DefBuckets).
func NewHistogramVec(bounds []float64) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &HistogramVec{bounds: bounds, kids: make(map[string]*Histogram)}
}

// Observe records one value under the given label value.
func (v *HistogramVec) Observe(label string, val float64) {
	v.mu.Lock()
	h := v.kids[label]
	if h == nil {
		h = NewHistogram(v.bounds)
		v.kids[label] = h
	}
	v.mu.Unlock()
	h.Observe(val)
}

// Preset creates children for the given label values up front, so a
// fixed label universe renders complete (and in stable series order)
// from the first scrape on, before any observation lands.
func (v *HistogramVec) Preset(labels ...string) *HistogramVec {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, l := range labels {
		if v.kids[l] == nil {
			v.kids[l] = NewHistogram(v.bounds)
		}
	}
	return v
}

// Labels returns the observed label values in sorted (stable) order.
func (v *HistogramVec) Labels() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]string, 0, len(v.kids))
	for k := range v.kids {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Child returns the histogram under one label value (nil if never
// observed).
func (v *HistogramVec) Child(label string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.kids[label]
}

// atomicFloat accumulates float64 values with CAS.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Exposition writes one Prometheus text scrape. Families render in call
// order (the caller's fixed order is what makes the output stable), each
// preceded by its # HELP and # TYPE lines.
type Exposition struct {
	w   io.Writer
	err error
}

// NewExposition starts a scrape onto w.
func NewExposition(w io.Writer) *Exposition { return &Exposition{w: w} }

// Err returns the first write error, if any.
func (e *Exposition) Err() error { return e.err }

func (e *Exposition) printf(format string, args ...any) {
	if e.err == nil {
		_, e.err = fmt.Fprintf(e.w, format, args...)
	}
}

func (e *Exposition) header(name, typ, help string) {
	e.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Counter renders one monotonic counter sample.
func (e *Exposition) Counter(name, help string, v uint64) {
	e.header(name, "counter", help)
	e.printf("%s %d\n", name, v)
}

// Gauge renders one gauge sample.
func (e *Exposition) Gauge(name, help string, v int64) {
	e.header(name, "gauge", help)
	e.printf("%s %d\n", name, v)
}

// Histogram renders one (unlabeled) histogram family.
func (e *Exposition) Histogram(name, help string, s HistogramSnapshot) {
	e.header(name, "histogram", help)
	e.histogramSeries(name, "", s)
}

// HistogramVec renders a labeled histogram family: one bucket series set
// per label value, in the vec's sorted label order.
func (e *Exposition) HistogramVec(name, help, label string, v *HistogramVec) {
	e.header(name, "histogram", help)
	for _, lv := range v.Labels() {
		e.histogramSeries(name, label+"="+strconv.Quote(lv), v.Child(lv).Snapshot())
	}
}

func (e *Exposition) histogramSeries(name, labels string, s HistogramSnapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	for i, b := range s.Bounds {
		e.printf("%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatFloat(b), s.Cumulative[i])
	}
	e.printf("%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, s.Count)
	if labels == "" {
		e.printf("%s_sum %s\n", name, formatFloat(s.Sum))
		e.printf("%s_count %d\n", name, s.Count)
	} else {
		e.printf("%s_sum{%s} %s\n", name, labels, formatFloat(s.Sum))
		e.printf("%s_count{%s} %d\n", name, labels, s.Count)
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
