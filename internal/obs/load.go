package obs

import (
	"fmt"
	"sort"
	"strings"
)

// The ndetect.load/v1 document: the machine-readable summary one
// ndetect-loadgen run emits, designed to join the BENCH_*.json
// trajectory (cmd/benchjson merges load documents alongside benchmark
// records and gates SLOs over them, DESIGN.md §15). Per-class latency is
// carried as the raw cumulative-bucket histogram snapshot, not just
// point percentiles, so downstream tooling re-derives any quantile with
// HistogramSnapshot.Quantile instead of trusting pre-baked numbers.

// LoadSchema versions the load-summary document layout.
const LoadSchema = "ndetect.load/v1"

// LoadClass summarizes one workload class of a load run.
type LoadClass struct {
	// Name is the class label: "hot", "cold", "sweep", "events".
	Name string `json:"name"`
	// Scheduled counts arrivals the open-loop schedule assigned to this
	// class; Requests counts the ones that ran to a terminal outcome
	// (success, shed or error) before the run's deadline.
	Scheduled int64 `json:"scheduled"`
	Requests  int64 `json:"requests"`
	// Shed counts admission rejections — HTTP 503 (queue full or
	// draining) and 429 (per-client quota). Sheds are the daemon working
	// as designed under overload; the SLO gate fails on them only when
	// the run was not a deliberate-overload run.
	Shed int64 `json:"shed"`
	// Errors5xx counts server errors that are NOT admission sheds —
	// the "non-deliberate 5xx" an SLO run must keep at zero.
	Errors5xx int64 `json:"errors_5xx"`
	// Errors counts transport failures and unexpected statuses (neither
	// 2xx, shed, nor 5xx — e.g. a 404 for a job the daemon should know).
	Errors int64 `json:"errors"`
	// Latency is the class's completion-latency histogram in seconds,
	// measured open-loop: from the scheduled arrival instant (not the
	// instant the client got around to sending) to the terminal outcome,
	// so coordinated omission cannot hide server stalls.
	Latency HistogramSnapshot `json:"latency"`
	// P50..P999 are quantiles of Latency in seconds, stamped via
	// Quantile for human readers; the gate recomputes from the buckets.
	P50  float64 `json:"p50_s"`
	P90  float64 `json:"p90_s"`
	P99  float64 `json:"p99_s"`
	P999 float64 `json:"p999_s"`
}

// Stamp fills the derived quantile fields from the latency snapshot.
func (c *LoadClass) Stamp() {
	c.P50 = c.Latency.Quantile(0.50)
	c.P90 = c.Latency.Quantile(0.90)
	c.P99 = c.Latency.Quantile(0.99)
	c.P999 = c.Latency.Quantile(0.999)
}

// LoadDocument is the ndetect.load/v1 root.
type LoadDocument struct {
	Schema string `json:"schema"`
	Tag    string `json:"tag,omitempty"`
	// Target is the daemon address the run drove.
	Target string `json:"target,omitempty"`
	// Arrival is the open-loop arrival process: "poisson" or "fixed".
	Arrival string `json:"arrival"`
	Seed    int64  `json:"seed"`
	// TargetRPS is the configured arrival rate; AchievedRPS is terminal
	// outcomes per second of actual wall-clock run time. A healthy
	// closed SLO loop keeps the two close; a collapsing daemon drags
	// AchievedRPS down while arrivals keep coming.
	TargetRPS       float64 `json:"target_rps"`
	AchievedRPS     float64 `json:"achieved_rps"`
	DurationSeconds float64 `json:"duration_seconds"`
	// Classes holds the per-class summaries in mix order.
	Classes []LoadClass `json:"classes"`
	// IdentityChecks/IdentityMismatches count byte-identity spot checks
	// of served result documents against the in-process driver: any
	// mismatch is a broken determinism contract, gated at zero always.
	IdentityChecks     int64 `json:"identity_checks"`
	IdentityMismatches int64 `json:"identity_mismatches"`
	// DeliberateOverload marks a run configured to exceed the daemon's
	// admission capacity: sheds are then the expected outcome and the
	// SLO gate does not fail on them (it still fails on Errors5xx and
	// identity mismatches).
	DeliberateOverload bool `json:"deliberate_overload,omitempty"`
}

// FormatLoadTable renders the per-class summary table the loadgen CLI
// prints to stderr.
func FormatLoadTable(d *LoadDocument) string {
	var b strings.Builder
	fmt.Fprintf(&b, "load %s: target %.1f rps, achieved %.1f rps over %.1fs (arrival %s, seed %d)\n",
		d.Target, d.TargetRPS, d.AchievedRPS, d.DurationSeconds, d.Arrival, d.Seed)
	fmt.Fprintf(&b, "%-8s %9s %9s %6s %6s %6s %10s %10s %10s %10s\n",
		"class", "scheduled", "done", "shed", "5xx", "err", "p50", "p90", "p99", "p999")
	for _, c := range d.Classes {
		fmt.Fprintf(&b, "%-8s %9d %9d %6d %6d %6d %10s %10s %10s %10s\n",
			c.Name, c.Scheduled, c.Requests, c.Shed, c.Errors5xx, c.Errors,
			formatSeconds(c.P50), formatSeconds(c.P90), formatSeconds(c.P99), formatSeconds(c.P999))
	}
	fmt.Fprintf(&b, "identity spot checks: %d, mismatches: %d\n", d.IdentityChecks, d.IdentityMismatches)
	return b.String()
}

// formatSeconds renders a latency in seconds compactly ("-" for NaN,
// i.e. a class with no completed observations).
func formatSeconds(s float64) string {
	if s != s { // NaN
		return "-"
	}
	switch {
	case s < 0.001:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}

// SortClasses orders the class summaries by name, for documents whose
// producer accumulated them from a map (stable output is part of the
// byte-discipline even off the identity path).
func SortClasses(cs []LoadClass) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Name < cs[j].Name })
}
