package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// Quantile against a known uniform distribution: 1000 observations
// spread evenly over (0, 1] with bounds every 0.1 — every quantile is
// known exactly and the linear interpolation must land within one
// observation step of it.
func TestHistogramQuantileUniform(t *testing.T) {
	bounds := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	h := NewHistogram(bounds)
	const n = 1000
	for i := 1; i <= n; i++ {
		h.Observe(float64(i) / n)
	}
	for _, q := range []float64{0.01, 0.10, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0} {
		got := h.Quantile(q)
		if math.Abs(got-q) > 0.002 {
			t.Errorf("Quantile(%v) = %v, want ~%v", q, got, q)
		}
	}
}

// Quantile on a two-point distribution: the winning bucket flips at the
// mass boundary, and the interpolated value stays inside that bucket
// (the documented upper-bound estimate: never below the bucket's lower
// edge, never above its upper edge).
func TestHistogramQuantileBimodal(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1, 10})
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // 90% fast
	}
	for i := 0; i < 10; i++ {
		h.Observe(5) // 10% slow
	}
	if got := h.Quantile(0.50); got <= 0 || got > 0.01 {
		t.Errorf("p50 = %v, want within the (0, 0.01] bucket", got)
	}
	if got := h.Quantile(0.99); got <= 1 || got > 10 {
		t.Errorf("p99 = %v, want within the (1, 10] bucket", got)
	}
	// The p-quantile estimate is monotone in q.
	prev := 0.0
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.999} {
		got := h.Quantile(q)
		if got < prev {
			t.Errorf("Quantile(%v) = %v < previous %v: not monotone", q, got, prev)
		}
		prev = got
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram Quantile = %v, want NaN", got)
	}
	h.Observe(0.5)
	for _, q := range []float64{0, -1, 1.1} {
		if got := h.Quantile(q); !math.IsNaN(got) {
			t.Errorf("Quantile(%v) = %v, want NaN", q, got)
		}
	}
	// Observations beyond the last bound clamp to the highest finite
	// bound — the documented resolution limit, not an extrapolation.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 2 {
		t.Errorf("overflow-bucket quantile = %v, want the last bound 2", got)
	}
}

func TestHistogramVecPreset(t *testing.T) {
	v := NewHistogramVec(nil).Preset("hot", "cold")
	if got := v.Labels(); len(got) != 2 || got[0] != "cold" || got[1] != "hot" {
		t.Fatalf("Labels = %v, want [cold hot]", got)
	}
	if v.Child("hot").Snapshot().Count != 0 {
		t.Error("preset child not empty")
	}
	v.Observe("hot", 0.5) // reuses the preset child
	if v.Child("hot").Snapshot().Count != 1 {
		t.Error("observation missed the preset child")
	}
}

// The access-log sampling knob: sample=0 logs nothing, sample=N logs
// every Nth request — but a 5xx is always logged, whatever the rate.
func TestAccessLogSampled(t *testing.T) {
	run := func(sample int, statuses []int) []string {
		var lines []string
		logf := func(format string, args ...any) {
			lines = append(lines, fmt.Sprintf(format, args...))
		}
		i := 0
		h := AccessLogSampled(logf, sample, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(statuses[i])
			i++
		}))
		for range statuses {
			h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/jobs/x", nil))
		}
		return lines
	}

	ok := make([]int, 10)
	for i := range ok {
		ok[i] = http.StatusOK
	}
	if lines := run(0, ok); len(lines) != 0 {
		t.Errorf("sample=0 logged %d lines, want 0", len(lines))
	}
	if lines := run(1, ok); len(lines) != 10 {
		t.Errorf("sample=1 logged %d lines, want 10", len(lines))
	}
	if lines := run(5, ok); len(lines) != 2 {
		t.Errorf("sample=5 logged %d of 10 lines, want 2", len(lines))
	}

	mixed := []int{200, 500, 200, 503, 200, 200, 200, 200, 200, 200}
	lines := run(0, mixed)
	if len(lines) != 2 {
		t.Fatalf("sample=0 with 5xx logged %d lines, want the 2 errors", len(lines))
	}
	for _, l := range lines {
		if !strings.Contains(l, "status=50") {
			t.Errorf("unexpected non-5xx line under sample=0: %s", l)
		}
	}
}

func TestTimeHandlerRecordsStatusAndDuration(t *testing.T) {
	var status int
	var secs float64
	h := TimeHandler(func(st int, s float64) { status, secs = st, s },
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(2 * time.Millisecond)
			w.WriteHeader(http.StatusTooManyRequests)
		}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("POST", "/jobs", nil))
	if status != http.StatusTooManyRequests {
		t.Errorf("status = %d", status)
	}
	if secs < 0.002 {
		t.Errorf("duration = %v s, want >= 2ms", secs)
	}
}

// The arrival schedule is a pure function of (process, rate, duration,
// seed): deterministic, ascending, with the right mean rate.
func TestArrivalSchedule(t *testing.T) {
	fixed := ArrivalSchedule(ArrivalFixed, 100, time.Second, 1)
	if len(fixed) != 100 {
		t.Fatalf("fixed: %d arrivals, want 100", len(fixed))
	}
	if fixed[0] != 0 || fixed[1] != 10*time.Millisecond {
		t.Errorf("fixed spacing wrong: %v %v", fixed[0], fixed[1])
	}

	p1 := ArrivalSchedule(ArrivalPoisson, 100, 10*time.Second, 7)
	p2 := ArrivalSchedule(ArrivalPoisson, 100, 10*time.Second, 7)
	if len(p1) != len(p2) {
		t.Fatal("same seed, different schedules")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("same seed, different arrival %d: %v vs %v", i, p1[i], p2[i])
		}
		if i > 0 && p1[i] < p1[i-1] {
			t.Fatalf("arrivals not ascending at %d", i)
		}
	}
	// ~1000 arrivals expected; Poisson sd is ~32, so ±200 is >6 sigma.
	if n := len(p1); n < 800 || n > 1200 {
		t.Errorf("poisson arrival count %d far from expected 1000", n)
	}
	if p3 := ArrivalSchedule(ArrivalPoisson, 100, 10*time.Second, 8); len(p3) == len(p1) {
		same := true
		for i := range p3 {
			if p3[i] != p1[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical schedules")
		}
	}
}

func TestRateLimiter(t *testing.T) {
	l := NewRateLimiter(10, 3) // 10/s, burst 3
	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("a"); !ok {
			t.Fatalf("burst grant %d denied", i)
		}
	}
	ok, retry := l.Allow("a")
	if ok {
		t.Fatal("4th immediate request granted beyond burst")
	}
	if retry <= 0 || retry > 200*time.Millisecond {
		t.Errorf("retryAfter = %v, want ~100ms", retry)
	}
	// Keys are independent.
	if ok, _ := l.Allow("b"); !ok {
		t.Error("fresh key denied while another key is exhausted")
	}
	// Tokens accrue with time.
	time.Sleep(150 * time.Millisecond)
	if ok, _ := l.Allow("a"); !ok {
		t.Error("no token after refill interval")
	}
	// rate <= 0 disables limiting.
	open := NewRateLimiter(0, 1)
	for i := 0; i < 100; i++ {
		if ok, _ := open.Allow("x"); !ok {
			t.Fatal("disabled limiter denied a request")
		}
	}
}

// The ndetect.load/v1 document round-trips through JSON with its raw
// histogram buckets intact, so the SLO gate can recompute quantiles.
func TestLoadDocumentRoundTrip(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5} {
		h.Observe(v)
	}
	cls := LoadClass{Name: "hot", Scheduled: 5, Requests: 4, Latency: h.Snapshot()}
	cls.Stamp()
	doc := LoadDocument{
		Schema: LoadSchema, Arrival: ArrivalPoisson, Seed: 1,
		TargetRPS: 50, AchievedRPS: 49.5, DurationSeconds: 20,
		Classes: []LoadClass{cls}, IdentityChecks: 3,
	}
	raw, err := json.Marshal(&doc)
	if err != nil {
		t.Fatal(err)
	}
	var back LoadDocument
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != LoadSchema || len(back.Classes) != 1 {
		t.Fatalf("round trip lost structure: %+v", back)
	}
	got := back.Classes[0]
	if got.Latency.Count != 4 || len(got.Latency.Cumulative) != 4 {
		t.Fatalf("histogram snapshot lost: %+v", got.Latency)
	}
	if q := got.Latency.Quantile(0.5); math.Abs(q-cls.P50) > 1e-12 {
		t.Errorf("recomputed p50 %v != stamped %v", q, cls.P50)
	}
	if table := FormatLoadTable(&back); !strings.Contains(table, "hot") {
		t.Errorf("table missing class row:\n%s", table)
	}
}
