package obs

import (
	"net/http"
	"sync/atomic"
	"time"
)

// Structured request logs for the daemon: one line per request with
// method, path (which carries the job key hash for /jobs/{id} routes),
// status, response bytes and duration. The middleware preserves
// http.Flusher on the wrapped ResponseWriter so live SSE streams keep
// flushing through it.

// AccessLog wraps next so every request is reported to logf after it
// completes:
//
//	http method=GET path=/jobs/abc123 status=200 bytes=412 dur=1.2ms
func AccessLog(logf func(format string, args ...any), next http.Handler) http.Handler {
	return AccessLogSampled(logf, 1, next)
}

// AccessLogSampled is AccessLog with a sampling knob for load runs: only
// every sample-th request is logged (0 = none, 1 = all), so a sustained
// 60 s load test doesn't flood stderr — and doesn't distort the very
// latency it is measuring with per-request log I/O. Server errors
// (status >= 500) are always logged regardless of the sample rate; they
// are rare by contract and each one matters.
func AccessLogSampled(logf func(format string, args ...any), sample int, next http.Handler) http.Handler {
	var n atomic.Uint64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		sampled := sample == 1 || (sample > 1 && n.Add(1)%uint64(sample) == 1)
		if !sampled && rec.status < http.StatusInternalServerError {
			return
		}
		logf("http method=%s path=%s status=%d bytes=%d dur=%s",
			r.Method, r.URL.Path, rec.status, rec.bytes,
			time.Since(t0).Round(10*time.Microsecond))
	})
}

// TimeHandler wraps next so record receives the response status and the
// request's wall-clock duration in seconds once it completes — the hook
// behind the daemon's per-class request-latency histograms. The clock
// stays here in obs; the serving package only supplies the recording
// closure. For streaming responses (SSE) the duration is the stream
// lifetime.
func TimeHandler(record func(status int, seconds float64), next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		record(rec.status, time.Since(t0).Seconds())
	})
}

// statusRecorder captures the status code and body size of a response.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	r.wrote = true
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it streams — SSE and
// other incremental responses must keep working behind the middleware.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
