package obs

import (
	"math"
	"sync"
	"time"
)

// Per-key token buckets for request admission (DESIGN.md §15). The
// limiter lives in obs — not in the service package — because refill is
// a wall-clock computation and the serving packages are inside the
// detrand lint scope: they may hold and call a limiter, never read the
// clock themselves. Admission decisions influence which requests run,
// not what any result contains, so the identity contract is untouched.

// RateLimiter grants rate tokens per second per key with a burst-sized
// bucket. The zero value is invalid; use NewRateLimiter.
type RateLimiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// maxIdleBuckets bounds the per-key map: beyond it, buckets already
// refilled to full burst (i.e. idle for at least burst/rate seconds) are
// swept on the next Allow. An adversarial key flood can still only grow
// the map by one small struct per key between sweeps.
const maxIdleBuckets = 4096

// NewRateLimiter creates a limiter granting rate tokens/second with
// bursts of burst. rate <= 0 disables limiting (Allow always grants).
func NewRateLimiter(rate float64, burst int) *RateLimiter {
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &RateLimiter{rate: rate, burst: b, buckets: make(map[string]*tokenBucket)}
}

// Allow consumes one token from key's bucket. When the bucket is empty
// it reports false with the time until the next token accrues — the
// Retry-After hint of an HTTP 429.
func (l *RateLimiter) Allow(key string) (ok bool, retryAfter time.Duration) {
	if l.rate <= 0 {
		return true, 0
	}
	now := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[key]
	if b == nil {
		if len(l.buckets) >= maxIdleBuckets {
			l.sweepLocked(now)
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// sweepLocked drops buckets that have refilled to full burst — keys idle
// long enough that forgetting them is indistinguishable from keeping
// them.
func (l *RateLimiter) sweepLocked(now time.Time) {
	for k, b := range l.buckets {
		if math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate) >= l.burst {
			delete(l.buckets, k)
		}
	}
}
