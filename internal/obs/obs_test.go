package obs

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRecorderDerivesSpansFromProgressStream(t *testing.T) {
	r := NewRecorder()
	// The average-analysis progress stream: repeated callbacks within a
	// stage advance counts; a stage change closes the previous span.
	r.Progress("simulate", 0, 3)
	r.Progress("stuck-at-tsets", 1, 3)
	r.Progress("bridge-tsets", 2, 3)
	r.Progress("universe", 3, 3)
	r.Progress("procedure1", 10, 100)
	r.Progress("procedure1", 100, 100)
	spans := r.Finish()

	want := []string{"simulate", "stuck-at-tsets", "bridge-tsets", "universe", "procedure1"}
	if len(spans) != len(want) {
		t.Fatalf("got %d spans, want %d: %+v", len(spans), len(want), spans)
	}
	for i, name := range want {
		if spans[i].Name != name {
			t.Errorf("span %d = %q, want %q", i, spans[i].Name, name)
		}
		if spans[i].Open {
			t.Errorf("span %q still open after Finish", spans[i].Name)
		}
		if spans[i].DurNs < 0 || spans[i].StartNs < 0 {
			t.Errorf("span %q has negative times: %+v", name, spans[i])
		}
		if i > 0 && spans[i].StartNs < spans[i-1].StartNs {
			t.Errorf("span %q starts before its predecessor", name)
		}
	}
	if last := spans[len(spans)-1]; last.Done != 100 || last.Total != 100 {
		t.Errorf("procedure1 counts = %d/%d, want 100/100", last.Done, last.Total)
	}
}

func TestRecorderBeginEndIdempotent(t *testing.T) {
	r := NewRecorder()
	end := r.Begin("universe")
	end()
	dur := r.Snapshot()[0].DurNs
	time.Sleep(2 * time.Millisecond)
	end() // second end must not extend the span
	if got := r.Snapshot()[0].DurNs; got != dur {
		t.Fatalf("second end() changed duration: %d → %d", dur, got)
	}
}

func TestRecorderSnapshotMarksOpenSpans(t *testing.T) {
	r := NewRecorder()
	r.Begin("universe")
	r.Progress("simulate", 0, 3)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("got %d spans, want 2", len(snap))
	}
	for _, s := range snap {
		if !s.Open {
			t.Errorf("span %q not marked open in snapshot", s.Name)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	wantCum := []uint64{1, 2, 3, 4} // cumulative, last = +Inf = count
	for i, want := range wantCum {
		if s.Cumulative[i] != want {
			t.Errorf("cumulative[%d] = %d, want %d", i, s.Cumulative[i], want)
		}
	}
	if s.Count != 4 {
		t.Errorf("count = %d, want 4", s.Count)
	}
	if s.Sum != 0.005+0.05+0.5+5 {
		t.Errorf("sum = %v", s.Sum)
	}
	// Boundary values land in their bucket (le is inclusive).
	h2 := NewHistogram([]float64{0.01, 0.1, 1})
	h2.Observe(0.1)
	if got := h2.Snapshot().Cumulative[1]; got != 1 {
		t.Errorf("observation at the bound missed its bucket: cumulative[1] = %d", got)
	}
}

func TestExpositionFormat(t *testing.T) {
	var b strings.Builder
	e := NewExposition(&b)
	e.Counter("x_total", "a counter", 7)
	e.Gauge("y", "a gauge", -3)
	h := NewHistogram([]float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(2)
	e.Histogram("z_seconds", "a histogram", h.Snapshot())
	v := NewHistogramVec([]float64{1})
	v.Observe("b", 0.5)
	v.Observe("a", 0.5)
	e.HistogramVec("w_seconds", "a labeled histogram", "stage", v)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP x_total a counter\n# TYPE x_total counter\nx_total 7\n",
		"# TYPE y gauge\ny -3\n",
		"# TYPE z_seconds histogram\n",
		`z_seconds_bucket{le="0.5"} 1`,
		`z_seconds_bucket{le="1"} 1`,
		`z_seconds_bucket{le="+Inf"} 2`,
		"z_seconds_sum 2.25\nz_seconds_count 2\n",
		`w_seconds_bucket{stage="a",le="1"} 1`,
		`w_seconds_sum{stage="a"} 0.5`,
		`w_seconds_count{stage="b"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Labeled series render in sorted label order — stable across scrapes.
	if strings.Index(out, `stage="a"`) > strings.Index(out, `stage="b"`) {
		t.Error("labeled series not in sorted label order")
	}
}

func TestWriteSSEEvent(t *testing.T) {
	var b strings.Builder
	if err := WriteSSEEvent(&b, 7, "progress", []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "id: 7\nevent: progress\ndata: {\"a\":1}\n\n" {
		t.Fatalf("frame = %q", got)
	}
	// Multi-line data splits into multiple data: lines; negative id omits
	// the id line.
	b.Reset()
	if err := WriteSSEEvent(&b, -1, "state", []byte("x\ny")); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "event: state\ndata: x\ndata: y\n\n" {
		t.Fatalf("frame = %q", got)
	}
}

func TestSSEHeaders(t *testing.T) {
	h := http.Header{}
	SSEHeaders(h)
	if got := h.Get("Content-Type"); got != SSEContentType {
		t.Errorf("Content-Type = %q", got)
	}
	if got := h.Get("Cache-Control"); got != "no-store" {
		t.Errorf("Cache-Control = %q", got)
	}
}

func TestAccessLogCapturesStatusAndPreservesFlusher(t *testing.T) {
	var lines []string
	logf := func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	flushed := false
	h := AccessLog(logf, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
			flushed = true
		}
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("body"))
	}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/jobs/abc/events", nil))
	if !flushed {
		t.Error("AccessLog hid the Flusher — SSE would never stream through it")
	}
	if len(lines) != 1 {
		t.Fatalf("got %d log lines, want 1", len(lines))
	}
	for _, want := range []string{"method=GET", "path=/jobs/abc/events", "status=418", "bytes=4"} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("log line missing %q: %s", want, lines[0])
		}
	}
}
