// Package obs is the observability layer behind the serving pipeline:
// stage-level span tracing, fixed-bucket latency histograms and gauges
// with a Prometheus text exposition writer, Server-Sent-Event framing,
// and structured HTTP request logs (DESIGN.md §14).
//
// The package is deliberately dependency-free (standard library only)
// and — critically — lives OUTSIDE the detrand-scoped packages of the
// lint contract (DESIGN.md §13): every wall-clock read the serving path
// needs happens here, behind hooks, so the result-computing packages
// stay provably pure in (circuit, identity options, seed). Nothing in
// this package may ever influence result bytes; it only observes. That
// is the identity non-interference argument of §14: instrumentation
// hooks are all ndetect:nonidentity fields or interfaces whose
// implementations merely record, and the byte-identity tests pin that a
// traced run equals an untraced one.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one timed phase of a job: an explicitly bracketed driver phase
// (Recorder.Begin) or a progress-derived stage (Recorder.Progress).
// Times are nanoseconds relative to the owning trace's start, so spans
// serialize compactly and never expose absolute wall-clock values.
type Span struct {
	// Name identifies the phase: a driver phase like "canonicalize",
	// "universe" or "encode", or a progress stage like "simulate",
	// "stuck-at-tsets" or "procedure1".
	Name string `json:"name"`
	// StartNs is the span's start, in nanoseconds since trace start.
	StartNs int64 `json:"start_ns"`
	// DurNs is the span's duration in nanoseconds. For spans still open
	// when a snapshot was taken it holds the elapsed time so far, and
	// Open is true.
	DurNs int64 `json:"dur_ns"`
	// Open marks a span that had not ended when the snapshot was taken.
	Open bool `json:"open,omitempty"`
	// Done/Total are the last progress counts observed within the span
	// (progress-derived spans only; units are stage-specific).
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
}

// Timer measures one duration. The zero Timer is invalid; use StartTimer.
// It exists so packages under the detrand lint scope can measure
// wall-clock intervals without ever touching the clock themselves.
type Timer struct {
	t0 time.Time
}

// StartTimer starts a Timer at the current instant.
func StartTimer() Timer { return Timer{t0: time.Now()} }

// Seconds returns the time elapsed since the timer started, in seconds.
func (t Timer) Seconds() float64 { return time.Since(t.t0).Seconds() }

// Elapsed returns the time elapsed since the timer started.
func (t Timer) Elapsed() time.Duration { return time.Since(t.t0) }

// Recorder collects the spans of one traced run. It is safe for
// concurrent use: the analysis driver calls Begin/Progress from worker
// goroutines while status endpoints snapshot concurrently.
//
// Two span sources feed it:
//
//   - Begin brackets an explicit phase and returns its end function — the
//     shape of the exp.TraceSink hook, so the analysis driver marks
//     phases without ever reading the clock itself;
//   - Progress adapts the ndetect.Progress stream: each stage transition
//     closes the previous progress-derived span and opens the next, and
//     repeated callbacks within a stage update its Done/Total counts.
//
// A Recorder never influences what it observes; it exists for the
// serving layer's /trace dumps, stage histograms and the CLI's -trace
// table (DESIGN.md §14).
type Recorder struct {
	mu    sync.Mutex
	t0    time.Time
	spans []Span
	ended []bool
	cur   int // index of the open progress-derived span, or -1
}

// NewRecorder starts an empty recorder; its trace clock starts now.
func NewRecorder() *Recorder {
	return &Recorder{t0: time.Now(), cur: -1}
}

// Begin opens an explicit span and returns the function that ends it.
// The end function is idempotent; ending out of order is allowed (spans
// are a flat timed list, not a strict tree).
func (r *Recorder) Begin(name string) func() {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := r.pushLocked(name)
	return func() { r.end(i) }
}

// Progress records one ndetect.Progress callback: a stage change closes
// the current progress span and opens a new one; within a stage only the
// counts advance.
func (r *Recorder) Progress(stage string, done, total int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur < 0 || r.spans[r.cur].Name != stage {
		if r.cur >= 0 {
			r.endLocked(r.cur)
		}
		r.cur = r.pushLocked(stage)
	}
	r.spans[r.cur].Done = done
	r.spans[r.cur].Total = total
}

// Elapsed returns the time since the recorder was created — the
// end-to-end duration of whatever it is tracing.
func (r *Recorder) Elapsed() time.Duration { return time.Since(r.t0) }

// Snapshot returns a copy of the spans recorded so far, in start order.
// Spans still open report their elapsed time so far with Open set.
func (r *Recorder) Snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Since(r.t0).Nanoseconds()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	for i := range out {
		if !r.ended[i] {
			out[i].DurNs = now - out[i].StartNs
			out[i].Open = true
		}
	}
	return out
}

// Finish closes every span still open (the trailing progress span and
// any phase whose end call was skipped by an error return) and returns
// the final spans. The recorder remains usable but is conventionally
// done.
func (r *Recorder) Finish() []Span {
	r.mu.Lock()
	for i := range r.spans {
		if !r.ended[i] {
			r.endLocked(i)
		}
	}
	r.cur = -1
	r.mu.Unlock()
	return r.Snapshot()
}

func (r *Recorder) pushLocked(name string) int {
	r.spans = append(r.spans, Span{Name: name, StartNs: time.Since(r.t0).Nanoseconds()})
	r.ended = append(r.ended, false)
	return len(r.spans) - 1
}

func (r *Recorder) end(i int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.endLocked(i)
}

func (r *Recorder) endLocked(i int) {
	if r.ended[i] {
		return
	}
	r.ended[i] = true
	r.spans[i].DurNs = time.Since(r.t0).Nanoseconds() - r.spans[i].StartNs
}

// FormatTable renders spans as the CLI's -trace stage-timing table:
// one row per span in start order, with start offset, duration and the
// final progress counts where present.
func FormatTable(spans []Span) string {
	var b strings.Builder
	w := 12
	for _, s := range spans {
		if len(s.Name) > w {
			w = len(s.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s %10s %12s  %s\n", w, "stage", "start", "duration", "progress")
	for _, s := range spans {
		prog := ""
		if s.Total != 0 {
			prog = fmt.Sprintf("%d/%d", s.Done, s.Total)
		}
		dur := time.Duration(s.DurNs).Round(time.Microsecond).String()
		if s.Open {
			dur += "+"
		}
		fmt.Fprintf(&b, "%-*s %10s %12s  %s\n", w, s.Name,
			time.Duration(s.StartNs).Round(time.Microsecond), dur, prog)
	}
	return b.String()
}

// TraceLog retains the spans of recently completed traces, keyed by job
// ID, bounded FIFO — the backing store of the daemon's /trace/{id}
// endpoint. Safe for concurrent use.
type TraceLog struct {
	mu    sync.Mutex
	cap   int
	order []string
	byID  map[string][]Span
}

// NewTraceLog creates a log retaining up to capacity traces (<= 0 means
// a default of 128).
func NewTraceLog(capacity int) *TraceLog {
	if capacity <= 0 {
		capacity = 128
	}
	return &TraceLog{cap: capacity, byID: make(map[string][]Span)}
}

// Add records a completed trace, evicting the oldest beyond capacity.
// Re-adding an ID refreshes its spans without duplicating the slot.
func (l *TraceLog) Add(id string, spans []Span) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.byID[id]; !ok {
		l.order = append(l.order, id)
		for len(l.order) > l.cap {
			delete(l.byID, l.order[0])
			l.order = l.order[1:]
		}
	}
	l.byID[id] = spans
}

// Get returns the retained spans of one trace.
func (l *TraceLog) Get(id string) ([]Span, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	s, ok := l.byID[id]
	return s, ok
}

// IDs returns the retained trace IDs, most recent last.
func (l *TraceLog) IDs() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, len(l.order))
	copy(out, l.order)
	sort.Strings(out)
	return out
}
