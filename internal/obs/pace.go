package obs

import (
	"math"
	"math/rand"
	"time"
)

// Open-loop pacing for the load harness (DESIGN.md §15). The arrival
// schedule is computed up front from a seeded source — deterministic and
// clock-free — and the Pacer is the only place the harness touches the
// wall clock: it sleeps until each scheduled offset and timestamps
// completions relative to its epoch. Latency measured from the
// *scheduled* arrival (not the send instant) is what makes the harness
// immune to coordinated omission: if the daemon stalls, subsequent
// arrivals still fire on schedule and their queueing delay lands in the
// histogram instead of silently stretching the gaps between requests.

// ArrivalFixed and ArrivalPoisson name the two arrival processes.
const (
	ArrivalFixed   = "fixed"
	ArrivalPoisson = "poisson"
)

// ArrivalSchedule returns the arrival offsets of an open-loop run:
// ~rate*d arrivals over duration d, either evenly spaced (fixed) or with
// exponentially distributed gaps (a Poisson process) drawn from a source
// seeded with seed. Offsets are ascending; the schedule is a pure
// function of its arguments.
func ArrivalSchedule(arrival string, rate float64, d time.Duration, seed int64) []time.Duration {
	if rate <= 0 || d <= 0 {
		return nil
	}
	var out []time.Duration
	switch arrival {
	case ArrivalPoisson:
		rng := rand.New(rand.NewSource(seed))
		gap := func() time.Duration {
			// Inverse-CDF exponential gap with mean 1/rate seconds.
			return time.Duration(-math.Log(1-rng.Float64()) / rate * float64(time.Second))
		}
		for t := gap(); t < d; t += gap() {
			out = append(out, t)
		}
	default: // fixed
		step := time.Duration(float64(time.Second) / rate)
		for t := time.Duration(0); t < d; t += step {
			out = append(out, t)
		}
	}
	return out
}

// Pacer anchors an open-loop run to one wall-clock epoch.
type Pacer struct {
	t0 time.Time
}

// StartPacer starts a pacer at the current instant.
func StartPacer() *Pacer { return &Pacer{t0: time.Now()} }

// Sleep blocks until the pacer's epoch plus offset (returns immediately
// when that instant has passed — a late arrival fires at once, and its
// measured latency includes the slip).
func (p *Pacer) Sleep(offset time.Duration) {
	if wait := offset - time.Since(p.t0); wait > 0 {
		time.Sleep(wait)
	}
}

// Elapsed returns the time since the pacer's epoch.
func (p *Pacer) Elapsed() time.Duration { return time.Since(p.t0) }
