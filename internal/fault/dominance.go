package fault

import (
	"ndetect/internal/circuit"
)

// Dominance collapsing, the optional second stage after equivalence
// collapsing. Fault a dominates fault b when every test for b also detects
// a (T(b) ⊆ T(a)); the dominating fault a can then be dropped from a
// test-generation target list, because any test set detecting b detects a
// too. Structurally, a gate's output stuck-at its non-controlled value
// dominates each of its input stuck-at-¬controlling faults:
//
//	AND : output s-a-1 dominates each input s-a-1 → drop output s-a-1
//	NAND: output s-a-0 dominates each input s-a-1 → drop output s-a-0
//	OR  : output s-a-0 dominates each input s-a-0 → drop output s-a-0
//	NOR : output s-a-1 dominates each input s-a-0 → drop output s-a-1
//
// The paper's target set F uses equivalence collapsing only (the usual
// meaning of "collapsed"); dominance collapsing is provided for test
// generation flows (package testgen accepts any target list) and for the
// ablation comparing analysis outcomes under the two target sets. Note that
// under dominance collapsing F is no longer a set of representatives of all
// faults — guarantees computed against it are guarantees about a smaller
// target list, which weakens nmin bounds accordingly.
func DominanceCollapseStuckAt(c *circuit.Circuit) []StuckAt {
	drop := make(map[StuckAt]bool)
	for _, nd := range c.Nodes {
		switch nd.Kind {
		case circuit.And:
			drop[StuckAt{Node: nd.ID, Value: true}] = true
		case circuit.Nand:
			drop[StuckAt{Node: nd.ID, Value: false}] = true
		case circuit.Or:
			drop[StuckAt{Node: nd.ID, Value: false}] = true
		case circuit.Nor:
			drop[StuckAt{Node: nd.ID, Value: true}] = true
		}
	}
	eq := CollapseStuckAt(c)
	out := eq[:0:0]
	for _, f := range eq {
		if !drop[f] {
			out = append(out, f)
		}
	}
	return out
}
