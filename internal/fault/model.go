package fault

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"ndetect/internal/circuit"
)

// The fault-model registry. The paper's machinery — worst-case nmin,
// Procedure 1, Definition 2 — consumes only per-fault detection bitsets
// over a test-index space; the choice of structural fault universes is an
// input. A Model packages that choice: the targeted set F a hypothetical
// test generator aims at, the untargeted set G whose n-detection coverage
// the analyses measure, and the index space their T-sets range over.
//
// A model's structural half lives here (enumeration, naming, validation —
// pure functions of the circuit); its semantic half (building T-sets
// against the compiled engine) is registered separately in package sim
// under the same model ID, because this package cannot import the engine.
// The two halves together are the provider; DESIGN.md §12 records the
// split.

// Set selects one of the two fault sets a model provides.
type Set int

const (
	// TargetSet is F: the faults a deterministic test generator targets.
	TargetSet Set = iota
	// UntargetedSet is G: the faults whose coverage is analyzed.
	UntargetedSet
)

// Space is the kind of test-index space a model's T-sets range over.
type Space int

const (
	// SingleVector T-sets index the exhaustive input space U directly.
	SingleVector Space = iota
	// VectorPair T-sets index ordered two-pattern tests (v1, v2) ∈ U×U,
	// flattened as v1·|U| + v2.
	VectorPair
)

// Descriptor is one structural fault in a model-neutral record: two node
// IDs and a value byte, interpreted per model. The stuck-at set uses
// {A: node, B: -1, V: stuck value}; bridges use {A: dominant, B: victim,
// V: dominant value}; transition faults use {A: node, B: -1, V: mimicked
// stuck value}; stuck-at pairs use {A: first node, B: second node,
// V: first value in bit 0, second value in bit 1}. The fixed shape is
// what lets the store codec serialize any model's tables uniformly.
type Descriptor struct {
	A, B int32
	V    uint8
}

// StuckAt interprets the descriptor as a single stuck-at fault.
func (d Descriptor) StuckAt() StuckAt { return StuckAt{Node: int(d.A), Value: d.V != 0} }

// Bridge interprets the descriptor as a dominance bridging fault.
func (d Descriptor) Bridge() Bridge {
	return Bridge{Dominant: int(d.A), Victim: int(d.B), Value: d.V != 0}
}

// StuckAtDescriptor packs a stuck-at fault into a descriptor.
func StuckAtDescriptor(f StuckAt) Descriptor {
	return Descriptor{A: int32(f.Node), B: -1, V: boolBit(f.Value)}
}

// BridgeDescriptor packs a bridging fault into a descriptor.
func BridgeDescriptor(g Bridge) Descriptor {
	return Descriptor{A: int32(g.Dominant), B: int32(g.Victim), V: boolBit(g.Value)}
}

func boolBit(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// SetProvider is the structural half of one fault set: deterministic
// enumeration, paper-notation naming, and validation of descriptors that
// arrive from outside (the store codec decodes artifacts into descriptors
// and must reject records the model cannot have produced).
type SetProvider interface {
	Enumerate(c *circuit.Circuit) []Descriptor
	Name(c *circuit.Circuit, d Descriptor) string
	Validate(c *circuit.Circuit, d Descriptor) error
	// Label is the human phrase for count lines ("collapsed stuck-at
	// faults", "detectable non-feedback four-way bridging faults") — the
	// CLI prints it verbatim, so the default model's labels reproduce the
	// pre-registry output byte for byte.
	Label() string
}

// Model is one registered fault model: an ID, a test-index space, and the
// two fault sets.
type Model interface {
	ID() string
	Space() Space
	Provider(set Set) SetProvider
	// Def2Capable reports whether the model's targets are single stuck-at
	// faults over the single-vector space — the shape the paper's
	// Definition 2 (3-valued common-test counting) requires.
	Def2Capable() bool
}

// Convenience wrappers over Provider.

// EnumerateSet enumerates one of m's fault sets.
func EnumerateSet(m Model, c *circuit.Circuit, set Set) []Descriptor {
	return m.Provider(set).Enumerate(c)
}

// SpaceSize returns the size of m's test-index space over circuit c.
func SpaceSize(m Model, c *circuit.Circuit) (int, error) {
	size := c.VectorSpaceSize()
	switch m.Space() {
	case SingleVector:
		return size, nil
	case VectorPair:
		if size != 0 && size > math.MaxInt/size {
			return 0, fmt.Errorf("fault: model %s: pair space |U|² overflows for |U| = %d", m.ID(), size)
		}
		return size * size, nil
	}
	return 0, fmt.Errorf("fault: model %s: unknown space %d", m.ID(), m.Space())
}

// model is the one Model implementation: two providers composed under an
// ID. Compose is how every model — built-in or future — is assembled.
type model struct {
	id         string
	space      Space
	def2       bool
	targets    SetProvider
	untargeted SetProvider
}

func (m *model) ID() string        { return m.id }
func (m *model) Space() Space      { return m.space }
func (m *model) Def2Capable() bool { return m.def2 }
func (m *model) Provider(set Set) SetProvider {
	if set == TargetSet {
		return m.targets
	}
	return m.untargeted
}

// Compose assembles a Model from a target and an untargeted SetProvider.
func Compose(id string, space Space, def2Capable bool, targets, untargeted SetProvider) Model {
	return &model{id: id, space: space, def2: def2Capable, targets: targets, untargeted: untargeted}
}

// DefaultModelID names the paper's own configuration: collapsed stuck-at
// targets with the detectable non-feedback four-way bridge G universe.
const DefaultModelID = "stuckat+bridge4"

var (
	registryMu sync.RWMutex
	registry   = map[string]Model{}
)

// Register adds a model to the registry. Duplicate IDs panic: model IDs
// join result identities and store keys, so a silent replacement would
// corrupt both.
func Register(m Model) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[m.ID()]; dup {
		panic(fmt.Sprintf("fault: model %q registered twice", m.ID()))
	}
	registry[m.ID()] = m
}

// Lookup returns the model registered under id.
func Lookup(id string) (Model, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	m, ok := registry[id]
	return m, ok
}

// Resolve maps a user-supplied model ID onto a registered model; the
// empty string means the default model.
func Resolve(id string) (Model, error) {
	if id == "" {
		id = DefaultModelID
	}
	if m, ok := Lookup(id); ok {
		return m, nil
	}
	return nil, fmt.Errorf("fault: unknown fault model %q (have %v)", id, ModelIDs())
}

// Default returns the default model.
func Default() Model {
	m, _ := Lookup(DefaultModelID)
	return m
}

// ModelIDs lists every registered model ID, sorted.
func ModelIDs() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func validNode(c *circuit.Circuit, id int32) error {
	if id < 0 || int(id) >= c.NumNodes() {
		return fmt.Errorf("fault: node %d out of range [0,%d)", id, c.NumNodes())
	}
	return nil
}

// StuckAtProvider is the collapsed single stuck-at set — the paper's
// target set F, shared by every built-in model whose targets are
// stuck-at faults.
type StuckAtProvider struct{}

func (StuckAtProvider) Enumerate(c *circuit.Circuit) []Descriptor {
	sas := CollapseStuckAt(c)
	out := make([]Descriptor, len(sas))
	for i, f := range sas {
		out[i] = StuckAtDescriptor(f)
	}
	return out
}

func (StuckAtProvider) Name(c *circuit.Circuit, d Descriptor) string { return d.StuckAt().Name(c) }

func (StuckAtProvider) Validate(c *circuit.Circuit, d Descriptor) error {
	if err := validNode(c, d.A); err != nil {
		return err
	}
	if d.B != -1 || d.V > 1 {
		return fmt.Errorf("fault: malformed stuck-at descriptor %+v", d)
	}
	return nil
}

func (StuckAtProvider) Label() string { return "collapsed stuck-at faults" }

// BridgeProvider is the candidate four-way bridging set — the paper's
// untargeted universe G (detectability is filtered after T-sets exist).
type BridgeProvider struct{}

func (BridgeProvider) Enumerate(c *circuit.Circuit) []Descriptor {
	brs := Bridges(c)
	out := make([]Descriptor, len(brs))
	for i, g := range brs {
		out[i] = BridgeDescriptor(g)
	}
	return out
}

func (BridgeProvider) Name(c *circuit.Circuit, d Descriptor) string { return d.Bridge().Name(c) }

func (BridgeProvider) Validate(c *circuit.Circuit, d Descriptor) error {
	if err := validNode(c, d.A); err != nil {
		return err
	}
	if err := validNode(c, d.B); err != nil {
		return err
	}
	if d.A == d.B || d.V > 1 {
		return fmt.Errorf("fault: malformed bridge descriptor %+v", d)
	}
	return nil
}

func (BridgeProvider) Label() string { return "detectable non-feedback four-way bridging faults" }

// TransitionProvider is the gross-delay transition set over two-pattern
// tests: per non-constant node, a slow-to-rise fault (V = 0, behaves as
// stuck-at-0 on the launch vector) and a slow-to-fall fault (V = 1,
// behaves as stuck-at-1). Sites are not collapsed: structurally
// equivalent stuck-at faults share detection sets but not initialization
// sets, so transition faults on equivalent lines are distinct.
type TransitionProvider struct{}

func (TransitionProvider) Enumerate(c *circuit.Circuit) []Descriptor {
	sas := AllStuckAt(c)
	out := make([]Descriptor, len(sas))
	for i, f := range sas {
		out[i] = StuckAtDescriptor(f)
	}
	return out
}

func (TransitionProvider) Name(c *circuit.Circuit, d Descriptor) string {
	edge := "str"
	if d.V != 0 {
		edge = "stf"
	}
	return fmt.Sprintf("%s/%s", c.Node(int(d.A)).Name, edge)
}

func (TransitionProvider) Validate(c *circuit.Circuit, d Descriptor) error {
	if err := validNode(c, d.A); err != nil {
		return err
	}
	if d.B != -1 || d.V > 1 {
		return fmt.Errorf("fault: malformed transition descriptor %+v", d)
	}
	return nil
}

func (TransitionProvider) Label() string { return "detectable transition faults (two-pattern tests)" }

// PairStuckAtProvider is the pairwise multiple stuck-at set the paper
// excludes: every unordered pair of collapsed stuck-at faults on distinct
// nodes, both present simultaneously. Enumeration order follows the
// collapsed list (i < j), so A < B always holds.
type PairStuckAtProvider struct{}

func (PairStuckAtProvider) Enumerate(c *circuit.Circuit) []Descriptor {
	sas := CollapseStuckAt(c)
	var out []Descriptor
	for i := 0; i < len(sas); i++ {
		for j := i + 1; j < len(sas); j++ {
			if sas[i].Node == sas[j].Node {
				continue
			}
			out = append(out, Descriptor{
				A: int32(sas[i].Node),
				B: int32(sas[j].Node),
				V: boolBit(sas[i].Value) | boolBit(sas[j].Value)<<1,
			})
		}
	}
	return out
}

func (PairStuckAtProvider) Name(c *circuit.Circuit, d Descriptor) string {
	return fmt.Sprintf("{%s/%d,%s/%d}",
		c.Node(int(d.A)).Name, d.V&1, c.Node(int(d.B)).Name, d.V>>1&1)
}

func (PairStuckAtProvider) Validate(c *circuit.Circuit, d Descriptor) error {
	if err := validNode(c, d.A); err != nil {
		return err
	}
	if err := validNode(c, d.B); err != nil {
		return err
	}
	if d.A >= d.B || d.V > 3 {
		return fmt.Errorf("fault: malformed stuck-at pair descriptor %+v", d)
	}
	return nil
}

func (PairStuckAtProvider) Label() string { return "detectable double stuck-at faults" }

func init() {
	Register(Compose(DefaultModelID, SingleVector, true, StuckAtProvider{}, BridgeProvider{}))
	Register(Compose("transition", VectorPair, false, StuckAtProvider{}, TransitionProvider{}))
	Register(Compose("msa2", SingleVector, true, StuckAtProvider{}, PairStuckAtProvider{}))
}
