package fault

import (
	"fmt"

	"ndetect/internal/circuit"
)

// Bridge is one of the four-way bridging faults between two lines.
//
// The paper denotes the fault (l1, a1, l2, a2) and states it is activated
// when l1 = a1 and l2 = a2. As printed, the effect clause ("it then results
// in l1 = a1") is vacuous; the reading consistent with the paper's own
// example — g0 = (9,0,10,1), a fault with a2 = ¬a1 — is the classical
// dominance bridge: when the dominant line l1 carries a1 and the victim line
// l2 carries a2 = ¬a1, the bridge forces the victim to the dominant line's
// value a1. The four faults of a line pair {u,w} are then
//
//	(u,0,w,1)  (u,1,w,0)  (w,0,u,1)  (w,1,u,0)
//
// i.e. each line dominating the other, for each polarity. DESIGN.md §4
// records this interpretation.
type Bridge struct {
	Dominant int  // l1: node ID of the dominant line
	Victim   int  // l2: node ID of the victim line
	Value    bool // a1: value of the dominant line when the fault is activated
}

// Name renders the fault in the paper's (l1,a1,l2,a2) tuple notation.
func (g Bridge) Name(c *circuit.Circuit) string {
	a1, a2 := 0, 1
	if g.Value {
		a1, a2 = 1, 0
	}
	return fmt.Sprintf("(%s,%d,%s,%d)", c.Node(g.Dominant).Name, a1, c.Node(g.Victim).Name, a2)
}

// Bridges enumerates the candidate untargeted fault universe of the paper:
// four-way bridging faults between outputs of multi-input gates, with
// feedback bridges (a structural path between the two lines, in either
// direction) excluded. Detectability is a semantic property and is filtered
// later, after T-sets are computed (see sim.BridgeTSets).
func Bridges(c *circuit.Circuit) []Bridge {
	var sites []int
	for _, n := range c.Nodes {
		if n.IsMultiInputGateOutput() {
			sites = append(sites, n.ID)
		}
	}
	// Precompute transitive fanin sets once per site: pair (u,w) is a
	// feedback bridge iff u ∈ TFI(w) or w ∈ TFI(u).
	tfi := make(map[int][]bool, len(sites))
	for _, s := range sites {
		tfi[s] = c.TransitiveFanin(s)
	}

	var out []Bridge
	for i := 0; i < len(sites); i++ {
		for j := i + 1; j < len(sites); j++ {
			u, w := sites[i], sites[j]
			if tfi[w][u] || tfi[u][w] {
				continue
			}
			out = append(out,
				Bridge{Dominant: u, Victim: w, Value: false},
				Bridge{Dominant: u, Victim: w, Value: true},
				Bridge{Dominant: w, Victim: u, Value: false},
				Bridge{Dominant: w, Victim: u, Value: true},
			)
		}
	}
	return out
}

// BridgeSites returns the node IDs eligible as bridge endpoints (outputs of
// multi-input gates), in ID order.
func BridgeSites(c *circuit.Circuit) []int {
	var sites []int
	for _, n := range c.Nodes {
		if n.IsMultiInputGateOutput() {
			sites = append(sites, n.ID)
		}
	}
	return sites
}
