package fault

import (
	"testing"

	"ndetect/internal/circuit"
)

func build(t *testing.T, fn func(b *circuit.Builder)) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("t")
	fn(b)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return c
}

func TestAllStuckAtCount(t *testing.T) {
	c := build(t, func(b *circuit.Builder) {
		b.Input("a")
		b.Input("c")
		b.Gate(circuit.And, "g", "a", "c")
		b.Output("g")
	})
	// Nodes: a, c, g — no fanout, no branches → 6 faults.
	fs := AllStuckAt(c)
	if len(fs) != 6 {
		t.Fatalf("AllStuckAt = %d faults, want 6", len(fs))
	}
}

func TestAllStuckAtExcludesConsts(t *testing.T) {
	c := build(t, func(b *circuit.Builder) {
		b.Input("a")
		b.Const("k", false)
		b.Gate(circuit.Or, "g", "a", "k")
		b.Output("g")
	})
	for _, f := range AllStuckAt(c) {
		k := c.Node(f.Node).Kind
		if k == circuit.Const0 || k == circuit.Const1 {
			t.Fatalf("constant node in fault list")
		}
	}
}

func TestCollapseAndGate(t *testing.T) {
	c := build(t, func(b *circuit.Builder) {
		b.Input("a")
		b.Input("c")
		b.Gate(circuit.And, "g", "a", "c")
		b.Output("g")
	})
	col := CollapseStuckAt(c)
	// Classes: {a/0, c/0, g/0}, {a/1}, {c/1}, {g/1} → 4 representatives.
	if len(col) != 4 {
		t.Fatalf("collapsed = %d faults, want 4: %v", len(col), names(c, col))
	}
	// a/0 must be the representative of the merged class (lowest node ID).
	found := false
	for _, f := range col {
		if f.Name(c) == "a/0" {
			found = true
		}
		if f.Name(c) == "g/0" || f.Name(c) == "c/0" {
			t.Fatalf("non-representative fault %s kept", f.Name(c))
		}
	}
	if !found {
		t.Fatal("representative a/0 missing")
	}
}

func TestCollapseNandOrNor(t *testing.T) {
	// NAND: input s-a-0 ≡ output s-a-1.
	c := build(t, func(b *circuit.Builder) {
		b.Input("a")
		b.Input("c")
		b.Gate(circuit.Nand, "g", "a", "c")
		b.Output("g")
	})
	if got := len(CollapseStuckAt(c)); got != 4 {
		t.Fatalf("NAND collapsed = %d, want 4", got)
	}
	// OR: input s-a-1 ≡ output s-a-1.
	c = build(t, func(b *circuit.Builder) {
		b.Input("a")
		b.Input("c")
		b.Gate(circuit.Or, "g", "a", "c")
		b.Output("g")
	})
	if got := len(CollapseStuckAt(c)); got != 4 {
		t.Fatalf("OR collapsed = %d, want 4", got)
	}
	// XOR: no equivalences → all 6 faults stay.
	c = build(t, func(b *circuit.Builder) {
		b.Input("a")
		b.Input("c")
		b.Gate(circuit.Xor, "g", "a", "c")
		b.Output("g")
	})
	if got := len(CollapseStuckAt(c)); got != 6 {
		t.Fatalf("XOR collapsed = %d, want 6", got)
	}
}

func TestCollapseInverterChain(t *testing.T) {
	// a → NOT n1 → NOT n2 (output). All faults collapse into 2 classes:
	// {a/0, n1/1, n2/0} and {a/1, n1/0, n2/1}.
	c := build(t, func(b *circuit.Builder) {
		b.Input("a")
		b.Gate(circuit.Not, "n1", "a")
		b.Gate(circuit.Not, "n2", "n1")
		b.Output("n2")
	})
	col := CollapseStuckAt(c)
	if len(col) != 2 {
		t.Fatalf("inverter chain collapsed = %d, want 2: %v", len(col), names(c, col))
	}
}

func TestCollapseStopsAtFanout(t *testing.T) {
	// a fans out to two AND gates: stem faults and branch faults are
	// distinct sites; the branch s-a-0 merges into its gate output, the
	// stem does not.
	c := build(t, func(b *circuit.Builder) {
		b.Input("a")
		b.Input("c")
		b.Input("d")
		b.Gate(circuit.And, "g1", "a", "c")
		b.Gate(circuit.And, "g2", "a", "d")
		b.Output("g1")
		b.Output("g2")
	})
	col := CollapseStuckAt(c)
	// Sites: a (stem), a~0, a~1 (branches), c, d, g1, g2 = 7 nodes, 14 raw.
	// Equivalences: {a~0/0, c/0, g1/0}, {a~1/0, d/0, g2/0} → 14-4 = 10.
	if len(col) != 10 {
		t.Fatalf("collapsed = %d, want 10: %v", len(col), names(c, col))
	}
	// The stem faults a/0 and a/1 must both survive.
	var haveStem0, haveStem1 bool
	for _, f := range col {
		switch f.Name(c) {
		case "a/0":
			haveStem0 = true
		case "a/1":
			haveStem1 = true
		}
	}
	if !haveStem0 || !haveStem1 {
		t.Fatal("stem faults were merged across the fanout point")
	}
}

func TestCollapseDeterministic(t *testing.T) {
	mk := func() *circuit.Circuit {
		return build(t, func(b *circuit.Builder) {
			b.Input("a")
			b.Input("c")
			b.Gate(circuit.And, "g1", "a", "c")
			b.Gate(circuit.Not, "n", "g1")
			b.Output("n")
		})
	}
	a := CollapseStuckAt(mk())
	b := CollapseStuckAt(mk())
	if len(a) != len(b) {
		t.Fatal("collapse not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("collapse not deterministic")
		}
	}
}

func TestCollapseRatio(t *testing.T) {
	c := build(t, func(b *circuit.Builder) {
		b.Input("a")
		b.Input("c")
		b.Gate(circuit.And, "g", "a", "c")
		b.Output("g")
	})
	r := CollapseRatio(c)
	if r <= 0 || r > 1 {
		t.Fatalf("CollapseRatio = %v", r)
	}
	if r != 4.0/6.0 {
		t.Fatalf("CollapseRatio = %v, want 2/3", r)
	}
}

func TestBridgesUniverse(t *testing.T) {
	// Two independent AND gates and an OR combining them: OR is reachable
	// from both ANDs, so the only non-feedback pair is (g1, g2): 4 faults.
	c := build(t, func(b *circuit.Builder) {
		b.Input("a")
		b.Input("c")
		b.Input("d")
		b.Input("e")
		b.Gate(circuit.And, "g1", "a", "c")
		b.Gate(circuit.And, "g2", "d", "e")
		b.Gate(circuit.Or, "g3", "g1", "g2")
		b.Output("g3")
	})
	bs := Bridges(c)
	if len(bs) != 4 {
		t.Fatalf("Bridges = %d faults, want 4", len(bs))
	}
	g1, _ := c.NodeByName("g1")
	g2, _ := c.NodeByName("g2")
	seen := make(map[Bridge]bool)
	for _, g := range bs {
		seen[g] = true
		pair := (g.Dominant == g1.ID && g.Victim == g2.ID) || (g.Dominant == g2.ID && g.Victim == g1.ID)
		if !pair {
			t.Fatalf("unexpected bridge %s", g.Name(c))
		}
	}
	if len(seen) != 4 {
		t.Fatal("duplicate bridges")
	}
}

func TestBridgesExcludeFeedback(t *testing.T) {
	// g2 depends on g1 → the pair is a feedback bridge and is excluded.
	c := build(t, func(b *circuit.Builder) {
		b.Input("a")
		b.Input("c")
		b.Input("d")
		b.Gate(circuit.And, "g1", "a", "c")
		b.Gate(circuit.And, "g2", "g1", "d")
		b.Output("g2")
	})
	if bs := Bridges(c); len(bs) != 0 {
		t.Fatalf("Bridges = %d faults, want 0 (feedback pair)", len(bs))
	}
}

func TestBridgesOnlyMultiInputGates(t *testing.T) {
	// Inverters and buffers are not bridge sites.
	c := build(t, func(b *circuit.Builder) {
		b.Input("a")
		b.Input("c")
		b.Gate(circuit.Not, "n1", "a")
		b.Gate(circuit.Buf, "b1", "c")
		b.Gate(circuit.And, "g1", "n1", "b1")
		b.Output("g1")
	})
	if sites := BridgeSites(c); len(sites) != 1 {
		t.Fatalf("BridgeSites = %d, want 1 (only g1)", len(sites))
	}
	if bs := Bridges(c); len(bs) != 0 {
		t.Fatalf("Bridges = %d, want 0 (a single site cannot bridge)", len(bs))
	}
}

func TestBridgeName(t *testing.T) {
	c := build(t, func(b *circuit.Builder) {
		b.Input("a")
		b.Input("c")
		b.Input("d")
		b.Input("e")
		b.Gate(circuit.And, "g1", "a", "c")
		b.Gate(circuit.And, "g2", "d", "e")
		b.Gate(circuit.Or, "g3", "g1", "g2")
		b.Output("g3")
	})
	g1, _ := c.NodeByName("g1")
	g2, _ := c.NodeByName("g2")
	br := Bridge{Dominant: g1.ID, Victim: g2.ID, Value: false}
	if got := br.Name(c); got != "(g1,0,g2,1)" {
		t.Fatalf("Name = %q", got)
	}
	br.Value = true
	if got := br.Name(c); got != "(g1,1,g2,0)" {
		t.Fatalf("Name = %q", got)
	}
}

func TestStuckAtName(t *testing.T) {
	c := build(t, func(b *circuit.Builder) {
		b.Input("a")
		b.Input("c")
		b.Gate(circuit.And, "g", "a", "c")
		b.Output("g")
	})
	a, _ := c.NodeByName("a")
	if got := (StuckAt{Node: a.ID, Value: true}).Name(c); got != "a/1" {
		t.Fatalf("Name = %q", got)
	}
	if got := (StuckAt{Node: a.ID, Value: false}).Name(c); got != "a/0" {
		t.Fatalf("Name = %q", got)
	}
}

func names(c *circuit.Circuit, fs []StuckAt) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Name(c)
	}
	return out
}

func TestDominanceCollapse(t *testing.T) {
	c := build(t, func(b *circuit.Builder) {
		b.Input("a")
		b.Input("c")
		b.Gate(circuit.And, "g", "a", "c")
		b.Output("g")
	})
	eq := CollapseStuckAt(c)
	dom := DominanceCollapseStuckAt(c)
	if len(dom) >= len(eq) {
		t.Fatalf("dominance (%d) did not shrink equivalence (%d)", len(dom), len(eq))
	}
	// g/1 must be dropped (dominates a/1 and c/1), which stay.
	var haveG1, haveA1, haveC1 bool
	for _, f := range dom {
		switch f.Name(c) {
		case "g/1":
			haveG1 = true
		case "a/1":
			haveA1 = true
		case "c/1":
			haveC1 = true
		}
	}
	if haveG1 {
		t.Fatal("dominated-dropping failed: g/1 still present")
	}
	if !haveA1 || !haveC1 {
		t.Fatal("input s-a-1 faults must survive dominance collapsing")
	}
}

func TestDominanceSemantics(t *testing.T) {
	// Semantic check on random circuits: every fault dropped by dominance
	// collapsing is detected by any test set detecting all kept faults.
	// Here: verify T(dropped) ⊇ T(some kept input fault) for AND/OR gates
	// via the simulator is covered in sim tests; structurally we at least
	// confirm the dropped faults are exactly gate-output non-controlled
	// stuck faults.
	c := build(t, func(b *circuit.Builder) {
		b.Input("a")
		b.Input("c")
		b.Input("d")
		b.Gate(circuit.Or, "g1", "a", "c")
		b.Gate(circuit.Nand, "g2", "g1", "d")
		b.Output("g2")
	})
	dom := DominanceCollapseStuckAt(c)
	for _, f := range dom {
		n := c.Node(f.Node)
		if n.Kind == circuit.Or && !f.Value {
			t.Fatalf("OR output s-a-0 (%s) not dropped", f.Name(c))
		}
		if n.Kind == circuit.Nand && !f.Value {
			t.Fatalf("NAND output s-a-0 (%s) not dropped", f.Name(c))
		}
	}
}
