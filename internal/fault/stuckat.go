// Package fault defines the two fault universes of the paper:
//
//   - the target set F: collapsed single stuck-at faults (structural
//     equivalence collapsing), and
//   - the untargeted set G: four-way bridging faults between outputs of
//     multi-input gates, excluding feedback bridges.
package fault

import (
	"fmt"

	"ndetect/internal/circuit"
)

// StuckAt is a single stuck-at fault: line Node stuck at Value.
type StuckAt struct {
	Node  int
	Value bool
}

// String renders the fault in the paper's l/a notation using the node name.
func (f StuckAt) Name(c *circuit.Circuit) string {
	v := 0
	if f.Value {
		v = 1
	}
	return fmt.Sprintf("%s/%d", c.Node(f.Node).Name, v)
}

// AllStuckAt returns the uncollapsed stuck-at universe: two faults per node
// (every primary input, gate output, and fanout branch is a fault site;
// constants are excluded since half their faults are meaningless and the
// other half are modeled on their fanout).
func AllStuckAt(c *circuit.Circuit) []StuckAt {
	out := make([]StuckAt, 0, 2*c.NumNodes())
	for _, n := range c.Nodes {
		if n.Kind == circuit.Const0 || n.Kind == circuit.Const1 {
			continue
		}
		out = append(out, StuckAt{Node: n.ID, Value: false}, StuckAt{Node: n.ID, Value: true})
	}
	return out
}

// CollapseStuckAt returns one representative per structural equivalence
// class of the stuck-at universe. The classical rules are applied:
//
//	AND : input s-a-0 ≡ output s-a-0     NAND: input s-a-0 ≡ output s-a-1
//	OR  : input s-a-1 ≡ output s-a-1     NOR : input s-a-1 ≡ output s-a-0
//	BUF : input s-a-v ≡ output s-a-v     NOT : input s-a-v ≡ output s-a-¬v
//
// Fanout stems and their branches are distinct sites (no equivalence across
// a fanout point), which the explicit Branch nodes enforce: a Branch node's
// fault is only ever merged downstream via its consuming gate's rule.
// The representative of each class is its lowest (node ID, value) member,
// making the result deterministic.
func CollapseStuckAt(c *circuit.Circuit) []StuckAt {
	n := c.NumNodes()
	parent := make([]int, 2*n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra < rb {
				parent[rb] = ra
			} else {
				parent[ra] = rb
			}
		}
	}
	id := func(node int, value bool) int {
		if value {
			return 2*node + 1
		}
		return 2 * node
	}

	for _, nd := range c.Nodes {
		switch nd.Kind {
		case circuit.And:
			for _, p := range nd.Fanin {
				union(id(p, false), id(nd.ID, false))
			}
		case circuit.Nand:
			for _, p := range nd.Fanin {
				union(id(p, false), id(nd.ID, true))
			}
		case circuit.Or:
			for _, p := range nd.Fanin {
				union(id(p, true), id(nd.ID, true))
			}
		case circuit.Nor:
			for _, p := range nd.Fanin {
				union(id(p, true), id(nd.ID, false))
			}
		case circuit.Buf:
			union(id(nd.Fanin[0], false), id(nd.ID, false))
			union(id(nd.Fanin[0], true), id(nd.ID, true))
		case circuit.Not:
			union(id(nd.Fanin[0], false), id(nd.ID, true))
			union(id(nd.Fanin[0], true), id(nd.ID, false))
		}
	}

	var out []StuckAt
	for _, f := range AllStuckAt(c) {
		fid := id(f.Node, f.Value)
		if find(fid) == fid {
			out = append(out, f)
		} else {
			// The class representative might sit on a Const node, which
			// AllStuckAt excludes; adopt this fault instead.
			rep := find(fid)
			repNode := c.Node(rep / 2)
			if repNode.Kind == circuit.Const0 || repNode.Kind == circuit.Const1 {
				// Re-root the class at this fault.
				parent[rep] = fid
				parent[fid] = fid
				out = append(out, f)
			}
		}
	}
	return out
}

// CollapseRatio returns |collapsed| / |all| for diagnostics.
func CollapseRatio(c *circuit.Circuit) float64 {
	all := len(AllStuckAt(c))
	if all == 0 {
		return 1
	}
	return float64(len(CollapseStuckAt(c))) / float64(all)
}
