package fault

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"ndetect/internal/circuit"
)

// modelCircuit is a small multi-gate circuit with fanout, used by the
// registry tests: enough structure that every provider enumerates a
// non-trivial set.
func modelCircuit(t *testing.T) *circuit.Circuit {
	t.Helper()
	return build(t, func(b *circuit.Builder) {
		b.Input("a")
		b.Input("c")
		b.Input("d")
		b.Gate(circuit.And, "g1", "a", "c")
		b.Gate(circuit.Nand, "g2", "c", "d")
		b.Gate(circuit.Or, "g3", "g1", "g2")
		b.Output("g3")
	})
}

func TestRegistryModels(t *testing.T) {
	want := []string{"msa2", "stuckat+bridge4", "transition"}
	if got := ModelIDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ModelIDs = %v, want %v (sorted)", got, want)
	}

	if Default().ID() != DefaultModelID {
		t.Fatalf("Default().ID() = %q, want %q", Default().ID(), DefaultModelID)
	}
	m, err := Resolve("")
	if err != nil || m.ID() != DefaultModelID {
		t.Fatalf(`Resolve("") = %v, %v; want the default model`, m, err)
	}
	if m, err := Resolve(DefaultModelID); err != nil || m.ID() != DefaultModelID {
		t.Fatalf("Resolve(default) = %v, %v", m, err)
	}
	if _, err := Resolve("no-such-model"); err == nil {
		t.Fatal("Resolve of an unknown ID succeeded")
	} else if !strings.Contains(err.Error(), "no-such-model") {
		t.Fatalf("unknown-model error %q does not name the ID", err)
	}

	// The shape contract each analysis layer relies on: Definition 2 needs
	// stuck-at targets over single vectors, which transition's pair space
	// cannot provide.
	for _, tc := range []struct {
		id    string
		space Space
		def2  bool
	}{
		{DefaultModelID, SingleVector, true},
		{"transition", VectorPair, false},
		{"msa2", SingleVector, true},
	} {
		m, err := Resolve(tc.id)
		if err != nil {
			t.Fatal(err)
		}
		if m.Space() != tc.space || m.Def2Capable() != tc.def2 {
			t.Errorf("%s: Space=%v Def2Capable=%v, want %v/%v",
				tc.id, m.Space(), m.Def2Capable(), tc.space, tc.def2)
		}
	}
}

// Enumeration must be a pure function of the circuit: two builds of the
// same source yield element-wise identical descriptor lists for every
// model and set, because enumeration order joins result identities.
func TestEnumerationDeterministic(t *testing.T) {
	a, b := modelCircuit(t), modelCircuit(t)
	for _, id := range ModelIDs() {
		m, err := Resolve(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, set := range []Set{TargetSet, UntargetedSet} {
			da := EnumerateSet(m, a, set)
			db := EnumerateSet(m, b, set)
			if !reflect.DeepEqual(da, db) {
				t.Errorf("%s set %d: enumeration differs across identical builds", id, set)
			}
			if len(da) == 0 {
				t.Errorf("%s set %d: empty enumeration on a multi-gate circuit", id, set)
			}
		}
	}
}

// Every enumerated descriptor must pass its own provider's validation —
// the store codec round-trips through exactly this check.
func TestEnumeratedDescriptorsValidate(t *testing.T) {
	c := modelCircuit(t)
	for _, id := range ModelIDs() {
		m, err := Resolve(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, set := range []Set{TargetSet, UntargetedSet} {
			p := m.Provider(set)
			for _, d := range p.Enumerate(c) {
				if err := p.Validate(c, d); err != nil {
					t.Errorf("%s: enumerated descriptor %+v fails validation: %v", id, d, err)
				}
				if p.Name(c, d) == "" {
					t.Errorf("%s: descriptor %+v has an empty name", id, d)
				}
			}
		}
	}
}

func TestProviderNames(t *testing.T) {
	c := modelCircuit(t)
	g1, _ := c.NodeByName("g1")
	g2, _ := c.NodeByName("g2")

	tp := TransitionProvider{}
	if got := tp.Name(c, Descriptor{A: int32(g1.ID), B: -1, V: 0}); got != "g1/str" {
		t.Errorf("slow-to-rise name = %q, want g1/str", got)
	}
	if got := tp.Name(c, Descriptor{A: int32(g1.ID), B: -1, V: 1}); got != "g1/stf" {
		t.Errorf("slow-to-fall name = %q, want g1/stf", got)
	}

	pp := PairStuckAtProvider{}
	a, b := int32(g1.ID), int32(g2.ID)
	if a > b {
		a, b = b, a
	}
	got := pp.Name(c, Descriptor{A: a, B: b, V: 0b10})
	want := fmt.Sprintf("{%s/0,%s/1}", c.Node(int(a)).Name, c.Node(int(b)).Name)
	if got != want {
		t.Errorf("pair name = %q, want %q", got, want)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	c := modelCircuit(t)
	n := int32(c.NumNodes())
	cases := []struct {
		p SetProvider
		d Descriptor
	}{
		{StuckAtProvider{}, Descriptor{A: n, B: -1, V: 0}},   // node out of range
		{StuckAtProvider{}, Descriptor{A: 0, B: 1, V: 0}},    // B must be -1
		{StuckAtProvider{}, Descriptor{A: 0, B: -1, V: 2}},   // V out of range
		{BridgeProvider{}, Descriptor{A: 0, B: 0, V: 0}},     // self-bridge
		{BridgeProvider{}, Descriptor{A: 0, B: n, V: 0}},     // victim out of range
		{TransitionProvider{}, Descriptor{A: -1, B: -1}},     // node out of range
		{TransitionProvider{}, Descriptor{A: 0, B: 2, V: 0}}, // B must be -1
		{PairStuckAtProvider{}, Descriptor{A: 2, B: 1, V: 0}}, // A >= B
		{PairStuckAtProvider{}, Descriptor{A: 0, B: 1, V: 4}}, // V out of range
	}
	for _, tc := range cases {
		if err := tc.p.Validate(c, tc.d); err == nil {
			t.Errorf("%T accepted malformed descriptor %+v", tc.p, tc.d)
		}
	}
}

func TestSpaceSize(t *testing.T) {
	c := modelCircuit(t) // 3 inputs, |U| = 8
	if got, err := SpaceSize(Default(), c); err != nil || got != 8 {
		t.Fatalf("SpaceSize(default) = %d, %v; want 8", got, err)
	}
	tr, err := Resolve("transition")
	if err != nil {
		t.Fatal(err)
	}
	if got, err := SpaceSize(tr, c); err != nil || got != 64 {
		t.Fatalf("SpaceSize(transition) = %d, %v; want |U|² = 64", got, err)
	}

	// 32 inputs: |U| = 2³² fits an int, |U|² = 2⁶⁴ does not — the pair
	// space must refuse rather than wrap.
	wide := build(t, func(b *circuit.Builder) {
		names := make([]string, 32)
		for i := range names {
			names[i] = fmt.Sprintf("x%d", i)
			b.Input(names[i])
		}
		b.Gate(circuit.Or, "g", names...)
		b.Output("g")
	})
	if _, err := SpaceSize(tr, wide); err == nil {
		t.Fatal("SpaceSize(transition) over 32 inputs did not report overflow")
	}
}
