package kiss

import (
	"strings"
	"testing"
)

const lionSrc = `
# a 4-state, 2-input machine in the style of the 'lion' benchmark
.i 2
.o 1
.s 4
.p 11
.r st0
00 st0 st0 0
01 st0 st1 0
11 st0 st0 0
11 st1 st1 0
01 st1 st2 1
10 st1 st0 0
1- st2 st2 1
00 st2 st3 1
01 st3 st3 1
00 st3 st0 1
10 st3 st2 1
`

func parseLion(t *testing.T) *STG {
	t.Helper()
	m, err := ParseString("lion", lionSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return m
}

func TestParseBasics(t *testing.T) {
	m := parseLion(t)
	if m.NumInputs != 2 || m.NumOutputs != 1 {
		t.Fatalf("i=%d o=%d", m.NumInputs, m.NumOutputs)
	}
	if m.NumStates() != 4 {
		t.Fatalf("states = %d, want 4", m.NumStates())
	}
	if m.Reset != "st0" {
		t.Fatalf("reset = %q", m.Reset)
	}
	if len(m.Transitions) != 11 {
		t.Fatalf("transitions = %d, want 11", len(m.Transitions))
	}
	if m.StateBits() != 2 {
		t.Fatalf("StateBits = %d, want 2", m.StateBits())
	}
	if i, ok := m.StateIndex("st0"); !ok || i != 0 {
		t.Fatalf("StateIndex(st0) = %d,%v", i, ok)
	}
}

func TestParseDefaultsResetToFirstState(t *testing.T) {
	m, err := ParseString("x", ".i 1\n.o 1\n0 a b 1\n1 a a 0\n.e\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if m.Reset != "a" {
		t.Fatalf("reset = %q, want a", m.Reset)
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"no io":             "0 a b 1\n",
		"bad input cube":    ".i 2\n.o 1\n2- a b 1\n",
		"input cube len":    ".i 2\n.o 1\n0 a b 1\n",
		"output cube len":   ".i 1\n.o 2\n0 a b 1\n",
		"bad directive":     ".i 1\n.o 1\n.frob 3\n0 a b 1\n",
		"wrong state count": ".i 1\n.o 1\n.s 5\n0 a b 1\n1 a a 0\n",
		"wrong term count":  ".i 1\n.o 1\n.p 9\n0 a b 1\n",
		"short transition":  ".i 1\n.o 1\n0 a b\n",
		"after .e":          ".i 1\n.o 1\n0 a b 1\n.e\n0 b a 1\n",
		"no transitions":    ".i 1\n.o 1\n.e\n",
		"bad .i":            ".i x\n.o 1\n0 a b 1\n",
	}
	for name, src := range bad {
		if _, err := ParseString(name, src); err == nil {
			t.Errorf("%s: Parse succeeded, want error", name)
		}
	}
}

func TestWildcardExpansion(t *testing.T) {
	src := ".i 1\n.o 1\n.r a\n0 a b 0\n0 b a 0\n1 * - 1\n.e\n"
	m, err := ParseString("w", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	// "1 * - 1" expands to a self-loop per state.
	var selfLoops int
	for _, tr := range m.Transitions {
		if tr.Input == "1" {
			if tr.To != tr.From {
				t.Fatalf("wildcard expansion produced %v, want self-loop", tr)
			}
			selfLoops++
		}
	}
	if selfLoops != 2 {
		t.Fatalf("self loops = %d, want 2", selfLoops)
	}
}

func TestCheckDeterministic(t *testing.T) {
	if err := parseLion(t).CheckDeterministic(); err != nil {
		t.Fatalf("lion should be deterministic: %v", err)
	}
	m, err := ParseString("nd", ".i 1\n.o 1\n0 a b 0\n0 a c 0\n.e\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := m.CheckDeterministic(); err == nil {
		t.Fatal("conflicting next states not detected")
	}
	m2, err := ParseString("nd2", ".i 1\n.o 1\n- a a 0\n0 a a 1\n.e\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := m2.CheckDeterministic(); err == nil {
		t.Fatal("conflicting outputs not detected")
	}
}

func TestCheckComplete(t *testing.T) {
	m := parseLion(t)
	// Uncovered (state, vector) pairs: st0/10, st1/00, st2/01, st3/11.
	if got := m.CheckComplete(); got != 4 {
		t.Fatalf("CheckComplete = %d, want 4", got)
	}
}

func TestSimulate(t *testing.T) {
	m := parseLion(t)
	// From st0 under input 01 (v=1): "-1 st0 st1 0" matches → st1, out 0.
	next, outs, ok := m.Simulate("st0", 1)
	if !ok || next != "st1" || outs[0] {
		t.Fatalf("Simulate(st0,01) = %s,%v,%v", next, outs, ok)
	}
	// From st1 under 01: "01 st1 st2 1" → st2, out 1.
	next, outs, ok = m.Simulate("st1", 1)
	if !ok || next != "st2" || !outs[0] {
		t.Fatalf("Simulate(st1,01) = %s,%v,%v", next, outs, ok)
	}
	// st0 under 10 (v=2) is unspecified: stays, outputs zero, ok=false.
	next, outs, ok = m.Simulate("st0", 2)
	if ok || next != "st0" || outs[0] {
		t.Fatalf("Simulate(st0,10) = %s,%v,%v", next, outs, ok)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	m := parseLion(t)
	var sb strings.Builder
	if err := m.Write(&sb); err != nil {
		t.Fatalf("Write: %v", err)
	}
	m2, err := ParseString("lion", sb.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, sb.String())
	}
	if m2.NumInputs != m.NumInputs || m2.NumOutputs != m.NumOutputs ||
		m2.NumStates() != m.NumStates() || len(m2.Transitions) != len(m.Transitions) ||
		m2.Reset != m.Reset {
		t.Fatal("round trip changed the machine shape")
	}
	// Behavioural equivalence state by state, vector by vector.
	for _, st := range m.States {
		for v := 0; v < 4; v++ {
			n1, o1, _ := m.Simulate(st, v)
			n2, o2, _ := m2.Simulate(st, v)
			if n1 != n2 || o1[0] != o2[0] {
				t.Fatalf("round trip changed behaviour at state %s, v=%d", st, v)
			}
		}
	}
}

func TestCubeMatches(t *testing.T) {
	// cube "1-0" over 3 inputs, MSB-first: input0=1, input2=0.
	cases := []struct {
		v    int
		want bool
	}{
		{0b100, true}, {0b110, true}, {0b101, false}, {0b000, false}, {0b111, false},
	}
	for _, c := range cases {
		if got := cubeMatches("1-0", c.v, 3); got != c.want {
			t.Errorf("cubeMatches(1-0, %03b) = %v, want %v", c.v, got, c.want)
		}
	}
}
