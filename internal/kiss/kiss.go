// Package kiss parses and models KISS2 state-transition-graph (STG)
// descriptions, the format of the MCNC finite-state-machine benchmarks that
// the paper's evaluation is based on.
//
// A KISS2 file looks like:
//
//	.i 2
//	.o 1
//	.s 4
//	.p 11
//	.r st0
//	00 st0 st0 0
//	-1 st0 st1 0
//	...
//	.e
//
// Each transition line is: input-cube current-state next-state output-cube,
// where cubes are strings over {0,1,-}.
package kiss

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Transition is one edge of the STG.
type Transition struct {
	Input  string // cube over {0,1,-}, length = STG.NumInputs
	From   string // symbolic present state ("*" matches any state in some dialects; expanded by Parse)
	To     string
	Output string // cube over {0,1,-}, length = STG.NumOutputs
}

// STG is a symbolic finite-state machine.
type STG struct {
	Name        string
	NumInputs   int
	NumOutputs  int
	States      []string // in order of first appearance; Reset first if declared
	Reset       string
	Transitions []Transition

	stateIndex map[string]int
}

// NumStates returns the number of symbolic states.
func (m *STG) NumStates() int { return len(m.States) }

// StateBits returns the number of bits of a minimal binary state encoding.
func (m *STG) StateBits() int {
	b := 0
	for (1 << uint(b)) < len(m.States) {
		b++
	}
	if b == 0 {
		b = 1 // a 1-state machine still needs one state line
	}
	return b
}

// StateIndex returns the index of a state name.
func (m *STG) StateIndex(name string) (int, bool) {
	i, ok := m.stateIndex[name]
	return i, ok
}

// addState registers a state name on first sight.
func (m *STG) addState(name string) {
	if m.stateIndex == nil {
		m.stateIndex = make(map[string]int)
	}
	if _, ok := m.stateIndex[name]; !ok {
		m.stateIndex[name] = len(m.States)
		m.States = append(m.States, name)
	}
}

func validCube(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r != '0' && r != '1' && r != '-' {
			return false
		}
	}
	return true
}

// Parse reads a KISS2 STG. The name is attached to the result (KISS2 has no
// in-band name).
func Parse(name string, r io.Reader) (*STG, error) {
	m := &STG{Name: name, NumInputs: -1, NumOutputs: -1}
	declStates, declTerms := -1, -1
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	ended := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if ended {
			return nil, fmt.Errorf("%s:%d: content after .e", name, lineNo)
		}
		if strings.HasPrefix(line, ".") {
			fields := strings.Fields(line)
			switch fields[0] {
			case ".i", ".o", ".s", ".p":
				if len(fields) != 2 {
					return nil, fmt.Errorf("%s:%d: %s takes one integer", name, lineNo, fields[0])
				}
				v, err := strconv.Atoi(fields[1])
				if err != nil || v < 0 {
					return nil, fmt.Errorf("%s:%d: bad %s value %q", name, lineNo, fields[0], fields[1])
				}
				switch fields[0] {
				case ".i":
					m.NumInputs = v
				case ".o":
					m.NumOutputs = v
				case ".s":
					declStates = v
				case ".p":
					declTerms = v
				}
			case ".r":
				if len(fields) != 2 {
					return nil, fmt.Errorf("%s:%d: .r takes one state name", name, lineNo)
				}
				m.Reset = fields[1]
				m.addState(m.Reset)
			case ".e", ".end":
				ended = true
			case ".ilb", ".ob", ".latch", ".code":
				// Signal-name and encoding hints; irrelevant to the STG.
			default:
				return nil, fmt.Errorf("%s:%d: unknown directive %q", name, lineNo, fields[0])
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("%s:%d: transition needs 4 fields, got %d", name, lineNo, len(fields))
		}
		tr := Transition{Input: fields[0], From: fields[1], To: fields[2], Output: fields[3]}
		if m.NumInputs < 0 || m.NumOutputs < 0 {
			return nil, fmt.Errorf("%s:%d: transition before .i/.o", name, lineNo)
		}
		if !validCube(tr.Input) && !(m.NumInputs == 0 && tr.Input == "") {
			return nil, fmt.Errorf("%s:%d: bad input cube %q", name, lineNo, tr.Input)
		}
		if len(tr.Input) != m.NumInputs {
			return nil, fmt.Errorf("%s:%d: input cube %q length %d, want %d", name, lineNo, tr.Input, len(tr.Input), m.NumInputs)
		}
		if !validCube(tr.Output) {
			return nil, fmt.Errorf("%s:%d: bad output cube %q", name, lineNo, tr.Output)
		}
		if len(tr.Output) != m.NumOutputs {
			return nil, fmt.Errorf("%s:%d: output cube %q length %d, want %d", name, lineNo, tr.Output, len(tr.Output), m.NumOutputs)
		}
		if tr.From != "*" {
			m.addState(tr.From)
		}
		if tr.To != "*" && tr.To != "-" {
			m.addState(tr.To)
		}
		m.Transitions = append(m.Transitions, tr)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if m.NumInputs < 0 || m.NumOutputs < 0 {
		return nil, fmt.Errorf("%s: missing .i/.o", name)
	}
	if len(m.Transitions) == 0 {
		return nil, fmt.Errorf("%s: no transitions", name)
	}
	if declStates >= 0 && declStates != len(m.States) {
		return nil, fmt.Errorf("%s: .s declares %d states, found %d", name, declStates, len(m.States))
	}
	if declTerms >= 0 && declTerms != len(m.Transitions) {
		return nil, fmt.Errorf("%s: .p declares %d terms, found %d", name, declTerms, len(m.Transitions))
	}
	if m.Reset == "" {
		m.Reset = m.States[0]
	}
	m.expandWildcards()
	return m, nil
}

// ParseString is Parse over a string.
func ParseString(name, s string) (*STG, error) {
	return Parse(name, strings.NewReader(s))
}

// expandWildcards replaces From="*" transitions (any-state edges used by a
// few MCNC machines) with one copy per state, and To="-"/"*" (don't-care next
// state) with self-loops, keeping the machine fully symbolic.
func (m *STG) expandWildcards() {
	out := make([]Transition, 0, len(m.Transitions))
	for _, tr := range m.Transitions {
		froms := []string{tr.From}
		if tr.From == "*" {
			froms = m.States
		}
		for _, f := range froms {
			t := tr
			t.From = f
			if t.To == "*" || t.To == "-" {
				t.To = f
			}
			out = append(out, t)
		}
	}
	m.Transitions = out
}

// cubesOverlap reports whether two input cubes can match the same vector.
func cubesOverlap(a, b string) bool {
	for i := range a {
		if a[i] != '-' && b[i] != '-' && a[i] != b[i] {
			return false
		}
	}
	return true
}

// CheckDeterministic verifies that no two transitions from the same state
// have overlapping input cubes with conflicting next state or conflicting
// specified output bits. MCNC machines and the synthetic surrogates are
// deterministic; a violation indicates a corrupted source.
func (m *STG) CheckDeterministic() error {
	byState := make(map[string][]Transition)
	for _, tr := range m.Transitions {
		byState[tr.From] = append(byState[tr.From], tr)
	}
	for st, trs := range byState {
		for i := 0; i < len(trs); i++ {
			for j := i + 1; j < len(trs); j++ {
				if !cubesOverlap(trs[i].Input, trs[j].Input) {
					continue
				}
				if trs[i].To != trs[j].To {
					return fmt.Errorf("%s: state %s: cubes %s and %s overlap with different next states %s vs %s",
						m.Name, st, trs[i].Input, trs[j].Input, trs[i].To, trs[j].To)
				}
				for k := 0; k < m.NumOutputs; k++ {
					a, b := trs[i].Output[k], trs[j].Output[k]
					if a != '-' && b != '-' && a != b {
						return fmt.Errorf("%s: state %s: cubes %s and %s overlap with conflicting output bit %d",
							m.Name, st, trs[i].Input, trs[j].Input, k)
					}
				}
			}
		}
	}
	return nil
}

// CheckComplete reports, per state, whether the input cubes cover all 2^i
// input combinations. The paper's analysis does not require completeness
// (uncovered combinations synthesize to "next state 0 / outputs 0"), but the
// information is useful diagnostics. It returns the total number of
// (state, input vector) pairs left unspecified.
func (m *STG) CheckComplete() int {
	if m.NumInputs > 20 {
		return -1 // too large to enumerate; not a benchmark-scale machine
	}
	unspecified := 0
	size := 1 << uint(m.NumInputs)
	byState := make(map[string][]Transition)
	for _, tr := range m.Transitions {
		byState[tr.From] = append(byState[tr.From], tr)
	}
	for _, st := range m.States {
		for v := 0; v < size; v++ {
			covered := false
			for _, tr := range byState[st] {
				if cubeMatches(tr.Input, v, m.NumInputs) {
					covered = true
					break
				}
			}
			if !covered {
				unspecified++
			}
		}
	}
	return unspecified
}

// cubeMatches reports whether the cube matches input vector v (MSB-first:
// cube[0] is the first input, matching circuit.VectorBit).
func cubeMatches(cube string, v, n int) bool {
	for i := 0; i < n; i++ {
		bit := (v >> uint(n-1-i)) & 1
		switch cube[i] {
		case '0':
			if bit != 0 {
				return false
			}
		case '1':
			if bit != 1 {
				return false
			}
		}
	}
	return true
}

// Write serializes the STG in KISS2 format.
func (m *STG) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".i %d\n.o %d\n.p %d\n.s %d\n.r %s\n",
		m.NumInputs, m.NumOutputs, len(m.Transitions), len(m.States), m.Reset)
	for _, tr := range m.Transitions {
		in := tr.Input
		if in == "" {
			in = "-"
		}
		fmt.Fprintf(bw, "%s %s %s %s\n", in, tr.From, tr.To, tr.Output)
	}
	fmt.Fprintln(bw, ".e")
	return bw.Flush()
}

// Simulate runs the symbolic machine for one step: given a state and a fully
// specified input vector, it returns the next state and output bits ('-'
// output bits resolve to 0, matching the synthesis convention). The boolean
// result reports whether any transition matched; on no match the machine
// stays and outputs zeros (again matching synthesis, which sends unspecified
// entries to next-state-code 0 — see synth). Simulate is used by tests to
// cross-check synthesized logic against the symbolic STG.
func (m *STG) Simulate(state string, v int) (next string, outputs []bool, matched bool) {
	outputs = make([]bool, m.NumOutputs)
	for _, tr := range m.Transitions {
		if tr.From != state {
			continue
		}
		if !cubeMatches(tr.Input, v, m.NumInputs) {
			continue
		}
		for k := 0; k < m.NumOutputs; k++ {
			outputs[k] = tr.Output[k] == '1'
		}
		return tr.To, outputs, true
	}
	return state, outputs, false
}
