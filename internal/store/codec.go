package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"ndetect/internal/bitset"
	"ndetect/internal/circuit"
	"ndetect/internal/fault"
	"ndetect/internal/ndetect"
)

// The universe artifact codec: a versioned binary serialization of the
// exhaustive analysis intermediate — the fault tables and per-fault
// detection bitsets of DESIGN.md §11's universe tier. The circuit itself
// is NOT serialized: an artifact is keyed by the canonical circuit hash,
// so the decoder always has the canonical circuit in hand and rebuilds
// fault names and universe size from it. That keeps artifacts compact and
// guarantees a decoded universe is assembled by the exact code path a
// fresh construction uses (ndetect.AssembleUniverse).
//
// Layout (all integers little-endian, no padding):
//
//	magic   "NDUV"
//	version uint16                        (bump on incompatible change)
//	size    uint64                        |U| — must match the circuit
//	nT, nG  uint32, uint32                target / untargeted counts
//	targets nT × {node uint32, value u8}  stuck-at table
//	bridges nG × {dom, vic uint32, value u8}
//	tsets   (nT+nG) × words               words = ⌈size/64⌉ uint64 each,
//	                                      targets first, table order
//	crc     uint32                        IEEE CRC-32 of everything above
//
// Every decode error is ErrBadArtifact-wrapped so callers can distinguish
// "stale or corrupt artifact, rebuild it" from real failures.

// universeMagic identifies a universe artifact file.
const universeMagic = "NDUV"

// UniverseCodecVersion is the current artifact layout version. Decoders
// reject other versions, which readers treat as a cache miss — stale
// artifacts are rebuilt, never migrated.
const UniverseCodecVersion = 1

// ErrBadArtifact wraps every decode failure: wrong magic, wrong version,
// truncation, checksum mismatch, or inconsistency with the circuit the
// artifact claims to describe.
var ErrBadArtifact = fmt.Errorf("store: bad universe artifact")

func badArtifact(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadArtifact, fmt.Sprintf(format, args...))
}

// EncodeUniverse serializes a universe's fault tables and T-sets.
func EncodeUniverse(u *ndetect.CircuitUniverse) []byte {
	words := (u.Size + 63) / 64
	n := 4 + 2 + 8 + 4 + 4 + 5*len(u.StuckAt) + 9*len(u.Bridges) +
		8*words*(len(u.StuckAt)+len(u.Bridges)) + 4
	buf := make([]byte, 0, n)
	buf = append(buf, universeMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, UniverseCodecVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(u.Size))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(u.StuckAt)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(u.Bridges)))
	for _, f := range u.StuckAt {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(f.Node))
		buf = append(buf, boolByte(f.Value))
	}
	for _, g := range u.Bridges {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(g.Dominant))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(g.Victim))
		buf = append(buf, boolByte(g.Value))
	}
	for _, f := range u.Targets {
		for _, w := range f.T.Words() {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
	}
	for _, g := range u.Untargeted {
		for _, w := range g.T.Words() {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// DecodeUniverse rebuilds a universe for the given canonical circuit from
// an encoded artifact. The circuit must be the one the artifact was built
// from (same canonical hash); size and node-ID consistency are verified,
// and any mismatch, truncation or corruption returns an
// ErrBadArtifact-wrapped error.
func DecodeUniverse(c *circuit.Circuit, data []byte) (*ndetect.CircuitUniverse, error) {
	if len(data) < 4+2+8+4+4+4 {
		return nil, badArtifact("truncated header (%d bytes)", len(data))
	}
	if string(data[:4]) != universeMagic {
		return nil, badArtifact("wrong magic %q", data[:4])
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, badArtifact("checksum mismatch")
	}
	r := reader{buf: body[4:]}
	if v := r.u16(); v != UniverseCodecVersion {
		return nil, badArtifact("version %d (want %d)", v, UniverseCodecVersion)
	}
	size := int(r.u64())
	if size != c.VectorSpaceSize() || size <= 0 {
		return nil, badArtifact("universe size %d does not match circuit (|U| = %d)", size, c.VectorSpaceSize())
	}
	nT, nG := int(r.u32()), int(r.u32())
	words := (size + 63) / 64
	need := 5*nT + 9*nG + 8*words*(nT+nG)
	if len(r.buf)-r.off != need {
		return nil, badArtifact("payload is %d bytes, want %d", len(r.buf)-r.off, need)
	}

	nodes := c.NumNodes()
	sas := make([]fault.StuckAt, nT)
	for i := range sas {
		node := int(r.u32())
		if node < 0 || node >= nodes {
			return nil, badArtifact("stuck-at %d names node %d of %d", i, node, nodes)
		}
		sas[i] = fault.StuckAt{Node: node, Value: r.u8() != 0}
	}
	brs := make([]fault.Bridge, nG)
	for i := range brs {
		dom, vic := int(r.u32()), int(r.u32())
		if dom < 0 || dom >= nodes || vic < 0 || vic >= nodes {
			return nil, badArtifact("bridge %d names nodes (%d,%d) of %d", i, dom, vic, nodes)
		}
		brs[i] = fault.Bridge{Dominant: dom, Victim: vic, Value: r.u8() != 0}
	}
	readSets := func(n int) []*bitset.Set {
		sets := make([]*bitset.Set, n)
		for i := range sets {
			s := bitset.New(size)
			for w := 0; w < words; w++ {
				s.SetWord(w, r.u64())
			}
			sets[i] = s
		}
		return sets
	}
	saT := readSets(nT)
	brT := readSets(nG)
	return ndetect.AssembleUniverse(c, sas, brs, saT, brT), nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// reader is a tiny cursor over a length-prechecked buffer (DecodeUniverse
// validates the total length before any field reads).
type reader struct {
	buf []byte
	off int
}

func (r *reader) u8() byte { b := r.buf[r.off]; r.off++; return b }
func (r *reader) u16() uint16 {
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}
func (r *reader) u32() uint32 {
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}
func (r *reader) u64() uint64 {
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}
