package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"ndetect/internal/bitset"
	"ndetect/internal/circuit"
	"ndetect/internal/fault"
	"ndetect/internal/ndetect"
)

// The universe artifact codec: a versioned binary serialization of the
// exhaustive analysis intermediate — the fault tables and per-fault
// detection bitsets of DESIGN.md §11's universe tier. The circuit itself
// is NOT serialized: an artifact is keyed by the canonical circuit hash,
// so the decoder always has the canonical circuit in hand and rebuilds
// fault names and universe size from it. That keeps artifacts compact and
// guarantees a decoded universe is assembled by the exact code path a
// fresh construction uses (ndetect.AssembleUniverse).
//
// Version 2 layout (all integers little-endian, no padding):
//
//	magic   "NDUV"
//	version uint16                        (bump on incompatible change)
//	model   uint16 length + bytes         fault model ID
//	size    uint64                        test-index space size — must
//	                                      match the model over the circuit
//	nT, nG  uint32, uint32                target / untargeted counts
//	faults  (nT+nG) × {A u32, B u32, V u8}  model-neutral fault.Descriptor
//	                                      records, targets first
//	tsets   (nT+nG) × words               words = ⌈size/64⌉ uint64 each,
//	                                      targets first, table order
//	crc     uint32                        IEEE CRC-32 of everything above
//
// Version 1 artifacts (pre-registry: 5-byte stuck-at + 9-byte bridge
// records, size always |U|) carried no model field; they decode as the
// implicit default model and are rejected — rebuild, never migrate — when
// the reader expects any other model.
//
// Every decode error is ErrBadArtifact-wrapped so callers can distinguish
// "stale or corrupt artifact, rebuild it" from real failures.

// universeMagic identifies a universe artifact file.
const universeMagic = "NDUV"

// UniverseCodecVersion is the current artifact layout version. Decoders
// reject versions they cannot read, which readers treat as a cache miss —
// stale artifacts are rebuilt, never migrated.
const UniverseCodecVersion = 2

// universeCodecV1 is the pre-registry layout, still decodable under the
// default model.
const universeCodecV1 = 1

// ErrBadArtifact wraps every decode failure: wrong magic, wrong version,
// truncation, checksum mismatch, model skew, or inconsistency with the
// circuit the artifact claims to describe.
var ErrBadArtifact = fmt.Errorf("store: bad universe artifact")

func badArtifact(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadArtifact, fmt.Sprintf(format, args...))
}

// EncodeUniverse serializes a universe's fault tables and T-sets in the
// current (v2) layout.
func EncodeUniverse(u *ndetect.CircuitUniverse) []byte {
	model := u.Model.ID()
	words := (u.Size + 63) / 64
	nT, nG := len(u.TargetFaults), len(u.UntargetedFaults)
	n := 4 + 2 + 2 + len(model) + 8 + 4 + 4 + 9*(nT+nG) + 8*words*(nT+nG) + 4
	buf := make([]byte, 0, n)
	buf = append(buf, universeMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, UniverseCodecVersion)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(model)))
	buf = append(buf, model...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(u.Size))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(nT))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(nG))
	for _, ds := range [2][]fault.Descriptor{u.TargetFaults, u.UntargetedFaults} {
		for _, d := range ds {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(d.A))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(d.B))
			buf = append(buf, d.V)
		}
	}
	for _, f := range u.Targets {
		for _, w := range f.T.Words() {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
	}
	for _, g := range u.Untargeted {
		for _, w := range g.T.Words() {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// DecodeUniverse rebuilds a universe for the given canonical circuit and
// fault model from an encoded artifact. The circuit must be the one the
// artifact was built from (same canonical hash); the artifact's model ID,
// space size and descriptor consistency are all verified, and any mismatch
// — including model skew, the artifact belonging to a different model —
// returns an ErrBadArtifact-wrapped error so readers rebuild.
func DecodeUniverse(c *circuit.Circuit, m fault.Model, data []byte) (*ndetect.CircuitUniverse, error) {
	if len(data) < 4+2+8+4+4+4 {
		return nil, badArtifact("truncated header (%d bytes)", len(data))
	}
	if string(data[:4]) != universeMagic {
		return nil, badArtifact("wrong magic %q", data[:4])
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, badArtifact("checksum mismatch")
	}
	r := reader{buf: body[4:]}
	switch v := r.u16(); v {
	case UniverseCodecVersion:
		return decodeV2(c, m, &r)
	case universeCodecV1:
		if m.ID() != fault.DefaultModelID {
			return nil, badArtifact("v1 artifact is implicitly %s, reader wants model %s",
				fault.DefaultModelID, m.ID())
		}
		return decodeV1(c, m, &r)
	default:
		return nil, badArtifact("version %d (want %d)", v, UniverseCodecVersion)
	}
}

func decodeV2(c *circuit.Circuit, m fault.Model, r *reader) (*ndetect.CircuitUniverse, error) {
	if len(r.buf)-r.off < 2 {
		return nil, badArtifact("truncated model field")
	}
	ml := int(r.u16())
	if len(r.buf)-r.off < ml+8+4+4 {
		return nil, badArtifact("truncated model field (%d bytes)", ml)
	}
	model := string(r.buf[r.off : r.off+ml])
	r.off += ml
	if model != m.ID() {
		return nil, badArtifact("artifact model %q, reader wants %q", model, m.ID())
	}
	wantSize, err := fault.SpaceSize(m, c)
	if err != nil {
		return nil, badArtifact("%v", err)
	}
	size := int(r.u64())
	if size != wantSize || size <= 0 {
		return nil, badArtifact("space size %d does not match model %s over circuit (%d)", size, m.ID(), wantSize)
	}
	nT, nG := int(r.u32()), int(r.u32())
	words := (size + 63) / 64
	need := 9*(nT+nG) + 8*words*(nT+nG)
	if nT < 0 || nG < 0 || len(r.buf)-r.off != need {
		return nil, badArtifact("payload is %d bytes, want %d", len(r.buf)-r.off, need)
	}
	readDescs := func(set fault.Set, n int) ([]fault.Descriptor, error) {
		p := m.Provider(set)
		out := make([]fault.Descriptor, n)
		for i := range out {
			d := fault.Descriptor{A: int32(r.u32()), B: int32(r.u32()), V: r.u8()}
			if err := p.Validate(c, d); err != nil {
				return nil, badArtifact("fault %d of set %d: %v", i, set, err)
			}
			out[i] = d
		}
		return out, nil
	}
	targets, err := readDescs(fault.TargetSet, nT)
	if err != nil {
		return nil, err
	}
	untargeted, err := readDescs(fault.UntargetedSet, nG)
	if err != nil {
		return nil, err
	}
	tT := readSets(r, nT, size, words)
	uT := readSets(r, nG, size, words)
	u, err := ndetect.AssembleUniverse(c, m, targets, untargeted, tT, uT)
	if err != nil {
		return nil, badArtifact("%v", err)
	}
	return u, nil
}

// decodeV1 reads the pre-registry layout: stuck-at records of 5 bytes,
// bridge records of 9, size always |U|, no model field.
func decodeV1(c *circuit.Circuit, m fault.Model, r *reader) (*ndetect.CircuitUniverse, error) {
	size := int(r.u64())
	if size != c.VectorSpaceSize() || size <= 0 {
		return nil, badArtifact("universe size %d does not match circuit (|U| = %d)", size, c.VectorSpaceSize())
	}
	nT, nG := int(r.u32()), int(r.u32())
	words := (size + 63) / 64
	need := 5*nT + 9*nG + 8*words*(nT+nG)
	if len(r.buf)-r.off != need {
		return nil, badArtifact("payload is %d bytes, want %d", len(r.buf)-r.off, need)
	}

	nodes := c.NumNodes()
	targets := make([]fault.Descriptor, nT)
	for i := range targets {
		node := int(r.u32())
		if node < 0 || node >= nodes {
			return nil, badArtifact("stuck-at %d names node %d of %d", i, node, nodes)
		}
		targets[i] = fault.StuckAtDescriptor(fault.StuckAt{Node: node, Value: r.u8() != 0})
	}
	untargeted := make([]fault.Descriptor, nG)
	for i := range untargeted {
		dom, vic := int(r.u32()), int(r.u32())
		if dom < 0 || dom >= nodes || vic < 0 || vic >= nodes {
			return nil, badArtifact("bridge %d names nodes (%d,%d) of %d", i, dom, vic, nodes)
		}
		untargeted[i] = fault.BridgeDescriptor(fault.Bridge{Dominant: dom, Victim: vic, Value: r.u8() != 0})
	}
	tT := readSets(r, nT, size, words)
	uT := readSets(r, nG, size, words)
	u, err := ndetect.AssembleUniverse(c, m, targets, untargeted, tT, uT)
	if err != nil {
		return nil, badArtifact("%v", err)
	}
	return u, nil
}

func readSets(r *reader, n, size, words int) []*bitset.Set {
	sets := make([]*bitset.Set, n)
	for i := range sets {
		s := bitset.New(size)
		for w := 0; w < words; w++ {
			s.SetWord(w, r.u64())
		}
		sets[i] = s
	}
	return sets
}

// reader is a tiny cursor over a length-prechecked buffer (DecodeUniverse
// validates lengths before the corresponding field reads).
type reader struct {
	buf []byte
	off int
}

func (r *reader) u8() byte { b := r.buf[r.off]; r.off++; return b }
func (r *reader) u16() uint16 {
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}
func (r *reader) u32() uint32 {
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}
func (r *reader) u64() uint64 {
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}
