package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"ndetect/internal/circuit"
	"ndetect/internal/fault"
	"ndetect/internal/ndetect"
)

// The typed tier API over the generic blob store.
//
// Results are stored as one atomic file holding both the job metadata and
// the exact result document bytes:
//
//	magic "NDRS" + version uint16
//	uint32 meta length  + meta bytes  (JSON job snapshot, opaque here)
//	uint32 body length  + body bytes  (the document, served verbatim)
//	uint32 IEEE CRC-32 of everything above
//
// A single file (not a meta/body pair) so crash-safety reduces to the one
// rename in writeFileAtomic: the tiers never need cross-file ordering.

const (
	resultMagic = "NDRS"
	// ResultCodecVersion is the result envelope layout version.
	ResultCodecVersion = 1
)

// PutResult persists one completed job: its metadata snapshot (opaque
// bytes, the serving layer's JSON job info) and the exact result document.
func (s *Store) PutResult(id string, meta, body []byte) error {
	buf := make([]byte, 0, 4+2+4+len(meta)+4+len(body)+4)
	buf = append(buf, resultMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, ResultCodecVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(meta)))
	buf = append(buf, meta...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
	buf = append(buf, body...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return s.put(ResultTier, id+".res", buf)
}

// GetResult loads one persisted job by ID. ok is false on a miss — absent,
// torn, or version-skewed artifacts all count (and the latter two are
// deleted so the slot recomputes honestly).
func (s *Store) GetResult(id string) (meta, body []byte, ok bool) {
	buf, ok := s.get(ResultTier, id+".res")
	if !ok {
		return nil, nil, false
	}
	meta, body, err := decodeResult(buf)
	if err != nil {
		s.drop(ResultTier, id+".res")
		return nil, nil, false
	}
	return meta, body, true
}

func decodeResult(buf []byte) (meta, body []byte, err error) {
	if len(buf) < 4+2+4+4+4 || string(buf[:4]) != resultMagic {
		return nil, nil, fmt.Errorf("store: bad result envelope")
	}
	payload, sum := buf[:len(buf)-4], binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, nil, fmt.Errorf("store: result checksum mismatch")
	}
	if v := binary.LittleEndian.Uint16(payload[4:]); v != ResultCodecVersion {
		return nil, nil, fmt.Errorf("store: result version %d", v)
	}
	rest := payload[6:]
	nm := int(binary.LittleEndian.Uint32(rest))
	if nm < 0 || 4+nm+4 > len(rest) {
		return nil, nil, fmt.Errorf("store: result meta length %d", nm)
	}
	meta = rest[4 : 4+nm]
	rest = rest[4+nm:]
	nb := int(binary.LittleEndian.Uint32(rest))
	if nb < 0 || 4+nb != len(rest) {
		return nil, nil, fmt.Errorf("store: result body length %d", nb)
	}
	return meta, rest[4 : 4+nb], nil
}

// universeKey names a universe artifact: the canonical circuit hash, the
// MaxInputs the construction was bounded by, and the fault model — and
// nothing else (DESIGN.md §11, §12). The exhaustive universe behind the
// worst-case and average-case analyses has no per-part bound and uses
// MaxInputs 0; every result-identity option variant (NMax, K, Seed,
// Definition, Ge11Limit) maps to the same artifact. The default model
// keeps the pre-registry key shape so existing artifacts stay warm;
// non-default models get their own slot — without the model component a
// second model would silently collide with stuck-at/bridge artifacts.
func universeKey(hash string, maxInputs int, model string) string {
	if model == "" || model == fault.DefaultModelID {
		return fmt.Sprintf("%s-m%d.u", hash, maxInputs)
	}
	return fmt.Sprintf("%s-m%d-%s.u", hash, maxInputs, model)
}

// PutUniverse persists an encoded universe artifact (EncodeUniverse).
func (s *Store) PutUniverse(hash string, maxInputs int, model string, artifact []byte) error {
	return s.put(UniverseTier, universeKey(hash, maxInputs, model), artifact)
}

// GetUniverse loads the raw universe artifact for (hash, maxInputs, model).
func (s *Store) GetUniverse(hash string, maxInputs int, model string) ([]byte, bool) {
	return s.get(UniverseTier, universeKey(hash, maxInputs, model))
}

// DropUniverse removes a universe artifact (readers call it on decode
// failure so the slot rebuilds).
func (s *Store) DropUniverse(hash string, maxInputs int, model string) {
	s.drop(UniverseTier, universeKey(hash, maxInputs, model))
}

// Universe implements the analysis driver's universe source
// (exp.UniverseSource) directly on the store: UniverseWith with the
// standard construction. Callers needing coalescing of concurrent
// constructions layer it on top (exp.Sweep's memo, the serving layer's
// flights) — the store itself only answers "load or build".
func (s *Store) Universe(c *circuit.Circuit, m fault.Model, opts ndetect.AnalyzeOptions) (*ndetect.CircuitUniverse, error) {
	return s.UniverseWith(c, m, opts, ndetect.BuildUniverse)
}

// UniverseWith is the universe tier's one resolution path: load the
// artifact for the circuit's canonical hash and fault model, or construct
// the universe with build, persist it, and return it. Decode failures
// (stale codec version, model skew, corruption) rebuild and overwrite; a
// failed persist is best-effort — the construction already succeeded, so
// the analysis proceeds and only the warm start is lost.
//
// The circuit must already be canonical (the driver always is — see
// exp.AnalyzeCircuit): the artifact's fault tables index canonical node
// IDs, so binding them to a differently-ordered instance would scramble
// fault names.
func (s *Store) UniverseWith(c *circuit.Circuit, m fault.Model, opts ndetect.AnalyzeOptions,
	build func(*circuit.Circuit, fault.Model, ndetect.AnalyzeOptions) (*ndetect.CircuitUniverse, error)) (*ndetect.CircuitUniverse, error) {
	hash := circuit.Hash(c)
	model := m.ID()
	if artifact, ok := s.GetUniverse(hash, 0, model); ok {
		if u, err := DecodeUniverse(c, m, artifact); err == nil {
			return u, nil
		}
		s.DropUniverse(hash, 0, model)
	}
	u, err := build(c, m, opts)
	if err != nil {
		return nil, err
	}
	s.PutUniverse(hash, 0, model, EncodeUniverse(u)) // best effort
	return u, nil
}
