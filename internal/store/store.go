// Package store is the persistent artifact store behind the serving
// layer and the CLI (DESIGN.md §11): a disk-backed, content-addressed
// cache with two tiers —
//
//   - results: final report.Analysis documents plus their job metadata,
//     keyed by the serving layer's job identity (canonical circuit hash +
//     result-identity options), and
//   - universes: the exhaustive-analysis intermediate (fault tables and
//     T-set bitsets, see codec.go), keyed by (canonical circuit hash,
//     MaxInputs) only — every option variant over one circuit shares it.
//
// Both tiers hold pure functions of their keys, so the store never
// invalidates: entries are only ever evicted for space, and a hit is
// byte-identical to the recomputation it replaces. Writes are crash-safe
// (write to a temp file in the same directory, fsync, rename); a reader
// therefore only ever sees absent or complete artifacts, and a corrupt or
// torn file is treated as a miss and deleted. Eviction is size-bounded
// LRU across both tiers, with recency persisted best-effort through file
// mtimes so a restarted store evicts in roughly the same order.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// DefaultMaxBytes bounds the store when Options leaves MaxBytes unset.
const DefaultMaxBytes = 1 << 30 // 1 GiB

// Tier names, also the subdirectory names of the on-disk layout.
const (
	ResultTier   = "results"
	UniverseTier = "universes"
)

// Options configures Open.
type Options struct {
	// MaxBytes bounds the total size of stored artifacts across both
	// tiers (0 = DefaultMaxBytes). Writing a new artifact evicts
	// least-recently-used ones until the total fits.
	MaxBytes int64
}

// Observer observes store I/O for latency histograms and throughput
// accounting (DESIGN.md §14). Op is called as one tier operation
// ("get"/"put") starts; the returned function is called when it
// completes with the artifact size moved (0 on a miss or failure) and
// whether it hit/succeeded. All timing happens inside the
// implementation (obs.Recorder-side), never in this package — store
// artifacts are pure functions of their keys and the lint contract
// keeps the clock out of here (DESIGN.md §13). Observations must never
// influence what the store returns.
type Observer interface {
	Op(tier, op string) (done func(bytes int, ok bool))
}

// TierCounters is a snapshot of one tier's monitoring counters.
type TierCounters struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Puts      uint64 `json:"puts"`
	Evictions uint64 `json:"evictions"`
	Bytes     int64  `json:"bytes"`
	Files     int    `json:"files"`
}

// Counters is a snapshot of the store's monitoring counters.
type Counters struct {
	Results   TierCounters `json:"results"`
	Universes TierCounters `json:"universes"`
	Bytes     int64        `json:"bytes"` // total across tiers
}

// entry is the in-memory index record of one on-disk artifact.
type entry struct {
	tier string
	key  string
	size int64
	prev *entry // LRU list: head = most recently used
	next *entry
}

// Store is the disk-backed artifact store. Safe for concurrent use.
type Store struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	obs     Observer          // nil = unobserved
	entries map[string]*entry // index key = tier + "/" + key
	head    *entry
	tail    *entry
	bytes   int64
	ctr     map[string]*TierCounters
}

// Open opens (or initializes) a store rooted at dir, scanning artifacts
// left by previous processes into the eviction index (oldest mtime =
// first evicted).
func Open(dir string, opts Options) (*Store, error) {
	maxBytes := opts.MaxBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		entries:  make(map[string]*entry),
		ctr: map[string]*TierCounters{
			ResultTier:   {},
			UniverseTier: {},
		},
	}
	type scanned struct {
		e     *entry
		mtime time.Time
	}
	var found []scanned
	for _, tier := range []string{ResultTier, UniverseTier} {
		td := filepath.Join(dir, tier)
		if err := os.MkdirAll(td, 0o777); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		des, err := os.ReadDir(td)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		for _, de := range des {
			info, err := de.Info()
			if err != nil || !info.Mode().IsRegular() {
				continue
			}
			if filepath.Ext(de.Name()) == ".tmp" {
				os.Remove(filepath.Join(td, de.Name())) // torn write from a crash
				continue
			}
			found = append(found, scanned{
				e:     &entry{tier: tier, key: de.Name(), size: info.Size()},
				mtime: info.ModTime(),
			})
		}
	}
	// Newest first: pushing in that order leaves the oldest at the tail,
	// where eviction starts.
	sort.Slice(found, func(i, j int) bool { return found[i].mtime.After(found[j].mtime) })
	for _, f := range found {
		s.entries[f.e.tier+"/"+f.e.key] = f.e
		s.pushBack(f.e)
		s.bytes += f.e.size
		c := s.ctr[f.e.tier]
		c.Bytes += f.e.size
		c.Files++
	}
	s.mu.Lock()
	s.evictLocked("")
	s.mu.Unlock()
	return s, nil
}

// Close releases the store. Writes are synced at write time, so Close has
// nothing to flush; it exists so owners express lifecycle explicitly.
func (s *Store) Close() error { return nil }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetObserver installs (or, with nil, removes) the store's I/O observer.
// The serving layer wires its latency histograms in here; a store used
// bare (the CLI) stays unobserved.
func (s *Store) SetObserver(o Observer) {
	s.mu.Lock()
	s.obs = o
	s.mu.Unlock()
}

// observe opens one observation; the returned function is never nil.
func (s *Store) observe(tier, op string) func(bytes int, ok bool) {
	s.mu.Lock()
	o := s.obs
	s.mu.Unlock()
	if o == nil {
		return func(int, bool) {}
	}
	return o.Op(tier, op)
}

// put writes one artifact crash-safely and evicts for space.
func (s *Store) put(tier, key string, data []byte) (err error) {
	done := s.observe(tier, "put")
	defer func() { done(len(data), err == nil) }()
	path := s.path(tier, key)
	if err := writeFileAtomic(path, data); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.ctr[tier]
	c.Puts++
	id := tier + "/" + key
	if e, ok := s.entries[id]; ok { // overwrite: same key, maybe new size
		s.bytes -= e.size
		c.Bytes -= e.size
		e.size = int64(len(data))
		s.moveToFront(e)
	} else {
		e = &entry{tier: tier, key: key, size: int64(len(data))}
		s.entries[id] = e
		s.pushFront(e)
		c.Files++
	}
	s.bytes += int64(len(data))
	c.Bytes += int64(len(data))
	s.evictLocked(id)
	return nil
}

// get reads one artifact, refreshing its recency. A missing, torn or
// externally deleted file is a miss. The file read happens with the lock
// released — universe artifacts reach hundreds of megabytes, and one
// read must not stall every other store operation.
func (s *Store) get(tier, key string) (artifact []byte, found bool) {
	done := s.observe(tier, "get")
	defer func() { done(len(artifact), found) }()
	path := s.path(tier, key)
	id := tier + "/" + key
	s.mu.Lock()
	c := s.ctr[tier]
	if _, ok := s.entries[id]; !ok {
		c.Misses++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Unlock()

	data, err := os.ReadFile(path)
	if err == nil {
		// ndetect:allow(detrand) the wall clock only stamps LRU recency
		// metadata (mtime); artifact bytes never depend on it.
		now := time.Now()
		os.Chtimes(path, now, now) // best-effort: persist recency across restarts
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// Re-resolve: the entry may have been evicted (or re-written) while
	// the lock was released. A successful read still serves — artifacts
	// are pure functions of their keys, eviction only reclaims space.
	e, ok := s.entries[id]
	if err != nil {
		if ok {
			s.dropLocked(e) // the file vanished underneath the index
		}
		c.Misses++
		return nil, false
	}
	c.Hits++
	if ok {
		s.moveToFront(e)
	}
	return data, true
}

// drop removes one artifact (used by readers that find it corrupt).
func (s *Store) drop(tier, key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[tier+"/"+key]; ok {
		s.dropLocked(e)
	}
}

// evictLocked removes least-recently-used artifacts until the store fits
// its byte budget. keep (when non-empty) names the index entry never to
// evict — the artifact just written, which must survive its own put even
// if it alone exceeds the budget.
func (s *Store) evictLocked(keep string) {
	for s.bytes > s.maxBytes && s.tail != nil {
		e := s.tail
		if e.tier+"/"+e.key == keep {
			if e.prev == nil {
				return // only the kept entry remains
			}
			e = e.prev
		}
		s.dropLocked(e)
		s.ctr[e.tier].Evictions++
	}
}

func (s *Store) dropLocked(e *entry) {
	os.Remove(s.path(e.tier, e.key))
	s.unlink(e)
	delete(s.entries, e.tier+"/"+e.key)
	s.bytes -= e.size
	c := s.ctr[e.tier]
	c.Bytes -= e.size
	c.Files--
}

// Counters returns a snapshot of the monitoring counters.
func (s *Store) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Counters{
		Results:   *s.ctr[ResultTier],
		Universes: *s.ctr[UniverseTier],
		Bytes:     s.bytes,
	}
}

func (s *Store) path(tier, key string) string {
	return filepath.Join(s.dir, tier, key)
}

// ---- intrusive LRU list --------------------------------------------------

func (s *Store) pushFront(e *entry) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *Store) pushBack(e *entry) {
	e.prev, e.next = s.tail, nil
	if s.tail != nil {
		s.tail.next = e
	}
	s.tail = e
	if s.head == nil {
		s.head = e
	}
}

func (s *Store) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *Store) moveToFront(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// writeFileAtomic writes data so readers only ever observe the complete
// file: temp file in the same directory, fsync, rename over the target.
func writeFileAtomic(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
	}
	return err
}
