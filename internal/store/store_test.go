package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ndetect/internal/circuit"
	"ndetect/internal/fault"
	"ndetect/internal/ndetect"
)

func openTemp(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestResultRoundTripAndRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	meta, body := []byte(`{"id":"abc"}`), []byte("{\n  \"schema\": \"x\"\n}\n")
	if err := s.PutResult("abc", meta, body); err != nil {
		t.Fatal(err)
	}
	gm, gb, ok := s.GetResult("abc")
	if !ok || !bytes.Equal(gm, meta) || !bytes.Equal(gb, body) {
		t.Fatalf("round trip: ok=%v meta=%q body=%q", ok, gm, gb)
	}
	if _, _, ok := s.GetResult("missing"); ok {
		t.Fatal("phantom hit")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A new process over the same directory serves the same bytes.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gm, gb, ok = s2.GetResult("abc")
	if !ok || !bytes.Equal(gm, meta) || !bytes.Equal(gb, body) {
		t.Fatal("restart lost the artifact")
	}
	ctr := s2.Counters()
	if ctr.Results.Files != 1 || ctr.Results.Hits != 1 || ctr.Results.Misses != 0 {
		t.Fatalf("counters after restart: %+v", ctr.Results)
	}
}

// A corrupt result file is a miss, and the slot is reclaimed.
func TestCorruptResultIsMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutResult("abc", []byte("m"), []byte("b")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ResultTier, "abc.res")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.GetResult("abc"); ok {
		t.Fatal("corrupt artifact served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt artifact not deleted")
	}
}

// The byte budget evicts least-recently-used artifacts first, and a
// freshly written artifact always survives its own put.
func TestSizeBoundedLRUEviction(t *testing.T) {
	// Envelope overhead is 18 bytes; three ~100-byte artifacts fit a
	// 400-byte budget, the fourth evicts the least recently used.
	s := openTemp(t, Options{MaxBytes: 400})
	blob := func(c byte) []byte { return bytes.Repeat([]byte{c}, 100) }
	for _, id := range []string{"a", "b", "c"} {
		if err := s.PutResult(id, nil, blob(id[0])); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" is now the LRU.
	if _, _, ok := s.GetResult("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	if err := s.PutResult("d", nil, blob('d')); err != nil {
		t.Fatal(err)
	}
	for id, want := range map[string]bool{"a": true, "b": false, "c": true, "d": true} {
		if _, _, ok := s.GetResult(id); ok != want {
			t.Fatalf("after eviction, %q present=%v want %v", id, ok, want)
		}
	}
	ctr := s.Counters()
	if ctr.Results.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", ctr.Results.Evictions)
	}
	if ctr.Bytes > 400 {
		t.Fatalf("bytes %d over budget", ctr.Bytes)
	}

	// One artifact larger than the whole budget still survives its put.
	if err := s.PutResult("huge", nil, bytes.Repeat([]byte{'h'}, 1000)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.GetResult("huge"); !ok {
		t.Fatal("oversized artifact evicted itself")
	}
}

// No .tmp litter after writes; a leftover .tmp from a crash is cleaned on
// Open and never indexed.
func TestAtomicWriteHygiene(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutResult("abc", nil, []byte("body")); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, ResultTier, "torn.res.123.tmp")
	if err := os.WriteFile(torn, []byte("partial"), 0o666); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatal("torn temp file survived reopen")
	}
	des, err := os.ReadDir(filepath.Join(dir, ResultTier))
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if strings.Contains(de.Name(), ".tmp") {
			t.Fatalf("temp litter: %s", de.Name())
		}
	}
	if ctr := s2.Counters(); ctr.Results.Files != 1 {
		t.Fatalf("files = %d, want 1", ctr.Results.Files)
	}
}

// Store.Universe is a load-or-build-and-save source: the first call
// constructs and persists, later calls (and restarts) decode the artifact
// into an identical universe.
func TestStoreUniverseSource(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, want := c17Universe(t)
	hash := circuit.Hash(c)

	u1, err := s.Universe(c, fault.Default(), ndetect.AnalyzeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctr := s.Counters()
	if ctr.Universes.Puts != 1 || ctr.Universes.Misses != 1 {
		t.Fatalf("first call should build and persist: %+v", ctr.Universes)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u2, err := s2.Universe(c, fault.Default(), ndetect.AnalyzeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ctr := s2.Counters(); ctr.Universes.Hits != 1 || ctr.Universes.Puts != 0 {
		t.Fatalf("restart should load, not rebuild: %+v", ctr.Universes)
	}
	for _, u := range []*ndetect.CircuitUniverse{u1, u2} {
		if len(u.Targets) != len(want.Targets) || len(u.Untargeted) != len(want.Untargeted) {
			t.Fatal("universe shape differs from direct construction")
		}
		for i := range want.Untargeted {
			if u.Untargeted[i].Name != want.Untargeted[i].Name || !u.Untargeted[i].T.Equal(want.Untargeted[i].T) {
				t.Fatalf("untargeted %d differs", i)
			}
		}
	}

	// A corrupted artifact rebuilds instead of failing. The default model
	// uses the pre-registry key shape, so old artifacts stay warm.
	path := filepath.Join(dir, UniverseTier, universeKey(hash, 0, ""))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Universe(c, fault.Default(), ndetect.AnalyzeOptions{Workers: 1}); err != nil {
		t.Fatalf("corrupt artifact should rebuild: %v", err)
	}
	if ctr := s2.Counters(); ctr.Universes.Puts != 1 {
		t.Fatalf("rebuild should persist a fresh artifact: %+v", ctr.Universes)
	}
}

// Distinct fault models occupy distinct universe-tier slots, and a
// model-skewed artifact in a slot (decode failure) rebuilds rather than
// binding wrong data.
func TestStoreUniverseModelSkewRebuilds(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := c17Universe(t)
	hash := circuit.Hash(c)
	def := fault.Default()
	tr, err := fault.Resolve("transition")
	if err != nil {
		t.Fatal(err)
	}

	if universeKey(hash, 0, def.ID()) != universeKey(hash, 0, "") {
		t.Fatal("default model must keep the legacy key shape")
	}
	if universeKey(hash, 0, tr.ID()) == universeKey(hash, 0, "") {
		t.Fatal("transition model must not collide with the default slot")
	}

	if _, err := s.Universe(c, def, ndetect.AnalyzeOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	// Plant the default-model artifact in the transition slot: the decoder
	// must detect the skew, drop it, and rebuild the right universe.
	artifact, ok := s.GetUniverse(hash, 0, "")
	if !ok {
		t.Fatal("default artifact missing")
	}
	if err := s.PutUniverse(hash, 0, tr.ID(), artifact); err != nil {
		t.Fatal(err)
	}
	u, err := s.Universe(c, tr, ndetect.AnalyzeOptions{Workers: 1})
	if err != nil {
		t.Fatalf("skewed artifact should rebuild: %v", err)
	}
	if u.Model.ID() != tr.ID() || u.Size != c.VectorSpaceSize()*c.VectorSpaceSize() {
		t.Fatalf("rebuilt universe is model %q size %d", u.Model.ID(), u.Size)
	}
	// The rebuilt artifact decodes cleanly on the next load.
	if _, err := s.Universe(c, tr, ndetect.AnalyzeOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
}
