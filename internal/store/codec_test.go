package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"ndetect/internal/circuit"
	"ndetect/internal/fault"
	"ndetect/internal/ndetect"
)

func c17Universe(t *testing.T) (*circuit.Circuit, *ndetect.CircuitUniverse) {
	t.Helper()
	raw, err := circuit.EmbeddedBench("c17")
	if err != nil {
		t.Fatal(err)
	}
	c, err := circuit.Canonicalize(raw)
	if err != nil {
		t.Fatal(err)
	}
	u, err := ndetect.FromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	return c, u
}

// A decoded universe must be indistinguishable from the one that was
// encoded: same fault tables, names, and T-sets, in the same order —
// that is what makes analyses over it byte-identical to cold runs.
func TestUniverseCodecRoundTrip(t *testing.T) {
	c, u := c17Universe(t)
	got, err := DecodeUniverse(c, fault.Default(), EncodeUniverse(u))
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != u.Size {
		t.Fatalf("size %d, want %d", got.Size, u.Size)
	}
	if len(got.Targets) != len(u.Targets) || len(got.Untargeted) != len(u.Untargeted) {
		t.Fatalf("counts (%d,%d), want (%d,%d)",
			len(got.Targets), len(got.Untargeted), len(u.Targets), len(u.Untargeted))
	}
	gotSA, wantSA := got.StuckAt(), u.StuckAt()
	for i := range u.Targets {
		if gotSA[i] != wantSA[i] {
			t.Fatalf("stuck-at %d: %+v != %+v", i, gotSA[i], wantSA[i])
		}
		if got.Targets[i].Name != u.Targets[i].Name || !got.Targets[i].T.Equal(u.Targets[i].T) {
			t.Fatalf("target %d differs", i)
		}
	}
	gotBR, wantBR := got.Bridges(), u.Bridges()
	for i := range u.Untargeted {
		if gotBR[i] != wantBR[i] {
			t.Fatalf("bridge %d: %+v != %+v", i, gotBR[i], wantBR[i])
		}
		if got.Untargeted[i].Name != u.Untargeted[i].Name || !got.Untargeted[i].T.Equal(u.Untargeted[i].T) {
			t.Fatalf("untargeted %d differs", i)
		}
	}
	if got.Circuit != c {
		t.Fatal("decoded universe must bind the caller's circuit")
	}
	if got.Model.ID() != fault.DefaultModelID {
		t.Fatalf("decoded model %q", got.Model.ID())
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Non-default models round-trip with their own descriptor vocabulary and
// test-index space (transition: |U|² pair indices).
func TestUniverseCodecRoundTripTransition(t *testing.T) {
	c, _ := c17Universe(t)
	m, err := fault.Resolve("transition")
	if err != nil {
		t.Fatal(err)
	}
	u, err := ndetect.BuildUniverse(c, m, ndetect.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUniverse(c, m, EncodeUniverse(u))
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != u.Size || got.Model.ID() != "transition" {
		t.Fatalf("size %d model %q, want %d transition", got.Size, got.Model.ID(), u.Size)
	}
	if len(got.Targets) != len(u.Targets) || len(got.Untargeted) != len(u.Untargeted) {
		t.Fatalf("counts (%d,%d), want (%d,%d)",
			len(got.Targets), len(got.Untargeted), len(u.Targets), len(u.Untargeted))
	}
	for i := range u.Targets {
		if got.TargetFaults[i] != u.TargetFaults[i] || got.Targets[i].Name != u.Targets[i].Name ||
			!got.Targets[i].T.Equal(u.Targets[i].T) {
			t.Fatalf("target %d differs", i)
		}
	}
	for i := range u.Untargeted {
		if got.UntargetedFaults[i] != u.UntargetedFaults[i] || got.Untargeted[i].Name != u.Untargeted[i].Name ||
			!got.Untargeted[i].T.Equal(u.Untargeted[i].T) {
			t.Fatalf("untargeted %d differs", i)
		}
	}
	if got.StuckAt() != nil {
		t.Fatal("transition universe must not offer single stuck-at targets")
	}
}

// Corruption, truncation, version skew, model skew and circuit mismatch
// are all ErrBadArtifact — a reader's signal to rebuild, never to trust.
func TestUniverseCodecRejects(t *testing.T) {
	c, u := c17Universe(t)
	good := EncodeUniverse(u)
	def := fault.Default()

	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x40
	short := good[:len(good)-9]
	badMagic := append([]byte("XXXX"), good[4:]...)
	badVersion := append([]byte(nil), good...)
	badVersion[4] = 99 // version field; breaks the checksum too, either way rejected

	for name, data := range map[string][]byte{
		"corrupt": flipped, "truncated": short, "magic": badMagic,
		"version": badVersion, "empty": nil,
	} {
		if _, err := DecodeUniverse(c, def, data); !errors.Is(err, ErrBadArtifact) {
			t.Fatalf("%s: err = %v, want ErrBadArtifact", name, err)
		}
	}

	// Model skew: a default-model artifact must not bind to a reader that
	// expects a different model over the same circuit.
	tr, err := fault.Resolve("transition")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeUniverse(c, tr, good); !errors.Is(err, ErrBadArtifact) {
		t.Fatalf("model skew: err = %v, want ErrBadArtifact", err)
	}

	// An artifact for a different circuit (different |U|) must not bind.
	other, err := circuit.EmbeddedBench("s27")
	if err != nil {
		t.Fatal(err)
	}
	if other.VectorSpaceSize() != c.VectorSpaceSize() {
		if _, err := DecodeUniverse(other, def, good); !errors.Is(err, ErrBadArtifact) {
			t.Fatalf("wrong circuit: err = %v, want ErrBadArtifact", err)
		}
	}
}

// encodeUniverseV1 reproduces the pre-registry (version 1) artifact
// layout for backward-compatibility tests: 5-byte stuck-at records,
// 9-byte bridge records, no model field.
func encodeUniverseV1(t *testing.T, u *ndetect.CircuitUniverse) []byte {
	t.Helper()
	sa, br := u.StuckAt(), u.Bridges()
	buf := []byte("NDUV")
	buf = binary.LittleEndian.AppendUint16(buf, 1)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(u.Size))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sa)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(br)))
	for _, f := range sa {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(f.Node))
		v := byte(0)
		if f.Value {
			v = 1
		}
		buf = append(buf, v)
	}
	for _, g := range br {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(g.Dominant))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(g.Victim))
		v := byte(0)
		if g.Value {
			v = 1
		}
		buf = append(buf, v)
	}
	for _, f := range u.Targets {
		for _, w := range f.T.Words() {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
	}
	for _, g := range u.Untargeted {
		for _, w := range g.T.Words() {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// Version 1 artifacts predate the fault-model registry: they decode as
// the implicit default model — bit-for-bit the same universe — and are
// rejected (rebuild, not reinterpret) under any other model.
func TestUniverseCodecV1BackwardCompat(t *testing.T) {
	c, u := c17Universe(t)
	v1 := encodeUniverseV1(t, u)

	got, err := DecodeUniverse(c, fault.Default(), v1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Targets) != len(u.Targets) || len(got.Untargeted) != len(u.Untargeted) {
		t.Fatalf("counts (%d,%d), want (%d,%d)",
			len(got.Targets), len(got.Untargeted), len(u.Targets), len(u.Untargeted))
	}
	for i := range u.Targets {
		if got.Targets[i].Name != u.Targets[i].Name || !got.Targets[i].T.Equal(u.Targets[i].T) {
			t.Fatalf("target %d differs", i)
		}
	}
	for i := range u.Untargeted {
		if got.Untargeted[i].Name != u.Untargeted[i].Name || !got.Untargeted[i].T.Equal(u.Untargeted[i].T) {
			t.Fatalf("untargeted %d differs", i)
		}
	}

	tr, err := fault.Resolve("transition")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeUniverse(c, tr, v1); !errors.Is(err, ErrBadArtifact) {
		t.Fatalf("v1 under transition: err = %v, want ErrBadArtifact", err)
	}
}
