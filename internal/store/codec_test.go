package store

import (
	"errors"
	"testing"

	"ndetect/internal/circuit"
	"ndetect/internal/ndetect"
)

func c17Universe(t *testing.T) (*circuit.Circuit, *ndetect.CircuitUniverse) {
	t.Helper()
	raw, err := circuit.EmbeddedBench("c17")
	if err != nil {
		t.Fatal(err)
	}
	c, err := circuit.Canonicalize(raw)
	if err != nil {
		t.Fatal(err)
	}
	u, err := ndetect.FromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	return c, u
}

// A decoded universe must be indistinguishable from the one that was
// encoded: same fault tables, names, and T-sets, in the same order —
// that is what makes analyses over it byte-identical to cold runs.
func TestUniverseCodecRoundTrip(t *testing.T) {
	c, u := c17Universe(t)
	got, err := DecodeUniverse(c, EncodeUniverse(u))
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != u.Size {
		t.Fatalf("size %d, want %d", got.Size, u.Size)
	}
	if len(got.Targets) != len(u.Targets) || len(got.Untargeted) != len(u.Untargeted) {
		t.Fatalf("counts (%d,%d), want (%d,%d)",
			len(got.Targets), len(got.Untargeted), len(u.Targets), len(u.Untargeted))
	}
	for i := range u.Targets {
		if got.StuckAt[i] != u.StuckAt[i] {
			t.Fatalf("stuck-at %d: %+v != %+v", i, got.StuckAt[i], u.StuckAt[i])
		}
		if got.Targets[i].Name != u.Targets[i].Name || !got.Targets[i].T.Equal(u.Targets[i].T) {
			t.Fatalf("target %d differs", i)
		}
	}
	for i := range u.Untargeted {
		if got.Bridges[i] != u.Bridges[i] {
			t.Fatalf("bridge %d: %+v != %+v", i, got.Bridges[i], u.Bridges[i])
		}
		if got.Untargeted[i].Name != u.Untargeted[i].Name || !got.Untargeted[i].T.Equal(u.Untargeted[i].T) {
			t.Fatalf("untargeted %d differs", i)
		}
	}
	if got.Circuit != c {
		t.Fatal("decoded universe must bind the caller's circuit")
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Corruption, truncation, version skew and circuit mismatch are all
// ErrBadArtifact — a reader's signal to rebuild, never to trust.
func TestUniverseCodecRejects(t *testing.T) {
	c, u := c17Universe(t)
	good := EncodeUniverse(u)

	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x40
	short := good[:len(good)-9]
	badMagic := append([]byte("XXXX"), good[4:]...)
	badVersion := append([]byte(nil), good...)
	badVersion[4] = 99 // version field; breaks the checksum too, either way rejected

	for name, data := range map[string][]byte{
		"corrupt": flipped, "truncated": short, "magic": badMagic,
		"version": badVersion, "empty": nil,
	} {
		if _, err := DecodeUniverse(c, data); !errors.Is(err, ErrBadArtifact) {
			t.Fatalf("%s: err = %v, want ErrBadArtifact", name, err)
		}
	}

	// An artifact for a different circuit (different |U|) must not bind.
	other, err := circuit.EmbeddedBench("s27")
	if err != nil {
		t.Fatal(err)
	}
	if other.VectorSpaceSize() != c.VectorSpaceSize() {
		if _, err := DecodeUniverse(other, good); !errors.Is(err, ErrBadArtifact) {
			t.Fatalf("wrong circuit: err = %v, want ErrBadArtifact", err)
		}
	}
}
