package encode

import (
	"testing"

	"ndetect/internal/kiss"
)

func machine(t *testing.T, states int) *kiss.STG {
	t.Helper()
	src := ".i 1\n.o 1\n"
	// A ring counter over the requested number of states.
	for i := 0; i < states; i++ {
		next := (i + 1) % states
		src += "1 s" + itoa(i) + " s" + itoa(next) + " 1\n"
		src += "0 s" + itoa(i) + " s" + itoa(i) + " 0\n"
	}
	m, err := kiss.ParseString("ring", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return m
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestBinary(t *testing.T) {
	m := machine(t, 5)
	e, err := New(Binary, m)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if e.Bits != 3 {
		t.Fatalf("Bits = %d, want 3", e.Bits)
	}
	for i := 0; i < 5; i++ {
		if e.Codes[i] != uint64(i) {
			t.Fatalf("Codes[%d] = %d", i, e.Codes[i])
		}
	}
	if got := e.CodeString(5 - 1); got != "100" {
		t.Fatalf("CodeString(4) = %q, want 100", got)
	}
	if got := e.CodeString(1); got != "001" {
		t.Fatalf("CodeString(1) = %q, want 001", got)
	}
}

func TestGrayAdjacency(t *testing.T) {
	m := machine(t, 8)
	e, err := New(Gray, m)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if e.Bits != 3 {
		t.Fatalf("Bits = %d, want 3", e.Bits)
	}
	for i := 1; i < 8; i++ {
		diff := e.Codes[i] ^ e.Codes[i-1]
		if diff == 0 || diff&(diff-1) != 0 {
			t.Fatalf("codes %d and %d differ in more than one bit", i-1, i)
		}
	}
}

func TestOneHot(t *testing.T) {
	m := machine(t, 5)
	e, err := New(OneHot, m)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if e.Bits != 5 {
		t.Fatalf("Bits = %d, want 5", e.Bits)
	}
	for i := 0; i < 5; i++ {
		if e.Codes[i] != 1<<uint(i) {
			t.Fatalf("Codes[%d] = %b", i, e.Codes[i])
		}
	}
}

func TestCodesDistinct(t *testing.T) {
	m := machine(t, 7)
	for _, style := range []string{Binary, Gray, OneHot} {
		e, err := New(style, m)
		if err != nil {
			t.Fatalf("New(%s): %v", style, err)
		}
		seen := make(map[uint64]bool)
		for i, c := range e.Codes {
			if seen[c] {
				t.Fatalf("%s: duplicate code for state %d", style, i)
			}
			seen[c] = true
			if got := e.DecodeState(c); got != i {
				t.Fatalf("%s: DecodeState(Codes[%d]) = %d", style, i, got)
			}
		}
	}
}

func TestDecodeUnusedCode(t *testing.T) {
	m := machine(t, 5)
	e, _ := New(Binary, m)
	if got := e.DecodeState(7); got != -1 {
		t.Fatalf("DecodeState(7) = %d, want -1 (unused code)", got)
	}
}

func TestUnknownStyle(t *testing.T) {
	m := machine(t, 3)
	if _, err := New("zigzag", m); err == nil {
		t.Fatal("New accepted unknown style")
	}
}

func TestCodeBitMatchesCodeString(t *testing.T) {
	m := machine(t, 6)
	e, _ := New(Binary, m)
	for s := 0; s < 6; s++ {
		str := e.CodeString(s)
		for pos := 0; pos < e.Bits; pos++ {
			want := str[pos] == '1'
			if got := e.CodeBit(s, e.Bits-1-pos); got != want {
				t.Fatalf("state %d pos %d: CodeBit=%v, CodeString=%q", s, pos, got, str)
			}
		}
	}
}

func TestSingleStateMachineHasOneBit(t *testing.T) {
	m, err := kiss.ParseString("one", ".i 1\n.o 1\n- a a 1\n.e\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	e, err := New(Binary, m)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if e.Bits != 1 {
		t.Fatalf("Bits = %d, want 1", e.Bits)
	}
}
