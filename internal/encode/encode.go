// Package encode assigns binary codes to the symbolic states of an STG.
//
// The paper analyses "the combinational logic of MCNC finite-state machine
// benchmarks": the FSM's next-state and output logic with present-state bits
// exposed as extra primary inputs. The state encoding determines how many
// extra inputs appear and shapes the synthesized logic, so it is a named,
// swappable strategy here (the ablation bench compares them).
package encode

import (
	"fmt"

	"ndetect/internal/kiss"
)

// Encoding maps each state (by STG state index) to a code of Bits bits.
type Encoding struct {
	Style string
	Bits  int
	Codes []uint64 // Codes[i] is the code of state i; bit b of the code is state line b (LSB = line 0)
}

// Style names accepted by New.
const (
	Binary = "binary"  // minimal-width natural binary in state order
	Gray   = "gray"    // minimal-width reflected Gray code in state order
	OneHot = "one-hot" // one bit per state
)

// New builds an encoding of the given style for the machine.
func New(style string, m *kiss.STG) (*Encoding, error) {
	n := m.NumStates()
	switch style {
	case Binary:
		e := &Encoding{Style: style, Bits: m.StateBits(), Codes: make([]uint64, n)}
		for i := 0; i < n; i++ {
			e.Codes[i] = uint64(i)
		}
		return e, nil
	case Gray:
		e := &Encoding{Style: style, Bits: m.StateBits(), Codes: make([]uint64, n)}
		for i := 0; i < n; i++ {
			e.Codes[i] = uint64(i) ^ (uint64(i) >> 1)
		}
		return e, nil
	case OneHot:
		e := &Encoding{Style: style, Bits: n, Codes: make([]uint64, n)}
		for i := 0; i < n; i++ {
			e.Codes[i] = 1 << uint(i)
		}
		return e, nil
	default:
		return nil, fmt.Errorf("encode: unknown style %q", style)
	}
}

// CodeBit returns bit b of state i's code.
func (e *Encoding) CodeBit(state, b int) bool {
	return (e.Codes[state]>>uint(b))&1 == 1
}

// CodeString renders state i's code MSB-first (bit Bits-1 first), the order
// in which state lines appear as synthesized circuit inputs.
func (e *Encoding) CodeString(state int) string {
	buf := make([]byte, e.Bits)
	for b := 0; b < e.Bits; b++ {
		if e.CodeBit(state, e.Bits-1-b) {
			buf[b] = '1'
		} else {
			buf[b] = '0'
		}
	}
	return string(buf)
}

// DecodeState returns the state index whose code equals code, or -1 if the
// code is unused (possible when NumStates is not a power of two, or always
// possible for one-hot).
func (e *Encoding) DecodeState(code uint64) int {
	for i, c := range e.Codes {
		if c == code {
			return i
		}
	}
	return -1
}
