package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// identityopt: the §10 cache key must account for every option that can
// change an analysis result. PR 6 had to wire the fault-model field into
// the job key by hand after the cache silently conflated universes across
// models; this analyzer makes that class of bug a compile-time failure.
//
// Two rules chain across the request and service layers:
//
//  1. Any struct that declares both Normalize and IdentityOptions methods
//     (exp.AnalysisRequest is the production instance) must account for
//     every field: an unmarked field must be referenced in both method
//     bodies; a field marked // ndetect:nonidentity must NOT appear in
//     IdentityOptions; a field marked // ndetect:identity-envelope is
//     identity that travels outside the Options document (the request
//     Kind selects the §10 envelope) and must still be referenced in
//     Normalize.
//
//  2. Any function named jobKey taking a pointer to such a struct must
//     reference, via selectors on that parameter, every identity field —
//     the field names of the IdentityOptions result type plus any
//     identity-envelope fields that exist on the request struct.
//
// Rule 1 catches a new field that skips the options document entirely;
// rule 2 catches one that reaches the document but not the cache key.

// IdentityOpt is the identityopt analyzer.
var IdentityOpt = &Analyzer{
	Name: "identityopt",
	Doc:  "every request option is threaded through Normalize, IdentityOptions and the §10 job key, or marked ndetect:nonidentity",
	Run:  runIdentityOpt,
}

const (
	markerNonIdentity      = "ndetect:nonidentity"
	markerIdentityEnvelope = "ndetect:identity-envelope"
)

func runIdentityOpt(p *Pass) error {
	methods := collectMethods(p)
	for typeName, ms := range methods {
		norm, identOpts := ms["Normalize"], ms["IdentityOptions"]
		if norm == nil || identOpts == nil {
			continue
		}
		checkRequestStruct(p, typeName, norm, identOpts)
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Recv == nil && fn.Name.Name == "jobKey" && fn.Body != nil {
				checkJobKey(p, fn)
			}
		}
	}
	return nil
}

// collectMethods indexes the package's method declarations by receiver
// type name.
func collectMethods(p *Pass) map[string]map[string]*ast.FuncDecl {
	out := make(map[string]map[string]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || len(fn.Recv.List) != 1 || fn.Body == nil {
				continue
			}
			name := receiverTypeName(fn.Recv.List[0].Type)
			if name == "" {
				continue
			}
			if out[name] == nil {
				out[name] = make(map[string]*ast.FuncDecl)
			}
			out[name][fn.Name.Name] = fn
		}
	}
	return out
}

func receiverTypeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return receiverTypeName(t.X)
	case *ast.IndexExpr: // generic receiver
		return receiverTypeName(t.X)
	}
	return ""
}

// checkRequestStruct enforces rule 1 over one request-shaped struct.
func checkRequestStruct(p *Pass, typeName string, norm, identOpts *ast.FuncDecl) {
	spec := findStructSpec(p, typeName)
	if spec == nil {
		return
	}
	st, ok := spec.Type.(*ast.StructType)
	if !ok {
		return
	}
	fieldObjs := structFieldObjects(p, typeName)

	for _, field := range st.Fields.List {
		marker := fieldMarker(field)
		for _, name := range field.Names {
			obj := fieldObjs[name.Name]
			if obj == nil {
				continue
			}
			one := map[types.Object]bool{obj: true}
			inNorm := usesAny(p.Info, norm.Body, one)
			inOpts := usesAny(p.Info, identOpts.Body, one)
			switch marker {
			case markerNonIdentity:
				if inOpts {
					p.Reportf(name.Pos(), "field %s.%s is marked ndetect:nonidentity but is referenced by IdentityOptions; identity and non-identity state must not mix (DESIGN.md §10)", typeName, name.Name)
				}
			case markerIdentityEnvelope:
				if !inNorm {
					p.Reportf(name.Pos(), "envelope-identity field %s.%s is not referenced by Normalize (DESIGN.md §10)", typeName, name.Name)
				}
			default:
				if !inNorm || !inOpts {
					p.Reportf(name.Pos(), "field %s.%s is not threaded through both Normalize and IdentityOptions; thread it or mark it // ndetect:nonidentity (DESIGN.md §10)", typeName, name.Name)
				}
			}
		}
	}
}

func findStructSpec(p *Pass, typeName string) *ast.TypeSpec {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.Name == typeName {
					return ts
				}
			}
		}
	}
	return nil
}

// structFieldObjects returns the named type's field objects keyed by name.
func structFieldObjects(p *Pass, typeName string) map[string]types.Object {
	out := make(map[string]types.Object)
	obj := p.Pkg.Scope().Lookup(typeName)
	if obj == nil {
		return out
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return out
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		out[f.Name()] = f
	}
	return out
}

// fieldMarker extracts an identityopt marker from a struct field's doc or
// trailing comment.
func fieldMarker(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		text := cg.Text()
		// identity-envelope first: it contains "ndetect:identity" but the
		// two markers are distinct words, so substring order matters only
		// for clarity here.
		if strings.Contains(text, markerIdentityEnvelope) {
			return markerIdentityEnvelope
		}
		if strings.Contains(text, markerNonIdentity) {
			return markerNonIdentity
		}
	}
	return ""
}

// checkJobKey enforces rule 2: the cache-key builder references every
// identity field of its request parameter.
func checkJobKey(p *Pass, fn *ast.FuncDecl) {
	reqStruct, reqName := jobKeyRequestType(p, fn)
	if reqStruct == nil {
		return
	}
	identNames, identObjs := jobKeyIdentityFields(reqStruct)
	if len(identNames) == 0 {
		return
	}

	used := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if o := p.Info.Uses[sel.Sel]; o != nil && identObjs[o] {
			used[o.Name()] = true
		}
		return true
	})
	for _, name := range identNames {
		if !used[name] {
			p.Reportf(fn.Name.Pos(), "jobKey does not reference identity field %s.%s; every identity option must shape the §10 cache key (DESIGN.md §10)", reqName, name)
		}
	}
}

// jobKeyRequestType finds the first parameter of fn whose (pointer)
// struct type declares an IdentityOptions method, returning the named
// type and its display name.
func jobKeyRequestType(p *Pass, fn *ast.FuncDecl) (*types.Named, string) {
	for _, field := range fn.Type.Params.List {
		tv, ok := p.Info.Types[field.Type]
		if !ok {
			continue
		}
		t := tv.Type
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			if named.Method(i).Name() == "IdentityOptions" {
				return named, named.Obj().Name()
			}
		}
	}
	return nil, ""
}

// jobKeyIdentityFields computes the identity field set of a request type:
// the request fields that share a name with a field of the
// IdentityOptions result type, plus any remaining fields the options
// document cannot carry (the identity envelope — Kind in production).
// Fields absent from the options type whose names are known non-identity
// (they match no options field and carry no envelope duty) are the ones
// rule 1 polices, so here the set is: options-typed names intersected
// with request fields, plus "Kind" when present.
func jobKeyIdentityFields(req *types.Named) ([]string, map[types.Object]bool) {
	var optsStruct *types.Struct
	for i := 0; i < req.NumMethods(); i++ {
		m := req.Method(i)
		if m.Name() != "IdentityOptions" {
			continue
		}
		sig, ok := m.Type().(*types.Signature)
		if !ok || sig.Results().Len() != 1 {
			return nil, nil
		}
		if s, ok := sig.Results().At(0).Type().Underlying().(*types.Struct); ok {
			optsStruct = s
		}
	}
	if optsStruct == nil {
		return nil, nil
	}
	optNames := make(map[string]bool)
	for i := 0; i < optsStruct.NumFields(); i++ {
		optNames[optsStruct.Field(i).Name()] = true
	}

	reqStruct, ok := req.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	var names []string
	objs := make(map[types.Object]bool)
	for i := 0; i < reqStruct.NumFields(); i++ {
		f := reqStruct.Field(i)
		if optNames[f.Name()] || f.Name() == "Kind" {
			names = append(names, f.Name())
			objs[f] = true
		}
	}
	return names, objs
}
