package lint

import (
	"go/ast"
	"go/types"
)

// errflow: the §11 crash-safety story (write temp → sync → close → rename
// → sync dir) only holds if every step's error is observed — a swallowed
// Close or Sync can acknowledge a write that never reached the disk, and
// a swallowed Rename can leave the store pointing at a half-published
// artifact. The analyzer flags Close/Sync/Rename calls in internal/store
// whose error result is dropped on the floor: a bare call statement, a
// defer, or a go statement. Assigning to the blank identifier
// (`_ = f.Close()`) is an explicit, reviewable discard and passes — the
// read-path cleanup where a Close error cannot lose data uses that form.

// ErrFlow is the errflow analyzer.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc:  "Close/Sync/Rename errors on the store write path must be checked",
	Run:  runErrFlow,
}

var errflowNames = map[string]bool{"Close": true, "Sync": true, "Rename": true}

func runErrFlow(p *Pass) error {
	if p.Pkg.Name() != "store" {
		return nil
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, _ = stmt.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = stmt.Call
			case *ast.GoStmt:
				call = stmt.Call
			}
			if call == nil {
				return true
			}
			name, ok := errflowCallee(p, call)
			if !ok {
				return true
			}
			if !callReturnsError(p.Info, call) {
				return true
			}
			p.Reportf(call.Pos(), "%s error is discarded on the store write path; check it or assign to _ explicitly (DESIGN.md §11)", name)
			return true
		})
	}
	return nil
}

// errflowCallee matches method calls x.Close()/x.Sync() and the
// os.Rename function (plus any method named Rename).
func errflowCallee(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if !errflowNames[sel.Sel.Name] {
		return "", false
	}
	if pkg, fn, ok := calleePkgFunc(p.Info, call); ok {
		return lastPathElem(pkg) + "." + fn, true
	}
	return sel.Sel.Name, true
}

// callReturnsError reports whether the call's results include an error.
func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	return typeHasError(tv.Type)
}

func typeHasError(t types.Type) bool {
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if typeHasError(t.At(i).Type()) {
				return true
			}
		}
		return false
	case *types.Named:
		return t.Obj().Name() == "error" && t.Obj().Pkg() == nil
	}
	return false
}
