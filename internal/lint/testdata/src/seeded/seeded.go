// Package ndetect is detrand's negative package: the sanctioned seeded
// randomness pattern from internal/ndetect/procedure1.go — an explicit
// rand.New(rand.NewSource(seed)) stream per unit of work — produces no
// findings. Constructors pass; only draws from the global source are
// ambient.
package ndetect

import "math/rand"

// RunOne mirrors procedure1.go: every test set k draws from its own
// (seed, k)-derived stream, so results are pure in the seed.
func RunOne(seed int64, k int64, n int) []int {
	rng := rand.New(rand.NewSource(seed ^ (k * 0x9e3779b9)))
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(2)
	}
	return out
}
