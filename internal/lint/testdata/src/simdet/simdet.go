// Package sim mimics a result-computing package for the detrand suite:
// ambient inputs — wall clock, environment, CPU count, unseeded global
// randomness — must not influence results (DESIGN.md §7).
package sim

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"
)

// Stamp folds the wall clock into a result.
func Stamp() string {
	return time.Now().String() // want "time.Now is an ambient input"
}

// FromEnv reads configuration from the environment instead of an option.
func FromEnv() string {
	return os.Getenv("NDETECT_MODE") // want "os.Getenv is an ambient input"
}

// HostShaped lets the machine size leak into a computation.
func HostShaped() int {
	return runtime.GOMAXPROCS(0) // want "runtime.GOMAXPROCS is an ambient input"
}

// GlobalDraw uses the process-global, unseeded source.
func GlobalDraw() int {
	return rand.Intn(100) // want "rand.Intn is an ambient input"
}

// AllowedClock is the acknowledged store-recency pattern.
func AllowedClock() {
	// ndetect:allow(detrand) stamps cache recency metadata only, never
	// result bytes.
	now := time.Now()
	fmt.Println(now)
}
