// Package idreq mimics the exp.AnalysisRequest / service.jobKey pair for
// the identityopt suite: every request field is either threaded through
// Normalize, IdentityOptions and the job key, or carries an explicit
// marker (DESIGN.md §10).
package idreq

import "fmt"

// Options mirrors report.Options: the identity block of the result
// document.
type Options struct {
	A int
	B int
}

// Request mirrors exp.AnalysisRequest.
type Request struct {
	// Kind travels in the document envelope, not the Options block.
	Kind string // ndetect:identity-envelope

	A int
	B int

	Extra int // want "field Request.Extra is not threaded through both Normalize and IdentityOptions"

	// Workers is operational state and never shapes the result.
	Workers int // ndetect:nonidentity

	Bad int // want "is referenced by IdentityOptions" // ndetect:nonidentity

	Env2 string // want "envelope-identity field Request.Env2 is not referenced by Normalize" // ndetect:identity-envelope
}

// Normalize canonicalizes the identity fields. Extra and Env2 are
// deliberately missing.
func (r *Request) Normalize() error {
	if r.Kind == "" {
		r.Kind = "average"
	}
	if r.A <= 0 {
		r.A = 10
	}
	if r.B <= 0 {
		r.B = 1000
	}
	if r.Workers < 0 {
		r.Workers = 0
	}
	_ = r.Bad
	return nil
}

// IdentityOptions builds the identity block — and wrongly folds the
// nonidentity-marked Bad into it.
func (r *Request) IdentityOptions() Options {
	return Options{A: r.A, B: r.B + r.Bad}
}

// jobKey mirrors service.jobKey and deliberately forgets B.
func jobKey(hash string, r *Request) string { // want "jobKey does not reference identity field Request.B"
	return fmt.Sprintf("%s|%s|%d", hash, r.Kind, r.A)
}
