// Package ordfree is maporder's scope-negative package: its name is not
// in the identity-path set, so even a textbook violation is not flagged —
// the analyzer polices encoded output, not every map range in the repo.
package ordfree

import "fmt"

// Dump would be a finding inside report/encode/store/exp/service/fault;
// here it is presentation-layer output outside the byte-identity contract.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}
