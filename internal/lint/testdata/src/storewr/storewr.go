// Package store mimics the artifact store's write path for the errflow
// suite: Close/Sync/Rename errors must be checked — a swallowed error can
// acknowledge a write that never reached the disk (DESIGN.md §11).
package store

import "os"

// PublishLeaky drops every error the crash-safety protocol depends on.
func PublishLeaky(tmp *os.File, final string) {
	tmp.Sync()                  // want "Sync error is discarded"
	tmp.Close()                 // want "Close error is discarded"
	os.Rename(tmp.Name(), final) // want "os.Rename error is discarded"
}

// PublishChecked is the §11 shape: every step's error is observed.
func PublishChecked(tmp *os.File, final string) error {
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), final)
}

// ReadCleanup discards a read-path Close explicitly: no data can be lost,
// and the blank assignment makes the discard reviewable.
func ReadCleanup(f *os.File) []byte {
	defer func() { _ = f.Close() }()
	buf := make([]byte, 16)
	f.Read(buf) // Read is outside errflow's name set
	return buf
}

// DeferredLeak defers a Close whose error nobody will see.
func DeferredLeak(f *os.File) {
	defer f.Close() // want "Close error is discarded"
	f.WriteString("x")
}
