// Package report mimics the production identity-path package of the same
// name for the maporder suite: map iteration order must never reach
// encoded output (DESIGN.md §7).
package report

import (
	"fmt"
	"sort"
	"strings"
)

// EncodeUnsorted writes map entries in iteration order — the exact bug
// class the analyzer exists for.
func EncodeUnsorted(w *strings.Builder, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "map iteration order reaches fmt.Fprintf"
	}
}

// EncodeSorted is the sanctioned idiom: accumulate keys, sort, iterate.
func EncodeSorted(w *strings.Builder, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// CollectUnsorted accumulates iteration-ordered values without ever
// sorting them in this function.
func CollectUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "never sorted in CollectUnsorted"
	}
	return out
}

// WriteKeys leaks order through a Write-family method on the builder.
func WriteKeys(w *strings.Builder, m map[string]bool) {
	for k := range m {
		w.WriteString(k) // want "map iteration order reaches w.WriteString"
	}
}

// CountOnly never lets the iteration variables escape: order is dead.
func CountOnly(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// AllowedDebugDump is an acknowledged, reviewed exception.
func AllowedDebugDump(m map[string]int) {
	for k, v := range m {
		// ndetect:allow(maporder) debug-only dump, never persisted or hashed
		fmt.Printf("%s=%d\n", k, v)
	}
}
