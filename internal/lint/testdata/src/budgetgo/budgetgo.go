// Package ndetect mimics a compute hot-path package for the budget suite:
// bare go statements bypass the §5 worker budget and must route through
// sim.ParallelFor or carry an explicit grant marker (DESIGN.md §5).
package ndetect

import "sync"

// FanOut spawns one goroutine per item — the PR 2 bug class: parallelism
// proportional to the workload instead of the worker grant.
func FanOut(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { // want "bare go statement in package ndetect bypasses"
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// Granted is a spawn site that is itself a budget primitive.
func Granted(fn func()) {
	done := make(chan struct{})
	// ndetect:allow(budget) spends exactly one worker from the caller's
	// grant and joins before returning.
	go func() {
		defer close(done)
		fn()
	}()
	<-done
}
