package lint

import (
	"go/ast"
	"strings"
)

// detrand: analysis results are pure functions of (circuit, identity
// options, seed) — DESIGN.md §7. Wall-clock reads, environment lookups,
// CPU-count probes and unseeded global randomness are ambient inputs that
// would make two runs of the same request produce different bytes, which
// breaks content-addressed caching (§10) and golden-doc testing.
//
// The analyzer forbids a fixed call list in result-computing packages.
// Seeded randomness is the sanctioned pattern and passes untouched:
// rand.New(rand.NewSource(seed)) constructs a source, and every draw is a
// method on the resulting *rand.Rand, not a package-level call. The two
// legitimate ambient reads in the tree — store recency mtimes and the
// worker-count default — carry ndetect:allow(detrand) markers with their
// reasons.

// detrandPackages is the scope: every package that computes, encodes or
// serves results. cmd/ (package main) is deliberately outside — CLI
// timing prints are presentation, not results.
var detrandPackages = map[string]bool{
	"report":    true,
	"encode":    true,
	"store":     true,
	"exp":       true,
	"service":   true,
	"fault":     true,
	"sim":       true,
	"ndetect":   true,
	"partition": true,
	"circuit":   true,
}

// detrandForbidden maps package path → forbidden function names. An empty
// set forbids the whole package except constructors (names starting with
// "New"), which is how unseeded math/rand draws are rejected while seeded
// sources pass.
var detrandForbidden = map[string]map[string]bool{
	"time":    {"Now": true, "Since": true, "Until": true},
	"os":      {"Getenv": true, "LookupEnv": true, "Environ": true, "Getpid": true},
	"runtime": {"GOMAXPROCS": true, "NumCPU": true},
	"math/rand":    nil, // nil set: everything except New* is forbidden
	"math/rand/v2": nil,
}

// DetRand is the detrand analyzer.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "wall-clock, environment and unseeded randomness must not influence results",
	Run:  runDetRand,
}

func runDetRand(p *Pass) error {
	if !detrandPackages[p.Pkg.Name()] {
		return nil
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := calleePkgFunc(p.Info, call)
			if !ok {
				return true
			}
			funcs, scoped := detrandForbidden[pkg]
			if !scoped {
				return true
			}
			forbidden := funcs == nil && !strings.HasPrefix(name, "New")
			if funcs != nil {
				forbidden = funcs[name]
			}
			if forbidden {
				p.Reportf(call.Pos(), "%s.%s is an ambient input; results must be pure in (circuit, options, seed) — thread it explicitly or mark ndetect:allow(detrand) with a reason (DESIGN.md §7)", lastPathElem(pkg), name)
			}
			return true
		})
	}
	return nil
}

func lastPathElem(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
