package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package loading for the standalone driver and the analysistest-style
// suites.
//
// Analyzers need full type information, which means resolving imports.
// Without golang.org/x/tools/go/packages the pragmatic stdlib route is the
// same one go vet itself uses: ask the go command to compile dependencies
// and hand back export data (`go list -json -export -deps`), then
// type-check the target package from source with go/importer's gc importer
// reading those export files. It works offline — the build cache is the
// only store touched — and it is exactly the shape unitchecker.go receives
// from go vet, so one typecheck helper serves both entry points.

// Target is one loaded, type-checked package ready for analysis.
type Target struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	ImportMap  map[string]string
}

// LoadPackages loads and type-checks the packages matched by patterns,
// resolved relative to dir, with dependencies imported from compiled
// export data.
func LoadPackages(dir string, patterns ...string) ([]*Target, error) {
	args := append([]string{"list", "-json", "-export", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	var loaded []*Target
	for _, p := range targets {
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		t, err := typecheck(p.ImportPath, files, p.ImportMap, func(path string) (io.ReadCloser, error) {
			f, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(f)
		})
		if err != nil {
			return nil, err
		}
		loaded = append(loaded, t)
	}
	return loaded, nil
}

// typecheck parses the given files and type-checks them as one package,
// importing dependencies through lookup (a reader of gc export data).
// importMap translates source-level import paths to canonical package
// paths (vendoring; identity entries may be omitted).
func typecheck(pkgPath string, filenames []string, importMap map[string]string, lookup func(string) (io.ReadCloser, error)) (*Target, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}

	mapped := func(path string) (io.ReadCloser, error) {
		if m, ok := importMap[path]; ok {
			path = m
		}
		return lookup(path)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", mapped),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", pkgPath, err)
	}
	return &Target{PkgPath: pkgPath, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// Run loads the packages matched by patterns and runs the analyzers over
// each, returning all findings.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	targets, err := LoadPackages(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var all []Diagnostic
	for _, t := range targets {
		diags, err := RunAnalyzers(t, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	return all, nil
}
