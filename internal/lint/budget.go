package lint

import (
	"go/ast"
)

// budget: worker parallelism in the compute hot paths is budgeted — §5
// grants a worker count per analysis and sim.ParallelFor is the one
// primitive that spends it. A bare go statement sidesteps the budget
// (PR 2 fixed exactly such a leak: K goroutines per partition regardless
// of Workers), can oversubscribe the host when analyses run concurrently
// under the daemon, and tends to smuggle in scheduling-order
// nondeterminism. The analyzer flags every go statement in the compute
// packages; sim.ParallelFor's own spawn site carries the
// ndetect:allow(budget) marker, as must any future primitive that is
// itself the budget mechanism.

// budgetPackages is the scope: the compute hot paths. service is outside
// — its goroutines are request lifecycle, bounded by the §5 grant table,
// not per-item fan-out.
var budgetPackages = map[string]bool{
	"sim":       true,
	"exp":       true,
	"ndetect":   true,
	"partition": true,
}

// Budget is the budget analyzer.
var Budget = &Analyzer{
	Name: "budget",
	Doc:  "bare go statements in compute packages must route through sim.ParallelFor or a §5 worker grant",
	Run:  runBudget,
}

func runBudget(p *Pass) error {
	if !budgetPackages[p.Pkg.Name()] {
		return nil
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if gs, ok := n.(*ast.GoStmt); ok {
				p.Reportf(gs.Pos(), "bare go statement in package %s bypasses the §5 worker budget; use sim.ParallelFor or mark ndetect:allow(budget) with the grant it spends (DESIGN.md §5)", p.Pkg.Name())
			}
			return true
		})
	}
	return nil
}
