// Package lint is ndetectlint: a suite of static analyzers that
// mechanically enforce the repo's determinism and byte-identity contract
// (DESIGN.md §7, §10, §13). The five analyzers encode the invariants every
// PR used to re-prove by hand:
//
//   - maporder: map iteration order must not reach encoded output, hashes
//     or accumulated slices in identity-path packages without a sort.
//   - identityopt: every field of exp.AnalysisRequest is either threaded
//     through Normalize and IdentityOptions (and, in service, the §10 job
//     key) or explicitly marked // ndetect:nonidentity.
//   - detrand: wall-clock, environment and unseeded randomness must not
//     appear in result-computing packages.
//   - budget: bare go statements in the compute hot paths must route
//     through sim.ParallelFor or a §5 worker grant.
//   - errflow: Close/Sync/Rename errors on the §11 crash-safety write
//     path in internal/store must be checked.
//
// The framework underneath is a deliberately small, stdlib-only stand-in
// for golang.org/x/tools/go/analysis (which this build environment cannot
// fetch): an Analyzer runs over one type-checked package and reports
// position-anchored diagnostics. cmd/ndetectlint drives it both
// standalone (`ndetectlint ./...`) and as a `go vet -vettool` backend
// (unitchecker.go speaks the go vet config protocol).
//
// Findings are suppressed with a marker comment on the offending line or
// the line above:
//
//	// ndetect:allow(<analyzer>) <reason>
//
// Markers are part of the lint contract: every allow carries the reason
// the invariant provably holds anyway (DESIGN.md §13).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Run inspects a single type-checked
// package through the Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// ndetect:allow(name) markers.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run analyzes one package.
	Run func(*Pass) error
}

// Diagnostic is one finding, anchored to a resolved source position so it
// survives outside the package's own token.FileSet.
type Diagnostic struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
}

// Pass carries one package's syntax and type information through an
// analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's non-test files — the surface the lint
	// contract covers. Test files participate in type checking (they are
	// part of the compiled test variant go vet hands us) but are never
	// analyzed.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// allows maps file → line → analyzer names allowed there, built from
	// ndetect:allow markers; a marker covers its own line and the next.
	allows map[string]map[int]map[string]bool

	diags *[]Diagnostic
}

// Reportf records a finding at pos unless an ndetect:allow marker for
// this analyzer covers the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if lines, ok := p.allows[position.Filename]; ok {
		if lines[position.Line][p.Analyzer.Name] {
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Position: position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full ndetectlint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapOrder, IdentityOpt, DetRand, Budget, ErrFlow}
}

var allowMarker = regexp.MustCompile(`ndetect:allow\(([a-z]+)\)`)

// buildAllows scans every comment for ndetect:allow markers. A marker
// suppresses matching findings on every line of its comment group and on
// the line after the group, so trailing comments, single comment lines
// above a statement, and multi-line reason comments all work.
func buildAllows(fset *token.FileSet, files []*ast.File) map[string]map[int]map[string]bool {
	out := make(map[string]map[int]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			var names []string
			for _, c := range cg.List {
				for _, m := range allowMarker.FindAllStringSubmatch(c.Text, -1) {
					names = append(names, m[1])
				}
			}
			if len(names) == 0 {
				continue
			}
			start := fset.Position(cg.Pos())
			end := fset.Position(cg.End())
			lines := out[start.Filename]
			if lines == nil {
				lines = make(map[int]map[string]bool)
				out[start.Filename] = lines
			}
			for line := start.Line; line <= end.Line+1; line++ {
				if lines[line] == nil {
					lines[line] = make(map[string]bool)
				}
				for _, name := range names {
					lines[line][name] = true
				}
			}
		}
	}
	return out
}

// RunAnalyzers runs the given analyzers over one loaded package and
// returns the findings sorted by position.
func RunAnalyzers(t *Target, analyzers []*Analyzer) ([]Diagnostic, error) {
	var nonTest []*ast.File
	for _, f := range t.Files {
		name := t.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		nonTest = append(nonTest, f)
	}
	allows := buildAllows(t.Fset, nonTest)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     t.Fset,
			Files:    nonTest,
			Pkg:      t.Pkg,
			Info:     t.Info,
			allows:   allows,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, t.Pkg.Path(), err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, nil
}

// usesAny reports whether any identifier under n resolves to one of the
// given objects.
func usesAny(info *types.Info, n ast.Node, objs map[types.Object]bool) bool {
	if n == nil || len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if o := info.Uses[id]; o != nil && objs[o] {
				found = true
			}
		}
		return true
	})
	return found
}

// calleePkgFunc resolves a call of the form pkgname.Func and returns the
// imported package path and function name, or ok=false.
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, fn string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}
