package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// The `go vet -vettool` backend.
//
// go vet drives an external tool through a small, undocumented-but-stable
// protocol (cmd/go/internal/work.buildVetConfig): the tool is probed once
// with `-flags` (a JSON description of its flags) and `-V=full` (a version
// line keyed into the build cache), then invoked once per package with the
// path to a JSON config file naming the package's sources and the export
// data of its compiled dependencies. Dependencies are visited in
// "VetxOnly" mode — go vet only wants their analysis facts, and since no
// ndetectlint analyzer exchanges facts across packages, those runs write
// an empty facts file and exit immediately; only the packages the user
// actually named are parsed and analyzed.
//
// golang.org/x/tools/go/analysis/unitchecker is the reference
// implementation of this protocol; this is the minimal stdlib-only subset
// ndetectlint needs.

// VetConfig mirrors cmd/go's vetConfig (the fields this tool consumes).
type VetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string

	ImportMap   map[string]string // source import path → canonical path
	PackageFile map[string]string // canonical path → export data file
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// VetExitNoFindings and VetExitFindings are the unitchecker exit codes go
// vet understands: nonzero fails the vet run and relays stderr.
const (
	VetExitNoFindings = 0
	VetExitFindings   = 2
)

// Vet runs the analyzers under the go vet protocol for one package config
// and returns the process exit code. Diagnostics go to w.
func Vet(cfgPath string, analyzers []*Analyzer, w io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(w, "ndetectlint: %v\n", err)
		return 1
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(w, "ndetectlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// go vet caches the facts file for downstream packages; ndetectlint
	// has no facts, so an empty one is always complete.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(w, "ndetectlint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return VetExitNoFindings
	}
	if cfg.Compiler != "gc" {
		fmt.Fprintf(w, "ndetectlint: unsupported compiler %q\n", cfg.Compiler)
		return 1
	}

	target, err := typecheck(cfg.ImportPath, cfg.GoFiles, cfg.ImportMap, func(path string) (io.ReadCloser, error) {
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return VetExitNoFindings
		}
		fmt.Fprintf(w, "ndetectlint: %v\n", err)
		return 1
	}

	diags, err := RunAnalyzers(target, analyzers)
	if err != nil {
		fmt.Fprintf(w, "ndetectlint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
	if len(diags) > 0 {
		return VetExitFindings
	}
	return VetExitNoFindings
}
