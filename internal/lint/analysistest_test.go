package lint

// An analysistest-style harness: each testdata package under
// testdata/src/ annotates the lines where an analyzer must report with
//
//	// want "regexp"
//
// comments. The test loads the package, runs one analyzer, and fails on
// any unexpected or missing diagnostic. Packages without want comments
// double as negatives: the analyzer must stay silent.

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

var (
	wantLine = regexp.MustCompile(`// want (.*)$`)
	wantExpr = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

func testAnalyzer(t *testing.T, a *Analyzer, pkg string) {
	t.Helper()
	targets, err := LoadPackages(".", "./testdata/src/"+pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 1 {
		t.Fatalf("loaded %d packages for %s, want 1", len(targets), pkg)
	}
	tgt := targets[0]
	diags, err := RunAnalyzers(tgt, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	type site struct {
		file string
		line int
	}
	wants := make(map[site][]*regexp.Regexp)
	for _, f := range tgt.Files {
		name := tgt.Fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			at := site{name, i + 1}
			for _, q := range wantExpr.FindAllStringSubmatch(m[1], -1) {
				re, err := regexp.Compile(q[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, q[1], err)
				}
				wants[at] = append(wants[at], re)
			}
		}
	}

	for _, d := range diags {
		at := site{d.Position.Filename, d.Position.Line}
		matched := -1
		for i, re := range wants[at] {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic at %s: %s", d.Position, d.Message)
			continue
		}
		wants[at] = append(wants[at][:matched], wants[at][matched+1:]...)
	}
	for at, res := range wants {
		for _, re := range res {
			t.Errorf("missing diagnostic at %s:%d matching %q", at.file, at.line, re)
		}
	}
}

func TestMapOrder(t *testing.T) { testAnalyzer(t, MapOrder, "report") }

// TestMapOrderScope proves the analyzer is scoped: the same violation in
// a package outside the identity path is not a finding.
func TestMapOrderScope(t *testing.T) { testAnalyzer(t, MapOrder, "ordfree") }

func TestIdentityOpt(t *testing.T) { testAnalyzer(t, IdentityOpt, "idreq") }

func TestDetRand(t *testing.T) { testAnalyzer(t, DetRand, "simdet") }

// TestDetRandSeeded proves the sanctioned seeded pattern from
// internal/ndetect/procedure1.go — rand.New(rand.NewSource(seed)) with
// per-stream draws — passes detrand clean.
func TestDetRandSeeded(t *testing.T) { testAnalyzer(t, DetRand, "seeded") }

func TestBudget(t *testing.T) { testAnalyzer(t, Budget, "budgetgo") }

func TestErrFlow(t *testing.T) { testAnalyzer(t, ErrFlow, "storewr") }

// TestTreeClean pins the acceptance bar: the full analyzer suite over the
// production tree reports nothing. Any new ambient input, unsorted
// identity-path map range, unthreaded request field, bare hot-path
// goroutine or swallowed store error fails this test before it ever
// reaches CI's go vet step.
func TestTreeClean(t *testing.T) {
	diags, err := Run("../..", []string{"./..."}, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
