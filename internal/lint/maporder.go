package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// maporder: Go map iteration order is deliberately randomized, so any map
// range whose key or value reaches bytes that are served, cached, hashed
// or diffed breaks the byte-identity contract (DESIGN.md §7). The
// analyzer flags map ranges in identity-path packages whose iteration
// variables flow into a sink — fmt formatting, Write-family methods,
// encoding or hashing calls — or are accumulated with append without the
// accumulated slice ever being sorted in the same function.
//
// This is a syntactic reachability check, not full dataflow: values
// passed to helper functions are not followed. The identity-path packages
// keep their encoding local (one encoder, report.Analysis), which is what
// makes the local check sufficient in practice; anything cleverer belongs
// behind an ndetect:allow(maporder) marker with its proof.

// identityPathPackages names the packages whose output feeds encoded
// documents, artifacts or cache keys (by package name: the testdata
// suites mimic them under the same names).
var identityPathPackages = map[string]bool{
	"report":  true,
	"encode":  true,
	"store":   true,
	"exp":     true,
	"service": true,
	"fault":   true,
}

// MapOrder is the maporder analyzer.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration order must not reach encoded output in identity-path packages",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) error {
	if !identityPathPackages[p.Pkg.Name()] {
		return nil
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if tv, ok := p.Info.Types[rs.X]; !ok || !isMap(tv.Type) {
					return true
				}
				checkMapRange(p, fn, rs)
				return true
			})
		}
	}
	return nil
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange inspects one map range statement for order-dependent
// sinks fed by its iteration variables.
func checkMapRange(p *Pass, fn *ast.FuncDecl, rs *ast.RangeStmt) {
	tainted := make(map[types.Object]bool)
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := v.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if o := p.Info.Defs[id]; o != nil { // k, v := range m
			tainted[o] = true
		} else if o := p.Info.Uses[id]; o != nil { // k, v = range m
			tainted[o] = true
		}
	}
	if len(tainted) == 0 {
		return // `for range m`: nothing iteration-ordered escapes
	}

	// First pass: append calls whose result lands in a plain variable are
	// deferred — a later sort re-establishes a deterministic order (the
	// sorted-key-slice idiom).
	appendDest := make(map[*ast.CallExpr]types.Object)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltin(p.Info, call, "append") || i >= len(as.Lhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if o := p.Info.Defs[id]; o != nil {
					appendDest[call] = o
				} else if o := p.Info.Uses[id]; o != nil {
					appendDest[call] = o
				}
			}
		}
		return true
	})

	type pending struct {
		obj types.Object
		n   ast.Node
	}
	var appends []pending
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isBuiltin(p.Info, call, "append"):
			if !usesAny(p.Info, call, tainted) {
				return true
			}
			if dest, ok := appendDest[call]; ok {
				appends = append(appends, pending{dest, call})
			} else {
				p.Reportf(call.Pos(), "map iteration order reaches append outside a sortable variable; iterate sorted keys instead (DESIGN.md §7)")
			}
		case sinkCall(p.Info, call):
			if argsUse(p.Info, call, tainted) {
				p.Reportf(call.Pos(), "map iteration order reaches %s; iterate a sorted key slice instead (DESIGN.md §7)", describeCall(call))
			}
		}
		return true
	})

	// An accumulated slice is fine iff the enclosing function later sorts
	// it (sort.* or slices.Sort*). The sort need not follow the loop
	// textually — any sort of the same variable in the function counts.
	for _, a := range appends {
		if !sortedInFunc(p.Info, fn, a.obj) {
			p.Reportf(a.n.Pos(), "map iteration order accumulates into %q which is never sorted in %s; sort it before it reaches output (DESIGN.md §7)", a.obj.Name(), fn.Name.Name)
		}
	}
}

// argsUse reports whether any call argument references a tainted object
// (the callee expression itself is excluded: v.Method() receivers count,
// via the selector being part of Fun — so include Fun too for methods on
// tainted values).
func argsUse(info *types.Info, call *ast.CallExpr, tainted map[types.Object]bool) bool {
	for _, arg := range call.Args {
		if usesAny(info, arg, tainted) {
			return true
		}
	}
	// Write-family methods *on* a tainted value (v.WriteTo(w)) leak too.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && usesAny(info, sel.X, tainted) {
		return true
	}
	return false
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// sinkCall classifies calls whose argument order is observable in output:
// fmt formatting, Write-family methods (strings.Builder, bytes.Buffer,
// hash.Hash, io.Writer), and encoding or hashing package functions.
func sinkCall(info *types.Info, call *ast.CallExpr) bool {
	if pkg, _, ok := calleePkgFunc(info, call); ok {
		if pkg == "fmt" || strings.HasPrefix(pkg, "encoding/") || strings.HasPrefix(pkg, "hash") || strings.HasPrefix(pkg, "crypto/") {
			return true
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if strings.HasPrefix(sel.Sel.Name, "Write") {
			return true
		}
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if id.Name == "print" || id.Name == "println" {
			if _, isB := info.Uses[id].(*types.Builtin); isB {
				return true
			}
		}
	}
	return false
}

func describeCall(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return "a sink call"
}

// sortedInFunc reports whether fn contains a sort.* or slices.Sort* call
// over the given object.
func sortedInFunc(info *types.Info, fn *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name, ok := calleePkgFunc(info, call)
		if !ok {
			return true
		}
		isSort := pkg == "sort" || (pkg == "slices" && strings.HasPrefix(name, "Sort"))
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			if usesAny(info, arg, map[types.Object]bool{obj: true}) {
				found = true
			}
		}
		return true
	})
	return found
}
