// Package bench provides the benchmark machines the experiments run on.
//
// The paper evaluates on the combinational logic of MCNC FSM benchmarks
// (plus four machines — dvram, fetch, log, rie — that were never publicly
// distributed). This environment ships no benchmark data, so the suite
// consists of:
//
//   - hand-written machines with meaningful semantics (counters, direction
//     detectors, small controllers) for the tiny circuits, and
//   - deterministic synthetic surrogates, generated from a per-name seed,
//     matching the published primary-input / primary-output / state counts
//     of every MCNC circuit used in Tables 2-6.
//
// DESIGN.md §4 documents this substitution and how to read surrogate
// numbers against the published rows (cmd/paper -compare prints both).
package bench

import (
	"fmt"
	"math/rand"

	"ndetect/internal/kiss"
)

// genParams controls the synthetic STG generator.
type genParams struct {
	Inputs  int
	Outputs int
	States  int

	// SplitProb is the probability of splitting an input cube while
	// building a state's transition tree; higher values give more, narrower
	// cubes (more product terms after synthesis).
	SplitProb float64
	// DropProb is the probability of leaving a leaf cube unspecified.
	// Unspecified entries synthesize to constant-0 rows, which injects the
	// redundancy responsible for the heavy nmin tails the paper observes on
	// its larger circuits.
	DropProb float64
	// OutputDashProb is the probability that an output bit of a transition
	// is '-' (don't care, resolved to 0 by synthesis).
	OutputDashProb float64
}

// generate builds a deterministic random STG. The same (name, seed, params)
// always yields the same machine.
func generate(name string, seed int64, p genParams) (*kiss.STG, error) {
	if p.Inputs < 1 || p.Outputs <= 0 || p.States <= 0 {
		return nil, fmt.Errorf("bench: bad generator params for %s", name)
	}
	rng := rand.New(rand.NewSource(seed))

	stateName := func(i int) string { return fmt.Sprintf("s%d", i) }

	var trs []kiss.Transition
	for s := 0; s < p.States; s++ {
		cubes := splitCubes(rng, p.Inputs, p.SplitProb)
		for ci, cube := range cubes {
			// Drop leaves probabilistically, but keep at least the first
			// cube of every state so all published states exist in the
			// generated machine.
			if ci > 0 && rng.Float64() < p.DropProb {
				continue // unspecified entry
			}
			to := rng.Intn(p.States)
			// Bias toward a connected machine: occasionally jump to the
			// successor ring to avoid absorbing states dominating.
			if rng.Float64() < 0.3 {
				to = (s + 1) % p.States
			}
			out := make([]byte, p.Outputs)
			for k := range out {
				switch {
				case rng.Float64() < p.OutputDashProb:
					out[k] = '-'
				case rng.Float64() < 0.5:
					out[k] = '1'
				default:
					out[k] = '0'
				}
			}
			trs = append(trs, kiss.Transition{
				Input:  cube,
				From:   stateName(s),
				To:     stateName(to),
				Output: string(out),
			})
		}
	}
	if len(trs) == 0 {
		return nil, fmt.Errorf("bench: generator produced no transitions for %s", name)
	}

	src := renderKISS(p, trs)
	m, err := kiss.ParseString(name, src)
	if err != nil {
		return nil, fmt.Errorf("bench: generated %s does not parse: %w", name, err)
	}
	if m.NumStates() != p.States {
		return nil, fmt.Errorf("bench: generated %s has %d states, want %d", name, m.NumStates(), p.States)
	}
	if err := m.CheckDeterministic(); err != nil {
		return nil, fmt.Errorf("bench: generated %s not deterministic: %w", name, err)
	}
	return m, nil
}

// splitCubes recursively partitions the input space into disjoint cubes:
// starting from the all-don't-care cube, each cube is either emitted or
// split on a random unspecified variable. The result always has at least
// one cube, and all cubes are pairwise disjoint, so any assignment of next
// states is deterministic.
func splitCubes(rng *rand.Rand, inputs int, splitProb float64) []string {
	if inputs == 0 {
		return []string{""}
	}
	var out []string
	var rec func(cube []byte, free int, depth int)
	rec = func(cube []byte, free int, depth int) {
		if free > 0 && rng.Float64() < splitProb/float64(depth) {
			// Pick a random unspecified position.
			k := rng.Intn(free)
			pos := -1
			for i, c := range cube {
				if c == '-' {
					if k == 0 {
						pos = i
						break
					}
					k--
				}
			}
			c0 := append([]byte(nil), cube...)
			c0[pos] = '0'
			c1 := append([]byte(nil), cube...)
			c1[pos] = '1'
			rec(c0, free-1, depth+1)
			rec(c1, free-1, depth+1)
			return
		}
		out = append(out, string(cube))
	}
	full := make([]byte, inputs)
	for i := range full {
		full[i] = '-'
	}
	rec(full, inputs, 1)
	return out
}

// renderKISS serializes transitions into KISS2 text. The first transition's
// From becomes the reset state; we force s0 to appear first so the reset is
// stable across parameter tweaks.
func renderKISS(p genParams, trs []kiss.Transition) string {
	src := fmt.Sprintf(".i %d\n.o %d\n.r s0\n", p.Inputs, p.Outputs)
	for _, tr := range trs {
		src += fmt.Sprintf("%s %s %s %s\n", tr.Input, tr.From, tr.To, tr.Output)
	}
	src += ".e\n"
	return src
}
