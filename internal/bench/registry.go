package bench

import (
	"fmt"
	"sort"
	"sync"

	"ndetect/internal/kiss"
	"ndetect/internal/synth"
)

// Benchmark is one circuit of the evaluation suite.
type Benchmark struct {
	Name string
	// Inputs/Outputs/States is the published interface of the MCNC
	// namesake (primary inputs, primary outputs, symbolic states).
	Inputs, Outputs, States int
	// Handwritten marks machines written by hand (semantic surrogates);
	// the rest come from the seeded synthetic generator.
	Handwritten bool

	src  string    // KISS2 source for handwritten machines
	gen  genParams // generator parameters otherwise
	seed int64

	once sync.Once
	stg  *kiss.STG
	err  error
}

// STG parses (or generates) the machine, memoized.
func (b *Benchmark) STG() (*kiss.STG, error) {
	b.once.Do(func() {
		if b.Handwritten {
			b.stg, b.err = kiss.ParseString(b.Name, b.src)
		} else {
			b.stg, b.err = generate(b.Name, b.seed, b.gen)
		}
		if b.err == nil {
			if err := b.stg.CheckDeterministic(); err != nil {
				b.err = err
			}
		}
	})
	return b.stg, b.err
}

// DefaultOptions returns the synthesis options the experiment suite uses:
// multi-level netlists with fanin capped at 4, the character of the paper's
// benchmark circuits (two-level mapping remains available for the ablation
// bench).
func DefaultOptions() synth.Options {
	return synth.Options{MultiLevel: true, MaxFanin: 4}
}

// Synthesize builds the benchmark's combinational logic.
func (b *Benchmark) Synthesize(opts synth.Options) (*synth.Result, error) {
	m, err := b.STG()
	if err != nil {
		return nil, err
	}
	return synth.Synthesize(m, opts)
}

// SynthesizeDefault builds the benchmark's combinational logic with
// DefaultOptions.
func (b *Benchmark) SynthesizeDefault() (*synth.Result, error) {
	return b.Synthesize(DefaultOptions())
}

// TotalInputs returns primary inputs + minimal binary state bits: the input
// count of the synthesized combinational circuit (and so log2|U|).
func (b *Benchmark) TotalInputs() int {
	m, err := b.STG()
	if err != nil {
		return -1
	}
	return m.NumInputs + m.StateBits()
}

// seedFor derives a stable per-name seed.
func seedFor(name string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return int64(h)
}

var (
	registryOnce sync.Once
	registry     map[string]*Benchmark
	orderedNames []string
)

func hw(name string, in, out, states int, src string) *Benchmark {
	return &Benchmark{Name: name, Inputs: in, Outputs: out, States: states, Handwritten: true, src: src}
}

func gen(name string, in, out, states int, p genParams) *Benchmark {
	p.Inputs, p.Outputs, p.States = in, out, states
	return &Benchmark{Name: name, Inputs: in, Outputs: out, States: states, gen: p, seed: seedFor(name)}
}

// Generator parameter families. The "tail" family uses a high drop
// probability: many unspecified (state, input) entries synthesize to
// constant-0 rows, producing the redundant logic behind the heavy nmin
// tails the paper reports for its last seven circuits.
var (
	normalGen = genParams{SplitProb: 0.8, DropProb: 0.12, OutputDashProb: 0.20}
	denseGen  = genParams{SplitProb: 1.2, DropProb: 0.08, OutputDashProb: 0.15}
	tailGen   = genParams{SplitProb: 1.2, DropProb: 0.45, OutputDashProb: 0.30}
)

func buildRegistry() {
	list := []*Benchmark{
		// Handwritten semantic surrogates (small classical machines).
		hw("lion", 2, 1, 4, lionHW),
		hw("train4", 2, 1, 4, train4HW),
		hw("bbtas", 2, 2, 6, bbtasHW),
		hw("dk27", 1, 2, 7, dk27HW),
		hw("mc", 3, 5, 4, mcHW),
		hw("tav", 4, 4, 4, tavHW),
		hw("s8", 4, 1, 5, s8HW),
		hw("firstex", 3, 2, 6, firstexHW),
		hw("lion9", 2, 1, 9, mkUpDownCounter(9)),
		hw("train11", 2, 1, 11, mkUpDownCounter(11)),
		hw("modulo12", 1, 1, 12, mkModCounter(12)),
		hw("donfile", 2, 1, 24, mkJohnsonRing(24, 1)),

		// Seeded synthetic surrogates for the remaining MCNC machines.
		gen("ex5", 2, 2, 9, normalGen),
		gen("dk15", 3, 5, 4, denseGen),
		gen("dk512", 1, 3, 15, normalGen),
		gen("dk14", 3, 5, 7, denseGen),
		gen("dk17", 2, 3, 8, normalGen),
		gen("dk16", 2, 3, 27, denseGen),
		gen("ex7", 2, 2, 10, normalGen),
		gen("beecount", 3, 4, 7, normalGen),
		gen("ex2", 2, 2, 19, denseGen),
		gen("ex3", 2, 2, 10, normalGen),
		gen("ex6", 5, 8, 8, normalGen),
		gen("mark1", 5, 16, 15, normalGen),
		gen("bbara", 4, 2, 10, normalGen),
		gen("ex4", 6, 9, 14, normalGen),
		gen("keyb", 7, 2, 19, denseGen),
		gen("opus", 5, 6, 10, normalGen),
		gen("bbsse", 7, 7, 16, normalGen),
		gen("cse", 7, 7, 16, denseGen),

		// The paper's four non-public industrial-style machines and s1a
		// (the redundant version of s1): tail-family surrogates.
		gen("dvram", 7, 6, 20, tailGen),
		gen("fetch", 6, 5, 16, tailGen),
		gen("log", 5, 4, 12, tailGen),
		gen("rie", 7, 5, 20, tailGen),
		gen("s1a", 8, 6, 20, tailGen),
	}
	registry = make(map[string]*Benchmark, len(list))
	for _, b := range list {
		if _, dup := registry[b.Name]; dup {
			panic(fmt.Sprintf("bench: duplicate benchmark %q", b.Name))
		}
		registry[b.Name] = b
		orderedNames = append(orderedNames, b.Name)
	}
}

// All returns every benchmark in the paper's Table 2 ordering groups
// (registration order here).
func All() []*Benchmark {
	registryOnce.Do(buildRegistry)
	out := make([]*Benchmark, 0, len(registry))
	for _, n := range orderedNames {
		out = append(out, registry[n])
	}
	return out
}

// Names returns all benchmark names, sorted.
func Names() []string {
	registryOnce.Do(buildRegistry)
	out := append([]string(nil), orderedNames...)
	sort.Strings(out)
	return out
}

// ByName looks a benchmark up.
func ByName(name string) (*Benchmark, bool) {
	registryOnce.Do(buildRegistry)
	b, ok := registry[name]
	return b, ok
}
