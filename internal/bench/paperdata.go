package bench

// Published results from the paper, used by EXPERIMENTS.md generation and
// the report package to print paper-vs-measured comparisons. All numbers
// are copied from Tables 2, 3 and 5 of the paper.

// PaperTable2Row is one circuit's row of Table 2: the percentage of
// four-way bridging faults with nmin(g) ≤ n for n = 1,2,3,4,5,10. A value
// of -1 means the paper left the cell blank (100% was reached earlier).
type PaperTable2Row struct {
	Faults int
	Pct    [6]float64 // n = 1, 2, 3, 4, 5, 10
}

// PaperTable3Row is one circuit's row of Table 3: the count of faults with
// nmin(g) ≥ 100, ≥ 20 and ≥ 11.
type PaperTable3Row struct {
	Faults            int
	Ge100, Ge20, Ge11 int
}

// PaperTable5Row is one circuit's row of Table 5: among faults with
// nmin ≥ 11, the number with p(10,g) ≥ 1.0, 0.9, ..., 0.1, 0.0 (K=10000).
// -1 marks cells the paper left blank (all faults sit above the threshold).
type PaperTable5Row struct {
	Faults int
	Counts [11]int
}

// PaperTable2 holds the published Table 2 (n-columns where the paper
// stopped printing after reaching 100% are filled with 100).
var PaperTable2 = map[string]PaperTable2Row{
	"lion":     {23, [6]float64{100, 100, 100, 100, 100, 100}},
	"dk27":     {218, [6]float64{83.03, 100, 100, 100, 100, 100}},
	"ex5":      {1287, [6]float64{92.07, 100, 100, 100, 100, 100}},
	"train4":   {8, [6]float64{75.00, 100, 100, 100, 100, 100}},
	"bbtas":    {155, [6]float64{89.68, 94.84, 100, 100, 100, 100}},
	"dk15":     {1544, [6]float64{97.99, 99.42, 100, 100, 100, 100}},
	"dk512":    {1127, [6]float64{92.72, 99.91, 100, 100, 100, 100}},
	"dk14":     {3694, [6]float64{90.80, 97.64, 99.97, 100, 100, 100}},
	"dk17":     {1244, [6]float64{94.21, 98.95, 99.92, 100, 100, 100}},
	"firstex":  {288, [6]float64{83.33, 97.57, 99.65, 100, 100, 100}},
	"lion9":    {182, [6]float64{79.67, 89.56, 96.15, 100, 100, 100}},
	"mc":       {356, [6]float64{87.08, 92.42, 96.35, 100, 100, 100}},
	"dk16":     {40781, [6]float64{92.90, 98.75, 99.61, 99.94, 100, 100}},
	"modulo12": {448, [6]float64{63.62, 84.82, 93.30, 99.11, 100, 100}},
	"s8":       {294, [6]float64{59.18, 70.41, 95.24, 99.32, 100, 100}},
	"tav":      {176, [6]float64{51.14, 73.86, 88.64, 92.05, 100, 100}},
	"donfile":  {11956, [6]float64{85.95, 97.58, 98.59, 99.37, 99.79, 100}},
	"ex7":      {1358, [6]float64{90.65, 97.05, 99.26, 99.34, 99.34, 100}},
	"train11":  {482, [6]float64{69.92, 80.08, 92.95, 99.59, 99.79, 100}},
	"beecount": {804, [6]float64{89.30, 97.39, 98.51, 98.76, 99.25, 99.75}},
	"ex2":      {11499, [6]float64{90.30, 96.54, 98.57, 99.41, 99.78, 99.99}},
	"ex3":      {2104, [6]float64{86.26, 95.01, 98.95, 99.62, 99.76, 99.86}},
	"ex6":      {4051, [6]float64{94.20, 94.20, 95.51, 95.51, 98.52, 99.61}},
	"mark1":    {2469, [6]float64{89.67, 89.83, 92.99, 93.20, 94.53, 95.95}},
	"bbara":    {858, [6]float64{80.42, 84.85, 89.28, 89.51, 92.31, 97.55}},
	"ex4":      {2038, [6]float64{88.86, 88.86, 89.99, 89.99, 93.57, 95.98}},
	"keyb":     {20894, [6]float64{88.27, 91.17, 93.61, 93.99, 95.03, 97.73}},
	"opus":     {1901, [6]float64{79.22, 83.96, 89.90, 92.00, 93.42, 97.42}},
	"bbsse":    {4265, [6]float64{89.14, 89.14, 89.17, 89.17, 92.19, 95.97}},
	"cse":      {9110, [6]float64{93.61, 93.61, 95.16, 95.16, 98.25, 99.13}},
	"dvram":    {14737, [6]float64{88.78, 88.78, 88.78, 88.78, 88.78, 88.78}},
	"fetch":    {8958, [6]float64{92.10, 92.10, 92.10, 92.10, 92.10, 92.10}},
	"log":      {4290, [6]float64{95.36, 95.36, 95.36, 95.36, 95.36, 95.36}},
	"rie":      {24150, [6]float64{95.04, 95.04, 95.04, 95.04, 95.04, 95.04}},
	"s1a":      {49524, [6]float64{84.34, 84.34, 84.59, 84.59, 85.68, 88.02}},
}

// PaperTable3 holds the published Table 3 (only circuits with faults that
// need n > 10 appear).
var PaperTable3 = map[string]PaperTable3Row{
	"beecount": {804, 0, 0, 2},
	"ex2":      {11499, 0, 0, 1},
	"ex3":      {2104, 0, 0, 3},
	"ex6":      {4051, 0, 0, 16},
	"mark1":    {2469, 0, 0, 100},
	"bbara":    {858, 0, 3, 21},
	"ex4":      {2038, 0, 19, 82},
	"keyb":     {20894, 0, 206, 474},
	"opus":     {1901, 0, 4, 49},
	"bbsse":    {4265, 2, 38, 172},
	"cse":      {9110, 2, 37, 79},
	"dvram":    {14737, 1256, 1653, 1653},
	"fetch":    {8958, 688, 708, 708},
	"log":      {4290, 199, 199, 199},
	"rie":      {24150, 1136, 1197, 1197},
	"s1a":      {49524, 258, 4260, 5934},
}

// PaperTable5 holds the published Table 5: p(10,g) threshold counts with
// K = 10000, over the faults with nmin(g) ≥ 11. Thresholds are
// 1.0, 0.9, ..., 0.1, 0.0; -1 marks blank cells.
var PaperTable5 = map[string]PaperTable5Row{
	"beecount": {2, [11]int{0, 0, 0, 0, 0, 0, 0, 0, 0, 2, -1}},
	"ex2":      {1, [11]int{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1}},
	"ex3":      {3, [11]int{0, 0, 0, 0, 0, 0, 0, 0, 0, 2, 3}},
	"ex6":      {16, [11]int{0, 14, 15, 15, 15, 15, 15, 15, 16, -1, -1}},
	"mark1":    {100, [11]int{42, 86, 93, 95, 98, 98, 98, 100, -1, -1, -1}},
	"bbara":    {21, [11]int{3, 14, 16, 17, 18, 19, 20, 20, 21, -1, -1}},
	"ex4":      {82, [11]int{32, 82, -1, -1, -1, -1, -1, -1, -1, -1, -1}},
	"keyb":     {474, [11]int{100, 371, 383, 418, 419, 429, 434, 443, 445, 453, 474}},
	"opus":     {49, [11]int{13, 40, 46, 47, 49, -1, -1, -1, -1, -1, -1}},
	"bbsse":    {172, [11]int{77, 143, 147, 150, 152, 153, 153, 153, 156, 170, 172}},
	"cse":      {79, [11]int{39, 76, 77, 77, 77, 77, 77, 77, 78, 78, 79}},
	"dvram":    {1653, [11]int{898, 1498, 1530, 1562, 1576, 1610, 1610, 1618, 1623, 1637, 1653}},
	"fetch":    {708, [11]int{436, 680, 693, 695, 696, 705, 705, 706, 708, -1, -1}},
	"log":      {199, [11]int{68, 167, 172, 172, 172, 172, 172, 193, 193, 199, -1}},
	"rie":      {1197, [11]int{512, 1046, 1067, 1070, 1070, 1134, 1134, 1134, 1179, 1179, 1197}},
	"s1a":      {5934, [11]int{2663, 4982, 5258, 5434, 5511, 5599, 5658, 5772, 5816, 5881, 5934}},
}

// Table5Circuits lists the circuits of Tables 3/5 in the paper's order.
var Table5Circuits = []string{
	"beecount", "ex2", "ex3", "ex6", "mark1",
	"bbara", "ex4", "keyb", "opus",
	"bbsse", "cse", "dvram", "fetch", "log", "rie", "s1a",
}

// Table6Circuits lists the circuits of Table 6 in the paper's
// (alphabetical) order.
var Table6Circuits = []string{
	"bbara", "bbsse", "beecount", "cse", "dvram", "ex2", "ex3", "ex4",
	"ex6", "fetch", "keyb", "log", "mark1", "opus", "rie", "s1a",
}
