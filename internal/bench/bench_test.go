package bench

import (
	"math/rand"
	"testing"

	"ndetect/internal/synth"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestAllBenchmarksParse(t *testing.T) {
	for _, b := range All() {
		m, err := b.STG()
		if err != nil {
			t.Errorf("%s: STG: %v", b.Name, err)
			continue
		}
		if m.NumInputs != b.Inputs {
			t.Errorf("%s: inputs = %d, want %d", b.Name, m.NumInputs, b.Inputs)
		}
		if m.NumOutputs != b.Outputs {
			t.Errorf("%s: outputs = %d, want %d", b.Name, m.NumOutputs, b.Outputs)
		}
		if m.NumStates() != b.States {
			t.Errorf("%s: states = %d, want %d", b.Name, m.NumStates(), b.States)
		}
		if err := m.CheckDeterministic(); err != nil {
			t.Errorf("%s: nondeterministic: %v", b.Name, err)
		}
	}
}

func TestAllBenchmarksSynthesize(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, b := range All() {
		r, err := b.Synthesize(synth.Options{})
		if err != nil {
			t.Errorf("%s: Synthesize: %v", b.Name, err)
			continue
		}
		stats := r.Circuit.ComputeStats()
		if stats.MultiInputGates < 2 {
			t.Errorf("%s: only %d multi-input gates; bridging universe degenerate", b.Name, stats.MultiInputGates)
		}
		if got := b.TotalInputs(); got != r.TotalInputs() {
			t.Errorf("%s: TotalInputs %d vs synth %d", b.Name, got, r.TotalInputs())
		}
		if r.TotalInputs() > 14 {
			t.Errorf("%s: %d total inputs exceeds the expected benchmark scale", b.Name, r.TotalInputs())
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a, err := generate("x", 42, genParams{Inputs: 4, Outputs: 3, States: 7, SplitProb: 2.5, DropProb: 0.2, OutputDashProb: 0.2})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	b, err := generate("x", 42, genParams{Inputs: 4, Outputs: 3, States: 7, SplitProb: 2.5, DropProb: 0.2, OutputDashProb: 0.2})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if len(a.Transitions) != len(b.Transitions) {
		t.Fatal("generator not deterministic")
	}
	for i := range a.Transitions {
		if a.Transitions[i] != b.Transitions[i] {
			t.Fatal("generator not deterministic")
		}
	}
	c, err := generate("x", 43, genParams{Inputs: 4, Outputs: 3, States: 7, SplitProb: 2.5, DropProb: 0.2, OutputDashProb: 0.2})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if len(a.Transitions) == len(c.Transitions) {
		same := true
		for i := range a.Transitions {
			if a.Transitions[i] != c.Transitions[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical machines")
		}
	}
}

func TestGeneratorRejectsBadParams(t *testing.T) {
	if _, err := generate("bad", 1, genParams{Inputs: 0, Outputs: 1, States: 2}); err == nil {
		t.Fatal("accepted zero inputs")
	}
	if _, err := generate("bad", 1, genParams{Inputs: 2, Outputs: 0, States: 2}); err == nil {
		t.Fatal("accepted zero outputs")
	}
}

func TestSplitCubesDisjointCover(t *testing.T) {
	// The generated cubes must partition the input space (disjoint, and
	// jointly covering), which is what makes every generated machine
	// deterministic by construction.
	for seed := int64(0); seed < 30; seed++ {
		rng := newRng(seed)
		cubes := splitCubes(rng, 5, 3.0)
		covered := make([]int, 32)
		for _, cube := range cubes {
			for v := 0; v < 32; v++ {
				if cubeMatchesStr(cube, v, 5) {
					covered[v]++
				}
			}
		}
		for v, c := range covered {
			if c != 1 {
				t.Fatalf("seed %d: vector %d covered %d times", seed, v, c)
			}
		}
	}
}

func cubeMatchesStr(cube string, v, n int) bool {
	for i := 0; i < n; i++ {
		bit := (v >> uint(n-1-i)) & 1
		if cube[i] == '0' && bit != 0 {
			return false
		}
		if cube[i] == '1' && bit != 1 {
			return false
		}
	}
	return true
}

func TestByName(t *testing.T) {
	b, ok := ByName("lion")
	if !ok || b.Name != "lion" {
		t.Fatal("ByName(lion) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName accepted unknown name")
	}
	if len(Names()) != len(All()) {
		t.Fatal("Names and All disagree")
	}
}

func TestPaperDataConsistency(t *testing.T) {
	// Every circuit in the paper tables exists in the registry.
	for name := range PaperTable2 {
		if _, ok := ByName(name); !ok {
			t.Errorf("Table 2 circuit %s missing from registry", name)
		}
	}
	for name := range PaperTable3 {
		if _, ok := PaperTable2[name]; !ok {
			t.Errorf("Table 3 circuit %s missing from Table 2", name)
		}
	}
	for _, name := range Table5Circuits {
		r3, ok := PaperTable3[name]
		if !ok {
			t.Errorf("Table 5 circuit %s missing from Table 3", name)
			continue
		}
		r5, ok := PaperTable5[name]
		if !ok {
			t.Errorf("Table 5 circuit %s missing from PaperTable5", name)
			continue
		}
		if r5.Faults != r3.Ge11 {
			t.Errorf("%s: Table 5 fault count %d != Table 3 ≥11 count %d", name, r5.Faults, r3.Ge11)
		}
	}
	// Registry ordering covers all 35 circuits of Table 2.
	if len(PaperTable2) != 35 {
		t.Errorf("PaperTable2 has %d circuits, want 35", len(PaperTable2))
	}
	if len(All()) != 35 {
		t.Errorf("registry has %d circuits, want 35", len(All()))
	}
}

func TestHandwrittenComplete(t *testing.T) {
	// Handwritten machines should mostly specify their transition tables;
	// spot-check that tav and s8 are complete.
	for _, name := range []string{"tav", "s8", "mc"} {
		b, _ := ByName(name)
		m, err := b.STG()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if un := m.CheckComplete(); un != 0 {
			t.Errorf("%s: %d unspecified (state,vector) pairs", name, un)
		}
	}
}
