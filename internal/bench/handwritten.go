package bench

import "fmt"

// Hand-written surrogate machines for the small classical benchmarks. Each
// matches the published input/output/state counts of its MCNC namesake and
// implements comparable semantics (direction detectors, counters, small
// controllers), but is NOT the original MCNC source — see DESIGN.md §4.

// lionHW: 2 inputs (two cage sensors), 1 output, 4 states. A quadrature
// direction detector in the spirit of the original "lion" machine.
const lionHW = `
.i 2
.o 1
.s 4
.r st0
00 st0 st0 0
01 st0 st1 0
11 st1 st1 0
01 st1 st1 0
00 st1 st0 0
10 st1 st2 1
11 st2 st2 1
10 st2 st2 1
00 st2 st3 1
01 st3 st1 0
00 st3 st0 1
10 st3 st3 1
.e
`

// train4HW: 2 inputs (two track sensors), 1 output, 4 states: tracks a
// train passing in either direction.
const train4HW = `
.i 2
.o 1
.s 4
.r stA
00 stA stA 0
10 stA stB 1
01 stA stC 1
11 stB stB 1
10 stB stB 1
01 stB stD 1
11 stC stC 1
01 stC stC 1
10 stC stD 1
00 stD stA 0
11 stD stD 1
.e
`

// bbtasHW: 2 inputs, 2 outputs, 6 states: a small task controller cycling
// through request/grant phases.
const bbtasHW = `
.i 2
.o 2
.s 6
.r s0
00 s0 s0 00
01 s0 s1 00
10 s0 s2 01
11 s0 s1 01
0- s1 s3 10
1- s1 s4 10
-0 s2 s4 01
-1 s2 s5 01
00 s3 s0 11
01 s3 s3 10
1- s3 s5 11
-- s4 s5 00
0- s5 s0 11
1- s5 s3 01
.e
`

// dk27HW: 1 input, 2 outputs, 7 states: a 7-phase sequencer whose input
// chooses between stepping and skipping.
const dk27HW = `
.i 1
.o 2
.s 7
.r p0
0 p0 p1 00
1 p0 p2 01
0 p1 p2 01
1 p1 p3 00
0 p2 p3 10
1 p2 p4 00
0 p3 p4 00
1 p3 p5 10
0 p4 p5 11
1 p4 p6 01
0 p5 p6 01
1 p5 p0 11
0 p6 p0 10
1 p6 p1 11
.e
`

// mcHW: 3 inputs, 5 outputs, 4 states: a miniature memory-controller-like
// machine (idle/read/write/refresh).
const mcHW = `
.i 3
.o 5
.s 4
.r idle
0-- idle idle 00000
100 idle rd 10001
101 idle wr 01001
11- idle rf 00101
-0- rd rd 10000
-1- rd idle 10010
0-- wr wr 01000
1-- wr idle 01010
--0 rf rf 00100
--1 rf idle 00110
.e
`

// tavHW: 4 inputs, 4 outputs, 4 states: a rotating arbiter granting one of
// four requesters.
const tavHW = `
.i 4
.o 4
.s 4
.r a0
1--- a0 a1 1000
01-- a0 a2 0100
001- a0 a3 0010
0001 a0 a0 0001
0000 a0 a0 0000
-1-- a1 a2 0100
-01- a1 a3 0010
-000 a1 a1 1000
-001 a1 a0 0001
--1- a2 a3 0010
--01 a2 a0 0001
--00 a2 a2 0100
---1 a3 a0 0001
---0 a3 a3 0010
.e
`

// s8HW: 4 inputs, 1 output, 5 states: recognizes the nibble sequence whose
// bits descend through the states; resets on mismatch.
const s8HW = `
.i 4
.o 1
.s 5
.r q0
1--- q0 q1 0
0--- q0 q0 0
-1-- q1 q2 0
-0-- q1 q0 0
--1- q2 q3 0
--0- q2 q0 0
---1 q3 q4 1
---0 q3 q0 0
---- q4 q0 1
.e
`

// firstexHW: 3 inputs, 2 outputs, 6 states: the "first example" style
// controller used for illustration.
const firstexHW = `
.i 3
.o 2
.s 6
.r e0
0-- e0 e0 00
10- e0 e1 01
11- e0 e2 10
--0 e1 e3 01
--1 e1 e4 11
-0- e2 e4 00
-1- e2 e5 10
0-- e3 e0 11
1-- e3 e1 00
-00 e4 e2 01
-01 e4 e5 11
-1- e4 e0 10
--- e5 e3 01
.e
`

// mkUpDownCounter builds a 2-input, 1-output machine with the given number
// of positions: input 01 steps up, 10 steps down, 00/11 hold; the output is
// high in the upper half. Used for lion9 (9 states) and train11 (11).
func mkUpDownCounter(states int) string {
	src := ".i 2\n.o 1\n.r c0\n"
	out := func(i int) string {
		if i >= states/2 {
			return "1"
		}
		return "0"
	}
	for i := 0; i < states; i++ {
		up := (i + 1) % states
		down := (i + states - 1) % states
		src += fmt.Sprintf("01 c%d c%d %s\n", i, up, out(up))
		src += fmt.Sprintf("10 c%d c%d %s\n", i, down, out(down))
		src += fmt.Sprintf("00 c%d c%d %s\n", i, i, out(i))
		src += fmt.Sprintf("11 c%d c%d %s\n", i, i, out(i))
	}
	return src + ".e\n"
}

// mkModCounter builds a 1-input, 1-output modulo counter: input 1 steps,
// input 0 holds; the output pulses on wrap-around.
func mkModCounter(states int) string {
	src := ".i 1\n.o 1\n.r c0\n"
	for i := 0; i < states; i++ {
		next := (i + 1) % states
		wrap := "0"
		if next == 0 {
			wrap = "1"
		}
		src += fmt.Sprintf("1 c%d c%d %s\n", i, next, wrap)
		src += fmt.Sprintf("0 c%d c%d 0\n", i, i)
	}
	return src + ".e\n"
}

// mkJohnsonRing builds a 2-input machine stepping a ring of the given
// length; one input enables stepping, the other reverses. Output is a
// one-bit position parity. Used for donfile (24 states) and dk512-like
// shapes when a handwritten variant is preferred over the generator.
func mkJohnsonRing(states, outputs int) string {
	src := fmt.Sprintf(".i 2\n.o %d\n.r r0\n", outputs)
	outPat := func(i int) string {
		buf := make([]byte, outputs)
		for k := range buf {
			if (i>>uint(k))&1 == 1 {
				buf[k] = '1'
			} else {
				buf[k] = '0'
			}
		}
		return string(buf)
	}
	for i := 0; i < states; i++ {
		up := (i + 1) % states
		down := (i + states - 1) % states
		src += fmt.Sprintf("10 r%d r%d %s\n", i, up, outPat(up))
		src += fmt.Sprintf("11 r%d r%d %s\n", i, down, outPat(down))
		src += fmt.Sprintf("0- r%d r%d %s\n", i, i, outPat(i))
	}
	return src + ".e\n"
}
