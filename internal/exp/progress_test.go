package exp

import (
	"sync"
	"testing"
)

// progressEvent is one recorded Progress callback.
type progressEvent struct {
	stage       string
	done, total int
}

func collectProgress(t *testing.T, workers int) []progressEvent {
	t.Helper()
	var (
		mu     sync.Mutex
		events []progressEvent
	)
	req := AnalysisRequest{
		Kind: AverageAnalysis, NMax: 2, K: 40, Seed: 7,
		Workers: workers,
		Progress: func(stage string, done, total int) {
			mu.Lock()
			events = append(events, progressEvent{stage, done, total})
			mu.Unlock()
		},
	}
	if _, err := AnalyzeCircuit(mustEmbedded(t, "c17"), req); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestProgressOrderingContract pins the Progress callback stream the SSE
// event feed relays (DESIGN.md §14): the stage sequence is fixed
// regardless of worker count, done never decreases within a stage, and
// total is constant within a stage. Observability consumers (event
// subscribers, trace recorders) rely on exactly this.
func TestProgressOrderingContract(t *testing.T) {
	wantStages := []string{
		"simulate", "stuck-at-tsets", "bridge-tsets", "universe",
		"worstcase", "procedure1",
	}
	for _, workers := range []int{1, 8} {
		events := collectProgress(t, workers)
		if len(events) == 0 {
			t.Fatalf("workers=%d: no progress events", workers)
		}

		// Distinct stages, in first-appearance order: a stage never
		// reappears after the stream has moved past it.
		var stages []string
		for _, ev := range events {
			if len(stages) == 0 || stages[len(stages)-1] != ev.stage {
				stages = append(stages, ev.stage)
			}
		}
		if len(stages) != len(wantStages) {
			t.Fatalf("workers=%d: stage sequence %v, want %v", workers, stages, wantStages)
		}
		for i := range wantStages {
			if stages[i] != wantStages[i] {
				t.Fatalf("workers=%d: stage sequence %v, want %v", workers, stages, wantStages)
			}
		}

		// Within each stage: done monotone non-decreasing, total constant.
		prev := progressEvent{}
		for i, ev := range events {
			if i > 0 && ev.stage == prev.stage {
				if ev.done < prev.done {
					t.Errorf("workers=%d: stage %s done decreased %d → %d", workers, ev.stage, prev.done, ev.done)
				}
				if ev.total != prev.total {
					t.Errorf("workers=%d: stage %s total changed %d → %d", workers, ev.stage, prev.total, ev.total)
				}
			}
			prev = ev
		}
	}
}
