package exp

import (
	"bytes"
	"sync/atomic"
	"testing"

	"ndetect/internal/circuit"
	"ndetect/internal/fault"
	"ndetect/internal/ndetect"
	"ndetect/internal/report"
)

// countingSource counts universe constructions flowing through it.
type countingSource struct {
	builds atomic.Int64
}

func (s *countingSource) Universe(c *circuit.Circuit, m fault.Model, opts ndetect.AnalyzeOptions) (*ndetect.CircuitUniverse, error) {
	s.builds.Add(1)
	return ndetect.BuildUniverse(c, m, opts)
}

func sweepVariants() []AnalysisRequest {
	return []AnalysisRequest{
		{Kind: WorstCaseAnalysis},
		{Kind: AverageAnalysis, NMax: 2, K: 30, Seed: 1},
		{Kind: AverageAnalysis, NMax: 2, K: 30, Seed: 2},
		{Kind: AverageAnalysis, NMax: 2, K: 30, Seed: 1, Definition: 2, Ge11Limit: 3},
		{Kind: AverageAnalysis, NMax: 3, K: 15, Seed: 5},
	}
}

// The acceptance contract: a sweep of S variants over one circuit runs
// universe construction exactly once, and every variant's document is
// byte-identical to its cold one-shot run.
func TestSweepSharesUniverseAndMatchesColdRuns(t *testing.T) {
	for _, workers := range []int{1, 8} {
		src := &countingSource{}
		docs, err := Sweep(mustEmbedded(t, "c17"), sweepVariants(), SweepOptions{
			Workers:   workers,
			Universes: src,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := src.builds.Load(); got != 1 {
			t.Fatalf("workers=%d: universe constructed %d times for %d variants, want exactly 1",
				workers, got, len(sweepVariants()))
		}
		if len(docs) != len(sweepVariants()) {
			t.Fatalf("got %d documents, want %d", len(docs), len(sweepVariants()))
		}
		for i, v := range sweepVariants() {
			cold, err := AnalyzeCircuit(mustEmbedded(t, "c17"), v)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(docs[i].Encode(), cold.Encode()) {
				t.Fatalf("workers=%d variant %d: swept document differs from cold run:\n%s\n---\n%s",
					workers, i, docs[i].Encode(), cold.Encode())
			}
		}
	}
}

// Without an explicit source the sweep builds the universe itself —
// still once — and still matches cold runs.
func TestSweepDefaultSource(t *testing.T) {
	variants := sweepVariants()[:3]
	docs, err := Sweep(mustEmbedded(t, "c17"), variants, SweepOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := AnalyzeCircuit(mustEmbedded(t, "c17"), variants[2])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(docs[2].Encode(), cold.Encode()) {
		t.Fatal("swept document differs from cold run")
	}
}

func TestSweepRejects(t *testing.T) {
	c := mustEmbedded(t, "c17")
	if _, err := Sweep(c, nil, SweepOptions{}); err == nil {
		t.Fatal("empty sweep should error")
	}
	if _, err := Sweep(c, []AnalysisRequest{{Kind: PartitionedAnalysis}}, SweepOptions{}); err == nil {
		t.Fatal("partitioned variants should be rejected")
	}
	if _, err := Sweep(c, []AnalysisRequest{{Kind: "bogus"}}, SweepOptions{}); err == nil {
		t.Fatal("unknown kind should be rejected")
	}
}

func TestParseSweepGrid(t *testing.T) {
	variants, err := ParseSweep("analysis=average;nmax=2;k=30;seed=1..3;def=1,2")
	if err != nil {
		t.Fatal(err)
	}
	if len(variants) != 6 {
		t.Fatalf("3 seeds × 2 defs = %d variants, want 6", len(variants))
	}
	// Fixed enumeration order: seed outer, def fastest.
	want := []struct {
		seed int64
		def  int
	}{{1, 1}, {1, 2}, {2, 1}, {2, 2}, {3, 1}, {3, 2}}
	for i, v := range variants {
		if v.Kind != AverageAnalysis || v.NMax != 2 || v.K != 30 ||
			v.Seed != want[i].seed || v.Definition != want[i].def {
			t.Fatalf("variant %d = %+v, want seed=%d def=%d", i, v, want[i].seed, want[i].def)
		}
	}
}

// A worst-case axis collapses: it has no numeric identity options, so
// crossing it with a seed list yields one worstcase variant, not three.
func TestParseSweepDeduplicates(t *testing.T) {
	variants, err := ParseSweep("analysis=worstcase,average;seed=1..3")
	if err != nil {
		t.Fatal(err)
	}
	wc := 0
	for _, v := range variants {
		if v.Kind == WorstCaseAnalysis {
			wc++
			if v.IdentityOptions() != (report.Options{}) {
				t.Fatalf("worstcase variant kept options: %+v", v)
			}
		}
	}
	if wc != 1 || len(variants) != 4 {
		t.Fatalf("got %d variants (%d worstcase), want 4 (1 worstcase + 3 seeds)", len(variants), wc)
	}
}

func TestParseSweepErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"bogus=1",
		"analysis=partitioned",
		"seed=",
		"seed=x",
		"seed=5..1",
		"seed=1;seed=2",
		"seed=1..100000",
		"def=3", // normalizes to an invalid definition
		// int64-span overflow: b-a wraps negative and must still reject.
		"seed=-9223372036854775808..9223372036854775807",
		// The raw product bounds enumeration work even when every grid
		// point de-duplicates to one worst-case variant.
		"analysis=worstcase;nmax=1..100;k=1..100",
		"nmax=1..100;k=1..100;seed=1..100",
	} {
		if _, err := ParseSweep(spec); err == nil {
			t.Fatalf("spec %q should error", spec)
		}
	}
	// Defaults: bare numeric keys imply the average analysis.
	variants, err := ParseSweep("seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if len(variants) != 1 || variants[0].Kind != AverageAnalysis || variants[0].Seed != 9 ||
		variants[0].NMax != 10 || variants[0].K != 1000 {
		t.Fatalf("defaults not applied: %+v", variants)
	}

	// A range ending at MaxInt64 enumerates without wrapping (the naive
	// v++ loop would never terminate).
	variants, err = ParseSweep("seed=9223372036854775805..9223372036854775807")
	if err != nil {
		t.Fatal(err)
	}
	if len(variants) != 3 || variants[2].Seed != 9223372036854775807 {
		t.Fatalf("MaxInt64-endpoint range mis-enumerated: %d variants", len(variants))
	}
}
