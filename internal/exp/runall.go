package exp

import (
	"ndetect/internal/ndetect"
	"ndetect/internal/report"
)

// AllResults bundles everything one full reproduction pass computes.
type AllResults struct {
	Table2  []report.Table2Row
	Table3  []report.Table3Row
	Table5  []report.Table5Row
	Table6  []report.Table6Row
	Figure2 string
}

// RunAll regenerates every table (and, when figure2Circuit is non-empty,
// Figure 2) in a single pass over the benchmark suite: each circuit is
// synthesized and analysed once, summarized into every applicable row, and
// released before the next circuit starts. withT5/withT6 gate the expensive
// average-case passes.
func RunAll(cfg Config, figure2Circuit string, withT5, withT6 bool, observe func(string)) (*AllResults, error) {
	cfg.normalize()
	out := &AllResults{}
	for _, name := range cfg.circuitList() {
		run, err := RunCircuit(name)
		if err != nil {
			return nil, err
		}
		out.Table2 = append(out.Table2, Table2Row(run))
		ge11 := run.WC.CountAtLeast(11)
		if ge11 > 0 {
			out.Table3 = append(out.Table3, Table3Row(run))
		}

		if figure2Circuit == name {
			cutoff := 100
			for cutoff > 10 && run.WC.CountAtLeast(cutoff) == 0 {
				cutoff /= 2
			}
			values, counts := run.WC.Histogram(cutoff)
			unbounded := 0
			for _, v := range run.WC.NMin {
				if v == ndetect.Unbounded {
					unbounded++
				}
			}
			out.Figure2 = report.FormatFigure2(name, cutoff, values, counts, unbounded)
		}

		if ge11 > 0 && (withT5 || withT6) {
			idx := ge11Subset(run, cfg.Ge11Limit)
			sub := run.Universe.SubsetUntargeted(idx)
			if withT5 {
				res, err := ndetect.Procedure1(sub, ndetect.Procedure1Options{
					NMax: cfg.NMax, K: cfg.K5, Seed: cfg.Seed,
				})
				if err != nil {
					return nil, err
				}
				out.Table5 = append(out.Table5, thresholdRow(name, res, cfg.NMax))
			}
			if withT6 {
				opts := ndetect.Procedure1Options{NMax: cfg.NMax, K: cfg.K6, Seed: cfg.Seed}
				r1, err := ndetect.Procedure1(sub, opts)
				if err != nil {
					return nil, err
				}
				opts.Definition = ndetect.Def2
				opts.Checker = ndetect.NewCircuitCheckerFor(run.Universe)
				r2, err := ndetect.Procedure1(sub, opts)
				if err != nil {
					return nil, err
				}
				row := report.Table6Row{Circuit: name, Faults: len(idx)}
				copy(row.Def1[:], r1.ThresholdCounts(cfg.NMax))
				copy(row.Def2[:], r2.ThresholdCounts(cfg.NMax))
				out.Table6 = append(out.Table6, row)
			}
		}
		if observe != nil {
			observe(name)
		}
	}
	return out, nil
}
