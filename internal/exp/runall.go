package exp

import (
	"ndetect/internal/ndetect"
	"ndetect/internal/report"
)

// AllResults bundles everything one full reproduction pass computes.
type AllResults struct {
	Table2  []report.Table2Row
	Table3  []report.Table3Row
	Table5  []report.Table5Row
	Table6  []report.Table6Row
	Figure2 string
}

// allCircuit is the per-circuit artifact RunAll's workers produce: every row
// the circuit contributes, computed while the circuit's universe is live,
// summarized so the universe can be released before assembly.
type allCircuit struct {
	t2      report.Table2Row
	t3      report.Table3Row
	hasT3   bool
	t5      report.Table5Row
	hasT5   bool
	t6      report.Table6Row
	hasT6   bool
	figure2 string
}

// RunAll regenerates every table (and, when figure2Circuit is non-empty,
// Figure 2) in a single pass over the benchmark suite: each circuit is
// synthesized and analysed once, summarized into every applicable row, and
// released. Circuits fan out across cfg.Workers goroutines; rows are
// assembled in circuitList() order afterwards, so the tables are identical
// to the serial pass for any worker count. withT5/withT6 gate the expensive
// average-case passes.
func RunAll(cfg Config, figure2Circuit string, withT5, withT6 bool, observe func(string)) (*AllResults, error) {
	cfg.normalize()
	obs := observer(observe)
	per, err := mapCircuits(&cfg, func(name string, workers int) (allCircuit, bool, error) {
		run, err := RunCircuitWorkers(name, workers)
		if err != nil {
			return allCircuit{}, false, err
		}
		a := allCircuit{t2: Table2Row(run)}
		ge11 := run.WC.CountAtLeast(11)
		if ge11 > 0 {
			a.t3, a.hasT3 = Table3Row(run), true
		}

		if figure2Circuit == name {
			cutoff := 100
			for cutoff > 10 && run.WC.CountAtLeast(cutoff) == 0 {
				cutoff /= 2
			}
			values, counts := run.WC.Histogram(cutoff)
			unbounded := 0
			for _, v := range run.WC.NMin {
				if v == ndetect.Unbounded {
					unbounded++
				}
			}
			a.figure2 = report.FormatFigure2(name, cutoff, values, counts, unbounded)
		}

		if ge11 > 0 && (withT5 || withT6) {
			// One nmin ≥ 11 subset serves both average-case passes.
			idx := ge11Subset(run, cfg.Ge11Limit)
			sub := run.Universe.SubsetUntargeted(idx)
			if withT5 {
				res, err := ndetect.Procedure1(sub, ndetect.Procedure1Options{
					NMax: cfg.NMax, K: cfg.K5, Seed: cfg.Seed, Workers: workers,
				})
				if err != nil {
					return allCircuit{}, false, err
				}
				a.t5, a.hasT5 = thresholdRow(name, res, cfg.NMax), true
			}
			if withT6 {
				row, err := table6Row(&cfg, name, run, idx, sub, workers)
				if err != nil {
					return allCircuit{}, false, err
				}
				a.t6, a.hasT6 = row, true
			}
		}
		if obs != nil {
			obs(name)
		}
		return a, true, nil
	})
	if err != nil {
		return nil, err
	}

	out := &AllResults{}
	for _, a := range per {
		out.Table2 = append(out.Table2, a.t2)
		if a.hasT3 {
			out.Table3 = append(out.Table3, a.t3)
		}
		if a.hasT5 {
			out.Table5 = append(out.Table5, a.t5)
		}
		if a.hasT6 {
			out.Table6 = append(out.Table6, a.t6)
		}
		if a.figure2 != "" {
			out.Figure2 = a.figure2
		}
	}
	return out, nil
}
