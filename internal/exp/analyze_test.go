package exp

import (
	"bytes"
	"sync"
	"testing"

	"ndetect/internal/circuit"
	"ndetect/internal/report"
)

func mustEmbedded(t *testing.T, name string) *circuit.Circuit {
	t.Helper()
	c, err := circuit.EmbeddedBench(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// AnalyzeCircuit's bytes are the serving layer's cache contract: identical
// for every Workers value, for every analysis kind.
func TestAnalyzeCircuitWorkersDeterministic(t *testing.T) {
	reqs := []AnalysisRequest{
		{Kind: WorstCaseAnalysis},
		{Kind: AverageAnalysis, NMax: 2, K: 40, Seed: 7},
		{Kind: AverageAnalysis, NMax: 2, K: 40, Seed: 7, Definition: 2, Ge11Limit: 3},
	}
	for _, req := range reqs {
		c := mustEmbedded(t, "c17")
		req.Workers = 1
		serial, err := AnalyzeCircuit(c, req)
		if err != nil {
			t.Fatalf("%s serial: %v", req.Kind, err)
		}
		req.Workers = 8
		parallel, err := AnalyzeCircuit(c, req)
		if err != nil {
			t.Fatalf("%s parallel: %v", req.Kind, err)
		}
		if !bytes.Equal(serial.Encode(), parallel.Encode()) {
			t.Fatalf("%s: workers=1 and workers=8 bytes differ:\n%s\n---\n%s",
				req.Kind, serial.Encode(), parallel.Encode())
		}
	}
}

// Hash-equal circuits produce byte-identical documents: the driver
// canonicalizes before analyzing, so source statement order cannot leak
// into fault enumeration order or Procedure 1's sampling. This is the
// serving layer's cache contract — a reordered resubmission served from
// cache must match what a fresh CLI run on the reordered source prints.
func TestAnalyzeCircuitInvariantUnderStatementReordering(t *testing.T) {
	const reordered = `
23 = NAND(16, 19)
22 = NAND(10, 16)
OUTPUT(22)
OUTPUT(23)
19 = NAND(11, 7)
16 = NAND(2, 11)
11 = NAND(3, 6)
10 = NAND(1, 3)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
`
	shuffled, err := circuit.ParseBenchString("c17", reordered)
	if err != nil {
		t.Fatal(err)
	}
	// The average case is the sharp edge: Procedure 1's seeded sampling
	// iterates targets in node-ID order, so without canonicalization the
	// p-values themselves (not just row order) would diverge.
	req := AnalysisRequest{Kind: AverageAnalysis, NMax: 2, K: 40, Seed: 7}
	a, err := AnalyzeCircuit(mustEmbedded(t, "c17"), req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AnalyzeCircuit(shuffled, req)
	if err != nil {
		t.Fatal(err)
	}
	if a.Circuit.Hash != b.Circuit.Hash {
		t.Fatal("reorderings should hash equal")
	}
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatalf("statement reordering changed the document:\n%s\n---\n%s", a.Encode(), b.Encode())
	}
}

// The CLI's -seed default (1) and the server's normalized default must be
// the same analysis, or default CLI and daemon outputs would never diff
// clean.
func TestAnalyzeCircuitSeedDefaultMatchesCLI(t *testing.T) {
	var defaulted AnalysisRequest = AnalysisRequest{Kind: AverageAnalysis}
	if err := defaulted.Normalize(); err != nil {
		t.Fatal(err)
	}
	if defaulted.Seed != 1 {
		t.Fatalf("normalized default seed = %d, want 1 (cmd/ndetect's -seed default)", defaulted.Seed)
	}
}

func TestAnalyzeCircuitAverageSections(t *testing.T) {
	doc, err := AnalyzeCircuit(mustEmbedded(t, "c17"), AnalysisRequest{
		Kind: AverageAnalysis, NMax: 2, K: 40, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if doc.WorstCase == nil || doc.Average == nil || doc.Partitioned != nil {
		t.Fatalf("average kind should fill worst_case + average_case only: %+v", doc)
	}
	// c17 has 7 faults with nmin ≥ 3 (pinned by the worst-case suite), so
	// the Procedure 1 subset is non-empty and every p is in [0, 1].
	if doc.Average.Faults == 0 || len(doc.Average.P) != doc.Average.Faults {
		t.Fatalf("expected a non-empty analysed subset: %+v", doc.Average)
	}
	for _, p := range doc.Average.P {
		if p.P < 0 || p.P > 1 {
			t.Fatalf("p out of range: %+v", p)
		}
	}
	if doc.Options.NMax != 2 || doc.Options.K != 40 || doc.Options.Definition != 1 {
		t.Fatalf("identity options not recorded: %+v", doc.Options)
	}
	if doc.Circuit.Hash != circuit.Hash(mustEmbedded(t, "c17")) {
		t.Fatal("circuit hash missing or wrong")
	}
}

func TestAnalyzeCircuitWorstCaseMatchesCore(t *testing.T) {
	doc, err := AnalyzeCircuit(mustEmbedded(t, "c17"), AnalysisRequest{Kind: WorstCaseAnalysis})
	if err != nil {
		t.Fatal(err)
	}
	wc := doc.WorstCase
	if wc.Untargeted != 26 || len(wc.NMin) != 26 || wc.MaxFinite != 6 {
		t.Fatalf("c17 worst case drifted: untargeted=%d maxfinite=%d", wc.Untargeted, wc.MaxFinite)
	}
	// Identity options of a worst-case run are all defaults — the encoded
	// options object must be empty so equivalent requests cache-key equal.
	if doc.Options != (report.Options{}) {
		t.Fatalf("worstcase options should normalize to zero: %+v", doc.Options)
	}
}

func TestAnalyzeCircuitPartitioned(t *testing.T) {
	c := mustEmbedded(t, "w64")
	doc, err := AnalyzeCircuit(c, AnalysisRequest{Kind: PartitionedAnalysis, MaxInputs: 16, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := doc.Partitioned
	if p == nil || doc.WorstCase != nil || doc.Average != nil {
		t.Fatalf("partitioned kind should fill partitioned only: %+v", doc)
	}
	if len(p.Parts) < 2 || p.MergedFaults == 0 || len(p.Merged) != p.MergedFaults {
		t.Fatalf("partitioned result malformed: parts=%d merged=%d", len(p.Parts), p.MergedFaults)
	}
	if doc.Options.MaxInputs != 16 {
		t.Fatalf("max_inputs not recorded: %+v", doc.Options)
	}
}

func TestAnalyzeCircuitProgress(t *testing.T) {
	var mu sync.Mutex
	stages := map[string]bool{}
	_, err := AnalyzeCircuit(mustEmbedded(t, "c17"), AnalysisRequest{
		Kind: AverageAnalysis, NMax: 2, K: 10, Workers: 4,
		Progress: func(stage string, done, total int) {
			mu.Lock()
			stages[stage] = true
			mu.Unlock()
			if done < 0 || done > total {
				t.Errorf("bad progress %s %d/%d", stage, done, total)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"simulate", "stuck-at-tsets", "bridge-tsets", "worstcase", "procedure1"} {
		if !stages[want] {
			t.Errorf("progress stage %q never reported (got %v)", want, stages)
		}
	}
}

func TestAnalyzeCircuitUnknownKind(t *testing.T) {
	if _, err := AnalyzeCircuit(mustEmbedded(t, "c17"), AnalysisRequest{Kind: "bogus"}); err == nil {
		t.Fatal("unknown kind should error")
	}
	if _, err := AnalyzeCircuit(mustEmbedded(t, "c17"), AnalysisRequest{
		Kind: AverageAnalysis, Definition: 3,
	}); err == nil {
		t.Fatal("unknown definition should error")
	}
}
