package exp

import (
	"reflect"
	"testing"

	"ndetect/internal/report"
)

// TestIdentitySplit pins the identity/non-identity split of
// AnalysisRequest (DESIGN.md §10): every field is exactly one of (a) an
// identity option mirrored in report.Options, (b) the Kind envelope
// identity carried by the document itself, or (c) a pinned operational
// field that must never shape result bytes. Adding a field forces a
// deliberate decision here — and the ndetectlint identityopt analyzer
// enforces the matching threading/markers in the source.
func TestIdentitySplit(t *testing.T) {
	nonIdentity := map[string]bool{
		"Workers":   true,
		"Progress":  true,
		"Universes": true,
		"Trace":     true,
	}
	envelope := map[string]bool{"Kind": true}

	optFields := make(map[string]bool)
	ot := reflect.TypeOf(report.Options{})
	for i := 0; i < ot.NumField(); i++ {
		optFields[ot.Field(i).Name] = true
	}

	rt := reflect.TypeOf(AnalysisRequest{})
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		switch {
		case optFields[name] && (nonIdentity[name] || envelope[name]):
			t.Errorf("AnalysisRequest.%s is both a report.Options field and pinned as non-identity/envelope", name)
		case optFields[name], envelope[name], nonIdentity[name]:
			// accounted for
		default:
			t.Errorf("AnalysisRequest.%s is not accounted for in the identity split: mirror it in report.Options, or pin it here as non-identity (with the // ndetect:nonidentity marker)", name)
		}
	}

	// The mirror must be total in the other direction too: an identity
	// option that exists only in report.Options could never be requested.
	for name := range optFields {
		if _, ok := rt.FieldByName(name); !ok {
			t.Errorf("report.Options.%s has no AnalysisRequest counterpart", name)
		}
	}
}
