package exp

import (
	"strings"
	"testing"

	"ndetect/internal/ndetect"
	"ndetect/internal/report"
)

func TestRunCircuit(t *testing.T) {
	run, err := RunCircuit("lion")
	if err != nil {
		t.Fatalf("RunCircuit: %v", err)
	}
	if run.Name != "lion" || run.Universe == nil || run.WC == nil {
		t.Fatal("incomplete run")
	}
	if len(run.WC.NMin) != len(run.Universe.Untargeted) {
		t.Fatal("result length mismatch")
	}
	if _, err := RunCircuit("nope"); err == nil {
		t.Fatal("RunCircuit accepted unknown name")
	}
}

func TestTable2RowsConsistent(t *testing.T) {
	cfg := Config{Circuits: []string{"lion", "train4"}}
	rows, err := Table2(cfg, nil)
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		prev := 0.0
		for i, p := range r.Pct {
			if p < prev-1e-9 {
				t.Fatalf("%s: coverage not monotone at column %d", r.Circuit, i)
			}
			if p < 0 || p > 100+1e-9 {
				t.Fatalf("%s: coverage out of range: %v", r.Circuit, p)
			}
			prev = p
		}
	}
}

func TestTable3OnlyTailCircuits(t *testing.T) {
	cfg := Config{Circuits: []string{"lion", "log"}}
	rows, err := Table3(cfg, nil)
	if err != nil {
		t.Fatalf("Table3: %v", err)
	}
	for _, r := range rows {
		if r.Ge11 == 0 {
			t.Fatalf("circuit %s with no tail included in Table 3", r.Circuit)
		}
		if r.Ge100 > r.Ge20 || r.Ge20 > r.Ge11 {
			t.Fatalf("%s: tail counts not monotone: %d %d %d", r.Circuit, r.Ge100, r.Ge20, r.Ge11)
		}
	}
	// lion has no tail; it must be absent.
	for _, r := range rows {
		if r.Circuit == "lion" {
			t.Fatal("lion must not appear in Table 3")
		}
	}
}

func TestFigure2AdaptsCutoff(t *testing.T) {
	// bbara has a tail that tops out well below 100: the cutoff adapts.
	s, err := Figure2("bbara", 100)
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	if !strings.Contains(s, "bbara") {
		t.Fatalf("figure missing circuit name:\n%s", s)
	}
	if strings.Contains(s, "no faults with") {
		t.Fatalf("cutoff did not adapt:\n%s", s)
	}
}

func TestTable5RowShape(t *testing.T) {
	cfg := Config{Circuits: []string{"bbara"}, K5: 40, Seed: 3}
	rows, err := Table5(cfg, nil)
	if err != nil {
		t.Fatalf("Table5: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	r := rows[0]
	prev := 0
	for i, c := range r.Counts {
		if c < prev {
			t.Fatalf("threshold counts not cumulative at %d: %v", i, r.Counts)
		}
		prev = c
	}
	if r.Counts[10] != r.Faults {
		t.Fatalf("p ≥ 0 column (%d) must equal the fault count (%d)", r.Counts[10], r.Faults)
	}
}

func TestGe11SubsetSampling(t *testing.T) {
	run, err := RunCircuit("log")
	if err != nil {
		t.Fatalf("RunCircuit: %v", err)
	}
	full := ge11Subset(run, 0)
	if len(full) != run.WC.CountAtLeast(11) {
		t.Fatalf("uncapped subset size %d != CountAtLeast(11) %d", len(full), run.WC.CountAtLeast(11))
	}
	capped := ge11Subset(run, 10)
	if len(full) > 10 && len(capped) != 10 {
		t.Fatalf("capped subset size = %d, want 10", len(capped))
	}
	seen := map[int]bool{}
	for _, j := range capped {
		if seen[j] {
			t.Fatal("duplicate index in capped subset")
		}
		seen[j] = true
		if run.WC.NMin[j] < 11 {
			t.Fatal("capped subset contains a fault below the nmin threshold")
		}
	}
}

func TestRunAllSinglePass(t *testing.T) {
	cfg := Config{Circuits: []string{"lion", "bbara"}, K5: 20, K6: 10, Ge11Limit: 20, Seed: 5}
	var observed []string
	res, err := RunAll(cfg, "bbara", true, true, func(n string) { observed = append(observed, n) })
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(res.Table2) != 2 {
		t.Fatalf("Table2 rows = %d", len(res.Table2))
	}
	if len(observed) != 2 {
		t.Fatalf("observe callback fired %d times", len(observed))
	}
	if res.Figure2 == "" {
		t.Fatal("Figure2 missing")
	}
	// bbara has a (small) tail → appears in tables 3, 5, 6.
	foundT3 := false
	for _, r := range res.Table3 {
		if r.Circuit == "bbara" {
			foundT3 = true
		}
	}
	if !foundT3 {
		t.Fatal("bbara missing from Table 3")
	}
	if len(res.Table5) != 1 || len(res.Table6) != 1 {
		t.Fatalf("T5/T6 rows = %d/%d, want 1/1", len(res.Table5), len(res.Table6))
	}
	// Definition 2 should never be strictly worse in the final column and
	// the fault totals must agree between the two definitions.
	t6 := res.Table6[0]
	if t6.Def1[10] != t6.Def2[10] {
		t.Fatalf("Def1/Def2 totals differ: %d vs %d", t6.Def1[10], t6.Def2[10])
	}
}

func TestRunAllDeterministic(t *testing.T) {
	cfg := Config{Circuits: []string{"bbara"}, K5: 30, Seed: 9}
	a, err := RunAll(cfg, "", true, false, nil)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	b, err := RunAll(cfg, "", true, false, nil)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(a.Table5) != len(b.Table5) {
		t.Fatal("nondeterministic row count")
	}
	for i := range a.Table5 {
		if a.Table5[i] != b.Table5[i] {
			t.Fatalf("nondeterministic Table 5 row %d: %v vs %v", i, a.Table5[i], b.Table5[i])
		}
	}
}

// TestGuaranteeAcrossPipeline is the central end-to-end property: on a real
// synthesized circuit, every fault the worst-case analysis guarantees at
// n ≤ nmax is detected by every random n-detection test set Procedure 1
// produces.
func TestGuaranteeAcrossPipeline(t *testing.T) {
	run, err := RunCircuit("beecount")
	if err != nil {
		t.Fatalf("RunCircuit: %v", err)
	}
	res, err := ndetect.Procedure1(&run.Universe.Universe, ndetect.Procedure1Options{
		NMax: 5, K: 25, Seed: 13, KeepTestSets: true,
	})
	if err != nil {
		t.Fatalf("Procedure1: %v", err)
	}
	for j, g := range run.Universe.Untargeted {
		nm := run.WC.NMin[j]
		if nm > 5 {
			continue
		}
		for n := nm; n <= 5; n++ {
			for k, tk := range res.TestSets[n-1] {
				if !tk.Detects(g) {
					t.Fatalf("guarantee violated: %s nmin=%d missed by %d-detection set %d",
						g.Name, nm, n, k)
				}
			}
		}
	}
}

func TestTable2RowAgainstReport(t *testing.T) {
	run, err := RunCircuit("lion")
	if err != nil {
		t.Fatalf("RunCircuit: %v", err)
	}
	row := Table2Row(run)
	out := report.FormatTable2([]report.Table2Row{row})
	if !strings.Contains(out, "lion") {
		t.Fatal("row lost its circuit name")
	}
}
