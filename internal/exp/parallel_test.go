package exp

import (
	"fmt"
	"testing"
)

// TestRunAllWorkersDeterministic is the acceptance property of the parallel
// engine at the circuit level: RunAll with a fanned-out worker pool emits
// tables byte-identical to the serial pass — same rows, same order.
func TestRunAllWorkersDeterministic(t *testing.T) {
	base := Config{
		Circuits: []string{"lion", "bbara", "train4", "log"},
		K5:       20, K6: 10, Ge11Limit: 20, Seed: 5,
	}

	serial := base
	serial.Workers = 1
	want, err := RunAll(serial, "bbara", true, true, nil)
	if err != nil {
		t.Fatalf("RunAll serial: %v", err)
	}

	for _, workers := range []int{2, 8} {
		cfg := base
		cfg.Workers = workers
		got, err := RunAll(cfg, "bbara", true, true, nil)
		if err != nil {
			t.Fatalf("RunAll workers=%d: %v", workers, err)
		}
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
			t.Fatalf("workers=%d results differ from serial:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

// TestTablesWorkersDeterministic checks the standalone table drivers the
// same way, including the row filtering of Tables 3 and 5.
func TestTablesWorkersDeterministic(t *testing.T) {
	base := Config{Circuits: []string{"lion", "log", "bbara"}, K5: 20, Ge11Limit: 20, Seed: 7}

	serial := base
	serial.Workers = 1
	t2s, err := Table2(serial, nil)
	if err != nil {
		t.Fatal(err)
	}
	t3s, err := Table3(serial, nil)
	if err != nil {
		t.Fatal(err)
	}
	t5s, err := Table5(serial, nil)
	if err != nil {
		t.Fatal(err)
	}

	par := base
	par.Workers = 8
	t2p, err := Table2(par, nil)
	if err != nil {
		t.Fatal(err)
	}
	t3p, err := Table3(par, nil)
	if err != nil {
		t.Fatal(err)
	}
	t5p, err := Table5(par, nil)
	if err != nil {
		t.Fatal(err)
	}

	if fmt.Sprintf("%v", t2p) != fmt.Sprintf("%v", t2s) {
		t.Fatalf("Table2 differs:\n got %v\nwant %v", t2p, t2s)
	}
	if fmt.Sprintf("%v", t3p) != fmt.Sprintf("%v", t3s) {
		t.Fatalf("Table3 differs:\n got %v\nwant %v", t3p, t3s)
	}
	if fmt.Sprintf("%v", t5p) != fmt.Sprintf("%v", t5s) {
		t.Fatalf("Table5 differs:\n got %v\nwant %v", t5p, t5s)
	}
}

// TestMapCircuitsErrorSurfaces checks that a failing circuit aborts the run
// with its error rather than a partial table.
func TestMapCircuitsErrorSurfaces(t *testing.T) {
	cfg := Config{Circuits: []string{"lion", "no-such-circuit"}, Workers: 4}
	if _, err := Table2(cfg, nil); err == nil {
		t.Fatal("Table2 swallowed an unknown-circuit error")
	}
	cfg.Workers = 1
	if _, err := Table2(cfg, nil); err == nil {
		t.Fatal("serial Table2 swallowed an unknown-circuit error")
	}
}
