package exp

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ndetect/internal/fault"
)

var updateGolden = flag.Bool("update", false, "rewrite the per-model golden files in testdata/")

// modelsUnderTest returns the fault models this run covers: every
// registered model, or only $NDETECT_MODEL when set — the CI fault-model
// matrix runs one model per step that way.
func modelsUnderTest(t *testing.T) []string {
	t.Helper()
	if id := os.Getenv("NDETECT_MODEL"); id != "" {
		if _, err := fault.Resolve(id); err != nil {
			t.Fatalf("NDETECT_MODEL: %v", err)
		}
		return []string{id}
	}
	return fault.ModelIDs()
}

// goldenPath maps a model ID onto its golden file ("+" and "/" are not
// filename-safe).
func goldenPath(id string) string {
	safe := strings.NewReplacer("+", "_", "/", "_").Replace(id)
	return filepath.Join("testdata", "c17_worstcase_"+safe+".json")
}

// Per fault model: AnalyzeCircuit's bytes are independent of the worker
// count, and the worst-case document for the embedded c17 matches the
// committed golden file — so a refactor of any model's T-set builder that
// changes result bytes (fault order, nmin values, identity hash) fails
// loudly. Regenerate with `go test ./internal/exp -run PerModel -update`.
func TestAnalyzeCircuitPerModelDeterministic(t *testing.T) {
	for _, id := range modelsUnderTest(t) {
		t.Run(id, func(t *testing.T) {
			reqs := []AnalysisRequest{
				{Kind: WorstCaseAnalysis, FaultModel: id},
				{Kind: AverageAnalysis, FaultModel: id, NMax: 2, K: 40, Seed: 7},
			}
			for _, req := range reqs {
				req.Workers = 1
				serial, err := AnalyzeCircuit(mustEmbedded(t, "c17"), req)
				if err != nil {
					t.Fatalf("%s serial: %v", req.Kind, err)
				}
				req.Workers = 8
				parallel, err := AnalyzeCircuit(mustEmbedded(t, "c17"), req)
				if err != nil {
					t.Fatalf("%s parallel: %v", req.Kind, err)
				}
				if !bytes.Equal(serial.Encode(), parallel.Encode()) {
					t.Fatalf("%s: workers=1 and workers=8 bytes differ", req.Kind)
				}

				if req.Kind != WorstCaseAnalysis {
					continue
				}
				path := goldenPath(id)
				if *updateGolden {
					if err := os.WriteFile(path, serial.Encode(), 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("%v (regenerate with -update)", err)
				}
				if !bytes.Equal(serial.Encode(), want) {
					t.Fatalf("%s: worst-case document drifted from %s:\ngot:\n%s\nwant:\n%s",
						id, path, serial.Encode(), want)
				}
			}
		})
	}
}
