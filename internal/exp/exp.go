// Package exp orchestrates the paper's experiments over the benchmark
// suite: it drives synthesis, universe construction, the worst-case and
// average-case analyses, and shapes the results into the rows of Tables
// 2, 3, 5 and 6 and the Figure 2 histogram.
package exp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ndetect/internal/bench"
	"ndetect/internal/ndetect"
	"ndetect/internal/report"
	"ndetect/internal/sim"
)

// Config controls an experiment run.
type Config struct {
	// Circuits restricts the run (nil = every benchmark).
	Circuits []string
	// NMax is the deepest n-detection level (paper: 10).
	NMax int
	// K5 is the number of random test sets for Table 5 (paper: 10000).
	K5 int
	// K6 is the number of random test sets for Table 6 (paper: 1000).
	K6 int
	// Seed drives all randomized parts deterministically.
	Seed int64
	// Ge11Limit caps the size of the nmin ≥ 11 subset fed to the
	// average-case analysis (0 = no cap). The surrogate circuits can have
	// substantially larger tails than the paper's; the cap keeps Table 5/6
	// regeneration affordable while preserving the distribution shape
	// (faults are kept in nmin order).
	Ge11Limit int
	// Workers bounds the parallelism of the run at every level: circuits
	// fan out across a bounded pool, and the same count is threaded into
	// the per-circuit block-streaming T-set kernel (engine word blocks or
	// fault-level fan-out, whichever the universe size favors) and into
	// Procedure 1. 0 = one worker per CPU; 1 reproduces the original
	// serial pass. Tables are identical for every value — rows are always
	// emitted in circuitList() order.
	Workers int
}

// normalize fills defaults.
func (c *Config) normalize() {
	if c.NMax <= 0 {
		c.NMax = 10
	}
	if c.K5 <= 0 {
		c.K5 = 1000
	}
	if c.K6 <= 0 {
		c.K6 = 200
	}
}

// CircuitRun is the per-circuit artifact of the worst-case pass.
type CircuitRun struct {
	Name     string
	Universe *ndetect.CircuitUniverse
	WC       *ndetect.WorstCaseResult
}

// RunCircuit synthesizes one benchmark and runs the worst-case analysis.
func RunCircuit(name string) (*CircuitRun, error) {
	return RunCircuitWorkers(name, 0)
}

// RunCircuitWorkers is RunCircuit with an explicit worker count threaded
// into every stage — exhaustive simulation, T-set construction and the
// worst-case analysis (0 = one per CPU). mapCircuits passes its split
// per-circuit budget here, so the stages never multiply it back up.
func RunCircuitWorkers(name string, workers int) (*CircuitRun, error) {
	b, ok := bench.ByName(name)
	if !ok {
		return nil, fmt.Errorf("exp: unknown benchmark %q", name)
	}
	r, err := b.SynthesizeDefault()
	if err != nil {
		return nil, err
	}
	u, err := ndetect.FromCircuitWorkers(r.Circuit, workers)
	if err != nil {
		return nil, err
	}
	return &CircuitRun{Name: name, Universe: u, WC: ndetect.WorstCaseWorkers(&u.Universe, workers)}, nil
}

// circuitList resolves the configured circuit set.
func (c *Config) circuitList() []string {
	if len(c.Circuits) > 0 {
		return c.Circuits
	}
	names := make([]string, 0)
	for _, b := range bench.All() {
		names = append(names, b.Name)
	}
	return names
}

// mapCircuits is the circuit-level fan-out shared by every table driver and
// RunAll: it runs fn once per configured circuit across a bounded pool
// (work-stealing over the circuit list, so cheap circuits do not idle a
// worker while a big one runs) and returns the kept results in
// circuitList() order — the serial row order of the paper's tables —
// regardless of completion order. The cfg.Workers budget is split between
// the levels rather than multiplied: fn receives the inner worker count to
// thread into the per-circuit simulation and Procedure 1, so total
// CPU-bound goroutines stay ≈ Workers instead of Workers², and at most
// min(Workers, circuits) universes are live at once. fn returning
// keep=false drops the circuit from the output (Tables 3/5/6 skip circuits
// without a tail). On error the remaining unstarted circuits are abandoned
// and the error of the earliest-indexed failed circuit is returned.
func mapCircuits[T any](cfg *Config, fn func(name string, workers int) (T, bool, error)) ([]T, error) {
	names := cfg.circuitList()
	vals := make([]T, len(names))
	keep := make([]bool, len(names))
	errs := make([]error, len(names))

	total := sim.ResolveWorkers(cfg.Workers)
	outer := total
	if outer > len(names) {
		outer = len(names)
	}
	inner := 1
	if outer > 0 {
		inner = total / outer
		if inner < 1 {
			inner = 1
		}
	}

	var failed atomic.Bool
	sim.ParallelFor(outer, len(names), func(i int) {
		if failed.Load() {
			return
		}
		v, ok, err := fn(names[i], inner)
		if err != nil {
			errs[i] = err
			failed.Store(true)
			return
		}
		vals[i], keep[i] = v, ok
	})

	out := make([]T, 0, len(names))
	for i := range names {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if keep[i] {
			out = append(out, vals[i])
		}
	}
	return out, nil
}

// observer serializes a progress callback across the circuit workers.
// Callbacks fire in completion order, not row order.
func observer[T any](observe func(T)) func(T) {
	if observe == nil {
		return nil
	}
	var mu sync.Mutex
	return func(v T) {
		mu.Lock()
		defer mu.Unlock()
		observe(v)
	}
}

// Table2 computes the worst-case coverage rows for the configured circuits.
// The callback, when non-nil, observes each completed circuit (progress
// reporting; completion order). Each universe is released as soon as its
// circuit is summarized; up to min(Workers, circuits) are live at once.
func Table2(cfg Config, observe func(*CircuitRun)) ([]report.Table2Row, error) {
	cfg.normalize()
	obs := observer(observe)
	return mapCircuits(&cfg, func(name string, workers int) (report.Table2Row, bool, error) {
		run, err := RunCircuitWorkers(name, workers)
		if err != nil {
			return report.Table2Row{}, false, err
		}
		row := Table2Row(run)
		if obs != nil {
			obs(run)
		}
		return row, true, nil
	})
}

// Table2Row summarizes one circuit's worst-case run as a Table 2 row.
func Table2Row(run *CircuitRun) report.Table2Row {
	row := report.Table2Row{
		Circuit: run.Name,
		Faults:  len(run.Universe.Untargeted),
	}
	for i, n := range report.NMinColumns {
		row.Pct[i] = 100 * run.WC.CoverageAt(n)
	}
	return row
}

// Table3Row summarizes one circuit's worst-case run as a Table 3 row.
func Table3Row(run *CircuitRun) report.Table3Row {
	return report.Table3Row{
		Circuit: run.Name,
		Faults:  len(run.Universe.Untargeted),
		Ge100:   run.WC.CountAtLeast(100),
		Ge20:    run.WC.CountAtLeast(20),
		Ge11:    run.WC.CountAtLeast(11),
	}
}

// Table3 computes worst-case tail rows; like the paper, only circuits with
// nmin(g) ≥ 11 faults are included.
func Table3(cfg Config, observe func(*CircuitRun)) ([]report.Table3Row, error) {
	cfg.normalize()
	obs := observer(observe)
	return mapCircuits(&cfg, func(name string, workers int) (report.Table3Row, bool, error) {
		run, err := RunCircuitWorkers(name, workers)
		if err != nil {
			return report.Table3Row{}, false, err
		}
		keep := run.WC.CountAtLeast(11) > 0
		row := report.Table3Row{}
		if keep {
			row = Table3Row(run)
		}
		if obs != nil {
			obs(run)
		}
		return row, keep, nil
	})
}

// Figure2 renders the nmin distribution histogram for one circuit (the
// paper shows dvram with cutoff 100; the cutoff adapts downward to the
// largest populated decade if the surrogate's tail is shorter).
func Figure2(name string, cutoff int) (string, error) {
	run, err := RunCircuit(name)
	if err != nil {
		return "", err
	}
	eff := cutoff
	for eff > 10 && run.WC.CountAtLeast(eff) == 0 {
		eff /= 2
	}
	values, counts := run.WC.Histogram(eff)
	unbounded := 0
	for _, v := range run.WC.NMin {
		if v == ndetect.Unbounded {
			unbounded++
		}
	}
	return report.FormatFigure2(name, eff, values, counts, unbounded), nil
}

// ge11Subset returns the indices of the nmin ≥ 11 faults, in nmin order
// (hardest last), optionally capped.
func ge11Subset(run *CircuitRun, limit int) []int {
	return capEvenly(run.WC.IndicesAtLeast(11), run.WC.NMin, limit)
}

// capEvenly caps a fault-index subset at limit entries by sampling evenly
// across the nmin-sorted list — keeping the distribution shape rather than
// truncating one end (DESIGN.md §4). idx is returned unchanged when limit
// is 0 or already satisfied; it is sorted in place otherwise.
func capEvenly(idx []int, nmin []int, limit int) []int {
	if limit <= 0 || len(idx) <= limit {
		return idx
	}
	sortByNMin(idx, nmin)
	out := make([]int, 0, limit)
	step := float64(len(idx)) / float64(limit)
	for i := 0; i < limit; i++ {
		out = append(out, idx[int(float64(i)*step)])
	}
	return out
}

func sortByNMin(idx []int, nmin []int) {
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && nmin[idx[j]] < nmin[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

// Table5 runs the average-case analysis (Definition 1) on every configured
// circuit that has nmin ≥ 11 faults, producing Table 5 rows.
func Table5(cfg Config, observe func(string)) ([]report.Table5Row, error) {
	cfg.normalize()
	obs := observer(observe)
	return mapCircuits(&cfg, func(name string, workers int) (report.Table5Row, bool, error) {
		run, err := RunCircuitWorkers(name, workers)
		if err != nil {
			return report.Table5Row{}, false, err
		}
		idx := ge11Subset(run, cfg.Ge11Limit)
		if len(idx) == 0 {
			return report.Table5Row{}, false, nil
		}
		sub := run.Universe.SubsetUntargeted(idx)
		res, err := ndetect.Procedure1(sub, ndetect.Procedure1Options{
			NMax: cfg.NMax, K: cfg.K5, Seed: cfg.Seed, Workers: workers,
		})
		if err != nil {
			return report.Table5Row{}, false, err
		}
		if obs != nil {
			obs(name)
		}
		return thresholdRow(name, res, cfg.NMax), true, nil
	})
}

func thresholdRow(name string, res *ndetect.Procedure1Result, n int) report.Table5Row {
	row := report.Table5Row{Circuit: name, Faults: len(res.Detected[n-1])}
	counts := res.ThresholdCounts(n)
	copy(row.Counts[:], counts)
	return row
}

// Table6 runs the Definition 1 vs Definition 2 comparison on every
// configured circuit with nmin ≥ 11 faults.
func Table6(cfg Config, observe func(string)) ([]report.Table6Row, error) {
	cfg.normalize()
	obs := observer(observe)
	return mapCircuits(&cfg, func(name string, workers int) (report.Table6Row, bool, error) {
		run, err := RunCircuitWorkers(name, workers)
		if err != nil {
			return report.Table6Row{}, false, err
		}
		idx := ge11Subset(run, cfg.Ge11Limit)
		if len(idx) == 0 {
			return report.Table6Row{}, false, nil
		}
		row, err := table6Row(&cfg, name, run, idx, run.Universe.SubsetUntargeted(idx), workers)
		if err != nil {
			return report.Table6Row{}, false, err
		}
		if obs != nil {
			obs(name)
		}
		return row, true, nil
	})
}

// table6Row computes one circuit's Definition 1 vs 2 comparison (shared by
// Table6 and RunAll, which pass in the nmin ≥ 11 subset they already built
// and their per-circuit worker budget).
func table6Row(cfg *Config, name string, run *CircuitRun, idx []int, sub *ndetect.Universe, workers int) (report.Table6Row, error) {
	opts := ndetect.Procedure1Options{NMax: cfg.NMax, K: cfg.K6, Seed: cfg.Seed, Workers: workers}
	r1, err := ndetect.Procedure1(sub, opts)
	if err != nil {
		return report.Table6Row{}, err
	}
	opts.Definition = ndetect.Def2
	opts.Checker = ndetect.NewCircuitCheckerFor(run.Universe)
	r2, err := ndetect.Procedure1(sub, opts)
	if err != nil {
		return report.Table6Row{}, err
	}
	row := report.Table6Row{Circuit: name, Faults: len(idx)}
	copy(row.Def1[:], r1.ThresholdCounts(cfg.NMax))
	copy(row.Def2[:], r2.ThresholdCounts(cfg.NMax))
	return row, nil
}
