package exp

import (
	"fmt"

	"ndetect/internal/circuit"
	"ndetect/internal/fault"
	"ndetect/internal/ndetect"
	"ndetect/internal/partition"
	"ndetect/internal/report"
)

// Single-circuit analysis driver.
//
// AnalyzeCircuit is the one code path behind both `cmd/ndetect -json` and
// the ndetectd serving layer: it runs one of the three analyses on one
// circuit and shapes the result into the report.Analysis JSON document.
// Because the computation is a pure function of (circuit, identity
// options, seed) — DESIGN.md §7 — and report.Analysis encodes
// deterministically, the emitted bytes are identical for every Workers
// value and across CLI and daemon, which is what makes server results
// cacheable and CLI-diffable (DESIGN.md §10).

// AnalysisKind selects which of the three analysis facades a request runs.
type AnalysisKind string

// The three analysis kinds, mirroring the facades in the root package.
const (
	// WorstCaseAnalysis runs the Section 2 worst-case pass.
	WorstCaseAnalysis AnalysisKind = "worstcase"
	// AverageAnalysis runs the worst-case pass plus the Section 3
	// Procedure 1 estimate on the faults the worst case does not settle.
	AverageAnalysis AnalysisKind = "average"
	// PartitionedAnalysis runs the Section 4 partitioned pipeline for
	// circuits too wide for exhaustive analysis.
	PartitionedAnalysis AnalysisKind = "partitioned"
)

// AnalysisRequest describes one single-circuit analysis. The identity
// fields (Kind, FaultModel, NMax, K, Seed, Definition, Ge11Limit,
// MaxInputs) select the result; Workers and Progress never influence it
// (DESIGN.md §7).
type AnalysisRequest struct {
	// Kind is identity carried by the §10 document envelope rather than
	// the Options block: the job key and the result document record it,
	// but IdentityOptions (which mirrors report.Options) does not.
	Kind AnalysisKind // ndetect:identity-envelope

	// FaultModel selects the registered fault model the universe is built
	// under (fault.Resolve); empty means the default model, and Normalize
	// canonicalizes an explicit default ID to empty so the two spellings
	// share one identity. Worst-case and average analyses accept any
	// registered model (Definition 2 additionally requires stuck-at
	// targets); the partitioned pipeline is default-model only.
	FaultModel string

	// Average-case identity options (used when Kind is AverageAnalysis).
	NMax       int   // deepest n-detection level (default 10)
	K          int   // test sets per n (default 1000)
	Seed       int64 // Procedure 1 seed
	Definition int   // 1 (default) or 2
	Ge11Limit  int   // cap on the analysed subset, 0 = none (DESIGN.md §4)

	// Partitioned identity option (used when Kind is PartitionedAnalysis).
	MaxInputs int // per-part input limit (default partition.DefaultMaxInputs)

	// Workers bounds the §5 worker budget for every stage (0 = one per
	// CPU, 1 = serial). Not part of the result identity.
	Workers int // ndetect:nonidentity
	// Progress, when non-nil, observes stage transitions. Not part of the
	// result identity.
	Progress ndetect.Progress // ndetect:nonidentity
	// Universes, when non-nil, supplies the exhaustive universe instead
	// of constructing it per request — the hook behind the artifact
	// store's universe tier and the sweep engine's sharing (DESIGN.md
	// §11). A source must return exactly what ndetect.BuildUniverse
	// would build for the canonical circuit and model, which is why
	// substituting one never changes result bytes; it is not part of the
	// result identity. Ignored by the partitioned analysis (per-part
	// universes are constructed inside the pipeline).
	Universes UniverseSource // ndetect:nonidentity
	// Trace, when non-nil, observes the driver's bracketed phases
	// (canonicalize, universe, worstcase, procedure1, partition) for
	// stage-level tracing (DESIGN.md §14). Like Progress it only
	// observes; it is not part of the result identity.
	Trace TraceSink // ndetect:nonidentity
}

// TraceSink receives bracketed phase spans from the analysis driver:
// Begin marks the start of a named phase and returns the function that
// ends it. The driver only ever marks phases — all timing happens inside
// the implementation (obs.Recorder in production), which is how span
// durations exist without any clock read in the detrand-scoped packages
// (DESIGN.md §13, §14). A sink must be safe for concurrent use and must
// never influence the analysis.
type TraceSink interface {
	Begin(name string) (end func())
}

// UniverseSource supplies the exhaustive universe of a canonical circuit
// under a fault model: T(f)/T(g) bitsets and fault tables, the dominant
// cost every result-identity option variant shares. Implementations load
// it from the artifact store, memoize it across a sweep, or both;
// store.Store is one. opts carries the caller's worker budget and
// progress hook — a source that does construct must thread them through,
// and the universe returned must be identical for every opts value (§7).
type UniverseSource interface {
	Universe(c *circuit.Circuit, m fault.Model, opts ndetect.AnalyzeOptions) (*ndetect.CircuitUniverse, error)
}

// Normalize fills defaults and zeroes the fields the kind ignores, so that
// two requests for the same result compare (and cache-key) equal. It
// errors on an unknown kind or definition.
func (r *AnalysisRequest) Normalize() error {
	m, err := fault.Resolve(r.FaultModel)
	if err != nil {
		return fmt.Errorf("exp: %w", err)
	}
	// Canonical spelling: the default model is the empty string, so an
	// explicit "stuckat+bridge4" and an omitted model share one identity
	// (and default-model documents stay byte-identical to pre-registry
	// ones — fault_model is omitempty).
	if m.ID() == fault.DefaultModelID {
		r.FaultModel = ""
	} else {
		r.FaultModel = m.ID()
	}
	switch r.Kind {
	case WorstCaseAnalysis:
		r.NMax, r.K, r.Seed, r.Definition, r.Ge11Limit, r.MaxInputs = 0, 0, 0, 0, 0, 0
	case AverageAnalysis:
		if r.NMax <= 0 {
			r.NMax = 10
		}
		if r.K <= 0 {
			r.K = 1000
		}
		if r.Seed == 0 {
			r.Seed = 1 // cmd/ndetect's -seed default; CLI and server must agree
		}
		if r.Definition == 0 {
			r.Definition = int(ndetect.Def1)
		}
		if r.Definition != int(ndetect.Def1) && r.Definition != int(ndetect.Def2) {
			return fmt.Errorf("exp: unknown definition %d (want 1 or 2)", r.Definition)
		}
		if r.Definition == int(ndetect.Def2) && !m.Def2Capable() {
			return fmt.Errorf("exp: definition 2 requires single stuck-at targets, which fault model %s does not have", m.ID())
		}
		if r.Ge11Limit < 0 {
			r.Ge11Limit = 0
		}
		r.MaxInputs = 0
	case PartitionedAnalysis:
		if r.FaultModel != "" {
			return fmt.Errorf("exp: the partitioned analysis supports only the default fault model, not %s", r.FaultModel)
		}
		if r.MaxInputs <= 0 {
			r.MaxInputs = partition.DefaultMaxInputs
		}
		r.NMax, r.K, r.Seed, r.Definition, r.Ge11Limit = 0, 0, 0, 0, 0
	default:
		return fmt.Errorf("exp: unknown analysis kind %q (want worstcase, average or partitioned)", r.Kind)
	}
	return nil
}

// IdentityOptions returns the result-identity options as they appear in
// the emitted document (and in the serving layer's cache key).
func (r *AnalysisRequest) IdentityOptions() report.Options {
	return report.Options{
		FaultModel: r.FaultModel,
		NMax:       r.NMax,
		K:          r.K,
		Seed:       r.Seed,
		Definition: r.Definition,
		Ge11Limit:  r.Ge11Limit,
		MaxInputs:  r.MaxInputs,
	}
}

// AnalyzeCircuit runs one analysis on one circuit and returns the
// machine-readable result document. The request is normalized first, so
// callers may leave defaults zero.
//
// The circuit is canonicalized before analysis (circuit.Canonicalize):
// fault enumeration order — and with it the document's per-fault ordering
// and Procedure 1's seeded sampling — follows node-ID order, so analyzing
// the canonical form is what makes hash-equal circuits produce
// byte-identical documents regardless of source statement order.
func AnalyzeCircuit(c *circuit.Circuit, req AnalysisRequest) (*report.Analysis, error) {
	if err := req.Normalize(); err != nil {
		return nil, err
	}
	// Phase spans for the trace sink: span(name) opens a phase and returns
	// its end function (a no-op without a sink, so the traced and untraced
	// code paths are one and the same — §14's non-interference argument).
	span := func(name string) func() {
		if req.Trace == nil {
			return func() {}
		}
		return req.Trace.Begin(name)
	}

	endCanon := span("canonicalize")
	c, err := circuit.Canonicalize(c)
	endCanon()
	if err != nil {
		return nil, fmt.Errorf("exp: canonicalize: %w", err)
	}
	doc := &report.Analysis{
		Schema:  report.AnalysisSchema,
		Kind:    string(req.Kind),
		Circuit: circuitInfo(c),
		Options: req.IdentityOptions(),
	}

	progress := func(stage string, done, total int) {
		if req.Progress != nil {
			req.Progress(stage, done, total)
		}
	}

	if req.Kind == PartitionedAnalysis {
		endParts := span("partition")
		res, err := partition.AnalyzeParts(c, partition.Options{
			MaxInputs: req.MaxInputs,
			Progress:  func(done, total int) { progress("parts", done, total) },
		}, req.Workers)
		endParts()
		if err != nil {
			return nil, err
		}
		doc.Partitioned = partitionedJSON(res)
		return doc, nil
	}

	m, err := fault.Resolve(req.FaultModel) // Normalize already vetted the ID
	if err != nil {
		return nil, err
	}
	aopts := ndetect.AnalyzeOptions{Workers: req.Workers, Progress: req.Progress}
	endUniverse := span("universe")
	var u *ndetect.CircuitUniverse
	if req.Universes != nil {
		u, err = req.Universes.Universe(c, m, aopts)
	} else {
		u, err = ndetect.BuildUniverse(c, m, aopts)
	}
	endUniverse()
	if err != nil {
		return nil, err
	}
	endWC := span("worstcase")
	progress("worstcase", 0, 1)
	wc := ndetect.WorstCaseWorkers(&u.Universe, req.Workers)
	progress("worstcase", 1, 1)
	doc.WorstCase = worstCaseJSON(u, wc)
	endWC()

	if req.Kind == AverageAnalysis {
		endAvg := span("procedure1")
		avg, err := averageJSON(u, wc, &req, progress)
		endAvg()
		if err != nil {
			return nil, err
		}
		doc.Average = avg
	}
	return doc, nil
}

func circuitInfo(c *circuit.Circuit) report.CircuitInfo {
	s := c.ComputeStats()
	return report.CircuitInfo{
		Name:            c.Name,
		Hash:            circuit.Hash(c),
		Inputs:          s.Inputs,
		Outputs:         s.Outputs,
		Gates:           s.Gates,
		MultiInputGates: s.MultiInputGates,
		Branches:        s.Branches,
		Depth:           s.MaxLevel,
		VectorSpace:     s.VectorSpaceSize,
	}
}

// jsonNMin maps the in-memory Unbounded sentinel onto the document's -1.
func jsonNMin(v int) int {
	if v == ndetect.Unbounded {
		return report.UnboundedJSON
	}
	return v
}

func coveragePoints(coverageAt func(int) float64) []report.CoveragePoint {
	pts := make([]report.CoveragePoint, 0, len(report.NMinColumns))
	for _, n := range report.NMinColumns {
		pts = append(pts, report.CoveragePoint{N: n, Pct: 100 * coverageAt(n)})
	}
	return pts
}

func tailPoints(countAtLeast func(int) int, total int) []report.TailPoint {
	pts := make([]report.TailPoint, 0, len(report.Table3Columns))
	for _, n := range report.Table3Columns {
		cnt := countAtLeast(n)
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(cnt) / float64(total)
		}
		pts = append(pts, report.TailPoint{N: n, Count: cnt, Pct: pct})
	}
	return pts
}

func worstCaseJSON(u *ndetect.CircuitUniverse, wc *ndetect.WorstCaseResult) *report.WorstCase {
	out := &report.WorstCase{
		Targets:           len(u.Targets),
		DetectableTargets: u.DetectableTargets(),
		Untargeted:        len(u.Untargeted),
		Coverage:          coveragePoints(wc.CoverageAt),
		Tail:              tailPoints(wc.CountAtLeast, len(u.Untargeted)),
		Unbounded:         wc.CountAtLeast(ndetect.Unbounded),
		MaxFinite:         wc.MaxFinite(),
		NMin:              make([]report.FaultNMin, len(u.Untargeted)),
	}
	for j, g := range u.Untargeted {
		out.NMin[j] = report.FaultNMin{Name: g.Name, NMin: jsonNMin(wc.NMin[j])}
	}
	return out
}

// averageJSON runs Procedure 1 on the faults the worst case does not
// settle (nmin > NMax, capped like the Table 5/6 drivers) and summarizes
// it. An empty subset yields a document with Faults 0 and no Procedure 1
// run — the JSON form of the CLI's "nothing to estimate".
func averageJSON(u *ndetect.CircuitUniverse, wc *ndetect.WorstCaseResult, req *AnalysisRequest, progress ndetect.Progress) (*report.Average, error) {
	avg := &report.Average{
		Definition:  req.Definition,
		SubsetAbove: req.NMax + 1,
		Thresholds:  []report.ThresholdPoint{},
		P:           []report.FaultP{},
	}
	idx := capEvenly(wc.IndicesAtLeast(req.NMax+1), wc.NMin, req.Ge11Limit)
	avg.Faults = len(idx)
	if len(idx) == 0 {
		return avg, nil
	}

	sub := u.SubsetUntargeted(idx)
	opts := ndetect.Procedure1Options{
		NMax:    req.NMax,
		K:       req.K,
		Seed:    req.Seed,
		Workers: req.Workers,
		Progress: func(done, total int) {
			progress("procedure1", done, total)
		},
	}
	if req.Definition == int(ndetect.Def2) {
		opts.Definition = ndetect.Def2
		opts.Checker = ndetect.NewCircuitCheckerFor(u)
	}
	res, err := ndetect.Procedure1(sub, opts)
	if err != nil {
		return nil, err
	}

	counts := res.ThresholdCounts(req.NMax)
	for i, th := range report.Thresholds {
		avg.Thresholds = append(avg.Thresholds, report.ThresholdPoint{P: th, Count: counts[i]})
	}
	minP, at := res.MinP(req.NMax)
	avg.MinP = minP
	avg.MinPFault = sub.Untargeted[at].Name
	avg.ExpectedEscapes = res.ExpectedEscapes(req.NMax)
	avg.MeanSetSize = res.MeanSetSize(req.NMax)
	for j, g := range sub.Untargeted {
		avg.P = append(avg.P, report.FaultP{Name: g.Name, P: res.P(req.NMax, j)})
	}
	return avg, nil
}

func partitionedJSON(res *partition.AnalysisResult) *report.Partitioned {
	out := &report.Partitioned{
		MaxInputs:    res.MaxInputs,
		Parts:        make([]report.PartInfo, len(res.Parts)),
		MergedFaults: len(res.Merged),
		Coverage:     coveragePoints(res.MergedCoverageAt),
		Tail:         tailPoints(res.MergedCountAtLeast, len(res.Merged)),
		Unbounded:    res.MergedCountAtLeast(ndetect.Unbounded),
		MaxFinite:    res.MergedMaxFinite(),
		Merged:       make([]report.FaultNMin, 0, len(res.Merged)),
	}
	for i, a := range res.Parts {
		out.Parts[i] = report.PartInfo{
			Outputs:           a.Part.Outputs,
			Inputs:            a.Stats.Inputs,
			VectorSpace:       a.Stats.VectorSpaceSize,
			Gates:             a.Stats.Gates,
			Targets:           a.Targets,
			DetectableTargets: a.DetectableTargets,
			Untargeted:        a.Untargeted,
			CoverageAt10Pct:   100 * a.CoverageAt(10),
		}
	}
	for _, name := range res.MergedNames() {
		out.Merged = append(out.Merged, report.FaultNMin{Name: name, NMin: jsonNMin(res.Merged[name])})
	}
	return out
}
