package exp

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"ndetect/internal/circuit"
	"ndetect/internal/fault"
	"ndetect/internal/ndetect"
	"ndetect/internal/report"
	"ndetect/internal/sim"
)

// The sweep engine (DESIGN.md §11).
//
// The paper itself is a sweep: both detection definitions and every
// n = 1..NMax are evaluated over the same exhaustive sets T(f), T(g) per
// circuit. Per-variant analysis recomputes that universe for every
// (NMax, K, Seed, Definition, Ge11Limit) point even though none of those
// options influence it. Sweep restores the paper's cost shape: one
// universe construction (or one artifact-store load) shared by all S
// variants, each variant's document still byte-identical to its cold
// one-shot run — the universe is a pure function of the circuit, so
// sharing the object is indistinguishable from rebuilding it.

// SweepOptions configures Sweep. Neither field is part of any variant's
// result identity.
type SweepOptions struct {
	// Workers is the §5 budget for the whole sweep: variants fan out
	// across min(Workers, variants) goroutines and the budget is split
	// between them, exactly the circuits-within-a-run rule (0 = one per
	// CPU, 1 = strictly serial).
	Workers int
	// Universes, when non-nil, backs the sweep's shared universe — pass
	// the artifact store to make the sweep warm-startable. Sweep layers
	// its own in-memory singleflight memo on top, so even a cold store
	// constructs the universe exactly once per circuit hash.
	Universes UniverseSource
}

// Sweep runs a grid of result-identity option variants over one circuit,
// constructing (or loading) the exhaustive universe exactly once and
// deriving every variant from the shared T-sets. Documents are returned
// in variant order, each byte-identical to AnalyzeCircuit on the same
// (circuit, variant) — at any worker count.
//
// Variants must be worst-case or average analyses: the partitioned
// pipeline builds per-part universes and has nothing to share here.
func Sweep(c *circuit.Circuit, variants []AnalysisRequest, opts SweepOptions) ([]*report.Analysis, error) {
	if len(variants) == 0 {
		return nil, fmt.Errorf("exp: empty sweep")
	}
	norm := make([]AnalysisRequest, len(variants))
	for i, v := range variants {
		v.Workers, v.Progress, v.Universes = 0, nil, nil
		if err := v.Normalize(); err != nil {
			return nil, fmt.Errorf("exp: sweep variant %d: %w", i, err)
		}
		if v.Kind == PartitionedAnalysis {
			return nil, fmt.Errorf("exp: sweep variant %d: partitioned analyses cannot share an exhaustive universe", i)
		}
		norm[i] = v
	}

	// Canonicalize once up front: AnalyzeCircuit's own canonicalization is
	// a fixed point on the result, so every variant sees this instance and
	// the universe memo keys one hash.
	c, err := circuit.Canonicalize(c)
	if err != nil {
		return nil, fmt.Errorf("exp: canonicalize: %w", err)
	}

	total := sim.ResolveWorkers(opts.Workers)
	shared := &universeMemo{next: opts.Universes, buildWorkers: total}
	outer := total
	if outer > len(norm) {
		outer = len(norm)
	}
	inner := 1
	if outer > 0 && total/outer > 1 {
		inner = total / outer
	}

	docs := make([]*report.Analysis, len(norm))
	errs := make([]error, len(norm))
	sim.ParallelFor(outer, len(norm), func(i int) {
		req := norm[i]
		req.Workers = inner
		req.Universes = shared
		docs[i], errs[i] = AnalyzeCircuit(c, req)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return docs, nil
}

// universeMemo is the sweep's shared universe: a per-hash singleflight
// memo over an optional underlying source (the artifact store). The first
// variant to need a circuit's universe resolves it — from next, or by
// construction — and every other variant reuses the same object. Memoized
// entries live as long as the sweep.
//
// Resolution runs with buildWorkers — the sweep's whole §5 budget, not
// the calling variant's split share: every variant blocks on the memo
// until the universe exists, so the budget has no other runnable work,
// and the sweep's dominant shared stage would otherwise run at 1/S of
// the machine. Worker counts never influence the universe built (§7).
type universeMemo struct {
	next         UniverseSource
	buildWorkers int

	mu      sync.Mutex
	flights map[string]*memoFlight
}

type memoFlight struct {
	done chan struct{}
	u    *ndetect.CircuitUniverse
	err  error
}

// Universe implements UniverseSource. Flights are keyed per (hash, model):
// a grid crossing fault models shares one universe per model.
func (m *universeMemo) Universe(c *circuit.Circuit, fm fault.Model, opts ndetect.AnalyzeOptions) (*ndetect.CircuitUniverse, error) {
	key := circuit.Hash(c) + "|" + fm.ID()
	m.mu.Lock()
	if m.flights == nil {
		m.flights = make(map[string]*memoFlight)
	}
	f, inFlight := m.flights[key]
	if !inFlight {
		f = &memoFlight{done: make(chan struct{})}
		m.flights[key] = f
	}
	m.mu.Unlock()
	if inFlight {
		<-f.done
		return f.u, f.err
	}
	if m.buildWorkers > 0 {
		opts.Workers = m.buildWorkers
	}
	if m.next != nil {
		f.u, f.err = m.next.Universe(c, fm, opts)
	} else {
		f.u, f.err = ndetect.BuildUniverse(c, fm, opts)
	}
	close(f.done)
	return f.u, f.err
}

// maxSweepVariants bounds a parsed grid: a sweep is a deliberate batch,
// not an accidental combinatorial explosion.
const maxSweepVariants = 4096

// ParseSweep parses a sweep grid specification into the variant list its
// cartesian product describes. The format is semicolon-separated
// `key=values` fields; values are comma-separated, and integer values may
// be `lo..hi` ranges (inclusive):
//
//	analysis=average;model=stuckat+bridge4,transition;nmax=10;seed=1..5
//
// Keys: analysis (worstcase | average; default average), model (registered
// fault-model IDs; default the default model), nmax, k, seed, def, ge11 —
// the result-identity options of DESIGN.md §7. Omitted keys take the usual
// defaults at Normalize time. Variants enumerate with the later keys of
// the fixed order analysis, model, nmax, k, seed, def, ge11 varying
// fastest, then normalize and de-duplicate (a worstcase variant ignores
// every numeric option, so a grid crossing `analysis=worstcase,average`
// with seeds collapses the worst-case side to one variant).
func ParseSweep(spec string) ([]AnalysisRequest, error) {
	kinds := []AnalysisKind{AverageAnalysis}
	models := []string{""}
	grid := map[string][]int64{}
	seen := map[string]bool{}
	for _, field := range strings.Split(spec, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, vals, ok := strings.Cut(field, "=")
		key = strings.TrimSpace(key)
		if !ok || vals == "" {
			return nil, fmt.Errorf("exp: sweep field %q: want key=values", field)
		}
		if seen[key] {
			return nil, fmt.Errorf("exp: sweep key %q repeated", key)
		}
		seen[key] = true
		if key == "analysis" {
			kinds = kinds[:0]
			for _, v := range strings.Split(vals, ",") {
				switch k := AnalysisKind(strings.TrimSpace(v)); k {
				case WorstCaseAnalysis, AverageAnalysis:
					kinds = append(kinds, k)
				default:
					return nil, fmt.Errorf("exp: sweep analysis %q (want worstcase or average)", v)
				}
			}
			continue
		}
		if key == "model" {
			models = models[:0]
			for _, v := range strings.Split(vals, ",") {
				id := strings.TrimSpace(v)
				if _, err := fault.Resolve(id); err != nil {
					return nil, fmt.Errorf("exp: sweep model %q (have %v)", id, fault.ModelIDs())
				}
				models = append(models, id)
			}
			continue
		}
		switch key {
		case "nmax", "k", "seed", "def", "ge11":
		default:
			return nil, fmt.Errorf("exp: unknown sweep key %q (want analysis, model, nmax, k, seed, def or ge11)", key)
		}
		ints, err := parseIntList(vals)
		if err != nil {
			return nil, fmt.Errorf("exp: sweep key %q: %w", key, err)
		}
		grid[key] = ints
	}
	if len(seen) == 0 {
		return nil, fmt.Errorf("exp: empty sweep spec")
	}

	// Enumerate the product in fixed key order, later keys fastest. The
	// grid map is only ever read by literal key through axis() — it is
	// never ranged — so variant order is a pure function of the spec
	// string and maporder has nothing to flag here.
	axis := func(key string) []int64 {
		if vs := grid[key]; len(vs) > 0 {
			return vs
		}
		return []int64{0} // 0 = "use the Normalize default"
	}
	// The cap bounds the raw product — i.e. the enumeration work itself —
	// not just the post-deduplication output: a grid of collapsing
	// variants (a worst-case axis crossed with huge numeric ranges) must
	// not spin through billions of normalizations to emit one.
	total := len(kinds) * len(models)
	if total > maxSweepVariants {
		return nil, fmt.Errorf("exp: sweep grid exceeds %d variants", maxSweepVariants)
	}
	for _, key := range []string{"nmax", "k", "seed", "def", "ge11"} {
		total *= len(axis(key)) // each factor ≤ maxSweepVariants: no overflow
		if total > maxSweepVariants {
			return nil, fmt.Errorf("exp: sweep grid exceeds %d variants", maxSweepVariants)
		}
	}
	var out []AnalysisRequest
	ids := map[identity]bool{}
	for _, kind := range kinds {
		for _, model := range models {
			for _, nmax := range axis("nmax") {
				for _, k := range axis("k") {
					for _, seed := range axis("seed") {
						for _, def := range axis("def") {
							for _, ge11 := range axis("ge11") {
								req := AnalysisRequest{
									Kind: kind, FaultModel: model,
									NMax: int(nmax), K: int(k), Seed: seed,
									Definition: int(def), Ge11Limit: int(ge11),
								}
								if err := req.Normalize(); err != nil {
									return nil, fmt.Errorf("exp: sweep variant %+v: %w", req, err)
								}
								id := identity{req.Kind, req.IdentityOptions()}
								if ids[id] {
									continue
								}
								ids[id] = true
								out = append(out, req)
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// identity is a variant's result identity, used to de-duplicate grids.
type identity struct {
	kind AnalysisKind
	opts report.Options
}

// parseIntList parses comma-separated integers and inclusive lo..hi
// ranges.
func parseIntList(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		lo, hi, isRange := strings.Cut(part, "..")
		a, err := strconv.ParseInt(strings.TrimSpace(lo), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		b := a
		if isRange {
			if b, err = strconv.ParseInt(strings.TrimSpace(hi), 10, 64); err != nil {
				return nil, fmt.Errorf("bad range %q", part)
			}
			if b < a {
				return nil, fmt.Errorf("descending range %q", part)
			}
		}
		// b ≥ a, so a true span beyond int64 shows up as a negative
		// difference — reject it with the same cap message.
		if span := b - a; span < 0 || span >= maxSweepVariants {
			return nil, fmt.Errorf("range %q exceeds %d values", part, maxSweepVariants)
		}
		// Count up from a by offset (a+i ≤ b never overflows); v++ on the
		// value itself would wrap past MaxInt64 endpoints.
		for i := int64(0); i <= b-a; i++ {
			out = append(out, a+i)
		}
	}
	return out, nil
}
