package testgen

import (
	"math/rand"
	"testing"

	"ndetect/internal/bench"
	"ndetect/internal/bitset"
	"ndetect/internal/circuit"
	"ndetect/internal/ndetect"
)

// mustBench synthesizes a small real benchmark for end-to-end tests.
func mustBench(t *testing.T) *circuit.Circuit {
	t.Helper()
	b, ok := bench.ByName("bbara")
	if !ok {
		t.Fatal("bbara missing")
	}
	r, err := b.SynthesizeDefault()
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	return r.Circuit
}

func randomUniverse(rng *rand.Rand, size, nTargets, nUntargeted int) *ndetect.Universe {
	mkSet := func(maxCard int) *bitset.Set {
		s := bitset.New(size)
		card := 1 + rng.Intn(maxCard)
		for i := 0; i < card; i++ {
			s.Add(rng.Intn(size))
		}
		return s
	}
	u := &ndetect.Universe{Size: size}
	for i := 0; i < nTargets; i++ {
		u.Targets = append(u.Targets, ndetect.Fault{Name: "f", T: mkSet(size / 2)})
	}
	for j := 0; j < nUntargeted; j++ {
		u.Untargeted = append(u.Untargeted, ndetect.Fault{Name: "g", T: mkSet(size / 4)})
	}
	return u
}

func TestGreedyProducesNDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		u := randomUniverse(rng, 64+rng.Intn(64), 10+rng.Intn(10), 0)
		for _, n := range []int{1, 2, 5, 10} {
			ts := Greedy(u, n)
			if !ts.IsNDetection(n, u.Targets) {
				t.Fatalf("trial %d: Greedy(%d) is not an %d-detection test set", trial, n, n)
			}
		}
	}
}

func TestCompactPreservesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		u := randomUniverse(rng, 128, 15, 0)
		n := 1 + rng.Intn(6)
		ts := Greedy(u, n)
		ct := Compact(ts, u, n)
		if !ct.IsNDetection(n, u.Targets) {
			t.Fatalf("trial %d: compaction broke the %d-detection property", trial, n)
		}
		if ct.Len() > ts.Len() {
			t.Fatalf("trial %d: compaction grew the set", trial)
		}
		// Compacted vectors are a subset.
		for _, v := range ct.Vectors() {
			if !ts.Contains(v) {
				t.Fatalf("trial %d: compaction invented vector %d", trial, v)
			}
		}
	}
}

func TestCompactOnPaddedSet(t *testing.T) {
	// A deliberately padded set compacts substantially.
	size := 64
	u := &ndetect.Universe{
		Size: size,
		Targets: []ndetect.Fault{
			{Name: "f1", T: bitset.FromMembers(size, 0, 1, 2, 3)},
			{Name: "f2", T: bitset.FromMembers(size, 0, 10)},
		},
	}
	ts := ndetect.NewTestSet(size)
	for _, v := range []int{0, 1, 2, 3, 10, 20, 30, 40, 50} {
		ts.Add(v)
	}
	ct := Compact(ts, u, 1)
	if !ct.IsNDetection(1, u.Targets) {
		t.Fatal("compacted set lost the property")
	}
	if ct.Len() > 2 {
		t.Fatalf("compacted size = %d, want ≤ 2 (vector 0 covers both)", ct.Len())
	}
}

func TestGreedySmallerThanRandom(t *testing.T) {
	// The whole point of a compact generator: materially smaller sets than
	// Procedure 1's random ones at the same n.
	u, err := ndetect.FromCircuit(mustBench(t))
	if err != nil {
		t.Fatalf("FromCircuit: %v", err)
	}
	const n = 5
	compact := GreedyCompact(&u.Universe, n)
	if !compact.IsNDetection(n, u.Targets) {
		t.Fatal("compact set is not n-detection")
	}
	res, err := ndetect.Procedure1(&u.Universe, ndetect.Procedure1Options{NMax: n, K: 20, Seed: 1})
	if err != nil {
		t.Fatalf("Procedure1: %v", err)
	}
	// On bbara the target requirements force most of U into any 5-detection
	// set, so the gap is small; compact must still not exceed the random
	// mean. (TestGreedyBeatsRandomOnRoomyCircuit asserts the big gap where
	// the vector space has room.)
	if float64(compact.Len()) > res.MeanSetSize(n) {
		t.Fatalf("compact size %d above random mean %.1f",
			compact.Len(), res.MeanSetSize(n))
	}
	if compact.Len() < LowerBound(&u.Universe, n) {
		t.Fatalf("compact size %d below the lower bound %d — bound or generator broken",
			compact.Len(), LowerBound(&u.Universe, n))
	}
}

func TestGrowthApproximatelyLinear(t *testing.T) {
	// The paper's premise: compact n-detection test set size grows roughly
	// linearly with n. Verify size(n) is monotone and size(10) stays well
	// under 10.5 × size(1) while exceeding 2 × size(1).
	u, err := ndetect.FromCircuit(mustBench(t))
	if err != nil {
		t.Fatalf("FromCircuit: %v", err)
	}
	sizes := make([]int, 0, 10)
	prev := 0
	for n := 1; n <= 10; n++ {
		ts := GreedyCompact(&u.Universe, n)
		if ts.Len() < prev {
			t.Fatalf("size shrank from %d to %d at n=%d", prev, ts.Len(), n)
		}
		prev = ts.Len()
		sizes = append(sizes, ts.Len())
	}
	if sizes[9] > sizes[0]*12 {
		t.Fatalf("growth superlinear: %v", sizes)
	}
	if sizes[9] < sizes[0]*2 {
		t.Fatalf("no growth with n: %v", sizes)
	}
	t.Logf("compact sizes n=1..10: %v", sizes)
}

func TestCoverageImprovesWithN(t *testing.T) {
	u, err := ndetect.FromCircuit(mustBench(t))
	if err != nil {
		t.Fatalf("FromCircuit: %v", err)
	}
	c1 := Coverage(GreedyCompact(&u.Universe, 1), u.Untargeted)
	c10 := Coverage(GreedyCompact(&u.Universe, 10), u.Untargeted)
	if c10 < c1 {
		t.Fatalf("bridging coverage fell from %d to %d as n rose", c1, c10)
	}
	if c1 == 0 {
		t.Fatal("1-detection compact set detects no bridges at all")
	}
}

func TestGreedyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	u := randomUniverse(rng, 128, 12, 0)
	a := Greedy(u, 4).Vectors()
	b := Greedy(u, 4).Vectors()
	if len(a) != len(b) {
		t.Fatal("nondeterministic size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic order")
		}
	}
}

func TestGreedyEmptyTargets(t *testing.T) {
	u := &ndetect.Universe{Size: 16}
	if ts := Greedy(u, 3); ts.Len() != 0 {
		t.Fatalf("empty universe produced %d vectors", ts.Len())
	}
}

func TestGreedyUndetectableTargets(t *testing.T) {
	u := &ndetect.Universe{
		Size: 16,
		Targets: []ndetect.Fault{
			{Name: "undet", T: bitset.New(16)},
			{Name: "ok", T: bitset.FromMembers(16, 7)},
		},
	}
	ts := Greedy(u, 3)
	if !ts.Contains(7) || ts.Len() != 1 {
		t.Fatalf("Greedy = %v, want just {7}", ts.Vectors())
	}
}

func TestLowerBoundSanity(t *testing.T) {
	size := 32
	u := &ndetect.Universe{
		Size: size,
		Targets: []ndetect.Fault{
			{Name: "a", T: bitset.FromMembers(size, 1, 2, 3, 4, 5, 6)},
		},
	}
	if lb := LowerBound(u, 4); lb != 4 {
		t.Fatalf("LowerBound = %d, want 4 (single fault needs 4 detections)", lb)
	}
	ts := Greedy(u, 4)
	if ts.Len() != 4 {
		t.Fatalf("Greedy size = %d, want exactly the bound 4", ts.Len())
	}
}

func TestGreedyNeverWorseThanRandomOnRoomyCircuit(t *testing.T) {
	// keyb's 12-input space (|U| = 4096). Set sizes here are dominated by
	// per-fault requirements (many faults have few tests), so the gap to
	// random is modest — the invariant is that the compact set is never
	// larger, with the actual ratio logged for the record.
	if testing.Short() {
		t.Skip("short mode")
	}
	b, _ := bench.ByName("keyb")
	r, err := b.SynthesizeDefault()
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	u, err := ndetect.FromCircuit(r.Circuit)
	if err != nil {
		t.Fatalf("FromCircuit: %v", err)
	}
	const n = 3
	compact := GreedyCompact(&u.Universe, n)
	if !compact.IsNDetection(n, u.Targets) {
		t.Fatal("compact set is not n-detection")
	}
	res, err := ndetect.Procedure1(&u.Universe, ndetect.Procedure1Options{NMax: n, K: 5, Seed: 1})
	if err != nil {
		t.Fatalf("Procedure1: %v", err)
	}
	if float64(compact.Len()) > res.MeanSetSize(n) {
		t.Fatalf("compact size %d above random mean %.1f",
			compact.Len(), res.MeanSetSize(n))
	}
	t.Logf("keyb n=%d: compact %d vs random mean %.1f", n, compact.Len(), res.MeanSetSize(n))
}
