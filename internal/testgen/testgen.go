// Package testgen generates compact n-detection test sets, the
// deterministic counterpart of Procedure 1's random ones.
//
// The paper's premise is that "the size of a compact n-detection test set
// increases approximately linearly with n", which is what makes large n
// impractical; Procedure 1 deliberately builds arbitrary (random) sets to
// study the behaviour of any test generator. This package supplies the
// compact generator itself: a greedy set-cover construction over the
// exhaustive detection sets, followed by reverse-order compaction. The
// pairing lets the library both reproduce the paper's analysis and produce
// the artifacts the analysis is about.
package testgen

import (
	"ndetect/internal/ndetect"
)

// Greedy builds an n-detection test set by repeatedly adding the input
// vector that reduces the largest total detection deficit. The deficit of a
// target fault f is max(0, min(n, N(f)) − detections so far); the score of
// a vector is the number of faults it moves toward their requirement.
// Ties break toward the smallest vector, making the result deterministic.
//
// The resulting set satisfies TestSet.IsNDetection(n, targets) by
// construction: the loop only stops when every deficit is zero, and a
// vector with positive score always exists while any deficit is positive.
func Greedy(u *ndetect.Universe, n int) *ndetect.TestSet {
	ts := ndetect.NewTestSet(u.Size)

	need := make([]int, len(u.Targets))
	remaining := 0
	for i, f := range u.Targets {
		need[i] = min(n, f.N())
		remaining += need[i]
	}
	if remaining == 0 {
		return ts
	}

	// Reverse index: vector → target faults detecting it.
	fAt := make([][]int32, u.Size)
	for i, f := range u.Targets {
		f.T.ForEach(func(v int) {
			fAt[v] = append(fAt[v], int32(i))
		})
	}

	// score[v] = number of faults with need > 0 detected by v.
	score := make([]int, u.Size)
	for v := range score {
		for _, fi := range fAt[v] {
			if need[fi] > 0 {
				score[v]++
			}
		}
	}

	for remaining > 0 {
		best, bestScore := -1, 0
		for v, s := range score {
			if !ts.Contains(v) && s > bestScore {
				best, bestScore = v, s
			}
		}
		if best < 0 {
			// Cannot happen for a consistent universe: a positive deficit
			// implies some fault has an unused test vector.
			break
		}
		ts.Add(best)
		for _, fi := range fAt[best] {
			if need[fi] == 0 {
				continue
			}
			need[fi]--
			remaining--
			if need[fi] == 0 {
				// The fault is satisfied; its other vectors stop scoring.
				u.Targets[fi].T.ForEach(func(v int) {
					score[v]--
				})
			}
		}
	}
	return ts
}

// Compact drops vectors from the set (newest first) while the n-detection
// property holds, returning a new, usually smaller set. Reverse order works
// well on greedy output because the last picks patched the smallest
// deficits and are the most likely to be redundant once earlier vectors
// double-cover them.
func Compact(ts *ndetect.TestSet, u *ndetect.Universe, n int) *ndetect.TestSet {
	vectors := append([]int(nil), ts.Vectors()...)
	keep := make([]bool, len(vectors))
	for i := range keep {
		keep[i] = true
	}

	// Detection counts with everything kept.
	det := make([]int, len(u.Targets))
	for i, f := range u.Targets {
		det[i] = ts.Detections(f)
	}
	needOf := func(fi int) int { return min(n, u.Targets[fi].N()) }

	fAt := make([][]int32, u.Size)
	for i, f := range u.Targets {
		f.T.ForEach(func(v int) {
			fAt[v] = append(fAt[v], int32(i))
		})
	}

	for i := len(vectors) - 1; i >= 0; i-- {
		v := vectors[i]
		removable := true
		for _, fi := range fAt[v] {
			if det[fi]-1 < needOf(int(fi)) {
				removable = false
				break
			}
		}
		if removable {
			keep[i] = false
			for _, fi := range fAt[v] {
				det[fi]--
			}
		}
	}

	out := ndetect.NewTestSet(u.Size)
	for i, v := range vectors {
		if keep[i] {
			out.Add(v)
		}
	}
	return out
}

// GreedyCompact is Greedy followed by Compact.
func GreedyCompact(u *ndetect.Universe, n int) *ndetect.TestSet {
	return Compact(Greedy(u, n), u, n)
}

// Coverage reports how many of the given untargeted faults the test set
// detects.
func Coverage(ts *ndetect.TestSet, untargeted []ndetect.Fault) int {
	c := 0
	for _, g := range untargeted {
		if ts.Detects(g) {
			c++
		}
	}
	return c
}

// LowerBound computes a simple lower bound on the size of any n-detection
// test set: the largest total requirement of any single vector... more
// usefully, the bound max over f of min(n, N(f)) · |F'| / |U| is weak, so
// we use the independent-fault bound: the maximum, over faults f, of
// min(n, N(f)) — every n-detection test set must contain that many vectors
// just for f — combined with a counting bound Σ min(n,N(f)) / maxScore,
// where maxScore is the most faults any single vector detects.
func LowerBound(u *ndetect.Universe, n int) int {
	best := 0
	total := 0
	perVector := make([]int, u.Size)
	for _, f := range u.Targets {
		r := min(n, f.N())
		total += r
		if r > best {
			best = r
		}
		f.T.ForEach(func(v int) {
			perVector[v]++
		})
	}
	maxScore := 1
	for _, s := range perVector {
		if s > maxScore {
			maxScore = s
		}
	}
	if counting := (total + maxScore - 1) / maxScore; counting > best {
		best = counting
	}
	return best
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
