package ndetect

// This file holds the summary layer over Procedure1's raw detection counts:
// the quantities tabulated in the paper's Tables 5 and 6.

// Thresholds is the probability ladder of Tables 5 and 6: the tables report
// how many faults have p(10,g) ≥ each value.
var Thresholds = []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.0}

// SubsetUntargeted returns a copy of the universe keeping only the
// untargeted faults at the given indices (same targets, same vector space).
// The paper's average-case tables consider only the faults with
// nmin(g) ≥ 11; this is how that restriction is expressed.
func (u *Universe) SubsetUntargeted(indices []int) *Universe {
	s := &Universe{
		Size:       u.Size,
		Targets:    u.Targets,
		Untargeted: make([]Fault, len(indices)),
	}
	for i, j := range indices {
		s.Untargeted[i] = u.Untargeted[j]
	}
	return s
}

// ThresholdCounts returns, for iteration n, the number of untargeted faults
// with p(n,g) ≥ each of Thresholds — one row of Table 5.
func (r *Procedure1Result) ThresholdCounts(n int) []int {
	out := make([]int, len(Thresholds))
	for j := range r.Detected[n-1] {
		p := r.P(n, j)
		for ti, th := range Thresholds {
			if p >= th-1e-12 {
				out[ti]++
			}
		}
	}
	return out
}

// MinP returns the smallest p(n,g) over the untargeted faults, with its
// fault index (the paper quotes these minima in the Table 5 discussion).
func (r *Procedure1Result) MinP(n int) (p float64, index int) {
	p, index = 2, -1
	for j := range r.Detected[n-1] {
		if v := r.P(n, j); v < p {
			p, index = v, j
		}
	}
	if index == -1 {
		return 0, -1
	}
	return p, index
}

// EscapeProbability returns 1 − p(n,g_j): the probability that fault j
// escapes an arbitrary n-detection test set (the paper's closing
// observation on how to use the tables).
func (r *Procedure1Result) EscapeProbability(n, j int) float64 {
	return 1 - r.P(n, j)
}

// ExpectedEscapes returns the expected number of the analysed untargeted
// faults left undetected by an arbitrary n-detection test set: Σ_j (1 −
// p(n,g_j)).
func (r *Procedure1Result) ExpectedEscapes(n int) float64 {
	s := 0.0
	for j := range r.Detected[n-1] {
		s += 1 - r.P(n, j)
	}
	return s
}

// MeanSetSize returns the average size of the K n-detection test sets. The
// paper notes size grows approximately linearly with n; the bench
// BenchmarkSetSizeGrowth records this.
func (r *Procedure1Result) MeanSetSize(n int) float64 {
	return float64(r.SetSizeSum[n-1]) / float64(r.K)
}
