package ndetect

import (
	"math/rand"
	"testing"

	"ndetect/internal/bitset"
)

// TestProcedure1NDetectionInvariant: after iteration n, every test set
// detects every target fault min(n, N(f)) times (the defining property of
// Procedure 1 under Definition 1).
func TestProcedure1NDetectionInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		u := randomUniverse(rng, 64+rng.Intn(128), 12, 4)
		res, err := Procedure1(u, Procedure1Options{NMax: 6, K: 25, Seed: int64(trial), KeepTestSets: true})
		if err != nil {
			t.Fatalf("Procedure1: %v", err)
		}
		for n := 1; n <= 6; n++ {
			for k, tk := range res.TestSets[n-1] {
				if !tk.IsNDetection(n, u.Targets) {
					t.Fatalf("trial %d: T%d after iteration %d is not an %d-detection test set", trial, k, n, n)
				}
			}
		}
	}
}

// TestProcedure1Deterministic: same seed → identical results regardless of
// worker count.
func TestProcedure1Deterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	u := randomUniverse(rng, 128, 15, 6)
	run := func(workers int) *Procedure1Result {
		res, err := Procedure1(u, Procedure1Options{NMax: 5, K: 40, Seed: 77, Workers: workers, KeepTestSets: true})
		if err != nil {
			t.Fatalf("Procedure1: %v", err)
		}
		return res
	}
	a, b := run(1), run(8)
	for n := 0; n < 5; n++ {
		for j := range a.Detected[n] {
			if a.Detected[n][j] != b.Detected[n][j] {
				t.Fatalf("Detected[%d][%d]: %d vs %d", n, j, a.Detected[n][j], b.Detected[n][j])
			}
		}
		if a.SetSizeSum[n] != b.SetSizeSum[n] {
			t.Fatalf("SetSizeSum[%d]: %d vs %d", n, a.SetSizeSum[n], b.SetSizeSum[n])
		}
		for k := range a.TestSets[n] {
			va, vb := a.TestSets[n][k].Vectors(), b.TestSets[n][k].Vectors()
			if len(va) != len(vb) {
				t.Fatalf("test set %d at n=%d: %d vs %d tests", k, n+1, len(va), len(vb))
			}
			for i := range va {
				if va[i] != vb[i] {
					t.Fatalf("test set %d differs at position %d", k, i)
				}
			}
		}
	}
}

// TestProcedure1Monotone: d(n,g) is non-decreasing in n — test sets only
// grow across iterations.
func TestProcedure1Monotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	u := randomUniverse(rng, 256, 20, 10)
	res, err := Procedure1(u, Procedure1Options{NMax: 8, K: 50, Seed: 5})
	if err != nil {
		t.Fatalf("Procedure1: %v", err)
	}
	for n := 1; n < 8; n++ {
		for j := range res.Detected[n] {
			if res.Detected[n][j] < res.Detected[n-1][j] {
				t.Fatalf("d(%d,g%d)=%d < d(%d,g%d)=%d", n+1, j, res.Detected[n][j], n, j, res.Detected[n-1][j])
			}
		}
		if res.SetSizeSum[n] < res.SetSizeSum[n-1] {
			t.Fatal("test set sizes shrank")
		}
	}
}

// TestProcedure1GrowthRoughlyLinear: the paper's observation motivating the
// analysis — "the size of a compact n-detection test set increases
// approximately linearly with n". Random sets are not compact but still must
// grow superlinearly-bounded; we assert growth is at least monotone and that
// the increment from n=1 to nmax is substantial.
func TestProcedure1SetSizesGrow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	u := randomUniverse(rng, 512, 30, 5)
	res, err := Procedure1(u, Procedure1Options{NMax: 10, K: 20, Seed: 9})
	if err != nil {
		t.Fatalf("Procedure1: %v", err)
	}
	if res.MeanSetSize(10) <= res.MeanSetSize(1) {
		t.Fatalf("mean size at n=10 (%v) not larger than at n=1 (%v)",
			res.MeanSetSize(10), res.MeanSetSize(1))
	}
}

// TestProcedure1ExhaustsSmallFaults: a fault with N(f) < n ends up with its
// entire T(f) in the test set.
func TestProcedure1ExhaustsSmallFaults(t *testing.T) {
	size := 32
	u := &Universe{
		Size: size,
		Targets: []Fault{
			{Name: "tiny", T: bitset.FromMembers(size, 3, 17)},
			{Name: "big", T: bitset.FromMembers(size, 0, 1, 2, 4, 5, 6, 7, 8, 9, 10)},
		},
		Untargeted: []Fault{{Name: "g", T: bitset.FromMembers(size, 17)}},
	}
	res, err := Procedure1(u, Procedure1Options{NMax: 5, K: 10, Seed: 1, KeepTestSets: true})
	if err != nil {
		t.Fatalf("Procedure1: %v", err)
	}
	for _, tk := range res.TestSets[4] {
		if !tk.Contains(3) || !tk.Contains(17) {
			t.Fatal("T(tiny) not fully included at n=5 > N(tiny)=2")
		}
	}
	// g with T(g)={17} ⊂ T(tiny) must be detected by every 2-detection set
	// (nmin(g) = 2-1+1 = 2).
	if res.Detected[1][0] != res.K {
		t.Fatalf("d(2,g) = %d, want K=%d", res.Detected[1][0], res.K)
	}
}

// TestProcedure1UndetectableTargetIgnored: targets with empty T-sets are
// skipped gracefully.
func TestProcedure1UndetectableTargetIgnored(t *testing.T) {
	size := 16
	u := &Universe{
		Size: size,
		Targets: []Fault{
			{Name: "undet", T: bitset.New(size)},
			{Name: "ok", T: bitset.FromMembers(size, 1, 2)},
		},
		Untargeted: []Fault{{Name: "g", T: bitset.FromMembers(size, 2)}},
	}
	res, err := Procedure1(u, Procedure1Options{NMax: 3, K: 5, Seed: 2, KeepTestSets: true})
	if err != nil {
		t.Fatalf("Procedure1: %v", err)
	}
	for _, tk := range res.TestSets[2] {
		if tk.Len() != 2 {
			t.Fatalf("test set has %d vectors, want 2 (T(ok) exhausted)", tk.Len())
		}
	}
}

func TestProcedure1OptionValidation(t *testing.T) {
	u := &Universe{Size: 4, Targets: []Fault{{Name: "f", T: bitset.FromMembers(4, 0)}}}
	if _, err := Procedure1(u, Procedure1Options{Definition: Def2}); err == nil {
		t.Fatal("Def2 without checker accepted")
	}
	if _, err := Procedure1(u, Procedure1Options{Definition: 3}); err == nil {
		t.Fatal("unknown definition accepted")
	}
	// Universe mismatch.
	bad := &Universe{Size: 4, Targets: []Fault{{Name: "f", T: bitset.FromMembers(8, 0)}}}
	if _, err := Procedure1(bad, Procedure1Options{}); err == nil {
		t.Fatal("invalid universe accepted")
	}
}

func TestPickRandomOutsideUniform(t *testing.T) {
	size := 64
	tset := bitset.FromMembers(size, 1, 5, 9, 13)
	tk := NewTestSet(size)
	tk.Add(5)
	rng := rand.New(rand.NewSource(0))
	counts := map[int]int{}
	for i := 0; i < 3000; i++ {
		v, ok := pickRandomOutside(tset, tk, rng)
		if !ok {
			t.Fatal("pick failed")
		}
		if v == 5 {
			t.Fatal("picked a vector already in Tk")
		}
		counts[v]++
	}
	if len(counts) != 3 {
		t.Fatalf("support = %v, want {1,9,13}", counts)
	}
	for v, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("count[%d] = %d, not near uniform 1000", v, c)
		}
	}
	// Exhausted difference.
	tk.Add(1)
	tk.Add(9)
	tk.Add(13)
	if _, ok := pickRandomOutside(tset, tk, rng); ok {
		t.Fatal("pick succeeded on empty difference")
	}
}

func TestThresholdCountsAndSummaries(t *testing.T) {
	// Construct a result by hand: K=10, two faults with d = 10 and 4.
	r := &Procedure1Result{NMax: 1, K: 10, Detected: [][]int{{10, 4}}, SetSizeSum: []int64{50}}
	counts := r.ThresholdCounts(1)
	// p values: 1.0 and 0.4.
	// thresholds:    1.0 0.9 0.8 0.7 0.6 0.5 0.4 0.3 0.2 0.1 0.0
	want := []int{1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("ThresholdCounts = %v, want %v", counts, want)
		}
	}
	p, j := r.MinP(1)
	if j != 1 || p != 0.4 {
		t.Fatalf("MinP = %v,%d", p, j)
	}
	if got := r.EscapeProbability(1, 1); got != 0.6 {
		t.Fatalf("EscapeProbability = %v", got)
	}
	if got := r.ExpectedEscapes(1); got != 0.6 {
		t.Fatalf("ExpectedEscapes = %v", got)
	}
	if got := r.MeanSetSize(1); got != 5 {
		t.Fatalf("MeanSetSize = %v", got)
	}
}

func TestSubsetUntargeted(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	u := randomUniverse(rng, 64, 5, 10)
	s := u.SubsetUntargeted([]int{2, 7})
	if len(s.Untargeted) != 2 {
		t.Fatalf("subset size = %d", len(s.Untargeted))
	}
	if !s.Untargeted[0].T.Equal(u.Untargeted[2].T) || !s.Untargeted[1].T.Equal(u.Untargeted[7].T) {
		t.Fatal("subset picked wrong faults")
	}
	if s.Size != u.Size || len(s.Targets) != len(u.Targets) {
		t.Fatal("subset changed universe shape")
	}
}

func TestMixSpreads(t *testing.T) {
	seen := map[int64]bool{}
	for k := int64(0); k < 1000; k++ {
		v := mix(42, k)
		if seen[v] {
			t.Fatalf("mix collision at k=%d", k)
		}
		seen[v] = true
	}
}
