package ndetect

import (
	"math/rand"
	"testing"

	"ndetect/internal/bitset"
)

// table1Universe reproduces the paper's example exactly: the published
// T-sets of the faults in F(g0) for the Figure 1 circuit, and
// T(g0) = {6,7}. Every number asserted in TestTable1 is printed in the
// paper's Table 1.
func table1Universe() (*Universe, Fault) {
	const size = 16
	mk := func(members ...int) *bitset.Set { return bitset.FromMembers(size, members...) }
	targets := []Fault{
		{Name: "1/1", T: mk(4, 5, 6, 7)},
		{Name: "2/0", T: mk(6, 7, 12, 13, 14, 15)},
		{Name: "3/0", T: mk(2, 6, 7, 10, 14, 15)},
		{Name: "8/0", T: mk(2, 6, 10, 14)},
		{Name: "9/1", T: mk(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11)},
		{Name: "10/0", T: mk(6, 7, 14, 15)},
		{Name: "11/0", T: mk(1, 2, 3, 5, 6, 7, 9, 10, 11, 13, 14, 15)},
	}
	g0 := Fault{Name: "(9,0,10,1)", T: mk(6, 7)}
	u := &Universe{Size: size, Targets: targets, Untargeted: []Fault{g0}}
	return u, g0
}

func TestTable1(t *testing.T) {
	u, g0 := table1Universe()
	want := map[string]int{
		"1/1": 3, "2/0": 5, "3/0": 5, "8/0": 4, "9/1": 11, "10/0": 3, "11/0": 11,
	}
	contribs := ContributingFaults(g0, u.Targets)
	if len(contribs) != len(want) {
		t.Fatalf("F(g0) has %d faults, want %d", len(contribs), len(want))
	}
	for _, pc := range contribs {
		if want[pc.Name] != pc.NMin {
			t.Errorf("nmin(g0, %s) = %d, want %d", pc.Name, pc.NMin, want[pc.Name])
		}
	}
	if got := NMin(g0, u.Targets); got != 3 {
		t.Fatalf("nmin(g0) = %d, want 3 (paper Table 1)", got)
	}
	wc := WorstCase(u)
	if wc.NMin[0] != 3 {
		t.Fatalf("WorstCase nmin = %d, want 3", wc.NMin[0])
	}
}

func TestNMinPairFormula(t *testing.T) {
	size := 32
	f := Fault{Name: "f", T: bitset.FromMembers(size, 1, 2, 3, 4, 5)}
	g := Fault{Name: "g", T: bitset.FromMembers(size, 4, 5, 6)}
	// N(f)=5, M=2 → nmin = 5-2+1 = 4.
	if got := NMinPair(g, f); got != 4 {
		t.Fatalf("NMinPair = %d, want 4", got)
	}
	// Disjoint → Unbounded.
	h := Fault{Name: "h", T: bitset.FromMembers(size, 30, 31)}
	if got := NMinPair(h, f); got != Unbounded {
		t.Fatalf("NMinPair disjoint = %d, want Unbounded", got)
	}
	// T(f) ⊆ T(g) → nmin = 1 (any detection of f detects g).
	sup := Fault{Name: "sup", T: bitset.FromMembers(size, 1, 2, 3, 4, 5, 6)}
	if got := NMinPair(sup, f); got != 1 {
		t.Fatalf("NMinPair superset = %d, want 1", got)
	}
}

func TestNMinUnboundedWhenNoOverlap(t *testing.T) {
	size := 16
	u := &Universe{
		Size:       size,
		Targets:    []Fault{{Name: "f", T: bitset.FromMembers(size, 0, 1)}},
		Untargeted: []Fault{{Name: "g", T: bitset.FromMembers(size, 15)}},
	}
	wc := WorstCase(u)
	if wc.NMin[0] != Unbounded {
		t.Fatalf("nmin = %d, want Unbounded", wc.NMin[0])
	}
	if wc.CoverageAt(1000000) != 0 {
		t.Fatal("unbounded fault counted as covered")
	}
	if wc.CountAtLeast(100) != 1 {
		t.Fatal("unbounded fault missing from CountAtLeast")
	}
}

func randomUniverse(rng *rand.Rand, size, nTargets, nUntargeted int) *Universe {
	mkSet := func(maxCard int) *bitset.Set {
		s := bitset.New(size)
		card := 1 + rng.Intn(maxCard)
		for i := 0; i < card; i++ {
			s.Add(rng.Intn(size))
		}
		return s
	}
	u := &Universe{Size: size}
	for i := 0; i < nTargets; i++ {
		u.Targets = append(u.Targets, Fault{Name: "f" + string(rune('0'+i%10)), T: mkSet(size / 2)})
	}
	for j := 0; j < nUntargeted; j++ {
		u.Untargeted = append(u.Untargeted, Fault{Name: "g" + string(rune('0'+j%10)), T: mkSet(size / 4)})
	}
	return u
}

// TestWorstCaseGuarantee verifies the central theorem of Section 2 on random
// universes: every n-detection test set with n ≥ nmin(g) detects g. The test
// sets are produced by Procedure 1, which generates arbitrary (random)
// n-detection test sets.
func TestWorstCaseGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		u := randomUniverse(rng, 64+rng.Intn(64), 8+rng.Intn(8), 6)
		wc := WorstCase(u)
		maxFinite := wc.MaxFinite()
		if maxFinite == 0 {
			continue
		}
		nmax := maxFinite
		if nmax > 40 {
			nmax = 40
		}
		res, err := Procedure1(u, Procedure1Options{
			NMax: nmax, K: 30, Seed: int64(trial), KeepTestSets: true,
		})
		if err != nil {
			t.Fatalf("Procedure1: %v", err)
		}
		for j, g := range u.Untargeted {
			nm := wc.NMin[j]
			if nm == Unbounded || nm > nmax {
				continue
			}
			for n := nm; n <= nmax; n++ {
				for k, tk := range res.TestSets[n-1] {
					if !tk.Detects(g) {
						t.Fatalf("trial %d: %d-detection set %d misses %s with nmin=%d",
							trial, n, k, g.Name, nm)
					}
				}
			}
		}
	}
}

// TestWorstCaseTightness verifies the bound is exact: U − T(g) is an
// (nmin(g)−1)-detection test set that misses g.
func TestWorstCaseTightness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		u := randomUniverse(rng, 64, 10, 8)
		wc := WorstCase(u)
		for j, g := range u.Untargeted {
			nm := wc.NMin[j]
			if nm == Unbounded || nm <= 1 {
				continue
			}
			w := TightnessWitness(u, j)
			ts := NewTestSet(u.Size)
			w.ForEach(func(v int) { ts.Add(v) })
			if ts.Detects(g) {
				t.Fatalf("witness detects %s", g.Name)
			}
			if !ts.IsNDetection(nm-1, u.Targets) {
				t.Fatalf("witness for %s is not an (nmin-1)=%d-detection test set", g.Name, nm-1)
			}
		}
	}
}

func TestCoverageAndCounts(t *testing.T) {
	u := &Universe{Size: 8}
	u.Targets = []Fault{{Name: "f", T: bitset.FromMembers(8, 0, 1, 2, 3)}}
	u.Untargeted = []Fault{
		{Name: "a", T: bitset.FromMembers(8, 0, 1, 2, 3)}, // nmin 1
		{Name: "b", T: bitset.FromMembers(8, 3)},          // nmin 4
		{Name: "c", T: bitset.FromMembers(8, 7)},          // unbounded
	}
	wc := WorstCase(u)
	if wc.NMin[0] != 1 || wc.NMin[1] != 4 || wc.NMin[2] != Unbounded {
		t.Fatalf("NMin = %v", wc.NMin)
	}
	if got := wc.CoverageAt(1); got != 1.0/3 {
		t.Fatalf("CoverageAt(1) = %v", got)
	}
	if got := wc.CoverageAt(4); got != 2.0/3 {
		t.Fatalf("CoverageAt(4) = %v", got)
	}
	if got := wc.CountAtLeast(2); got != 2 {
		t.Fatalf("CountAtLeast(2) = %v", got)
	}
	if got := wc.IndicesAtLeast(4); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("IndicesAtLeast(4) = %v", got)
	}
	if got := wc.MaxFinite(); got != 4 {
		t.Fatalf("MaxFinite = %v", got)
	}
	vals, counts := wc.Histogram(1)
	if len(vals) != 2 || vals[0] != 1 || vals[1] != 4 || counts[0] != 1 || counts[1] != 1 {
		t.Fatalf("Histogram = %v %v", vals, counts)
	}
}

// TestWorstCaseWorkersDeterministic pins the §5 invariant for the
// worst-case stage: the Workers knob changes wall-clock time only, and
// workers=1 is the exact serial path (no hidden GOMAXPROCS fan-out).
func TestWorstCaseWorkersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 5; trial++ {
		u := randomUniverse(rng, 128, 12, 30)
		want := WorstCaseWorkers(u, 1)
		for _, workers := range []int{2, 8, 0} {
			got := WorstCaseWorkers(u, workers)
			for j := range want.NMin {
				if got.NMin[j] != want.NMin[j] {
					t.Fatalf("trial %d workers=%d: nmin[%d] = %d, want %d",
						trial, workers, j, got.NMin[j], want.NMin[j])
				}
			}
		}
	}
}

func TestEmptyUntargetedCoverage(t *testing.T) {
	wc := WorstCase(&Universe{Size: 4, Targets: []Fault{{Name: "f", T: bitset.FromMembers(4, 0)}}})
	if wc.CoverageAt(1) != 1 {
		t.Fatal("vacuous coverage should be 1")
	}
}
