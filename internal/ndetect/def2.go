package ndetect

import (
	"math/rand"
	"sync"

	"ndetect/internal/circuit"
	"ndetect/internal/fault"
	"ndetect/internal/sim"
)

// def2State tracks, per target fault, a greedily maintained set of tests
// counted as distinct detections under Definition 2.
//
// Maintenance is lazy and capped: the distinct set of a fault is only grown
// when the fault is examined and found short of the needed count, by
// processing the test set's vectors in insertion order from a per-fault
// cursor. A test joins the set if it detects the fault and is pairwise
// distinct from every test already counted. Because tests are processed in
// the same (insertion) order regardless of when the cursor advances, the
// lazy evaluation reaches the same decisions as an eager one, while faults
// that already satisfy the current n perform no similarity checks at all —
// the difference between hours and seconds at paper-scale K.
type def2State struct {
	checker  DistinctChecker
	distinct [][]int // per target fault: tests counted as distinct detections
	cursor   []int   // per target fault: vectors of Tk processed so far
}

func newDef2State(numTargets int, checker DistinctChecker) *def2State {
	return &def2State{
		checker:  checker,
		distinct: make([][]int, numTargets),
		cursor:   make([]int, numTargets),
	}
}

// countUpTo advances fault i's cursor until its distinct set reaches `need`
// members or the test set is exhausted, and returns the (possibly capped)
// count.
func (s *def2State) countUpTo(i, need int, f *Fault, tk *TestSet) int {
	d := s.distinct[i]
	vectors := tk.Vectors()
	for s.cursor[i] < len(vectors) && len(d) < need {
		v := vectors[s.cursor[i]]
		s.cursor[i]++
		if !f.T.Contains(v) {
			continue
		}
		if s.isDistinct(i, v, d) {
			d = append(d, v)
		}
	}
	s.distinct[i] = d
	return len(d)
}

// batchChecker is the optional fast path: decide v-vs-all-of-ds in one
// call. CircuitChecker implements it with dual-rail bit-parallel 3-valued
// simulation (one circuit pass for up to 64 pairs).
type batchChecker interface {
	DistinctAll(faultIndex, v int, ds []int) bool
}

func (s *def2State) isDistinct(i, v int, d []int) bool {
	if len(d) == 0 {
		return true
	}
	if bc, ok := s.checker.(batchChecker); ok {
		return bc.DistinctAll(i, v, d)
	}
	for _, m := range d {
		if !s.checker.Distinct(i, v, m) {
			return false
		}
	}
	return true
}

// pickScanCap bounds how many randomly drawn candidates pickDistinct
// examines before concluding the fault has no usable distinct test and
// letting the Definition 1 fallback take over. Scanning a random
// permutation and returning the first qualifying test is uniform over the
// qualifying set; the cap turns the exhaustive scan into statistical
// sampling, which only matters for faults whose qualifying fraction is
// below ~1/cap — exactly the faults the paper's fallback is for. Without
// the cap, saturated faults with thousands of remaining tests would pay
// |T(f)| × |distinct set| 3-valued simulations per iteration.
const pickScanCap = 96

// pickChecker is the optional transposed fast path: find the first
// candidate pairwise distinct from every counted detection, eliminating
// candidates member-by-member with batched simulations.
type pickChecker interface {
	FirstDistinct(faultIndex int, cands []int, ds []int) int
}

// pickDistinct draws a random member of {t ∈ T(f) − Tk : t is pairwise
// distinct from every counted detection} (see pickScanCap for the sampling
// bound).
func (s *def2State) pickDistinct(i int, f *Fault, tk *TestSet, rng *rand.Rand) (int, bool) {
	diff := f.T.Difference(tk.Set())
	cands := diff.Members()
	rng.Shuffle(len(cands), func(a, b int) { cands[a], cands[b] = cands[b], cands[a] })
	if len(cands) > pickScanCap {
		cands = cands[:pickScanCap]
	}
	if pc, ok := s.checker.(pickChecker); ok && len(s.distinct[i]) > 0 {
		if at := pc.FirstDistinct(i, cands, s.distinct[i]); at >= 0 {
			return cands[at], true
		}
		return 0, false
	}
	for _, v := range cands {
		if s.isDistinct(i, v, s.distinct[i]) {
			return v, true
		}
	}
	return 0, false
}

// CircuitChecker implements Definition 2's similarity test with 3-valued
// simulation on the real circuit: tests t1 and t2 are distinct detections of
// fault i exactly when the partial vector t12 — specified where t1 and t2
// agree, X elsewhere — does NOT detect the fault.
//
// Results are memoized per (fault, unordered pair); the cache is shared
// across the K parallel test-set constructions, which revisit the same pairs
// constantly. The faulty-machine simulation is restricted to the fault's
// output cone (precomputed per fault).
type CircuitChecker struct {
	c        *circuit.Circuit
	compiled *sim.Compiled // one engine lowering shared by every cone
	faults   []fault.StuckAt

	mu    sync.RWMutex
	cache []map[uint64]bool // per fault: key = lo<<32 | hi
	cones []*sim.FaultCone  // per fault, built on first use
}

// NewCircuitChecker builds the checker for a circuit universe: faults[i]
// must be the structural fault behind Targets[i].
func NewCircuitChecker(c *circuit.Circuit, faults []fault.StuckAt) *CircuitChecker {
	return &CircuitChecker{
		c:        c,
		compiled: sim.CompileCircuit(c),
		faults:   faults,
		cache:    make([]map[uint64]bool, len(faults)),
		cones:    make([]*sim.FaultCone, len(faults)),
	}
}

// NewCircuitCheckerFor builds the checker for a CircuitUniverse. The
// universe's model must have single stuck-at targets over U (Def2Capable);
// callers route other models away from Definition 2 before reaching here.
func NewCircuitCheckerFor(u *CircuitUniverse) *CircuitChecker {
	sas := u.StuckAt()
	if sas == nil {
		panic("ndetect: Definition 2 requires a fault model with single stuck-at targets")
	}
	return NewCircuitChecker(u.Circuit, sas)
}

// Distinct implements DistinctChecker.
func (cc *CircuitChecker) Distinct(faultIndex, t1, t2 int) bool {
	if t1 == t2 {
		return false // a test is never a distinct detection from itself
	}
	lo, hi := t1, t2
	if lo > hi {
		lo, hi = hi, lo
	}
	key := uint64(lo)<<32 | uint64(hi)

	cc.mu.RLock()
	m := cc.cache[faultIndex]
	if m != nil {
		if v, ok := m[key]; ok {
			cc.mu.RUnlock()
			return v
		}
	}
	cone := cc.cones[faultIndex]
	cc.mu.RUnlock()

	if cone == nil {
		cone = cc.compiled.NewFaultCone(cc.faults[faultIndex].Node)
	}

	pattern := sim.CommonTest(uint64(lo), uint64(hi), cc.c.NumInputs())
	// Distinct iff t12 does NOT detect the fault.
	v := !cone.DetectsTV(pattern, cc.faults[faultIndex].Value)

	cc.mu.Lock()
	if cc.cache[faultIndex] == nil {
		cc.cache[faultIndex] = make(map[uint64]bool)
	}
	cc.cache[faultIndex][key] = v
	if cc.cones[faultIndex] == nil {
		cc.cones[faultIndex] = cone
	}
	cc.mu.Unlock()
	return v
}

// DistinctAll reports whether v is pairwise distinct from every test in ds
// for the given fault, resolving all uncached pairs with one dual-rail
// batched simulation (chunks of 64).
func (cc *CircuitChecker) DistinctAll(faultIndex, v int, ds []int) bool {
	keys := make([]uint64, 0, len(ds))
	pending := make([]int, 0, len(ds))

	cc.mu.RLock()
	m := cc.cache[faultIndex]
	cone := cc.cones[faultIndex]
	for _, d := range ds {
		if d == v {
			cc.mu.RUnlock()
			return false
		}
		lo, hi := v, d
		if lo > hi {
			lo, hi = hi, lo
		}
		key := uint64(lo)<<32 | uint64(hi)
		if m != nil {
			if val, ok := m[key]; ok {
				if !val {
					cc.mu.RUnlock()
					return false
				}
				continue
			}
		}
		keys = append(keys, key)
		pending = append(pending, d)
	}
	cc.mu.RUnlock()
	if len(pending) == 0 {
		return true
	}

	if cone == nil {
		cone = cc.compiled.NewFaultCone(cc.faults[faultIndex].Node)
	}
	result := true
	verdicts := make([]bool, 0, len(pending))
	for start := 0; start < len(pending); start += 64 {
		end := start + 64
		if end > len(pending) {
			end = len(pending)
		}
		patterns := make([][]sim.TV, 0, end-start)
		for _, d := range pending[start:end] {
			patterns = append(patterns, sim.CommonTest(uint64(v), uint64(d), cc.c.NumInputs()))
		}
		for _, detects := range cone.DetectsTVBatch(patterns, cc.faults[faultIndex].Value) {
			verdicts = append(verdicts, !detects) // distinct iff t_ij does NOT detect
			if detects {
				result = false
			}
		}
	}

	cc.mu.Lock()
	if cc.cache[faultIndex] == nil {
		cc.cache[faultIndex] = make(map[uint64]bool)
	}
	for i, key := range keys {
		cc.cache[faultIndex][key] = verdicts[i]
	}
	if cc.cones[faultIndex] == nil {
		cc.cones[faultIndex] = cone
	}
	cc.mu.Unlock()
	return result
}

// FirstDistinct returns the index (into cands) of the first candidate that
// is pairwise distinct from every test in ds for the given fault, or -1.
// Candidates are eliminated member by member: for each counted detection d,
// all surviving candidates are checked against d with cache lookups plus
// one batched simulation per 64 uncached pairs. The surviving set after the
// last member is exactly {candidates distinct from all of ds}, so the
// returned candidate matches what a sequential scan would pick.
func (cc *CircuitChecker) FirstDistinct(faultIndex int, cands []int, ds []int) int {
	survivors := make([]int, len(cands)) // indices into cands
	for i := range survivors {
		survivors[i] = i
	}
	for _, d := range ds {
		next := survivors[:0]
		var pendingIdx []int
		var pendingKeys []uint64

		cc.mu.RLock()
		m := cc.cache[faultIndex]
		cone := cc.cones[faultIndex]
		for _, si := range survivors {
			v := cands[si]
			if v == d {
				continue // never distinct from itself
			}
			lo, hi := v, d
			if lo > hi {
				lo, hi = hi, lo
			}
			key := uint64(lo)<<32 | uint64(hi)
			if m != nil {
				if val, ok := m[key]; ok {
					if val {
						next = append(next, si)
					}
					continue
				}
			}
			pendingIdx = append(pendingIdx, si)
			pendingKeys = append(pendingKeys, key)
		}
		cc.mu.RUnlock()

		if len(pendingIdx) > 0 {
			if cone == nil {
				cone = cc.compiled.NewFaultCone(cc.faults[faultIndex].Node)
			}
			verdicts := make([]bool, 0, len(pendingIdx))
			for start := 0; start < len(pendingIdx); start += 64 {
				end := start + 64
				if end > len(pendingIdx) {
					end = len(pendingIdx)
				}
				patterns := make([][]sim.TV, 0, end-start)
				for _, si := range pendingIdx[start:end] {
					patterns = append(patterns, sim.CommonTest(uint64(cands[si]), uint64(d), cc.c.NumInputs()))
				}
				for _, detects := range cone.DetectsTVBatch(patterns, cc.faults[faultIndex].Value) {
					verdicts = append(verdicts, !detects)
				}
			}
			cc.mu.Lock()
			if cc.cache[faultIndex] == nil {
				cc.cache[faultIndex] = make(map[uint64]bool)
			}
			for i, key := range pendingKeys {
				cc.cache[faultIndex][key] = verdicts[i]
			}
			if cc.cones[faultIndex] == nil {
				cc.cones[faultIndex] = cone
			}
			cc.mu.Unlock()
			for i, si := range pendingIdx {
				if verdicts[i] {
					next = append(next, si)
				}
			}
		}

		survivors = next
		if len(survivors) == 0 {
			return -1
		}
	}
	// Cache hits and simulated verdicts append in different orders, so the
	// survivor list is not sorted; the minimum index is the candidate a
	// sequential scan would have accepted first.
	best := survivors[0]
	for _, si := range survivors {
		if si < best {
			best = si
		}
	}
	return best
}

// CacheSize returns the number of memoized pair results (diagnostics).
func (cc *CircuitChecker) CacheSize() int {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	n := 0
	for _, m := range cc.cache {
		n += len(m)
	}
	return n
}
