package ndetect

import (
	"ndetect/internal/bitset"
)

// TestSet is an ordered, duplicate-free set of input vectors (the paper's
// Tk). Order is insertion order; membership queries are O(1) via the
// backing bitset.
type TestSet struct {
	vectors []int
	member  *bitset.Set
}

// NewTestSet returns an empty test set over a universe of the given size.
func NewTestSet(size int) *TestSet {
	return &TestSet{member: bitset.New(size)}
}

// Add inserts a vector; duplicates are ignored (the paper's test sets never
// duplicate tests). It reports whether the vector was new.
func (t *TestSet) Add(v int) bool {
	if t.member.Contains(v) {
		return false
	}
	t.member.Add(v)
	t.vectors = append(t.vectors, v)
	return true
}

// Contains reports membership.
func (t *TestSet) Contains(v int) bool { return t.member.Contains(v) }

// Len returns the number of tests.
func (t *TestSet) Len() int { return len(t.vectors) }

// Vectors returns the tests in insertion order. The slice is shared; do not
// modify.
func (t *TestSet) Vectors() []int { return t.vectors }

// Set returns the membership bitset. The set is shared; do not modify.
func (t *TestSet) Set() *bitset.Set { return t.member }

// Detections returns the Definition 1 detection count |T(f) ∩ T| of a fault.
func (t *TestSet) Detections(f Fault) int {
	return t.member.IntersectionCount(f.T)
}

// Detects reports whether the test set detects the fault at least once.
func (t *TestSet) Detects(f Fault) bool {
	return t.member.Intersects(f.T)
}

// Clone returns an independent copy.
func (t *TestSet) Clone() *TestSet {
	return &TestSet{
		vectors: append([]int(nil), t.vectors...),
		member:  t.member.Clone(),
	}
}

// IsNDetection verifies the defining property of an n-detection test set
// under Definition 1: every target fault is detected at least n times, or
// all its tests are included. (Used by property tests and the verification
// CLI.)
func (t *TestSet) IsNDetection(n int, targets []Fault) bool {
	for _, f := range targets {
		d := t.Detections(f)
		if d >= n {
			continue
		}
		if d == f.N() { // all of T(f) is in the set
			continue
		}
		return false
	}
	return true
}
