package ndetect

import (
	"math/rand"
	"sync"
	"testing"

	"ndetect/internal/bitset"
	"ndetect/internal/circuit"
	"ndetect/internal/fault"
)

type fakeChecker struct {
	distinct bool
	mu       sync.Mutex
	calls    int
}

func (f *fakeChecker) Distinct(fi, t1, t2 int) bool {
	f.mu.Lock()
	f.calls++
	f.mu.Unlock()
	return f.distinct
}

// TestDef2NDetectionInvariant: even under Definition 2 (with its Definition 1
// fallback), every test set is an n-detection test set in the Definition 1
// sense after iteration n — the paper's "avoid situations where faults are
// detected much fewer than n times".
func TestDef2NDetectionInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, checker := range []*fakeChecker{{distinct: true}, {distinct: false}} {
		u := randomUniverse(rng, 128, 10, 4)
		res, err := Procedure1(u, Procedure1Options{
			NMax: 5, K: 15, Seed: 3, Definition: Def2, Checker: checker, KeepTestSets: true,
		})
		if err != nil {
			t.Fatalf("Procedure1: %v", err)
		}
		for n := 1; n <= 5; n++ {
			for k, tk := range res.TestSets[n-1] {
				if !tk.IsNDetection(n, u.Targets) {
					t.Fatalf("distinct=%v: T%d after iteration %d is not %d-detection",
						checker.distinct, k, n, n)
				}
			}
		}
		if checker.calls == 0 {
			t.Fatal("checker never consulted")
		}
	}
}

// TestDef2NoneDistinct: when no pair is ever distinct, a fault's Definition
// 2 count saturates at 1 no matter how many of its tests join the set.
func TestDef2NoneDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	u := randomUniverse(rng, 64, 8, 4)
	checker := &fakeChecker{distinct: false}
	d2 := newDef2State(len(u.Targets), checker)
	tk := NewTestSet(u.Size)
	for _, v := range u.Targets[0].T.Members() {
		tk.Add(v)
	}
	if got := d2.countUpTo(0, 10, &u.Targets[0], tk); got != 1 {
		t.Fatalf("count = %d, want 1 under none-distinct", got)
	}
}

// TestDef2AllDistinct: when every pair is distinct, Definition 2 counting
// equals Definition 1 counting (up to the requested cap).
func TestDef2AllDistinct(t *testing.T) {
	checker := &fakeChecker{distinct: true}
	d2 := newDef2State(1, checker)
	f := Fault{Name: "f", T: bitset.FromMembers(32, 0, 3, 6, 9, 12, 15, 18)}
	tk := NewTestSet(32)
	for _, v := range f.T.Members() {
		tk.Add(v)
	}
	if got := d2.countUpTo(0, 7, &f, tk); got != 7 {
		t.Fatalf("count = %d, want 7 under all-distinct", got)
	}
	// The cap is respected: asking for less processes less.
	d2b := newDef2State(1, checker)
	if got := d2b.countUpTo(0, 3, &f, tk); got != 3 {
		t.Fatalf("capped count = %d, want 3", got)
	}
	// And resuming later reaches the full count.
	if got := d2b.countUpTo(0, 10, &f, tk); got != 7 {
		t.Fatalf("resumed count = %d, want 7", got)
	}
}

// buildDef2Circuit returns a small circuit plus its collapsed faults for
// CircuitChecker tests.
func buildDef2Circuit(t *testing.T) (*circuit.Circuit, []fault.StuckAt) {
	t.Helper()
	b := circuit.NewBuilder("def2")
	b.Input("a")
	b.Input("c")
	b.Input("d")
	b.Gate(circuit.And, "g1", "a", "c")
	b.Gate(circuit.Or, "g2", "g1", "d")
	b.Output("g2")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return c, fault.CollapseStuckAt(c)
}

func TestCircuitCheckerBasics(t *testing.T) {
	c, faults := buildDef2Circuit(t)
	cc := NewCircuitChecker(c, faults)

	// A test is never distinct from itself.
	if cc.Distinct(0, 3, 3) {
		t.Fatal("t distinct from itself")
	}
	// Symmetry: the pair key is unordered.
	for fi := range faults {
		for a := 0; a < 8; a++ {
			for b := a + 1; b < 8; b++ {
				if cc.Distinct(fi, a, b) != cc.Distinct(fi, b, a) {
					t.Fatalf("asymmetric distinctness for fault %d pair (%d,%d)", fi, a, b)
				}
			}
		}
	}
	if cc.CacheSize() == 0 {
		t.Fatal("cache empty after queries")
	}
}

// TestCircuitCheckerSemantics: hand-verified cases on g2 = (a∧c)∨d.
func TestCircuitCheckerSemantics(t *testing.T) {
	c, faults := buildDef2Circuit(t)
	cc := NewCircuitChecker(c, faults)

	// Find fault d/1 (input d stuck at 1). T(d/1) = vectors with d=0 and
	// a∧c=0: {000,010,100} = {0,2,4}.
	di := -1
	for i, f := range faults {
		if f.Name(c) == "d/1" {
			di = i
		}
	}
	if di < 0 {
		t.Skip("d/1 collapsed away; representative differs")
	}
	// t1=000(0), t2=010(2): common = 0X0. Under 0X0 the fault d/1 makes
	// g2: good = (0∧X)∨0 = 0, faulty = (0∧X)∨1 = 1 → t12 DETECTS the
	// fault → tests are NOT distinct.
	if cc.Distinct(di, 0, 2) {
		t.Fatal("(000,010) should be similar for d/1: common 0X0 still detects it")
	}
	// t1=000(0), t2=100(4): common = X00; good g2 = (X∧0)∨0 = 0, faulty =
	// (X∧0)∨1 = 1 → detected → not distinct either.
	if cc.Distinct(di, 0, 4) {
		t.Fatal("(000,100) should be similar for d/1")
	}
	// Now fault a/1: T(a/1) = vectors with a=0, c=1, d=0 → {010}=2 only.
	// For a fault with a singleton T-set the checker is never consulted
	// with two members; instead verify a/0-style pair: fault c/1?
	// Take fault g1/1 if present: T(g1/1) = {v: g1=0 ∧ d=0} with flip →
	// g2 flips. g1=0 ∧ d=0: {000,010,100}. Common of 000 and 100 is X00:
	// good g1 = X∧0 = 0 → wait c=0 → g1=0 definitely; faulty g1=1 →
	// g2: good 0, faulty 1 → detects → not distinct.
	gi := -1
	for i, f := range faults {
		if f.Name(c) == "a/0" { // a/0 ≡ c/0 ≡ g1/0 under collapsing
			gi = i
		}
	}
	if gi >= 0 {
		// T(a/0) = {v: a=1,c=1,d=0} = {110} singleton; nothing to check.
		_ = gi
	}
}

// TestCircuitCheckerConcurrent: hammer the cache from several goroutines.
func TestCircuitCheckerConcurrent(t *testing.T) {
	c, faults := buildDef2Circuit(t)
	cc := NewCircuitChecker(c, faults)
	var wg sync.WaitGroup
	results := make([][]bool, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var out []bool
			for fi := range faults {
				for a := 0; a < 8; a++ {
					for b := 0; b < 8; b++ {
						out = append(out, cc.Distinct(fi, a, b))
					}
				}
			}
			results[w] = out
		}(w)
	}
	wg.Wait()
	for w := 1; w < 8; w++ {
		for i := range results[0] {
			if results[w][i] != results[0][i] {
				t.Fatalf("goroutine %d saw different result at %d", w, i)
			}
		}
	}
}

// TestDef2ImprovesDiversityOnCircuit: an end-to-end sanity check of the
// paper's Section 4 claim on a circuit with reconvergent structure: under
// Definition 2 the mean detection probability of hard untargeted faults is
// at least that of Definition 1. (Statistical, with fixed seeds.)
func TestDef2ImprovesDiversityOnCircuit(t *testing.T) {
	b := circuit.NewBuilder("div")
	for _, n := range []string{"a", "c", "d", "e", "f"} {
		b.Input(n)
	}
	b.Gate(circuit.And, "g1", "a", "c")
	b.Gate(circuit.And, "g2", "d", "e")
	b.Gate(circuit.And, "g3", "c", "d")
	b.Gate(circuit.Or, "g4", "g1", "g2")
	b.Gate(circuit.Or, "g5", "g4", "g3")
	b.Gate(circuit.And, "g6", "g5", "f")
	b.Output("g6")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	u, err := FromCircuit(c)
	if err != nil {
		t.Fatalf("FromCircuit: %v", err)
	}
	if len(u.Untargeted) == 0 {
		t.Skip("no bridging faults in this circuit")
	}
	opts := Procedure1Options{NMax: 3, K: 200, Seed: 42}
	r1, err := Procedure1(&u.Universe, opts)
	if err != nil {
		t.Fatalf("Def1: %v", err)
	}
	opts.Definition = Def2
	opts.Checker = NewCircuitCheckerFor(u)
	r2, err := Procedure1(&u.Universe, opts)
	if err != nil {
		t.Fatalf("Def2: %v", err)
	}
	var sum1, sum2 float64
	for j := range u.Untargeted {
		sum1 += r1.P(3, j)
		sum2 += r2.P(3, j)
	}
	if sum2+1e-9 < sum1*0.95 {
		t.Fatalf("Def2 mean detection (%v) markedly below Def1 (%v)", sum2, sum1)
	}
}
