package ndetect

import (
	"math"
	"sort"

	"ndetect/internal/bitset"
	"ndetect/internal/sim"
)

// Unbounded is the nmin value of an untargeted fault no n-detection test set
// is ever guaranteed to detect (F(g) is empty: no target fault's test set
// overlaps T(g)). No finite n suffices for such faults.
const Unbounded = math.MaxInt

// NMinPair computes nmin(g,f) = N(f) − M(g,f) + 1, the smallest n for which
// detecting f n times forces the test set to hit T(g). It returns Unbounded
// when the test sets do not intersect (f ∉ F(g)).
func NMinPair(g, f Fault) int {
	m := f.T.IntersectionCount(g.T)
	if m == 0 {
		return Unbounded
	}
	return f.T.Count() - m + 1
}

// NMin computes nmin(g) = min over f ∈ F(g) of nmin(g,f).
func NMin(g Fault, targets []Fault) int {
	best := Unbounded
	for _, f := range targets {
		if v := NMinPair(g, f); v < best {
			best = v
		}
	}
	return best
}

// PairContribution reports one target fault's role in the worst-case
// analysis of an untargeted fault, mirroring the columns of the paper's
// Table 1.
type PairContribution struct {
	TargetIndex int
	Name        string
	N           int // N(f)
	M           int // M(g,f)
	NMin        int // nmin(g,f)
}

// ContributingFaults returns, for one untargeted fault g, the set F(g) of
// target faults whose test sets overlap T(g), with their nmin(g,f) values —
// the data of the paper's Table 1.
func ContributingFaults(g Fault, targets []Fault) []PairContribution {
	var out []PairContribution
	for i, f := range targets {
		m := f.T.IntersectionCount(g.T)
		if m == 0 {
			continue
		}
		n := f.T.Count()
		out = append(out, PairContribution{
			TargetIndex: i,
			Name:        f.Name,
			N:           n,
			M:           m,
			NMin:        n - m + 1,
		})
	}
	return out
}

// WorstCaseResult holds nmin(g) for every untargeted fault of a universe.
type WorstCaseResult struct {
	// NMin[j] is nmin for Untargeted[j]; Unbounded if no guarantee exists.
	NMin []int
}

// WorstCase runs the Section 2 analysis over the whole universe with one
// worker per CPU (see WorstCaseWorkers).
func WorstCase(u *Universe) *WorstCaseResult {
	return WorstCaseWorkers(u, 0)
}

// WorstCaseWorkers is WorstCase with an explicit worker bound, in parallel
// over the untargeted faults (each nmin(g) is independent): 0 means one
// worker per CPU, 1 the exact serial order. The result is identical for
// every worker count; only wall-clock time changes (DESIGN.md §5 — the
// knob must be threaded, not re-resolved, so callers that split a budget
// across concurrent circuits or parts stay within it).
func WorstCaseWorkers(u *Universe, workers int) *WorstCaseResult {
	r := &WorstCaseResult{NMin: make([]int, len(u.Untargeted))}

	// Precompute N(f) once and visit targets in ascending N(f): the lower
	// bound nmin(g,f) ≥ N(f) + 1 − min(N(f), |T(g)|) is nondecreasing in
	// N(f), so once it reaches the best value found the scan can stop.
	order := make([]int, len(u.Targets))
	for i := range order {
		order[i] = i
	}
	nf := make([]int, len(u.Targets))
	for i, f := range u.Targets {
		nf[i] = f.T.Count()
	}
	sort.Slice(order, func(a, b int) bool { return nf[order[a]] < nf[order[b]] })

	one := func(j int) {
		g := u.Untargeted[j]
		ng := g.T.Count()
		best := Unbounded
		for _, i := range order {
			lb := nf[i] + 1 - min(nf[i], ng)
			if lb >= best {
				break // all later targets have larger N(f), hence larger lb
			}
			m := u.Targets[i].T.IntersectionCount(g.T)
			if m == 0 {
				continue
			}
			if v := nf[i] - m + 1; v < best {
				best = v
				if best == 1 {
					break
				}
			}
		}
		r.NMin[j] = best
	}

	sim.ParallelFor(workers, len(u.Untargeted), one)
	return r
}

// CoverageAt returns the fraction (0..1) of untargeted faults with
// nmin(g) ≤ n — the quantity tabulated (as a percentage) in Table 2.
func (r *WorstCaseResult) CoverageAt(n int) float64 {
	if len(r.NMin) == 0 {
		return 1
	}
	c := 0
	for _, v := range r.NMin {
		if v <= n {
			c++
		}
	}
	return float64(c) / float64(len(r.NMin))
}

// CountAtLeast returns the number of untargeted faults with nmin(g) ≥ n —
// the quantity tabulated in Table 3. Unbounded faults are included.
func (r *WorstCaseResult) CountAtLeast(n int) int {
	c := 0
	for _, v := range r.NMin {
		if v >= n {
			c++
		}
	}
	return c
}

// IndicesAtLeast returns the untargeted fault indices with nmin(g) ≥ n, in
// index order — Tables 5 and 6 run the average-case analysis exactly on
// this subset (n = 11 there).
func (r *WorstCaseResult) IndicesAtLeast(n int) []int {
	var out []int
	for j, v := range r.NMin {
		if v >= n {
			out = append(out, j)
		}
	}
	return out
}

// MaxFinite returns the largest finite nmin value, or 0 if none.
func (r *WorstCaseResult) MaxFinite() int {
	best := 0
	for _, v := range r.NMin {
		if v != Unbounded && v > best {
			best = v
		}
	}
	return best
}

// Histogram returns the sorted distinct finite nmin values ≥ from, with
// their fault counts — the data behind the paper's Figure 2 (which plots
// the distribution of nmin(g) for faults with nmin(g) ≥ 100).
func (r *WorstCaseResult) Histogram(from int) (values []int, counts []int) {
	h := make(map[int]int)
	for _, v := range r.NMin {
		if v != Unbounded && v >= from {
			h[v]++
		}
	}
	values = make([]int, 0, len(h))
	for v := range h {
		values = append(values, v)
	}
	sort.Ints(values)
	counts = make([]int, len(values))
	for i, v := range values {
		counts[i] = h[v]
	}
	return values, counts
}

// TightnessWitness returns U − T(g): by construction an (nmin(g)−1)-
// detection test set that fails to detect g, proving the worst-case bound is
// exact. (For every target f ∈ F(g), |T(f) − T(g)| = N(f) − M(g,f) =
// nmin(g,f) − 1 ≥ nmin(g) − 1; targets outside F(g) keep all their tests.)
func TightnessWitness(u *Universe, j int) *bitset.Set {
	w := bitset.New(u.Size)
	w.Fill()
	w.DifferenceWith(u.Untargeted[j].T)
	return w
}
