package ndetect

import (
	"testing"

	"ndetect/internal/bitset"
	"ndetect/internal/circuit"
	"ndetect/internal/fault"
	"ndetect/internal/sim"
)

func exampleCircuit(t *testing.T) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("uni")
	b.Input("i1")
	b.Input("i2")
	b.Input("i3")
	b.Input("i4")
	b.Gate(circuit.And, "g9", "i1", "i2")
	b.Gate(circuit.And, "g10", "i3", "i4")
	b.Gate(circuit.Or, "g11", "g9", "g10")
	b.Output("g11")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return c
}

func TestFromCircuit(t *testing.T) {
	c := exampleCircuit(t)
	u, err := FromCircuit(c)
	if err != nil {
		t.Fatalf("FromCircuit: %v", err)
	}
	if u.Size != 16 {
		t.Fatalf("Size = %d", u.Size)
	}
	if len(u.Targets) != len(u.StuckAt()) || len(u.Untargeted) != len(u.Bridges()) {
		t.Fatal("parallel slices out of sync")
	}
	if err := u.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Bridging faults exist between g9 and g10 (the only non-feedback
	// multi-input pair: g11 depends on both).
	if len(u.Untargeted) == 0 {
		t.Fatal("no untargeted faults")
	}
	for _, g := range u.Untargeted {
		if g.T.IsEmpty() {
			t.Fatalf("undetectable bridge %s kept in G", g.Name)
		}
	}
	// Cross-check every target T-set against the naive simulator.
	for i, f := range u.StuckAt() {
		want := sim.NaiveStuckAtTSet(c, f)
		if !u.Targets[i].T.Equal(want) {
			t.Fatalf("T(%s) mismatch", u.Targets[i].Name)
		}
	}
	for i, g := range u.Bridges() {
		want := sim.NaiveBridgeTSet(c, g)
		if !u.Untargeted[i].T.Equal(want) {
			t.Fatalf("T(%s) mismatch", u.Untargeted[i].Name)
		}
	}
}

func TestFromCircuitBridgeUniverseShape(t *testing.T) {
	c := exampleCircuit(t)
	u, err := FromCircuit(c)
	if err != nil {
		t.Fatalf("FromCircuit: %v", err)
	}
	// Candidate bridges: pair (g9,g10) → 4 faults; detectable subset only.
	if len(fault.Bridges(c)) != 4 {
		t.Fatalf("candidates = %d, want 4", len(fault.Bridges(c)))
	}
	if len(u.Untargeted) > 4 {
		t.Fatalf("detectable = %d > 4", len(u.Untargeted))
	}
	// g9=(i1∧i2), g10=(i3∧i4), g11 = OR. Dominance bridge g9→g10 value 0:
	// activated when g9=0 ∧ g10=1, flips g10 1→0; propagates iff g9=0 →
	// always at activation. T = {v: ¬(i1∧i2) ∧ (i3∧i4)} = {0011,0111,1011}
	// = {3,7,11}. Check it is present.
	found := false
	for i, g := range u.Bridges() {
		if g.Value == false && c.Node(g.Dominant).Name == "g9" && c.Node(g.Victim).Name == "g10" {
			found = true
			want := bitset.FromMembers(16, 3, 7, 11)
			if !u.Untargeted[i].T.Equal(want) {
				t.Fatalf("T((g9,0,g10,1)) = %s, want %s", u.Untargeted[i].T, want)
			}
		}
	}
	if !found {
		t.Fatal("bridge (g9,0,g10,1) missing from detectable universe")
	}
}

func TestValidateCatchesMismatch(t *testing.T) {
	u := &Universe{
		Size:    8,
		Targets: []Fault{{Name: "f", T: bitset.New(16)}},
	}
	if err := u.Validate(); err == nil {
		t.Fatal("Validate accepted wrong universe size")
	}
	u2 := &Universe{
		Size:       8,
		Untargeted: []Fault{{Name: "g", T: nil}},
	}
	if err := u2.Validate(); err == nil {
		t.Fatal("Validate accepted nil T-set")
	}
}

func TestDetectableTargets(t *testing.T) {
	u := &Universe{
		Size: 8,
		Targets: []Fault{
			{Name: "a", T: bitset.FromMembers(8, 1)},
			{Name: "b", T: bitset.New(8)},
		},
	}
	if got := u.DetectableTargets(); got != 1 {
		t.Fatalf("DetectableTargets = %d", got)
	}
}

func TestFromCircuitEndToEndWorstCase(t *testing.T) {
	// Full pipeline sanity: worst-case analysis on the example circuit.
	c := exampleCircuit(t)
	u, err := FromCircuit(c)
	if err != nil {
		t.Fatalf("FromCircuit: %v", err)
	}
	wc := WorstCase(&u.Universe)
	for j, nm := range wc.NMin {
		if nm < 1 {
			t.Fatalf("nmin(%s) = %d < 1", u.Untargeted[j].Name, nm)
		}
	}
	// Every detectable bridge with a finite bound: verify the guarantee on
	// one constructed n-detection test set.
	res, err := Procedure1(&u.Universe, Procedure1Options{NMax: wcCap(wc.MaxFinite(), 12), K: 10, Seed: 4, KeepTestSets: true})
	if err != nil {
		t.Fatalf("Procedure1: %v", err)
	}
	for j, g := range u.Untargeted {
		nm := wc.NMin[j]
		if nm == Unbounded || nm > res.NMax {
			continue
		}
		for _, tk := range res.TestSets[nm-1] {
			if !tk.Detects(g) {
				t.Fatalf("guarantee violated for %s at n=%d", g.Name, nm)
			}
		}
	}
}

func wcCap(v, cap int) int {
	if v > cap {
		return cap
	}
	if v < 1 {
		return 1
	}
	return v
}

func TestTestSetBasics(t *testing.T) {
	ts := NewTestSet(16)
	if !ts.Add(5) || ts.Add(5) {
		t.Fatal("Add duplicate handling wrong")
	}
	ts.Add(9)
	if ts.Len() != 2 || !ts.Contains(5) || ts.Contains(6) {
		t.Fatal("membership wrong")
	}
	f := Fault{Name: "f", T: bitset.FromMembers(16, 5, 6, 9)}
	if ts.Detections(f) != 2 || !ts.Detects(f) {
		t.Fatal("Detections wrong")
	}
	cl := ts.Clone()
	cl.Add(1)
	if ts.Contains(1) {
		t.Fatal("Clone not independent")
	}
	v := ts.Vectors()
	if len(v) != 2 || v[0] != 5 || v[1] != 9 {
		t.Fatalf("Vectors = %v", v)
	}
}

func TestIsNDetection(t *testing.T) {
	size := 16
	targets := []Fault{
		{Name: "f1", T: bitset.FromMembers(size, 1, 2, 3)},
		{Name: "f2", T: bitset.FromMembers(size, 4)},
	}
	ts := NewTestSet(size)
	ts.Add(1)
	ts.Add(2)
	ts.Add(4)
	// f1 detected twice, f2 once but exhausted → 2-detection holds.
	if !ts.IsNDetection(2, targets) {
		t.Fatal("2-detection should hold (f2 exhausted)")
	}
	if !ts.IsNDetection(1, targets) {
		t.Fatal("1-detection should hold")
	}
	if ts.IsNDetection(3, targets) {
		t.Fatal("3-detection should fail: f1 has a third unused test")
	}
}
