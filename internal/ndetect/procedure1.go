package ndetect

import (
	"fmt"
	"math/rand"
	"sync"

	"ndetect/internal/bitset"
	"ndetect/internal/sim"
)

// Definition selects how Procedure 1 counts detections (paper Section 4).
type Definition int

// The paper's two definitions of "detected n times".
const (
	// Def1: a fault is detected n times if the set contains n tests that
	// detect it.
	Def1 Definition = 1
	// Def2: two tests only count as distinct detections of f if the
	// partial vector of their common bits does not itself detect f. When a
	// fault cannot reach n distinct detections under Def2, Procedure 1
	// falls back to Def1 for that fault (as specified in the paper).
	Def2 Definition = 2
)

// DistinctChecker is Definition 2's similarity oracle: Distinct(i, t1, t2)
// reports whether tests t1 and t2 count as two different detections of
// target fault i (i.e. whether the common-bits partial test t12 does NOT
// detect the fault). Implementations must be safe for concurrent use.
type DistinctChecker interface {
	Distinct(faultIndex, t1, t2 int) bool
}

// Procedure1Options configures the random n-detection test set generator.
type Procedure1Options struct {
	NMax int   // build n-detection test sets for n = 1..NMax (paper: 10)
	K    int   // number of test sets per n (paper: 10000 for Table 5, 1000 for Table 6)
	Seed int64 // base seed; test set k uses a deterministic stream derived from (Seed, k)

	Definition Definition      // Def1 (default) or Def2
	Checker    DistinctChecker // required iff Definition == Def2

	// Workers bounds the parallelism over test sets (default: GOMAXPROCS).
	// Results are deterministic regardless of the worker count: each test
	// set's randomness comes only from its own (Seed, k) stream.
	Workers int

	// Progress, when non-nil, observes completed test sets: it is called
	// serially with (finished, K) as each of the K sets completes, in
	// completion order. Like Workers, it never influences results.
	Progress func(done, total int)

	// KeepTestSets retains the constructed test sets per n (memory-heavy
	// for large K; used for illustration and tests, cf. the paper's
	// Table 4).
	KeepTestSets bool
}

func (o *Procedure1Options) normalize() error {
	if o.NMax <= 0 {
		o.NMax = 10
	}
	if o.K <= 0 {
		o.K = 1000
	}
	if o.Definition == 0 {
		o.Definition = Def1
	}
	if o.Definition == Def2 && o.Checker == nil {
		return fmt.Errorf("ndetect: Definition 2 requires a DistinctChecker")
	}
	if o.Definition != Def1 && o.Definition != Def2 {
		return fmt.Errorf("ndetect: unknown definition %d", o.Definition)
	}
	o.Workers = sim.ResolveWorkers(o.Workers)
	return nil
}

// Procedure1Result aggregates the K runs.
type Procedure1Result struct {
	NMax int
	K    int

	// Detected[n-1][j] is d(n, g_j): among the K n-detection test sets,
	// how many detect untargeted fault j.
	Detected [][]int

	// SetSizeSum[n-1] is the summed size of the K n-detection test sets
	// (SetSizeSum[n-1]/K is the average size, which grows roughly linearly
	// in n, the paper's motivation for bounding n).
	SetSizeSum []int64

	// TestSets[n-1][k] is test set k after iteration n. Only populated
	// with KeepTestSets.
	TestSets [][]*TestSet
}

// P returns the estimated probability p(n, g_j) = d(n,g_j)/K.
func (r *Procedure1Result) P(n, j int) float64 {
	return float64(r.Detected[n-1][j]) / float64(r.K)
}

// Procedure1 implements the paper's Procedure 1: for every k it grows a test
// set through iterations n = 1..NMax; at the end of iteration n, Tk is an
// n-detection test set. Detection statistics for the untargeted faults are
// recorded after every iteration.
func Procedure1(u *Universe, opts Procedure1Options) (*Procedure1Result, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	if err := u.Validate(); err != nil {
		return nil, err
	}

	res := &Procedure1Result{
		NMax:       opts.NMax,
		K:          opts.K,
		Detected:   make([][]int, opts.NMax),
		SetSizeSum: make([]int64, opts.NMax),
	}
	for n := range res.Detected {
		res.Detected[n] = make([]int, len(u.Untargeted))
	}
	if opts.KeepTestSets {
		res.TestSets = make([][]*TestSet, opts.NMax)
		for n := range res.TestSets {
			res.TestSets[n] = make([]*TestSet, opts.K)
		}
	}

	// Reverse index: for every vector, which untargeted faults it detects.
	// Makes marking first detections O(|faults detected by v|) per added
	// vector instead of a full |G| sweep per iteration.
	gAt := make([][]int32, u.Size)
	for j, g := range u.Untargeted {
		g.T.ForEach(func(v int) {
			gAt[v] = append(gAt[v], int32(j))
		})
	}
	// Same for targets: incremental Definition 1 counts.
	fAt := make([][]int32, u.Size)
	for i, f := range u.Targets {
		f.T.ForEach(func(v int) {
			fAt[v] = append(fAt[v], int32(i))
		})
	}

	// Fan the K independent test-set streams over the §5 worker budget.
	// Every merge into res is commutative (counters under mu), so the
	// work-stealing completion order never shows in the result bytes.
	var mu sync.Mutex
	finished := 0
	sim.ParallelFor(opts.Workers, opts.K, func(k int) {
		runOne(u, &opts, k, fAt, gAt, res, &mu)
		if opts.Progress != nil {
			mu.Lock()
			finished++
			opts.Progress(finished, opts.K)
			mu.Unlock()
		}
	})
	return res, nil
}

// runOne builds one test set through all NMax iterations and merges its
// statistics into res under mu.
func runOne(u *Universe, opts *Procedure1Options, k int, fAt, gAt [][]int32, res *Procedure1Result, mu *sync.Mutex) {
	rng := rand.New(rand.NewSource(mix(opts.Seed, int64(k))))
	tk := NewTestSet(u.Size)
	def1Count := make([]int, len(u.Targets))
	gDetected := make([]bool, len(u.Untargeted))

	var d2 *def2State
	if opts.Definition == Def2 {
		d2 = newDef2State(len(u.Targets), opts.Checker)
	}

	add := func(v int) {
		if !tk.Add(v) {
			return
		}
		for _, fi := range fAt[v] {
			def1Count[fi]++
		}
		for _, gj := range gAt[v] {
			gDetected[gj] = true
		}
	}

	detectedAtN := make([][]int32, opts.NMax)
	sizeAtN := make([]int, opts.NMax)

	for n := 1; n <= opts.NMax; n++ {
		for fi := range u.Targets {
			f := &u.Targets[fi]
			switch opts.Definition {
			case Def1:
				if def1Count[fi] >= n {
					continue
				}
				v, ok := pickRandomOutside(f.T, tk, rng)
				if ok {
					add(v)
				}
			case Def2:
				if d2.countUpTo(fi, n, f, tk) >= n {
					continue
				}
				// Find a test outside Tk that counts as a distinct
				// detection under Definition 2. (Its membership in the
				// distinct set is established when the cursor reaches it.)
				if v, ok := d2.pickDistinct(fi, f, tk, rng); ok {
					add(v)
					continue
				}
				// Fall back to Definition 1 for this fault so it is not
				// left with far fewer than n detections.
				if def1Count[fi] >= n {
					continue
				}
				if v, ok := pickRandomOutside(f.T, tk, rng); ok {
					add(v)
				}
			}
		}
		// Snapshot statistics for this n.
		var dets []int32
		for j, d := range gDetected {
			if d {
				dets = append(dets, int32(j))
			}
		}
		detectedAtN[n-1] = dets
		sizeAtN[n-1] = tk.Len()
		if opts.KeepTestSets {
			mu.Lock()
			res.TestSets[n-1][k] = tk.Clone()
			mu.Unlock()
		}
	}

	mu.Lock()
	for n := 0; n < opts.NMax; n++ {
		for _, j := range detectedAtN[n] {
			res.Detected[n][j]++
		}
		res.SizeAdd(n, sizeAtN[n])
	}
	mu.Unlock()
}

// SizeAdd accumulates one test set's size for iteration n (0-based). Callers
// must hold the result mutex; exported for the internal test that exercises
// aggregation directly.
func (r *Procedure1Result) SizeAdd(n, size int) { r.SetSizeSum[n] += int64(size) }

// pickRandomOutside selects a uniformly random member of T(f) − Tk.
func pickRandomOutside(t *bitset.Set, tk *TestSet, rng *rand.Rand) (int, bool) {
	diff := t.Difference(tk.Set())
	c := diff.Count()
	if c == 0 {
		return 0, false
	}
	return diff.Nth(rng.Intn(c)), true
}

// mix derives a well-spread 64-bit seed from (base, k) with a splitmix64
// round, so neighbouring k values do not produce correlated rand streams.
func mix(base, k int64) int64 {
	z := uint64(base) + uint64(k)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z = z ^ (z >> 31)
	return int64(z)
}
