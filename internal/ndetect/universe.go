// Package ndetect implements the paper's two analyses of n-detection test
// sets:
//
//   - the worst-case analysis (Section 2): nmin(g), the smallest n such that
//     EVERY n-detection test set for the target faults F is guaranteed to
//     detect the untargeted fault g, and
//   - the average-case analysis (Section 3): p(n,g), the probability that an
//     arbitrary n-detection test set detects g, estimated by constructing K
//     random n-detection test sets with the paper's Procedure 1, under
//     either Definition 1 (plain counting) or Definition 2 (similarity-
//     filtered counting, Section 4).
//
// Both analyses are functions of the exhaustive detection sets T(f) ⊆ U
// alone, so the package's model is an abstract Universe of named faults with
// bitset T-sets; FromCircuit binds a gate-level circuit to that model using
// the fault and sim packages.
package ndetect

import (
	"fmt"

	"ndetect/internal/bitset"
	"ndetect/internal/circuit"
	"ndetect/internal/fault"
	"ndetect/internal/sim"
)

// Fault is a named fault with its exhaustive detection set.
type Fault struct {
	Name string
	T    *bitset.Set
}

// N returns N(f) = |T(f)|.
func (f Fault) N() int { return f.T.Count() }

// Universe is an instance of the paper's analysis: a vector space, a target
// set F and an untargeted set G.
type Universe struct {
	Size       int // |U| = 2^inputs
	Targets    []Fault
	Untargeted []Fault
}

// Validate checks internal consistency.
func (u *Universe) Validate() error {
	for i, f := range u.Targets {
		if f.T == nil || f.T.Size() != u.Size {
			return fmt.Errorf("ndetect: target %d (%s) has T-set over wrong universe", i, f.Name)
		}
	}
	for i, g := range u.Untargeted {
		if g.T == nil || g.T.Size() != u.Size {
			return fmt.Errorf("ndetect: untargeted %d (%s) has T-set over wrong universe", i, g.Name)
		}
	}
	return nil
}

// CircuitUniverse is a Universe bound to the circuit it came from, keeping
// the structural fault descriptors needed by Definition 2 and by reports.
type CircuitUniverse struct {
	Universe
	Circuit *circuit.Circuit
	// StuckAt[i] is the structural fault behind Targets[i].
	StuckAt []fault.StuckAt
	// Bridges[i] is the structural fault behind Untargeted[i].
	Bridges []fault.Bridge
}

// Progress observes coarse stage transitions of a long-running analysis:
// stage names a phase, done/total count completed units within it (units
// differ per stage — universe construction counts stages, Procedure 1
// counts finished test sets, the partitioned pipeline counts parts).
// Callbacks are invoked serially and must be fast; they exist for live
// status reporting (the serving layer's job progress, DESIGN.md §10) and
// never influence results.
type Progress func(stage string, done, total int)

// AnalyzeOptions configures FromCircuitOptions. Workers only changes
// wall-clock time and Progress only observes — neither is part of the
// result identity (DESIGN.md §7): the universe built is byte-identical for
// every setting.
type AnalyzeOptions struct {
	// Workers bounds the simulation and T-set parallelism (0 = one worker
	// per CPU, 1 = the exact serial path).
	Workers int
	// Progress, when non-nil, observes the construction stages.
	Progress Progress
}

// FromCircuit builds the paper's experimental setup for a circuit:
//
//	F = collapsed single stuck-at faults (undetectable ones retained; they
//	    never influence either analysis, exactly as in the paper), and
//	G = detectable non-feedback four-way bridging faults between outputs of
//	    multi-input gates.
func FromCircuit(c *circuit.Circuit) (*CircuitUniverse, error) {
	return FromCircuitWorkers(c, 0)
}

// FromCircuitWorkers is FromCircuit with an explicit worker count for the
// exhaustive simulation and T-set construction (0 = one worker per CPU,
// 1 = serial). The universe built is identical for every worker count.
func FromCircuitWorkers(c *circuit.Circuit, workers int) (*CircuitUniverse, error) {
	return FromCircuitOptions(c, AnalyzeOptions{Workers: workers})
}

// FromCircuitOptions is FromCircuit with explicit options, reporting stage
// transitions to opts.Progress.
//
// The T-sets are streamed — only the per-fault result bitsets span U — so
// the construction is bounded by an explicit memory-budget check on those
// results (sim.MemoryBudget) instead of by materialized per-node values.
func FromCircuitOptions(c *circuit.Circuit, opts AnalyzeOptions) (*CircuitUniverse, error) {
	step := func(stage string, done int) {
		if opts.Progress != nil {
			opts.Progress(stage, done, 3)
		}
	}
	step("simulate", 0)
	e, err := sim.RunWorkers(c, opts.Workers)
	if err != nil {
		return nil, err
	}

	sas := fault.CollapseStuckAt(c)
	brs := fault.Bridges(c)
	if err := sim.CheckResultBudget(c, len(sas)+len(brs)); err != nil {
		return nil, err
	}

	step("stuck-at-tsets", 1)
	saT := e.StuckAtTSets(sas)
	step("bridge-tsets", 2)
	brT := e.BridgeTSets(brs)
	brs, brT = sim.FilterDetectableBridges(brs, brT)
	step("universe", 3)

	return AssembleUniverse(c, sas, brs, saT, brT), nil
}

// AssembleUniverse binds precomputed fault tables and their T-sets to a
// circuit, producing the same CircuitUniverse FromCircuit would build had
// it computed them itself: fault names are rendered from the circuit, and
// Targets[i]/Untargeted[i] pair with StuckAt[i]/Bridges[i] in table order.
// It is the assembly tail of FromCircuitOptions, shared with the artifact
// store's universe codec so that a deserialized universe is
// indistinguishable from a freshly constructed one (DESIGN.md §11).
func AssembleUniverse(c *circuit.Circuit, sas []fault.StuckAt, brs []fault.Bridge, saT, brT []*bitset.Set) *CircuitUniverse {
	u := &CircuitUniverse{
		Universe: Universe{
			Size:       c.VectorSpaceSize(),
			Targets:    make([]Fault, len(sas)),
			Untargeted: make([]Fault, len(brs)),
		},
		Circuit: c,
		StuckAt: sas,
		Bridges: brs,
	}
	for i, f := range sas {
		u.Targets[i] = Fault{Name: f.Name(c), T: saT[i]}
	}
	for i, g := range brs {
		u.Untargeted[i] = Fault{Name: g.Name(c), T: brT[i]}
	}
	return u
}

// DetectableTargets returns the number of targets with non-empty T-sets.
func (u *Universe) DetectableTargets() int {
	n := 0
	for _, f := range u.Targets {
		if !f.T.IsEmpty() {
			n++
		}
	}
	return n
}
