// Package ndetect implements the paper's two analyses of n-detection test
// sets:
//
//   - the worst-case analysis (Section 2): nmin(g), the smallest n such that
//     EVERY n-detection test set for the target faults F is guaranteed to
//     detect the untargeted fault g, and
//   - the average-case analysis (Section 3): p(n,g), the probability that an
//     arbitrary n-detection test set detects g, estimated by constructing K
//     random n-detection test sets with the paper's Procedure 1, under
//     either Definition 1 (plain counting) or Definition 2 (similarity-
//     filtered counting, Section 4).
//
// Both analyses are functions of the exhaustive detection sets T(f) ⊆ U
// alone, so the package's model is an abstract Universe of named faults with
// bitset T-sets; FromCircuit binds a gate-level circuit to that model using
// the fault and sim packages.
package ndetect

import (
	"fmt"

	"ndetect/internal/bitset"
	"ndetect/internal/circuit"
	"ndetect/internal/fault"
	"ndetect/internal/sim"
)

// Fault is a named fault with its exhaustive detection set.
type Fault struct {
	Name string
	T    *bitset.Set
}

// N returns N(f) = |T(f)|.
func (f Fault) N() int { return f.T.Count() }

// Universe is an instance of the paper's analysis: a vector space, a target
// set F and an untargeted set G.
type Universe struct {
	Size       int // |U| = 2^inputs
	Targets    []Fault
	Untargeted []Fault
}

// Validate checks internal consistency.
func (u *Universe) Validate() error {
	for i, f := range u.Targets {
		if f.T == nil || f.T.Size() != u.Size {
			return fmt.Errorf("ndetect: target %d (%s) has T-set over wrong universe", i, f.Name)
		}
	}
	for i, g := range u.Untargeted {
		if g.T == nil || g.T.Size() != u.Size {
			return fmt.Errorf("ndetect: untargeted %d (%s) has T-set over wrong universe", i, g.Name)
		}
	}
	return nil
}

// CircuitUniverse is a Universe bound to the circuit and fault model it
// came from, keeping the model-tagged structural descriptors needed by
// Definition 2, by reports, and by the artifact codec.
type CircuitUniverse struct {
	Universe
	Circuit *circuit.Circuit
	// Model is the fault model the universe was built under.
	Model fault.Model
	// TargetFaults[i] is the structural fault behind Targets[i].
	TargetFaults []fault.Descriptor
	// UntargetedFaults[i] is the structural fault behind Untargeted[i].
	UntargetedFaults []fault.Descriptor
}

// StuckAt returns the structural stuck-at faults behind Targets, or nil
// when the model's targets are not single stuck-at faults over U (the
// shape Definition 2 requires — see fault.Model.Def2Capable).
func (u *CircuitUniverse) StuckAt() []fault.StuckAt {
	if u.Model == nil || !u.Model.Def2Capable() {
		return nil
	}
	out := make([]fault.StuckAt, len(u.TargetFaults))
	for i, d := range u.TargetFaults {
		out[i] = d.StuckAt()
	}
	return out
}

// Bridges returns the structural bridging faults behind Untargeted; it is
// only meaningful under the default model.
func (u *CircuitUniverse) Bridges() []fault.Bridge {
	out := make([]fault.Bridge, len(u.UntargetedFaults))
	for i, d := range u.UntargetedFaults {
		out[i] = d.Bridge()
	}
	return out
}

// Progress observes coarse stage transitions of a long-running analysis:
// stage names a phase, done/total count completed units within it (units
// differ per stage — universe construction counts stages, Procedure 1
// counts finished test sets, the partitioned pipeline counts parts).
// Callbacks are invoked serially and must be fast; they exist for live
// status reporting (the serving layer's job progress, DESIGN.md §10) and
// never influence results.
type Progress func(stage string, done, total int)

// AnalyzeOptions configures FromCircuitOptions. Workers only changes
// wall-clock time and Progress only observes — neither is part of the
// result identity (DESIGN.md §7): the universe built is byte-identical for
// every setting.
type AnalyzeOptions struct {
	// Workers bounds the simulation and T-set parallelism (0 = one worker
	// per CPU, 1 = the exact serial path).
	Workers int
	// Progress, when non-nil, observes the construction stages.
	Progress Progress
}

// FromCircuit builds the paper's experimental setup for a circuit:
//
//	F = collapsed single stuck-at faults (undetectable ones retained; they
//	    never influence either analysis, exactly as in the paper), and
//	G = detectable non-feedback four-way bridging faults between outputs of
//	    multi-input gates.
func FromCircuit(c *circuit.Circuit) (*CircuitUniverse, error) {
	return FromCircuitWorkers(c, 0)
}

// FromCircuitWorkers is FromCircuit with an explicit worker count for the
// exhaustive simulation and T-set construction (0 = one worker per CPU,
// 1 = serial). The universe built is identical for every worker count.
func FromCircuitWorkers(c *circuit.Circuit, workers int) (*CircuitUniverse, error) {
	return FromCircuitOptions(c, AnalyzeOptions{Workers: workers})
}

// FromCircuitOptions is FromCircuit with explicit options, reporting stage
// transitions to opts.Progress. It is BuildUniverse under the default
// model.
func FromCircuitOptions(c *circuit.Circuit, opts AnalyzeOptions) (*CircuitUniverse, error) {
	return BuildUniverse(c, fault.Default(), opts)
}

// BuildUniverse builds the analysis universe for a circuit under a fault
// model: the model enumerates both structural fault sets, the T-set
// builder registered in sim under the model's ID computes the detection
// bitsets against the compiled engine (dropping undetectable untargeted
// faults), and AssembleUniverse binds the result.
//
// The T-sets are streamed — only the per-fault result bitsets span the
// model's test-index space — so the construction is bounded by explicit
// memory-budget checks on those results (sim.MemoryBudget) instead of by
// materialized per-node values.
func BuildUniverse(c *circuit.Circuit, m fault.Model, opts AnalyzeOptions) (*CircuitUniverse, error) {
	build, err := sim.ModelTSetsFor(m.ID())
	if err != nil {
		return nil, err
	}
	done := 0
	step := func(stage string) {
		if opts.Progress != nil {
			opts.Progress(stage, done, 3)
		}
		done++
	}
	step("simulate")
	e, err := sim.RunWorkers(c, opts.Workers)
	if err != nil {
		return nil, err
	}
	targets := fault.EnumerateSet(m, c, fault.TargetSet)
	untargeted := fault.EnumerateSet(m, c, fault.UntargetedSet)
	tT, uT, kept, err := build(e, targets, untargeted, func(stage string) { step(stage) })
	if err != nil {
		return nil, err
	}
	step("universe")
	return AssembleUniverse(c, m, targets, kept, tT, uT)
}

// AssembleUniverse binds precomputed fault tables and their T-sets to a
// circuit under a model, producing the same CircuitUniverse BuildUniverse
// would build had it computed them itself: fault names are rendered by the
// model from the circuit, and Targets[i]/Untargeted[i] pair with
// TargetFaults[i]/UntargetedFaults[i] in table order. It is the assembly
// tail of BuildUniverse, shared with the artifact store's universe codec
// so that a deserialized universe is indistinguishable from a freshly
// constructed one (DESIGN.md §11).
func AssembleUniverse(c *circuit.Circuit, m fault.Model, targets, untargeted []fault.Descriptor, tT, uT []*bitset.Set) (*CircuitUniverse, error) {
	size, err := fault.SpaceSize(m, c)
	if err != nil {
		return nil, err
	}
	u := &CircuitUniverse{
		Universe: Universe{
			Size:       size,
			Targets:    make([]Fault, len(targets)),
			Untargeted: make([]Fault, len(untargeted)),
		},
		Circuit:          c,
		Model:            m,
		TargetFaults:     targets,
		UntargetedFaults: untargeted,
	}
	tp := m.Provider(fault.TargetSet)
	up := m.Provider(fault.UntargetedSet)
	for i, d := range targets {
		u.Targets[i] = Fault{Name: tp.Name(c, d), T: tT[i]}
	}
	for i, d := range untargeted {
		u.Untargeted[i] = Fault{Name: up.Name(c, d), T: uT[i]}
	}
	return u, nil
}

// DetectableTargets returns the number of targets with non-empty T-sets.
func (u *Universe) DetectableTargets() int {
	n := 0
	for _, f := range u.Targets {
		if !f.T.IsEmpty() {
			n++
		}
	}
	return n
}
