package report

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// sampleAnalysis builds a document exercising every section and edge the
// encoder must keep stable (-1 nmin, empty slices, zero options).
func sampleAnalysis() *Analysis {
	return &Analysis{
		Schema: AnalysisSchema,
		Kind:   "average",
		Circuit: CircuitInfo{
			Name: "c17", Hash: "abc123", Inputs: 5, Outputs: 2,
			Gates: 6, MultiInputGates: 6, Branches: 8, Depth: 3, VectorSpace: 32,
		},
		Options: Options{NMax: 10, K: 1000, Seed: 1, Definition: 1},
		WorstCase: &WorstCase{
			Targets: 22, DetectableTargets: 22, Untargeted: 8,
			Coverage:  []CoveragePoint{{N: 1, Pct: 75}, {N: 2, Pct: 100}},
			Tail:      []TailPoint{{N: 11, Count: 1, Pct: 12.5}},
			Unbounded: 1, MaxFinite: 4,
			NMin: []FaultNMin{{Name: "br(a,b)", NMin: 2}, {Name: "br(c,d)", NMin: UnboundedJSON}},
		},
		Average: &Average{
			Definition: 1, SubsetAbove: 11, Faults: 2,
			Thresholds: []ThresholdPoint{{P: 1.0, Count: 1}, {P: 0.0, Count: 2}},
			MinP:       0.25, MinPFault: "br(c,d)",
			ExpectedEscapes: 0.75, MeanSetSize: 12.5,
			P: []FaultP{{Name: "br(a,b)", P: 1}, {Name: "br(c,d)", P: 0.25}},
		},
	}
}

func TestAnalysisJSONRoundTrip(t *testing.T) {
	a := sampleAnalysis()
	enc := a.Encode()
	back, err := DecodeAnalysis(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, back) {
		t.Fatalf("round trip changed the document:\nbefore: %+v\nafter:  %+v", a, back)
	}
	// Encoding is deterministic: re-encoding the decoded document yields
	// the same bytes — the property the result cache is built on.
	if !bytes.Equal(enc, back.Encode()) {
		t.Fatal("re-encoding the decoded document changed the bytes")
	}
}

func TestAnalysisEncodeShape(t *testing.T) {
	enc := string(sampleAnalysis().Encode())
	if !strings.HasSuffix(enc, "\n") {
		t.Fatal("encoded document must end with a newline")
	}
	for _, want := range []string{
		`"schema": "ndetect.analysis/v1"`,
		`"kind": "average"`,
		`"hash": "abc123"`,
		`"nmin": -1`, // unbounded sentinel
		`"worst_case"`,
		`"average_case"`,
	} {
		if !strings.Contains(enc, want) {
			t.Errorf("encoded document missing %q:\n%s", want, enc)
		}
	}
	// The kind's unused sections and options must be absent, not null.
	for _, absent := range []string{`"partitioned"`, `"max_inputs"`, `"null"`} {
		if strings.Contains(enc, absent) {
			t.Errorf("encoded document should not contain %q:\n%s", absent, enc)
		}
	}
}

func TestPartitionedJSONRoundTrip(t *testing.T) {
	a := &Analysis{
		Schema:  AnalysisSchema,
		Kind:    "partitioned",
		Circuit: CircuitInfo{Name: "w64", Hash: "ff", Inputs: 64},
		Options: Options{MaxInputs: 16},
		Partitioned: &Partitioned{
			MaxInputs: 16,
			Parts: []PartInfo{{
				Outputs: []int{0, 1}, Inputs: 9, VectorSpace: 512, Gates: 12,
				Targets: 30, DetectableTargets: 29, Untargeted: 4, CoverageAt10Pct: 100,
			}},
			MergedFaults: 4,
			Coverage:     []CoveragePoint{{N: 10, Pct: 100}},
			Tail:         []TailPoint{{N: 11, Count: 0, Pct: 0}},
			Merged:       []FaultNMin{{Name: "br(x,y)", NMin: 3}},
		},
	}
	back, err := DecodeAnalysis(a.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, back) {
		t.Fatalf("round trip changed the document:\nbefore: %+v\nafter:  %+v", a, back)
	}
}

// Golden texts for the table formatters: the paper-layout rendering is part
// of the repo's stable surface (cmd/paper output, CI logs), so changes must
// be deliberate. The JSON encoding above is the machine-readable twin; this
// pins the human-readable one. Blank cells are padded with trailing spaces
// invisible in source literals, so comparisons trim line ends.
func trimLineEnds(s string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		lines[i] = strings.TrimRight(l, " ")
	}
	return strings.Join(lines, "\n")
}

const goldenTable2 = `Table 2: Worst-case percentages of detected faults (small n)
circuit      faults       ≤1       ≤2       ≤3       ≤4       ≤5      ≤10
lion             23   100.00
bbara           858    80.42    84.85    89.28    89.51    92.31    97.55
`

const goldenTable3 = `Table 3: Worst-case numbers of detected faults (large n)
circuit      faults         nmin≥100          nmin≥20          nmin≥11
dvram         14737      1256 (8.52)     1653 (11.22)     1653 (11.22)
`

func TestFormatTable2Golden(t *testing.T) {
	rows := []Table2Row{
		{Circuit: "lion", Faults: 23, Pct: [6]float64{100, 100, 100, 100, 100, 100}},
		{Circuit: "bbara", Faults: 858, Pct: [6]float64{80.42, 84.85, 89.28, 89.51, 92.31, 97.55}},
	}
	if got := trimLineEnds(FormatTable2(rows)); got != goldenTable2 {
		t.Fatalf("FormatTable2 drifted from golden:\n--- got:\n%q\n--- want:\n%q", got, goldenTable2)
	}
}

func TestFormatTable3Golden(t *testing.T) {
	rows := []Table3Row{{Circuit: "dvram", Faults: 14737, Ge100: 1256, Ge20: 1653, Ge11: 1653}}
	if got := trimLineEnds(FormatTable3(rows)); got != goldenTable3 {
		t.Fatalf("FormatTable3 drifted from golden:\n--- got:\n%q\n--- want:\n%q", got, goldenTable3)
	}
}

func TestFormatTable5And6Golden(t *testing.T) {
	t5 := trimLineEnds(FormatTable5([]Table5Row{
		{Circuit: "ex4", Faults: 82, Counts: [11]int{32, 82, 82, 82, 82, 82, 82, 82, 82, 82, 82}},
	}))
	wantT5 := `Table 5: Average-case probabilities of detection  p(10,gj) ≥
circuit     faults    1.0    0.9    0.8    0.7    0.6    0.5    0.4    0.3    0.2    0.1    0.0
ex4             82     32     82
`
	if t5 != wantT5 {
		t.Fatalf("FormatTable5 drifted from golden:\n--- got:\n%q\n--- want:\n%q", t5, wantT5)
	}

	t6 := trimLineEnds(FormatTable6([]Table6Row{{
		Circuit: "bbara", Faults: 21,
		Def1: [11]int{1, 8, 14, 16, 16, 18, 19, 20, 21, 21, 21},
		Def2: [11]int{10, 18, 19, 20, 21, 21, 21, 21, 21, 21, 21},
	}}))
	wantT6 := `Table 6: Average-case probabilities of detection under Definitions 1 and 2  p(10,gj) ≥
circuit     faults  def    1.0    0.9    0.8    0.7    0.6    0.5    0.4    0.3    0.2    0.1    0.0
bbara           21    1      1      8     14     16     16     18     19     20     21
                      2     10     18     19     20     21
`
	if t6 != wantT6 {
		t.Fatalf("FormatTable6 drifted from golden:\n--- got:\n%q\n--- want:\n%q", t6, wantT6)
	}
}
