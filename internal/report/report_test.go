package report

import (
	"strings"
	"testing"
)

func TestFormatTable2BlanksAfterSaturation(t *testing.T) {
	rows := []Table2Row{
		{Circuit: "lion", Faults: 23, Pct: [6]float64{100, 100, 100, 100, 100, 100}},
		{Circuit: "bbara", Faults: 858, Pct: [6]float64{80.42, 84.85, 89.28, 89.51, 92.31, 97.55}},
	}
	out := FormatTable2(rows)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, two rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	lionLine := lines[2]
	if strings.Count(lionLine, "100.00") != 1 {
		t.Fatalf("lion row should print 100.00 once then blanks: %q", lionLine)
	}
	if !strings.Contains(lines[3], "97.55") || !strings.Contains(lines[3], "80.42") {
		t.Fatalf("bbara row incomplete: %q", lines[3])
	}
}

func TestFormatTable3Percentages(t *testing.T) {
	rows := []Table3Row{{Circuit: "dvram", Faults: 14737, Ge100: 1256, Ge20: 1653, Ge11: 1653}}
	out := FormatTable3(rows)
	if !strings.Contains(out, "1256 (8.52)") {
		t.Fatalf("percentage missing or wrong:\n%s", out)
	}
	if !strings.Contains(out, "1653 (11.22)") {
		t.Fatalf("percentage missing or wrong:\n%s", out)
	}
}

func TestFormatTable3ZeroFaults(t *testing.T) {
	// Degenerate row must not divide by zero.
	out := FormatTable3([]Table3Row{{Circuit: "x", Faults: 0}})
	if !strings.Contains(out, "0 (0.00)") {
		t.Fatalf("zero-fault row mishandled:\n%s", out)
	}
}

func TestFormatTable5Blanks(t *testing.T) {
	rows := []Table5Row{
		{Circuit: "ex4", Faults: 82, Counts: [11]int{32, 82, 82, 82, 82, 82, 82, 82, 82, 82, 82}},
	}
	out := FormatTable5(rows)
	// After the count reaches 82 (threshold 0.9), later cells are blank.
	if strings.Count(out, "82") != 2 { // fault count column + first saturated cell
		t.Fatalf("expected blanks after saturation:\n%s", out)
	}
}

func TestFormatTable6TwoRowsPerCircuit(t *testing.T) {
	rows := []Table6Row{{
		Circuit: "bbara", Faults: 21,
		Def1: [11]int{1, 8, 14, 16, 16, 18, 19, 20, 21, 21, 21},
		Def2: [11]int{10, 18, 19, 20, 21, 21, 21, 21, 21, 21, 21},
	}}
	out := FormatTable6(rows)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want title+header+2 rows, got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], "bbara") || strings.Contains(lines[3], "bbara") {
		t.Fatalf("circuit name placement wrong:\n%s", out)
	}
}

func TestFormatFigure2(t *testing.T) {
	out := FormatFigure2("dvram", 100, []int{105, 129}, []int{9, 10}, 0)
	if !strings.Contains(out, "105") || !strings.Contains(out, "#") {
		t.Fatalf("histogram malformed:\n%s", out)
	}
	// Largest bucket gets the longest bar.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if strings.Count(lines[1], "#") >= strings.Count(lines[2], "#") {
		t.Fatalf("bar lengths not proportional:\n%s", out)
	}
}

func TestFormatFigure2Unbounded(t *testing.T) {
	out := FormatFigure2("x", 100, nil, nil, 5)
	if !strings.Contains(out, "∞") {
		t.Fatalf("unbounded bucket missing:\n%s", out)
	}
	empty := FormatFigure2("x", 100, nil, nil, 0)
	if !strings.Contains(empty, "no faults") {
		t.Fatalf("empty histogram message missing:\n%s", empty)
	}
}

func TestCSVOutputs(t *testing.T) {
	t2 := CSVTable2([]Table2Row{{Circuit: "a", Faults: 3, Pct: [6]float64{1, 2, 3, 4, 5, 6}}})
	if !strings.HasPrefix(t2, "circuit,faults,le1") || !strings.Contains(t2, "a,3,1.00,2.00") {
		t.Fatalf("CSVTable2:\n%s", t2)
	}
	t3 := CSVTable3([]Table3Row{{Circuit: "a", Faults: 3, Ge100: 1, Ge20: 2, Ge11: 3}})
	if !strings.Contains(t3, "a,3,1,2,3") {
		t.Fatalf("CSVTable3:\n%s", t3)
	}
	t5 := CSVTable5([]Table5Row{{Circuit: "a", Faults: 2, Counts: [11]int{1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2}}})
	if !strings.Contains(t5, "a,2,1,1,1,1,1,2") {
		t.Fatalf("CSVTable5:\n%s", t5)
	}
	// Line counts: header + one row each.
	for name, s := range map[string]string{"t2": t2, "t3": t3, "t5": t5} {
		if got := strings.Count(s, "\n"); got != 2 {
			t.Fatalf("%s has %d lines, want 2", name, got)
		}
	}
}
