package report

import "encoding/json"

// Machine-readable analysis results.
//
// Analysis is the JSON document both `cmd/ndetect -json` and the ndetectd
// serving layer emit — one encoder, so CLI and daemon outputs are diffable
// byte for byte. Encoding is deterministic: field order is struct order,
// slices carry explicit ordering, and there are no maps or timestamps. The
// serving layer relies on that determinism for its golden-stability
// guarantee (a cache hit is byte-identical to a cold run, DESIGN.md §10).
//
// nmin values use -1 for "unbounded" (no n-detection test set is ever
// guaranteed to detect the fault) — math.MaxInt would survive a JSON round
// trip but reads as noise.

// AnalysisSchema identifies the document layout; bump on incompatible
// change.
const AnalysisSchema = "ndetect.analysis/v1"

// UnboundedJSON is the JSON encoding of an unbounded nmin.
const UnboundedJSON = -1

// Analysis is one circuit's complete analysis result.
type Analysis struct {
	Schema  string      `json:"schema"`
	Kind    string      `json:"kind"` // "worstcase", "average" or "partitioned"
	Circuit CircuitInfo `json:"circuit"`
	Options Options     `json:"options"`

	// Exactly the sections the kind implies: worstcase fills WorstCase,
	// average fills WorstCase and Average, partitioned fills Partitioned.
	WorstCase   *WorstCase   `json:"worst_case,omitempty"`
	Average     *Average     `json:"average_case,omitempty"`
	Partitioned *Partitioned `json:"partitioned,omitempty"`
}

// CircuitInfo identifies and summarizes the analysed circuit. Hash is the
// canonical content hash (circuit.Hash) — the cache identity; Name is
// presentation only.
type CircuitInfo struct {
	Name            string `json:"name"`
	Hash            string `json:"hash"`
	Inputs          int    `json:"inputs"`
	Outputs         int    `json:"outputs"`
	Gates           int    `json:"gates"`
	MultiInputGates int    `json:"multi_input_gates"`
	Branches        int    `json:"branches"`
	Depth           int    `json:"depth"`
	VectorSpace     int    `json:"vector_space"` // |U| = 2^inputs; 0 when it overflows int
}

// Options records the result-identity options of the run (DESIGN.md §7):
// every field here changes results, which is why the serving layer keys its
// cache on (circuit hash, kind, these options) — and why Workers, which
// only changes wall-clock time, is absent.
type Options struct {
	// FaultModel is the registered fault model the universe was built
	// under; empty means the default model (fault.DefaultModelID), so
	// default-model documents are byte-identical to pre-registry ones.
	FaultModel string `json:"fault_model,omitempty"`

	NMax       int   `json:"nmax,omitempty"`       // average
	K          int   `json:"k,omitempty"`          // average
	Seed       int64 `json:"seed,omitempty"`       // average
	Definition int   `json:"definition,omitempty"` // average: 1 or 2
	Ge11Limit  int   `json:"ge11_limit,omitempty"` // average: cap on the analysed subset (0 = none)
	MaxInputs  int   `json:"max_inputs,omitempty"` // partitioned: per-part input limit
}

// CoveragePoint is one "nmin(g) ≤ n" column: the fraction of untargeted
// faults guaranteed by any n-detection test set.
type CoveragePoint struct {
	N   int     `json:"n"`
	Pct float64 `json:"pct"`
}

// TailPoint is one "nmin(g) ≥ n" column.
type TailPoint struct {
	N     int     `json:"n"`
	Count int     `json:"count"`
	Pct   float64 `json:"pct"`
}

// FaultNMin is one untargeted fault's worst-case verdict.
type FaultNMin struct {
	Name string `json:"name"`
	NMin int    `json:"nmin"` // -1 = unbounded
}

// WorstCase is the Section 2 analysis of one circuit: the machine-readable
// form of the Table 2 and Table 3 rows plus the full per-fault verdict.
type WorstCase struct {
	Targets           int `json:"targets"`
	DetectableTargets int `json:"detectable_targets"`
	Untargeted        int `json:"untargeted"`

	Coverage  []CoveragePoint `json:"coverage"` // at NMinColumns
	Tail      []TailPoint     `json:"tail"`     // at Table3Columns
	Unbounded int             `json:"unbounded"`
	MaxFinite int             `json:"max_finite"`

	// NMin lists every untargeted fault in universe index order.
	NMin []FaultNMin `json:"nmin"`
}

// ThresholdPoint is one probability-ladder column of Tables 5/6: the number
// of analysed faults with p(nmax, g) ≥ P.
type ThresholdPoint struct {
	P     float64 `json:"p"`
	Count int     `json:"count"`
}

// FaultP is one fault's estimated detection probability at n = nmax.
type FaultP struct {
	Name string  `json:"name"`
	P    float64 `json:"p"`
}

// Average is the Section 3 analysis: Procedure 1 statistics over the
// faults the worst case does not settle (nmin > nmax), optionally capped
// by Ge11Limit with even sampling across the nmin-sorted list.
type Average struct {
	Definition int `json:"definition"` // 1 or 2
	// SubsetAbove is the nmin threshold defining the analysed subset
	// (faults with nmin > nmax, i.e. ≥ SubsetAbove).
	SubsetAbove int `json:"subset_above"`
	Faults      int `json:"faults"` // subset size after the cap

	Thresholds      []ThresholdPoint `json:"thresholds"` // at report.Thresholds
	MinP            float64          `json:"min_p"`
	MinPFault       string           `json:"min_p_fault"`
	ExpectedEscapes float64          `json:"expected_escapes"`
	MeanSetSize     float64          `json:"mean_set_size"`

	// P lists p(nmax, g) for every analysed fault in subset order.
	P []FaultP `json:"p"`
}

// PartInfo is one part of the partitioned pipeline, in Split order.
type PartInfo struct {
	// Outputs are the original primary-output positions the part covers.
	Outputs           []int   `json:"outputs"`
	Inputs            int     `json:"inputs"`
	VectorSpace       int     `json:"vector_space"`
	Gates             int     `json:"gates"`
	Targets           int     `json:"targets"`
	DetectableTargets int     `json:"detectable_targets"`
	Untargeted        int     `json:"untargeted"`
	CoverageAt10Pct   float64 `json:"coverage_at_10_pct"`
}

// Partitioned is the Section 4 pipeline result: per-part summaries plus
// the merged worst-case table (per-part bounds; see DESIGN.md §8 for what
// the merged numbers mean).
type Partitioned struct {
	MaxInputs int        `json:"max_inputs"`
	Parts     []PartInfo `json:"parts"`

	MergedFaults int             `json:"merged_faults"`
	Coverage     []CoveragePoint `json:"coverage"`
	Tail         []TailPoint     `json:"tail"`
	Unbounded    int             `json:"unbounded"`
	MaxFinite    int             `json:"max_finite"`

	// Merged lists every merged bridging fault in sorted name order.
	Merged []FaultNMin `json:"merged"`
}

// Encode renders the document as indented JSON with a trailing newline —
// the exact bytes served, cached, and diffed. Encoding never fails: the
// structs contain only JSON-encodable fields.
func (a *Analysis) Encode() []byte {
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		panic("report: Analysis encoding failed: " + err.Error())
	}
	return append(b, '\n')
}

// DecodeAnalysis parses an encoded Analysis document.
func DecodeAnalysis(data []byte) (*Analysis, error) {
	var a Analysis
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, err
	}
	return &a, nil
}
