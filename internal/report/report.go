// Package report renders the paper's tables and figure from computed
// analysis results, in layouts mirroring the originals, plus CSV export for
// downstream processing.
package report

import (
	"fmt"
	"strings"
)

// NMinColumns are the n values of Table 2's "nmin(gj) ≤" columns.
var NMinColumns = []int{1, 2, 3, 4, 5, 10}

// Table3Columns are the thresholds of Table 3's "nmin(gj) ≥" columns.
var Table3Columns = []int{100, 20, 11}

// Thresholds is the probability ladder of Tables 5 and 6.
var Thresholds = []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.0}

// Table2Row is one circuit's worst-case coverage row.
type Table2Row struct {
	Circuit string
	Faults  int
	Pct     [6]float64 // percentage of faults with nmin ≤ 1,2,3,4,5,10
}

// FormatTable2 renders Table 2: "Worst-case percentages of detected faults
// (small n)". Like the paper, columns after the first 100.00 are left blank.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: Worst-case percentages of detected faults (small n)\n")
	fmt.Fprintf(&b, "%-10s %8s", "circuit", "faults")
	for _, n := range NMinColumns {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("≤%d", n))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d", r.Circuit, r.Faults)
		done := false
		for i := range NMinColumns {
			if done {
				fmt.Fprintf(&b, " %8s", "")
				continue
			}
			fmt.Fprintf(&b, " %8.2f", r.Pct[i])
			if r.Pct[i] >= 100-1e-9 {
				done = true
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table3Row is one circuit's worst-case tail row.
type Table3Row struct {
	Circuit           string
	Faults            int
	Ge100, Ge20, Ge11 int
}

// FormatTable3 renders Table 3: "Worst-case numbers of detected faults
// (large n)", with percentages in parentheses as in the paper.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3: Worst-case numbers of detected faults (large n)\n")
	fmt.Fprintf(&b, "%-10s %8s %16s %16s %16s\n", "circuit", "faults", "nmin≥100", "nmin≥20", "nmin≥11")
	for _, r := range rows {
		cell := func(c int) string {
			return fmt.Sprintf("%d (%.2f)", c, 100*float64(c)/float64(max(r.Faults, 1)))
		}
		fmt.Fprintf(&b, "%-10s %8d %16s %16s %16s\n",
			r.Circuit, r.Faults, cell(r.Ge100), cell(r.Ge20), cell(r.Ge11))
	}
	return b.String()
}

// Table5Row is one circuit's average-case row: counts of faults with
// p(10,g) at or above each threshold.
type Table5Row struct {
	Circuit string
	Faults  int
	Counts  [11]int
}

// FormatTable5 renders Table 5: "Average-case probabilities of detection".
// Mirroring the paper, once a column reaches the full fault count the
// remaining cells are blank ("we do not enter a number for a given
// probability if all the faults have a higher probability of detection").
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	b.WriteString("Table 5: Average-case probabilities of detection  p(10,gj) ≥\n")
	fmt.Fprintf(&b, "%-10s %7s", "circuit", "faults")
	for _, th := range Thresholds {
		fmt.Fprintf(&b, " %6.1f", th)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %7d", r.Circuit, r.Faults)
		b.WriteString(formatThresholdCells(r.Counts[:], r.Faults))
		b.WriteByte('\n')
	}
	return b.String()
}

// formatThresholdCells renders cumulative threshold counts, blanking cells
// after the count saturates at the total.
func formatThresholdCells(counts []int, total int) string {
	var b strings.Builder
	done := false
	for _, c := range counts {
		if done {
			fmt.Fprintf(&b, " %6s", "")
			continue
		}
		fmt.Fprintf(&b, " %6d", c)
		if c >= total {
			done = true
		}
	}
	return b.String()
}

// Table6Row is one circuit's Definition 1 vs Definition 2 comparison.
type Table6Row struct {
	Circuit string
	Faults  int
	Def1    [11]int
	Def2    [11]int
}

// FormatTable6 renders Table 6: "Average-case probabilities of detection
// under Definitions 1 and 2" — two rows per circuit as in the paper.
func FormatTable6(rows []Table6Row) string {
	var b strings.Builder
	b.WriteString("Table 6: Average-case probabilities of detection under Definitions 1 and 2  p(10,gj) ≥\n")
	fmt.Fprintf(&b, "%-10s %7s %4s", "circuit", "faults", "def")
	for _, th := range Thresholds {
		fmt.Fprintf(&b, " %6.1f", th)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %7d %4d%s\n", r.Circuit, r.Faults, 1, formatThresholdCells(r.Def1[:], r.Faults))
		fmt.Fprintf(&b, "%-10s %7s %4d%s\n", "", "", 2, formatThresholdCells(r.Def2[:], r.Faults))
	}
	return b.String()
}

// FormatFigure2 renders the distribution of nmin(g) values at or above a
// cutoff as a horizontal ASCII histogram — the paper's Figure 2 (shown
// there for dvram with cutoff 100). unbounded is the count of faults with
// no finite guarantee, reported as its own bucket.
func FormatFigure2(circuit string, cutoff int, values, counts []int, unbounded int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: Distribution of nmin(gj) for %s (nmin ≥ %d)\n", circuit, cutoff)
	maxCount := 1
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if unbounded > maxCount {
		maxCount = unbounded
	}
	const width = 50
	bar := func(c int) string {
		n := c * width / maxCount
		if c > 0 && n == 0 {
			n = 1
		}
		return strings.Repeat("#", n)
	}
	for i, v := range values {
		fmt.Fprintf(&b, "%7d | %-*s %d\n", v, width, bar(counts[i]), counts[i])
	}
	if unbounded > 0 {
		fmt.Fprintf(&b, "%7s | %-*s %d\n", "∞", width, bar(unbounded), unbounded)
	}
	if len(values) == 0 && unbounded == 0 {
		fmt.Fprintf(&b, "  (no faults with nmin ≥ %d)\n", cutoff)
	}
	return b.String()
}

// CSVTable2 renders Table 2 rows as CSV.
func CSVTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("circuit,faults,le1,le2,le3,le4,le5,le10\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%d", r.Circuit, r.Faults)
		for _, p := range r.Pct {
			fmt.Fprintf(&b, ",%.2f", p)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSVTable3 renders Table 3 rows as CSV.
func CSVTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("circuit,faults,ge100,ge20,ge11\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d\n", r.Circuit, r.Faults, r.Ge100, r.Ge20, r.Ge11)
	}
	return b.String()
}

// CSVTable5 renders Table 5 rows as CSV.
func CSVTable5(rows []Table5Row) string {
	var b strings.Builder
	b.WriteString("circuit,faults,p1.0,p0.9,p0.8,p0.7,p0.6,p0.5,p0.4,p0.3,p0.2,p0.1,p0.0\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%d", r.Circuit, r.Faults)
		for _, c := range r.Counts {
			fmt.Fprintf(&b, ",%d", c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
