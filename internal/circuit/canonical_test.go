package circuit

import (
	"strings"
	"testing"
)

// c17 with the gate statements in reverse order (forward references are
// legal in .bench) and declarations interleaved differently. Same circuit.
const c17Reordered = `
23 = NAND(16, 19)
22 = NAND(10, 16)
OUTPUT(22)
OUTPUT(23)
19 = NAND(11, 7)
16 = NAND(2, 11)
11 = NAND(3, 6)
10 = NAND(1, 3)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
`

func TestHashInvariantUnderStatementReordering(t *testing.T) {
	orig, err := EmbeddedBench("c17")
	if err != nil {
		t.Fatal(err)
	}
	reordered, err := ParseBenchString("c17-shuffled", c17Reordered)
	if err != nil {
		t.Fatal(err)
	}
	if Canonical(orig) != Canonical(reordered) {
		t.Fatalf("canonical forms differ:\n--- declaration order:\n%s--- reordered:\n%s",
			Canonical(orig), Canonical(reordered))
	}
	if Hash(orig) != Hash(reordered) {
		t.Fatalf("Hash not invariant under statement reordering: %s vs %s",
			Hash(orig), Hash(reordered))
	}
}

func TestHashIgnoresCircuitName(t *testing.T) {
	a, err := ParseBenchString("one-name", c17Reordered)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseBenchString("another-name", c17Reordered)
	if err != nil {
		t.Fatal(err)
	}
	if Hash(a) != Hash(b) {
		t.Fatal("Hash should not depend on the circuit name")
	}
}

func TestHashSensitivity(t *testing.T) {
	base, err := EmbeddedBench("c17")
	if err != nil {
		t.Fatal(err)
	}

	// A different gate function is a different circuit.
	differentGate, err := ParseBenchString("c17", strings.Replace(c17Reordered,
		"10 = NAND(1, 3)", "10 = NOR(1, 3)", 1))
	if err != nil {
		t.Fatal(err)
	}
	if Hash(base) == Hash(differentGate) {
		t.Fatal("Hash should change when a gate kind changes")
	}

	// Reordering INPUT declarations renumbers the vectors of U (seeded
	// sampling identity), so it must change the hash.
	swappedInputs, err := ParseBenchString("c17", strings.Replace(c17Reordered,
		"INPUT(1)\nINPUT(2)", "INPUT(2)\nINPUT(1)", 1))
	if err != nil {
		t.Fatal(err)
	}
	if Hash(base) == Hash(swappedInputs) {
		t.Fatal("Hash should depend on input declaration order")
	}

	// Reordering OUTPUT declarations changes partition packing order, so it
	// must change the hash too.
	swappedOutputs, err := ParseBenchString("c17", strings.Replace(c17Reordered,
		"OUTPUT(22)\nOUTPUT(23)", "OUTPUT(23)\nOUTPUT(22)", 1))
	if err != nil {
		t.Fatal(err)
	}
	if Hash(base) == Hash(swappedOutputs) {
		t.Fatal("Hash should depend on output declaration order")
	}
}

func TestCanonicalElidesBranches(t *testing.T) {
	c, err := EmbeddedBench("c17")
	if err != nil {
		t.Fatal(err)
	}
	canon := Canonical(c)
	if strings.Contains(canon, "~") {
		t.Fatalf("canonical form leaks generated branch names:\n%s", canon)
	}
	if strings.Contains(canon, "branch") {
		t.Fatalf("canonical form contains branch nodes:\n%s", canon)
	}
}

// Canonicalize maps every statement ordering of the same circuit onto one
// structurally identical circuit — same node IDs, same branch names —
// which is what lets hash-equal circuits produce byte-identical analysis
// documents. It is a fixed point and preserves the hash.
func TestCanonicalizeNormalizesNodeOrder(t *testing.T) {
	orig, err := EmbeddedBench("c17")
	if err != nil {
		t.Fatal(err)
	}
	reordered, err := ParseBenchString("c17", c17Reordered)
	if err != nil {
		t.Fatal(err)
	}
	// The as-parsed circuits differ structurally (node IDs follow
	// statement order) even though they hash the same...
	if orig.WriteString() != reordered.WriteString() {
		co, err := Canonicalize(orig)
		if err != nil {
			t.Fatal(err)
		}
		cr, err := Canonicalize(reordered)
		if err != nil {
			t.Fatal(err)
		}
		// ...and canonicalization collapses the difference completely.
		if co.WriteString() != cr.WriteString() {
			t.Fatalf("canonicalized circuits still differ:\n%s---\n%s", co.WriteString(), cr.WriteString())
		}
		for i, n := range co.Nodes {
			m := cr.Nodes[i]
			if n.Name != m.Name || n.Kind != m.Kind || n.Level != m.Level {
				t.Fatalf("node %d differs after canonicalization: %+v vs %+v", i, n, m)
			}
		}
	} else {
		t.Fatal("test premise broken: reordered parse should differ structurally")
	}

	// Fixed point: canonicalizing twice changes nothing, and the hash is
	// preserved throughout.
	once, err := Canonicalize(orig)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := Canonicalize(once)
	if err != nil {
		t.Fatal(err)
	}
	if once.WriteString() != twice.WriteString() {
		t.Fatal("Canonicalize is not a fixed point")
	}
	if Hash(once) != Hash(orig) {
		t.Fatal("Canonicalize changed the hash")
	}
}

// Canonicalize preserves semantics: same inputs, outputs, and function
// (spot-checked by exhaustive evaluation of the 5-input c17).
func TestCanonicalizePreservesFunction(t *testing.T) {
	orig, err := EmbeddedBench("c17")
	if err != nil {
		t.Fatal(err)
	}
	canon, err := Canonicalize(orig)
	if err != nil {
		t.Fatal(err)
	}
	if canon.NumInputs() != orig.NumInputs() || canon.NumOutputs() != orig.NumOutputs() {
		t.Fatalf("interface changed: %d/%d vs %d/%d",
			canon.NumInputs(), canon.NumOutputs(), orig.NumInputs(), orig.NumOutputs())
	}
	for v := 0; v < orig.VectorSpaceSize(); v++ {
		a := orig.Eval(uint64(v))
		b := canon.Eval(uint64(v))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("output %d differs at vector %d", i, v)
			}
		}
	}
}

// The canonical form survives a round trip through the text netlist writer:
// Write → Parse yields an isomorphic circuit with the same hash (Write
// serializes in topological node order, which is exactly the kind of
// order difference Canonical must absorb).
func TestHashStableAcrossWriteParseRoundTrip(t *testing.T) {
	c, err := EmbeddedBench("s27")
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := ParseString(c.WriteString())
	if err != nil {
		t.Fatal(err)
	}
	if Hash(c) != Hash(reparsed) {
		t.Fatalf("hash changed across Write/Parse round trip:\n--- original:\n%s--- reparsed:\n%s",
			Canonical(c), Canonical(reparsed))
	}
}
