package circuit

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The text netlist format accepted by Parse:
//
//	# comment
//	circuit adder
//	input a b cin
//	output sum cout
//	gate xor t1 a b
//	gate xor sum t1 cin
//	gate and t2 a b
//	gate and t3 t1 cin
//	gate or cout t2 t3
//	const zero 0
//
// Lines are independent statements; "gate KIND OUT IN..." declares a gate.
// Signals must be declared before use. Branch nodes are never written — they
// are a structural artifact recreated by Build.

// Parse reads a circuit in the text netlist format.
func Parse(r io.Reader) (*Circuit, error) {
	var b *Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	outputs := []string{}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "circuit":
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: circuit takes one name", lineNo)
			}
			if b != nil {
				return nil, fmt.Errorf("line %d: duplicate circuit statement", lineNo)
			}
			b = NewBuilder(fields[1])
		case "input":
			if b == nil {
				return nil, fmt.Errorf("line %d: statement before circuit", lineNo)
			}
			if len(fields) < 2 {
				return nil, fmt.Errorf("line %d: input needs at least one name", lineNo)
			}
			for _, n := range fields[1:] {
				b.Input(n)
			}
		case "output":
			if b == nil {
				return nil, fmt.Errorf("line %d: statement before circuit", lineNo)
			}
			if len(fields) < 2 {
				return nil, fmt.Errorf("line %d: output needs at least one name", lineNo)
			}
			outputs = append(outputs, fields[1:]...)
		case "gate":
			if b == nil {
				return nil, fmt.Errorf("line %d: statement before circuit", lineNo)
			}
			if len(fields) < 4 {
				return nil, fmt.Errorf("line %d: gate needs KIND OUT IN...", lineNo)
			}
			kind, ok := KindFromString(fields[1])
			if !ok {
				return nil, fmt.Errorf("line %d: unknown gate kind %q", lineNo, fields[1])
			}
			b.Gate(kind, fields[2], fields[3:]...)
		case "const":
			if b == nil {
				return nil, fmt.Errorf("line %d: statement before circuit", lineNo)
			}
			if len(fields) != 3 || (fields[2] != "0" && fields[2] != "1") {
				return nil, fmt.Errorf("line %d: const needs NAME 0|1", lineNo)
			}
			b.Const(fields[1], fields[2] == "1")
		default:
			return nil, fmt.Errorf("line %d: unknown statement %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("empty netlist: no circuit statement")
	}
	for _, o := range outputs {
		b.Output(o)
	}
	return b.Build()
}

// ParseString is Parse over a string.
func ParseString(s string) (*Circuit, error) {
	return Parse(strings.NewReader(s))
}

// Write serializes the circuit in the text netlist format. Branch nodes are
// elided: gate fanins are written in terms of their stems, so that parsing
// the output reconstructs an isomorphic circuit.
func (c *Circuit) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "circuit %s\n", c.Name)

	stemName := func(id int) string {
		n := c.Nodes[id]
		for n.Kind == Branch {
			n = c.Nodes[n.Stem]
		}
		return n.Name
	}

	names := make([]string, 0, len(c.Inputs))
	for _, id := range c.Inputs {
		names = append(names, c.Nodes[id].Name)
	}
	fmt.Fprintf(bw, "input %s\n", strings.Join(names, " "))

	names = names[:0]
	for _, id := range c.Outputs {
		names = append(names, stemName(id))
	}
	fmt.Fprintf(bw, "output %s\n", strings.Join(names, " "))

	for _, id := range c.order {
		n := c.Nodes[id]
		switch n.Kind {
		case Input, Branch:
			continue
		case Const0:
			fmt.Fprintf(bw, "const %s 0\n", n.Name)
		case Const1:
			fmt.Fprintf(bw, "const %s 1\n", n.Name)
		default:
			fins := make([]string, len(n.Fanin))
			for i, f := range n.Fanin {
				fins[i] = stemName(f)
			}
			fmt.Fprintf(bw, "gate %s %s %s\n", n.Kind, n.Name, strings.Join(fins, " "))
		}
	}
	return bw.Flush()
}

// WriteString serializes the circuit to a string.
func (c *Circuit) WriteString() string {
	var sb strings.Builder
	if err := c.Write(&sb); err != nil {
		// strings.Builder never errors; keep the signature honest anyway.
		panic(err)
	}
	return sb.String()
}
