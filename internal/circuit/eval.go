package circuit

import "fmt"

// Eval computes all node values for a single input vector, returning a slice
// indexed by node ID. The vector's bit i (LSB-first... see VectorBit) supplies
// input i in declaration order. Eval is the reference single-vector
// evaluator; the bit-parallel simulator in package sim is the fast path and
// is cross-checked against Eval in tests.
func (c *Circuit) Eval(vector uint64) []bool {
	vals := make([]bool, len(c.Nodes))
	c.EvalInto(vector, vals)
	return vals
}

// EvalInto is Eval writing into a caller-provided slice of length NumNodes.
func (c *Circuit) EvalInto(vector uint64, vals []bool) {
	if len(vals) != len(c.Nodes) {
		panic(fmt.Sprintf("circuit: EvalInto buffer length %d, want %d", len(vals), len(c.Nodes)))
	}
	for i, id := range c.Inputs {
		vals[id] = VectorBit(vector, i, len(c.Inputs))
	}
	for _, id := range c.order {
		n := c.Nodes[id]
		switch n.Kind {
		case Input:
			// set above
		case Const0:
			vals[id] = false
		case Const1:
			vals[id] = true
		case Buf, Branch:
			vals[id] = vals[n.Fanin[0]]
		case Not:
			vals[id] = !vals[n.Fanin[0]]
		case And, Nand:
			v := true
			for _, f := range n.Fanin {
				v = v && vals[f]
			}
			if n.Kind == Nand {
				v = !v
			}
			vals[id] = v
		case Or, Nor:
			v := false
			for _, f := range n.Fanin {
				v = v || vals[f]
			}
			if n.Kind == Nor {
				v = !v
			}
			vals[id] = v
		case Xor, Xnor:
			v := false
			for _, f := range n.Fanin {
				v = v != vals[f]
			}
			if n.Kind == Xnor {
				v = !v
			}
			vals[id] = v
		default:
			panic(fmt.Sprintf("circuit: unknown kind %v", n.Kind))
		}
	}
}

// VectorBit extracts the value of input index (0-based, in declaration order)
// from the decimal representation of an input vector with numInputs inputs.
//
// The paper writes vectors as decimal numbers whose most significant bit is
// the first input: for the 4-input example circuit, vector 6 = 0110 assigns
// input 1 ← 0, input 2 ← 1, input 3 ← 1, input 4 ← 0. VectorBit follows that
// convention: input 0 is the MSB.
func VectorBit(vector uint64, index, numInputs int) bool {
	shift := uint(numInputs - 1 - index)
	return (vector>>shift)&1 == 1
}

// SetVectorBit returns vector with the value of input index set to v, using
// the same MSB-first convention as VectorBit.
func SetVectorBit(vector uint64, index, numInputs int, v bool) uint64 {
	shift := uint(numInputs - 1 - index)
	if v {
		return vector | 1<<shift
	}
	return vector &^ (1 << shift)
}

// OutputsOf extracts the primary output values from a full node-value slice.
func (c *Circuit) OutputsOf(vals []bool) []bool {
	out := make([]bool, len(c.Outputs))
	for i, o := range c.Outputs {
		out[i] = vals[o]
	}
	return out
}
