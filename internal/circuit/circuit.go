// Package circuit models gate-level combinational netlists.
//
// A Circuit is a DAG of nodes. Every signal that can carry a stuck-at fault —
// a primary input, a gate output, or a fanout branch — is a Node. Fanout
// branches are first-class nodes (inserted by Normalize) so that the fault
// universe of package fault matches the classical line-oriented stuck-at
// model: a stem and each of its branches are distinct fault sites.
//
// The package provides a builder API, structural validation, levelization
// (topological ordering for event-free forward simulation), reachability
// queries (used to exclude feedback bridging faults), a text netlist format
// and DOT export.
package circuit

import (
	"fmt"
	"math/bits"
	"sort"
)

// Kind identifies the function of a node.
type Kind uint8

// Node kinds. Branch nodes are inserted by Normalize; user-built circuits use
// the remaining kinds.
const (
	Input Kind = iota
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
	Branch
	Const0
	Const1
)

var kindNames = map[Kind]string{
	Input:  "input",
	Buf:    "buf",
	Not:    "not",
	And:    "and",
	Nand:   "nand",
	Or:     "or",
	Nor:    "nor",
	Xor:    "xor",
	Xnor:   "xnor",
	Branch: "branch",
	Const0: "const0",
	Const1: "const1",
}

// String returns the lower-case mnemonic used by the text netlist format.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindFromString parses a gate mnemonic. It accepts every Kind except Branch
// (branches are structural, never written by users).
func KindFromString(s string) (Kind, bool) {
	for k, name := range kindNames {
		if name == s && k != Branch {
			return k, true
		}
	}
	return 0, false
}

// MinFanin returns the minimum legal fanin count for the kind.
func (k Kind) MinFanin() int {
	switch k {
	case Input, Const0, Const1:
		return 0
	case Buf, Not, Branch:
		return 1
	default:
		return 2
	}
}

// MaxFanin returns the maximum legal fanin count (or -1 for unbounded).
func (k Kind) MaxFanin() int {
	switch k {
	case Input, Const0, Const1:
		return 0
	case Buf, Not, Branch:
		return 1
	default:
		return -1
	}
}

// Node is a signal in the netlist.
type Node struct {
	ID     int
	Kind   Kind
	Name   string
	Fanin  []int // IDs of driving nodes, in pin order
	Fanout []int // IDs of driven nodes (computed by finalize)
	Level  int   // topological level: Inputs/Consts at 0 (computed)

	// Stem is the ID of the fanout stem for Branch nodes, -1 otherwise.
	Stem int
}

// IsGateOutput reports whether the node is the output of a logic gate
// (anything that is not an input, constant or branch).
func (n *Node) IsGateOutput() bool {
	switch n.Kind {
	case Input, Branch, Const0, Const1:
		return false
	}
	return true
}

// IsMultiInputGateOutput reports whether the node is the output of a gate
// with two or more inputs. The paper's untargeted fault universe consists of
// bridging faults between such nodes.
func (n *Node) IsMultiInputGateOutput() bool {
	return n.IsGateOutput() && len(n.Fanin) >= 2
}

// Circuit is an immutable-after-finalize combinational netlist.
type Circuit struct {
	Name    string
	Nodes   []*Node
	Inputs  []int // node IDs of primary inputs, in declaration order
	Outputs []int // node IDs observed as primary outputs, in declaration order

	byName     map[string]int
	order      []int // topological order of node IDs (computed by finalize)
	levelOrder []int // order sorted by (Level, ID) (computed by finalize)
}

// NumInputs returns the number of primary inputs.
func (c *Circuit) NumInputs() int { return len(c.Inputs) }

// NumOutputs returns the number of primary outputs.
func (c *Circuit) NumOutputs() int { return len(c.Outputs) }

// NumNodes returns the number of nodes (signals) including branches.
func (c *Circuit) NumNodes() int { return len(c.Nodes) }

// NumGates returns the number of logic gates (excluding inputs, constants and
// branches).
func (c *Circuit) NumGates() int {
	n := 0
	for _, nd := range c.Nodes {
		if nd.IsGateOutput() {
			n++
		}
	}
	return n
}

// VectorSpaceSize returns |U| = 2^NumInputs, the size of the exhaustive input
// space the analysis enumerates, or 0 when 2^NumInputs overflows int —
// exactly the circuits that must go through the partition package instead.
func (c *Circuit) VectorSpaceSize() int {
	m := c.NumInputs()
	if m >= bits.UintSize-1 {
		return 0
	}
	return 1 << uint(m)
}

// Node returns the node with the given ID.
func (c *Circuit) Node(id int) *Node { return c.Nodes[id] }

// NodeByName returns the node with the given name.
func (c *Circuit) NodeByName(name string) (*Node, bool) {
	id, ok := c.byName[name]
	if !ok {
		return nil, false
	}
	return c.Nodes[id], true
}

// TopoOrder returns node IDs in a topological order (drivers before driven).
func (c *Circuit) TopoOrder() []int { return c.order }

// LevelOrder returns node IDs sorted by (Level, ID): a topological order
// that groups nodes into levels. It is the canonical instruction schedule
// the engine compiler lowers to — all of a level's gates are contiguous, so
// a levelized program walks the netlist front to back exactly once.
func (c *Circuit) LevelOrder() []int { return c.levelOrder }

// ConsumerCounts returns, for every node, the number of times its value is
// read: once per gate input pin it drives plus once per primary-output
// observation. The engine's register allocator retires a node's register
// after its last read — the liveness information behind "live registers ≪
// nodes" for output-directed programs.
func (c *Circuit) ConsumerCounts() []int {
	counts := make([]int, len(c.Nodes))
	for _, n := range c.Nodes {
		for _, f := range n.Fanin {
			counts[f]++
		}
	}
	for _, o := range c.Outputs {
		counts[o]++
	}
	return counts
}

// MaxLevel returns the largest node level (circuit depth).
func (c *Circuit) MaxLevel() int {
	m := 0
	for _, n := range c.Nodes {
		if n.Level > m {
			m = n.Level
		}
	}
	return m
}

// Builder incrementally constructs a Circuit. Names must be unique. The
// builder is not safe for concurrent use.
type Builder struct {
	c   *Circuit
	err error
}

// NewBuilder returns a builder for a circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{c: &Circuit{
		Name:   name,
		byName: make(map[string]int),
	}}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("circuit %q: %s", b.c.Name, fmt.Sprintf(format, args...))
	}
}

func (b *Builder) newNode(kind Kind, name string, fanin []int) int {
	if _, dup := b.c.byName[name]; dup {
		b.fail("duplicate node name %q", name)
		return -1
	}
	id := len(b.c.Nodes)
	b.c.Nodes = append(b.c.Nodes, &Node{
		ID:    id,
		Kind:  kind,
		Name:  name,
		Fanin: fanin,
		Stem:  -1,
	})
	b.c.byName[name] = id
	return id
}

// Input declares a primary input.
func (b *Builder) Input(name string) {
	if b.err != nil {
		return
	}
	id := b.newNode(Input, name, nil)
	if id >= 0 {
		b.c.Inputs = append(b.c.Inputs, id)
	}
}

// Const declares a constant node with the given value.
func (b *Builder) Const(name string, value bool) {
	if b.err != nil {
		return
	}
	k := Const0
	if value {
		k = Const1
	}
	b.newNode(k, name, nil)
}

// Gate declares a gate named out computing kind over the named fanin signals,
// which must already be declared.
func (b *Builder) Gate(kind Kind, out string, fanin ...string) {
	if b.err != nil {
		return
	}
	switch kind {
	case Input, Branch, Const0, Const1:
		b.fail("gate %q: kind %v is not a gate", out, kind)
		return
	}
	if len(fanin) < kind.MinFanin() {
		b.fail("gate %q: %v needs at least %d inputs, got %d", out, kind, kind.MinFanin(), len(fanin))
		return
	}
	if maxf := kind.MaxFanin(); maxf >= 0 && len(fanin) > maxf {
		b.fail("gate %q: %v takes at most %d inputs, got %d", out, kind, maxf, len(fanin))
		return
	}
	ids := make([]int, len(fanin))
	seen := make(map[string]bool, len(fanin))
	for i, fn := range fanin {
		if seen[fn] {
			b.fail("gate %q: fanin %q listed twice", out, fn)
			return
		}
		seen[fn] = true
		id, ok := b.c.byName[fn]
		if !ok {
			b.fail("gate %q: undeclared fanin %q", out, fn)
			return
		}
		ids[i] = id
	}
	b.newNode(kind, out, ids)
}

// Output marks an already-declared signal as a primary output.
func (b *Builder) Output(name string) {
	if b.err != nil {
		return
	}
	id, ok := b.c.byName[name]
	if !ok {
		b.fail("output %q not declared", name)
		return
	}
	b.c.Outputs = append(b.c.Outputs, id)
}

// Build validates the netlist, inserts fanout branch nodes, levelizes, and
// returns the finished circuit.
func (b *Builder) Build() (*Circuit, error) {
	if b.err != nil {
		return nil, b.err
	}
	c := b.c
	if len(c.Inputs) == 0 {
		return nil, fmt.Errorf("circuit %q: no primary inputs", c.Name)
	}
	if len(c.Outputs) == 0 {
		return nil, fmt.Errorf("circuit %q: no primary outputs", c.Name)
	}
	if err := c.normalize(); err != nil {
		return nil, err
	}
	if err := c.finalize(); err != nil {
		return nil, err
	}
	return c, nil
}

// normalize inserts explicit Branch nodes wherever a node drives more than
// one consumer (gate input pins and/or a primary output). After
// normalization every non-branch node has fanout ≤ 1 toward gates, with
// branches carrying the fan-out.
func (c *Circuit) normalize() error {
	// Count consumers per node: gate pins plus output observations.
	type pin struct {
		gate int // consuming gate node ID, or -1 for a primary output slot
		slot int // fanin index within the gate, or index into Outputs
	}
	consumers := make([][]pin, len(c.Nodes))
	for _, n := range c.Nodes {
		for i, f := range n.Fanin {
			consumers[f] = append(consumers[f], pin{gate: n.ID, slot: i})
		}
	}
	for i, o := range c.Outputs {
		consumers[o] = append(consumers[o], pin{gate: -1, slot: i})
	}

	numOriginal := len(c.Nodes)
	for id := 0; id < numOriginal; id++ {
		cons := consumers[id]
		if len(cons) <= 1 {
			continue
		}
		stem := c.Nodes[id]
		for bi, p := range cons {
			brName := fmt.Sprintf("%s~%d", stem.Name, bi)
			if _, dup := c.byName[brName]; dup {
				return fmt.Errorf("circuit %q: generated branch name %q collides", c.Name, brName)
			}
			brID := len(c.Nodes)
			c.Nodes = append(c.Nodes, &Node{
				ID:    brID,
				Kind:  Branch,
				Name:  brName,
				Fanin: []int{id},
				Stem:  id,
			})
			c.byName[brName] = brID
			if p.gate >= 0 {
				c.Nodes[p.gate].Fanin[p.slot] = brID
			} else {
				c.Outputs[p.slot] = brID
			}
		}
	}
	return nil
}

// finalize computes fanout lists, checks acyclicity, levelizes, and computes
// the topological order.
func (c *Circuit) finalize() error {
	for _, n := range c.Nodes {
		n.Fanout = n.Fanout[:0]
	}
	indeg := make([]int, len(c.Nodes))
	for _, n := range c.Nodes {
		seen := make(map[int]bool, len(n.Fanin))
		for _, f := range n.Fanin {
			if f == n.ID {
				return fmt.Errorf("circuit %q: node %q drives itself", c.Name, n.Name)
			}
			if seen[f] && n.Kind != Branch {
				return fmt.Errorf("circuit %q: node %q lists fanin %q twice", c.Name, n.Name, c.Nodes[f].Name)
			}
			seen[f] = true
			c.Nodes[f].Fanout = append(c.Nodes[f].Fanout, n.ID)
			indeg[n.ID]++
		}
	}

	// Kahn's algorithm; stable by node ID for deterministic ordering.
	queue := make([]int, 0, len(c.Nodes))
	for _, n := range c.Nodes {
		if indeg[n.ID] == 0 {
			queue = append(queue, n.ID)
		}
	}
	sort.Ints(queue)
	order := make([]int, 0, len(c.Nodes))
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		n := c.Nodes[id]
		lvl := 0
		for _, f := range n.Fanin {
			if l := c.Nodes[f].Level + 1; l > lvl {
				lvl = l
			}
		}
		n.Level = lvl
		for _, t := range n.Fanout {
			indeg[t]--
			if indeg[t] == 0 {
				queue = append(queue, t)
			}
		}
	}
	if len(order) != len(c.Nodes) {
		return fmt.Errorf("circuit %q: combinational loop detected", c.Name)
	}
	c.order = order

	// The level order is computed eagerly so concurrent readers (the engine
	// compiles circuits from many goroutines) never race on a lazy cache.
	c.levelOrder = append([]int(nil), order...)
	sort.SliceStable(c.levelOrder, func(a, b int) bool {
		la, lb := c.Nodes[c.levelOrder[a]].Level, c.Nodes[c.levelOrder[b]].Level
		if la != lb {
			return la < lb
		}
		return c.levelOrder[a] < c.levelOrder[b]
	})

	// Every non-output node should drive something; dangling nodes are
	// legal (synthesis can produce unused signals) but outputs must exist.
	for _, o := range c.Outputs {
		if o < 0 || o >= len(c.Nodes) {
			return fmt.Errorf("circuit %q: invalid output id %d", c.Name, o)
		}
	}
	return nil
}

// TransitiveFanin returns the set of node IDs (as a boolean slice indexed by
// ID) that can reach node id, including id itself.
func (c *Circuit) TransitiveFanin(id int) []bool {
	mark := make([]bool, len(c.Nodes))
	var walk func(int)
	walk = func(v int) {
		if mark[v] {
			return
		}
		mark[v] = true
		for _, f := range c.Nodes[v].Fanin {
			walk(f)
		}
	}
	walk(id)
	return mark
}

// TransitiveFanout returns the set of node IDs reachable from node id,
// including id itself.
func (c *Circuit) TransitiveFanout(id int) []bool {
	mark := make([]bool, len(c.Nodes))
	var walk func(int)
	walk = func(v int) {
		if mark[v] {
			return
		}
		mark[v] = true
		for _, t := range c.Nodes[v].Fanout {
			walk(t)
		}
	}
	walk(id)
	return mark
}

// Stats summarizes circuit structure.
type Stats struct {
	Inputs, Outputs         int
	Gates, Branches         int
	Nodes                   int
	MaxLevel                int
	MultiInputGates         int
	VectorSpaceSize         int
	GateKindCounts          map[Kind]int
	MaxFanin, AvgFaninNumer int
}

// ComputeStats returns structural statistics for the circuit.
func (c *Circuit) ComputeStats() Stats {
	s := Stats{
		Inputs:          len(c.Inputs),
		Outputs:         len(c.Outputs),
		Nodes:           len(c.Nodes),
		MaxLevel:        c.MaxLevel(),
		VectorSpaceSize: c.VectorSpaceSize(),
		GateKindCounts:  make(map[Kind]int),
	}
	for _, n := range c.Nodes {
		switch {
		case n.Kind == Branch:
			s.Branches++
		case n.IsGateOutput():
			s.Gates++
			s.GateKindCounts[n.Kind]++
			if len(n.Fanin) > s.MaxFanin {
				s.MaxFanin = len(n.Fanin)
			}
			s.AvgFaninNumer += len(n.Fanin)
			if len(n.Fanin) >= 2 {
				s.MultiInputGates++
			}
		}
	}
	return s
}

// String renders a one-line summary. Circuits too wide for |U| to fit an
// int (VectorSpaceSize 0 — the partition package's territory) render it
// symbolically.
func (s Stats) String() string {
	u := fmt.Sprint(s.VectorSpaceSize)
	if s.VectorSpaceSize == 0 {
		u = fmt.Sprintf("2^%d", s.Inputs)
	}
	return fmt.Sprintf("in=%d out=%d gates=%d (multi-input %d) branches=%d depth=%d |U|=%s",
		s.Inputs, s.Outputs, s.Gates, s.MultiInputGates, s.Branches, s.MaxLevel, u)
}
