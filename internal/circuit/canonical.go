package circuit

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strings"
)

// Canonical form and content hash.
//
// Every analysis result in this repository is a pure function of
// (circuit, options, seed) — DESIGN.md §7 — which makes circuits
// content-addressable: two requests for the same circuit under the same
// result-identity options can share one computation and one cached result
// (DESIGN.md §10). Canonical produces the serialization that defines "the
// same circuit", and Hash is its SHA-256.
//
// The canonical form keeps exactly the structure the analyses depend on and
// nothing else:
//
//   - Primary inputs in declaration order. Input order is result identity:
//     it numbers the vectors of U, and Procedure 1's seeded sampling draws
//     by vector number.
//   - Primary outputs in declaration order (named by their fanout stems,
//     like Circuit.Write). Output order is result identity for the
//     partitioned pipeline, which packs output cones in declaration order.
//   - Gates and constants sorted by output signal name, each rendered as
//     `kind out fanin...` with fanins named by their stems, in pin order.
//     Signal names are unique, so the sort is total; gate *statement order*
//     in the source never reaches the hash. Parsing the same .bench or
//     netlist statements in any order yields the same canonical form.
//   - No circuit name. The name is presentation (a file base name, a
//     benchmark label); the same netlist posted under two names is the same
//     circuit.
//
// Branch nodes are elided (fanins and outputs are written in stem terms):
// branches are a structural artifact of Build, and their generated ~i names
// depend on node-ID order, which statement order influences.
func Canonical(c *Circuit) string {
	var b strings.Builder

	stemName := func(id int) string {
		n := c.Nodes[id]
		for n.Kind == Branch {
			n = c.Nodes[n.Stem]
		}
		return n.Name
	}

	b.WriteString("inputs")
	for _, id := range c.Inputs {
		b.WriteByte(' ')
		b.WriteString(c.Nodes[id].Name)
	}
	b.WriteString("\noutputs")
	for _, id := range c.Outputs {
		b.WriteByte(' ')
		b.WriteString(stemName(id))
	}
	b.WriteByte('\n')

	lines := make([]string, 0, len(c.Nodes))
	for _, n := range c.Nodes {
		switch n.Kind {
		case Input, Branch:
			continue
		}
		var l strings.Builder
		l.WriteString(n.Kind.String())
		l.WriteByte(' ')
		l.WriteString(n.Name)
		for _, f := range n.Fanin {
			l.WriteByte(' ')
			l.WriteString(stemName(f))
		}
		lines = append(lines, l.String())
	}
	// Sort by the full line: the second field (the unique output name)
	// decides, so this is a total order independent of node-ID order.
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

// Hash returns the hex SHA-256 of the circuit's canonical form — the
// content address under which analysis results are cached (DESIGN.md §10).
// It is invariant under gate-statement reordering of the source netlist and
// under renaming the circuit, and sensitive to everything the analyses
// depend on: gate structure, signal names, and input/output declaration
// order.
func Hash(c *Circuit) string {
	sum := sha256.Sum256([]byte(Canonical(c)))
	return hex.EncodeToString(sum[:])
}

// Canonicalize rebuilds the circuit with node IDs assigned in canonical
// order: gates are emitted depth-first from their name-sorted list
// (drivers before consumers), so two parses of the same statements in any
// order yield structurally *identical* circuits — same node IDs, same
// generated branch names, same fault enumeration order.
//
// The hash alone cannot deliver that: node-ID order decides fault
// enumeration, and with it the per-fault ordering of reports and the
// target iteration order of Procedure 1's seeded sampling. Analyses that
// promise "hash-equal circuits produce byte-identical documents" — the
// serving layer's cache contract — must therefore analyze the canonical
// form, not the as-parsed one (DESIGN.md §10). Canonicalize is a fixed
// point: canonicalizing a canonicalized circuit reproduces it, and the
// hash is unchanged.
func Canonicalize(c *Circuit) (*Circuit, error) {
	b := NewBuilder(c.Name)

	stemName := func(id int) string {
		n := c.Nodes[id]
		for n.Kind == Branch {
			n = c.Nodes[n.Stem]
		}
		return n.Name
	}

	for _, id := range c.Inputs {
		b.Input(c.Nodes[id].Name)
	}

	type def struct {
		kind   Kind
		fanins []string
	}
	defs := make(map[string]def, len(c.Nodes))
	names := make([]string, 0, len(c.Nodes))
	for _, n := range c.Nodes {
		switch n.Kind {
		case Input, Branch:
			continue
		}
		fins := make([]string, len(n.Fanin))
		for i, f := range n.Fanin {
			fins[i] = stemName(f)
		}
		defs[n.Name] = def{kind: n.Kind, fanins: fins}
		names = append(names, n.Name)
	}
	sort.Strings(names)

	// Depth-first emission from the sorted list: the circuit is a DAG, so
	// marking before the recursion only prevents duplicate emission.
	emitted := make(map[string]bool, len(names))
	var emit func(name string)
	emit = func(name string) {
		d, isGate := defs[name]
		if !isGate || emitted[name] {
			return // primary input, or already emitted
		}
		emitted[name] = true
		for _, f := range d.fanins {
			emit(f)
		}
		switch d.kind {
		case Const0:
			b.Const(name, false)
		case Const1:
			b.Const(name, true)
		default:
			b.Gate(d.kind, name, d.fanins...)
		}
	}
	for _, name := range names {
		emit(name)
	}

	for _, o := range c.Outputs {
		b.Output(stemName(o))
	}
	return b.Build()
}
