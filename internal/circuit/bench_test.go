package circuit

import (
	"strings"
	"testing"
)

// TestParseBenchC17 checks the embedded c17 against a hand-built reference
// of the same NAND network: identical interface and identical function on
// all 32 vectors.
func TestParseBenchC17(t *testing.T) {
	c, err := EmbeddedBench("c17")
	if err != nil {
		t.Fatalf("EmbeddedBench(c17): %v", err)
	}
	if c.NumInputs() != 5 || c.NumOutputs() != 2 {
		t.Fatalf("c17 interface = %d in / %d out, want 5/2", c.NumInputs(), c.NumOutputs())
	}
	if g := c.ComputeStats().Gates; g != 6 {
		t.Fatalf("c17 has %d gates, want 6", g)
	}

	b := NewBuilder("c17ref")
	for _, in := range []string{"1", "2", "3", "6", "7"} {
		b.Input(in)
	}
	b.Gate(Nand, "10", "1", "3")
	b.Gate(Nand, "11", "3", "6")
	b.Gate(Nand, "16", "2", "11")
	b.Gate(Nand, "19", "11", "7")
	b.Gate(Nand, "22", "10", "16")
	b.Gate(Nand, "23", "16", "19")
	b.Output("22")
	b.Output("23")
	ref, err := b.Build()
	if err != nil {
		t.Fatalf("reference build: %v", err)
	}
	for v := uint64(0); v < 32; v++ {
		got := c.OutputsOf(c.Eval(v))
		want := ref.OutputsOf(ref.Eval(v))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("c17 output %d differs from reference at vector %d", i, v)
			}
		}
	}
}

// TestParseBenchS27DFFStripping checks the ISCAS-89 scan view: DFF outputs
// become pseudo inputs, DFF data signals pseudo outputs, and the stripped
// circuit is combinational.
func TestParseBenchS27DFFStripping(t *testing.T) {
	c, err := EmbeddedBench("s27")
	if err != nil {
		t.Fatalf("EmbeddedBench(s27): %v", err)
	}
	if c.NumInputs() != 7 { // 4 declared + 3 DFF outputs
		t.Fatalf("s27 has %d inputs, want 7", c.NumInputs())
	}
	if c.NumOutputs() != 4 { // 1 declared + 3 DFF data signals
		t.Fatalf("s27 has %d outputs, want 4", c.NumOutputs())
	}
	// Pseudo inputs come after the declared ones, in DFF declaration order.
	var names []string
	for _, id := range c.Inputs {
		names = append(names, c.Node(id).Name)
	}
	if got := strings.Join(names, " "); got != "G0 G1 G2 G3 G5 G6 G7" {
		t.Fatalf("s27 input order = %q", got)
	}
}

// TestParseBenchW64 checks the wide sample: too many inputs for exhaustive
// analysis, but well-formed and with narrow output cones.
func TestParseBenchW64(t *testing.T) {
	c, err := EmbeddedBench("w64")
	if err != nil {
		t.Fatalf("EmbeddedBench(w64): %v", err)
	}
	if c.NumInputs() <= 60 {
		t.Fatalf("w64 has %d inputs, want > 60", c.NumInputs())
	}
	if c.NumOutputs() != 16 {
		t.Fatalf("w64 has %d outputs, want 16", c.NumOutputs())
	}
	inputPos := make(map[int]bool, len(c.Inputs))
	for _, id := range c.Inputs {
		inputPos[id] = true
	}
	for _, oid := range c.Outputs {
		sup := 0
		for id, in := range c.TransitiveFanin(oid) {
			if in && inputPos[id] {
				sup++
			}
		}
		if sup > 16 {
			t.Fatalf("w64 output %s cone spans %d inputs > 16", c.Node(oid).Name, sup)
		}
	}
}

func TestEmbeddedBenchNames(t *testing.T) {
	names := EmbeddedBenchNames()
	want := []string{"c17", "s27", "w64"}
	if len(names) != len(want) {
		t.Fatalf("EmbeddedBenchNames = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("EmbeddedBenchNames = %v, want %v", names, want)
		}
	}
	if _, err := EmbeddedBench("nope"); err == nil {
		t.Fatal("EmbeddedBench accepted an unknown name")
	}
}

// TestParseBenchForwardReference: statement order is free in .bench.
func TestParseBenchForwardReference(t *testing.T) {
	c, err := ParseBenchString("fwd", `
		OUTPUT(z)
		z = AND(a, b)
		b = NOT(x)
		INPUT(x)
		INPUT(y)
		a = OR(x, y)
	`)
	if err != nil {
		t.Fatalf("ParseBench: %v", err)
	}
	if c.NumInputs() != 2 || c.NumOutputs() != 1 {
		t.Fatalf("interface = %d/%d", c.NumInputs(), c.NumOutputs())
	}
	// z = (x|y) & !x = y & !x
	for v := uint64(0); v < 4; v++ {
		x := VectorBit(v, 0, 2)
		y := VectorBit(v, 1, 2)
		if got := c.OutputsOf(c.Eval(v))[0]; got != (y && !x) {
			t.Fatalf("wrong function at v=%d", v)
		}
	}
}

// TestParseBenchDegenerateGates: single-fanin multi-input gates collapse to
// BUF/NOT, and idempotent gates tolerate repeated fanins.
func TestParseBenchDegenerateGates(t *testing.T) {
	c, err := ParseBenchString("degen", `
		INPUT(a)
		INPUT(b)
		OUTPUT(z)
		t1 = AND(a)
		t2 = NOR(b)
		t3 = OR(t1, t1, t2)
		z = NAND(t3, a)
	`)
	if err != nil {
		t.Fatalf("ParseBench: %v", err)
	}
	n1, _ := c.NodeByName("t1")
	if n1.Kind != Buf {
		t.Fatalf("AND(a) parsed as %v, want buf", n1.Kind)
	}
	n2, _ := c.NodeByName("t2")
	if n2.Kind != Not {
		t.Fatalf("NOR(b) parsed as %v, want not", n2.Kind)
	}
	n3, _ := c.NodeByName("t3")
	if len(n3.Fanin) != 2 {
		t.Fatalf("OR(t1,t1,t2) kept %d fanins, want 2", len(n3.Fanin))
	}
}

func TestParseBenchErrors(t *testing.T) {
	cases := map[string]string{
		"unknown gate":     "INPUT(a)\nOUTPUT(z)\nz = MAJ(a, a, a)\n",
		"undefined signal": "INPUT(a)\nOUTPUT(z)\nz = AND(a, ghost)\n",
		"double defined":   "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\nz = OR(a, b)\n",
		"input redefined":  "INPUT(a)\nINPUT(b)\nOUTPUT(a)\na = AND(a, b)\n",
		"xor dup fanin":    "INPUT(a)\nOUTPUT(z)\nz = XOR(a, a)\n",
		"comb loop":        "INPUT(a)\nOUTPUT(p)\np = AND(a, q)\nq = OR(a, p)\n",
		"no inputs":        "OUTPUT(z)\nz = AND(x, y)\n",
		"undefined output": "INPUT(a)\nOUTPUT(z)\n",
		"bad statement":    "INPUT(a)\nOUTPUT(a)\nwhatever here\n",
		"malformed gate":   "INPUT(a)\nOUTPUT(z)\nz = AND(a\n",
		"duplicate output": "INPUT(a)\nOUTPUT(z)\nOUTPUT(z)\nz = NOT(a)\n",
	}
	for name, src := range cases {
		if _, err := ParseBenchString("bad", src); err == nil {
			t.Errorf("%s: ParseBench accepted %q", name, src)
		}
	}
}

// TestParseBenchDFFDataAlreadyOutput: a DFF data signal that is also a
// declared primary output (legal ISCAS-89) is observed once, not twice —
// a duplicate output column would inflate the fault universe.
func TestParseBenchDFFDataAlreadyOutput(t *testing.T) {
	c, err := ParseBenchString("dup", `
		INPUT(a)
		OUTPUT(n1)
		n1 = NOT(a)
		G1 = DFF(n1)
		G2 = DFF(n1)
	`)
	if err != nil {
		t.Fatalf("ParseBench: %v", err)
	}
	if c.NumOutputs() != 1 {
		t.Fatalf("NumOutputs = %d, want 1 (n1 observed once)", c.NumOutputs())
	}
	if c.NumInputs() != 3 { // a + pseudo inputs G1, G2
		t.Fatalf("NumInputs = %d, want 3", c.NumInputs())
	}
}

// TestParseBenchCaseInsensitive: keywords and gate names may be lower case.
func TestParseBenchCaseInsensitive(t *testing.T) {
	c, err := ParseBenchString("lc", `
		input(a)
		input(b)
		output(z)
		z = nand(a, b)
	`)
	if err != nil {
		t.Fatalf("ParseBench: %v", err)
	}
	n, _ := c.NodeByName("z")
	if n.Kind != Nand {
		t.Fatalf("nand parsed as %v", n.Kind)
	}
}
