package circuit

import (
	"embed"
	"fmt"
	"sort"
	"strings"
)

// Embedded .bench sample circuits. c17 is the smallest ISCAS-85 benchmark,
// s27 the smallest ISCAS-89 one (DFF-stripped on load), and w64 a 64-input
// combinational sample whose output cones stay narrow enough for the
// partitioned analysis — wide circuits like it are the workload the
// partition package exists for.
//
//go:embed benchdata/*.bench
var benchFS embed.FS

// EmbeddedBenchNames lists the embedded .bench samples, sorted.
func EmbeddedBenchNames() []string {
	entries, err := benchFS.ReadDir("benchdata")
	if err != nil {
		panic(err) // embedded directory is fixed at build time
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".bench"))
	}
	sort.Strings(names)
	return names
}

// EmbeddedBench parses one embedded .bench sample by name (e.g. "c17").
func EmbeddedBench(name string) (*Circuit, error) {
	src, err := benchFS.ReadFile("benchdata/" + name + ".bench")
	if err != nil {
		return nil, fmt.Errorf("circuit: no embedded bench sample %q (have %s)",
			name, strings.Join(EmbeddedBenchNames(), " "))
	}
	return ParseBenchString(name, string(src))
}
