package circuit

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The ISCAS-85/89 .bench netlist format accepted by ParseBench:
//
//	# comment
//	INPUT(G1)
//	OUTPUT(G22)
//	G10 = NAND(G1, G3)
//	G11 = NOT(G10)
//	G12 = BUFF(G11)
//	G13 = DFF(G12)
//
// Statement order is free (a gate may reference signals defined later);
// keywords and gate names are case-insensitive. Recognized gates: AND,
// NAND, OR, NOR, XOR, XNOR, NOT (INV), BUFF (BUF), DFF.
//
// Sequential circuits (ISCAS-89) are stripped to their combinational
// logic, the standard full-scan view the paper's exhaustive analysis
// needs: each DFF's output signal becomes a pseudo primary input
// (appended after the declared inputs, in DFF declaration order) and each
// DFF's data signal becomes a pseudo primary output (appended after the
// declared outputs, in the same order).

// benchStmt is one `out = GATE(fanins)` statement before ordering.
type benchStmt struct {
	line   int
	out    string
	gate   string
	fanins []string
}

// ParseBench reads a circuit in the ISCAS .bench format. The name is the
// circuit name to use (.bench files do not carry one; pass e.g. the file
// base name).
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)

	var inputs, outputs []string
	var dffs []benchStmt
	stmts := make(map[string]benchStmt)
	var order []string // gate definition order, for deterministic emission
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if sig, ok, err := benchDecl(line, "INPUT"); err != nil {
			return nil, fmt.Errorf("bench %s line %d: %v", name, lineNo, err)
		} else if ok {
			inputs = append(inputs, sig)
			continue
		}
		if sig, ok, err := benchDecl(line, "OUTPUT"); err != nil {
			return nil, fmt.Errorf("bench %s line %d: %v", name, lineNo, err)
		} else if ok {
			outputs = append(outputs, sig)
			continue
		}
		st, err := parseBenchGate(line, lineNo)
		if err != nil {
			return nil, fmt.Errorf("bench %s line %d: %v", name, lineNo, err)
		}
		if st.gate == "DFF" {
			dffs = append(dffs, st)
			continue
		}
		if prev, dup := stmts[st.out]; dup {
			return nil, fmt.Errorf("bench %s line %d: signal %q already defined at line %d",
				name, lineNo, st.out, prev.line)
		}
		stmts[st.out] = st
		order = append(order, st.out)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(inputs) == 0 && len(dffs) == 0 {
		return nil, fmt.Errorf("bench %s: no INPUT statements", name)
	}
	return buildBench(name, inputs, outputs, dffs, stmts, order)
}

// ParseBenchString is ParseBench over a string.
func ParseBenchString(name, src string) (*Circuit, error) {
	return ParseBench(name, strings.NewReader(src))
}

// benchDecl matches `KEYWORD(signal)`.
func benchDecl(line, keyword string) (sig string, ok bool, err error) {
	if len(line) < len(keyword) || !strings.EqualFold(line[:len(keyword)], keyword) {
		return "", false, nil
	}
	rest := strings.TrimSpace(line[len(keyword):])
	if !strings.HasPrefix(rest, "(") {
		return "", false, nil
	}
	if !strings.HasSuffix(rest, ")") {
		return "", false, fmt.Errorf("malformed %s statement %q", keyword, line)
	}
	sig = strings.TrimSpace(rest[1 : len(rest)-1])
	if sig == "" || strings.ContainsAny(sig, " \t,()") {
		return "", false, fmt.Errorf("bad signal name in %s statement %q", keyword, line)
	}
	return sig, true, nil
}

// parseBenchGate matches `out = GATE(in1, in2, ...)`.
func parseBenchGate(line string, lineNo int) (benchStmt, error) {
	eq := strings.IndexByte(line, '=')
	if eq < 0 {
		return benchStmt{}, fmt.Errorf("unrecognized statement %q", line)
	}
	out := strings.TrimSpace(line[:eq])
	if out == "" || strings.ContainsAny(out, " \t,()") {
		return benchStmt{}, fmt.Errorf("bad signal name %q", out)
	}
	rhs := strings.TrimSpace(line[eq+1:])
	open := strings.IndexByte(rhs, '(')
	if open < 0 || !strings.HasSuffix(rhs, ")") {
		return benchStmt{}, fmt.Errorf("malformed gate statement %q", line)
	}
	gate := strings.ToUpper(strings.TrimSpace(rhs[:open]))
	var fanins []string
	for _, f := range strings.Split(rhs[open+1:len(rhs)-1], ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			return benchStmt{}, fmt.Errorf("empty fanin in %q", line)
		}
		fanins = append(fanins, f)
	}
	if len(fanins) == 0 {
		return benchStmt{}, fmt.Errorf("gate %q has no fanins", out)
	}
	switch gate {
	case "AND", "NAND", "OR", "NOR", "XOR", "XNOR":
	case "NOT", "INV":
		gate = "NOT"
		if len(fanins) != 1 {
			return benchStmt{}, fmt.Errorf("gate %q: NOT takes one fanin, got %d", out, len(fanins))
		}
	case "BUF", "BUFF":
		gate = "BUFF"
		if len(fanins) != 1 {
			return benchStmt{}, fmt.Errorf("gate %q: BUFF takes one fanin, got %d", out, len(fanins))
		}
	case "DFF":
		if len(fanins) != 1 {
			return benchStmt{}, fmt.Errorf("gate %q: DFF takes one fanin, got %d", out, len(fanins))
		}
	default:
		return benchStmt{}, fmt.Errorf("unknown gate %q", gate)
	}
	return benchStmt{line: lineNo, out: out, gate: gate, fanins: fanins}, nil
}

// benchKind maps a .bench gate mnemonic (already normalized) and its fanin
// count onto a circuit Kind. Degenerate single-fanin forms of the
// multi-input gates, which some .bench writers emit, collapse to their
// one-input equivalent.
func benchKind(gate string, fanins int) (Kind, error) {
	if fanins == 1 {
		switch gate {
		case "AND", "OR", "XOR", "BUFF":
			return Buf, nil
		case "NAND", "NOR", "XNOR", "NOT":
			return Not, nil
		}
	}
	switch gate {
	case "AND":
		return And, nil
	case "NAND":
		return Nand, nil
	case "OR":
		return Or, nil
	case "NOR":
		return Nor, nil
	case "XOR":
		return Xor, nil
	case "XNOR":
		return Xnor, nil
	case "NOT":
		return Not, nil
	case "BUFF":
		return Buf, nil
	}
	return 0, fmt.Errorf("unknown gate %q", gate)
}

// buildBench assembles the parsed statements into a Circuit: it resolves
// the DFF stripping, orders gate emission topologically (the format allows
// forward references), and drives the Builder.
func buildBench(name string, inputs, outputs []string, dffs []benchStmt, stmts map[string]benchStmt, order []string) (*Circuit, error) {
	declared := make(map[string]int, len(inputs))
	for _, in := range inputs {
		if _, dup := declared[in]; dup {
			return nil, fmt.Errorf("bench %s: input %q declared twice", name, in)
		}
		declared[in] = 1
		if st, dup := stmts[in]; dup {
			return nil, fmt.Errorf("bench %s line %d: signal %q is both an INPUT and a gate output", name, st.line, in)
		}
	}
	// DFF outputs become pseudo primary inputs.
	allInputs := append([]string(nil), inputs...)
	for _, d := range dffs {
		if _, dup := declared[d.out]; dup {
			return nil, fmt.Errorf("bench %s line %d: DFF output %q collides with an input", name, d.line, d.out)
		}
		if st, dup := stmts[d.out]; dup {
			return nil, fmt.Errorf("bench %s line %d: signal %q is both a DFF and a gate output", name, st.line, d.out)
		}
		declared[d.out] = 1
		allInputs = append(allInputs, d.out)
	}

	exists := func(sig string) bool {
		if _, ok := declared[sig]; ok {
			return true
		}
		_, ok := stmts[sig]
		return ok
	}
	for _, st := range stmts {
		for _, f := range st.fanins {
			if !exists(f) {
				return nil, fmt.Errorf("bench %s line %d: gate %q uses undefined signal %q", name, st.line, st.out, f)
			}
		}
	}
	for _, d := range dffs {
		if !exists(d.fanins[0]) {
			return nil, fmt.Errorf("bench %s line %d: DFF %q uses undefined signal %q", name, d.line, d.out, d.fanins[0])
		}
	}
	declaredOut := make(map[string]bool, len(outputs))
	for _, o := range outputs {
		if !exists(o) {
			return nil, fmt.Errorf("bench %s: OUTPUT(%s) is never defined", name, o)
		}
		if declaredOut[o] {
			return nil, fmt.Errorf("bench %s: OUTPUT(%s) declared twice", name, o)
		}
		declaredOut[o] = true
	}

	b := NewBuilder(name)
	for _, in := range allInputs {
		b.Input(in)
	}

	// Depth-first emission in definition order: the format allows a gate to
	// reference signals defined later, while the Builder needs drivers
	// declared first. The visiting mark doubles as combinational-loop
	// detection (DFF stripping must have broken every cycle).
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(stmts))
	var emit func(sig string) error
	emit = func(sig string) error {
		if _, isIn := declared[sig]; isIn {
			return nil
		}
		st := stmts[sig]
		switch state[sig] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("bench %s line %d: combinational loop through %q", name, st.line, sig)
		}
		state[sig] = visiting
		fanins := st.fanins
		if dedup := dedupIdempotent(st.gate, fanins); dedup != nil {
			fanins = dedup
		} else if hasDup(fanins) {
			return fmt.Errorf("bench %s line %d: gate %q lists a fanin twice", name, st.line, st.out)
		}
		for _, f := range fanins {
			if err := emit(f); err != nil {
				return err
			}
		}
		kind, err := benchKind(st.gate, len(fanins))
		if err != nil {
			return fmt.Errorf("bench %s line %d: %v", name, st.line, err)
		}
		b.Gate(kind, st.out, fanins...)
		state[sig] = done
		return nil
	}
	for _, sig := range order {
		if err := emit(sig); err != nil {
			return nil, err
		}
	}
	for _, d := range dffs {
		if err := emit(d.fanins[0]); err != nil {
			return nil, err
		}
	}

	for _, o := range outputs {
		b.Output(o)
	}
	// DFF data signals become pseudo primary outputs (next-state logic). A
	// data signal that is already a declared output (legal in ISCAS-89) is
	// observed once, not twice; several DFFs sharing one data signal
	// likewise add a single observation point.
	for _, d := range dffs {
		if ns := d.fanins[0]; !declaredOut[ns] {
			declaredOut[ns] = true
			b.Output(ns)
		}
	}
	if len(outputs) == 0 && len(dffs) == 0 {
		return nil, fmt.Errorf("bench %s: no OUTPUT statements", name)
	}
	return b.Build()
}

// dedupIdempotent removes repeated fanins for gates where repetition is
// logically idempotent (AND/NAND/OR/NOR); it returns nil for gates where a
// repeated fanin changes the function (XOR/XNOR), leaving the caller to
// reject it.
func dedupIdempotent(gate string, fanins []string) []string {
	switch gate {
	case "AND", "NAND", "OR", "NOR":
	default:
		return nil
	}
	if !hasDup(fanins) {
		return fanins
	}
	seen := make(map[string]bool, len(fanins))
	out := make([]string, 0, len(fanins))
	for _, f := range fanins {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}

func hasDup(fanins []string) bool {
	seen := make(map[string]bool, len(fanins))
	for _, f := range fanins {
		if seen[f] {
			return true
		}
		seen[f] = true
	}
	return false
}
