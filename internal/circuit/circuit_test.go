package circuit

import (
	"strings"
	"testing"
)

// buildExample constructs a small reconstruction of the paper's Figure 1
// flavour: a 4-input circuit with two AND gates feeding an OR, with input 2
// and input 3 fanning out.
func buildExample(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder("example")
	b.Input("i1")
	b.Input("i2")
	b.Input("i3")
	b.Input("i4")
	b.Gate(And, "g9", "i1", "i2")
	b.Gate(And, "g10", "i2", "i3", "i4")
	b.Gate(Or, "g11", "g9", "g10")
	b.Output("g11")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return c
}

func TestBuildBasics(t *testing.T) {
	c := buildExample(t)
	if c.NumInputs() != 4 || c.NumOutputs() != 1 {
		t.Fatalf("inputs=%d outputs=%d", c.NumInputs(), c.NumOutputs())
	}
	if c.NumGates() != 3 {
		t.Fatalf("NumGates = %d, want 3", c.NumGates())
	}
	if c.VectorSpaceSize() != 16 {
		t.Fatalf("VectorSpaceSize = %d, want 16", c.VectorSpaceSize())
	}
	// i2 fans out to both ANDs → 2 branch nodes; i3 and i4 do not fan out.
	stats := c.ComputeStats()
	if stats.Branches != 2 {
		t.Fatalf("Branches = %d, want 2 (i2 only)", stats.Branches)
	}
	if stats.MultiInputGates != 3 {
		t.Fatalf("MultiInputGates = %d, want 3", stats.MultiInputGates)
	}
}

func TestBranchInsertion(t *testing.T) {
	c := buildExample(t)
	i2, ok := c.NodeByName("i2")
	if !ok {
		t.Fatal("i2 missing")
	}
	if got := len(i2.Fanout); got != 2 {
		t.Fatalf("i2 fanout = %d, want 2 branches", got)
	}
	for _, br := range i2.Fanout {
		n := c.Node(br)
		if n.Kind != Branch {
			t.Fatalf("i2 fanout node %q kind = %v, want Branch", n.Name, n.Kind)
		}
		if n.Stem != i2.ID {
			t.Fatalf("branch stem = %d, want %d", n.Stem, i2.ID)
		}
		if len(n.Fanout) != 1 {
			t.Fatalf("branch fans out %d times, want 1", len(n.Fanout))
		}
	}
}

func TestOutputWithInternalFanoutGetsBranch(t *testing.T) {
	b := NewBuilder("obranch")
	b.Input("a")
	b.Input("bb")
	b.Gate(And, "g", "a", "bb")
	b.Gate(Not, "h", "g") // g feeds h AND is an output → branches
	b.Output("g")
	b.Output("h")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	out0 := c.Node(c.Outputs[0])
	if out0.Kind != Branch {
		t.Fatalf("output 0 kind = %v, want Branch (g fans out)", out0.Kind)
	}
	g, _ := c.NodeByName("g")
	if out0.Stem != g.ID {
		t.Fatalf("output branch stem = %d, want g's id %d", out0.Stem, g.ID)
	}
}

func TestEvalTruthTable(t *testing.T) {
	c := buildExample(t)
	// f = (i1∧i2) ∨ (i2∧i3∧i4), MSB-first vector convention.
	for v := uint64(0); v < 16; v++ {
		i1 := VectorBit(v, 0, 4)
		i2 := VectorBit(v, 1, 4)
		i3 := VectorBit(v, 2, 4)
		i4 := VectorBit(v, 3, 4)
		want := (i1 && i2) || (i2 && i3 && i4)
		vals := c.Eval(v)
		got := c.OutputsOf(vals)[0]
		if got != want {
			t.Fatalf("vector %d: output = %v, want %v", v, got, want)
		}
	}
}

func TestVectorBitConvention(t *testing.T) {
	// The paper writes vector 6 for a 4-input circuit as 0110:
	// input1=0, input2=1, input3=1, input4=0.
	if VectorBit(6, 0, 4) != false || VectorBit(6, 1, 4) != true ||
		VectorBit(6, 2, 4) != true || VectorBit(6, 3, 4) != false {
		t.Fatal("VectorBit does not follow the paper's MSB-first convention")
	}
	v := uint64(0)
	v = SetVectorBit(v, 1, 4, true)
	v = SetVectorBit(v, 2, 4, true)
	if v != 6 {
		t.Fatalf("SetVectorBit composition = %d, want 6", v)
	}
	v = SetVectorBit(v, 1, 4, false)
	if v != 2 {
		t.Fatalf("SetVectorBit clear = %d, want 2", v)
	}
}

func TestAllGateKindsEval(t *testing.T) {
	b := NewBuilder("kinds")
	b.Input("a")
	b.Input("c")
	b.Gate(And, "and2", "a", "c")
	b.Gate(Nand, "nand2", "a", "c")
	b.Gate(Or, "or2", "a", "c")
	b.Gate(Nor, "nor2", "a", "c")
	b.Gate(Xor, "xor2", "a", "c")
	b.Gate(Xnor, "xnor2", "a", "c")
	b.Gate(Not, "not1", "a")
	b.Gate(Buf, "buf1", "c")
	for _, o := range []string{"and2", "nand2", "or2", "nor2", "xor2", "xnor2", "not1", "buf1"} {
		b.Output(o)
	}
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for v := uint64(0); v < 4; v++ {
		a := VectorBit(v, 0, 2)
		cc := VectorBit(v, 1, 2)
		vals := c.Eval(v)
		outs := c.OutputsOf(vals)
		want := []bool{a && cc, !(a && cc), a || cc, !(a || cc), a != cc, a == cc, !a, cc}
		for i, w := range want {
			if outs[i] != w {
				t.Fatalf("v=%d output %d = %v, want %v", v, i, outs[i], w)
			}
		}
	}
}

func TestConstNodes(t *testing.T) {
	b := NewBuilder("consts")
	b.Input("a")
	b.Const("zero", false)
	b.Const("one", true)
	b.Gate(And, "g0", "a", "zero")
	b.Gate(And, "g1", "a", "one")
	b.Output("g0")
	b.Output("g1")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for v := uint64(0); v < 2; v++ {
		outs := c.OutputsOf(c.Eval(v))
		if outs[0] != false {
			t.Fatalf("v=%d: a AND 0 = %v", v, outs[0])
		}
		if outs[1] != (v == 1) {
			t.Fatalf("v=%d: a AND 1 = %v", v, outs[1])
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := map[string]func(*Builder){
		"duplicate name": func(b *Builder) {
			b.Input("a")
			b.Input("a")
			b.Output("a")
		},
		"undeclared fanin": func(b *Builder) {
			b.Input("a")
			b.Gate(And, "g", "a", "nope")
			b.Output("g")
		},
		"too few inputs": func(b *Builder) {
			b.Input("a")
			b.Gate(And, "g", "a")
			b.Output("g")
		},
		"not a gate kind": func(b *Builder) {
			b.Input("a")
			b.Gate(Input, "g", "a")
			b.Output("g")
		},
		"undeclared output": func(b *Builder) {
			b.Input("a")
			b.Output("zzz")
		},
		"no outputs": func(b *Builder) {
			b.Input("a")
		},
	}
	for name, fn := range cases {
		b := NewBuilder(name)
		fn(b)
		if _, err := b.Build(); err == nil {
			t.Errorf("%s: Build succeeded, want error", name)
		}
	}
}

func TestNoInputsError(t *testing.T) {
	b := NewBuilder("noin")
	b.Const("one", true)
	b.Output("one")
	if _, err := b.Build(); err == nil {
		t.Fatal("Build succeeded with no inputs")
	}
}

func TestDuplicateFaninRejected(t *testing.T) {
	b := NewBuilder("dup")
	b.Input("a")
	b.Input("c")
	b.Gate(And, "g", "a", "a")
	b.Output("g")
	if _, err := b.Build(); err == nil {
		t.Fatal("Build succeeded with duplicated fanin pin")
	}
}

func TestLevelization(t *testing.T) {
	c := buildExample(t)
	for _, id := range c.TopoOrder() {
		n := c.Node(id)
		for _, f := range n.Fanin {
			if c.Node(f).Level >= n.Level {
				t.Fatalf("node %q level %d not above fanin %q level %d",
					n.Name, n.Level, c.Node(f).Name, c.Node(f).Level)
			}
		}
	}
	g11, _ := c.NodeByName("g11")
	if g11.Level < 2 {
		t.Fatalf("or gate level = %d, want ≥ 2", g11.Level)
	}
}

func TestTopoOrderCoversAll(t *testing.T) {
	c := buildExample(t)
	seen := make(map[int]bool)
	pos := make(map[int]int)
	for i, id := range c.TopoOrder() {
		if seen[id] {
			t.Fatalf("node %d appears twice in topo order", id)
		}
		seen[id] = true
		pos[id] = i
	}
	if len(seen) != c.NumNodes() {
		t.Fatalf("topo order covers %d of %d nodes", len(seen), c.NumNodes())
	}
	for _, n := range c.Nodes {
		for _, f := range n.Fanin {
			if pos[f] >= pos[n.ID] {
				t.Fatalf("fanin %d not before %d in topo order", f, n.ID)
			}
		}
	}
}

func TestTransitiveFaninFanout(t *testing.T) {
	c := buildExample(t)
	g9, _ := c.NodeByName("g9")
	g10, _ := c.NodeByName("g10")
	g11, _ := c.NodeByName("g11")
	i1, _ := c.NodeByName("i1")
	i3, _ := c.NodeByName("i3")

	fin := c.TransitiveFanin(g9.ID)
	if !fin[i1.ID] || fin[i3.ID] {
		t.Fatal("g9 fanin cone wrong: must contain i1, not i3")
	}
	if !fin[g9.ID] {
		t.Fatal("fanin cone must include the node itself")
	}
	fout := c.TransitiveFanout(g10.ID)
	if !fout[g11.ID] {
		t.Fatal("g10 fanout must reach g11")
	}
	if fout[g9.ID] {
		t.Fatal("g10 fanout must not contain g9")
	}
}

func TestParseWriteRoundTrip(t *testing.T) {
	src := `
# a tiny full adder
circuit adder
input a b cin
output sum cout
gate xor t1 a b
gate xor sum t1 cin
gate and t2 a b
gate and t3 t1 cin
gate or cout t2 t3
`
	c, err := ParseString(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if c.Name != "adder" || c.NumInputs() != 3 || c.NumOutputs() != 2 {
		t.Fatalf("parsed shape wrong: %s", c.ComputeStats())
	}
	// Verify adder truth table.
	for v := uint64(0); v < 8; v++ {
		a := b2i(VectorBit(v, 0, 3))
		b := b2i(VectorBit(v, 1, 3))
		ci := b2i(VectorBit(v, 2, 3))
		outs := c.OutputsOf(c.Eval(v))
		if b2i(outs[0]) != (a+b+ci)%2 || b2i(outs[1]) != (a+b+ci)/2 {
			t.Fatalf("adder wrong at v=%d", v)
		}
	}

	// Round trip.
	text := c.WriteString()
	c2, err := ParseString(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if c2.NumInputs() != c.NumInputs() || c2.NumOutputs() != c.NumOutputs() || c2.NumGates() != c.NumGates() {
		t.Fatalf("round trip changed shape: %s vs %s", c.ComputeStats(), c2.ComputeStats())
	}
	for v := uint64(0); v < 8; v++ {
		o1 := c.OutputsOf(c.Eval(v))
		o2 := c2.OutputsOf(c2.Eval(v))
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("round trip changed function at v=%d output %d", v, i)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"input a\noutput a", // no circuit
		"circuit x\ncircuit y\ninput a\noutput a", // duplicate circuit
		"circuit x\ninput a\ngate bogus g a\noutput g",
		"circuit x\ninput a\ngate and\noutput a",   // short gate
		"circuit x\ninput a\nconst k 2\noutput a",  // bad const
		"circuit x\ninput a\nfrobnicate\noutput a", // unknown stmt
		"circuit x\ninput\noutput a",               // empty input list
	}
	for i, src := range bad {
		if _, err := ParseString(src); err == nil {
			t.Errorf("case %d: Parse succeeded, want error:\n%s", i, src)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	c := buildExample(t)
	var sb strings.Builder
	if err := c.WriteDOT(&sb); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	dot := sb.String()
	for _, want := range []string{"digraph", "triangle", "->", "g11"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for _, k := range []Kind{Input, Buf, Not, And, Nand, Or, Nor, Xor, Xnor, Const0, Const1} {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Errorf("KindFromString(%q) = %v,%v", k.String(), got, ok)
		}
	}
	if _, ok := KindFromString("branch"); ok {
		t.Error("KindFromString must reject branch")
	}
	if _, ok := KindFromString("zzz"); ok {
		t.Error("KindFromString accepted garbage")
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestLevelOrderIsLevelGroupedTopo(t *testing.T) {
	b := NewBuilder("levels")
	b.Input("a")
	b.Input("c")
	b.Gate(And, "g1", "a", "c")
	b.Gate(Or, "g2", "a", "g1")
	b.Gate(Xor, "g3", "g1", "g2")
	b.Output("g3")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	lo := c.LevelOrder()
	if len(lo) != c.NumNodes() {
		t.Fatalf("LevelOrder has %d nodes, want %d", len(lo), c.NumNodes())
	}
	seen := make(map[int]bool, len(lo))
	prevLevel := -1
	for _, id := range lo {
		n := c.Node(id)
		if n.Level < prevLevel {
			t.Fatalf("LevelOrder not grouped by level: node %d at level %d after level %d", id, n.Level, prevLevel)
		}
		prevLevel = n.Level
		for _, f := range n.Fanin {
			if !seen[f] {
				t.Fatalf("node %d scheduled before fanin %d", id, f)
			}
		}
		seen[id] = true
	}
}

func TestConsumerCounts(t *testing.T) {
	b := NewBuilder("consumers")
	b.Input("a")
	b.Input("c")
	b.Gate(And, "g1", "a", "c")
	b.Gate(Or, "g2", "a", "c")
	b.Output("g1")
	b.Output("g2")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	counts := c.ConsumerCounts()
	// Stems a and c each feed two branches; each branch feeds one gate pin;
	// each gate output is observed once.
	for _, name := range []string{"a", "c"} {
		n, _ := c.NodeByName(name)
		if counts[n.ID] != 2 {
			t.Errorf("stem %s: %d consumers, want 2", name, counts[n.ID])
		}
	}
	for _, name := range []string{"g1", "g2"} {
		n, _ := c.NodeByName(name)
		if counts[n.ID] != 1 {
			t.Errorf("output gate %s: %d consumers, want 1", name, counts[n.ID])
		}
	}
	total := 0
	for _, n := range c.Nodes {
		total += len(n.Fanin)
	}
	total += c.NumOutputs()
	sum := 0
	for _, v := range counts {
		sum += v
	}
	if sum != total {
		t.Errorf("consumer counts sum %d, want %d (fanin edges + outputs)", sum, total)
	}
}
