package circuit

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT emits a Graphviz rendering of the netlist. Branch nodes are drawn
// as small points so fanout structure stays visible without clutter.
func (c *Circuit) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=LR;\n", c.Name)
	outputSet := make(map[int]bool, len(c.Outputs))
	for _, o := range c.Outputs {
		outputSet[o] = true
	}
	for _, n := range c.Nodes {
		switch n.Kind {
		case Input:
			fmt.Fprintf(bw, "  n%d [label=%q shape=triangle];\n", n.ID, n.Name)
		case Branch:
			fmt.Fprintf(bw, "  n%d [label=\"\" shape=point];\n", n.ID)
		case Const0, Const1:
			fmt.Fprintf(bw, "  n%d [label=%q shape=plaintext];\n", n.ID, n.Name)
		default:
			shape := "box"
			if outputSet[n.ID] {
				shape = "doublecircle"
			}
			fmt.Fprintf(bw, "  n%d [label=\"%s\\n%s\" shape=%s];\n", n.ID, n.Name, n.Kind, shape)
		}
	}
	for _, n := range c.Nodes {
		for _, f := range n.Fanin {
			fmt.Fprintf(bw, "  n%d -> n%d;\n", f, n.ID)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
