package synth

import (
	"fmt"

	"ndetect/internal/circuit"
	"ndetect/internal/encode"
	"ndetect/internal/kiss"
)

// Options controls synthesis.
type Options struct {
	// EncodingStyle selects the state encoding (encode.Binary by default).
	EncodingStyle string
	// NoReduce skips cover reduction, keeping one product term per
	// transition. Useful for ablation: the unreduced circuit is larger and
	// more redundant.
	NoReduce bool
	// MultiLevel enables common-cube extraction and fanin-capped tree
	// decomposition (see multilevel.go). The benchmark suite synthesizes
	// multi-level netlists, matching the character of the paper's circuits;
	// two-level PLA mapping remains available for the ablation bench.
	MultiLevel bool
	// MaxFanin caps gate fanin in multi-level mapping (default 4).
	MaxFanin int
}

// Result bundles the synthesized circuit with the mapping information a
// caller needs to interpret it.
type Result struct {
	Circuit  *circuit.Circuit
	STG      *kiss.STG
	Encoding *encode.Encoding

	// NumPIs and StateBits partition the circuit inputs: inputs
	// [0,NumPIs) are the machine's primary inputs, inputs
	// [NumPIs, NumPIs+StateBits) are present-state lines.
	NumPIs    int
	StateBits int
	// NumPOs and StateBits partition the circuit outputs the same way:
	// outputs [0,NumPOs) are machine outputs, the rest next-state bits.
	NumPOs int
}

// TotalInputs returns the circuit's input count (PIs + state lines).
func (r *Result) TotalInputs() int { return r.NumPIs + r.StateBits }

// Synthesize builds the combinational logic of the machine: a circuit with
// NumInputs+StateBits inputs and NumOutputs+StateBits outputs implementing
// the output and next-state functions under the chosen state encoding.
//
// Unspecified (state, input) combinations — including unused state codes —
// synthesize to all-zero outputs and next-state code 0, the natural
// consequence of building ON-set covers only.
func Synthesize(m *kiss.STG, opts Options) (*Result, error) {
	style := opts.EncodingStyle
	if style == "" {
		style = encode.Binary
	}
	enc, err := encode.New(style, m)
	if err != nil {
		return nil, err
	}

	width := m.NumInputs + enc.Bits
	if width > 24 {
		return nil, fmt.Errorf("synth: %s: %d total inputs exceeds the exhaustive-analysis limit of 24 (use partitioning)", m.Name, width)
	}

	covers, err := BuildCovers(m, enc)
	if err != nil {
		return nil, err
	}
	if !opts.NoReduce {
		for i := range covers {
			covers[i] = covers[i].Reduce()
		}
	}

	var c *circuit.Circuit
	if opts.MultiLevel {
		c, err = mapMultiLevel(m.Name, m.NumInputs, enc.Bits, m.NumOutputs, opts.MaxFanin, covers)
	} else {
		c, err = mapToNetlist(m.Name, m.NumInputs, enc.Bits, m.NumOutputs, covers)
	}
	if err != nil {
		return nil, err
	}
	return &Result{
		Circuit:   c,
		STG:       m,
		Encoding:  enc,
		NumPIs:    m.NumInputs,
		StateBits: enc.Bits,
		NumPOs:    m.NumOutputs,
	}, nil
}

// BuildCovers collects the ON-set cube cover of every function: first the
// NumOutputs machine outputs, then the StateBits next-state bits (bit
// enc.Bits-1 first, i.e. next-state lines in MSB-first order matching the
// present-state input order).
//
// Cube variable numbering: variable width-1 (MSB) is machine input 0,
// descending through the inputs, then present-state code bit enc.Bits-1 down
// to code bit 0 (LSB of the cube). This matches circuit.VectorBit's
// MSB-first convention with the input ordering x0..x(n-1), s0..s(b-1).
func BuildCovers(m *kiss.STG, enc *encode.Encoding) ([]Cover, error) {
	nf := m.NumOutputs + enc.Bits
	covers := make([]Cover, nf)
	for _, tr := range m.Transitions {
		from, ok := m.StateIndex(tr.From)
		if !ok {
			return nil, fmt.Errorf("synth: unknown state %q", tr.From)
		}
		to, ok := m.StateIndex(tr.To)
		if !ok {
			return nil, fmt.Errorf("synth: unknown state %q", tr.To)
		}
		cube, err := NewCube(tr.Input + enc.CodeString(from))
		if err != nil {
			return nil, err
		}
		for k := 0; k < m.NumOutputs; k++ {
			if tr.Output[k] == '1' {
				covers[k] = append(covers[k], cube)
			}
		}
		for b := 0; b < enc.Bits; b++ {
			// Function index for next-state line b (MSB-first): machine
			// outputs first, then code bit enc.Bits-1 at index NumOutputs.
			if enc.CodeBit(to, enc.Bits-1-b) {
				covers[m.NumOutputs+b] = append(covers[m.NumOutputs+b], cube)
			}
		}
	}
	return covers, nil
}

// mapToNetlist converts the covers to an AND/OR/NOT netlist with shared
// input inverters and PLA-style shared product terms: a cube used by
// several functions is materialized as one AND gate fanning out to each
// function's OR — the structure a PLA or any term-sharing synthesis flow
// produces, and the source of the fanout/reconvergence the fault analysis
// depends on.
func mapToNetlist(name string, numPIs, stateBits, numPOs int, covers []Cover) (*circuit.Circuit, error) {
	width := numPIs + stateBits
	b := circuit.NewBuilder(name)

	// Input order: x0..x(numPIs-1), s0..s(stateBits-1). Cube variable v
	// corresponds to input index width-1-v.
	inputName := make([]string, width)
	for i := 0; i < numPIs; i++ {
		inputName[i] = fmt.Sprintf("x%d", i)
	}
	for i := 0; i < stateBits; i++ {
		inputName[numPIs+i] = fmt.Sprintf("s%d", i)
	}
	for _, n := range inputName {
		b.Input(n)
	}

	// Shared inverters, created on demand.
	haveInv := make(map[int]bool)
	invName := func(idx int) string { return inputName[idx] + "_n" }
	literal := func(idx int, positive bool) string {
		if positive {
			return inputName[idx]
		}
		if !haveInv[idx] {
			b.Gate(circuit.Not, invName(idx), inputName[idx])
			haveInv[idx] = true
		}
		return invName(idx)
	}

	funcName := func(f int) string {
		if f < numPOs {
			return fmt.Sprintf("y%d", f)
		}
		return fmt.Sprintf("ns%d", f-numPOs)
	}

	// Shared product terms: one AND gate per distinct cube.
	termGate := make(map[Cube]string)
	termCount := 0
	termFor := func(cube Cube) string {
		if tn, ok := termGate[cube]; ok {
			return tn
		}
		var lits []string
		for v := width - 1; v >= 0; v-- {
			if cube.Care&(1<<uint(v)) == 0 {
				continue
			}
			idx := width - 1 - v
			lits = append(lits, literal(idx, cube.Val&(1<<uint(v)) != 0))
		}
		var tn string
		switch len(lits) {
		case 0:
			tn = "__one__" // tautological cube; handled by the caller
		case 1:
			tn = lits[0] // single literal: the signal itself
		default:
			tn = fmt.Sprintf("t%d", termCount)
			termCount++
			b.Gate(circuit.And, tn, lits...)
		}
		termGate[cube] = tn
		return tn
	}

	// Pass 1: materialize terms; remember per-function term signal names.
	termsOf := make([][]string, len(covers))
	haveConst0 := false
	for f, cv := range covers {
		for _, cube := range cv {
			tn := termFor(cube)
			if tn == "__one__" {
				termsOf[f] = []string{"__one__"}
				break
			}
			termsOf[f] = append(termsOf[f], tn)
		}
	}

	haveConst1 := false
	// Pass 2: OR the terms of each function and mark outputs.
	for f, terms := range covers {
		fn := funcName(f)
		// Deduplicate term signals: with NoReduce, identical single-literal
		// cubes would otherwise feed the OR gate twice.
		seen := make(map[string]bool)
		ts := termsOf[f][:0]
		for _, s := range termsOf[f] {
			if !seen[s] {
				seen[s] = true
				ts = append(ts, s)
			}
		}
		switch {
		case len(terms) == 0:
			if !haveConst0 {
				b.Const("__zero__", false)
				haveConst0 = true
			}
			b.Gate(circuit.Buf, fn, "__zero__")
		case len(ts) == 1 && ts[0] == "__one__":
			if !haveConst1 {
				b.Const("__one__", true)
				haveConst1 = true
			}
			b.Gate(circuit.Buf, fn, "__one__")
		case len(ts) == 1:
			b.Gate(circuit.Buf, fn, ts[0])
		default:
			b.Gate(circuit.Or, fn, ts...)
		}
		b.Output(fn)
	}
	return b.Build()
}
