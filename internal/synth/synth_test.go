package synth

import (
	"testing"

	"ndetect/internal/encode"
	"ndetect/internal/kiss"
)

const ringSrc = `
.i 2
.o 2
.r a
00 a a 00
01 a b 01
10 a c 10
11 a a 11
0- b c 01
1- b a 10
-- c a 00
.e
`

func parseRing(t *testing.T) *kiss.STG {
	t.Helper()
	m, err := kiss.ParseString("ring", ringSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return m
}

// checkAgainstSTG exhaustively compares the synthesized circuit with the
// symbolic machine: for every state and every input vector, the circuit's
// output bits must equal the STG outputs and the next-state bits must encode
// the STG next state.
func checkAgainstSTG(t *testing.T, r *Result) {
	t.Helper()
	m, enc, c := r.STG, r.Encoding, r.Circuit
	for si, st := range m.States {
		for v := 0; v < 1<<uint(m.NumInputs); v++ {
			// Assemble the circuit vector: PI bits (MSB-first) then state
			// code bits (MSB-first).
			vec := uint64(v)<<uint(enc.Bits) | pickCode(enc, si)
			outs := c.OutputsOf(c.Eval(vec))

			wantNext, wantOuts, _ := m.Simulate(st, v)
			for k := 0; k < m.NumOutputs; k++ {
				if outs[k] != wantOuts[k] {
					t.Fatalf("state %s v=%d: output %d = %v, want %v", st, v, k, outs[k], wantOuts[k])
				}
			}
			// Decode next state bits (outputs NumPOs.. are MSB-first).
			var code uint64
			for b := 0; b < enc.Bits; b++ {
				if outs[m.NumOutputs+b] {
					code |= 1 << uint(enc.Bits-1-b)
				}
			}
			ni, ok := m.StateIndex(wantNext)
			if !ok {
				t.Fatalf("unknown next state %q", wantNext)
			}
			_, _, matched := m.Simulate(st, v)
			if matched {
				if code != enc.Codes[ni] {
					t.Fatalf("state %s v=%d: next code = %b, want %b (%s)", st, v, code, enc.Codes[ni], wantNext)
				}
			} else if code != 0 {
				// Unspecified entries synthesize to next-state code 0.
				t.Fatalf("state %s v=%d: unspecified entry gave next code %b, want 0", st, v, code)
			}
		}
	}
}

func pickCode(e *encode.Encoding, state int) uint64 { return e.Codes[state] }

func TestSynthesizeMatchesSTG(t *testing.T) {
	for _, style := range []string{encode.Binary, encode.Gray} {
		r, err := Synthesize(parseRing(t), Options{EncodingStyle: style})
		if err != nil {
			t.Fatalf("Synthesize(%s): %v", style, err)
		}
		checkAgainstSTG(t, r)
	}
}

func TestSynthesizeOneHotMatchesSTG(t *testing.T) {
	r, err := Synthesize(parseRing(t), Options{EncodingStyle: encode.OneHot})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	checkAgainstSTG(t, r)
}

func TestSynthesizeNoReduceSameFunction(t *testing.T) {
	a, err := Synthesize(parseRing(t), Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	b, err := Synthesize(parseRing(t), Options{NoReduce: true})
	if err != nil {
		t.Fatalf("Synthesize(NoReduce): %v", err)
	}
	checkAgainstSTG(t, b)
	n := a.TotalInputs()
	for v := uint64(0); v < 1<<uint(n); v++ {
		oa := a.Circuit.OutputsOf(a.Circuit.Eval(v))
		ob := b.Circuit.OutputsOf(b.Circuit.Eval(v))
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("NoReduce changed function at v=%d output %d", v, i)
			}
		}
	}
	if b.Circuit.NumGates() < a.Circuit.NumGates() {
		t.Fatalf("NoReduce produced fewer gates (%d) than reduced (%d)",
			b.Circuit.NumGates(), a.Circuit.NumGates())
	}
}

func TestResultShape(t *testing.T) {
	r, err := Synthesize(parseRing(t), Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if r.NumPIs != 2 || r.StateBits != 2 || r.NumPOs != 2 {
		t.Fatalf("shape: PIs=%d StateBits=%d POs=%d", r.NumPIs, r.StateBits, r.NumPOs)
	}
	if r.Circuit.NumInputs() != 4 {
		t.Fatalf("circuit inputs = %d, want 4", r.Circuit.NumInputs())
	}
	if r.Circuit.NumOutputs() != 4 {
		t.Fatalf("circuit outputs = %d, want 4", r.Circuit.NumOutputs())
	}
	// Input names follow the x*/s* convention.
	in0 := r.Circuit.Node(r.Circuit.Inputs[0])
	in2 := r.Circuit.Node(r.Circuit.Inputs[2])
	if in0.Name != "x0" || in2.Name != "s0" {
		t.Fatalf("input names %q,%q, want x0,s0", in0.Name, in2.Name)
	}
}

func TestSynthesizeTooWideRejected(t *testing.T) {
	src := ".i 25\n.o 1\n"
	cube := ""
	for i := 0; i < 25; i++ {
		cube += "-"
	}
	src += cube + " a a 1\n.e\n"
	m, err := kiss.ParseString("wide", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if _, err := Synthesize(m, Options{}); err == nil {
		t.Fatal("Synthesize accepted a 25-input machine")
	}
}

func TestConstantFunctions(t *testing.T) {
	// Output 0 is never 1 (const 0); output 1 is always 1 (tautology after
	// reduction of "- a a" covering everything with one state).
	m, err := kiss.ParseString("consts", ".i 1\n.o 2\n- a a 01\n.e\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	r, err := Synthesize(m, Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	for v := uint64(0); v < 1<<uint(r.TotalInputs()); v++ {
		outs := r.Circuit.OutputsOf(r.Circuit.Eval(v))
		if outs[0] {
			t.Fatalf("v=%d: constant-0 output is 1", v)
		}
	}
	// y1 = 1 whenever the state line selects state a (code 0 → s0=0).
	outs := r.Circuit.OutputsOf(r.Circuit.Eval(0))
	if !outs[1] {
		t.Fatal("y1 should be 1 in state a")
	}
}

func TestSynthesizedCircuitHasMultiInputGates(t *testing.T) {
	r, err := Synthesize(parseRing(t), Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if got := r.Circuit.ComputeStats().MultiInputGates; got == 0 {
		t.Fatal("synthesis produced no multi-input gates; bridging fault universe would be empty")
	}
}

func TestSynthesizeMultiLevelMatchesSTG(t *testing.T) {
	for _, mf := range []int{2, 3, 4} {
		r, err := Synthesize(parseRing(t), Options{MultiLevel: true, MaxFanin: mf})
		if err != nil {
			t.Fatalf("Synthesize(ml,%d): %v", mf, err)
		}
		checkAgainstSTG(t, r)
	}
}

func TestMultiLevelRespectsFaninCap(t *testing.T) {
	r, err := Synthesize(parseRing(t), Options{MultiLevel: true, MaxFanin: 3})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if got := r.Circuit.ComputeStats().MaxFanin; got > 3 {
		t.Fatalf("MaxFanin = %d, want ≤ 3", got)
	}
}
