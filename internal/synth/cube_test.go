package synth

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCube(t *testing.T, s string) Cube {
	t.Helper()
	c, err := NewCube(s)
	if err != nil {
		t.Fatalf("NewCube(%q): %v", s, err)
	}
	return c
}

func TestNewCubeAndString(t *testing.T) {
	for _, s := range []string{"01-", "----", "1", "0", "10-01"} {
		c := mustCube(t, s)
		if got := c.String(len(s)); got != s {
			t.Fatalf("round trip %q → %q", s, got)
		}
	}
	if _, err := NewCube("01x"); err == nil {
		t.Fatal("NewCube accepted bad character")
	}
}

func TestCubeMatches(t *testing.T) {
	c := mustCube(t, "1-0") // var2=1, var0=0
	cases := []struct {
		a    uint64
		want bool
	}{
		{0b100, true}, {0b110, true}, {0b101, false}, {0b000, false},
	}
	for _, tc := range cases {
		if got := c.Matches(tc.a); got != tc.want {
			t.Errorf("Matches(%03b) = %v, want %v", tc.a, got, tc.want)
		}
	}
}

func TestCovers(t *testing.T) {
	wide := mustCube(t, "1--")
	narrow := mustCube(t, "1-0")
	if !wide.Covers(narrow) {
		t.Fatal("1-- must cover 1-0")
	}
	if narrow.Covers(wide) {
		t.Fatal("1-0 must not cover 1--")
	}
	if !wide.Covers(wide) {
		t.Fatal("cube must cover itself")
	}
	other := mustCube(t, "0--")
	if wide.Covers(other) || other.Covers(wide) {
		t.Fatal("disjoint cubes cover nothing")
	}
}

func TestOverlaps(t *testing.T) {
	a := mustCube(t, "1-0")
	b := mustCube(t, "-10")
	if !a.Overlaps(b) { // 110 is common
		t.Fatal("1-0 and -10 overlap at 110")
	}
	c := mustCube(t, "0--")
	if a.Overlaps(c) {
		t.Fatal("1-0 and 0-- are disjoint")
	}
}

func TestTryMerge(t *testing.T) {
	a := mustCube(t, "10-")
	b := mustCube(t, "00-")
	m, ok := a.TryMerge(b)
	if !ok {
		t.Fatal("10- and 00- must merge")
	}
	if got := m.String(3); got != "-0-" {
		t.Fatalf("merge = %q, want -0-", got)
	}
	// Different care sets: no merge.
	if _, ok := a.TryMerge(mustCube(t, "1--")); ok {
		t.Fatal("cubes with different care sets merged")
	}
	// Distance 2: no merge.
	if _, ok := mustCube(t, "11-").TryMerge(mustCube(t, "00-")); ok {
		t.Fatal("distance-2 cubes merged")
	}
}

func TestReducePreservesOnset(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const width = 6
	for trial := 0; trial < 200; trial++ {
		var cv Cover
		n := 1 + rng.Intn(12)
		for i := 0; i < n; i++ {
			buf := make([]byte, width)
			for j := range buf {
				buf[j] = "01-"[rng.Intn(3)]
			}
			c, err := NewCube(string(buf))
			if err != nil {
				t.Fatal(err)
			}
			cv = append(cv, c)
		}
		red := cv.Reduce()
		if !cv.Equivalent(red, width) {
			t.Fatalf("trial %d: Reduce changed the onset:\n  in:  %s\n  out: %s",
				trial, cv.coverString(width), red.coverString(width))
		}
		if len(red) > len(cv) {
			t.Fatalf("trial %d: Reduce grew the cover from %d to %d cubes", trial, len(cv), len(red))
		}
	}
}

func TestReduceMergesAdjacent(t *testing.T) {
	cv := Cover{mustCube(t, "000"), mustCube(t, "001"), mustCube(t, "010"), mustCube(t, "011")}
	red := cv.Reduce()
	if len(red) != 1 {
		t.Fatalf("Reduce produced %d cubes (%s), want 1 (0--)", len(red), red.coverString(3))
	}
	if got := red[0].String(3); got != "0--" {
		t.Fatalf("Reduce = %q, want 0--", got)
	}
}

func TestReduceDropsContained(t *testing.T) {
	cv := Cover{mustCube(t, "1--"), mustCube(t, "10-"), mustCube(t, "101")}
	red := cv.Reduce()
	if len(red) != 1 || red[0].String(3) != "1--" {
		t.Fatalf("Reduce = %s, want just 1--", red.coverString(3))
	}
}

func TestReduceEmptyCover(t *testing.T) {
	var cv Cover
	if red := cv.Reduce(); len(red) != 0 {
		t.Fatalf("Reduce(empty) = %d cubes", len(red))
	}
}

func TestQuickCoverProperties(t *testing.T) {
	// Covers implies Overlaps (for non-empty cubes, which ours always are —
	// care/val normalization cannot express an empty cube).
	mk := func(care, val uint64) Cube {
		care &= 0xff
		return Cube{Care: care, Val: val & care}
	}
	coversImpliesOverlaps := func(c1, v1, c2, v2 uint64) bool {
		a, b := mk(c1, v1), mk(c2, v2)
		if a.Covers(b) {
			return a.Overlaps(b)
		}
		return true
	}
	if err := quick.Check(coversImpliesOverlaps, nil); err != nil {
		t.Error(err)
	}

	// Covers agrees with exhaustive minterm containment over 8 variables.
	coversIsContainment := func(c1, v1, c2, v2 uint64) bool {
		a, b := mk(c1, v1), mk(c2, v2)
		want := true
		for x := uint64(0); x < 256; x++ {
			if b.Matches(x) && !a.Matches(x) {
				want = false
				break
			}
		}
		return a.Covers(b) == want
	}
	if err := quick.Check(coversIsContainment, nil); err != nil {
		t.Error(err)
	}

	// Overlaps agrees with exhaustive check.
	overlapsIsIntersection := func(c1, v1, c2, v2 uint64) bool {
		a, b := mk(c1, v1), mk(c2, v2)
		want := false
		for x := uint64(0); x < 256; x++ {
			if a.Matches(x) && b.Matches(x) {
				want = true
				break
			}
		}
		return a.Overlaps(b) == want
	}
	if err := quick.Check(overlapsIsIntersection, nil); err != nil {
		t.Error(err)
	}
}
