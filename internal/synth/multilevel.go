package synth

import (
	"fmt"
	"sort"

	"ndetect/internal/circuit"
)

// Multi-level synthesis. Two-level PLA mapping (mapToNetlist) produces a
// structure in which nearly every bridging fault has nmin(g) = 1: whenever
// the dominant and victim terms feed a common OR gate, the victim's branch
// fault into that OR has a test set contained in the bridge's, so any
// 1-detection test set is guaranteed to catch the bridge. Real benchmark
// netlists are multi-level; this pass reproduces that character with two
// classical transformations:
//
//  1. common-cube extraction (fast_extract style, restricted to two-signal
//     divisors): the most frequent signal pair across all product terms is
//     pulled out as a shared AND2 node and substituted everywhere, iterated
//     to a fixpoint, and
//  2. fanin-capped tree decomposition of the remaining wide AND terms and
//     OR sums.
//
// The result is a DAG with shared subfunctions, reconvergent fanout and
// long masked propagation paths — the structure on which the paper's nmin
// distribution develops its head (nmin = 1 for most faults) and its tail
// (nmin ≫ 10 for a few).

// signal encodes a literal or an extracted node: values 0..2w-1 are input
// literals (2v = input v positive, 2v+1 = negated); values ≥ 2w index
// extracted AND2 nodes.
type signal = int

// extNode is an extracted AND2 divisor over two signals.
type extNode struct {
	a, b signal
}

// mlCube is a product term as a sorted set of signals.
type mlCube []signal

// mlNetwork is the intermediate multi-level representation.
type mlNetwork struct {
	width int       // number of input variables
	ext   []extNode // extraction nodes, ID = 2*width + index
	funcs [][]mlCube
	tauto []bool // function is constant 1
}

// buildML converts reduced covers into the multi-level representation and
// runs pair extraction.
func buildML(width int, covers []Cover) *mlNetwork {
	net := &mlNetwork{
		width: width,
		funcs: make([][]mlCube, len(covers)),
		tauto: make([]bool, len(covers)),
	}
	for f, cv := range covers {
		for _, cube := range cv {
			sig := cubeSignals(cube, width)
			if len(sig) == 0 {
				net.tauto[f] = true
				net.funcs[f] = nil
				break
			}
			net.funcs[f] = append(net.funcs[f], sig)
		}
	}
	net.extractPairs()
	return net
}

func cubeSignals(c Cube, width int) mlCube {
	var out mlCube
	for v := 0; v < width; v++ {
		if c.Care&(1<<uint(v)) == 0 {
			continue
		}
		if c.Val&(1<<uint(v)) != 0 {
			out = append(out, 2*v)
		} else {
			out = append(out, 2*v+1)
		}
	}
	sort.Ints(out)
	return out
}

// extractPairs repeatedly extracts the globally most frequent signal pair
// into a shared AND2 node until no pair occurs in at least two terms.
// Ties break deterministically on the pair values.
func (n *mlNetwork) extractPairs() {
	for {
		counts := make(map[[2]signal]int)
		for f := range n.funcs {
			for _, cube := range n.funcs[f] {
				for i := 0; i < len(cube); i++ {
					for j := i + 1; j < len(cube); j++ {
						counts[[2]signal{cube[i], cube[j]}]++
					}
				}
			}
		}
		var best [2]signal
		bestCount := 1
		for p, c := range counts {
			if c > bestCount || (c == bestCount && c > 1 && pairLess(p, best)) {
				best = p
				bestCount = c
			}
		}
		if bestCount < 2 {
			return
		}
		id := 2*n.width + len(n.ext)
		n.ext = append(n.ext, extNode{a: best[0], b: best[1]})
		for f := range n.funcs {
			for ci, cube := range n.funcs[f] {
				if containsBoth(cube, best[0], best[1]) {
					n.funcs[f][ci] = substitute(cube, best[0], best[1], id)
				}
			}
			n.funcs[f] = dedupCubes(n.funcs[f])
		}
	}
}

func pairLess(a, b [2]signal) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

func containsBoth(cube mlCube, a, b signal) bool {
	var hasA, hasB bool
	for _, s := range cube {
		if s == a {
			hasA = true
		}
		if s == b {
			hasB = true
		}
	}
	return hasA && hasB
}

func substitute(cube mlCube, a, b signal, id signal) mlCube {
	out := make(mlCube, 0, len(cube)-1)
	for _, s := range cube {
		if s != a && s != b {
			out = append(out, s)
		}
	}
	out = append(out, id)
	sort.Ints(out)
	return out
}

func dedupCubes(cubes []mlCube) []mlCube {
	seen := make(map[string]bool, len(cubes))
	out := cubes[:0]
	for _, c := range cubes {
		k := fmt.Sprint([]signal(c))
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	return out
}

// mapMultiLevel emits the netlist for the extracted network.
func mapMultiLevel(name string, numPIs, stateBits, numPOs, maxFanin int, covers []Cover) (*circuit.Circuit, error) {
	width := numPIs + stateBits
	if maxFanin < 2 {
		maxFanin = 4
	}
	net := buildML(width, covers)

	b := circuit.NewBuilder(name)
	inputName := make([]string, width)
	for i := 0; i < numPIs; i++ {
		inputName[i] = fmt.Sprintf("x%d", i)
	}
	for i := 0; i < stateBits; i++ {
		inputName[numPIs+i] = fmt.Sprintf("s%d", i)
	}
	for _, nm := range inputName {
		b.Input(nm)
	}

	// Cube variable v corresponds to input index width-1-v.
	haveInv := make(map[int]bool)
	sigName := make(map[signal]string)
	var nameOf func(s signal) string
	nameOf = func(s signal) string {
		if nm, ok := sigName[s]; ok {
			return nm
		}
		var nm string
		if s < 2*width {
			v := s / 2
			idx := width - 1 - v
			if s%2 == 0 {
				nm = inputName[idx]
			} else {
				nm = inputName[idx] + "_n"
				if !haveInv[idx] {
					b.Gate(circuit.Not, nm, inputName[idx])
					haveInv[idx] = true
				}
			}
		} else {
			e := net.ext[s-2*width]
			nm = fmt.Sprintf("e%d", s-2*width)
			b.Gate(circuit.And, nm, nameOf(e.a), nameOf(e.b))
		}
		sigName[s] = nm
		return nm
	}

	// treeGate builds a fanin-capped tree of the given kind over the input
	// signal names, returning the root signal name. Single input: returned
	// directly (no gate).
	gateSeq := 0
	var treeGate func(kind circuit.Kind, prefix string, ins []string) string
	treeGate = func(kind circuit.Kind, prefix string, ins []string) string {
		ins = dedupStrings(ins)
		if len(ins) == 1 {
			return ins[0]
		}
		if len(ins) <= maxFanin {
			nm := fmt.Sprintf("%s_%d", prefix, gateSeq)
			gateSeq++
			b.Gate(kind, nm, ins...)
			return nm
		}
		var level []string
		for i := 0; i < len(ins); i += maxFanin {
			end := i + maxFanin
			if end > len(ins) {
				end = len(ins)
			}
			level = append(level, treeGate(kind, prefix, ins[i:end]))
		}
		return treeGate(kind, prefix, level)
	}

	// Shared terms: identical signal sets map to one AND tree.
	termName := make(map[string]string)
	termFor := func(cube mlCube) string {
		k := fmt.Sprint([]signal(cube))
		if nm, ok := termName[k]; ok {
			return nm
		}
		ins := make([]string, len(cube))
		for i, s := range cube {
			ins[i] = nameOf(s)
		}
		nm := treeGate(circuit.And, "t", ins)
		termName[k] = nm
		return nm
	}

	funcName := func(f int) string {
		if f < numPOs {
			return fmt.Sprintf("y%d", f)
		}
		return fmt.Sprintf("ns%d", f-numPOs)
	}

	haveConst0, haveConst1 := false, false
	for f := range net.funcs {
		fn := funcName(f)
		switch {
		case net.tauto[f]:
			if !haveConst1 {
				b.Const("__one__", true)
				haveConst1 = true
			}
			b.Gate(circuit.Buf, fn, "__one__")
		case len(net.funcs[f]) == 0:
			if !haveConst0 {
				b.Const("__zero__", false)
				haveConst0 = true
			}
			b.Gate(circuit.Buf, fn, "__zero__")
		default:
			terms := make([]string, len(net.funcs[f]))
			for i, cube := range net.funcs[f] {
				terms[i] = termFor(cube)
			}
			root := treeGate(circuit.Or, "o", terms)
			b.Gate(circuit.Buf, fn, root)
		}
		b.Output(fn)
	}
	return b.Build()
}

func dedupStrings(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
