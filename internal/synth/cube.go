// Package synth synthesizes the combinational next-state/output logic of an
// encoded STG into a gate-level circuit — the "combinational logic of the
// FSM benchmark" that the paper's analysis runs on.
//
// The flow is classical two-level synthesis: every logic function (each
// primary output and each next-state bit) is collected as a sum-of-products
// cube cover, the cover is reduced by single-cube containment and
// distance-1 merging, and the result is mapped to a shared-inverter
// AND/OR netlist.
package synth

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Cube is a product term over up to 64 variables: bit v of Care is set when
// variable v is specified, in which case bit v of Val gives its required
// value. Val bits outside Care must be zero (normalized form).
type Cube struct {
	Care, Val uint64
}

// NewCube parses a cube from a {0,1,-} string where position 0 is variable
// width-1 (MSB-first, matching the circuit input vector convention).
func NewCube(s string) (Cube, error) {
	var c Cube
	w := len(s)
	if w > 64 {
		return c, fmt.Errorf("synth: cube %q wider than 64 variables", s)
	}
	for i := 0; i < w; i++ {
		v := uint(w - 1 - i)
		switch s[i] {
		case '0':
			c.Care |= 1 << v
		case '1':
			c.Care |= 1 << v
			c.Val |= 1 << v
		case '-':
		default:
			return c, fmt.Errorf("synth: bad cube character %q in %q", s[i], s)
		}
	}
	return c, nil
}

// String renders the cube MSB-first over width variables.
func (c Cube) String(width int) string {
	buf := make([]byte, width)
	for i := 0; i < width; i++ {
		v := uint(width - 1 - i)
		switch {
		case c.Care&(1<<v) == 0:
			buf[i] = '-'
		case c.Val&(1<<v) != 0:
			buf[i] = '1'
		default:
			buf[i] = '0'
		}
	}
	return string(buf)
}

// NumLiterals returns the number of specified variables.
func (c Cube) NumLiterals() int { return bits.OnesCount64(c.Care) }

// Matches reports whether the fully specified assignment a (bit v = variable
// v) is in the cube.
func (c Cube) Matches(a uint64) bool { return a&c.Care == c.Val }

// Covers reports whether every minterm of d is a minterm of c.
func (c Cube) Covers(d Cube) bool {
	// c covers d iff c's specified variables are a subset of d's and agree.
	return c.Care&^d.Care == 0 && d.Val&c.Care == c.Val
}

// Overlaps reports whether c and d share at least one minterm.
func (c Cube) Overlaps(d Cube) bool {
	common := c.Care & d.Care
	return c.Val&common == d.Val&common
}

// TryMerge merges two cubes that have identical care sets and differ in
// exactly one value bit (the classical Quine–McCluskey adjacency step).
func (c Cube) TryMerge(d Cube) (Cube, bool) {
	if c.Care != d.Care {
		return Cube{}, false
	}
	diff := c.Val ^ d.Val
	if bits.OnesCount64(diff) != 1 {
		return Cube{}, false
	}
	return Cube{Care: c.Care &^ diff, Val: c.Val &^ diff}, true
}

// Cover is a sum-of-products: a disjunction of cubes.
type Cover []Cube

// Matches reports whether assignment a satisfies any cube of the cover.
func (cv Cover) Matches(a uint64) bool {
	for _, c := range cv {
		if c.Matches(a) {
			return true
		}
	}
	return false
}

// Reduce returns an equivalent, usually smaller cover: duplicate and
// contained cubes are dropped and distance-1 adjacent cubes are merged,
// iterating to a fixpoint. Reduce preserves the cover's onset exactly (it
// never expands into the offset), which tests verify exhaustively.
func (cv Cover) Reduce() Cover {
	cur := append(Cover(nil), cv...)
	for {
		changed := false

		// Containment and duplicate removal.
		sort.Slice(cur, func(i, j int) bool {
			if cur[i].NumLiterals() != cur[j].NumLiterals() {
				return cur[i].NumLiterals() < cur[j].NumLiterals()
			}
			if cur[i].Care != cur[j].Care {
				return cur[i].Care < cur[j].Care
			}
			return cur[i].Val < cur[j].Val
		})
		kept := cur[:0]
		for _, c := range cur {
			covered := false
			for _, k := range kept {
				if k.Covers(c) {
					covered = true
					break
				}
			}
			if !covered {
				kept = append(kept, c)
			} else {
				changed = true
			}
		}
		cur = kept

		// Distance-1 merging. Merged pairs are replaced by their union;
		// the next containment pass cleans up.
		merged := make([]bool, len(cur))
		var adds Cover
		for i := 0; i < len(cur); i++ {
			if merged[i] {
				continue
			}
			for j := i + 1; j < len(cur); j++ {
				if merged[j] {
					continue
				}
				if u, ok := cur[i].TryMerge(cur[j]); ok {
					merged[i], merged[j] = true, true
					adds = append(adds, u)
					changed = true
					break
				}
			}
		}
		if len(adds) > 0 {
			next := adds
			for i, c := range cur {
				if !merged[i] {
					next = append(next, c)
				}
			}
			cur = next
		}
		if !changed {
			return cur
		}
	}
}

// Equivalent reports whether two covers have the same onset over width
// variables, by exhaustive enumeration (width must be small; used in tests
// and assertions).
func (cv Cover) Equivalent(other Cover, width int) bool {
	for a := uint64(0); a < 1<<uint(width); a++ {
		if cv.Matches(a) != other.Matches(a) {
			return false
		}
	}
	return true
}

// coverString renders the cover for diagnostics.
func (cv Cover) coverString(width int) string {
	parts := make([]string, len(cv))
	for i, c := range cv {
		parts[i] = c.String(width)
	}
	return strings.Join(parts, " + ")
}
