package partition

import (
	"sort"
	"sync"
	"sync/atomic"

	"ndetect/internal/circuit"
	"ndetect/internal/ndetect"
	"ndetect/internal/sim"
)

// PartAnalysis is the worst-case analysis of one part, summarized so the
// part's universe (whose per-fault T-sets can dominate memory for wide
// parts, even though the streaming engine materializes no per-node values)
// is released as soon as the part completes.
type PartAnalysis struct {
	Part *Part
	// Stats describes the part's subcircuit.
	Stats circuit.Stats
	// Targets and DetectableTargets count the part's collapsed stuck-at
	// universe; Untargeted counts its detectable bridging faults.
	Targets           int
	DetectableTargets int
	Untargeted        int
	// NMin maps each of the part's bridging faults (by name) to its
	// per-part nmin. Per-part values are relative to the part's own input
	// space and outputs — see the package comment for what that
	// approximates.
	NMin map[string]int
}

// CoverageAt returns the fraction (0..1) of the part's bridging faults
// with nmin ≤ n.
func (a *PartAnalysis) CoverageAt(n int) float64 {
	if len(a.NMin) == 0 {
		return 1
	}
	c := 0
	for _, v := range a.NMin {
		if v <= n {
			c++
		}
	}
	return float64(c) / float64(len(a.NMin))
}

// AnalysisResult is the outcome of the end-to-end partitioned pipeline:
// per-part summaries in Split order plus the MergeNMin combination.
type AnalysisResult struct {
	Circuit string
	// MaxInputs is the effective per-part input limit used by Split.
	MaxInputs int
	Parts     []*PartAnalysis
	// Merged maps every bridging fault seen by any part to the smallest
	// per-part nmin (a guarantee through any part is a guarantee overall).
	Merged map[string]int
}

// MergedNames returns the merged fault names in sorted order — the
// deterministic iteration order reports should use.
func (r *AnalysisResult) MergedNames() []string {
	names := make([]string, 0, len(r.Merged))
	for k := range r.Merged {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// MergedCoverageAt returns the fraction (0..1) of merged faults with
// nmin ≤ n.
func (r *AnalysisResult) MergedCoverageAt(n int) float64 {
	if len(r.Merged) == 0 {
		return 1
	}
	c := 0
	for _, v := range r.Merged {
		if v <= n {
			c++
		}
	}
	return float64(c) / float64(len(r.Merged))
}

// MergedCountAtLeast returns the number of merged faults with nmin ≥ n
// (Unbounded included).
func (r *AnalysisResult) MergedCountAtLeast(n int) int {
	c := 0
	for _, v := range r.Merged {
		if v >= n {
			c++
		}
	}
	return c
}

// MergedMaxFinite returns the largest finite merged nmin, or 0 if none.
func (r *AnalysisResult) MergedMaxFinite() int {
	best := 0
	for _, v := range r.Merged {
		if v != ndetect.Unbounded && v > best {
			best = v
		}
	}
	return best
}

// AnalyzeParts runs the paper's Section 4 workaround end to end: Split the
// circuit into ≤ MaxInputs-input output cones, run the exhaustive
// worst-case analysis on every part, and merge the per-part nmin verdicts.
//
// Parts fan out across a bounded pool with the same budget-splitting rule
// as the experiment drivers (DESIGN.md §5): with W workers and P parts,
// min(W, P) parts run concurrently and each receives ⌊W / min(W, P)⌋
// inner workers for its simulation, T-set construction and worst-case
// scan, keeping CPU-bound goroutines ≈ W and bounding live part universes
// at min(W, P). Results are assembled in Split order, so the output is
// identical for every worker count (0 = one worker per CPU, 1 = the exact
// serial pass).
func AnalyzeParts(c *circuit.Circuit, opts Options, workers int) (*AnalysisResult, error) {
	parts, err := Split(c, opts)
	if err != nil {
		return nil, err
	}

	total := sim.ResolveWorkers(workers)
	outer := total
	if outer > len(parts) {
		outer = len(parts)
	}
	inner := 1
	if outer > 0 {
		inner = total / outer
		if inner < 1 {
			inner = 1
		}
	}

	analyses := make([]*PartAnalysis, len(parts))
	errs := make([]error, len(parts))
	var failed atomic.Bool
	var progressMu sync.Mutex
	finished := 0
	sim.ParallelFor(outer, len(parts), func(i int) {
		if failed.Load() {
			return
		}
		a, err := analyzeOne(parts[i], inner)
		if err != nil {
			errs[i] = err
			failed.Store(true)
			return
		}
		analyses[i] = a
		if opts.Progress != nil {
			progressMu.Lock()
			finished++
			opts.Progress(finished, len(parts))
			progressMu.Unlock()
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	perPart := make([]map[string]int, len(analyses))
	for i, a := range analyses {
		perPart[i] = a.NMin
	}
	return &AnalysisResult{
		Circuit:   c.Name,
		MaxInputs: opts.effectiveMaxInputs(),
		Parts:     analyses,
		Merged:    MergeNMin(perPart),
	}, nil
}

// analyzeOne builds one part's fault universe and worst-case result with
// the given inner worker budget, and summarizes it.
func analyzeOne(p *Part, workers int) (*PartAnalysis, error) {
	u, err := ndetect.FromCircuitWorkers(p.Circuit, workers)
	if err != nil {
		return nil, err
	}
	wc := ndetect.WorstCaseWorkers(&u.Universe, workers)
	nmin := make(map[string]int, len(u.Untargeted))
	for j, g := range u.Untargeted {
		nmin[g.Name] = wc.NMin[j]
	}
	return &PartAnalysis{
		Part:              p,
		Stats:             p.Circuit.ComputeStats(),
		Targets:           len(u.Targets),
		DetectableTargets: u.DetectableTargets(),
		Untargeted:        len(u.Untargeted),
		NMin:              nmin,
	}, nil
}
