package partition

import (
	"fmt"
	"testing"

	"ndetect/internal/bench"
	"ndetect/internal/circuit"
	"ndetect/internal/ndetect"
)

// TestAnalyzePartsExactOnFullPart is the pipeline's soundness anchor: when
// the input limit admits the whole circuit, Split produces a single part
// containing every cone, and the partitioned pipeline must then agree with
// the full-circuit analysis on every bridge — same fault set, same nmin.
// (Every bridge is "visible inside a single part" here; the round trip
// through Extract → Builder → renormalization must not perturb anything.)
// For tighter limits the per-part values are approximations — each part
// sees a projection of the input space, so vector multiplicities scale —
// which is why no cross-size numeric equality is asserted; see DESIGN.md §8.
func TestAnalyzePartsExactOnFullPart(t *testing.T) {
	for _, name := range []string{"lion", "train4", "dk27", "mc", "bbara"} {
		b, ok := bench.ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %q", name)
		}
		r, err := b.SynthesizeDefault()
		if err != nil {
			t.Fatalf("%s: Synthesize: %v", name, err)
		}
		c := r.Circuit

		u, err := ndetect.FromCircuit(c)
		if err != nil {
			t.Fatalf("%s: FromCircuit: %v", name, err)
		}
		wc := ndetect.WorstCase(&u.Universe)
		want := make(map[string]int, len(u.Untargeted))
		for j, g := range u.Untargeted {
			want[g.Name] = wc.NMin[j]
		}

		res, err := AnalyzeParts(c, Options{MaxInputs: c.NumInputs()}, 0)
		if err != nil {
			t.Fatalf("%s: AnalyzeParts: %v", name, err)
		}
		if len(res.Parts) != 1 {
			t.Fatalf("%s: limit %d produced %d parts, want 1", name, c.NumInputs(), len(res.Parts))
		}
		if len(res.Merged) != len(want) {
			t.Fatalf("%s: merged has %d bridges, full analysis %d", name, len(res.Merged), len(want))
		}
		for g, nm := range want {
			got, ok := res.Merged[g]
			if !ok {
				t.Fatalf("%s: bridge %s missing from partitioned result", name, g)
			}
			if got != nm {
				t.Fatalf("%s: bridge %s: partitioned nmin = %d, full = %d", name, g, got, nm)
			}
		}
	}
}

// TestAnalyzePartsWorkersDeterministic mirrors exp.TestRunAllWorkersDeterministic
// for the partitioned pipeline: the Workers knob must not change any output —
// same parts in the same order, same per-part maps, same merge.
func TestAnalyzePartsWorkersDeterministic(t *testing.T) {
	c, err := circuit.EmbeddedBench("w64")
	if err != nil {
		t.Fatalf("EmbeddedBench(w64): %v", err)
	}
	render := func(r *AnalysisResult) string {
		s := fmt.Sprintf("circuit=%s maxin=%d merged=%v\n", r.Circuit, r.MaxInputs, r.Merged)
		for i, a := range r.Parts {
			s += fmt.Sprintf("part %d outputs=%v support=%v stats=%v targets=%d/%d nmin=%v\n",
				i, a.Part.Outputs, a.Part.Support, a.Stats, a.DetectableTargets, a.Targets, a.NMin)
		}
		return s
	}

	serial, err := AnalyzeParts(c, Options{MaxInputs: 16}, 1)
	if err != nil {
		t.Fatalf("AnalyzeParts workers=1: %v", err)
	}
	want := render(serial)
	for _, workers := range []int{2, 8, 0} {
		got, err := AnalyzeParts(c, Options{MaxInputs: 16}, workers)
		if err != nil {
			t.Fatalf("AnalyzeParts workers=%d: %v", workers, err)
		}
		if r := render(got); r != want {
			t.Fatalf("workers=%d output differs from serial:\n got %s\nwant %s", workers, r, want)
		}
	}
}

// TestAnalyzePartsMergeConsistency checks the assembled result's internal
// invariants on the wide sample: the merge is exactly MergeNMin over the
// per-part maps, every part fault appears merged, and every nmin is ≥ 1.
func TestAnalyzePartsMergeConsistency(t *testing.T) {
	c, err := circuit.EmbeddedBench("w64")
	if err != nil {
		t.Fatalf("EmbeddedBench(w64): %v", err)
	}
	res, err := AnalyzeParts(c, Options{MaxInputs: 16}, 0)
	if err != nil {
		t.Fatalf("AnalyzeParts: %v", err)
	}
	if len(res.Parts) < 2 {
		t.Fatalf("w64 at limit 16 produced %d parts, want several", len(res.Parts))
	}
	perPart := make([]map[string]int, len(res.Parts))
	for i, a := range res.Parts {
		perPart[i] = a.NMin
		if a.Untargeted != len(a.NMin) {
			t.Fatalf("part %d: Untargeted=%d but %d nmin entries", i, a.Untargeted, len(a.NMin))
		}
		for g, v := range a.NMin {
			if v < 1 {
				t.Fatalf("part %d: bridge %s has nmin %d < 1", i, g, v)
			}
			if _, ok := res.Merged[g]; !ok {
				t.Fatalf("part %d: bridge %s missing from merge", i, g)
			}
		}
	}
	want := MergeNMin(perPart)
	if fmt.Sprint(want) != fmt.Sprint(res.Merged) {
		t.Fatalf("Merged != MergeNMin(parts):\n got %v\nwant %v", res.Merged, want)
	}
	if names := res.MergedNames(); len(names) != len(res.Merged) {
		t.Fatalf("MergedNames lost entries: %d vs %d", len(names), len(res.Merged))
	}
}

// TestAnalyzePartsErrors: Split failures surface.
func TestAnalyzePartsErrors(t *testing.T) {
	c, err := circuit.EmbeddedBench("w64")
	if err != nil {
		t.Fatalf("EmbeddedBench(w64): %v", err)
	}
	if _, err := AnalyzeParts(c, Options{MaxInputs: 4}, 0); err == nil {
		t.Fatal("AnalyzeParts accepted a limit below the widest cone")
	}
}
