package partition

import (
	"testing"

	"ndetect/internal/circuit"
	"ndetect/internal/ndetect"
)

// wideCircuit builds a circuit whose outputs have disjoint small cones, so
// partitioning is clean: out_k = (x_{2k} AND x_{2k+1}) OR x_shared.
func wideCircuit(t *testing.T, groups int) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("wide")
	b.Input("shared")
	for g := 0; g < groups; g++ {
		b.Input(name("a", g))
		b.Input(name("b", g))
	}
	for g := 0; g < groups; g++ {
		b.Gate(circuit.And, name("and", g), name("a", g), name("b", g))
		b.Gate(circuit.Or, name("out", g), name("and", g), "shared")
		b.Output(name("out", g))
	}
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return c
}

func name(p string, i int) string {
	return p + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestExtractSingleCone(t *testing.T) {
	c := wideCircuit(t, 8) // 17 inputs total
	p, err := Extract(c, []int{3})
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if p.Circuit.NumInputs() != 3 { // shared, a03, b03
		t.Fatalf("part inputs = %d, want 3", p.Circuit.NumInputs())
	}
	if p.Circuit.NumOutputs() != 1 {
		t.Fatalf("part outputs = %d, want 1", p.Circuit.NumOutputs())
	}
	// Functional check: part output equals original output on matching
	// assignments.
	full := c.Eval(0)
	_ = full
	for v := uint64(0); v < 8; v++ {
		sh := circuit.VectorBit(v, 0, 3)
		a := circuit.VectorBit(v, 1, 3)
		bb := circuit.VectorBit(v, 2, 3)
		want := (a && bb) || sh
		got := p.Circuit.OutputsOf(p.Circuit.Eval(v))[0]
		if got != want {
			t.Fatalf("part function wrong at %d", v)
		}
	}
}

func TestSplitRespectsLimit(t *testing.T) {
	c := wideCircuit(t, 10) // 21 inputs
	parts, err := Split(c, Options{MaxInputs: 7})
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if len(parts) < 2 {
		t.Fatalf("expected multiple parts, got %d", len(parts))
	}
	covered := map[int]bool{}
	for _, p := range parts {
		if p.Circuit.NumInputs() > 7 {
			t.Fatalf("part has %d inputs > limit", p.Circuit.NumInputs())
		}
		for _, o := range p.Outputs {
			if covered[o] {
				t.Fatalf("output %d covered twice", o)
			}
			covered[o] = true
		}
	}
	if len(covered) != c.NumOutputs() {
		t.Fatalf("parts cover %d of %d outputs", len(covered), c.NumOutputs())
	}
}

func TestSplitRejectsOversizedCone(t *testing.T) {
	b := circuit.NewBuilder("big")
	fins := make([]string, 9)
	for i := range fins {
		fins[i] = name("x", i)
		b.Input(fins[i])
	}
	b.Gate(circuit.And, "g", fins...)
	b.Output("g")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := Split(c, Options{MaxInputs: 8}); err == nil {
		t.Fatal("Split accepted a cone wider than the limit")
	}
}

func TestPartsAnalyzable(t *testing.T) {
	c := wideCircuit(t, 10)
	parts, err := Split(c, Options{MaxInputs: 9})
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	for _, p := range parts {
		u, err := ndetect.FromCircuit(p.Circuit)
		if err != nil {
			t.Fatalf("FromCircuit(%v): %v", p.Outputs, err)
		}
		wc := ndetect.WorstCase(&u.Universe)
		for _, nm := range wc.NMin {
			if nm < 1 {
				t.Fatal("invalid nmin in part analysis")
			}
		}
	}
}

func TestMergeNMin(t *testing.T) {
	merged := MergeNMin([]map[string]int{
		{"a": 5, "b": 2},
		{"a": 3, "c": ndetect.Unbounded},
		{"c": 7},
	})
	if merged["a"] != 3 || merged["b"] != 2 || merged["c"] != 7 {
		t.Fatalf("MergeNMin = %v", merged)
	}
}

func TestExtractErrors(t *testing.T) {
	c := wideCircuit(t, 2)
	if _, err := Extract(c, nil); err == nil {
		t.Fatal("Extract accepted empty output list")
	}
	if _, err := Extract(c, []int{99}); err == nil {
		t.Fatal("Extract accepted out-of-range output")
	}
}

func TestExtractPreservesFunctionAcrossParts(t *testing.T) {
	// Every part output must compute the same function as the original
	// output restricted to the part's support.
	c := wideCircuit(t, 6)
	parts, err := Split(c, Options{MaxInputs: 13})
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	for _, p := range parts {
		sub := p.Circuit
		for v := 0; v < sub.VectorSpaceSize(); v++ {
			// Build the corresponding full vector: part inputs at their
			// original positions, zeros elsewhere.
			var fullVec uint64
			for i, pos := range p.Support {
				fullVec = circuit.SetVectorBit(fullVec, pos, c.NumInputs(),
					circuit.VectorBit(uint64(v), i, sub.NumInputs()))
			}
			fullOuts := c.OutputsOf(c.Eval(fullVec))
			subOuts := sub.OutputsOf(sub.Eval(uint64(v)))
			for i, oi := range p.Outputs {
				if subOuts[i] != fullOuts[oi] {
					t.Fatalf("part output %d differs from original output %d at v=%d", i, oi, v)
				}
			}
		}
	}
}
