// Package partition implements the workaround the paper's Section 4
// sketches for designs too large for exhaustive analysis: "one can
// partition a larger circuit into smaller subcircuits and apply the
// analysis to the subcircuits."
//
// The partitioner extracts output cones: each part is the transitive fanin
// cone of a group of primary outputs, greedily grown so the part's support
// (the primary inputs it depends on) stays within a configurable limit.
// Each part is a self-contained circuit that package ndetect can analyse
// exhaustively over its own (smaller) input space. AnalyzeParts drives the
// whole pipeline — Split, per-part worst-case analysis across a bounded
// worker pool, MergeNMin — deterministically for every worker count.
//
// The per-part analysis is an approximation of the full-circuit analysis:
// a part sees only a projection of the input space (each part vector
// corresponds to many full vectors) and only its own outputs as observation
// points. Guarantees derived on a part are therefore conservative in
// observability (a fault may also be detectable through outputs outside the
// part) but optimistic in vector multiplicity. MergeNMin combines per-part
// results by taking the minimum nmin over the parts that see a fault, which
// matches the paper's intent of using the partitioned analysis "to evaluate
// the effectiveness of a chosen value of n".
package partition

import (
	"fmt"
	"sort"

	"ndetect/internal/circuit"
)

// Part is one subcircuit with its provenance.
type Part struct {
	Circuit *circuit.Circuit
	// Outputs are the original output positions this part covers.
	Outputs []int
	// Support are the original input positions the part depends on.
	Support []int
}

// DefaultMaxInputs is the per-part support bound used when Options leaves
// MaxInputs unset.
const DefaultMaxInputs = 16

// Options controls partitioning.
type Options struct {
	// MaxInputs bounds each part's support (default DefaultMaxInputs).
	MaxInputs int

	// Progress, when non-nil, observes part completions during
	// AnalyzeParts: it is called serially with (finished, parts) as each
	// part's analysis finishes, in completion order. It never influences
	// results (Split ignores it).
	Progress func(done, total int)
}

// effectiveMaxInputs resolves the configured limit.
func (o Options) effectiveMaxInputs() int {
	if o.MaxInputs <= 0 {
		return DefaultMaxInputs
	}
	return o.MaxInputs
}

// Split partitions the circuit into output-cone parts. Outputs whose cones
// individually exceed MaxInputs are rejected with an error (no exhaustive
// analysis can cover them; a different decomposition would be needed).
func Split(c *circuit.Circuit, opts Options) ([]*Part, error) {
	maxIn := opts.effectiveMaxInputs()

	// Per output: the set of input positions in its cone.
	inputPos := make(map[int]int, len(c.Inputs))
	for i, id := range c.Inputs {
		inputPos[id] = i
	}
	type coneInfo struct {
		out     int
		support []int
	}
	cones := make([]coneInfo, 0, len(c.Outputs))
	for oi, oid := range c.Outputs {
		tfi := c.TransitiveFanin(oid)
		var sup []int
		for id, in := range tfi {
			if !in {
				continue
			}
			if p, ok := inputPos[id]; ok {
				sup = append(sup, p)
			}
		}
		sort.Ints(sup)
		if len(sup) > maxIn {
			return nil, fmt.Errorf("partition: output %s depends on %d inputs > limit %d",
				c.Node(oid).Name, len(sup), maxIn)
		}
		cones = append(cones, coneInfo{out: oi, support: sup})
	}

	// Greedy bin packing: order cones by decreasing support, place each
	// into the first part whose union support stays within the limit.
	sort.SliceStable(cones, func(a, b int) bool {
		return len(cones[a].support) > len(cones[b].support)
	})
	type bin struct {
		outs    []int
		support map[int]bool
	}
	var bins []*bin
	for _, cn := range cones {
		placed := false
		for _, b := range bins {
			union := len(b.support)
			for _, s := range cn.support {
				if !b.support[s] {
					union++
				}
			}
			if union <= maxIn {
				for _, s := range cn.support {
					b.support[s] = true
				}
				b.outs = append(b.outs, cn.out)
				placed = true
				break
			}
		}
		if !placed {
			nb := &bin{support: make(map[int]bool)}
			for _, s := range cn.support {
				nb.support[s] = true
			}
			nb.outs = []int{cn.out}
			bins = append(bins, nb)
		}
	}

	parts := make([]*Part, 0, len(bins))
	for _, b := range bins {
		sort.Ints(b.outs)
		p, err := Extract(c, b.outs)
		if err != nil {
			return nil, err
		}
		parts = append(parts, p)
	}
	return parts, nil
}

// Extract builds the subcircuit feeding the given output positions: the
// union of their fanin cones, with the original primary inputs in the cone
// as the part's inputs.
func Extract(c *circuit.Circuit, outputPositions []int) (*Part, error) {
	if len(outputPositions) == 0 {
		return nil, fmt.Errorf("partition: no outputs selected")
	}
	inCone := make([]bool, c.NumNodes())
	for _, oi := range outputPositions {
		if oi < 0 || oi >= len(c.Outputs) {
			return nil, fmt.Errorf("partition: output position %d out of range", oi)
		}
		for id, in := range c.TransitiveFanin(c.Outputs[oi]) {
			if in {
				inCone[id] = true
			}
		}
	}

	b := circuit.NewBuilder(fmt.Sprintf("%s.part", c.Name))
	var support []int

	// Emit inputs first, in original order.
	for pos, id := range c.Inputs {
		if inCone[id] {
			b.Input(c.Node(id).Name)
			support = append(support, pos)
		}
	}

	// stemName resolves a fanin reference through branch nodes, since the
	// builder re-normalizes fanout.
	var stemName func(id int) string
	stemName = func(id int) string {
		n := c.Node(id)
		if n.Kind == circuit.Branch {
			return stemName(n.Stem)
		}
		return n.Name
	}

	for _, id := range c.TopoOrder() {
		if !inCone[id] {
			continue
		}
		n := c.Node(id)
		switch n.Kind {
		case circuit.Input, circuit.Branch:
			continue
		case circuit.Const0:
			b.Const(n.Name, false)
		case circuit.Const1:
			b.Const(n.Name, true)
		default:
			fins := make([]string, len(n.Fanin))
			for i, f := range n.Fanin {
				fins[i] = stemName(f)
			}
			b.Gate(n.Kind, n.Name, fins...)
		}
	}
	for _, oi := range outputPositions {
		b.Output(stemName(c.Outputs[oi]))
	}
	sub, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Part{Circuit: sub, Outputs: append([]int(nil), outputPositions...), Support: support}, nil
}

// MergeNMin combines per-part worst-case results keyed by a caller-chosen
// fault identity (e.g. the bridge's node-name pair): for a fault seen by
// several parts the smallest nmin wins, since a guarantee through any part
// is a guarantee overall.
// Iteration order over each per-part map is dead here: min is commutative
// and associative, and the merged map is only ever read through sorted
// accessors (MergedNames sorts; counting queries are order-free), so the
// result is identical for every traversal order. maporder does not scope
// package partition for the same reason — nothing here encodes bytes.
func MergeNMin(perPart []map[string]int) map[string]int {
	out := make(map[string]int)
	for _, m := range perPart {
		for k, v := range m {
			if cur, ok := out[k]; !ok || v < cur {
				out[k] = v
			}
		}
	}
	return out
}
