package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ndetect/internal/circuit"
	"ndetect/internal/exp"
	"ndetect/internal/report"
	"ndetect/internal/store"
)

const c17Source = `
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

// The same circuit with its gate statements shuffled — the hash-invariance
// path exercised end to end.
const c17SourceShuffled = `
23 = NAND(16, 19)
10 = NAND(1, 3)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
22 = NAND(10, 16)
OUTPUT(22)
OUTPUT(23)
16 = NAND(2, 11)
19 = NAND(11, 7)
11 = NAND(3, 6)
`

func postJob(t *testing.T, url string, body string) (SubmitResponse, int) {
	t.Helper()
	resp, err := http.Post(url+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sub SubmitResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			t.Fatal(err)
		}
	}
	return sub, resp.StatusCode
}

func getBody(t *testing.T, url string) (string, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp.StatusCode
}

func pollDone(t *testing.T, url, id string) JobInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		body, code := getBody(t, url+"/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("status poll: HTTP %d: %s", code, body)
		}
		var info JobInfo
		if err := json.Unmarshal([]byte(body), &info); err != nil {
			t.Fatal(err)
		}
		if info.State == JobDone || info.State == JobFailed {
			return info
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
	return JobInfo{}
}

func TestHTTPEndToEnd(t *testing.T) {
	m := NewManager(Config{Workers: 4})
	ts := httptest.NewServer(NewServer(m).Handler())
	defer ts.Close()

	post := fmt.Sprintf(`{"format":"bench","name":"c17","source":%q,"analysis":"worstcase"}`, c17Source)
	sub, code := postJob(t, ts.URL, post)
	if code != http.StatusAccepted || sub.Cached {
		t.Fatalf("cold submit: HTTP %d cached=%v", code, sub.Cached)
	}
	if sub.Kind != "worstcase" || sub.Hash == "" {
		t.Fatalf("submit response incomplete: %+v", sub.JobInfo)
	}

	info := pollDone(t, ts.URL, sub.ID)
	if info.State != JobDone {
		t.Fatalf("job failed: %+v", info)
	}
	cold, code := getBody(t, ts.URL+"/jobs/"+sub.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: HTTP %d: %s", code, cold)
	}

	// The served document equals the shared driver's output byte for byte
	// — the CLI-diffability contract.
	c, err := circuit.ParseBenchString("c17", c17Source)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := exp.AnalyzeCircuit(c, exp.AnalysisRequest{Kind: exp.WorstCaseAnalysis})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(cold), direct.Encode()) {
		t.Fatalf("server result differs from the driver:\n%s\n---\n%s", cold, direct.Encode())
	}

	// A repeated POST is a cache hit (HTTP 200) with byte-identical result.
	again, code := postJob(t, ts.URL, post)
	if code != http.StatusOK || !again.Cached || again.ID != sub.ID {
		t.Fatalf("repeat submit: HTTP %d cached=%v id=%s (want %s)", code, again.Cached, again.ID, sub.ID)
	}
	hit, _ := getBody(t, ts.URL+"/jobs/"+sub.ID+"/result")
	if hit != cold {
		t.Fatal("cache hit result is not byte-identical to the cold run")
	}

	// The shuffled source is the same circuit: same job, no recompute.
	shuffled, code := postJob(t, ts.URL,
		fmt.Sprintf(`{"format":"bench","name":"whatever","source":%q}`, c17SourceShuffled))
	if code != http.StatusOK || !shuffled.Cached || shuffled.ID != sub.ID {
		t.Fatalf("statement reordering changed the job identity: HTTP %d cached=%v id=%s",
			code, shuffled.Cached, shuffled.ID)
	}

	if body, code := getBody(t, ts.URL+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", code, body)
	}
	metrics, code := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	for _, want := range []string{
		"ndetectd_jobs_submitted_total 3",
		"ndetectd_jobs_computed_total 1",
		"ndetectd_jobs_cache_hits_total 2",
		"ndetectd_workers_total 4",
		"ndetectd_cache_entries 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

func TestHTTPAverageWithOptions(t *testing.T) {
	m := NewManager(Config{Workers: 4})
	ts := httptest.NewServer(NewServer(m).Handler())
	defer ts.Close()

	post := fmt.Sprintf(`{"format":"bench","source":%q,"analysis":"average","options":{"nmax":2,"k":20,"seed":7}}`, c17Source)
	sub, code := postJob(t, ts.URL, post)
	if code != http.StatusAccepted {
		t.Fatalf("HTTP %d", code)
	}
	if sub.Options.NMax != 2 || sub.Options.K != 20 || sub.Options.Seed != 7 || sub.Options.Definition != 1 {
		t.Fatalf("identity options not echoed/normalized: %+v", sub.Options)
	}
	pollDone(t, ts.URL, sub.ID)
	body, code := getBody(t, ts.URL+"/jobs/"+sub.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: HTTP %d: %s", code, body)
	}
	doc, err := report.DecodeAnalysis([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Kind != "average" || doc.WorstCase == nil || doc.Average == nil {
		t.Fatalf("document malformed: kind=%s", doc.Kind)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	ts := httptest.NewServer(NewServer(m).Handler())
	defer ts.Close()

	for name, body := range map[string]string{
		"garbage":          `{not json`,
		"no circuit":       `{"analysis":"worstcase"}`,
		"both sources":     `{"benchmark":"bbtas","source":"circuit x","analysis":"worstcase"}`,
		"unknown format":   fmt.Sprintf(`{"format":"verilog","source":%q}`, c17Source),
		"unknown analysis": fmt.Sprintf(`{"format":"bench","source":%q,"analysis":"quantum"}`, c17Source),
		"parse error":      `{"format":"bench","source":"INPUT(1)\nOUTPUT(2)\n2 = FROB(1)"}`,
		"unknown bench":    `{"benchmark":"nope"}`,
	} {
		if _, code := postJob(t, ts.URL, body); code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, code)
		}
	}

	if _, code := getBody(t, ts.URL+"/jobs/ffffffffffffffffffffffff"); code != http.StatusNotFound {
		t.Errorf("unknown job status: HTTP %d, want 404", code)
	}
	if _, code := getBody(t, ts.URL+"/jobs/ffffffffffffffffffffffff/result"); code != http.StatusNotFound {
		t.Errorf("unknown job result: HTTP %d, want 404", code)
	}
}

// A result request for a still-running job answers 202 with the status
// snapshot, and a failed job answers 422 with its error.
func TestHTTPResultLifecycle(t *testing.T) {
	release := make(chan struct{})
	m := NewManager(Config{
		Workers: 2,
		run: func(c *circuit.Circuit, req exp.AnalysisRequest) (*report.Analysis, error) {
			<-release
			if req.Kind == exp.AverageAnalysis {
				return nil, fmt.Errorf("deterministic failure for the test")
			}
			return stubAnalysis(req.Kind), nil
		},
	})
	ts := httptest.NewServer(NewServer(m).Handler())
	defer ts.Close()

	post := fmt.Sprintf(`{"format":"bench","source":%q,"analysis":"worstcase"}`, c17Source)
	sub, _ := postJob(t, ts.URL, post)
	body, code := getBody(t, ts.URL+"/jobs/"+sub.ID+"/result")
	if code != http.StatusAccepted {
		t.Fatalf("running job result: HTTP %d: %s", code, body)
	}
	close(release)
	pollDone(t, ts.URL, sub.ID)

	fail, _ := postJob(t, ts.URL,
		fmt.Sprintf(`{"format":"bench","source":%q,"analysis":"average"}`, c17Source))
	if pollDone(t, ts.URL, fail.ID).State != JobFailed {
		t.Fatal("expected the average job to fail")
	}
	body, code = getBody(t, ts.URL+"/jobs/"+fail.ID+"/result")
	if code != http.StatusUnprocessableEntity || !strings.Contains(body, "deterministic failure") {
		t.Fatalf("failed job result: HTTP %d: %s", code, body)
	}
}

// POST /sweeps enqueues a variant grid over one circuit; every variant is
// an ordinary job, individually pollable and individually cached.
func TestHTTPSweep(t *testing.T) {
	m := NewManager(Config{Workers: 4})
	ts := httptest.NewServer(NewServer(m).Handler())
	defer ts.Close()

	postSweep := func(body string) (SweepResponse, int) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sw SweepResponse
		if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
			if err := json.NewDecoder(resp.Body).Decode(&sw); err != nil {
				t.Fatal(err)
			}
		}
		return sw, resp.StatusCode
	}

	post := fmt.Sprintf(`{"format":"bench","name":"c17","source":%q,"sweep":"nmax=2;k=20;seed=1..2"}`, c17Source)
	sw, code := postSweep(post)
	if code != http.StatusAccepted || len(sw.Jobs) != 2 {
		t.Fatalf("sweep submit: HTTP %d, %d jobs", code, len(sw.Jobs))
	}
	if sw.Jobs[0].ID == sw.Jobs[1].ID {
		t.Fatal("distinct variants share a job ID")
	}
	for i, j := range sw.Jobs {
		if pollDone(t, ts.URL, j.ID).State != JobDone {
			t.Fatalf("variant %d failed", i)
		}
		body, code := getBody(t, ts.URL+"/jobs/"+j.ID+"/result")
		if code != http.StatusOK {
			t.Fatalf("variant %d result: HTTP %d: %s", i, code, body)
		}
		// Byte-identity with the cold one-shot driver, per variant.
		c, err := circuit.ParseBenchString("c17", c17Source)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := exp.AnalyzeCircuit(c, exp.AnalysisRequest{
			Kind: exp.AverageAnalysis, NMax: 2, K: 20, Seed: int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal([]byte(body), direct.Encode()) {
			t.Fatalf("variant %d differs from the cold driver run", i)
		}
	}

	// A repeated sweep is all-cached: HTTP 200.
	if again, code := postSweep(post); code != http.StatusOK || !again.Jobs[0].Cached || !again.Jobs[1].Cached {
		t.Fatalf("repeat sweep: HTTP %d %+v", code, again.Jobs)
	}

	// Explicit variant lists work too, and mixed-kind grids are allowed.
	explicit := fmt.Sprintf(`{"format":"bench","source":%q,"variants":[`+
		`{"analysis":"worstcase"},`+
		`{"analysis":"average","options":{"nmax":2,"k":20,"seed":1}}]}`, c17Source)
	sw, code = postSweep(explicit)
	if code != http.StatusAccepted || len(sw.Jobs) != 2 {
		t.Fatalf("explicit variants: HTTP %d, %d jobs", code, len(sw.Jobs))
	}
	if !sw.Jobs[1].Cached {
		t.Fatal("previously swept variant should be cached")
	}
	pollDone(t, ts.URL, sw.Jobs[0].ID)

	for name, body := range map[string]string{
		"no grid":     fmt.Sprintf(`{"format":"bench","source":%q}`, c17Source),
		"both grids":  fmt.Sprintf(`{"format":"bench","source":%q,"sweep":"seed=1","variants":[{"analysis":"worstcase"}]}`, c17Source),
		"bad spec":    fmt.Sprintf(`{"format":"bench","source":%q,"sweep":"warp=9"}`, c17Source),
		"partitioned": fmt.Sprintf(`{"format":"bench","source":%q,"variants":[{"analysis":"partitioned"}]}`, c17Source),
		"no circuit":  `{"sweep":"seed=1"}`,
	} {
		if _, code := postSweep(body); code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, code)
		}
	}
}

// /metrics speaks the Prometheus text exposition content type and carries
// the store tier counters.
func TestHTTPMetricsFormat(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Config{Workers: 2, Store: st})
	ts := httptest.NewServer(NewServer(m).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != MetricsContentType {
		t.Fatalf("content type %q, want %q", ct, MetricsContentType)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ndetectd_sweeps_total 0",
		"ndetectd_jobs_store_hits_total 0",
		"ndetectd_store_bytes 0",
		"ndetectd_store_results_hits_total 0",
		"ndetectd_store_results_misses_total 0",
		"ndetectd_store_results_evictions_total 0",
		"ndetectd_store_universes_hits_total 0",
		"ndetectd_store_universes_bytes 0",
	} {
		if !strings.Contains(string(b), want+"\n") {
			t.Errorf("metrics missing %q:\n%s", want, b)
		}
	}
}

// A draining server refuses new jobs with 503.
func TestHTTPSubmitWhileDraining(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	ts := httptest.NewServer(NewServer(m).Handler())
	defer ts.Close()
	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, code := postJob(t, ts.URL, `{"benchmark":"bbtas"}`); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: HTTP %d, want 503", code)
	}
}
