package service

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ndetect/internal/circuit"
	"ndetect/internal/exp"
	"ndetect/internal/report"
)

// blockedManager returns a manager whose (stubbed) analyses block until
// release is closed — the scheduler state is then fully controllable
// from the test.
func blockedManager(cfg Config, release chan struct{}) *Manager {
	cfg.run = func(c *circuit.Circuit, req exp.AnalysisRequest) (*report.Analysis, error) {
		<-release
		return stubAnalysis(req.Kind), nil
	}
	return NewManager(cfg)
}

// The bounded accept queue: once MaxQueue jobs wait, further distinct
// submissions shed with ErrOverloaded — but cache hits and coalesces
// still land, and releasing the backlog restores admission.
func TestSubmitShedsAtQueueBound(t *testing.T) {
	release := make(chan struct{})
	m := blockedManager(Config{Workers: 1, MaxQueue: 1}, release)

	// Seed 1 dispatches immediately (queue stays empty), seed 2 occupies
	// the single queue slot, seed 3 must shed.
	first, _, err := m.Submit(c17(t), averageReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Submit(c17(t), averageReq(2)); err != nil {
		t.Fatal(err)
	}
	_, _, err = m.Submit(c17(t), averageReq(3))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third submit err = %v, want ErrOverloaded", err)
	}

	// A coalesce onto the queued job is not shed — it consumes no slot.
	joined, cached, err := m.Submit(c17(t), averageReq(2))
	if err != nil || cached {
		t.Fatalf("coalesce while full: err=%v cached=%v", err, cached)
	}
	if joined.State != JobQueued {
		t.Fatalf("coalesced job state = %s", joined.State)
	}

	ctr := m.Counters()
	if ctr.ShedQueue != 1 || ctr.QueueLimit != 1 || ctr.Queued != 1 {
		t.Fatalf("counters after shed: %+v", ctr)
	}

	close(release)
	if _, err := m.Wait(first.ID); err != nil {
		t.Fatal(err)
	}
	// With the backlog draining, the shed request is admitted on retry.
	info, _, err := m.Submit(c17(t), averageReq(3))
	if err != nil {
		t.Fatalf("retry after drain: %v", err)
	}
	if _, err := m.Wait(info.ID); err != nil {
		t.Fatal(err)
	}

	// A cache hit is served even when the queue is full again.
	release2 := make(chan struct{}, 1)
	m2 := blockedManager(Config{Workers: 1, MaxQueue: 1}, release2)
	warm, _, err := m2.Submit(c17(t), worstcaseReq())
	if err != nil {
		t.Fatal(err)
	}
	release2 <- struct{}{} // let the warming job finish → result cached
	if _, err := m2.Wait(warm.ID); err != nil {
		t.Fatal(err)
	}
	m2.Submit(c17(t), averageReq(1)) // occupies the worker
	m2.Submit(c17(t), averageReq(2)) // occupies the single queue slot
	if _, cached, err := m2.Submit(c17(t), worstcaseReq()); err != nil || !cached {
		t.Fatalf("cache hit while full: err=%v cached=%v", err, cached)
	}
	close(release2)
}

// HTTP overload semantics: the shed is a 503 with a Retry-After hint —
// the daemon refuses explicitly instead of queueing without bound.
func TestHTTPOverloadIs503WithRetryAfter(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	m := blockedManager(Config{Workers: 1, MaxQueue: 1}, release)
	ts := httptest.NewServer(NewServer(m).Handler())
	defer ts.Close()

	submit := func(seed int) *http.Response {
		t.Helper()
		body := fmt.Sprintf(`{"format":"bench","source":%q,"analysis":"average","options":{"nmax":2,"k":20,"seed":%d}}`, c17Source, seed)
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	for seed := 1; seed <= 2; seed++ {
		resp := submit(seed)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", seed, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp := submit(3)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded submit: HTTP %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("overloaded 503 carries Retry-After %q, want a positive hint", ra)
	}

	// The shed is visible in /metrics, alongside the queue bound and the
	// admission/request-latency histogram families.
	metrics, code := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	for _, want := range []string{
		"ndetectd_shed_queue_total 1",
		"ndetectd_shed_quota_total 0",
		"ndetectd_queue_limit 1",
		"ndetectd_jobs_queued 1",
		"ndetectd_admission_wait_seconds_bucket",
		`ndetectd_http_request_duration_seconds_bucket{class="submit"`,
		`ndetectd_http_request_duration_seconds_bucket{class="events"`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// Per-client quotas: a client that exceeds its token bucket gets 429 +
// Retry-After while other clients keep being admitted; the sheds count
// in the quota counter, not the queue counter.
func TestHTTPQuotaSheds429PerClient(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	m := blockedManager(Config{Workers: 4, QuotaRPS: 0.5, QuotaBurst: 2}, release)
	ts := httptest.NewServer(NewServer(m).Handler())
	defer ts.Close()

	submit := func(client string, seed int) *http.Response {
		t.Helper()
		body := fmt.Sprintf(`{"format":"bench","source":%q,"analysis":"average","options":{"nmax":2,"k":20,"seed":%d}}`, c17Source, seed)
		req, err := http.NewRequest("POST", ts.URL+"/jobs", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if client != "" {
			req.Header.Set("X-Ndetect-Client", client)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	for seed := 1; seed <= 2; seed++ {
		resp := submit("alice", seed)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("alice submit %d: HTTP %d", seed, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp := submit("alice", 3)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alice over quota: HTTP %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("429 Retry-After %q, want a positive hint", ra)
	}
	resp.Body.Close()

	// Another client is unaffected by alice's empty bucket.
	resp = submit("bob", 4)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bob submit: HTTP %d", resp.StatusCode)
	}
	resp.Body.Close()

	ctr := m.Counters()
	if ctr.ShedQuota != 1 || ctr.ShedQueue != 0 {
		t.Fatalf("counters: %+v", ctr)
	}
	metrics, _ := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, "ndetectd_shed_quota_total 1") {
		t.Error("quota shed not visible in /metrics")
	}

	// Quotas guard submissions only: status polls stay unmetered.
	for i := 0; i < 10; i++ {
		req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
		req.Header.Set("X-Ndetect-Client", "alice")
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("healthz for a quota-exhausted client: HTTP %d", r.StatusCode)
		}
		r.Body.Close()
	}
}

// The admission-wait histogram observes every dispatched job, and
// RetryAfter produces a sane clamped estimate.
func TestAdmissionWaitAndRetryAfter(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	if got := m.RetryAfter(); got < 1 || got > 120 {
		t.Fatalf("idle RetryAfter = %d, want within [1, 120]", got)
	}
	info, _, err := m.Submit(c17(t), worstcaseReq())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(info.ID); err != nil {
		t.Fatal(err)
	}
	if got := m.met.admitWait.Snapshot().Count; got != 1 {
		t.Fatalf("admission-wait observations = %d, want 1", got)
	}
	if got := m.RetryAfter(); got < 1 || got > 120 {
		t.Fatalf("RetryAfter = %d, want within [1, 120]", got)
	}
}
