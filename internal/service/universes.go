package service

import (
	"ndetect/internal/circuit"
	"ndetect/internal/fault"
	"ndetect/internal/ndetect"
)

// Universe sharing across jobs (DESIGN.md §11).
//
// The exhaustive universe — T(f)/T(g) bitsets and fault tables — depends
// only on the canonical circuit, not on any result-identity option, yet
// it dominates the cost of every worst-case and average-case job. The
// manager therefore shares it at two scopes:
//
//   - in flight: jobs over the same circuit hold references on one
//     universeFlight; the first job to need the universe resolves it and
//     every concurrent or later job over that circuit reuses the object.
//     A sweep submits all its variants before any can retire, so S
//     variants construct exactly once. The flight is dropped when the
//     last referencing job completes — universes are large, and the
//     store (when configured) keeps the durable copy;
//   - on disk: resolution consults the store's universe tier first and
//     persists fresh constructions, so even restarts and cold flights
//     skip simulation + T-set construction.
//
// Correctness never depends on the sharing: a universe is a pure function
// of the canonical circuit, so a shared, loaded, or rebuilt instance
// yields byte-identical documents (§7).

// universeFlight is one circuit's shared universe while any job needs it.
// refs is guarded by Manager.mu; started/u/err follow the singleflight
// protocol (writer sets u/err then closes done; readers wait on done).
type universeFlight struct {
	refs    int
	started bool
	done    chan struct{}
	u       *ndetect.CircuitUniverse
	err     error
}

// acquireUniverseLocked takes a reference on key's flight, creating it on
// first use. Callers hold m.mu.
func (m *Manager) acquireUniverseLocked(key string) {
	f := m.universes[key]
	if f == nil {
		f = &universeFlight{done: make(chan struct{})}
		m.universes[key] = f
	}
	f.refs++
}

// releaseUniverseLocked drops a reference, freeing the flight (and the
// universe's memory) with the last one. Callers hold m.mu.
func (m *Manager) releaseUniverseLocked(key string) {
	f := m.universes[key]
	if f == nil {
		return
	}
	if f.refs--; f.refs <= 0 {
		delete(m.universes, key)
	}
}

// managerUniverses adapts one job's flight to exp.UniverseSource: the
// analysis driver hands it the canonical circuit, and resolution runs
// store-load-or-build exactly once per flight.
type managerUniverses struct {
	m   *Manager
	key string
}

// Universe implements exp.UniverseSource. The flight key already encodes
// the job's fault model (submitLocked), so jobs over the same circuit but
// different models resolve distinct universes.
func (s *managerUniverses) Universe(c *circuit.Circuit, fm fault.Model, opts ndetect.AnalyzeOptions) (*ndetect.CircuitUniverse, error) {
	m := s.m
	m.mu.Lock()
	f := m.universes[s.key]
	if f == nil {
		// No flight (the job's reference is released only after the
		// analysis returns, so this is defensive): resolve unshared.
		m.mu.Unlock()
		return m.resolveUniverse(c, fm, opts)
	}
	if f.started {
		m.mu.Unlock()
		<-f.done
		return f.u, f.err
	}
	f.started = true
	m.mu.Unlock()

	// The construction runs with the full server budget, not the calling
	// job's grant: every job that needs this universe is blocked on the
	// flight with its grant idle, so W workers here is the §5 rule applied
	// to the runnable work (a sweep's S jobs at ⌊W/S⌋ grants each would
	// otherwise build their shared dominant stage at 1/S of the machine).
	// Jobs over other circuits may overlap transiently; worker counts
	// never influence results (§7), only wall-clock time.
	opts.Workers = m.workers
	f.u, f.err = m.resolveUniverse(c, fm, opts)
	close(f.done)
	return f.u, f.err
}

// resolveUniverse is the universe tier's load-or-build-and-save
// (build-only when no store is configured), with the manager's build
// hook threaded through. The exhaustive universe has no per-part input
// bound, so artifacts are keyed with MaxInputs 0 (store.UniverseWith).
func (m *Manager) resolveUniverse(c *circuit.Circuit, fm fault.Model, opts ndetect.AnalyzeOptions) (*ndetect.CircuitUniverse, error) {
	if m.store == nil {
		return m.newUniverse(c, fm, opts)
	}
	return m.store.UniverseWith(c, fm, opts, m.newUniverse)
}
