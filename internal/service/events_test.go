package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ndetect/internal/circuit"
	"ndetect/internal/exp"
	"ndetect/internal/report"
)

// stubProgress is the deterministic progress sequence the stubbed run
// emits; the event-order tests assert it arrives intact, in order, both
// through Manager.Events and through the SSE endpoint.
var stubProgress = []ProgressInfo{
	{Stage: "simulate", Done: 0, Total: 3},
	{Stage: "universe", Done: 3, Total: 3},
	{Stage: "procedure1", Done: 10, Total: 100},
	{Stage: "procedure1", Done: 100, Total: 100},
}

func progressStubManager(release chan struct{}) *Manager {
	return NewManager(Config{
		Workers: 2,
		run: func(c *circuit.Circuit, req exp.AnalysisRequest) (*report.Analysis, error) {
			<-release
			for _, p := range stubProgress {
				req.Progress(p.Stage, p.Done, p.Total)
			}
			return stubAnalysis(req.Kind), nil
		},
	})
}

// drainUntilTerminal consumes a subscription until its terminal event.
func drainUntilTerminal(t *testing.T, sub *EventSub) []JobEvent {
	t.Helper()
	var events []JobEvent
	deadline := time.After(30 * time.Second)
	for {
		select {
		case <-sub.Notify():
		case <-deadline:
			t.Fatalf("no terminal event after %d events", len(events))
		}
		for _, ev := range sub.Drain() {
			events = append(events, ev)
			if ev.Terminal() {
				return events
			}
		}
	}
}

// The event stream contract (DESIGN.md §14): a snapshot on subscribe,
// then every progress update in emission order, sequence numbers strictly
// increasing, ending with the terminal state event.
func TestEventStreamOrder(t *testing.T) {
	release := make(chan struct{})
	m := progressStubManager(release)
	info, _, err := m.Submit(c17(t), worstcaseReq())
	if err != nil {
		t.Fatal(err)
	}

	snap, sub, ok := m.Events(info.ID)
	if !ok || sub == nil {
		t.Fatalf("Events(%s): ok=%v sub=%v", info.ID, ok, sub)
	}
	defer m.Unsubscribe(info.ID, sub)
	if snap.Type != EventState || snap.Terminal() {
		t.Fatalf("snapshot = %+v, want a non-terminal state event", snap)
	}
	close(release)

	events := drainUntilTerminal(t, sub)
	seq := snap.Seq
	var got []ProgressInfo
	for _, ev := range events {
		if ev.Seq <= seq {
			t.Errorf("event seq %d not increasing after %d", ev.Seq, seq)
		}
		seq = ev.Seq
		if ev.Type == EventProgress {
			got = append(got, *ev.Progress)
		}
	}
	if len(got) != len(stubProgress) {
		t.Fatalf("got %d progress events, want %d: %+v", len(got), len(stubProgress), got)
	}
	for i, want := range stubProgress {
		if got[i] != want {
			t.Errorf("progress %d = %+v, want %+v", i, got[i], want)
		}
	}
	last := events[len(events)-1]
	if last.Info.State != JobDone {
		t.Fatalf("terminal event state = %s, want done", last.Info.State)
	}
}

// A subscription to an already-completed job is the terminal snapshot
// alone (nil sub); unknown jobs are not found.
func TestEventsSnapshotForCompletedJob(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	info, _, err := m.Submit(c17(t), worstcaseReq())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(info.ID); err != nil {
		t.Fatal(err)
	}
	snap, sub, ok := m.Events(info.ID)
	if !ok || sub != nil || !snap.Terminal() {
		t.Fatalf("completed job: ok=%v sub=%v snap=%+v", ok, sub, snap)
	}
	if _, _, ok := m.Events("ffffffffffffffffffffffff"); ok {
		t.Fatal("unknown job found")
	}
}

// parseSSE reads one SSE stream into events, stopping at the terminal
// state event.
func parseSSE(t *testing.T, r *bufio.Scanner) []JobEvent {
	t.Helper()
	var events []JobEvent
	var data string
	for r.Scan() {
		line := r.Text()
		switch {
		case strings.HasPrefix(line, "data: "):
			data += strings.TrimPrefix(line, "data: ")
		case line == "" && data != "":
			var ev JobEvent
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("bad SSE data %q: %v", data, err)
			}
			events = append(events, ev)
			data = ""
			if ev.Terminal() {
				return events
			}
		}
	}
	t.Fatalf("stream ended without a terminal event (%d events)", len(events))
	return nil
}

// The SSE endpoint relays the same events in the same order as
// Manager.Events — the HTTP leg of the ordering contract.
func TestHTTPEventsSSE(t *testing.T) {
	release := make(chan struct{})
	m := progressStubManager(release)
	ts := httptest.NewServer(NewServer(m).Handler())
	defer ts.Close()

	post := fmt.Sprintf(`{"format":"bench","name":"c17","source":%q,"analysis":"worstcase"}`, c17Source)
	sub, code := postJob(t, ts.URL, post)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}

	resp, err := http.Get(ts.URL + "/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("Cache-Control %q", cc)
	}
	close(release)

	events := parseSSE(t, bufio.NewScanner(resp.Body))
	if events[0].Type != EventState {
		t.Fatalf("first event = %+v, want the state snapshot", events[0])
	}
	var got []ProgressInfo
	seq := int64(0)
	for i, ev := range events {
		if i > 0 && ev.Seq <= seq {
			t.Errorf("event seq %d not increasing after %d", ev.Seq, seq)
		}
		seq = ev.Seq
		if ev.Type == EventProgress {
			got = append(got, *ev.Progress)
		}
	}
	for i, want := range stubProgress {
		if i >= len(got) || got[i] != want {
			t.Fatalf("SSE progress order differs from emission order: %+v", got)
		}
	}
	if last := events[len(events)-1]; last.Info.State != JobDone {
		t.Fatalf("terminal state = %s", last.Info.State)
	}

	// A second connect after completion replays the terminal snapshot and
	// closes immediately.
	resp2, err := http.Get(ts.URL + "/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	replay := parseSSE(t, bufio.NewScanner(resp2.Body))
	if len(replay) != 1 || !replay[0].Terminal() {
		t.Fatalf("replay = %+v, want exactly the terminal snapshot", replay)
	}

	if resp, err := http.Get(ts.URL + "/jobs/ffffffffffffffffffffffff/events"); err == nil {
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job events: HTTP %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// The observability tentpole's acceptance contract: a job computed with
// tracing on and a live SSE consumer attached is byte-identical to the
// same job on a tracing-disabled manager, and both match the direct
// driver run.
func TestTracedJobByteIdenticalToUntraced(t *testing.T) {
	direct, err := exp.AnalyzeCircuit(c17(t), averageReq(7))
	if err != nil {
		t.Fatal(err)
	}
	want := direct.Encode()

	traced := NewManager(Config{Workers: 4}) // tracing on by default
	info, _, err := traced.Submit(c17(t), averageReq(7))
	if err != nil {
		t.Fatal(err)
	}
	consumed := make(chan int, 1)
	snap, sub, ok := traced.Events(info.ID)
	switch {
	case !ok:
		t.Fatal("no event stream on the traced manager")
	case sub == nil:
		// The job outran the subscribe: the terminal snapshot is the whole
		// stream (the replay path, still a consumed stream).
		if !snap.Terminal() {
			t.Fatalf("nil sub with non-terminal snapshot %+v", snap)
		}
		consumed <- 1
	default:
		go func() {
			defer traced.Unsubscribe(info.ID, sub)
			n := 1 // the snapshot
			for range sub.Notify() {
				for _, ev := range sub.Drain() {
					n++
					if ev.Terminal() {
						consumed <- n
						return
					}
				}
			}
		}()
	}
	got, err := traced.Wait(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-consumed:
		if n == 0 {
			t.Fatal("SSE consumer saw no events")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("SSE consumer never saw the terminal event")
	}

	untraced := NewManager(Config{Workers: 4, TraceDepth: -1})
	info2, _, err := untraced.Submit(c17(t), averageReq(7))
	if err != nil {
		t.Fatal(err)
	}
	got2, err := untraced.Wait(info2.ID)
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(want, got) {
		t.Fatalf("traced run differs from the direct driver:\n%s\n---\n%s", want, got)
	}
	if !bytes.Equal(want, got2) {
		t.Fatalf("untraced run differs from the direct driver:\n%s\n---\n%s", want, got2)
	}

	// The traced manager retained the span dump; the untraced one did not.
	spans, ok := traced.Trace(info.ID)
	if !ok || len(spans) == 0 {
		t.Fatalf("traced manager has no trace: ok=%v spans=%d", ok, len(spans))
	}
	names := map[string]bool{}
	for _, sp := range spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"canonicalize", "universe", "worstcase", "procedure1", "encode"} {
		if !names[want] {
			t.Errorf("trace missing span %q: %v", want, spans)
		}
	}
	if _, ok := untraced.Trace(info2.ID); ok {
		t.Fatal("tracing-disabled manager retained a trace")
	}
}
