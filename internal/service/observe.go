package service

import (
	"ndetect/internal/obs"
)

// Observability wiring (DESIGN.md §14): per-job span recorders feeding
// latency histograms, a bounded trace log behind the daemon's
// /trace/{id} endpoint, and gauges for the live scheduler state. All
// clock reads happen inside internal/obs — this package only calls
// hooks, so the detrand lint scope stays clean and results stay pure in
// (circuit, identity options, seed).

// DefaultTraceDepth bounds the retained completed-job traces when
// Config leaves TraceDepth unset.
const DefaultTraceDepth = 128

// metrics is the manager's observability surface: lock-cheap atomics
// recorded on the serving hot path and rendered by GET /metrics.
type metrics struct {
	// jobDur observes end-to-end job latency, submit to terminal state.
	jobDur *obs.Histogram
	// stageDur observes per-stage latency, labeled by span name (driver
	// phases and progress stages — a small, bounded set).
	stageDur *obs.HistogramVec
	// storeDur observes store I/O latency, labeled tier_op
	// (e.g. "results_get", "universes_put").
	storeDur *obs.HistogramVec
	// admitWait observes the admission wait — the time a job spends in
	// the accept queue between submit and its worker grant (§15).
	admitWait *obs.Histogram
	// httpDur observes request latency per route class (httpClasses).
	// The label set is preset so the /metrics series list is complete
	// and stable from the first scrape.
	httpDur *obs.HistogramVec

	// streaming counts open SSE event subscriptions — the one live gauge
	// the scheduler state cannot answer (queue depth, inflight jobs and
	// universe flights all derive from Counters).
	streaming obs.Gauge
}

// httpClasses is the fixed request-class label universe of httpDur: one
// class per route. For "events" the recorded duration is the SSE stream
// lifetime, not a handler turnaround.
var httpClasses = []string{"submit", "sweep", "status", "result", "events", "healthz", "metrics"}

func newMetrics() *metrics {
	return &metrics{
		jobDur:    obs.NewHistogram(nil),
		stageDur:  obs.NewHistogramVec(nil),
		storeDur:  obs.NewHistogramVec(nil),
		admitWait: obs.NewHistogram(nil),
		httpDur:   obs.NewHistogramVec(nil).Preset(httpClasses...),
	}
}

// observeTrace feeds one completed job's spans into the per-stage
// histograms.
func (mt *metrics) observeTrace(spans []obs.Span) {
	for _, sp := range spans {
		mt.stageDur.Observe(sp.Name, float64(sp.DurNs)/1e9)
	}
}

// storeObserver adapts the metrics to the artifact store's I/O hook
// (store.Observer): timing lives here, on the obs side, never in the
// store itself.
type storeObserver struct {
	dur *obs.HistogramVec
}

func (o storeObserver) Op(tier, op string) func(bytes int, ok bool) {
	t := obs.StartTimer()
	return func(int, bool) { o.dur.Observe(tier+"_"+op, t.Seconds()) }
}

// Trace returns the span dump of one job: a live snapshot while the job
// is in flight, or the retained trace of a recently completed job. ok is
// false for unknown jobs, jobs evicted from the trace log, and managers
// with tracing disabled.
func (m *Manager) Trace(id string) ([]obs.Span, bool) {
	m.mu.Lock()
	if j, ok := m.inflight[id]; ok && j.rec != nil {
		rec := j.rec
		m.mu.Unlock()
		return rec.Snapshot(), true
	}
	m.mu.Unlock()
	if m.traces == nil {
		return nil, false
	}
	return m.traces.Get(id)
}
