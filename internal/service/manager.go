// Package service is the serving layer over the analysis engine: a job
// manager that accepts analysis requests, content-addresses them by
// canonical circuit hash + result-identity options (DESIGN.md §7),
// coalesces identical concurrent requests into one computation, caches
// results in a bounded LRU, and schedules distinct jobs under the one §5
// worker budget — extending the budget-splitting rule from
// circuits-within-a-run to jobs-within-a-server (DESIGN.md §10).
//
// Because every analysis is a pure function of (circuit, identity options,
// seed) and encodes deterministically, a cached result is byte-identical
// to the cold run that would have produced it, at any worker count. That
// is the invariant the whole package is built on, and what its
// golden-stability tests pin.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"ndetect/internal/circuit"
	"ndetect/internal/exp"
	"ndetect/internal/report"
	"ndetect/internal/sim"
)

// DefaultCacheEntries bounds the result LRU when Config leaves it unset.
const DefaultCacheEntries = 256

// Config configures a Manager.
type Config struct {
	// Workers is the server-wide §5 worker budget W (0 = one worker per
	// CPU). At any moment at most min(W, jobs) jobs run concurrently and
	// the sum of their inner worker grants never exceeds W.
	Workers int
	// CacheEntries bounds the result LRU (0 = DefaultCacheEntries).
	CacheEntries int

	// run computes one analysis; tests substitute it to observe and block
	// the scheduler. nil = exp.AnalyzeCircuit.
	run func(*circuit.Circuit, exp.AnalysisRequest) (*report.Analysis, error)
}

// JobState is a job's lifecycle phase.
type JobState string

// Job lifecycle: queued → running → done | failed.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// ProgressInfo is the latest stage transition a running job reported
// (ndetect.Progress semantics: units are stage-specific).
type ProgressInfo struct {
	Stage string `json:"stage,omitempty"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
}

// JobInfo is a point-in-time snapshot of one job, safe to hold after the
// manager has moved on.
type JobInfo struct {
	// ID is the job's content address: identical requests — same canonical
	// circuit, same result-identity options — get the same ID, which is
	// what makes coalescing and caching fall out of a map lookup.
	ID      string         `json:"id"`
	Kind    string         `json:"kind"`
	Circuit string         `json:"circuit"`
	Hash    string         `json:"hash"`
	Options report.Options `json:"options"`
	State   JobState       `json:"status"`
	// Workers is the inner worker grant while running (0 otherwise). It
	// never influences the result, only wall-clock time.
	Workers  int          `json:"workers,omitempty"`
	Progress ProgressInfo `json:"progress"`
	Error    string       `json:"error,omitempty"`
}

// Counters is a snapshot of the manager's monitoring counters.
type Counters struct {
	Submitted uint64 `json:"submitted"` // Submit calls
	CacheHits uint64 `json:"cache_hits"`
	Coalesced uint64 `json:"coalesced"` // submits joined to an in-flight job
	Computed  uint64 `json:"computed"`  // jobs actually enqueued (cache misses)
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`

	Queued           int `json:"queued"`
	Running          int `json:"running"`
	WorkersInUse     int `json:"workers_in_use"`
	WorkersTotal     int `json:"workers_total"`
	PeakWorkersInUse int `json:"peak_workers_in_use"`
	CacheEntries     int `json:"cache_entries"`
	CacheCapacity    int `json:"cache_capacity"`
}

// job is the manager's mutable bookkeeping for one in-flight computation.
// All fields except done/result/err are guarded by Manager.mu; done is
// closed exactly once at completion, after which result/err are immutable.
type job struct {
	info    JobInfo
	circuit *circuit.Circuit
	req     exp.AnalysisRequest
	done    chan struct{}
	result  []byte
	err     error
}

// Manager owns the job queue, the scheduler and the result cache.
type Manager struct {
	workers int
	run     func(*circuit.Circuit, exp.AnalysisRequest) (*report.Analysis, error)

	mu       sync.Mutex
	inflight map[string]*job // queued or running, by ID
	queue    []*job          // submission order
	used     int             // inner worker grants currently out
	cache    *resultCache
	ctr      Counters
}

// NewManager starts an empty manager. It spawns no goroutines until work
// arrives; there is nothing to shut down beyond abandoning it.
func NewManager(cfg Config) *Manager {
	entries := cfg.CacheEntries
	if entries <= 0 {
		entries = DefaultCacheEntries
	}
	run := cfg.run
	if run == nil {
		run = exp.AnalyzeCircuit
	}
	w := sim.ResolveWorkers(cfg.Workers)
	return &Manager{
		workers:  w,
		run:      run,
		inflight: make(map[string]*job),
		cache:    newResultCache(entries),
		ctr:      Counters{WorkersTotal: w, CacheCapacity: entries},
	}
}

// jobKey is the canonical request identity: the circuit's content hash
// plus every result-identity option of DESIGN.md §7 — and nothing else.
// Workers and the circuit's display name are deliberately absent.
func jobKey(hash string, req *exp.AnalysisRequest) string {
	return fmt.Sprintf("ndetect.job/v1|%s|%s|nmax=%d|k=%d|seed=%d|def=%d|ge11=%d|maxin=%d",
		req.Kind, hash, req.NMax, req.K, req.Seed, req.Definition, req.Ge11Limit, req.MaxInputs)
}

// jobID derives the job's content address from its key.
func jobID(hash string, req *exp.AnalysisRequest) string {
	sum := sha256.Sum256([]byte(jobKey(hash, req)))
	return hex.EncodeToString(sum[:12])
}

// Submit registers an analysis request and returns its job snapshot.
// cached reports that the result was already available (the returned info
// is in a terminal state and Result will serve it immediately). An
// in-flight identical request is joined, not recomputed: the returned ID
// is the existing job's. The request's Workers and Progress fields are
// ignored — the scheduler owns both.
func (m *Manager) Submit(c *circuit.Circuit, req exp.AnalysisRequest) (info JobInfo, cached bool, err error) {
	if c == nil {
		return JobInfo{}, false, fmt.Errorf("service: nil circuit")
	}
	req.Workers = 0
	req.Progress = nil
	if err := req.Normalize(); err != nil {
		return JobInfo{}, false, err
	}
	hash := circuit.Hash(c)
	id := jobID(hash, &req)

	m.mu.Lock()
	defer m.mu.Unlock()
	m.ctr.Submitted++

	if e, ok := m.cache.get(id); ok {
		m.ctr.CacheHits++
		return e.info, true, nil
	}
	if j, ok := m.inflight[id]; ok {
		m.ctr.Coalesced++
		return j.info, false, nil
	}

	m.ctr.Computed++
	j := &job{
		info: JobInfo{
			ID:      id,
			Kind:    string(req.Kind),
			Circuit: c.Name,
			Hash:    hash,
			Options: req.IdentityOptions(),
			State:   JobQueued,
		},
		circuit: c,
		req:     req,
		done:    make(chan struct{}),
	}
	m.inflight[id] = j
	m.queue = append(m.queue, j)
	m.dispatchLocked()
	return j.info, false, nil
}

// dispatchLocked starts queued jobs while worker budget remains: each
// started job is granted max(1, avail/queued) inner workers, the adaptive
// form of the §5 split (with J jobs waiting on an idle server each gets
// ⌊W/min(W,J)⌋; a lone job gets all W; at most min(W, jobs) run at once
// because every running job holds ≥ 1 of the W grants). Callers hold mu.
func (m *Manager) dispatchLocked() {
	for len(m.queue) > 0 {
		avail := m.workers - m.used
		if avail <= 0 {
			return
		}
		grant := avail / len(m.queue)
		if grant < 1 {
			grant = 1
		}
		j := m.queue[0]
		m.queue = m.queue[1:]
		m.used += grant
		if m.used > m.ctr.PeakWorkersInUse {
			m.ctr.PeakWorkersInUse = m.used
		}
		j.info.State = JobRunning
		j.info.Workers = grant
		go m.runJob(j, grant)
	}
}

// runJob computes one job and retires it: the result (success or
// deterministic failure — analyses have no transient errors) moves into
// the LRU, the budget returns to the pool, and waiters are released.
func (m *Manager) runJob(j *job, grant int) {
	req := j.req
	req.Workers = grant
	req.Progress = func(stage string, done, total int) {
		m.mu.Lock()
		j.info.Progress = ProgressInfo{Stage: stage, Done: done, Total: total}
		m.mu.Unlock()
	}
	doc, err := m.run(j.circuit, req)
	var encoded []byte
	if err == nil {
		encoded = doc.Encode()
	}

	m.mu.Lock()
	m.used -= grant
	delete(m.inflight, j.info.ID)
	j.info.Workers = 0
	if err != nil {
		j.info.State = JobFailed
		j.info.Error = err.Error()
		j.err = err
		m.ctr.Failed++
	} else {
		j.info.State = JobDone
		j.result = encoded
		m.ctr.Completed++
	}
	m.cache.add(&cacheEntry{id: j.info.ID, info: j.info, result: encoded})
	j.circuit = nil // the parsed netlist is no longer needed; let it go
	m.dispatchLocked()
	m.mu.Unlock()
	close(j.done)
}

// Status returns the current snapshot of a job: in-flight, or completed
// and still in the result cache. ok is false for IDs the manager no
// longer (or never) knew — completed jobs evicted from the LRU included.
func (m *Manager) Status(id string) (JobInfo, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.inflight[id]; ok {
		return j.info, true
	}
	if e, ok := m.cache.get(id); ok {
		return e.info, true
	}
	return JobInfo{}, false
}

// Result returns the encoded result document of a completed job along
// with its snapshot. The bytes are nil unless info.State is JobDone —
// queued, running and failed jobs have no result.
func (m *Manager) Result(id string) (result []byte, info JobInfo, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.inflight[id]; ok {
		return nil, j.info, true
	}
	if e, ok := m.cache.get(id); ok {
		return e.result, e.info, true
	}
	return nil, JobInfo{}, false
}

// Wait blocks until the job reaches a terminal state and returns its
// result bytes (nil with a non-nil error for failed jobs).
func (m *Manager) Wait(id string) ([]byte, error) {
	m.mu.Lock()
	j, inflight := m.inflight[id]
	if !inflight {
		e, ok := m.cache.get(id)
		m.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("service: unknown job %s", id)
		}
		if e.info.State == JobFailed {
			return nil, fmt.Errorf("service: job %s failed: %s", id, e.info.Error)
		}
		return e.result, nil
	}
	ch := j.done
	m.mu.Unlock()
	<-ch
	if j.err != nil {
		return nil, j.err
	}
	return j.result, nil
}

// Counters returns a snapshot of the monitoring counters.
func (m *Manager) Counters() Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.ctr
	c.Queued = len(m.queue)
	c.Running = len(m.inflight) - len(m.queue)
	c.WorkersInUse = m.used
	c.CacheEntries = m.cache.len()
	return c
}
