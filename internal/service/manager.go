// Package service is the serving layer over the analysis engine: a job
// manager that accepts analysis requests, content-addresses them by
// canonical circuit hash + result-identity options (DESIGN.md §7),
// coalesces identical concurrent requests into one computation, caches
// results in a bounded LRU, and schedules distinct jobs under the one §5
// worker budget — extending the budget-splitting rule from
// circuits-within-a-run to jobs-within-a-server (DESIGN.md §10).
//
// Because every analysis is a pure function of (circuit, identity options,
// seed) and encodes deterministically, a cached result is byte-identical
// to the cold run that would have produced it, at any worker count. That
// is the invariant the whole package is built on, and what its
// golden-stability tests pin.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"ndetect/internal/circuit"
	"ndetect/internal/exp"
	"ndetect/internal/fault"
	"ndetect/internal/ndetect"
	"ndetect/internal/obs"
	"ndetect/internal/report"
	"ndetect/internal/sim"
	"ndetect/internal/store"
)

// DefaultCacheEntries bounds the result LRU when Config leaves it unset.
const DefaultCacheEntries = 256

// DefaultMaxQueue is the accept-queue bound the daemon runs with unless
// told otherwise (§15): deep enough that a burst at typical job
// durations drains within a Retry-After cycle, shallow enough that
// overload turns into prompt 503 sheds instead of minutes of queueing.
// The zero Config value still means unbounded — callers opt in.
const DefaultMaxQueue = 256

// ErrShuttingDown is returned by Submit once Drain has begun: the server
// finishes accepted work but takes no more.
var ErrShuttingDown = errors.New("service: shutting down")

// ErrOverloaded is returned by Submit when the accept queue is at its
// configured bound (DESIGN.md §15): the server sheds the request instead
// of queueing without limit and collapsing under memory pressure and
// unbounded latency. Cache hits and coalesces are never shed — they
// consume no queue slot. HTTP maps this to 503 with a Retry-After hint.
var ErrOverloaded = errors.New("service: overloaded, accept queue full")

// Config configures a Manager.
type Config struct {
	// Workers is the server-wide §5 worker budget W (0 = one worker per
	// CPU). At any moment at most min(W, jobs) jobs run concurrently and
	// the sum of their inner worker grants never exceeds W.
	Workers int
	// CacheEntries bounds the result LRU (0 = DefaultCacheEntries).
	CacheEntries int
	// Store, when non-nil, persists completed results and universe
	// artifacts across restarts (DESIGN.md §11): submits missing the
	// in-memory LRU fall through to the disk result tier, and universe
	// constructions load from / save to the universe tier. The manager
	// never closes the store; its owner does.
	Store *store.Store
	// DefaultFaultModel is the fault model filled into submissions that
	// name none ("" = the registry default). Callers validate the ID with
	// fault.Resolve before constructing the manager; requests naming their
	// own model are unaffected.
	DefaultFaultModel string
	// TraceDepth bounds the retained completed-job traces behind
	// Manager.Trace (0 = DefaultTraceDepth, negative = tracing disabled:
	// no per-job recorders, no span retention). Tracing never influences
	// result bytes either way — the byte-identity tests pin a traced run
	// against a TraceDepth<0 one.
	TraceDepth int
	// MaxQueue bounds the accept queue (jobs admitted but not yet
	// dispatched): a submission that would push the queue past the bound
	// is shed with ErrOverloaded instead of admitted (DESIGN.md §15).
	// 0 = unbounded, the pre-§15 behavior. Cache hits, store hits and
	// coalesces never consume a queue slot and are never shed.
	MaxQueue int
	// QuotaRPS/QuotaBurst configure the per-client submit quota: each
	// client key (the X-Ndetect-Client header, or the remote address)
	// accrues QuotaRPS tokens per second up to QuotaBurst, and an empty
	// bucket answers HTTP 429 with a Retry-After hint. QuotaRPS <= 0
	// disables quotas. The quota guards submissions only — status polls,
	// result fetches and event streams stay unmetered (they are cheap
	// and shedding them would break clients waiting on admitted work).
	QuotaRPS   float64
	QuotaBurst int

	// run computes one analysis; tests substitute it to observe and block
	// the scheduler. nil = exp.AnalyzeCircuit.
	run func(*circuit.Circuit, exp.AnalysisRequest) (*report.Analysis, error)
	// newUniverse constructs one exhaustive universe on a universe-tier
	// miss; tests substitute it to count constructions. nil =
	// ndetect.BuildUniverse.
	newUniverse func(*circuit.Circuit, fault.Model, ndetect.AnalyzeOptions) (*ndetect.CircuitUniverse, error)
}

// JobState is a job's lifecycle phase.
type JobState string

// Job lifecycle: queued → running → done | failed.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// ProgressInfo is the latest stage transition a running job reported
// (ndetect.Progress semantics: units are stage-specific).
type ProgressInfo struct {
	Stage string `json:"stage,omitempty"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
}

// JobInfo is a point-in-time snapshot of one job, safe to hold after the
// manager has moved on.
type JobInfo struct {
	// ID is the job's content address: identical requests — same canonical
	// circuit, same result-identity options — get the same ID, which is
	// what makes coalescing and caching fall out of a map lookup.
	ID      string         `json:"id"`
	Kind    string         `json:"kind"`
	Circuit string         `json:"circuit"`
	Hash    string         `json:"hash"`
	Options report.Options `json:"options"`
	State   JobState       `json:"status"`
	// Workers is the inner worker grant while running (0 otherwise). It
	// never influences the result, only wall-clock time.
	Workers  int          `json:"workers,omitempty"`
	Progress ProgressInfo `json:"progress"`
	Error    string       `json:"error,omitempty"`
}

// Counters is a snapshot of the manager's monitoring counters.
type Counters struct {
	Submitted uint64 `json:"submitted"` // Submit calls
	CacheHits uint64 `json:"cache_hits"`
	// StoreHits counts submits answered from the disk result tier — warm
	// hits that survived a restart or in-memory eviction. They also load
	// the in-memory LRU, so a repeat is a plain CacheHit.
	StoreHits uint64 `json:"store_hits"`
	Coalesced uint64 `json:"coalesced"` // submits joined to an in-flight job
	Computed  uint64 `json:"computed"`  // jobs actually enqueued (cache misses)
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Sweeps    uint64 `json:"sweeps"` // SubmitSweep calls

	// ShedQueue counts submissions shed at the accept-queue bound
	// (ErrOverloaded, HTTP 503); ShedQuota counts submissions shed by a
	// per-client quota (HTTP 429). Both are deliberate refusals — the
	// overload story working — not failures.
	ShedQueue uint64 `json:"shed_queue"`
	ShedQuota uint64 `json:"shed_quota"`

	Queued           int `json:"queued"`
	Running          int `json:"running"`
	// QueueLimit is the configured accept-queue bound (0 = unbounded).
	QueueLimit int `json:"queue_limit"`
	WorkersInUse     int `json:"workers_in_use"`
	WorkersTotal     int `json:"workers_total"`
	PeakWorkersInUse int `json:"peak_workers_in_use"`
	CacheEntries     int `json:"cache_entries"`
	CacheCapacity    int `json:"cache_capacity"`
	// UniverseFlights is the number of live shared-universe flights
	// (universes.go) at snapshot time.
	UniverseFlights int `json:"universe_flights"`
}

// job is the manager's mutable bookkeeping for one in-flight computation.
// All fields except done/result/err are guarded by Manager.mu; done is
// closed exactly once at completion, after which result/err are immutable.
type job struct {
	info    JobInfo
	circuit *circuit.Circuit
	req     exp.AnalysisRequest
	// ukey is the universe-flight key the job holds a reference on while
	// in flight ("" for kinds that build no exhaustive universe).
	ukey   string
	done   chan struct{}
	result []byte
	err    error

	// queued times the job's admission wait (submit → dispatch); the
	// timer's clock lives in obs, outside the detrand scope.
	queued obs.Timer

	// rec collects the job's trace spans (nil when tracing is disabled).
	// Safe outside Manager.mu — the recorder carries its own lock.
	rec *obs.Recorder
	// seq numbers the job's published events; subs are the live event
	// subscriptions (events.go). Both guarded by Manager.mu.
	seq  int64
	subs []*EventSub
}

// Manager owns the job queue, the scheduler and the result cache.
type Manager struct {
	workers      int
	run          func(*circuit.Circuit, exp.AnalysisRequest) (*report.Analysis, error)
	newUniverse  func(*circuit.Circuit, fault.Model, ndetect.AnalyzeOptions) (*ndetect.CircuitUniverse, error)
	store        *store.Store
	defaultModel string
	maxQueue     int
	// quota is the per-client admission limiter (nil when disabled). The
	// limiter owns every clock read; this package only asks it.
	quota *obs.RateLimiter

	// met and traces are the observability sinks (observe.go): latency
	// histograms plus the retained span log behind Manager.Trace. met is
	// never nil; traces is nil when Config.TraceDepth is negative.
	met    *metrics
	traces *obs.TraceLog

	mu        sync.Mutex
	closed    bool
	inflight  map[string]*job // queued or running, by ID
	queue     []*job          // submission order
	used      int             // inner worker grants currently out
	cache     *resultCache
	universes map[string]*universeFlight // live universe sharing (universes.go)
	ctr       Counters

	// persist tracks in-progress disk writes so Drain can flush the store
	// before the owner closes it.
	persist sync.WaitGroup
}

// NewManager starts an empty manager. It spawns no goroutines until work
// arrives; there is nothing to shut down beyond abandoning it (or Drain
// for a clean handoff).
func NewManager(cfg Config) *Manager {
	entries := cfg.CacheEntries
	if entries <= 0 {
		entries = DefaultCacheEntries
	}
	run := cfg.run
	if run == nil {
		run = exp.AnalyzeCircuit
	}
	newUniverse := cfg.newUniverse
	if newUniverse == nil {
		newUniverse = ndetect.BuildUniverse
	}
	w := sim.ResolveWorkers(cfg.Workers)
	m := &Manager{
		workers:      w,
		run:          run,
		newUniverse:  newUniverse,
		store:        cfg.Store,
		defaultModel: cfg.DefaultFaultModel,
		maxQueue:     cfg.MaxQueue,
		met:          newMetrics(),
		inflight:     make(map[string]*job),
		cache:        newResultCache(entries),
		universes:    make(map[string]*universeFlight),
		ctr:          Counters{WorkersTotal: w, CacheCapacity: entries, QueueLimit: cfg.MaxQueue},
	}
	if cfg.QuotaRPS > 0 {
		burst := cfg.QuotaBurst
		if burst <= 0 {
			// Default burst: a couple of seconds of the sustained rate, so
			// a well-behaved client's startup spike is not shed.
			burst = int(2 * cfg.QuotaRPS)
		}
		m.quota = obs.NewRateLimiter(cfg.QuotaRPS, burst)
	}
	if cfg.TraceDepth >= 0 {
		depth := cfg.TraceDepth
		if depth == 0 {
			depth = DefaultTraceDepth
		}
		m.traces = obs.NewTraceLog(depth)
	}
	if m.store != nil {
		m.store.SetObserver(storeObserver{dur: m.met.storeDur})
	}
	return m
}

// jobKey is the canonical request identity: the circuit's content hash
// plus every result-identity option of DESIGN.md §7 — and nothing else.
// Workers and the circuit's display name are deliberately absent. The
// fault model component appears only for non-default models (Normalize
// canonicalizes the default to ""), so every pre-registry job ID is
// unchanged.
func jobKey(hash string, req *exp.AnalysisRequest) string {
	key := fmt.Sprintf("ndetect.job/v1|%s|%s|nmax=%d|k=%d|seed=%d|def=%d|ge11=%d|maxin=%d",
		req.Kind, hash, req.NMax, req.K, req.Seed, req.Definition, req.Ge11Limit, req.MaxInputs)
	if req.FaultModel != "" {
		key += "|model=" + req.FaultModel
	}
	return key
}

// jobID derives the job's content address from its key.
func jobID(hash string, req *exp.AnalysisRequest) string {
	sum := sha256.Sum256([]byte(jobKey(hash, req)))
	return hex.EncodeToString(sum[:12])
}

// Submit registers an analysis request and returns its job snapshot.
// cached reports that the result was already available — from the
// in-memory LRU or, when a store is configured, the disk result tier (the
// returned info is in a terminal state and Result will serve it
// immediately). An in-flight identical request is joined, not recomputed:
// the returned ID is the existing job's. The request's Workers, Progress
// and Universes fields are ignored — the scheduler owns all three.
func (m *Manager) Submit(c *circuit.Circuit, req exp.AnalysisRequest) (info JobInfo, cached bool, err error) {
	if c == nil {
		return JobInfo{}, false, fmt.Errorf("service: nil circuit")
	}
	if err := m.normalizeSubmission(&req); err != nil {
		return JobInfo{}, false, err
	}
	hash := circuit.Hash(c)
	id := jobID(hash, &req)

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return JobInfo{}, false, ErrShuttingDown
	}
	m.ctr.Submitted++
	if info, cached, done := m.fastPathLocked(id); done {
		m.mu.Unlock()
		return info, cached, nil
	}
	m.mu.Unlock()

	// The disk result tier is consulted with the lock released: the store
	// serializes itself, and a read (plus envelope decode) must not stall
	// every status poll and progress callback on the server.
	disk := m.fetchStoredResult(id)

	m.mu.Lock()
	defer m.mu.Unlock()
	return m.submitLocked(c, hash, id, req, disk)
}

// SubmitSweep registers a grid of result-identity option variants over
// one circuit as individual jobs — every variant lands in the result
// cache under its own job ID, exactly as if submitted alone — and returns
// their snapshots in variant order. All variants are registered before
// any job can retire, so the ones that miss every cache share one
// exhaustive universe construction (the §11 universe flight): the sweep's
// dominant cost is paid once, not once per variant. Partitioned variants
// are rejected — they build per-part universes and have nothing to share.
func (m *Manager) SubmitSweep(c *circuit.Circuit, variants []exp.AnalysisRequest) ([]SubmitResponse, error) {
	if c == nil {
		return nil, fmt.Errorf("service: nil circuit")
	}
	if len(variants) == 0 {
		return nil, fmt.Errorf("service: empty sweep")
	}
	norm := make([]exp.AnalysisRequest, len(variants))
	for i, v := range variants {
		if err := m.normalizeSubmission(&v); err != nil {
			return nil, fmt.Errorf("service: sweep variant %d: %w", i, err)
		}
		if v.Kind == exp.PartitionedAnalysis {
			return nil, fmt.Errorf("service: sweep variant %d: partitioned analyses cannot share an exhaustive universe", i)
		}
		norm[i] = v
	}
	hash := circuit.Hash(c)
	ids := make([]string, len(norm))
	for i := range norm {
		ids[i] = jobID(hash, &norm[i])
	}

	// Pre-resolve the disk tier for the variants the in-memory state
	// cannot answer, before the one lock acquisition that registers the
	// whole batch (holding the lock across the batch is what guarantees
	// all variants hold the universe flight before any job can retire).
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrShuttingDown
	}
	var need []string
	if m.store != nil {
		for _, id := range ids {
			if _, inMemory := m.cache.get(id); inMemory {
				continue
			}
			if _, inFlight := m.inflight[id]; inFlight {
				continue
			}
			need = append(need, id)
		}
	}
	m.mu.Unlock()
	disk := make(map[string]*cacheEntry, len(need))
	for _, id := range need {
		if e := m.fetchStoredResult(id); e != nil {
			disk[id] = e
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	m.ctr.Sweeps++
	m.ctr.Submitted += uint64(len(norm))
	out := make([]SubmitResponse, len(norm))
	for i, v := range norm {
		info, cached, err := m.submitLocked(c, hash, ids[i], v, disk[ids[i]])
		if err != nil {
			return nil, err
		}
		out[i] = SubmitResponse{JobInfo: info, Cached: cached}
	}
	return out, nil
}

// normalizeSubmission strips the scheduler-owned fields, fills the
// server's default fault model into requests naming none, and fills
// option defaults, so the request carries exactly its result identity.
func (m *Manager) normalizeSubmission(req *exp.AnalysisRequest) error {
	req.Workers = 0
	req.Progress = nil
	req.Universes = nil
	req.Trace = nil
	if req.FaultModel == "" {
		req.FaultModel = m.defaultModel
	}
	return req.Normalize()
}

// fastPathLocked answers a submission from in-memory state alone: a
// memory cache hit or an in-flight coalesce. done is false when the
// caller must go on to the disk tier and job creation. Callers hold m.mu.
func (m *Manager) fastPathLocked(id string) (info JobInfo, cached bool, done bool) {
	if e, ok := m.cache.get(id); ok {
		m.ctr.CacheHits++
		return e.info, true, true
	}
	if j, ok := m.inflight[id]; ok {
		m.ctr.Coalesced++
		return j.info, false, true
	}
	return JobInfo{}, false, false
}

// submitLocked registers one submission under m.mu: the in-memory fast
// path is re-checked (the lock was released around the disk read, so an
// identical request may have landed), then the pre-fetched disk entry is
// installed, then a new job is created. disk may be nil.
func (m *Manager) submitLocked(c *circuit.Circuit, hash, id string, req exp.AnalysisRequest, disk *cacheEntry) (info JobInfo, cached bool, err error) {
	if m.closed {
		return JobInfo{}, false, ErrShuttingDown
	}
	if info, cached, done := m.fastPathLocked(id); done {
		return info, cached, nil
	}
	if disk != nil {
		m.ctr.StoreHits++
		m.cache.add(disk)
		return disk.info, true, nil
	}
	if m.maxQueue > 0 && len(m.queue) >= m.maxQueue {
		// Shedding happens last: only a request that would actually
		// enqueue new computation is refused; everything answerable from
		// caches or coalescing was already answered above.
		m.ctr.ShedQueue++
		return JobInfo{}, false, ErrOverloaded
	}

	m.ctr.Computed++
	j := &job{
		info: JobInfo{
			ID:      id,
			Kind:    string(req.Kind),
			Circuit: c.Name,
			Hash:    hash,
			Options: req.IdentityOptions(),
			State:   JobQueued,
		},
		circuit: c,
		req:     req,
		done:    make(chan struct{}),
		queued:  obs.StartTimer(),
	}
	if m.traces != nil {
		j.rec = obs.NewRecorder()
	}
	if req.Kind != exp.PartitionedAnalysis {
		// Flights are keyed per (hash, model): the default model keeps the
		// bare hash so it shares with pre-registry keys, and a second model
		// over the same circuit gets its own universe.
		j.ukey = hash
		if req.FaultModel != "" {
			j.ukey = hash + "|" + req.FaultModel
		}
		m.acquireUniverseLocked(j.ukey)
	}
	m.inflight[id] = j
	m.queue = append(m.queue, j)
	m.publishStateLocked(j) // queued
	m.dispatchLocked()
	return j.info, false, nil
}

// fetchStoredResult reads the disk result tier (no manager lock held —
// the store locks itself). nil on a miss, on malformed metadata, or when
// no store is configured; the caller installs a hit into the LRU under
// m.mu so repeats are plain memory hits.
func (m *Manager) fetchStoredResult(id string) *cacheEntry {
	if m.store == nil {
		return nil
	}
	meta, body, ok := m.store.GetResult(id)
	if !ok {
		return nil
	}
	var info JobInfo
	if err := json.Unmarshal(meta, &info); err != nil || info.State != JobDone || info.ID != id {
		return nil // stale or foreign metadata: recompute honestly
	}
	return &cacheEntry{id: id, info: info, result: body}
}

// dispatchLocked starts queued jobs while worker budget remains: each
// started job is granted max(1, avail/queued) inner workers, the adaptive
// form of the §5 split (with J jobs waiting on an idle server each gets
// ⌊W/min(W,J)⌋; a lone job gets all W; at most min(W, jobs) run at once
// because every running job holds ≥ 1 of the W grants). Callers hold mu.
func (m *Manager) dispatchLocked() {
	for len(m.queue) > 0 {
		avail := m.workers - m.used
		if avail <= 0 {
			return
		}
		grant := avail / len(m.queue)
		if grant < 1 {
			grant = 1
		}
		j := m.queue[0]
		m.queue = m.queue[1:]
		m.used += grant
		if m.used > m.ctr.PeakWorkersInUse {
			m.ctr.PeakWorkersInUse = m.used
		}
		m.met.admitWait.Observe(j.queued.Seconds())
		j.info.State = JobRunning
		j.info.Workers = grant
		m.publishStateLocked(j) // running, with the worker grant
		go m.runJob(j, grant)
	}
}

// runJob computes one job and retires it: the result (success or
// deterministic failure — analyses have no transient errors) moves into
// the LRU and, for successes, the disk result tier; the budget returns to
// the pool, and waiters are released.
func (m *Manager) runJob(j *job, grant int) {
	rec := j.rec // recorder access needs no lock; nil when tracing is off
	req := j.req
	req.Workers = grant
	req.Progress = func(stage string, done, total int) {
		if rec != nil {
			rec.Progress(stage, done, total)
		}
		m.mu.Lock()
		j.info.Progress = ProgressInfo{Stage: stage, Done: done, Total: total}
		p := j.info.Progress
		m.publishLocked(j, JobEvent{Type: EventProgress, Progress: &p})
		m.mu.Unlock()
	}
	if rec != nil {
		// Assigned only when non-nil: a nil *Recorder in the TraceSink
		// interface would defeat the driver's Trace == nil fast path.
		req.Trace = rec
	}
	if j.ukey != "" {
		req.Universes = &managerUniverses{m: m, key: j.ukey}
	}
	doc, err := m.run(j.circuit, req)
	var encoded []byte
	if err == nil {
		if rec != nil {
			end := rec.Begin("encode")
			encoded = doc.Encode()
			end()
		} else {
			encoded = doc.Encode()
		}
	}

	m.mu.Lock()
	m.used -= grant
	delete(m.inflight, j.info.ID)
	j.info.Workers = 0
	if err != nil {
		j.info.State = JobFailed
		j.info.Error = err.Error()
		j.err = err
		m.ctr.Failed++
	} else {
		j.info.State = JobDone
		j.result = encoded
		m.ctr.Completed++
	}
	m.publishStateLocked(j) // terminal: ends every subscriber's stream
	m.cache.add(&cacheEntry{id: j.info.ID, info: j.info, result: encoded, seq: j.seq})
	if j.ukey != "" {
		m.releaseUniverseLocked(j.ukey)
	}
	persistInfo := j.info
	persist := err == nil && m.store != nil
	if persist {
		m.persist.Add(1) // before the job leaves inflight's drain view
	}
	j.circuit = nil // the parsed netlist is no longer needed; let it go
	m.dispatchLocked()
	m.mu.Unlock()

	if rec != nil {
		// Retire the trace: end-to-end latency (submit → terminal state),
		// per-stage histograms from the closed spans, and the span dump
		// behind /trace/{id}. All after the lock — the sinks synchronize
		// themselves.
		m.met.jobDur.Observe(rec.Elapsed().Seconds())
		spans := rec.Finish()
		m.met.observeTrace(spans)
		m.traces.Add(j.info.ID, spans)
	}

	if persist {
		// Failures stay in-memory only: a deterministic failure recomputes
		// identically, and persisting it would just pin a dead slot.
		if meta, merr := json.Marshal(persistInfo); merr == nil {
			m.store.PutResult(persistInfo.ID, meta, encoded) // best effort
		}
		m.persist.Done()
	}
	close(j.done)
}

// Drain begins a graceful shutdown: new submissions fail with
// ErrShuttingDown, every accepted job (queued or running) completes, and
// pending store writes flush. It returns nil once the manager is idle, or
// the context error if the deadline expires first (abandoned jobs are
// pure recomputable functions — nothing is lost, only uncached).
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	for {
		m.mu.Lock()
		n := len(m.inflight)
		m.mu.Unlock()
		if n == 0 {
			break
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
	// The persist flush honors the same deadline: a store write stalled on
	// a dead disk must not hold shutdown past the drain budget.
	flushed := make(chan struct{})
	go func() {
		m.persist.Wait()
		close(flushed)
	}()
	select {
	case <-flushed:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Status returns the current snapshot of a job: in-flight, or completed
// and still in the result cache. ok is false for IDs the manager no
// longer (or never) knew — completed jobs evicted from the LRU included.
func (m *Manager) Status(id string) (JobInfo, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.inflight[id]; ok {
		return j.info, true
	}
	if e, ok := m.cache.get(id); ok {
		return e.info, true
	}
	return JobInfo{}, false
}

// Result returns the encoded result document of a completed job along
// with its snapshot. The bytes are nil unless info.State is JobDone —
// queued, running and failed jobs have no result.
func (m *Manager) Result(id string) (result []byte, info JobInfo, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.inflight[id]; ok {
		return nil, j.info, true
	}
	if e, ok := m.cache.get(id); ok {
		return e.result, e.info, true
	}
	return nil, JobInfo{}, false
}

// Wait blocks until the job reaches a terminal state and returns its
// result bytes (nil with a non-nil error for failed jobs).
func (m *Manager) Wait(id string) ([]byte, error) {
	m.mu.Lock()
	j, inflight := m.inflight[id]
	if !inflight {
		e, ok := m.cache.get(id)
		m.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("service: unknown job %s", id)
		}
		if e.info.State == JobFailed {
			return nil, fmt.Errorf("service: job %s failed: %s", id, e.info.Error)
		}
		return e.result, nil
	}
	ch := j.done
	m.mu.Unlock()
	<-ch
	if j.err != nil {
		return nil, j.err
	}
	return j.result, nil
}

// StoreCounters returns the persistent store's tier counters; ok is
// false (with zero counters) when no store is configured.
func (m *Manager) StoreCounters() (store.Counters, bool) {
	if m.store == nil {
		return store.Counters{}, false
	}
	return m.store.Counters(), true
}

// Counters returns a snapshot of the monitoring counters.
func (m *Manager) Counters() Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.ctr
	c.Queued = len(m.queue)
	c.Running = len(m.inflight) - len(m.queue)
	c.WorkersInUse = m.used
	c.CacheEntries = m.cache.len()
	c.UniverseFlights = len(m.universes)
	return c
}
