package service

import (
	"bytes"
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ndetect/internal/circuit"
	"ndetect/internal/exp"
	"ndetect/internal/fault"
	"ndetect/internal/ndetect"
	"ndetect/internal/report"
	"ndetect/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// The restart contract (DESIGN.md §11): a new manager over the same store
// directory answers a previously computed request from disk — cached on
// the first submit, byte-identical to the original, no recomputation.
func TestRestartServesResultFromStore(t *testing.T) {
	dir := t.TempDir()
	m1 := NewManager(Config{Workers: 2, Store: openStore(t, dir)})
	req := averageReq(7)
	info, cached, err := m1.Submit(c17(t), req)
	if err != nil || cached {
		t.Fatalf("first submit: cached=%v err=%v", cached, err)
	}
	cold, err := m1.Wait(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh manager, a fresh store handle, same directory.
	var computations atomic.Int64
	m2 := NewManager(Config{
		Workers: 2,
		Store:   openStore(t, dir),
		run: func(c *circuit.Circuit, req exp.AnalysisRequest) (*report.Analysis, error) {
			computations.Add(1)
			return exp.AnalyzeCircuit(c, req)
		},
	})
	again, cached, err := m2.Submit(c17(t), averageReq(7))
	if err != nil {
		t.Fatal(err)
	}
	if !cached || again.ID != info.ID || again.State != JobDone {
		t.Fatalf("restart submit should be a warm hit: cached=%v info=%+v", cached, again)
	}
	warm, _, ok := m2.Result(again.ID)
	if !ok || !bytes.Equal(cold, warm) {
		t.Fatalf("warm result is not byte-identical (ok=%v, %d vs %d bytes)", ok, len(cold), len(warm))
	}
	if computations.Load() != 0 {
		t.Fatalf("restart recomputed %d times", computations.Load())
	}
	ctr := m2.Counters()
	if ctr.StoreHits != 1 || ctr.Computed != 0 {
		t.Fatalf("counters: %+v", ctr)
	}
	// The disk hit reloaded the memory LRU: a repeat is a plain cache hit.
	if _, cached, _ := m2.Submit(c17(t), averageReq(7)); !cached {
		t.Fatal("repeat after store hit should hit the memory LRU")
	}
	if ctr := m2.Counters(); ctr.CacheHits != 1 || ctr.StoreHits != 1 {
		t.Fatalf("counters after repeat: %+v", ctr)
	}
}

// A sweep of S variants constructs the exhaustive universe exactly once,
// and every variant's document is byte-identical to a cold one-shot run.
func TestSubmitSweepSharesUniverse(t *testing.T) {
	var builds atomic.Int64
	m := NewManager(Config{
		Workers: 4,
		newUniverse: func(c *circuit.Circuit, fm fault.Model, opts ndetect.AnalyzeOptions) (*ndetect.CircuitUniverse, error) {
			builds.Add(1)
			return ndetect.BuildUniverse(c, fm, opts)
		},
	})
	variants := []exp.AnalysisRequest{
		{Kind: exp.WorstCaseAnalysis},
		{Kind: exp.AverageAnalysis, NMax: 2, K: 20, Seed: 1},
		{Kind: exp.AverageAnalysis, NMax: 2, K: 20, Seed: 2},
		{Kind: exp.AverageAnalysis, NMax: 2, K: 20, Seed: 1, Definition: 2, Ge11Limit: 3},
	}
	jobs, err := m.SubmitSweep(c17(t), variants)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(variants) {
		t.Fatalf("%d jobs for %d variants", len(jobs), len(variants))
	}
	for i, j := range jobs {
		got, err := m.Wait(j.ID)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := exp.AnalyzeCircuit(c17(t), variants[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, cold.Encode()) {
			t.Fatalf("variant %d: swept bytes differ from cold one-shot run", i)
		}
	}
	if got := builds.Load(); got != 1 {
		t.Fatalf("sweep of %d variants constructed the universe %d times, want exactly 1", len(variants), got)
	}
	if ctr := m.Counters(); ctr.Sweeps != 1 || ctr.Computed != uint64(len(variants)) {
		t.Fatalf("counters: %+v", ctr)
	}

	// Resweeping is pure cache: no new jobs, no new construction.
	jobs, err = m.SubmitSweep(c17(t), variants)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if !j.Cached {
			t.Fatalf("resweep variant not cached: %+v", j)
		}
	}
	if builds.Load() != 1 {
		t.Fatal("resweep reconstructed the universe")
	}
}

func TestSubmitSweepRejectsPartitioned(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	_, err := m.SubmitSweep(c17(t), []exp.AnalysisRequest{
		{Kind: exp.WorstCaseAnalysis},
		{Kind: exp.PartitionedAnalysis, MaxInputs: 4},
	})
	if err == nil {
		t.Fatal("partitioned sweep variant should be rejected")
	}
	if ctr := m.Counters(); ctr.Computed != 0 {
		t.Fatalf("rejected sweep enqueued jobs: %+v", ctr)
	}
}

// The universe tier survives restarts: a new manager computing a
// *different* variant of a known circuit loads the universe artifact
// instead of re-simulating.
func TestUniverseTierWarmStart(t *testing.T) {
	dir := t.TempDir()
	var builds atomic.Int64
	counting := func(c *circuit.Circuit, fm fault.Model, opts ndetect.AnalyzeOptions) (*ndetect.CircuitUniverse, error) {
		builds.Add(1)
		return ndetect.BuildUniverse(c, fm, opts)
	}

	m1 := NewManager(Config{Workers: 2, Store: openStore(t, dir), newUniverse: counting})
	info, _, err := m1.Submit(c17(t), averageReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Wait(info.ID); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 1 {
		t.Fatalf("first job built %d universes", builds.Load())
	}

	m2 := NewManager(Config{Workers: 2, Store: openStore(t, dir), newUniverse: counting})
	info2, cached, err := m2.Submit(c17(t), averageReq(5)) // new seed: result miss
	if err != nil || cached {
		t.Fatalf("different seed should compute: cached=%v err=%v", cached, err)
	}
	want, err := exp.AnalyzeCircuit(c17(t), averageReq(5))
	if err != nil {
		t.Fatal(err)
	}
	got, err := m2.Wait(info2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Encode()) {
		t.Fatal("artifact-loaded universe changed the result bytes")
	}
	if builds.Load() != 1 {
		t.Fatalf("restarted manager rebuilt the universe (%d builds)", builds.Load())
	}
	sc, ok := m2.StoreCounters()
	if !ok || sc.Universes.Hits != 1 {
		t.Fatalf("universe tier counters: ok=%v %+v", ok, sc.Universes)
	}
}

// Eviction then recompute under concurrency: once a completed ID is
// evicted from the LRU, a burst of identical requests re-coalesces onto
// exactly one new computation whose bytes match the original.
func TestEvictionRecoalescesOntoOneComputation(t *testing.T) {
	const clients = 12
	var computations, worstcaseRuns atomic.Int64
	release := make(chan struct{})
	m := NewManager(Config{
		Workers:      2,
		CacheEntries: 1,
		run: func(c *circuit.Circuit, req exp.AnalysisRequest) (*report.Analysis, error) {
			computations.Add(1)
			if req.Kind == exp.WorstCaseAnalysis && worstcaseRuns.Add(1) > 1 {
				<-release // hold the post-eviction recompute until every client submitted
			}
			return exp.AnalyzeCircuit(c, req)
		},
	})

	first, _, err := m.Submit(c17(t), worstcaseReq())
	if err != nil {
		t.Fatal(err)
	}
	original, err := m.Wait(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	evictor, _, err := m.Submit(c17(t), averageReq(1)) // LRU size 1: evicts first
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(evictor.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Status(first.ID); ok {
		t.Fatal("original job should be evicted")
	}

	ids := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			info, cached, err := m.Submit(c17(t), worstcaseReq())
			if err != nil {
				t.Error(err)
				return
			}
			if cached {
				t.Error("evicted ID served from cache")
				return
			}
			ids[i] = info.ID
		}(i)
	}
	wg.Wait()
	close(release)
	for _, id := range ids {
		if id != first.ID {
			t.Fatalf("recomputed job changed ID: %s vs %s", id, first.ID)
		}
		got, err := m.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, original) {
			t.Fatal("recomputed bytes differ from the original")
		}
	}
	// 1 original + 1 evictor + exactly 1 recompute for the whole burst.
	if got := computations.Load(); got != 3 {
		t.Fatalf("computations = %d, want 3 (burst must coalesce onto one)", got)
	}
	ctr := m.Counters()
	if ctr.Coalesced != clients-1 {
		t.Fatalf("coalesced = %d, want %d", ctr.Coalesced, clients-1)
	}
}

// Drain stops intake, finishes accepted work, and flushes the store.
func TestDrain(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	release := make(chan struct{})
	m := NewManager(Config{
		Workers: 2,
		Store:   st,
		run: func(c *circuit.Circuit, req exp.AnalysisRequest) (*report.Analysis, error) {
			<-release
			return exp.AnalyzeCircuit(c, req)
		},
	})
	info, _, err := m.Submit(c17(t), worstcaseReq())
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() { drained <- m.Drain(context.Background()) }()
	// Drain must refuse new work while the accepted job is still running.
	for {
		if _, _, err := m.Submit(c17(t), averageReq(1)); err == ErrShuttingDown {
			break
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-drained:
		t.Fatalf("drain returned before in-flight work finished: %v", err)
	default:
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatal(err)
	}

	// The accepted job completed and its result reached the disk tier: a
	// fresh manager over the same directory serves it without computing.
	m2 := NewManager(Config{Workers: 1, Store: openStore(t, dir)})
	again, cached, err := m2.Submit(c17(t), worstcaseReq())
	if err != nil || !cached || again.ID != info.ID {
		t.Fatalf("drained result not persisted: cached=%v err=%v", cached, err)
	}

	// A deadline that cannot be met surfaces the context error.
	m3 := NewManager(Config{
		Workers: 1,
		run: func(c *circuit.Circuit, req exp.AnalysisRequest) (*report.Analysis, error) {
			select {} // never finishes
		},
	})
	if _, _, err := m3.Submit(c17(t), worstcaseReq()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := m3.Drain(ctx); err == nil {
		t.Fatal("drain with stuck work should return the context error")
	}
}
