package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"ndetect/internal/bench"
	"ndetect/internal/circuit"
	"ndetect/internal/exp"
	"ndetect/internal/kiss"
	"ndetect/internal/obs"
	"ndetect/internal/report"
	"ndetect/internal/store"
	"ndetect/internal/synth"
)

// The HTTP API — JSON over net/http, no dependencies beyond the standard
// library (DESIGN.md §10):
//
//	POST /jobs                 enqueue an analysis; returns the job snapshot
//	                           (200 + cached:true when already computed,
//	                           202 otherwise — identical in-flight requests
//	                           coalesce onto one job ID)
//	GET  /jobs/{id}            job status with live progress
//	GET  /jobs/{id}/result     the result document (202 + status while the
//	                           job is still queued/running)
//	GET  /jobs/{id}/events     the job's event stream as Server-Sent
//	                           Events: a state snapshot on connect, then
//	                           every state transition and progress update,
//	                           ending with the terminal state (§14)
//	GET  /healthz              liveness
//	GET  /metrics              Prometheus text exposition: counters,
//	                           gauges and latency histograms
//
// The POST body names a circuit — inline source for the existing parsers
// ("net", "bench" or "kiss2" format) or an embedded benchmark — plus the
// analysis kind and its result-identity options:
//
//	{"benchmark": "bbtas", "analysis": "worstcase"}
//	{"format": "bench", "name": "c17", "source": "INPUT(1)...",
//	 "analysis": "average", "options": {"nmax": 10, "k": 1000, "seed": 1}}

// maxRequestBytes bounds a POST body; netlists are text and the widest
// supported circuits are far below this.
const maxRequestBytes = 32 << 20

// CircuitRef names the circuit of a request: an embedded benchmark, or
// inline source for one of the existing parsers. Its fields inline into
// the JSON of every request shape that carries a circuit.
type CircuitRef struct {
	// Benchmark names an embedded circuit: an FSM surrogate from the
	// benchmark suite (synthesized with the default options) or an ISCAS
	// .bench sample. Mutually exclusive with Source.
	Benchmark string `json:"benchmark,omitempty"`

	// Source is inline circuit text; Format selects the parser: "net"
	// (default), "bench" (ISCAS-85/89), or "kiss2" (an FSM, synthesized
	// with the default options). Name labels the circuit (presentation
	// only — it does not enter the job identity).
	Format string `json:"format,omitempty"`
	Name   string `json:"name,omitempty"`
	Source string `json:"source,omitempty"`
}

// SubmitRequest is the POST /jobs body.
type SubmitRequest struct {
	CircuitRef

	// Analysis is "worstcase" (default), "average" or "partitioned".
	Analysis string `json:"analysis,omitempty"`
	// Options are the result-identity options of DESIGN.md §7; fields the
	// analysis kind ignores are normalized away.
	Options report.Options `json:"options"`
}

// SweepVariant is one grid point of a POST /sweeps body.
type SweepVariant struct {
	// Analysis is "worstcase" (default) or "average" — partitioned
	// analyses share no exhaustive universe and are rejected.
	Analysis string `json:"analysis,omitempty"`
	// Options are the variant's result-identity options.
	Options report.Options `json:"options"`
}

// SweepRequest is the POST /sweeps body: one circuit plus a variant grid,
// given either explicitly (variants) or as a grid specification string
// (sweep, the exp.ParseSweep format, e.g. "seed=1..5;def=1,2").
type SweepRequest struct {
	CircuitRef

	Sweep    string         `json:"sweep,omitempty"`
	Variants []SweepVariant `json:"variants,omitempty"`
}

// SweepResponse is the POST /sweeps reply: per-variant job snapshots in
// variant order. Each job is an ordinary /jobs citizen — poll and fetch
// it by ID exactly as if it had been submitted alone.
type SweepResponse struct {
	Jobs []SubmitResponse `json:"jobs"`
}

// SubmitResponse is the POST /jobs reply: the job snapshot plus whether
// the result was already available.
type SubmitResponse struct {
	JobInfo
	Cached bool `json:"cached"`
}

// Server exposes a Manager over HTTP.
type Server struct {
	m *Manager
}

// NewServer wraps a manager.
func NewServer(m *Manager) *Server { return &Server{m: m} }

// Handler returns the route table. Every route is wrapped in a
// per-class latency recorder (obs.TimeHandler — the clock stays in obs),
// feeding the ndetectd_http_request_duration_seconds histogram family.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /jobs", s.timed("submit", s.handleSubmit))
	mux.Handle("POST /sweeps", s.timed("sweep", s.handleSweep))
	mux.Handle("GET /jobs/{id}", s.timed("status", s.handleStatus))
	mux.Handle("GET /jobs/{id}/result", s.timed("result", s.handleResult))
	mux.Handle("GET /jobs/{id}/events", s.timed("events", s.handleEvents))
	mux.Handle("GET /healthz", s.timed("healthz", s.handleHealthz))
	mux.Handle("GET /metrics", s.timed("metrics", s.handleMetrics))
	return mux
}

// timed wraps one route with the per-class request-latency recorder.
func (s *Server) timed(class string, h http.HandlerFunc) http.Handler {
	return obs.TimeHandler(func(_ int, seconds float64) {
		s.m.met.httpDur.Observe(class, seconds)
	}, h)
}

// clientKey identifies the quota bucket of a request: the value of the
// X-Ndetect-Client header when the client names itself (the deployment
// hands quota identities out with API endpoints), else the remote host.
func clientKey(r *http.Request) string {
	if c := r.Header.Get("X-Ndetect-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// admit runs the per-client quota check for a submission route: on a
// shed it writes the 429 itself and reports false.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) bool {
	ok, retry := s.m.AdmitClient(clientKey(r))
	if !ok {
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeError(w, http.StatusTooManyRequests,
			"client quota exceeded; retry after %ds (key it with the X-Ndetect-Client header)", retry)
	}
	return ok
}

// DebugHandler returns the introspection routes the daemon serves on its
// separate -debug-addr listener (never on the public API address):
// net/http/pprof under /debug/pprof/, and /trace/{id} dumping a job's
// spans as JSON — live snapshot for in-flight jobs, retained trace for
// recently completed ones.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /trace/{id}", s.handleTrace)
	return mux
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	spans, ok := s.m.Trace(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no trace for job %s (traces are bounded FIFO; tracing may be disabled)", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, spans)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // nothing useful to do with a write error mid-response
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r) {
		return
	}
	var sub SubmitRequest
	body := http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(body).Decode(&sub); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}

	c, err := loadSubmittedCircuit(&sub.CircuitRef)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	req, err := analysisRequest(sub.Analysis, sub.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	info, cached, err := s.m.Submit(c, req)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	code := http.StatusAccepted
	if cached {
		code = http.StatusOK
	}
	writeJSON(w, code, SubmitResponse{JobInfo: info, Cached: cached})
}

// handleSweep enqueues a variant grid over one circuit: 200 when every
// variant was already computed, 202 otherwise.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r) {
		return
	}
	var sub SweepRequest
	body := http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(body).Decode(&sub); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	c, err := loadSubmittedCircuit(&sub.CircuitRef)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	var variants []exp.AnalysisRequest
	switch {
	case sub.Sweep != "" && len(sub.Variants) == 0:
		if variants, err = exp.ParseSweep(sub.Sweep); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	case len(sub.Variants) > 0 && sub.Sweep == "":
		for _, v := range sub.Variants {
			req, err := analysisRequest(v.Analysis, v.Options)
			if err != nil {
				writeError(w, http.StatusBadRequest, "%v", err)
				return
			}
			variants = append(variants, req)
		}
	default:
		writeError(w, http.StatusBadRequest, "specify exactly one of sweep or variants")
		return
	}

	jobs, err := s.m.SubmitSweep(c, variants)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	code := http.StatusOK
	for _, j := range jobs {
		if !j.Cached {
			code = http.StatusAccepted
			break
		}
	}
	writeJSON(w, code, SweepResponse{Jobs: jobs})
}

// writeSubmitError maps submission failures: a shed (queue full) or
// draining server is 503 with a Retry-After estimate — the explicit
// backpressure contract of §15, never a silent collapse — anything else
// is the caller's request.
func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	if errors.Is(err, ErrOverloaded) || errors.Is(err, ErrShuttingDown) {
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(s.m.RetryAfter()))
	}
	writeError(w, code, "%v", err)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	info, ok := s.m.Status(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %s (completed jobs expire from the result cache)", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	result, info, ok := s.m.Result(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %s (completed jobs expire from the result cache)", r.PathValue("id"))
		return
	}
	switch info.State {
	case JobDone:
		// The cached bytes verbatim: this response is the byte-identity
		// contract between cold runs, cache hits, and cmd/ndetect -json.
		w.Header().Set("Content-Type", "application/json")
		w.Write(result)
	case JobFailed:
		writeError(w, http.StatusUnprocessableEntity, "job %s failed: %s", info.ID, info.Error)
	default:
		writeJSON(w, http.StatusAccepted, info) // still queued/running: poll again
	}
}

// handleEvents streams one job's event stream as Server-Sent Events: a
// "state" snapshot on connect (replay-from-snapshot — late subscribers
// need no event history), then each published event in order, ending
// with the terminal state event. Already-completed jobs get the terminal
// snapshot alone. The SSE id: field carries the event sequence number.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, sub, ok := s.m.Events(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %s (completed jobs expire from the result cache)", id)
		return
	}
	defer s.m.Unsubscribe(id, sub) // nil-safe
	obs.SSEHeaders(w.Header())
	w.WriteHeader(http.StatusOK)
	fl, canFlush := w.(http.Flusher)
	write := func(ev JobEvent) error {
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if err := obs.WriteSSEEvent(w, ev.Seq, ev.Type, data); err != nil {
			return err
		}
		if canFlush {
			fl.Flush()
		}
		return nil
	}
	if err := write(snap); err != nil || sub == nil || snap.Terminal() {
		return
	}
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case <-sub.Notify():
		}
		for _, ev := range sub.Drain() {
			if err := write(ev); err != nil || ev.Terminal() {
				return
			}
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// MetricsContentType is the Prometheus text exposition format version
// this endpoint speaks.
const MetricsContentType = "text/plain; version=0.0.4; charset=utf-8"

func tierExposition(e *obs.Exposition, tier string, tc store.TierCounters) {
	e.Counter("ndetectd_store_"+tier+"_hits_total", tier+" tier hits", tc.Hits)
	e.Counter("ndetectd_store_"+tier+"_misses_total", tier+" tier misses", tc.Misses)
	e.Counter("ndetectd_store_"+tier+"_evictions_total", tier+" tier evictions", tc.Evictions)
	e.Gauge("ndetectd_store_"+tier+"_bytes", tier+" tier bytes on disk", tc.Bytes)
	e.Gauge("ndetectd_store_"+tier+"_files", tier+" tier artifact count", int64(tc.Files))
}

// handleMetrics renders the Prometheus text exposition. Every metric name
// and sample format predating the §14 observability layer is preserved
// verbatim (only HELP/TYPE headers were added around them — scrapers and
// greps keyed on `name value` lines keep working); the histograms and
// derived gauges are additive. The GET pattern also matches HEAD, whose
// body net/http discards — a scraper's probe costs headers only.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	c := s.m.Counters()
	sc, _ := s.m.StoreCounters() // zeros when no store is configured
	w.Header().Set("Content-Type", MetricsContentType)
	w.Header().Set("Cache-Control", "no-store")
	e := obs.NewExposition(w)

	e.Counter("ndetectd_jobs_submitted_total", "analysis submissions accepted", c.Submitted)
	e.Counter("ndetectd_jobs_cache_hits_total", "submissions answered from the in-memory result LRU", c.CacheHits)
	e.Counter("ndetectd_jobs_store_hits_total", "submissions answered from the disk result tier", c.StoreHits)
	e.Counter("ndetectd_jobs_coalesced_total", "submissions joined to an identical in-flight job", c.Coalesced)
	e.Counter("ndetectd_jobs_computed_total", "jobs actually enqueued (cache misses)", c.Computed)
	e.Counter("ndetectd_jobs_completed_total", "jobs completed successfully", c.Completed)
	e.Counter("ndetectd_jobs_failed_total", "jobs failed deterministically", c.Failed)
	e.Counter("ndetectd_sweeps_total", "sweep submissions accepted", c.Sweeps)
	e.Counter("ndetectd_shed_queue_total", "submissions shed at the accept-queue bound (503)", c.ShedQueue)
	e.Counter("ndetectd_shed_quota_total", "submissions shed by a per-client quota (429)", c.ShedQuota)
	e.Gauge("ndetectd_queue_limit", "configured accept-queue bound (0 = unbounded)", int64(c.QueueLimit))
	e.Gauge("ndetectd_jobs_queued", "jobs waiting for a worker grant", int64(c.Queued))
	e.Gauge("ndetectd_jobs_running", "jobs currently computing", int64(c.Running))
	e.Gauge("ndetectd_jobs_inflight", "jobs queued or running", int64(c.Queued+c.Running))
	e.Gauge("ndetectd_workers_in_use", "inner worker grants currently out", int64(c.WorkersInUse))
	e.Gauge("ndetectd_workers_total", "the server-wide worker budget W", int64(c.WorkersTotal))
	e.Gauge("ndetectd_cache_entries", "results in the in-memory LRU", int64(c.CacheEntries))
	e.Gauge("ndetectd_cache_capacity", "in-memory result LRU capacity", int64(c.CacheCapacity))
	e.Gauge("ndetectd_universe_flights", "live shared-universe flights", int64(c.UniverseFlights))
	e.Gauge("ndetectd_events_streaming", "open SSE event subscriptions", s.m.met.streaming.Value())
	e.Gauge("ndetectd_store_bytes", "artifact bytes on disk across tiers", sc.Bytes)
	tierExposition(e, "results", sc.Results)
	tierExposition(e, "universes", sc.Universes)

	e.Histogram("ndetectd_admission_wait_seconds",
		"time jobs spend in the accept queue, submit to worker grant", s.m.met.admitWait.Snapshot())
	e.HistogramVec("ndetectd_http_request_duration_seconds",
		"request latency by route class (events = SSE stream lifetime)", "class", s.m.met.httpDur)
	e.Histogram("ndetectd_job_duration_seconds",
		"end-to-end job latency, submit to terminal state", s.m.met.jobDur.Snapshot())
	e.HistogramVec("ndetectd_stage_duration_seconds",
		"per-stage job latency by span name", "stage", s.m.met.stageDur)
	e.HistogramVec("ndetectd_store_op_duration_seconds",
		"artifact store I/O latency by tier and operation", "op", s.m.met.storeDur)
}

// loadSubmittedCircuit resolves the request's circuit: an embedded
// benchmark by name, or inline source through the parser Format selects.
func loadSubmittedCircuit(sub *CircuitRef) (*circuit.Circuit, error) {
	switch {
	case sub.Benchmark != "" && sub.Source == "":
		if b, ok := bench.ByName(sub.Benchmark); ok {
			r, err := b.SynthesizeDefault()
			if err != nil {
				return nil, err
			}
			return r.Circuit, nil
		}
		if c, err := circuit.EmbeddedBench(sub.Benchmark); err == nil {
			return c, nil
		}
		return nil, fmt.Errorf("unknown benchmark %q (known: %s %s)", sub.Benchmark,
			strings.Join(bench.Names(), " "), strings.Join(circuit.EmbeddedBenchNames(), " "))
	case sub.Source != "" && sub.Benchmark == "":
		name := sub.Name
		if name == "" {
			name = "circuit"
		}
		switch sub.Format {
		case "net", "":
			return circuit.ParseString(sub.Source)
		case "bench":
			return circuit.ParseBenchString(name, sub.Source)
		case "kiss2":
			m, err := kiss.ParseString(name, sub.Source)
			if err != nil {
				return nil, err
			}
			r, err := synth.Synthesize(m, bench.DefaultOptions())
			if err != nil {
				return nil, err
			}
			return r.Circuit, nil
		default:
			return nil, fmt.Errorf("unknown format %q (want net, bench or kiss2)", sub.Format)
		}
	default:
		return nil, fmt.Errorf("specify exactly one of benchmark or source")
	}
}

// analysisRequest maps a submitted kind + options onto the driver
// request (normalized later by Submit).
func analysisRequest(analysis string, options report.Options) (exp.AnalysisRequest, error) {
	kind := exp.AnalysisKind(analysis)
	if analysis == "" {
		kind = exp.WorstCaseAnalysis
	}
	switch kind {
	case exp.WorstCaseAnalysis, exp.AverageAnalysis, exp.PartitionedAnalysis:
	default:
		return exp.AnalysisRequest{}, fmt.Errorf("unknown analysis %q (want worstcase, average or partitioned)", analysis)
	}
	return exp.AnalysisRequest{
		Kind:       kind,
		FaultModel: options.FaultModel,
		NMax:       options.NMax,
		K:          options.K,
		Seed:       options.Seed,
		Definition: options.Definition,
		Ge11Limit:  options.Ge11Limit,
		MaxInputs:  options.MaxInputs,
	}, nil
}
