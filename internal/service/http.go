package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"ndetect/internal/bench"
	"ndetect/internal/circuit"
	"ndetect/internal/exp"
	"ndetect/internal/kiss"
	"ndetect/internal/report"
	"ndetect/internal/synth"
)

// The HTTP API — JSON over net/http, no dependencies beyond the standard
// library (DESIGN.md §10):
//
//	POST /jobs                 enqueue an analysis; returns the job snapshot
//	                           (200 + cached:true when already computed,
//	                           202 otherwise — identical in-flight requests
//	                           coalesce onto one job ID)
//	GET  /jobs/{id}            job status with live progress
//	GET  /jobs/{id}/result     the result document (202 + status while the
//	                           job is still queued/running)
//	GET  /healthz              liveness
//	GET  /metrics              Prometheus-style counters, text/plain
//
// The POST body names a circuit — inline source for the existing parsers
// ("net", "bench" or "kiss2" format) or an embedded benchmark — plus the
// analysis kind and its result-identity options:
//
//	{"benchmark": "bbtas", "analysis": "worstcase"}
//	{"format": "bench", "name": "c17", "source": "INPUT(1)...",
//	 "analysis": "average", "options": {"nmax": 10, "k": 1000, "seed": 1}}

// maxRequestBytes bounds a POST body; netlists are text and the widest
// supported circuits are far below this.
const maxRequestBytes = 32 << 20

// SubmitRequest is the POST /jobs body.
type SubmitRequest struct {
	// Benchmark names an embedded circuit: an FSM surrogate from the
	// benchmark suite (synthesized with the default options) or an ISCAS
	// .bench sample. Mutually exclusive with Source.
	Benchmark string `json:"benchmark,omitempty"`

	// Source is inline circuit text; Format selects the parser: "net"
	// (default), "bench" (ISCAS-85/89), or "kiss2" (an FSM, synthesized
	// with the default options). Name labels the circuit (presentation
	// only — it does not enter the job identity).
	Format string `json:"format,omitempty"`
	Name   string `json:"name,omitempty"`
	Source string `json:"source,omitempty"`

	// Analysis is "worstcase" (default), "average" or "partitioned".
	Analysis string `json:"analysis,omitempty"`
	// Options are the result-identity options of DESIGN.md §7; fields the
	// analysis kind ignores are normalized away.
	Options report.Options `json:"options"`
}

// SubmitResponse is the POST /jobs reply: the job snapshot plus whether
// the result was already available.
type SubmitResponse struct {
	JobInfo
	Cached bool `json:"cached"`
}

// Server exposes a Manager over HTTP.
type Server struct {
	m *Manager
}

// NewServer wraps a manager.
func NewServer(m *Manager) *Server { return &Server{m: m} }

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // nothing useful to do with a write error mid-response
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sub SubmitRequest
	body := http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(body).Decode(&sub); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}

	c, err := loadSubmittedCircuit(&sub)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	req, err := analysisRequest(&sub)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	info, cached, err := s.m.Submit(c, req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	code := http.StatusAccepted
	if cached {
		code = http.StatusOK
	}
	writeJSON(w, code, SubmitResponse{JobInfo: info, Cached: cached})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	info, ok := s.m.Status(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %s (completed jobs expire from the result cache)", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	result, info, ok := s.m.Result(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %s (completed jobs expire from the result cache)", r.PathValue("id"))
		return
	}
	switch info.State {
	case JobDone:
		// The cached bytes verbatim: this response is the byte-identity
		// contract between cold runs, cache hits, and cmd/ndetect -json.
		w.Header().Set("Content-Type", "application/json")
		w.Write(result)
	case JobFailed:
		writeError(w, http.StatusUnprocessableEntity, "job %s failed: %s", info.ID, info.Error)
	default:
		writeJSON(w, http.StatusAccepted, info) // still queued/running: poll again
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	c := s.m.Counters()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, m := range []struct {
		name string
		val  uint64
	}{
		{"ndetectd_jobs_submitted_total", c.Submitted},
		{"ndetectd_jobs_cache_hits_total", c.CacheHits},
		{"ndetectd_jobs_coalesced_total", c.Coalesced},
		{"ndetectd_jobs_computed_total", c.Computed},
		{"ndetectd_jobs_completed_total", c.Completed},
		{"ndetectd_jobs_failed_total", c.Failed},
		{"ndetectd_jobs_queued", uint64(c.Queued)},
		{"ndetectd_jobs_running", uint64(c.Running)},
		{"ndetectd_workers_in_use", uint64(c.WorkersInUse)},
		{"ndetectd_workers_total", uint64(c.WorkersTotal)},
		{"ndetectd_cache_entries", uint64(c.CacheEntries)},
		{"ndetectd_cache_capacity", uint64(c.CacheCapacity)},
	} {
		fmt.Fprintf(w, "%s %d\n", m.name, m.val)
	}
}

// loadSubmittedCircuit resolves the request's circuit: an embedded
// benchmark by name, or inline source through the parser Format selects.
func loadSubmittedCircuit(sub *SubmitRequest) (*circuit.Circuit, error) {
	switch {
	case sub.Benchmark != "" && sub.Source == "":
		if b, ok := bench.ByName(sub.Benchmark); ok {
			r, err := b.SynthesizeDefault()
			if err != nil {
				return nil, err
			}
			return r.Circuit, nil
		}
		if c, err := circuit.EmbeddedBench(sub.Benchmark); err == nil {
			return c, nil
		}
		return nil, fmt.Errorf("unknown benchmark %q (known: %s %s)", sub.Benchmark,
			strings.Join(bench.Names(), " "), strings.Join(circuit.EmbeddedBenchNames(), " "))
	case sub.Source != "" && sub.Benchmark == "":
		name := sub.Name
		if name == "" {
			name = "circuit"
		}
		switch sub.Format {
		case "net", "":
			return circuit.ParseString(sub.Source)
		case "bench":
			return circuit.ParseBenchString(name, sub.Source)
		case "kiss2":
			m, err := kiss.ParseString(name, sub.Source)
			if err != nil {
				return nil, err
			}
			r, err := synth.Synthesize(m, bench.DefaultOptions())
			if err != nil {
				return nil, err
			}
			return r.Circuit, nil
		default:
			return nil, fmt.Errorf("unknown format %q (want net, bench or kiss2)", sub.Format)
		}
	default:
		return nil, fmt.Errorf("specify exactly one of benchmark or source")
	}
}

// analysisRequest maps the submitted kind + options onto the driver
// request (normalized later by Submit).
func analysisRequest(sub *SubmitRequest) (exp.AnalysisRequest, error) {
	kind := exp.AnalysisKind(sub.Analysis)
	if sub.Analysis == "" {
		kind = exp.WorstCaseAnalysis
	}
	switch kind {
	case exp.WorstCaseAnalysis, exp.AverageAnalysis, exp.PartitionedAnalysis:
	default:
		return exp.AnalysisRequest{}, fmt.Errorf("unknown analysis %q (want worstcase, average or partitioned)", sub.Analysis)
	}
	return exp.AnalysisRequest{
		Kind:       kind,
		NMax:       sub.Options.NMax,
		K:          sub.Options.K,
		Seed:       sub.Options.Seed,
		Definition: sub.Options.Definition,
		Ge11Limit:  sub.Options.Ge11Limit,
		MaxInputs:  sub.Options.MaxInputs,
	}, nil
}
