package service

import (
	"sync"
)

// Live job events (DESIGN.md §14): every state transition and progress
// update of a job is published as a JobEvent to its subscribers, which
// is what GET /jobs/{id}/events streams as Server-Sent Events. The
// protocol is replay-from-snapshot: a subscriber first receives one
// "state" event carrying the job's current snapshot (which includes the
// latest progress), then every event from that point on, in publication
// order, ending with the terminal "state" event (done or failed). A
// subscription to an already-completed job is just the terminal
// snapshot. Events are observational only — they never influence the
// job or its result bytes.

// Event types.
const (
	// EventState carries a full JobInfo snapshot; the stream ends after
	// a state event in a terminal state (done/failed).
	EventState = "state"
	// EventProgress carries one ProgressInfo update.
	EventProgress = "progress"
)

// JobEvent is one entry of a job's event stream.
type JobEvent struct {
	// Seq numbers the job's events from 1, monotonically: the SSE "id:"
	// field, usable as a resume cursor. The snapshot event replayed on
	// subscribe carries the seq of the last event it folds in.
	Seq  int64  `json:"seq"`
	Type string `json:"type"`
	// Info is the job snapshot (state events).
	Info *JobInfo `json:"info,omitempty"`
	// Progress is the stage progress update (progress events).
	Progress *ProgressInfo `json:"progress,omitempty"`
}

// Terminal reports whether ev ends its stream.
func (ev JobEvent) Terminal() bool {
	return ev.Type == EventState && ev.Info != nil &&
		(ev.Info.State == JobDone || ev.Info.State == JobFailed)
}

// EventSub is one subscriber's queue. The manager appends events under
// its own lock; the consumer drains from its own goroutine, waiting on
// Notify between drains, so a slow consumer never blocks the scheduler
// (the queue grows instead — bounded by the job's event count, which a
// terminal event caps).
type EventSub struct {
	mu     sync.Mutex
	queue  []JobEvent
	notify chan struct{}
}

func newEventSub() *EventSub {
	return &EventSub{notify: make(chan struct{}, 1)}
}

// push appends one event and wakes the consumer.
func (s *EventSub) push(ev JobEvent) {
	s.mu.Lock()
	s.queue = append(s.queue, ev)
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Notify returns the channel signaled when new events are queued.
func (s *EventSub) Notify() <-chan struct{} { return s.notify }

// Drain returns and clears the queued events.
func (s *EventSub) Drain() []JobEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.queue
	s.queue = nil
	return out
}

// Events subscribes to a job's event stream. snapshot replays the
// current state as one state event; sub is nil when the job is already
// terminal (the snapshot is the whole stream). ok is false for unknown
// jobs. Callers must Unsubscribe a non-nil sub when done.
func (m *Manager) Events(id string) (snapshot JobEvent, sub *EventSub, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.inflight[id]; ok {
		// Snapshot + attach under one critical section: no event published
		// after this snapshot can be missed by the subscription.
		sub = newEventSub()
		j.subs = append(j.subs, sub)
		m.met.streaming.Add(1)
		info := j.info
		return JobEvent{Seq: j.seq, Type: EventState, Info: &info}, sub, true
	}
	if e, ok := m.cache.get(id); ok {
		info := e.info
		return JobEvent{Seq: e.seq, Type: EventState, Info: &info}, nil, true
	}
	return JobEvent{}, nil, false
}

// Unsubscribe detaches a subscription created by Events. Safe to call
// after the job completed (the job record is gone; nothing to detach).
func (m *Manager) Unsubscribe(id string, sub *EventSub) {
	if sub == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.met.streaming.Add(-1)
	j, ok := m.inflight[id]
	if !ok {
		return
	}
	for i, s := range j.subs {
		if s == sub {
			j.subs = append(j.subs[:i], j.subs[i+1:]...)
			return
		}
	}
}

// publishLocked appends one event to the job's stream and fans it out.
// Callers hold m.mu and fill every field but Seq.
func (m *Manager) publishLocked(j *job, ev JobEvent) {
	j.seq++
	ev.Seq = j.seq
	for _, s := range j.subs {
		s.push(ev)
	}
}

// publishStateLocked publishes the job's current snapshot as a state
// event. Callers hold m.mu.
func (m *Manager) publishStateLocked(j *job) {
	info := j.info
	m.publishLocked(j, JobEvent{Type: EventState, Info: &info})
}
