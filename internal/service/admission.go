package service

import (
	"math"
	"time"
)

// Request admission (DESIGN.md §15): the accept queue is bounded
// (Config.MaxQueue, enforced in submitLocked) so overload degrades to
// explicit 503 sheds instead of an ever-growing backlog, and per-client
// token-bucket quotas (Config.QuotaRPS/QuotaBurst) keep one chatty
// client from starving the rest. Every clock read behind both lives in
// internal/obs — this package only calls the hooks — and admission
// decides only *whether* a request runs, never what its result contains,
// so the §7 identity contract is untouched.

// AdmitClient consumes one submit token from the client's quota bucket.
// ok is false when the bucket is empty; retryAfter is then the whole
// number of seconds (at least 1, the HTTP Retry-After granularity) until
// a token accrues. Managers without quotas admit everything.
func (m *Manager) AdmitClient(key string) (ok bool, retryAfter int) {
	if m.quota == nil {
		return true, 0
	}
	allowed, wait := m.quota.Allow(key)
	if allowed {
		return true, 0
	}
	m.mu.Lock()
	m.ctr.ShedQuota++
	m.mu.Unlock()
	secs := int(wait / time.Second)
	if wait%time.Second != 0 || secs < 1 {
		secs++
	}
	return false, secs
}

// RetryAfter estimates how many seconds an overloaded or draining server
// should tell clients to back off: the queued backlog times the mean job
// duration observed so far, divided across the worker budget, clamped to
// [1, 120]. The estimate is derived purely from the latency histogram
// and the live queue depth — no clock is read here.
func (m *Manager) RetryAfter() int {
	s := m.met.jobDur.Snapshot()
	mean := 1.0 // no completed job yet: guess a second
	if s.Count > 0 {
		mean = s.Sum / float64(s.Count)
	}
	m.mu.Lock()
	queued := len(m.queue)
	m.mu.Unlock()
	est := math.Ceil(mean * float64(queued+1) / float64(m.workers))
	switch {
	case est < 1:
		return 1
	case est > 120:
		return 120
	default:
		return int(est)
	}
}
