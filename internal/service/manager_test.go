package service

import (
	"bytes"
	"errors"
	"sort"
	"sync"
	"testing"

	"ndetect/internal/circuit"
	"ndetect/internal/exp"
	"ndetect/internal/report"
)

func c17(t *testing.T) *circuit.Circuit {
	t.Helper()
	c, err := circuit.EmbeddedBench("c17")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func worstcaseReq() exp.AnalysisRequest {
	return exp.AnalysisRequest{Kind: exp.WorstCaseAnalysis}
}

func averageReq(seed int64) exp.AnalysisRequest {
	return exp.AnalysisRequest{Kind: exp.AverageAnalysis, NMax: 2, K: 20, Seed: seed}
}

// A repeated submit of the same circuit+options is a cache hit whose body
// is byte-identical to the cold-run response — the acceptance contract.
func TestCacheHitByteIdentical(t *testing.T) {
	m := NewManager(Config{Workers: 4})
	info, cached, err := m.Submit(c17(t), worstcaseReq())
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first submit cannot be a cache hit")
	}
	cold, err := m.Wait(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold) == 0 {
		t.Fatal("empty result")
	}

	again, cached, err := m.Submit(c17(t), worstcaseReq())
	if err != nil {
		t.Fatal(err)
	}
	if !cached || again.ID != info.ID || again.State != JobDone {
		t.Fatalf("second submit should be a completed cache hit: cached=%v info=%+v", cached, again)
	}
	hit, _, ok := m.Result(again.ID)
	if !ok || !bytes.Equal(cold, hit) {
		t.Fatalf("cache hit is not byte-identical to the cold run (ok=%v, %d vs %d bytes)", ok, len(cold), len(hit))
	}
	ctr := m.Counters()
	if ctr.Computed != 1 || ctr.CacheHits != 1 || ctr.Completed != 1 {
		t.Fatalf("counters: %+v", ctr)
	}
}

// Golden stability: a fresh manager at a different worker budget computes
// the same bytes, which also match the shared CLI driver directly.
func TestColdRunsByteIdenticalAcrossManagers(t *testing.T) {
	req := averageReq(7)
	direct, err := exp.AnalyzeCircuit(c17(t), req)
	if err != nil {
		t.Fatal(err)
	}
	want := direct.Encode()
	for _, workers := range []int{1, 8} {
		m := NewManager(Config{Workers: workers})
		info, _, err := m.Submit(c17(t), averageReq(7))
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Wait(info.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("workers=%d: server bytes differ from the direct driver:\n%s\n---\n%s", workers, want, got)
		}
	}
}

// stubAnalysis is a minimal valid document for scheduler tests that never
// run the real engine.
func stubAnalysis(kind exp.AnalysisKind) *report.Analysis {
	return &report.Analysis{Schema: report.AnalysisSchema, Kind: string(kind)}
}

// Concurrent identical requests compute the analysis exactly once.
func TestCoalescingComputesOnce(t *testing.T) {
	const clients = 16
	var mu sync.Mutex
	computations := 0
	release := make(chan struct{})
	m := NewManager(Config{
		Workers: 4,
		run: func(c *circuit.Circuit, req exp.AnalysisRequest) (*report.Analysis, error) {
			mu.Lock()
			computations++
			mu.Unlock()
			<-release // hold the job in flight until every client has submitted
			return exp.AnalyzeCircuit(c, req)
		},
	})

	ids := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			info, _, err := m.Submit(c17(t), worstcaseReq())
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = info.ID
		}(i)
	}
	wg.Wait()
	close(release)

	results := make([][]byte, clients)
	for i, id := range ids {
		b, err := m.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = b
	}
	for i := 1; i < clients; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("identical requests got different job IDs: %s vs %s", ids[0], ids[i])
		}
		if !bytes.Equal(results[i], results[0]) {
			t.Fatal("coalesced clients observed different result bytes")
		}
	}
	if computations != 1 {
		t.Fatalf("identical concurrent requests ran the analysis %d times, want 1", computations)
	}
	ctr := m.Counters()
	if ctr.Coalesced != clients-1 {
		t.Fatalf("coalesced counter = %d, want %d (%+v)", ctr.Coalesced, clients-1, ctr)
	}
}

// The job scheduler extends the §5 budget split to jobs-within-a-server:
// a lone job gets the whole budget W; a backlog runs min(W, jobs) jobs
// with the W grants divided between them, never exceeding W in total.
func TestSchedulerBudgetSplitting(t *testing.T) {
	const w = 4
	const jobs = 8
	var mu sync.Mutex
	grants := []int{}
	running, peakRunning := 0, 0
	firstStarted := make(chan int, 1)
	release := make(chan struct{})
	m := NewManager(Config{
		Workers: w,
		run: func(c *circuit.Circuit, req exp.AnalysisRequest) (*report.Analysis, error) {
			mu.Lock()
			grants = append(grants, req.Workers)
			running++
			if running > peakRunning {
				peakRunning = running
			}
			if len(grants) == 1 {
				firstStarted <- req.Workers
			}
			mu.Unlock()
			<-release
			mu.Lock()
			running--
			mu.Unlock()
			return stubAnalysis(req.Kind), nil
		},
	})

	// Distinct jobs: same circuit, different seeds.
	// Seeds must be distinct after normalization (0 normalizes to 1).
	ids := make([]string, jobs)
	info, _, err := m.Submit(c17(t), averageReq(1))
	if err != nil {
		t.Fatal(err)
	}
	ids[0] = info.ID
	// An idle server hands the lone job its entire budget.
	if got := <-firstStarted; got != w {
		t.Fatalf("lone job granted %d workers, want the full budget %d", got, w)
	}
	for i := 1; i < jobs; i++ {
		info, _, err := m.Submit(c17(t), averageReq(int64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = info.ID
	}
	close(release)
	for _, id := range ids {
		if _, err := m.Wait(id); err != nil {
			t.Fatal(err)
		}
	}

	ctr := m.Counters()
	if ctr.PeakWorkersInUse > w {
		t.Fatalf("worker grants exceeded the budget: peak %d > W=%d", ctr.PeakWorkersInUse, w)
	}
	if peakRunning > w {
		t.Fatalf("more than min(W, jobs) jobs in flight: %d > %d", peakRunning, w)
	}
	sorted := append([]int(nil), grants...)
	sort.Ints(sorted)
	if len(sorted) != jobs || sorted[0] < 1 || sorted[len(sorted)-1] != w {
		t.Fatalf("grants = %v: want %d grants, each ≥ 1, lone job getting %d", grants, jobs, w)
	}
	if ctr.WorkersInUse != 0 || ctr.Running != 0 || ctr.Queued != 0 {
		t.Fatalf("budget not returned after completion: %+v", ctr)
	}
}

// Eviction from the bounded LRU causes an honest recompute, not an error.
func TestLRUEvictionRecomputes(t *testing.T) {
	computed := map[string]int{}
	var mu sync.Mutex
	m := NewManager(Config{
		Workers:      2,
		CacheEntries: 1,
		run: func(c *circuit.Circuit, req exp.AnalysisRequest) (*report.Analysis, error) {
			mu.Lock()
			computed[string(req.Kind)]++
			mu.Unlock()
			return stubAnalysis(req.Kind), nil
		},
	})

	a, _, err := m.Submit(c17(t), worstcaseReq())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(a.ID); err != nil {
		t.Fatal(err)
	}
	b, _, err := m.Submit(c17(t), averageReq(1)) // evicts a
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(b.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Status(a.ID); ok {
		t.Fatal("evicted job should be unknown")
	}

	again, cached, err := m.Submit(c17(t), worstcaseReq())
	if err != nil {
		t.Fatal(err)
	}
	if cached || again.ID != a.ID {
		t.Fatalf("resubmit after eviction should recompute under the same ID: cached=%v", cached)
	}
	if _, err := m.Wait(again.ID); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if computed["worstcase"] != 2 || computed["average"] != 1 {
		t.Fatalf("computed = %v", computed)
	}
}

// The job identity is (canonical circuit, kind, result-identity options):
// defaults normalize, and neither Workers nor the circuit name enter it.
func TestJobIdentity(t *testing.T) {
	m1 := NewManager(Config{Workers: 1})
	m8 := NewManager(Config{Workers: 8})

	base, _, err := m1.Submit(c17(t), exp.AnalysisRequest{Kind: exp.AverageAnalysis})
	if err != nil {
		t.Fatal(err)
	}
	// Explicit defaults are the same analysis.
	explicit, _, err := m8.Submit(c17(t), exp.AnalysisRequest{
		Kind: exp.AverageAnalysis, NMax: 10, K: 1000, Seed: 0, Definition: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.ID != explicit.ID {
		t.Fatalf("normalized defaults should share an ID: %s vs %s", base.ID, explicit.ID)
	}

	// A renamed but structurally identical circuit is the same job.
	renamed, err := circuit.ParseString(c17(t).WriteString())
	if err != nil {
		t.Fatal(err)
	}
	renamed.Name = "another-name"
	sameCircuit, _, err := m8.Submit(renamed, exp.AnalysisRequest{Kind: exp.AverageAnalysis})
	if err != nil {
		t.Fatal(err)
	}
	if sameCircuit.ID != base.ID {
		t.Fatal("circuit display name must not enter the job identity")
	}

	// A different seed is a different analysis.
	other, _, err := m1.Submit(c17(t), exp.AnalysisRequest{Kind: exp.AverageAnalysis, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if other.ID == base.ID {
		t.Fatal("seed is result identity and must change the job ID")
	}

	// Drain both managers so no analysis outlives the test.
	for _, w := range []struct {
		m  *Manager
		id string
	}{{m1, base.ID}, {m1, other.ID}, {m8, explicit.ID}, {m8, sameCircuit.ID}} {
		if _, err := w.m.Wait(w.id); err != nil {
			t.Fatal(err)
		}
	}
}

// Deterministic failures are cached like results: the second submit does
// not recompute, and the failure is observable.
func TestFailedJobCached(t *testing.T) {
	computations := 0
	var mu sync.Mutex
	m := NewManager(Config{
		Workers: 2,
		run: func(c *circuit.Circuit, req exp.AnalysisRequest) (*report.Analysis, error) {
			mu.Lock()
			computations++
			mu.Unlock()
			return nil, errors.New("budget exceeded")
		},
	})
	info, _, err := m.Submit(c17(t), worstcaseReq())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(info.ID); err == nil {
		t.Fatal("Wait should surface the job failure")
	}
	st, ok := m.Status(info.ID)
	if !ok || st.State != JobFailed || st.Error == "" {
		t.Fatalf("failed job status: %+v", st)
	}

	again, cached, err := m.Submit(c17(t), worstcaseReq())
	if err != nil {
		t.Fatal(err)
	}
	if !cached || again.State != JobFailed {
		t.Fatalf("failure should be served from cache: cached=%v state=%s", cached, again.State)
	}
	if _, st, _ := m.Result(info.ID); st.State != JobFailed {
		t.Fatal("Result should report the failed state")
	}
	mu.Lock()
	defer mu.Unlock()
	if computations != 1 {
		t.Fatalf("failure recomputed: %d runs", computations)
	}
	if ctr := m.Counters(); ctr.Failed != 1 {
		t.Fatalf("counters: %+v", ctr)
	}
}
