package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// scrapeSeries parses one exposition into (ordered series keys, TYPE line
// index per family, first sample index per family), validating the
// format as it goes: samples only under a preceding TYPE header, no
// duplicate headers, no duplicate series.
func scrapeSeries(t *testing.T, body string) []string {
	t.Helper()
	typeAt := map[string]int{}
	helpAt := map[string]int{}
	seen := map[string]bool{}
	var series []string
	for i, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# TYPE "):
			name := strings.Fields(line)[2]
			if _, dup := typeAt[name]; dup {
				t.Errorf("duplicate TYPE for %s", name)
			}
			typeAt[name] = i
		case strings.HasPrefix(line, "# HELP "):
			name := strings.Fields(line)[2]
			if _, dup := helpAt[name]; dup {
				t.Errorf("duplicate HELP for %s", name)
			}
			helpAt[name] = i
		case line == "" || strings.HasPrefix(line, "#"):
		default:
			key := line[:strings.IndexAny(line, " ")]
			if strings.Contains(key, "{") {
				key = line[:strings.Index(line, "}")+1]
			}
			if seen[key] {
				t.Errorf("duplicate series %s", key)
			}
			seen[key] = true
			series = append(series, key)

			family := key
			if j := strings.Index(family, "{"); j >= 0 {
				family = family[:j]
			}
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(family, suffix)
				if _, ok := typeAt[base]; ok {
					family = base
					break
				}
			}
			at, ok := typeAt[family]
			if !ok || at > i {
				t.Errorf("sample %s has no preceding TYPE header", key)
			}
			if at, ok := helpAt[family]; !ok || at > i {
				t.Errorf("sample %s has no preceding HELP header", key)
			}
		}
	}
	return series
}

// The /metrics satellite contract: valid exposition (HELP/TYPE headers,
// no duplicate names, stable series order across scrapes), Cache-Control
// no-store, HEAD supported, and — after a real job — populated latency
// histograms alongside every pre-§14 metric name.
func TestMetricsExpositionGolden(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	ts := httptest.NewServer(NewServer(m).Handler())
	defer ts.Close()

	info, _, err := m.Submit(c17(t), worstcaseReq())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(info.ID); err != nil {
		t.Fatal(err)
	}

	get := func() (string, http.Header) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("HTTP %d", resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b), resp.Header
	}

	body, hdr := get()
	if ct := hdr.Get("Content-Type"); ct != MetricsContentType {
		t.Errorf("Content-Type %q, want %q", ct, MetricsContentType)
	}
	if cc := hdr.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("Cache-Control %q, want no-store", cc)
	}

	series := scrapeSeries(t, body)
	if len(series) == 0 {
		t.Fatal("empty exposition")
	}

	// Every pre-§14 metric name survives in its original `name value`
	// sample format (scrapers keyed on these lines keep working).
	for _, want := range []string{
		"ndetectd_jobs_submitted_total 1",
		"ndetectd_jobs_computed_total 1",
		"ndetectd_jobs_completed_total 1",
		"ndetectd_workers_total 2",
		"ndetectd_cache_entries 1",
		"ndetectd_store_bytes 0",
		"ndetectd_store_results_hits_total 0",
		"ndetectd_store_universes_hits_total 0",
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("metrics missing %q", want)
		}
	}

	// The completed job populated the end-to-end and per-stage histograms.
	for _, want := range []string{
		"ndetectd_job_duration_seconds_count 1",
		`ndetectd_job_duration_seconds_bucket{le="+Inf"} 1`,
		`ndetectd_stage_duration_seconds_count{stage="encode"} 1`,
		`ndetectd_stage_duration_seconds_count{stage="universe"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Histogram buckets are cumulative: counts never decrease along le.
	prev := uint64(0)
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "ndetectd_job_duration_seconds_bucket") {
			continue
		}
		v, err := strconv.ParseUint(line[strings.LastIndex(line, " ")+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Errorf("bucket counts not cumulative at %q", line)
		}
		prev = v
	}

	// Series order is stable across scrapes.
	body2, _ := get()
	series2 := scrapeSeries(t, body2)
	if len(series) != len(series2) {
		t.Fatalf("series count changed between scrapes: %d vs %d", len(series), len(series2))
	}
	for i := range series {
		if series[i] != series2[i] {
			t.Fatalf("series order changed at %d: %s vs %s", i, series[i], series2[i])
		}
	}

	// HEAD answers with headers only (the GET route pattern covers it and
	// net/http discards the body).
	resp, err := http.Head(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("HEAD /metrics: HTTP %d", resp.StatusCode)
	}
	if b, _ := io.ReadAll(resp.Body); len(b) != 0 {
		t.Errorf("HEAD /metrics returned a %d-byte body", len(b))
	}
	if ct := resp.Header.Get("Content-Type"); ct != MetricsContentType {
		t.Errorf("HEAD Content-Type %q", ct)
	}
}

// The debug handler serves pprof and per-job span dumps.
func TestDebugHandler(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	api := NewServer(m)
	ts := httptest.NewServer(api.DebugHandler())
	defer ts.Close()

	info, _, err := m.Submit(c17(t), worstcaseReq())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(info.ID); err != nil {
		t.Fatal(err)
	}

	body, code := getBody(t, ts.URL+"/trace/"+info.ID)
	if code != http.StatusOK {
		t.Fatalf("/trace/{id}: HTTP %d: %s", code, body)
	}
	for _, want := range []string{`"name": "canonicalize"`, `"name": "encode"`, `"dur_ns"`} {
		if !strings.Contains(body, want) {
			t.Errorf("trace dump missing %s:\n%s", want, body)
		}
	}
	if _, code := getBody(t, ts.URL+"/trace/ffffffffffffffffffffffff"); code != http.StatusNotFound {
		t.Errorf("unknown trace: HTTP %d", code)
	}
	if body, code := getBody(t, ts.URL+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: HTTP %d", code)
	}
}
