package service

import "testing"

func entry(id string) *cacheEntry {
	return &cacheEntry{id: id, info: JobInfo{ID: id, State: JobDone}, result: []byte(id)}
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	c.add(entry("a"))
	c.add(entry("b"))
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}

	// Touch a so b becomes the eviction victim.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.add(entry("c"))
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted (least recently used)")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c should be present")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d after eviction", c.len())
	}
}

func TestResultCacheRefreshExisting(t *testing.T) {
	c := newResultCache(2)
	c.add(entry("a"))
	c.add(entry("b"))
	// Re-adding an existing ID refreshes in place: no growth, new value.
	fresh := entry("a")
	fresh.result = []byte("fresh")
	c.add(fresh)
	if c.len() != 2 {
		t.Fatalf("len = %d after refresh", c.len())
	}
	got, ok := c.get("a")
	if !ok || string(got.result) != "fresh" {
		t.Fatalf("refresh lost the new value: %+v", got)
	}
	// And a was moved to the front by the refresh.
	c.add(entry("c"))
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
}
