package service

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ndetect/internal/circuit"
	"ndetect/internal/exp"
	"ndetect/internal/report"
)

// SSE subscriber churn soak (§15): subscribers attach, stall without
// reading, and detach mid-job, over and over, while the job keeps
// publishing progress. The contract under churn is threefold — the
// scheduler never blocks on a slow or vanished consumer (the job
// completes promptly once allowed), no subscription leaks (the
// streaming gauge returns to zero once every connection is gone), and a
// subscriber that stays attached still receives the terminal event.
func TestEventStreamSubscriberChurn(t *testing.T) {
	release := make(chan struct{})
	m := NewManager(Config{
		Workers: 2,
		run: func(c *circuit.Circuit, req exp.AnalysisRequest) (*report.Analysis, error) {
			// Publish progress continuously until released: the churn below
			// happens against a live, chatty stream.
			for i := 0; ; i++ {
				select {
				case <-release:
					req.Progress("soak", 100, 100)
					return stubAnalysis(req.Kind), nil
				default:
					req.Progress("soak", i%100, 100)
					time.Sleep(500 * time.Microsecond)
				}
			}
		},
	})
	ts := httptest.NewServer(NewServer(m).Handler())
	defer ts.Close()

	info, _, err := m.Submit(c17(t), worstcaseReq())
	if err != nil {
		t.Fatal(err)
	}
	eventsURL := ts.URL + "/jobs/" + info.ID + "/events"

	// Churn: waves of subscribers that read a little and hang up, plus
	// stallers that attach and never read before vanishing.
	var wg sync.WaitGroup
	for wave := 0; wave < 4; wave++ {
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(readSome bool) {
				defer wg.Done()
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				req, _ := http.NewRequestWithContext(ctx, "GET", eventsURL, nil)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					return // churn races job completion; a failed dial is fine
				}
				defer resp.Body.Close()
				if readSome {
					sc := bufio.NewScanner(resp.Body)
					for n := 0; n < 10 && sc.Scan(); n++ {
					}
				} else {
					time.Sleep(2 * time.Millisecond) // stall: attached, never reading
				}
			}(i%2 == 0)
		}
		wg.Wait()
	}

	// One subscriber stays attached through completion and must see the
	// terminal state event.
	survivor, err := http.Get(eventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer survivor.Body.Close()

	// The scheduler survived the churn: releasing the job completes it
	// promptly (a publisher blocked on a dead subscriber would hang here).
	close(release)
	if _, err := m.Wait(info.ID); err != nil {
		t.Fatal(err)
	}

	events := parseSSE(t, bufio.NewScanner(survivor.Body))
	last := events[len(events)-1]
	if !last.Terminal() || last.Info.State != JobDone {
		t.Fatalf("survivor's last event: %+v", last)
	}

	// No subscription leak: with every connection closed, the streaming
	// gauge drains back to zero (handler teardown is asynchronous).
	survivor.Body.Close()
	deadline := time.After(10 * time.Second)
	for m.met.streaming.Value() != 0 {
		select {
		case <-deadline:
			t.Fatalf("streaming gauge stuck at %d after churn", m.met.streaming.Value())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Churn against many short jobs: subscriptions opened on jobs that
// complete while churn is in flight must still drain the gauge to zero —
// the late-subscriber snapshot path and the live path share teardown.
func TestEventStreamChurnAcrossJobs(t *testing.T) {
	m := NewManager(Config{Workers: 2, run: func(c *circuit.Circuit, req exp.AnalysisRequest) (*report.Analysis, error) {
		req.Progress("quick", 1, 1)
		return stubAnalysis(req.Kind), nil
	}})
	ts := httptest.NewServer(NewServer(m).Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		body := fmt.Sprintf(`{"format":"bench","source":%q,"analysis":"average","options":{"nmax":2,"k":20,"seed":%d}}`, c17Source, i)
		sub, code := postJob(t, ts.URL, body)
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("submit %d: HTTP %d", i, code)
		}
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/jobs/" + id + "/events")
			if err != nil {
				return
			}
			defer resp.Body.Close()
			parseSSE(t, bufio.NewScanner(resp.Body)) // reads to the terminal event
		}(sub.ID)
	}
	wg.Wait()

	deadline := time.After(10 * time.Second)
	for m.met.streaming.Value() != 0 {
		select {
		case <-deadline:
			t.Fatalf("streaming gauge stuck at %d", m.met.streaming.Value())
		case <-time.After(5 * time.Millisecond):
		}
	}
}
