package service

import "container/list"

// resultCache is a bounded LRU over completed job results, keyed by job ID
// (the content address derived from circuit hash + analysis identity, see
// jobID). Values are the exact encoded response bytes, so a hit is served
// byte-identical to the cold run that produced it. Not safe for concurrent
// use — the Manager guards it with its own mutex.
type resultCache struct {
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

// cacheEntry is what completion leaves behind once the Job bookkeeping is
// gone: enough to answer status and result queries forever after.
type cacheEntry struct {
	id     string
	info   JobInfo
	result []byte
	// seq is the last event sequence number the job published (events.go):
	// the snapshot replayed to late event subscribers carries it, so a
	// resume cursor stays monotone across completion. Zero for entries
	// loaded from the disk tier — their event history is gone.
	seq int64
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the entry for id, refreshing its recency.
func (c *resultCache) get(id string) (*cacheEntry, bool) {
	el, ok := c.items[id]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// add inserts (or refreshes) an entry, evicting the least recently used
// one beyond capacity.
func (c *resultCache) add(e *cacheEntry) {
	if el, ok := c.items[e.id]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.items[e.id] = c.ll.PushFront(e)
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).id)
	}
}

// len returns the number of cached results.
func (c *resultCache) len() int { return c.ll.Len() }
