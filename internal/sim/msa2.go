package sim

import (
	"sync"

	"ndetect/internal/bitset"
	"ndetect/internal/engine"
	"ndetect/internal/fault"
)

// The pairwise multiple stuck-at model (ID "msa2"): the untargeted set is
// every pair of collapsed stuck-at faults on distinct lines, both present
// at once. Pair detection is computed exactly, with no single-fault
// approximation: both sites are forced to their stuck values across a
// whole word block (engine.RunForced on the union fanout cone compiled by
// CompileCones), and a vector detects the pair iff any reachable output
// disagrees with the good machine — which accounts for masking between
// the two faults, the phenomenon that makes the model interesting.
// Targets are the ordinary collapsed stuck-at faults over the same
// single-vector space, so Definition 2 still applies.

// msa2ModelTSets is the registered T-set builder for model ID "msa2".
func msa2ModelTSets(e *Exhaustive, targets, untargeted []fault.Descriptor,
	step func(stage string)) ([]*bitset.Set, []*bitset.Set, []fault.Descriptor, error) {
	if err := CheckResultBudget(e.Circuit, len(targets)+len(untargeted)); err != nil {
		return nil, nil, nil, err
	}
	step("stuck-at-tsets")
	saT := e.StuckAtTSets(toStuckAt(targets))
	step("msa2-tsets")
	all := e.pairStuckAtTSets(untargeted)
	var kept []fault.Descriptor
	var uT []*bitset.Set
	for i, t := range all {
		if !t.IsEmpty() {
			kept = append(kept, untargeted[i])
			uT = append(uT, t)
		}
	}
	return saT, uT, kept, nil
}

// pairStuckAtTSets computes T(g) for every descriptor {A, B, V}: the
// vectors at which forcing A to V&1 and B to V>>1 simultaneously is
// observable at an output.
func (e *Exhaustive) pairStuckAtTSets(pairs []fault.Descriptor) []*bitset.Set {
	size := e.Circuit.VectorSpaceSize()
	nWords := universeWords(size)
	out := bitset.NewBatch(size, len(pairs))
	if len(pairs) == 0 {
		return out
	}

	if nWords <= smallUniverseWords {
		// One shared good block; pairs fan out, each worker compiling and
		// discarding its pair's union cone with pooled compiler scratch
		// (compilation is cheap next to the replay at these sizes, and
		// nothing is retained).
		x := engine.NewExec(e.prog, nWords)
		x.Eval(0, nWords)
		var pool sync.Pool
		ParallelFor(e.Workers, len(pairs), func(pi int) {
			s, _ := pool.Get().(*pairScratch)
			if s == nil {
				s = &pairScratch{
					cc:   e.newConeCompiler(),
					cx:   engine.NewConeExec(nWords),
					prop: make([]uint64, nWords),
				}
			}
			d := pairs[pi]
			cp := s.cc.Compile([]int{int(d.A), int(d.B)})
			s.cx.PropForcedInto(cp, x, []bool{d.V&1 != 0, d.V&2 != 0}, s.prop)
			out[pi].SetRange(0, s.prop)
			pool.Put(s)
		})
		return out
	}

	// Large universe: blocks fan out; cones are precompiled once (batched,
	// with pooled compiler scratch) so the per-block loop only replays.
	// (CheckResultBudget already bounds the pair count at these universe
	// sizes — the T-sets alone dwarf the compiled cones.)
	cps := make([]*engine.ConeProgram, len(pairs))
	var ccPool sync.Pool
	ParallelFor(e.Workers, len(pairs), func(pi int) {
		cc, _ := ccPool.Get().(*engine.ConeCompiler)
		if cc == nil {
			cc = e.newConeCompiler()
		}
		cps[pi] = cc.Compile([]int{int(pairs[pi].A), int(pairs[pi].B)})
		ccPool.Put(cc)
	})
	maxRegs := 0
	for _, cp := range cps {
		maxRegs = max(maxRegs, cp.NumRegs)
	}
	blockWords := blockWordsFor(nWords, e.Workers)
	var pool sync.Pool
	streamBlocks(e.prog, e.Workers, nWords, blockWords, func(lo, hi int, x *engine.Exec) {
		s, _ := pool.Get().(*lineScratch)
		if s == nil {
			s = &lineScratch{
				cx:   engine.NewConeExec(min(blockWords, nWords)),
				prop: make([]uint64, blockWords),
			}
			s.cx.Reserve(maxRegs)
		}
		for pi, cp := range cps {
			d := pairs[pi]
			prop := s.prop[:hi-lo]
			s.cx.PropForcedInto(cp, x, []bool{d.V&1 != 0, d.V&2 != 0}, prop)
			out[pi].SetRange(lo, prop)
		}
		pool.Put(s)
	})
	return out
}

// pairScratch is the per-worker scratch of the small-universe msa2 path:
// cone compiler, replay context, and propagation buffer, pooled together.
type pairScratch struct {
	cc   *engine.ConeCompiler
	cx   *engine.ConeExec
	prop []uint64
}
