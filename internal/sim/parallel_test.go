package sim

import (
	"math/rand"
	"testing"

	"ndetect/internal/fault"
)

func TestWordShardsCoverAndStaySerialWhenSmall(t *testing.T) {
	if s := wordShards(8, shardMinWords*2-1); s != nil {
		t.Fatalf("small universe must stay serial, got %d shards", len(s))
	}
	if s := wordShards(1, 1<<16); s != nil {
		t.Fatal("workers=1 must stay serial")
	}
	for _, tc := range []struct{ workers, nWords int }{
		{2, shardMinWords * 2}, {8, 1 << 14}, {3, shardMinWords*2 + 17}, {64, 1 << 10},
	} {
		shards := wordShards(tc.workers, tc.nWords)
		if shards == nil {
			t.Fatalf("workers=%d nWords=%d: expected shards", tc.workers, tc.nWords)
		}
		if len(shards) > tc.workers {
			t.Fatalf("more shards (%d) than workers (%d)", len(shards), tc.workers)
		}
		at := 0
		for _, s := range shards {
			if s[0] != at || s[1] <= s[0] {
				t.Fatalf("shards not contiguous: %v", shards)
			}
			if s[1]-s[0] < shardMinWords {
				t.Fatalf("shard below minimum size: %v", shards)
			}
			at = s[1]
		}
		if at != tc.nWords {
			t.Fatalf("shards cover [0,%d), want [0,%d)", at, tc.nWords)
		}
	}
}

func TestParallelForVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 32} {
		hits := make([]int, 1000)
		ParallelFor(workers, len(hits), func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

// TestRunWorkersDeterministic checks the central contract of the parallel
// engine: the sharded propagation and parallel T-set construction produce
// byte-identical results for every worker count, on a circuit large enough
// (16 inputs → 1024 words) that sharding actually engages.
func TestRunWorkersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := randomCircuit(t, rng, 16, 60)

	e1, err := RunWorkers(c, 1)
	if err != nil {
		t.Fatalf("RunWorkers(1): %v", err)
	}
	for _, workers := range []int{2, 8} {
		eN, err := RunWorkers(c, workers)
		if err != nil {
			t.Fatalf("RunWorkers(%d): %v", workers, err)
		}
		for id := range e1.Values {
			if !e1.Values[id].Equal(eN.Values[id]) {
				t.Fatalf("workers=%d: node %d values differ from serial", workers, id)
			}
		}

		faults := fault.CollapseStuckAt(c)
		t1 := e1.StuckAtTSets(faults)
		tN := eN.StuckAtTSets(faults)
		for i := range t1 {
			if !t1[i].Equal(tN[i]) {
				t.Fatalf("workers=%d: stuck-at T-set %d differs from serial", workers, i)
			}
		}

		bridges := fault.Bridges(c)
		b1 := e1.BridgeTSets(bridges)
		bN := eN.BridgeTSets(bridges)
		for i := range b1 {
			if !b1[i].Equal(bN[i]) {
				t.Fatalf("workers=%d: bridge T-set %d differs from serial", workers, i)
			}
		}
	}
}

// TestRunMatchesRunWorkersSerial pins Run (auto worker count) to the serial
// reference on the small shared test circuit, where sharding never engages
// but the fault-level pools do.
func TestRunMatchesRunWorkersSerial(t *testing.T) {
	c := testCircuit(t)
	a, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWorkers(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	for id := range a.Values {
		if !a.Values[id].Equal(b.Values[id]) {
			t.Fatalf("node %d: Run and RunWorkers(1) disagree", id)
		}
	}
}
