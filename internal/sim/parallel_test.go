package sim

import (
	"math/rand"
	"testing"

	"ndetect/internal/fault"
)

func TestBlockRangesCoverEveryWord(t *testing.T) {
	for _, tc := range []struct{ nWords, blockWords int }{
		{1, minBlockWords}, {63, 64}, {64, 64}, {65, 64},
		{1 << 14, 256}, {minBlockWords*3 + 17, minBlockWords},
	} {
		blocks := blockRanges(tc.nWords, tc.blockWords)
		if len(blocks) == 0 {
			t.Fatalf("nWords=%d: no blocks", tc.nWords)
		}
		at := 0
		for _, b := range blocks {
			if b[0] != at || b[1] <= b[0] {
				t.Fatalf("nWords=%d: blocks not contiguous: %v", tc.nWords, blocks)
			}
			if b[1]-b[0] > tc.blockWords {
				t.Fatalf("nWords=%d: oversized block %v", tc.nWords, b)
			}
			at = b[1]
		}
		if at != tc.nWords {
			t.Fatalf("blocks cover [0,%d), want [0,%d)", at, tc.nWords)
		}
	}
}

func TestBlockWordsForStaysClamped(t *testing.T) {
	for _, tc := range []struct{ nWords, workers int }{
		{1, 1}, {128, 8}, {1 << 14, 1}, {1 << 22, 4}, {1 << 10, 64},
	} {
		bw := blockWordsFor(tc.nWords, tc.workers)
		if bw < minBlockWords || bw > maxBlockWords {
			t.Fatalf("blockWordsFor(%d, %d) = %d outside [%d, %d]",
				tc.nWords, tc.workers, bw, minBlockWords, maxBlockWords)
		}
	}
}

func TestParallelForVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 32} {
		hits := make([]int, 1000)
		ParallelFor(workers, len(hits), func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

// TestRunWorkersDeterministic checks the central contract of the streaming
// engine: block-parallel value materialization and T-set construction
// produce byte-identical results for every worker count, on a circuit large
// enough (16 inputs → 1024 words) that block sharding actually engages.
func TestRunWorkersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := randomCircuit(t, rng, 16, 60)

	r1, err := RunRetained(c, 1)
	if err != nil {
		t.Fatalf("RunRetained(1): %v", err)
	}
	e1, err := RunWorkers(c, 1)
	if err != nil {
		t.Fatalf("RunWorkers(1): %v", err)
	}
	for _, workers := range []int{2, 8} {
		rN, err := RunRetained(c, workers)
		if err != nil {
			t.Fatalf("RunRetained(%d): %v", workers, err)
		}
		for id := range r1.Values {
			if !r1.Values[id].Equal(rN.Values[id]) {
				t.Fatalf("workers=%d: node %d values differ from serial", workers, id)
			}
		}

		eN, err := RunWorkers(c, workers)
		if err != nil {
			t.Fatalf("RunWorkers(%d): %v", workers, err)
		}
		faults := fault.CollapseStuckAt(c)
		t1 := e1.StuckAtTSets(faults)
		tN := eN.StuckAtTSets(faults)
		for i := range t1 {
			if !t1[i].Equal(tN[i]) {
				t.Fatalf("workers=%d: stuck-at T-set %d differs from serial", workers, i)
			}
		}

		bridges := fault.Bridges(c)
		b1 := e1.BridgeTSets(bridges)
		bN := eN.BridgeTSets(bridges)
		for i := range b1 {
			if !b1[i].Equal(bN[i]) {
				t.Fatalf("workers=%d: bridge T-set %d differs from serial", workers, i)
			}
		}
	}
}

// TestRunMatchesRunWorkersSerial pins RunRetained (auto worker count) to
// the serial reference on the small shared test circuit, where block
// sharding never engages but the fault-level pools do.
func TestRunMatchesRunWorkersSerial(t *testing.T) {
	c := testCircuit(t)
	a, err := RunRetained(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRetained(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	for id := range a.Values {
		if !a.Values[id].Equal(b.Values[id]) {
			t.Fatalf("node %d: RunRetained(0) and RunRetained(1) disagree", id)
		}
	}
}
