package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolution: everywhere in this package a worker count of 0 (or
// negative) means "one worker per available CPU", and 1 means the exact
// serial execution order of the original implementation. Because every
// parallel site writes into pre-allocated, index-addressed slots, the output
// is byte-identical for every worker count; only wall-clock time changes.

// ResolveWorkers maps the public 0-means-auto convention onto a concrete
// worker count.
func ResolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// ParallelFor runs fn(i) for every i in [0, n), fanned out over at most
// `workers` goroutines pulling indices from a shared atomic counter (work
// stealing, so heterogeneous per-index costs balance). workers ≤ 1 runs the
// loop inline in index order. fn must write only to per-index state. It is
// the one worker pool every parallel site in the engine shares (exp's
// circuit fan-out included).
func ParallelFor(workers, n int, fn func(i int)) {
	workers = ResolveWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// shardMinWords is the smallest word-range worth handing to its own
// goroutine during exhaustive propagation: below it (2^14 vectors) the
// spawn/synchronization overhead outweighs the simulation itself.
const shardMinWords = 256

// wordShards splits [0, nWords) into at most `workers` contiguous ranges of
// at least shardMinWords words each. It returns nil when the universe is too
// small to be worth sharding, signalling the caller to stay serial.
func wordShards(workers, nWords int) [][2]int {
	workers = ResolveWorkers(workers)
	if workers <= 1 || nWords < 2*shardMinWords {
		return nil
	}
	shards := nWords / shardMinWords
	if shards > workers {
		shards = workers
	}
	out := make([][2]int, 0, shards)
	per := nWords / shards
	lo := 0
	for s := 0; s < shards; s++ {
		hi := lo + per
		if s == shards-1 {
			hi = nWords
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}
