package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolution: everywhere in this package a worker count of 0 (or
// negative) means "one worker per available CPU", and 1 means the exact
// serial execution order of the original implementation. Because every
// parallel site writes into pre-allocated, index-addressed slots, the output
// is byte-identical for every worker count; only wall-clock time changes.

// ResolveWorkers maps the public 0-means-auto convention onto a concrete
// worker count.
func ResolveWorkers(workers int) int {
	if workers <= 0 {
		// ndetect:allow(detrand) the CPU count sizes the worker pool only;
		// results are byte-identical for every worker count (see above).
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// ParallelFor runs fn(i) for every i in [0, n), fanned out over at most
// `workers` goroutines pulling indices from a shared atomic counter (work
// stealing, so heterogeneous per-index costs balance). workers ≤ 1 runs the
// loop inline in index order. fn must write only to per-index state. It is
// the one worker pool every parallel site in the engine shares (exp's
// circuit fan-out included).
func ParallelFor(workers, n int, fn func(i int)) {
	workers = ResolveWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		// ndetect:allow(budget) ParallelFor IS the budget primitive: it
		// spawns exactly the granted worker count and joins before returning.
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Streaming block sizing: a block is the unit of work the engine's word
// interpreter processes at once. Blocks must be small enough that one
// block's register file stays cache-resident and enough blocks exist to
// feed every worker, and large enough to amortize the per-block pass over
// the instruction list.
const (
	// minBlockWords is the smallest block worth its per-block overhead
	// (2^12 vectors).
	minBlockWords = 64
	// maxBlockWords caps the block so NumRegs × maxBlockWords × 8 bytes of
	// scratch per worker stays cache-friendly (2^14 vectors → 2 KiB per
	// register).
	maxBlockWords = 256
)

// blockWordsFor picks the streaming block width for a universe of nWords
// words: aim for at least four blocks per worker so the work-stealing loop
// balances, clamped to [minBlockWords, maxBlockWords]. The choice affects
// only scheduling — block boundaries never change any computed value.
func blockWordsFor(nWords, workers int) int {
	w := nWords / (4 * ResolveWorkers(workers))
	if w < minBlockWords {
		return minBlockWords
	}
	if w > maxBlockWords {
		return maxBlockWords
	}
	return w
}

// blockRanges splits [0, nWords) into contiguous blocks of blockWords words
// (the last block may be short). It always returns at least one block.
func blockRanges(nWords, blockWords int) [][2]int {
	if nWords <= 0 {
		nWords = 1
	}
	out := make([][2]int, 0, (nWords+blockWords-1)/blockWords)
	for lo := 0; lo < nWords; lo += blockWords {
		hi := lo + blockWords
		if hi > nWords {
			hi = nWords
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}
