package sim

import (
	"math/rand"
	"testing"

	"ndetect/internal/circuit"
	"ndetect/internal/fault"
)

func TestTVOperators(t *testing.T) {
	if tvNot(Zero) != One || tvNot(One) != Zero || tvNot(X) != X {
		t.Fatal("tvNot wrong")
	}
	// AND: controlled by 0.
	if tvAnd(Zero, X) != Zero || tvAnd(X, Zero) != Zero {
		t.Fatal("tvAnd: 0 must dominate")
	}
	if tvAnd(One, X) != X || tvAnd(One, One) != One {
		t.Fatal("tvAnd wrong")
	}
	// OR: controlled by 1.
	if tvOr(One, X) != One || tvOr(X, One) != One {
		t.Fatal("tvOr: 1 must dominate")
	}
	if tvOr(Zero, X) != X || tvOr(Zero, Zero) != Zero {
		t.Fatal("tvOr wrong")
	}
	// XOR: X poisons.
	if tvXor(X, One) != X || tvXor(One, Zero) != One || tvXor(One, One) != Zero {
		t.Fatal("tvXor wrong")
	}
	if Zero.String() != "0" || One.String() != "1" || X.String() != "X" {
		t.Fatal("String wrong")
	}
}

func TestCommonTest(t *testing.T) {
	// ti=0110 (6), tj=0111 (7) over 4 inputs: common = 011X.
	p := CommonTest(6, 7, 4)
	want := []TV{Zero, One, One, X}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("CommonTest(6,7) = %v, want %v", p, want)
		}
	}
	// Identical tests have no X.
	p = CommonTest(5, 5, 4)
	for i, v := range p {
		if v == X {
			t.Fatalf("CommonTest(5,5)[%d] = X", i)
		}
	}
	// Complementary tests are all X.
	p = CommonTest(0b1010, 0b0101, 4)
	for i, v := range p {
		if v != X {
			t.Fatalf("CommonTest(1010,0101)[%d] = %v, want X", i, v)
		}
	}
}

func TestFullTest(t *testing.T) {
	p := FullTest(6, 4)
	want := []TV{Zero, One, One, Zero}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("FullTest(6) = %v, want %v", p, want)
		}
	}
}

// TestTVConservativeness: a 3-valued simulation result that is definite must
// agree with every completion of the X bits.
func TestTVConservativeness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		c := randomCircuit(t, rng, 4, 10+rng.Intn(10))
		m := c.NumInputs()
		for iter := 0; iter < 20; iter++ {
			pattern := make([]TV, m)
			for i := range pattern {
				pattern[i] = TV(rng.Intn(3))
			}
			vals := SimulateTV(c, pattern, -1, X)
			// Enumerate completions.
			xPos := []int{}
			base := uint64(0)
			for i, p := range pattern {
				switch p {
				case One:
					base = circuit.SetVectorBit(base, i, m, true)
				case X:
					xPos = append(xPos, i)
				}
			}
			for comp := 0; comp < 1<<uint(len(xPos)); comp++ {
				v := base
				for k, pos := range xPos {
					v = circuit.SetVectorBit(v, pos, m, (comp>>uint(k))&1 == 1)
				}
				full := c.Eval(v)
				for id := range c.Nodes {
					if vals[id] == X {
						continue
					}
					want := One
					if !full[id] {
						want = Zero
					}
					if vals[id] != want {
						t.Fatalf("trial %d: node %d definite %v but completion %d gives %v",
							trial, id, vals[id], v, want)
					}
				}
			}
		}
	}
}

// TestDetectsTVAgainstExhaustive: on fully specified patterns, DetectsTV must
// agree exactly with membership in the exhaustive T-set.
func TestDetectsTVFullySpecified(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 8; trial++ {
		c := randomCircuit(t, rng, 4, 8+rng.Intn(10))
		e, err := Run(c)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		faults := fault.AllStuckAt(c)
		tsets := e.StuckAtTSets(faults)
		for fi, f := range faults {
			for v := 0; v < c.VectorSpaceSize(); v++ {
				got := DetectsTV(c, FullTest(uint64(v), c.NumInputs()), f)
				want := tsets[fi].Contains(v)
				if got != want {
					t.Fatalf("trial %d fault %s v=%d: DetectsTV=%v, T-set=%v",
						trial, f.Name(c), v, got, want)
				}
			}
		}
	}
}

// TestDetectsTVPartialIsConservative: if a partial pattern detects f under
// 3-valued simulation, then every completion of it detects f.
func TestDetectsTVPartialIsConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	c := randomCircuit(t, rng, 5, 15)
	e, err := Run(c)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	faults := fault.AllStuckAt(c)
	tsets := e.StuckAtTSets(faults)
	m := c.NumInputs()
	for trial := 0; trial < 300; trial++ {
		ti := uint64(rng.Intn(c.VectorSpaceSize()))
		tj := uint64(rng.Intn(c.VectorSpaceSize()))
		p := CommonTest(ti, tj, m)
		fi := rng.Intn(len(faults))
		if !DetectsTV(c, p, faults[fi]) {
			continue
		}
		// Every completion must be in T(f). Completions of p include ti, tj.
		if !tsets[fi].Contains(int(ti)) || !tsets[fi].Contains(int(tj)) {
			t.Fatalf("t_ij detects %s but an endpoint does not (ti=%d tj=%d)",
				faults[fi].Name(c), ti, tj)
		}
	}
}
