package sim

import (
	"slices"
	"sort"

	"ndetect/internal/bitset"
	"ndetect/internal/engine"
	"ndetect/internal/fault"
)

// groupByLine maps a per-fault line list onto its sorted deduplicated line
// set plus, per line, the indices of the faults on it — so each line's
// fanout cone is replayed once per block no matter how many faults share it.
// The buckets share one backing array: grouping is on every analysis's
// setup path and must not allocate per line.
func groupByLine(lineOf []int) (lines []int, faultsOf [][]int) {
	lines = append([]int(nil), lineOf...)
	sort.Ints(lines)
	lines = slices.Compact(lines)
	counts := make([]int, len(lines))
	at := make([]int, len(lineOf))
	for fi, id := range lineOf {
		li, _ := slices.BinarySearch(lines, id)
		at[fi] = li
		counts[li]++
	}
	backing := make([]int, len(lineOf))
	faultsOf = make([][]int, len(lines))
	off := 0
	for li, c := range counts {
		faultsOf[li] = backing[off:off : off+c]
		off += c
	}
	for fi, li := range at {
		faultsOf[li] = append(faultsOf[li], fi)
	}
	return lines, faultsOf
}

// StuckAtTSets computes the exhaustive detection set T(f) ⊆ U of every given
// stuck-at fault: the vectors at which the line carries the opposite of the
// stuck value (activation) and the flip is observable at an output
// (propagation). U is streamed in word blocks; only the per-fault result
// bitsets are materialized.
func (e *Exhaustive) StuckAtTSets(faults []fault.StuckAt) []*bitset.Set {
	lineOf := make([]int, len(faults))
	for i, f := range faults {
		lineOf[i] = f.Node
	}
	lines, faultsOf := groupByLine(lineOf)

	size := e.Circuit.VectorSpaceSize()
	out := bitset.NewBatch(size, len(faults))
	e.streamLines(lines, func(li, lo int, prop []uint64, x *engine.Exec) {
		good := x.Node(lines[li])
		fis := faultsOf[li]
		if len(fis) == 2 && faults[fis[0]].Value != faults[fis[1]].Value {
			// The common collapsed pair (sa0, sa1) on one line: split the
			// propagation block into both polarities in one operand pass.
			sa0, sa1 := out[fis[0]], out[fis[1]]
			if faults[fis[0]].Value {
				sa0, sa1 = sa1, sa0
			}
			bitset.SplitRangeAnd(sa0, sa1, lo, prop, good)
			return
		}
		for _, fi := range fis {
			t := out[fi]
			if faults[fi].Value {
				// stuck-at-1: activated where the good value is 0.
				t.SetRangeAndNot(lo, prop, good)
			} else {
				t.SetRangeAnd(lo, prop, good)
			}
		}
	})
	return out
}

// BridgeTSets computes the exhaustive detection set of every given bridging
// fault: T = {v : dominant carries Value, victim carries ¬Value, and
// flipping the victim propagates}.
func (e *Exhaustive) BridgeTSets(bridges []fault.Bridge) []*bitset.Set {
	lineOf := make([]int, len(bridges))
	for i, g := range bridges {
		lineOf[i] = g.Victim
	}
	lines, faultsOf := groupByLine(lineOf)

	size := e.Circuit.VectorSpaceSize()
	out := bitset.NewBatch(size, len(bridges))
	e.streamLines(lines, func(li, lo int, prop []uint64, x *engine.Exec) {
		vw := x.Node(lines[li])
		for _, gi := range faultsOf[li] {
			g := bridges[gi]
			t := out[gi]
			dw := x.Node(g.Dominant)
			if g.Value {
				t.SetRangeAndAndNot(lo, prop, dw, vw) // dom=1, victim=0
			} else {
				t.SetRangeAndAndNot(lo, prop, vw, dw) // dom=0, victim=1
			}
		}
	})
	return out
}

// FilterDetectable drops faults with empty T-sets, returning parallel
// filtered slices. It is used to realize the paper's "detectable ...
// four-way bridging faults" universe and, when desired, a detectable target
// set.
func FilterDetectableBridges(bridges []fault.Bridge, tsets []*bitset.Set) ([]fault.Bridge, []*bitset.Set) {
	var fb []fault.Bridge
	var ft []*bitset.Set
	for i, t := range tsets {
		if !t.IsEmpty() {
			fb = append(fb, bridges[i])
			ft = append(ft, t)
		}
	}
	return fb, ft
}

// FilterDetectableStuckAt drops stuck-at faults with empty T-sets.
func FilterDetectableStuckAt(faults []fault.StuckAt, tsets []*bitset.Set) ([]fault.StuckAt, []*bitset.Set) {
	var ff []fault.StuckAt
	var ft []*bitset.Set
	for i, t := range tsets {
		if !t.IsEmpty() {
			ff = append(ff, faults[i])
			ft = append(ft, t)
		}
	}
	return ff, ft
}
