package sim

import (
	"slices"
	"sort"

	"ndetect/internal/bitset"
	"ndetect/internal/engine"
	"ndetect/internal/fault"
)

// groupByLine maps a per-fault line list onto its sorted deduplicated line
// set plus, per line, the indices of the faults on it — so each line's
// fanout cone is replayed once per block no matter how many faults share it.
func groupByLine(lineOf []int) (lines []int, faultsOf [][]int) {
	lines = append([]int(nil), lineOf...)
	sort.Ints(lines)
	lines = slices.Compact(lines)
	at := make(map[int]int, len(lines))
	for i, id := range lines {
		at[id] = i
	}
	faultsOf = make([][]int, len(lines))
	for fi, id := range lineOf {
		li := at[id]
		faultsOf[li] = append(faultsOf[li], fi)
	}
	return lines, faultsOf
}

// StuckAtTSets computes the exhaustive detection set T(f) ⊆ U of every given
// stuck-at fault: the vectors at which the line carries the opposite of the
// stuck value (activation) and the flip is observable at an output
// (propagation). U is streamed in word blocks; only the per-fault result
// bitsets are materialized.
func (e *Exhaustive) StuckAtTSets(faults []fault.StuckAt) []*bitset.Set {
	lineOf := make([]int, len(faults))
	for i, f := range faults {
		lineOf[i] = f.Node
	}
	lines, faultsOf := groupByLine(lineOf)

	size := e.Circuit.VectorSpaceSize()
	out := make([]*bitset.Set, len(faults))
	for i := range out {
		out[i] = bitset.New(size)
	}
	e.streamLines(lines, func(li, lo int, prop []uint64, x *engine.Exec) {
		good := x.Node(lines[li])
		for _, fi := range faultsOf[li] {
			t := out[fi]
			if faults[fi].Value {
				// stuck-at-1: activated where the good value is 0.
				for w, pw := range prop {
					t.SetWord(lo+w, pw&^good[w])
				}
			} else {
				for w, pw := range prop {
					t.SetWord(lo+w, pw&good[w])
				}
			}
		}
	})
	return out
}

// BridgeTSets computes the exhaustive detection set of every given bridging
// fault: T = {v : dominant carries Value, victim carries ¬Value, and
// flipping the victim propagates}.
func (e *Exhaustive) BridgeTSets(bridges []fault.Bridge) []*bitset.Set {
	lineOf := make([]int, len(bridges))
	for i, g := range bridges {
		lineOf[i] = g.Victim
	}
	lines, faultsOf := groupByLine(lineOf)

	size := e.Circuit.VectorSpaceSize()
	out := make([]*bitset.Set, len(bridges))
	for i := range out {
		out[i] = bitset.New(size)
	}
	e.streamLines(lines, func(li, lo int, prop []uint64, x *engine.Exec) {
		vw := x.Node(lines[li])
		for _, gi := range faultsOf[li] {
			g := bridges[gi]
			t := out[gi]
			dw := x.Node(g.Dominant)
			if g.Value {
				for w, pw := range prop {
					t.SetWord(lo+w, pw&(dw[w]&^vw[w])) // dom=1, victim=0
				}
			} else {
				for w, pw := range prop {
					t.SetWord(lo+w, pw&(^dw[w]&vw[w])) // dom=0, victim=1
				}
			}
		}
	})
	return out
}

// FilterDetectable drops faults with empty T-sets, returning parallel
// filtered slices. It is used to realize the paper's "detectable ...
// four-way bridging faults" universe and, when desired, a detectable target
// set.
func FilterDetectableBridges(bridges []fault.Bridge, tsets []*bitset.Set) ([]fault.Bridge, []*bitset.Set) {
	var fb []fault.Bridge
	var ft []*bitset.Set
	for i, t := range tsets {
		if !t.IsEmpty() {
			fb = append(fb, bridges[i])
			ft = append(ft, t)
		}
	}
	return fb, ft
}

// FilterDetectableStuckAt drops stuck-at faults with empty T-sets.
func FilterDetectableStuckAt(faults []fault.StuckAt, tsets []*bitset.Set) ([]fault.StuckAt, []*bitset.Set) {
	var ff []fault.StuckAt
	var ft []*bitset.Set
	for i, t := range tsets {
		if !t.IsEmpty() {
			ff = append(ff, faults[i])
			ft = append(ft, t)
		}
	}
	return ff, ft
}
