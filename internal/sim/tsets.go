package sim

import (
	"ndetect/internal/bitset"
	"ndetect/internal/fault"
)

// StuckAtTSets computes the exhaustive detection set T(f) ⊆ U of every given
// stuck-at fault: the vectors at which the line carries the opposite of the
// stuck value (activation) and the flip is observable at an output
// (propagation).
func (e *Exhaustive) StuckAtTSets(faults []fault.StuckAt) []*bitset.Set {
	ids := make([]int, len(faults))
	for i, f := range faults {
		ids[i] = f.Node
	}
	props := e.PropMasks(ids)

	out := make([]*bitset.Set, len(faults))
	ParallelFor(e.Workers, len(faults), func(i int) {
		f := faults[i]
		t := props[f.Node].Clone()
		tw := t.Words()
		gw := e.Values[f.Node].Words()
		for w := range tw {
			if f.Value {
				// stuck-at-1: activated where the good value is 0.
				t.SetWord(w, tw[w]&^gw[w])
			} else {
				t.SetWord(w, tw[w]&gw[w])
			}
		}
		out[i] = t
	})
	return out
}

// BridgeTSets computes the exhaustive detection set of every given bridging
// fault: T = {v : dominant carries Value, victim carries ¬Value, and
// flipping the victim propagates}.
func (e *Exhaustive) BridgeTSets(bridges []fault.Bridge) []*bitset.Set {
	ids := make([]int, len(bridges))
	for i, g := range bridges {
		ids[i] = g.Victim
	}
	props := e.PropMasks(ids)

	out := make([]*bitset.Set, len(bridges))
	ParallelFor(e.Workers, len(bridges), func(i int) {
		g := bridges[i]
		t := props[g.Victim].Clone()
		tw := t.Words()
		dw := e.Values[g.Dominant].Words()
		vw := e.Values[g.Victim].Words()
		for w := range tw {
			var act uint64
			if g.Value {
				act = dw[w] &^ vw[w] // dom=1, victim=0
			} else {
				act = ^dw[w] & vw[w] // dom=0, victim=1
			}
			t.SetWord(w, tw[w]&act)
		}
		out[i] = t
	})
	return out
}

// FilterDetectable drops faults with empty T-sets, returning parallel
// filtered slices. It is used to realize the paper's "detectable ...
// four-way bridging faults" universe and, when desired, a detectable target
// set.
func FilterDetectableBridges(bridges []fault.Bridge, tsets []*bitset.Set) ([]fault.Bridge, []*bitset.Set) {
	var fb []fault.Bridge
	var ft []*bitset.Set
	for i, t := range tsets {
		if !t.IsEmpty() {
			fb = append(fb, bridges[i])
			ft = append(ft, t)
		}
	}
	return fb, ft
}

// FilterDetectableStuckAt drops stuck-at faults with empty T-sets.
func FilterDetectableStuckAt(faults []fault.StuckAt, tsets []*bitset.Set) ([]fault.StuckAt, []*bitset.Set) {
	var ff []fault.StuckAt
	var ft []*bitset.Set
	for i, t := range tsets {
		if !t.IsEmpty() {
			ff = append(ff, faults[i])
			ft = append(ft, t)
		}
	}
	return ff, ft
}
