package sim

import (
	"ndetect/internal/circuit"
)

// FaultCone is the precomputed transitive fanout cone of a fault site, used
// to run many 3-valued fault simulations of the same fault cheaply: the
// faulty machine only ever differs from the good machine inside the cone,
// so after one good-machine simulation the faulty pass re-evaluates only
// the cone and compares only the outputs the cone reaches.
type FaultCone struct {
	c        *circuit.Circuit
	site     int
	order    []int // fanout cone nodes (excluding the site) in topo order
	outputs  []int // primary output positions reachable from the site
	tfiOrder []int // fanin cone of the site (including it) in topo order
	tfi      []bool
}

// NewFaultCone precomputes the fanout and fanin cones of the given node.
func NewFaultCone(c *circuit.Circuit, site int) *FaultCone {
	inCone := c.TransitiveFanout(site)
	fc := &FaultCone{c: c, site: site, tfi: c.TransitiveFanin(site)}
	for _, id := range c.TopoOrder() {
		if inCone[id] && id != site {
			fc.order = append(fc.order, id)
		}
		if fc.tfi[id] {
			fc.tfiOrder = append(fc.tfiOrder, id)
		}
	}
	for i, o := range c.Outputs {
		if inCone[o] {
			fc.outputs = append(fc.outputs, i)
		}
	}
	return fc
}

// DetectsTV reports whether the (possibly partial) pattern detects the
// stuck-at fault (site stuck at stuckVal) under 3-valued simulation. It is
// equivalent to sim.DetectsTV for the same fault, staged for speed: the
// good machine is first evaluated only on the site's fanin cone — if the
// site is not definitely excited no detection is possible (in Kleene logic
// the faulty machine refines the good one whenever the site's good value is
// X or equals the stuck value, so definite outputs cannot change) — and
// only then completed, with the faulty pass re-simulating just the fanout
// cone.
func (fc *FaultCone) DetectsTV(pattern []TV, stuckVal bool) bool {
	if len(fc.outputs) == 0 {
		return false // fault site cannot reach any output
	}
	c := fc.c
	if len(pattern) != c.NumInputs() {
		panic("sim: FaultCone pattern length mismatch")
	}
	fv := Zero
	if stuckVal {
		fv = One
	}

	good := make([]TV, c.NumNodes())
	for i, id := range c.Inputs {
		good[id] = pattern[i]
	}
	for _, id := range fc.tfiOrder {
		evalNodeTV(c, c.Node(id), good)
	}
	if good[fc.site] != tvNot(fv) {
		return false
	}

	// Complete the good machine on the rest of the circuit.
	for _, id := range c.TopoOrder() {
		if !fc.tfi[id] {
			evalNodeTV(c, c.Node(id), good)
		}
	}

	bad := make([]TV, len(good))
	copy(bad, good)
	bad[fc.site] = fv
	for _, id := range fc.order {
		evalNodeTV(c, c.Node(id), bad)
	}
	for _, oi := range fc.outputs {
		o := c.Outputs[oi]
		if good[o] != X && bad[o] != X && good[o] != bad[o] {
			return true
		}
	}
	return false
}

// evalNodeTV evaluates one node in 3-valued logic from its fanin values.
func evalNodeTV(c *circuit.Circuit, n *circuit.Node, vals []TV) {
	switch n.Kind {
	case circuit.Input:
		// inputs are assigned by the caller
	case circuit.Const0:
		vals[n.ID] = Zero
	case circuit.Const1:
		vals[n.ID] = One
	case circuit.Buf, circuit.Branch:
		vals[n.ID] = vals[n.Fanin[0]]
	case circuit.Not:
		vals[n.ID] = tvNot(vals[n.Fanin[0]])
	case circuit.And, circuit.Nand:
		v := One
		for _, f := range n.Fanin {
			v = tvAnd(v, vals[f])
		}
		if n.Kind == circuit.Nand {
			v = tvNot(v)
		}
		vals[n.ID] = v
	case circuit.Or, circuit.Nor:
		v := Zero
		for _, f := range n.Fanin {
			v = tvOr(v, vals[f])
		}
		if n.Kind == circuit.Nor {
			v = tvNot(v)
		}
		vals[n.ID] = v
	case circuit.Xor, circuit.Xnor:
		v := Zero
		for _, f := range n.Fanin {
			v = tvXor(v, vals[f])
		}
		if n.Kind == circuit.Xnor {
			v = tvNot(v)
		}
		vals[n.ID] = v
	}
}
