package sim

import (
	"ndetect/internal/circuit"
	"ndetect/internal/engine"
)

// FaultCone is the precomputed transitive fanout cone of a fault site, used
// to run many 3-valued fault simulations of the same fault cheaply: the
// faulty machine only ever differs from the good machine inside the cone,
// so after one good-machine simulation the faulty pass re-evaluates only
// the cone and compares only the outputs the cone reaches. All passes run
// the compiled dual-rail program (engine.ExecTV) over topological slices of
// the node set.
type FaultCone struct {
	c        *circuit.Circuit
	prog     *engine.Program
	site     int
	order    []int // fanout cone nodes (excluding the site) in topo order
	outputs  []int // primary output positions reachable from the site
	tfiOrder []int // fanin cone of the site (including it) in topo order
	rest     []int // nodes outside the fanin cone, in topo order
}

// Compiled is a circuit's shared analysis program: one lowering serves any
// number of FaultCones, so callers building a cone per fault (Definition
// 2's checker) compile the circuit once instead of once per fault.
type Compiled struct {
	c    *circuit.Circuit
	prog *engine.Program
}

// CompileCircuit lowers the circuit once for 3-valued fault-cone analysis.
func CompileCircuit(c *circuit.Circuit) *Compiled {
	return &Compiled{c: c, prog: engine.CompileAll(c)}
}

// NewFaultCone compiles the circuit and precomputes the fanout and fanin
// cones of the given node. Callers creating cones for many faults of the
// same circuit should go through CompileCircuit.
func NewFaultCone(c *circuit.Circuit, site int) *FaultCone {
	return CompileCircuit(c).NewFaultCone(site)
}

// NewFaultCone precomputes the fanout and fanin cones of the given node
// against the shared compiled program.
func (p *Compiled) NewFaultCone(site int) *FaultCone {
	c := p.c
	inCone := c.TransitiveFanout(site)
	tfi := c.TransitiveFanin(site)
	fc := &FaultCone{c: c, prog: p.prog, site: site}
	for _, id := range c.TopoOrder() {
		if inCone[id] && id != site {
			fc.order = append(fc.order, id)
		}
		if tfi[id] {
			fc.tfiOrder = append(fc.tfiOrder, id)
		} else {
			fc.rest = append(fc.rest, id)
		}
	}
	for i, o := range c.Outputs {
		if inCone[o] {
			fc.outputs = append(fc.outputs, i)
		}
	}
	return fc
}

// DetectsTV reports whether the (possibly partial) pattern detects the
// stuck-at fault (site stuck at stuckVal) under 3-valued simulation. It is
// equivalent to sim.DetectsTV for the same fault, staged for speed: the
// good machine is first evaluated only on the site's fanin cone — if the
// site is not definitely excited no detection is possible (in Kleene logic
// the faulty machine refines the good one whenever the site's good value is
// X or equals the stuck value, so definite outputs cannot change) — and
// only then completed, with the faulty pass re-simulating just the fanout
// cone. It is DetectsTVBatch at batch size one.
func (fc *FaultCone) DetectsTV(pattern []TV, stuckVal bool) bool {
	if len(pattern) != fc.c.NumInputs() {
		panic("sim: FaultCone pattern length mismatch")
	}
	if len(fc.outputs) == 0 {
		return false // fault site cannot reach any output
	}
	return fc.DetectsTVBatch([][]TV{pattern}, stuckVal)[0]
}
