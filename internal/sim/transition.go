package sim

import (
	"ndetect/internal/bitset"
	"ndetect/internal/engine"
	"ndetect/internal/fault"
)

// The transition (gross-delay) fault model over two-pattern tests.
//
// A test is an ordered vector pair (v1, v2) ∈ U×U, indexed v1·|U| + v2: v1
// initializes the circuit, v2 launches the transition and observes it. A
// slow-to-rise fault on line l (descriptor V = 0) is detected by (v1, v2)
// iff l carries 0 at v1 (the line must start at its pre-transition value)
// and v2 detects l stuck-at-0 — under the gross-delay assumption the late
// transition makes the line hold its initial value through observation, so
// launch-side detection is exactly single stuck-at detection. Slow-to-fall
// (V = 1) is the mirror image with stuck-at-1. Both factors are
// single-vector bitsets the streaming kernel already computes, so the pair
// T-set is an exact outer product
//
//	T(l, V) = init(l, V) × T(l/V),   init(l, V) = {v : val_l(v) = V}
//
// and no pair-space simulation ever runs. (ISSUE 6 sketches a dual-rail
// ExecTV construction; the product form is mathematically identical — the
// two coordinates of a two-pattern test are independent full vectors — and
// avoids |U|² engine passes. The cross-check against naive per-pair scalar
// simulation lives in transition_test.go.)
//
// Stuck-at targets are lifted to the pair space by either-coordinate
// detection: a two-pattern test applies both of its vectors, so
// T_pair(f) = (T(f) × U) ∪ (U × T(f)).
//
// Result memory is |F|+|G| bitsets over |U|² bits and is bounded against
// sim.MemoryBudget (CheckSpaceBudget) before anything is allocated; wide
// circuits are rejected with that budget error.

// transitionModelTSets is the registered T-set builder for model ID
// "transition".
func transitionModelTSets(e *Exhaustive, targets, untargeted []fault.Descriptor,
	step func(stage string)) ([]*bitset.Set, []*bitset.Set, []fault.Descriptor, error) {
	c := e.Circuit
	size := c.VectorSpaceSize()
	pairSize, err := pairSpaceSize(e)
	if err != nil {
		return nil, nil, nil, err
	}
	// Budget: the lifted pair sets plus the transient single-vector
	// factors (2 per untargeted fault, 1 per target).
	if err := CheckSpaceBudget(c.Name, int64(pairSize), len(targets)+len(untargeted)); err != nil {
		return nil, nil, nil, err
	}
	if err := CheckResultBudget(c, len(targets)+2*len(untargeted)); err != nil {
		return nil, nil, nil, err
	}

	step("stuck-at-tsets")
	saT := e.StuckAtTSets(toStuckAt(targets))
	dets, inits := transitionFactors(e, untargeted)

	step("transition-tsets")
	tT := make([]*bitset.Set, len(targets))
	ParallelFor(e.Workers, len(targets), func(i int) {
		tT[i] = liftEitherCoordinate(saT[i], size, pairSize)
	})
	lifted := make([]*bitset.Set, len(untargeted))
	ParallelFor(e.Workers, len(untargeted), func(j int) {
		if inits[j].IsEmpty() || dets[j].IsEmpty() {
			return // undetectable: no initializing or no launching vector
		}
		lifted[j] = liftProduct(inits[j], dets[j], size, pairSize)
	})
	var kept []fault.Descriptor
	var uT []*bitset.Set
	for j, t := range lifted {
		if t != nil {
			kept = append(kept, untargeted[j])
			uT = append(uT, t)
		}
	}
	return tT, uT, kept, nil
}

// pairSpaceSize returns |U|² with the same overflow guard fault.SpaceSize
// applies.
func pairSpaceSize(e *Exhaustive) (int, error) {
	m, err := fault.Resolve("transition")
	if err != nil {
		return 0, err
	}
	return fault.SpaceSize(m, e.Circuit)
}

// transitionFactors computes, per transition fault, the two single-vector
// factors of its pair T-set: the launch-detection set T(l/V) and the
// initialization set {v : val_l(v) = V}. One streaming pass serves every
// fault, grouped by line.
func transitionFactors(e *Exhaustive, faults []fault.Descriptor) (dets, inits []*bitset.Set) {
	lineOf := make([]int, len(faults))
	for i, d := range faults {
		lineOf[i] = int(d.A)
	}
	lines, faultsOf := groupByLine(lineOf)

	size := e.Circuit.VectorSpaceSize()
	dets = bitset.NewBatch(size, len(faults))
	inits = bitset.NewBatch(size, len(faults))
	e.streamLines(lines, func(li, lo int, prop []uint64, x *engine.Exec) {
		good := x.Node(lines[li])
		for _, fi := range faultsOf[li] {
			det, init := dets[fi], inits[fi]
			if faults[fi].V != 0 {
				// Slow-to-fall: starts at 1, detected as stuck-at-1.
				det.SetRangeAndNot(lo, prop, good)
				init.SetRange(lo, good)
			} else {
				det.SetRangeAnd(lo, prop, good)
				init.SetRangeNot(lo, good)
			}
		}
	})
	return dets, inits
}

// liftProduct materializes init × det in the flattened pair space: row v1
// (present iff v1 ∈ init) holds det. Universe sizes are powers of two, so
// either every row is word-aligned (size ≥ 64) or the whole space is a
// handful of words (size < 64, bit loop).
func liftProduct(init, det *bitset.Set, size, pairSize int) *bitset.Set {
	out := bitset.New(pairSize)
	if size%64 == 0 {
		rowWords := size / 64
		words := det.Words()
		init.ForEach(func(v1 int) {
			base := v1 * rowWords
			for w, dw := range words {
				out.SetWord(base+w, dw)
			}
		})
		return out
	}
	init.ForEach(func(v1 int) {
		base := v1 * size
		det.ForEach(func(v2 int) {
			out.Add(base + v2)
		})
	})
	return out
}

// liftEitherCoordinate materializes (t × U) ∪ (U × t): row v1 is full when
// v1 ∈ t, and holds t otherwise.
func liftEitherCoordinate(t *bitset.Set, size, pairSize int) *bitset.Set {
	out := bitset.New(pairSize)
	if size%64 == 0 {
		rowWords := size / 64
		words := t.Words()
		for v1 := 0; v1 < size; v1++ {
			base := v1 * rowWords
			if t.Contains(v1) {
				for w := 0; w < rowWords; w++ {
					out.SetWord(base+w, ^uint64(0))
				}
			} else {
				for w, tw := range words {
					out.SetWord(base+w, tw)
				}
			}
		}
		return out
	}
	for v1 := 0; v1 < size; v1++ {
		base := v1 * size
		if t.Contains(v1) {
			for v2 := 0; v2 < size; v2++ {
				out.Add(base + v2)
			}
		} else {
			t.ForEach(func(v2 int) {
				out.Add(base + v2)
			})
		}
	}
	return out
}
