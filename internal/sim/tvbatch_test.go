package sim

import (
	"math/rand"
	"testing"

	"ndetect/internal/fault"
)

// TestDetectsTVBatchMatchesScalar: the dual-rail batched simulation must
// agree with the scalar 3-valued path for every pattern and fault.
func TestDetectsTVBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		c := randomCircuit(t, rng, 4+rng.Intn(3), 10+rng.Intn(12))
		m := c.NumInputs()
		faults := fault.AllStuckAt(c)
		for _, f := range faults[:min(len(faults), 12)] {
			cone := NewFaultCone(c, f.Node)
			var patterns [][]TV
			for i := 0; i < 50; i++ {
				p := make([]TV, m)
				for j := range p {
					p[j] = TV(rng.Intn(3))
				}
				patterns = append(patterns, p)
			}
			got := cone.DetectsTVBatch(patterns, f.Value)
			for i, p := range patterns {
				want := cone.DetectsTV(p, f.Value)
				if got[i] != want {
					t.Fatalf("trial %d fault %s pattern %d: batch %v, scalar %v",
						trial, f.Name(c), i, got[i], want)
				}
				// And the scalar cone path must agree with the full-circuit
				// reference DetectsTV.
				if ref := DetectsTV(c, p, f); ref != want {
					t.Fatalf("trial %d fault %s pattern %d: cone %v, reference %v",
						trial, f.Name(c), i, want, ref)
				}
			}
		}
	}
}

func TestDetectsTVBatchEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	c := randomCircuit(t, rng, 4, 10)
	f := fault.AllStuckAt(c)[0]
	cone := NewFaultCone(c, f.Node)

	if got := cone.DetectsTVBatch(nil, f.Value); got != nil {
		t.Fatal("empty batch should return nil")
	}
	// A single pattern works.
	p := FullTest(3, c.NumInputs())
	got := cone.DetectsTVBatch([][]TV{p}, f.Value)
	if len(got) != 1 || got[0] != cone.DetectsTV(p, f.Value) {
		t.Fatal("single-pattern batch disagrees")
	}
	// Exactly 64 patterns works; 65 panics.
	var many [][]TV
	for i := 0; i < 64; i++ {
		many = append(many, FullTest(uint64(i%c.VectorSpaceSize()), c.NumInputs()))
	}
	_ = cone.DetectsTVBatch(many, f.Value)
	defer func() {
		if recover() == nil {
			t.Fatal("65-pattern batch did not panic")
		}
	}()
	cone.DetectsTVBatch(append(many, p), f.Value)
}

// TestFaultConeUnobservable: a cone with no outputs never detects.
func TestFaultConeUnobservable(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	c := randomCircuit(t, rng, 4, 12)
	// Find a node that reaches no output, if any (dangling gates happen in
	// random circuits when later gates are the only outputs).
	for _, n := range c.Nodes {
		cone := NewFaultCone(c, n.ID)
		if len(cone.outputs) > 0 {
			continue
		}
		p := FullTest(0, c.NumInputs())
		if cone.DetectsTV(p, true) || cone.DetectsTV(p, false) {
			t.Fatalf("unobservable node %s detected", n.Name)
		}
		got := cone.DetectsTVBatch([][]TV{p}, true)
		if got[0] {
			t.Fatalf("unobservable node %s detected in batch", n.Name)
		}
		return
	}
	t.Skip("no unobservable node in this random circuit")
}

// TestDualRailEncodingOperators verifies the dual-rail gate equations
// against the scalar TV operators on all value combinations.
func TestDualRailEncodingOperators(t *testing.T) {
	enc := func(v TV) (uint64, uint64) {
		switch v {
		case One:
			return 1, 0
		case Zero:
			return 0, 1
		default:
			return 1, 1
		}
	}
	dec := func(p1, p0 uint64) TV {
		switch {
		case p1 == 1 && p0 == 0:
			return One
		case p1 == 0 && p0 == 1:
			return Zero
		default:
			return X
		}
	}
	vals := []TV{Zero, One, X}
	for _, a := range vals {
		for _, b := range vals {
			a1, a0 := enc(a)
			b1, b0 := enc(b)
			if got := dec(a1&b1, a0|b0); got != tvAnd(a, b) {
				t.Fatalf("AND(%v,%v): dual-rail %v, scalar %v", a, b, got, tvAnd(a, b))
			}
			if got := dec(a1|b1, a0&b0); got != tvOr(a, b) {
				t.Fatalf("OR(%v,%v): dual-rail %v, scalar %v", a, b, got, tvOr(a, b))
			}
			x1 := (a1 & b0) | (a0 & b1)
			x0 := (a1 & b1) | (a0 & b0)
			if got := dec(x1, x0); got != tvXor(a, b) {
				t.Fatalf("XOR(%v,%v): dual-rail %v, scalar %v", a, b, got, tvXor(a, b))
			}
		}
		a1, a0 := enc(a)
		if got := dec(a0, a1); got != tvNot(a) {
			t.Fatalf("NOT(%v): dual-rail %v, scalar %v", a, got, tvNot(a))
		}
	}
}
