package sim

import (
	"ndetect/internal/bitset"
	"ndetect/internal/circuit"
	"ndetect/internal/fault"
)

// The naive simulator recomputes every fault at every vector with scalar
// full-circuit evaluations. It exists as (a) the reference implementation
// the bit-parallel path is cross-checked against in tests, and (b) the
// baseline of the ablation benchmark BenchmarkTSetsPerFault.

// evalWithForcedNode evaluates the circuit at vector v with node `forced`
// overridden to `val` (a downstream observer sees the override; the node's
// own fanin does not feed it).
func evalWithForcedNode(c *circuit.Circuit, v uint64, forced int, val bool, vals []bool) {
	for i, id := range c.Inputs {
		vals[id] = circuit.VectorBit(v, i, len(c.Inputs))
	}
	for _, id := range c.TopoOrder() {
		if id == forced {
			vals[id] = val
			continue
		}
		evalNodeScalar(c, c.Node(id), vals)
	}
}

func evalNodeScalar(c *circuit.Circuit, n *circuit.Node, vals []bool) {
	switch n.Kind {
	case circuit.Input:
		// already set
	case circuit.Const0:
		vals[n.ID] = false
	case circuit.Const1:
		vals[n.ID] = true
	case circuit.Buf, circuit.Branch:
		vals[n.ID] = vals[n.Fanin[0]]
	case circuit.Not:
		vals[n.ID] = !vals[n.Fanin[0]]
	case circuit.And, circuit.Nand:
		v := true
		for _, f := range n.Fanin {
			v = v && vals[f]
		}
		if n.Kind == circuit.Nand {
			v = !v
		}
		vals[n.ID] = v
	case circuit.Or, circuit.Nor:
		v := false
		for _, f := range n.Fanin {
			v = v || vals[f]
		}
		if n.Kind == circuit.Nor {
			v = !v
		}
		vals[n.ID] = v
	case circuit.Xor, circuit.Xnor:
		v := false
		for _, f := range n.Fanin {
			v = v != vals[f]
		}
		if n.Kind == circuit.Xnor {
			v = !v
		}
		vals[n.ID] = v
	}
}

// NaiveStuckAtTSet computes T(f) by scalar simulation of every vector.
func NaiveStuckAtTSet(c *circuit.Circuit, f fault.StuckAt) *bitset.Set {
	size := c.VectorSpaceSize()
	t := bitset.New(size)
	good := make([]bool, c.NumNodes())
	bad := make([]bool, c.NumNodes())
	for v := 0; v < size; v++ {
		c.EvalInto(uint64(v), good)
		if good[f.Node] == f.Value {
			continue // not activated
		}
		evalWithForcedNode(c, uint64(v), f.Node, f.Value, bad)
		for _, o := range c.Outputs {
			if good[o] != bad[o] {
				t.Add(v)
				break
			}
		}
	}
	return t
}

// NaiveBridgeTSet computes T(g) for a dominance bridge by scalar simulation.
func NaiveBridgeTSet(c *circuit.Circuit, g fault.Bridge) *bitset.Set {
	size := c.VectorSpaceSize()
	t := bitset.New(size)
	good := make([]bool, c.NumNodes())
	bad := make([]bool, c.NumNodes())
	for v := 0; v < size; v++ {
		c.EvalInto(uint64(v), good)
		if good[g.Dominant] != g.Value || good[g.Victim] == g.Value {
			continue // not activated
		}
		evalWithForcedNode(c, uint64(v), g.Victim, g.Value, bad)
		for _, o := range c.Outputs {
			if good[o] != bad[o] {
				t.Add(v)
				break
			}
		}
	}
	return t
}

// NaiveExhaustive computes all node values with scalar evaluation; the
// ablation baseline for BenchmarkExhaustiveNaive.
func NaiveExhaustive(c *circuit.Circuit) []*bitset.Set {
	size := c.VectorSpaceSize()
	out := make([]*bitset.Set, c.NumNodes())
	for i := range out {
		out[i] = bitset.New(size)
	}
	vals := make([]bool, c.NumNodes())
	for v := 0; v < size; v++ {
		c.EvalInto(uint64(v), vals)
		for id, b := range vals {
			if b {
				out[id].Add(v)
			}
		}
	}
	return out
}
