package sim

import (
	"ndetect/internal/bitset"
	"ndetect/internal/circuit"
	"ndetect/internal/engine"
	"ndetect/internal/fault"
)

// The naive simulator recomputes every fault at every vector with width-1
// (scalar) executions of the compiled program — the same instruction
// stream the word-block interpreter runs, one vector at a time. It exists
// as (a) the implementation the bit-parallel paths are cross-checked
// against in tests (together with circuit.Eval, the retained non-engine
// reference), and (b) the baseline of the ablation benchmark
// BenchmarkTSetsPerFault.

// NaiveStuckAtTSet computes T(f) by scalar simulation of every vector:
// the good machine from the compiled program, the faulty machine from the
// same program with the fault node's chain skipped and its register forced.
func NaiveStuckAtTSet(c *circuit.Circuit, f fault.StuckAt) *bitset.Set {
	prog := engine.CompileAll(c)
	size := c.VectorSpaceSize()
	t := bitset.New(size)
	good := make([]bool, prog.NumRegs)
	bad := make([]bool, prog.NumRegs)
	for v := 0; v < size; v++ {
		prog.EvalScalar(uint64(v), good)
		if good[f.Node] == f.Value {
			continue // not activated
		}
		prog.EvalScalarForced(uint64(v), f.Node, f.Value, bad)
		for _, o := range c.Outputs {
			if good[o] != bad[o] {
				t.Add(v)
				break
			}
		}
	}
	return t
}

// NaiveBridgeTSet computes T(g) for a dominance bridge by scalar simulation.
func NaiveBridgeTSet(c *circuit.Circuit, g fault.Bridge) *bitset.Set {
	prog := engine.CompileAll(c)
	size := c.VectorSpaceSize()
	t := bitset.New(size)
	good := make([]bool, prog.NumRegs)
	bad := make([]bool, prog.NumRegs)
	for v := 0; v < size; v++ {
		prog.EvalScalar(uint64(v), good)
		if good[g.Dominant] != g.Value || good[g.Victim] == g.Value {
			continue // not activated
		}
		prog.EvalScalarForced(uint64(v), g.Victim, g.Value, bad)
		for _, o := range c.Outputs {
			if good[o] != bad[o] {
				t.Add(v)
				break
			}
		}
	}
	return t
}

// NaiveExhaustive computes all node values with per-vector scalar
// evaluation; the ablation baseline for BenchmarkExhaustiveNaive.
func NaiveExhaustive(c *circuit.Circuit) []*bitset.Set {
	prog := engine.CompileAll(c)
	size := c.VectorSpaceSize()
	out := make([]*bitset.Set, c.NumNodes())
	for i := range out {
		out[i] = bitset.New(size)
	}
	vals := make([]bool, prog.NumRegs)
	for v := 0; v < size; v++ {
		prog.EvalScalar(uint64(v), vals)
		for id, b := range vals {
			if b {
				out[id].Add(v)
			}
		}
	}
	return out
}
