package sim

import (
	"sync"

	"ndetect/internal/engine"
)

// The streaming kernel: every exhaustive analysis — prop masks, stuck-at
// T-sets, bridge T-sets — reduces to "for every requested line, the vectors
// at which flipping that line reaches an output", filtered by a per-fault
// activation condition. streamLines computes exactly that, block by block:
// the good machine is evaluated over a cache-sized word block of U, each
// line's compiled fanout cone is replayed against it, and the caller
// receives the block's propagation words together with the good-value block
// for activation masking. Only per-fault result bitsets ever span U.

// smallUniverseWords is the cutoff below which the whole universe is one
// block: the good machine is evaluated once and the parallelism comes from
// fanning the lines out instead (matching the pre-engine fault-level
// pools, which is what the benchmark-suite circuits exercise).
const smallUniverseWords = 2 * minBlockWords

// lineScratch is one worker's reusable cone state for the block-parallel
// path (the good-machine Exec is pooled by streamBlocks).
type lineScratch struct {
	cx   *engine.ConeExec
	prop []uint64
}

// streamLines evaluates the good machine over U in word blocks and, for
// every requested line, replays the line-flipped fanout cone per block.
// emit(li, lo, prop, x) is called once per (line, block) pair with the
// block's propagation words (prop[w] bit b = flipping lines[li] changes
// some output at vector 64·(lo+w)+b) and the good-machine block x for
// activation masking. Callers must write only into word range
// [lo, lo+len(prop)) of their results; emit may run concurrently for
// different lines or blocks, so the schedule is byte-identical for every
// worker count.
func (e *Exhaustive) streamLines(lines []int, emit func(li, lo int, prop []uint64, x *engine.Exec)) {
	if len(lines) == 0 {
		return
	}
	nWords := universeWords(e.Circuit.VectorSpaceSize())
	cps := make([]*engine.ConeProgram, len(lines))
	for i, id := range lines {
		cps[i] = e.coneFor(id)
	}

	if nWords <= smallUniverseWords {
		// One shared good block, lines fan out across the workers, each
		// reusing pooled cone scratch.
		x := engine.NewExec(e.prog, nWords)
		x.Eval(0, nWords)
		var pool sync.Pool
		ParallelFor(e.Workers, len(lines), func(li int) {
			s, _ := pool.Get().(*lineScratch)
			if s == nil {
				s = &lineScratch{cx: engine.NewConeExec(nWords), prop: make([]uint64, nWords)}
			}
			s.cx.Run(cps[li], x)
			clear(s.prop)
			s.cx.OrProp(cps[li], s.prop, x)
			emit(li, 0, s.prop, x)
			pool.Put(s)
		})
		return
	}

	// Large universe: blocks fan out, each worker streaming whole blocks
	// through every line with its own scratch register files.
	blockWords := blockWordsFor(nWords, e.Workers)
	var pool sync.Pool
	streamBlocks(e.prog, e.Workers, nWords, blockWords, func(lo, hi int, x *engine.Exec) {
		s, _ := pool.Get().(*lineScratch)
		if s == nil {
			s = &lineScratch{
				cx:   engine.NewConeExec(min(blockWords, nWords)),
				prop: make([]uint64, blockWords),
			}
		}
		for li := range lines {
			s.cx.Run(cps[li], x)
			prop := s.prop[:hi-lo]
			clear(prop)
			s.cx.OrProp(cps[li], prop, x)
			emit(li, lo, prop, x)
		}
		pool.Put(s)
	})
}
