package sim

import (
	"slices"
	"sync"

	"ndetect/internal/engine"
)

// The streaming kernel: every exhaustive analysis — prop masks, stuck-at
// T-sets, bridge T-sets — reduces to "for every requested line, the vectors
// at which flipping that line reaches an output", filtered by a per-fault
// activation condition. streamLines computes exactly that, block by block:
// the good machine is evaluated over a cache-sized word block of U, each
// line's compiled fanout cone is replayed against it, and the caller
// receives the block's propagation words together with the good-value block
// for activation masking. Only per-fault result bitsets ever span U.

// smallUniverseWords is the cutoff below which the whole universe is one
// block: the good machine is evaluated once and the parallelism comes from
// fanning the lines out instead (matching the pre-engine fault-level
// pools, which is what the benchmark-suite circuits exercise).
const smallUniverseWords = 2 * minBlockWords

// onesBlock backs the propagation slice handed to emit for always-prop
// lines (engine.ConeProgram.AlwaysProp): their mask is all-ones at every
// vector, so no replay runs at all. It is shared across goroutines — safe
// because emit receives prop read-only under the streamLines contract.
var onesBlock = func() []uint64 {
	s := make([]uint64, maxBlockWords)
	for i := range s {
		s[i] = ^uint64(0)
	}
	return s
}()

// lineScratch is one worker's reusable cone state for the block-parallel
// path (the good-machine Exec is pooled by streamBlocks).
type lineScratch struct {
	cx   *engine.ConeExec
	prop []uint64
}

// replayOrder returns a deterministic iteration order over the lines:
// always-prop lines first (they emit without touching scratch), then lines
// grouped by first reachable output and ascending cone size, so
// consecutive replays compare against the same good-bank registers while
// the block is cache-hot. This is purely a locality heuristic — every emit
// writes only its own line's result slots, so results never depend on it.
func replayOrder(cps []*engine.ConeProgram) []int {
	// Packed sort keys: (first output register + 1) high, cone size middle,
	// index low — one flat slices.Sort instead of a comparator sort.
	keys := make([]uint64, len(cps))
	for i, cp := range cps {
		var reg uint64
		if !cp.AlwaysProp() && len(cp.Outputs) > 0 {
			reg = uint64(cp.Outputs[0].Good) + 1
		}
		size := min(len(cp.Instrs), 1<<20-1)
		keys[i] = reg<<40 | uint64(size)<<20 | uint64(i)
	}
	slices.Sort(keys)
	order := make([]int, len(cps))
	for i, k := range keys {
		order[i] = int(k & (1<<20 - 1))
	}
	return order
}

// streamLines evaluates the good machine over U in word blocks and, for
// every requested line, replays the line-flipped fanout cone per block.
// emit(li, lo, prop, x) is called once per (line, block) pair with the
// block's propagation words (prop[w] bit b = flipping lines[li] changes
// some output at vector 64·(lo+w)+b) and the good-machine block x for
// activation masking. Callers must treat prop as read-only and write only
// into word range [lo, lo+len(prop)) of their results; emit may run
// concurrently for different lines or blocks, so the schedule is
// byte-identical for every worker count.
func (e *Exhaustive) streamLines(lines []int, emit func(li, lo int, prop []uint64, x *engine.Exec)) {
	if len(lines) == 0 {
		return
	}
	nWords := universeWords(e.Circuit.VectorSpaceSize())
	cps := e.conesFor(lines)
	order := replayOrder(cps)
	maxRegs := 0
	for _, cp := range cps {
		maxRegs = max(maxRegs, cp.NumRegs)
	}

	if nWords <= smallUniverseWords {
		// One shared good block, lines fan out across the workers, each
		// reusing pooled cone scratch.
		x := engine.NewExec(e.prog, nWords)
		x.Eval(0, nWords)
		ones := onesBlock[:nWords]
		var pool sync.Pool
		ParallelFor(e.Workers, len(lines), func(oi int) {
			li := order[oi]
			cp := cps[li]
			if cp.AlwaysProp() {
				emit(li, 0, ones, x)
				return
			}
			s, _ := pool.Get().(*lineScratch)
			if s == nil {
				s = &lineScratch{cx: engine.NewConeExec(nWords), prop: make([]uint64, nWords)}
				s.cx.Reserve(maxRegs)
			}
			s.cx.PropInto(cp, x, s.prop)
			emit(li, 0, s.prop, x)
			pool.Put(s)
		})
		return
	}

	// Large universe: blocks fan out, each worker streaming whole blocks
	// through every line with its own scratch register files.
	blockWords := blockWordsFor(nWords, e.Workers)
	var pool sync.Pool
	streamBlocks(e.prog, e.Workers, nWords, blockWords, func(lo, hi int, x *engine.Exec) {
		s, _ := pool.Get().(*lineScratch)
		if s == nil {
			s = &lineScratch{
				cx:   engine.NewConeExec(min(blockWords, nWords)),
				prop: make([]uint64, blockWords),
			}
			s.cx.Reserve(maxRegs)
		}
		for _, li := range order {
			cp := cps[li]
			if cp.AlwaysProp() {
				emit(li, lo, onesBlock[:hi-lo], x)
				continue
			}
			prop := s.prop[:hi-lo]
			s.cx.PropInto(cp, x, prop)
			emit(li, lo, prop, x)
		}
		pool.Put(s)
	})
}
