package sim

import (
	"fmt"

	"ndetect/internal/circuit"
	"ndetect/internal/fault"
)

// TV is a ternary logic value used by Definition 2's partial-vector
// simulation.
type TV uint8

// The three logic values.
const (
	Zero TV = iota
	One
	X
)

// String renders the value as 0, 1 or X.
func (t TV) String() string {
	switch t {
	case Zero:
		return "0"
	case One:
		return "1"
	default:
		return "X"
	}
}

func tvNot(a TV) TV {
	switch a {
	case Zero:
		return One
	case One:
		return Zero
	}
	return X
}

func tvAnd(a, b TV) TV {
	if a == Zero || b == Zero {
		return Zero
	}
	if a == One && b == One {
		return One
	}
	return X
}

func tvOr(a, b TV) TV {
	if a == One || b == One {
		return One
	}
	if a == Zero && b == Zero {
		return Zero
	}
	return X
}

func tvXor(a, b TV) TV {
	if a == X || b == X {
		return X
	}
	if a == b {
		return Zero
	}
	return One
}

// CommonTest builds the paper's t_ij: the partial test specified in the bits
// where the fully specified tests ti and tj agree, and X elsewhere.
// numInputs uses the same MSB-first convention as circuit.VectorBit.
func CommonTest(ti, tj uint64, numInputs int) []TV {
	p := make([]TV, numInputs)
	for i := 0; i < numInputs; i++ {
		bi := circuit.VectorBit(ti, i, numInputs)
		bj := circuit.VectorBit(tj, i, numInputs)
		switch {
		case bi != bj:
			p[i] = X
		case bi:
			p[i] = One
		default:
			p[i] = Zero
		}
	}
	return p
}

// FullTest renders a fully specified vector as a TV pattern.
func FullTest(t uint64, numInputs int) []TV {
	p := make([]TV, numInputs)
	for i := 0; i < numInputs; i++ {
		if circuit.VectorBit(t, i, numInputs) {
			p[i] = One
		} else {
			p[i] = Zero
		}
	}
	return p
}

// SimulateTV runs 3-valued simulation of the pattern (indexed by input
// position) with an optional stuck-at fault injected: if faultNode ≥ 0 that
// node is forced to faultVal. It returns all node values.
func SimulateTV(c *circuit.Circuit, pattern []TV, faultNode int, faultVal TV) []TV {
	if len(pattern) != c.NumInputs() {
		panic(fmt.Sprintf("sim: pattern length %d, want %d", len(pattern), c.NumInputs()))
	}
	vals := make([]TV, c.NumNodes())
	for i, id := range c.Inputs {
		vals[id] = pattern[i]
	}
	// A fault on an input node is handled like any other: inputs appear in
	// TopoOrder, so the override below applies uniformly.
	for _, id := range c.TopoOrder() {
		if id == faultNode {
			vals[id] = faultVal
			continue
		}
		n := c.Node(id)
		switch n.Kind {
		case circuit.Input:
			// assigned above
		case circuit.Const0:
			vals[id] = Zero
		case circuit.Const1:
			vals[id] = One
		case circuit.Buf, circuit.Branch:
			vals[id] = vals[n.Fanin[0]]
		case circuit.Not:
			vals[id] = tvNot(vals[n.Fanin[0]])
		case circuit.And, circuit.Nand:
			v := One
			for _, f := range n.Fanin {
				v = tvAnd(v, vals[f])
			}
			if n.Kind == circuit.Nand {
				v = tvNot(v)
			}
			vals[id] = v
		case circuit.Or, circuit.Nor:
			v := Zero
			for _, f := range n.Fanin {
				v = tvOr(v, vals[f])
			}
			if n.Kind == circuit.Nor {
				v = tvNot(v)
			}
			vals[id] = v
		case circuit.Xor, circuit.Xnor:
			v := Zero
			for _, f := range n.Fanin {
				v = tvXor(v, vals[f])
			}
			if n.Kind == circuit.Xnor {
				v = tvNot(v)
			}
			vals[id] = v
		}
	}
	return vals
}

// DetectsTV reports whether the (possibly partial) pattern detects the
// stuck-at fault under 3-valued simulation: some primary output must take
// definite, differing values in the good and faulty circuits. This is the
// check Definition 2 performs on t_ij: conservative in the usual 3-valued
// sense (an X at an output never counts as a detection).
func DetectsTV(c *circuit.Circuit, pattern []TV, f fault.StuckAt) bool {
	good := SimulateTV(c, pattern, -1, X)
	fv := Zero
	if f.Value {
		fv = One
	}
	// Activation in the 3-valued sense: if the good value at the fault site
	// equals the stuck value the fault is definitely not excited; if it is
	// X the faulty-machine output difference check below still applies
	// (both simulations run; an output difference requires definite values,
	// which cannot happen without definite excitation on some path).
	bad := SimulateTV(c, pattern, f.Node, fv)
	for _, o := range c.Outputs {
		if good[o] != X && bad[o] != X && good[o] != bad[o] {
			return true
		}
	}
	return false
}
