package sim

import (
	"fmt"
	"sort"
	"sync"

	"ndetect/internal/bitset"
	"ndetect/internal/fault"
)

// The semantic half of the fault-model registry: per model ID, the
// function that turns the model's enumerated descriptors into detection
// bitsets against the compiled engine. The structural half (enumeration,
// naming) lives in package fault, which cannot import the engine; the
// shared ID ties the halves together (DESIGN.md §12).

// ModelTSets builds both T-set families of one fault model: tT are the
// target sets in enumeration order (never filtered — undetectable targets
// stay, as in the paper), uT and kept are the untargeted sets with
// undetectable faults dropped, in enumeration order. step is called once
// per major stage with a short stage name for progress reporting.
type ModelTSets func(e *Exhaustive, targets, untargeted []fault.Descriptor,
	step func(stage string)) (tT, uT []*bitset.Set, kept []fault.Descriptor, err error)

var (
	buildersMu sync.RWMutex
	builders   = map[string]ModelTSets{}
)

// RegisterModelTSets registers the T-set builder for a model ID.
func RegisterModelTSets(id string, b ModelTSets) {
	buildersMu.Lock()
	defer buildersMu.Unlock()
	if _, dup := builders[id]; dup {
		panic(fmt.Sprintf("sim: T-set builder for model %q registered twice", id))
	}
	builders[id] = b
}

// ModelTSetsFor returns the T-set builder registered for a model ID.
func ModelTSetsFor(id string) (ModelTSets, error) {
	buildersMu.RLock()
	defer buildersMu.RUnlock()
	if b, ok := builders[id]; ok {
		return b, nil
	}
	ids := make([]string, 0, len(builders))
	for k := range builders {
		ids = append(ids, k)
	}
	sort.Strings(ids)
	return nil, fmt.Errorf("sim: no T-set builder registered for fault model %q (have %v)", id, ids)
}

// toStuckAt unpacks stuck-at-shaped descriptors.
func toStuckAt(ds []fault.Descriptor) []fault.StuckAt {
	out := make([]fault.StuckAt, len(ds))
	for i, d := range ds {
		out[i] = d.StuckAt()
	}
	return out
}

// defaultModelTSets is the paper's configuration: stuck-at target T-sets
// plus the detectable four-way bridge universe. Stage names and order
// ("stuck-at-tsets", "bridge-tsets") are part of the progress contract.
func defaultModelTSets(e *Exhaustive, targets, untargeted []fault.Descriptor,
	step func(stage string)) ([]*bitset.Set, []*bitset.Set, []fault.Descriptor, error) {
	if err := CheckResultBudget(e.Circuit, len(targets)+len(untargeted)); err != nil {
		return nil, nil, nil, err
	}
	brs := make([]fault.Bridge, len(untargeted))
	for i, d := range untargeted {
		brs[i] = d.Bridge()
	}
	step("stuck-at-tsets")
	saT := e.StuckAtTSets(toStuckAt(targets))
	step("bridge-tsets")
	brT := e.BridgeTSets(brs)
	var kept []fault.Descriptor
	var uT []*bitset.Set
	for i, t := range brT {
		if !t.IsEmpty() {
			kept = append(kept, untargeted[i])
			uT = append(uT, t)
		}
	}
	return saT, uT, kept, nil
}

func init() {
	RegisterModelTSets(fault.DefaultModelID, defaultModelTSets)
	RegisterModelTSets("transition", transitionModelTSets)
	RegisterModelTSets("msa2", msa2ModelTSets)
}
