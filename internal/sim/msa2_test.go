package sim

import (
	"testing"

	"ndetect/internal/circuit"
	"ndetect/internal/fault"
)

// evalForced is a test-local double-fault reference evaluator: circuit.Eval
// with the nodes in forced overridden to their stuck values, so masking
// between the two sites plays out exactly as in the real faulty machine.
func evalForced(c *circuit.Circuit, vector uint64, forced map[int]bool) []bool {
	vals := make([]bool, c.NumNodes())
	for i, id := range c.Inputs {
		vals[id] = circuit.VectorBit(vector, i, c.NumInputs())
	}
	for _, id := range c.TopoOrder() {
		if fv, ok := forced[id]; ok {
			vals[id] = fv
			continue
		}
		n := c.Node(id)
		switch n.Kind {
		case circuit.Input:
			// set above
		case circuit.Const0:
			vals[id] = false
		case circuit.Const1:
			vals[id] = true
		case circuit.Buf, circuit.Branch:
			vals[id] = vals[n.Fanin[0]]
		case circuit.Not:
			vals[id] = !vals[n.Fanin[0]]
		case circuit.And, circuit.Nand:
			v := true
			for _, f := range n.Fanin {
				v = v && vals[f]
			}
			vals[id] = v != (n.Kind == circuit.Nand)
		case circuit.Or, circuit.Nor:
			v := false
			for _, f := range n.Fanin {
				v = v || vals[f]
			}
			vals[id] = v != (n.Kind == circuit.Nor)
		case circuit.Xor, circuit.Xnor:
			v := false
			for _, f := range n.Fanin {
				v = v != vals[f]
			}
			vals[id] = v != (n.Kind == circuit.Xnor)
		}
	}
	return vals
}

// TestMSA2TSetsMatchNaive cross-checks the forced-cone pair builder against
// the reference evaluator, vector by vector: v detects the double stuck-at
// fault {A/V&1, B/V>>1} iff evaluating with both sites forced flips some
// primary output. This is exactly the masking-aware semantics (one fault
// can block the other's effect), so any single-fault shortcut in the
// builder would fail here.
func TestMSA2TSetsMatchNaive(t *testing.T) {
	c := embeddedCircuit(t, "c17")
	m, tT, uT, kept := buildModelTSets(t, c, "msa2")
	size := c.VectorSpaceSize()

	good := make([][]bool, size)
	for v := 0; v < size; v++ {
		good[v] = c.Eval(uint64(v))
	}

	keptIdx := make(map[fault.Descriptor]int, len(kept))
	for i, d := range kept {
		keptIdx[d] = i
	}
	for _, d := range fault.EnumerateSet(m, c, fault.UntargetedSet) {
		forced := map[int]bool{int(d.A): d.V&1 != 0, int(d.B): d.V&2 != 0}
		fname := m.Provider(fault.UntargetedSet).Name(c, d)
		i, isKept := keptIdx[d]
		detectable := false
		for v := 0; v < size; v++ {
			bad := evalForced(c, uint64(v), forced)
			want := false
			for _, o := range c.Outputs {
				if good[v][o] != bad[o] {
					want = true
					break
				}
			}
			detectable = detectable || want
			switch {
			case isKept:
				if got := uT[i].Contains(v); got != want {
					t.Fatalf("%s: vector %d: builder says %v, reference says %v", fname, v, got, want)
				}
			case want:
				t.Fatalf("%s: dropped as undetectable, but reference detects it at vector %d", fname, v)
			}
		}
		if isKept && !detectable {
			t.Errorf("%s: kept, but reference finds no detecting vector", fname)
		}
	}

	// Targets are the plain collapsed stuck-at sets over the single-vector
	// space, identical to the default model's.
	targets := fault.EnumerateSet(m, c, fault.TargetSet)
	if len(tT) != len(targets) {
		t.Fatalf("got %d target T-sets, want %d", len(tT), len(targets))
	}
	for i, d := range targets {
		naive := NaiveStuckAtTSet(c, d.StuckAt())
		for v := 0; v < size; v++ {
			if tT[i].Contains(v) != naive.Contains(v) {
				t.Fatalf("target %s: vector %d disagrees with naive", m.Provider(fault.TargetSet).Name(c, d), v)
			}
		}
	}
}
