// Package sim computes everything the analysis needs from a circuit by
// exhaustive simulation of its input space U:
//
//   - flip-propagation masks (per line, the vectors at which flipping the
//     line is visible at a primary output),
//   - the exhaustive detection sets T(f) for stuck-at faults and T(g) for
//     four-way bridging faults, and
//   - 3-valued (0/1/X) simulation with fault injection, used by the paper's
//     Definition 2 of distinct detections.
//
// The heavy lifting happens in package engine: circuits are compiled once
// into a levelized instruction program, and every analysis streams U in
// word blocks through that program, accumulating only the per-fault result
// bitsets. Per-node value bitsets over all of U are materialized only on
// request (RunRetained) for the ablation benchmarks and value-inspection
// tests.
//
// The paper's analysis "is based on the set U of all the input vectors of
// the circuit" and "can be done only for circuits with small numbers of
// inputs"; Run enforces the same restriction, though streaming moved the
// practical ceiling from 24 to 28 inputs.
package sim

import (
	"fmt"
	"sync"

	"ndetect/internal/bitset"
	"ndetect/internal/circuit"
	"ndetect/internal/engine"
)

// MaxInputs bounds the exhaustive analysis. The streaming engine keeps only
// O(registers · block) scratch per worker plus the per-fault result
// bitsets, so the bound is set by result memory and simulation time rather
// than by materializing per-node universes; 2^28 vectors is the practical
// ceiling for a laptop-scale run (the benchmarks in the paper all have at
// most 13 circuit inputs). Analyses whose results alone would not fit are
// rejected by CheckResultBudget.
const MaxInputs = 28

// MemoryBudget bounds, in bytes, the bitset memory a single analysis may
// materialize: the per-fault T-sets of a universe construction, or the
// per-node value sets of RunRetained. It exists so that raising MaxInputs
// cannot silently turn into a multi-gigabyte allocation — wide circuits
// with large fault universes must go through the partition package instead.
var MemoryBudget = int64(4) << 30

// CheckResultBudget returns an error when materializing `sets` result
// bitsets over the circuit's vector space would exceed MemoryBudget.
func CheckResultBudget(c *circuit.Circuit, sets int) error {
	bytes := int64(sets) * int64((c.VectorSpaceSize()+7)/8)
	if bytes > MemoryBudget {
		return fmt.Errorf("sim: circuit %q: %d result bitsets over |U| = 2^%d need %d MiB, over the %d MiB budget (raise sim.MemoryBudget or partition the circuit)",
			c.Name, sets, c.NumInputs(), bytes>>20, MemoryBudget>>20)
	}
	return nil
}

// CheckSpaceBudget is CheckResultBudget over an arbitrary test-index
// space: fault models whose T-sets range over something other than U
// itself (the transition model's U×U pair space) bound their result
// memory against the same budget.
func CheckSpaceBudget(name string, space int64, sets int) error {
	bytes := int64(sets) * ((space + 7) / 8)
	if bytes > MemoryBudget {
		return fmt.Errorf("sim: circuit %q: %d result bitsets over a space of %d indices need %d MiB, over the %d MiB budget (raise sim.MemoryBudget)",
			name, sets, space, bytes>>20, MemoryBudget>>20)
	}
	return nil
}

// Exhaustive is a compiled view of a circuit's exhaustive input space: the
// analyses derived from it (PropMasks, StuckAtTSets, BridgeTSets) stream U
// in word blocks through the compiled program, never materializing per-node
// value bitsets.
type Exhaustive struct {
	Circuit *Circuit

	// Values holds, per node, the bitset over U of vectors where the node
	// is 1. It is nil unless the simulation was built with RunRetained —
	// the opt-in escape hatch for the ablation benchmarks and for tests
	// that inspect individual node values.
	Values []*bitset.Set

	// Workers bounds the parallelism of every analysis derived from this
	// simulation. 0 means one worker per CPU; 1 reproduces the serial
	// execution order exactly. Output is identical for every value.
	Workers int

	prog *engine.Program

	mu    sync.Mutex
	cones map[int]*engine.ConeProgram
}

// Circuit aliases circuit.Circuit so callers reading this package's
// signatures see the dependency explicitly.
type Circuit = circuit.Circuit

// Run compiles the circuit for exhaustive streaming analysis, using one
// worker per CPU (see RunWorkers).
func Run(c *Circuit) (*Exhaustive, error) {
	return RunWorkers(c, 0)
}

// RunWorkers is Run with an explicit worker count (0 = one per CPU). It
// validates the input bound and lowers the circuit to the engine's
// levelized instruction program; the returned view computes all derived
// analyses by streaming U in word blocks, so no universe-sized memory is
// touched here.
func RunWorkers(c *Circuit, workers int) (*Exhaustive, error) {
	if m := c.NumInputs(); m > MaxInputs {
		return nil, fmt.Errorf("sim: circuit %q has %d inputs; exhaustive analysis is limited to %d (partition the circuit)", c.Name, m, MaxInputs)
	}
	return &Exhaustive{
		Circuit: c,
		Workers: workers,
		prog:    engine.CompileAll(c),
		cones:   make(map[int]*engine.ConeProgram),
	}, nil
}

// RunRetained is RunWorkers plus materialization of Values, the per-node
// bitsets over all of U that the pre-engine implementation always built.
// Only the ablation benchmarks and value-inspection tests need it; every
// production analysis streams instead. The materialization is checked
// against MemoryBudget.
func RunRetained(c *Circuit, workers int) (*Exhaustive, error) {
	e, err := RunWorkers(c, workers)
	if err != nil {
		return nil, err
	}
	if err := CheckResultBudget(c, c.NumNodes()); err != nil {
		return nil, err
	}
	size := c.VectorSpaceSize()
	e.Values = bitset.NewBatch(size, c.NumNodes())
	nWords := universeWords(size)
	streamBlocks(e.prog, e.Workers, nWords, blockWordsFor(nWords, e.Workers), func(lo, hi int, x *engine.Exec) {
		for id, set := range e.Values {
			set.SetRange(lo, x.Node(id))
		}
	})
	return e, nil
}

// streamBlocks evaluates the program over all universe words in blocks of
// blockWords, fanning blocks out over the workers, each with its own
// pooled execution context. emit is called once per evaluated block and
// must write only into word range [lo, hi) of its results — the invariant
// that keeps every schedule byte-identical.
func streamBlocks(prog *engine.Program, workers, nWords, blockWords int, emit func(lo, hi int, x *engine.Exec)) {
	blocks := blockRanges(nWords, blockWords)
	var pool sync.Pool
	ParallelFor(workers, len(blocks), func(bi int) {
		x, _ := pool.Get().(*engine.Exec)
		if x == nil {
			x = engine.NewExec(prog, min(blockWords, nWords))
		}
		x.Eval(blocks[bi][0], blocks[bi][1])
		emit(blocks[bi][0], blocks[bi][1], x)
		pool.Put(x)
	})
}

// newConeCompiler returns a cone compiler configured for this universe:
// fusion is disabled for small (one-block) universes, where each cone is
// replayed exactly once and the pass would cost more compile time than the
// replay saves. Replayed values are identical either way, so the cone cache
// never mixes semantics — only instruction encodings.
func (e *Exhaustive) newConeCompiler() *engine.ConeCompiler {
	cc := e.prog.NewConeCompiler()
	if universeWords(e.Circuit.VectorSpaceSize()) <= smallUniverseWords {
		cc.SetFusion(false)
	}
	return cc
}

// coneFor returns the compiled fanout cone of a line, cached per line.
func (e *Exhaustive) coneFor(id int) *engine.ConeProgram {
	e.mu.Lock()
	defer e.mu.Unlock()
	cp := e.cones[id]
	if cp == nil {
		cp = e.newConeCompiler().Compile([]int{id})
		e.cones[id] = cp
	}
	return cp
}

// conesFor returns the compiled fanout cones of all requested lines,
// compiling cache misses as one parallel batch with pooled compiler
// scratch (engine.ConeCompiler reuses its node-count marking arrays across
// an epoch counter, so a warm batch allocates only the programs
// themselves). Compilation is a pure function of (program, line), so the
// cached cones are identical for every worker count and batch order.
func (e *Exhaustive) conesFor(lines []int) []*engine.ConeProgram {
	cps := make([]*engine.ConeProgram, len(lines))
	var missing []int
	e.mu.Lock()
	for i, id := range lines {
		if cp := e.cones[id]; cp != nil {
			cps[i] = cp
		} else {
			missing = append(missing, i)
		}
	}
	e.mu.Unlock()
	if len(missing) == 0 {
		return cps
	}
	var pool sync.Pool
	ParallelFor(e.Workers, len(missing), func(k int) {
		cc, _ := pool.Get().(*engine.ConeCompiler)
		if cc == nil {
			cc = e.newConeCompiler()
		}
		i := missing[k]
		cps[i] = cc.Compile([]int{lines[i]})
		pool.Put(cc)
	})
	e.mu.Lock()
	for _, i := range missing {
		e.cones[lines[i]] = cps[i]
	}
	e.mu.Unlock()
	return cps
}

// Value returns the good value of node id at vector v. It requires a
// RunRetained simulation — the streaming view deliberately keeps no
// per-node universe.
func (e *Exhaustive) Value(id int, v int) bool {
	if e.Values == nil {
		panic("sim: Value requires RunRetained (the streaming view keeps no per-node universe)")
	}
	return e.Values[id].Contains(v)
}

// OutputVectors returns, per primary output, the bitset of vectors at which
// that output is 1, checking the result allocation against MemoryBudget.
// Without retained Values it streams an output-directed program — dead
// logic eliminated and registers reused, so the scratch is O(live
// registers · block).
func (e *Exhaustive) OutputVectors() ([]*bitset.Set, error) {
	c := e.Circuit
	if err := CheckResultBudget(c, len(c.Outputs)); err != nil {
		return nil, err
	}
	if e.Values != nil {
		out := make([]*bitset.Set, len(c.Outputs))
		for i, o := range c.Outputs {
			out[i] = e.Values[o].Clone()
		}
		return out, nil
	}
	prog := engine.Compile(c, nil)
	size := c.VectorSpaceSize()
	out := bitset.NewBatch(size, len(c.Outputs))
	nWords := universeWords(size)
	streamBlocks(prog, e.Workers, nWords, blockWordsFor(nWords, e.Workers), func(lo, hi int, x *engine.Exec) {
		for i, r := range prog.OutputReg {
			out[i].SetRange(lo, x.Reg(r))
		}
	})
	return out, nil
}

// universeWords returns the 64-bit word count covering a universe size.
func universeWords(size int) int { return (size + 63) / 64 }
