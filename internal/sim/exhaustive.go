// Package sim computes everything the analysis needs from a circuit by
// exhaustive simulation of its input space U:
//
//   - bit-parallel true-value simulation of all |U| = 2^m vectors,
//   - flip-propagation masks (per line, the vectors at which flipping the
//     line is visible at a primary output),
//   - the exhaustive detection sets T(f) for stuck-at faults and T(g) for
//     four-way bridging faults, and
//   - 3-valued (0/1/X) simulation with fault injection, used by the paper's
//     Definition 2 of distinct detections.
//
// The paper's analysis "is based on the set U of all the input vectors of
// the circuit" and "can be done only for circuits with small numbers of
// inputs"; Run enforces the same restriction.
package sim

import (
	"fmt"

	"ndetect/internal/bitset"
	"ndetect/internal/circuit"
)

// MaxInputs bounds the exhaustive analysis. 2^24 vectors × a few thousand
// lines is the practical ceiling for a laptop-scale run; the benchmarks in
// the paper all have at most 13 circuit inputs.
const MaxInputs = 24

// Exhaustive holds the true value of every node at every input vector:
// Values[id] is a bitset over U whose bit v is the value of node id under
// vector v.
type Exhaustive struct {
	Circuit *Circuit
	Values  []*bitset.Set

	// Workers bounds the parallelism of every analysis derived from this
	// simulation (PropMasks, StuckAtTSets, BridgeTSets) and of the word-
	// sharded propagation in RunWorkers. 0 means one worker per CPU; 1
	// reproduces the serial execution order exactly. Output is identical
	// for every value.
	Workers int
}

// Circuit aliases circuit.Circuit so callers reading this package's
// signatures see the dependency explicitly.
type Circuit = circuit.Circuit

// Run simulates all 2^m input vectors with 64-way bit parallelism, using one
// worker per CPU for large universes (see RunWorkers).
func Run(c *Circuit) (*Exhaustive, error) {
	return RunWorkers(c, 0)
}

// RunWorkers is Run with an explicit worker count (0 = one per CPU). For
// universes of at least 2^15 vectors the topological propagation is sharded
// into contiguous word ranges evaluated concurrently — every 64-bit word of
// every node value depends only on the same word of its fanins, so each
// shard runs the full topological order over its own slice of U and the
// result is byte-identical to the serial pass.
func RunWorkers(c *Circuit, workers int) (*Exhaustive, error) {
	m := c.NumInputs()
	if m > MaxInputs {
		return nil, fmt.Errorf("sim: circuit %q has %d inputs; exhaustive analysis is limited to %d (partition the circuit)", c.Name, m, MaxInputs)
	}
	size := 1 << uint(m)
	e := &Exhaustive{
		Circuit: c,
		Values:  make([]*bitset.Set, c.NumNodes()),
		Workers: workers,
	}
	for i := range e.Values {
		e.Values[i] = bitset.New(size)
	}

	// Input i (MSB-first: shift = m-1-i) has value (v >> shift) & 1 at
	// vector v. Within a 64-bit word covering vectors [64w, 64w+63], inputs
	// with shift ≥ 6 are constant; inputs with shift < 6 follow a fixed
	// alternating pattern.
	for i, id := range c.Inputs {
		shift := uint(m - 1 - i)
		dst := e.Values[id]
		words := dst.Words()
		if shift >= 6 {
			for w := range words {
				base := uint64(w) * 64
				if (base>>shift)&1 == 1 {
					dst.SetWord(w, ^uint64(0))
				}
			}
		} else {
			pat := alternating(shift)
			for w := range words {
				dst.SetWord(w, pat)
			}
		}
	}

	e.propagate(c.TopoOrder(), e.Values)
	return e, nil
}

// alternating returns the 64-bit pattern of bit position `shift` of the
// vector index: e.g. shift 0 → 0xAAAA...: bit v = (v >> 0) & 1.
func alternating(shift uint) uint64 {
	var pat uint64
	for v := uint(0); v < 64; v++ {
		if (v>>shift)&1 == 1 {
			pat |= 1 << v
		}
	}
	return pat
}

// propagate evaluates the given nodes (a topological sub-order) into vals.
// Input and overridden nodes must already be set; they are skipped by
// callers passing orders that exclude them. Large universes are split into
// contiguous word shards, each evaluated through the whole order by its own
// worker; word w of a node depends only on word w of its fanins, so the
// shards are independent and the result matches the serial pass exactly.
func (e *Exhaustive) propagate(order []int, vals []*bitset.Set) {
	c := e.Circuit
	nWords := len(e.Values[0].Words())
	shards := wordShards(e.Workers, nWords)
	if shards == nil {
		for _, id := range order {
			evalNodeWords(c, c.Node(id), vals, 0, nWords)
		}
		return
	}
	ParallelFor(len(shards), len(shards), func(s int) {
		lo, hi := shards[s][0], shards[s][1]
		for _, id := range order {
			evalNodeWords(c, c.Node(id), vals, lo, hi)
		}
	})
}

// evalNodeParallel computes one node's value words from its fanins' words.
// Inputs are left untouched.
func evalNodeParallel(c *Circuit, n *circuit.Node, vals []*bitset.Set) {
	evalNodeWords(c, n, vals, 0, len(vals[n.ID].Words()))
}

// evalNodeWords evaluates one node over the word range [lo, hi). Restricting
// the range is what makes sharded propagation possible; every case writes
// through SetWord so the final word's unused high bits stay masked.
func evalNodeWords(c *Circuit, n *circuit.Node, vals []*bitset.Set, lo, hi int) {
	out := vals[n.ID]
	switch n.Kind {
	case circuit.Input:
		// set by Run
	case circuit.Const0:
		for w := lo; w < hi; w++ {
			out.SetWord(w, 0)
		}
	case circuit.Const1:
		for w := lo; w < hi; w++ {
			out.SetWord(w, ^uint64(0))
		}
	case circuit.Buf, circuit.Branch:
		src := vals[n.Fanin[0]].Words()
		for w := lo; w < hi; w++ {
			out.SetWord(w, src[w])
		}
	case circuit.Not:
		src := vals[n.Fanin[0]].Words()
		for w := lo; w < hi; w++ {
			out.SetWord(w, ^src[w])
		}
	case circuit.And, circuit.Nand:
		for w := lo; w < hi; w++ {
			acc := ^uint64(0)
			for _, f := range n.Fanin {
				acc &= vals[f].Words()[w]
			}
			if n.Kind == circuit.Nand {
				acc = ^acc
			}
			out.SetWord(w, acc)
		}
	case circuit.Or, circuit.Nor:
		for w := lo; w < hi; w++ {
			acc := uint64(0)
			for _, f := range n.Fanin {
				acc |= vals[f].Words()[w]
			}
			if n.Kind == circuit.Nor {
				acc = ^acc
			}
			out.SetWord(w, acc)
		}
	case circuit.Xor, circuit.Xnor:
		for w := lo; w < hi; w++ {
			acc := uint64(0)
			for _, f := range n.Fanin {
				acc ^= vals[f].Words()[w]
			}
			if n.Kind == circuit.Xnor {
				acc = ^acc
			}
			out.SetWord(w, acc)
		}
	default:
		panic(fmt.Sprintf("sim: unknown kind %v", n.Kind))
	}
}

// Value returns the good value of node id at vector v.
func (e *Exhaustive) Value(id int, v int) bool {
	return e.Values[id].Contains(v)
}

// OutputVectors returns, per primary output, the bitset of vectors at which
// that output is 1.
func (e *Exhaustive) OutputVectors() []*bitset.Set {
	out := make([]*bitset.Set, len(e.Circuit.Outputs))
	for i, o := range e.Circuit.Outputs {
		out[i] = e.Values[o].Clone()
	}
	return out
}
