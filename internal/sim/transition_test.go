package sim

import (
	"testing"

	"ndetect/internal/bitset"
	"ndetect/internal/circuit"
	"ndetect/internal/fault"
)

func embeddedCircuit(t *testing.T, name string) *circuit.Circuit {
	t.Helper()
	c, err := circuit.EmbeddedBench(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// buildModelTSets runs the registered T-set builder for a model against c,
// exactly as BuildUniverse would: descriptors from the structural half,
// bitsets from the semantic half.
func buildModelTSets(t *testing.T, c *circuit.Circuit, id string) (fault.Model, []*bitset.Set, []*bitset.Set, []fault.Descriptor) {
	t.Helper()
	m, err := fault.Resolve(id)
	if err != nil {
		t.Fatal(err)
	}
	build, err := ModelTSetsFor(id)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	tT, uT, kept, err := build(e,
		fault.EnumerateSet(m, c, fault.TargetSet),
		fault.EnumerateSet(m, c, fault.UntargetedSet),
		func(string) {})
	if err != nil {
		t.Fatal(err)
	}
	return m, tT, uT, kept
}

// TestTransitionTSetsMatchNaive cross-checks the outer-product transition
// builder against the definitional membership rule, pair by pair: (v1, v2)
// detects a transition fault on line l mimicking stuck value V iff l
// carries V at v1 (initialization) and v2 detects l stuck-at-V (launch),
// with the launch factor taken from the scalar reference simulator.
// c17 (|U| = 32) exercises liftProduct's bit loop; s27 (|U| = 128) the
// word-aligned row fast path.
func TestTransitionTSetsMatchNaive(t *testing.T) {
	for _, name := range []string{"c17", "s27"} {
		t.Run(name, func(t *testing.T) {
			c := embeddedCircuit(t, name)
			m, tT, uT, kept := buildModelTSets(t, c, "transition")
			size := c.VectorSpaceSize()

			// Node values per initialization vector, from the reference
			// evaluator (not the engine under test).
			vals := make([][]bool, size)
			for v := 0; v < size; v++ {
				vals[v] = c.Eval(uint64(v))
			}

			keptIdx := make(map[fault.Descriptor]int, len(kept))
			for i, d := range kept {
				keptIdx[d] = i
			}
			for _, d := range fault.EnumerateSet(m, c, fault.UntargetedSet) {
				naiveDet := NaiveStuckAtTSet(c, d.StuckAt())
				fname := m.Provider(fault.UntargetedSet).Name(c, d)
				i, isKept := keptIdx[d]
				detectable := false
				for v1 := 0; v1 < size; v1++ {
					init := vals[v1][d.A] == (d.V != 0)
					for v2 := 0; v2 < size; v2++ {
						want := init && naiveDet.Contains(v2)
						detectable = detectable || want
						switch {
						case isKept:
							if got := uT[i].Contains(v1*size + v2); got != want {
								t.Fatalf("%s: pair (%d,%d): builder says %v, naive says %v", fname, v1, v2, got, want)
							}
						case want:
							t.Fatalf("%s: dropped as undetectable, but naive detects it at (%d,%d)", fname, v1, v2)
						}
					}
				}
				if isKept && !detectable {
					t.Errorf("%s: kept, but naive finds no detecting pair", fname)
				}
			}

			// Lifted stuck-at targets: a two-pattern test applies both of
			// its vectors, so (v1, v2) ∈ T_pair(f) iff either coordinate is
			// in the single-vector T(f).
			targets := fault.EnumerateSet(m, c, fault.TargetSet)
			if len(tT) != len(targets) {
				t.Fatalf("got %d target T-sets, want %d (targets are never filtered)", len(tT), len(targets))
			}
			for i, d := range targets {
				naive := NaiveStuckAtTSet(c, d.StuckAt())
				fname := m.Provider(fault.TargetSet).Name(c, d)
				for v1 := 0; v1 < size; v1++ {
					for v2 := 0; v2 < size; v2++ {
						want := naive.Contains(v1) || naive.Contains(v2)
						if got := tT[i].Contains(v1*size + v2); got != want {
							t.Fatalf("target %s: pair (%d,%d): lifted says %v, naive says %v", fname, v1, v2, got, want)
						}
					}
				}
			}
		})
	}
}
