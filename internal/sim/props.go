package sim

import (
	"slices"
	"sort"

	"ndetect/internal/bitset"
	"ndetect/internal/engine"
)

// PropMask computes, for one line, the set of vectors at which flipping that
// line's value changes at least one primary output. A fault whose only
// effect is "line id takes the opposite of its good value" — which covers
// both a stuck-at fault at its activation vectors and a dominance bridge at
// its activation vectors — is detected exactly on (activation ∩ PropMask).
//
// The mask is computed by streaming U in word blocks: per block, the good
// machine is evaluated once and the line's compiled fanout cone is replayed
// against the flipped value.
func (e *Exhaustive) PropMask(id int) *bitset.Set {
	return e.PropMasks([]int{id})[id]
}

// PropMasks computes PropMask for a set of lines. IDs are deduplicated and
// the result is keyed by node ID. The streaming runs on e.Workers workers —
// lines fan out for small universes, blocks for large ones — and every
// schedule writes the same words, so the result is identical for any worker
// count.
func (e *Exhaustive) PropMasks(ids []int) map[int]*bitset.Set {
	uniq := append([]int(nil), ids...)
	sort.Ints(uniq)
	uniq = slices.Compact(uniq)

	size := e.Circuit.VectorSpaceSize()
	sets := bitset.NewBatch(size, len(uniq))
	e.streamLines(uniq, func(li, lo int, prop []uint64, _ *engine.Exec) {
		sets[li].SetRange(lo, prop)
	})

	out := make(map[int]*bitset.Set, len(uniq))
	for i, id := range uniq {
		out[id] = sets[i]
	}
	return out
}
