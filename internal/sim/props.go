package sim

import (
	"slices"
	"sort"

	"ndetect/internal/bitset"
)

// PropMask computes, for one line, the set of vectors at which flipping that
// line's value changes at least one primary output. A fault whose only
// effect is "line id takes the opposite of its good value" — which covers
// both a stuck-at fault at its activation vectors and a dominance bridge at
// its activation vectors — is detected exactly on (activation ∩ PropMask).
//
// The mask is computed with one bit-parallel forward resimulation restricted
// to the transitive fanout cone of the line.
func (e *Exhaustive) PropMask(id int) *bitset.Set {
	c := e.Circuit
	size := e.Values[0].Size()

	inCone := c.TransitiveFanout(id)
	cone := make([]int, 0, 16)
	for _, nid := range c.TopoOrder() {
		if inCone[nid] && nid != id {
			cone = append(cone, nid)
		}
	}

	// Faulty values: shared backing for out-of-cone nodes, fresh sets for
	// the cone. The flipped source is a fresh set too.
	faulty := make([]*bitset.Set, len(e.Values))
	copy(faulty, e.Values)
	flipped := bitset.New(size)
	good := e.Values[id].Words()
	for w := range flipped.Words() {
		flipped.SetWord(w, ^good[w])
	}
	faulty[id] = flipped
	for _, nid := range cone {
		faulty[nid] = bitset.New(size)
	}
	for _, nid := range cone {
		evalNodeParallel(c, c.Node(nid), faulty)
	}

	diff := bitset.New(size)
	dw := diff.Words()
	for _, o := range c.Outputs {
		gw := e.Values[o].Words()
		fw := faulty[o].Words()
		for w := range dw {
			diff.SetWord(w, dw[w]|(gw[w]^fw[w]))
		}
	}
	return diff
}

// PropMasks computes PropMask for a set of lines, caching nothing between
// lines (each line's cone resimulation is independent). IDs are deduplicated
// and the result is keyed by node ID. The per-line resimulations — the hot
// loop of T-set construction — run on e.Workers workers, each writing its
// own pre-allocated slot, so the result is identical for any worker count.
func (e *Exhaustive) PropMasks(ids []int) map[int]*bitset.Set {
	uniq := append([]int(nil), ids...)
	sort.Ints(uniq)
	uniq = slices.Compact(uniq)

	sets := make([]*bitset.Set, len(uniq))
	ParallelFor(e.Workers, len(uniq), func(i int) {
		sets[i] = e.PropMask(uniq[i])
	})

	out := make(map[int]*bitset.Set, len(uniq))
	for i, id := range uniq {
		out[id] = sets[i]
	}
	return out
}
