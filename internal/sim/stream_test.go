package sim

import (
	"math/rand"
	"runtime"
	"strconv"
	"testing"

	"ndetect/internal/circuit"
	"ndetect/internal/fault"
)

// saturationCircuit builds a circuit engineered so that cone replay
// saturates on its first output segment: s = AND(x0,x1) feeds o1 =
// XOR(s,x2), so flipping s flips o1 at every vector (an all-ones first
// diff that is NOT an AlwaysProp chain — XOR breaks the Buf/Not argument),
// and the second output o2 = AND(s,x3) is droppable. The padding inputs
// push the universe to 2^15 vectors = 512 words, so the block-parallel
// path runs with many blocks per worker.
func saturationCircuit(t *testing.T) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("sat")
	pad := make([]string, 0, 11)
	for i := 0; i < 15; i++ {
		n := "x" + strconv.Itoa(i)
		b.Input(n)
		if i >= 4 {
			pad = append(pad, n)
		}
	}
	b.Gate(circuit.And, "s", "x0", "x1")
	b.Gate(circuit.Xor, "o1", "s", "x2")
	b.Gate(circuit.And, "o2", "s", "x3")
	b.Gate(circuit.Or, "o3", pad...)
	b.Output("o1")
	b.Output("o2")
	b.Output("o3")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return c
}

// TestSaturationDroppingDeterministic pins the fault-dropping contract of
// the prefix-batched replay (DESIGN.md §9): once a propagation mask
// saturates to all-ones, the remaining output segments are skipped — a cut
// that depends only on register data, never on worker schedule. On a
// circuit engineered to saturate after the first segment, every analysis
// must be byte-identical between one worker and eight.
func TestSaturationDroppingDeterministic(t *testing.T) {
	c := saturationCircuit(t)
	e1, err := RunWorkers(c, 1)
	if err != nil {
		t.Fatalf("RunWorkers(1): %v", err)
	}
	e8, err := RunWorkers(c, 8)
	if err != nil {
		t.Fatalf("RunWorkers(8): %v", err)
	}

	faults := fault.AllStuckAt(c)
	t1 := e1.StuckAtTSets(faults)
	t8 := e8.StuckAtTSets(faults)
	for i := range faults {
		if !t1[i].Equal(t8[i]) {
			t.Fatalf("fault %s: T-sets differ between 1 and 8 workers", faults[i].Name(c))
		}
	}

	ids := make([]int, c.NumNodes())
	for i := range ids {
		ids[i] = i
	}
	m1 := e1.PropMasks(ids)
	m8 := e8.PropMasks(ids)
	for _, id := range ids {
		if !m1[id].Equal(m8[id]) {
			t.Fatalf("node %d: prop masks differ between 1 and 8 workers", id)
		}
	}

	// Spot-check the engineered saturation against first principles: s's
	// flip reaches o1 = XOR(s, x2) at every vector, so its mask is all of U.
	sn, _ := c.NodeByName("s")
	if got, want := m1[sn.ID].Count(), c.VectorSpaceSize(); got != want {
		t.Fatalf("prop mask of s has %d vectors, want the full universe %d", got, want)
	}
}

// TestStreamingWarmConesAllocationGuard extends the allocation guard to
// the steady state: with the cone cache warm, a repeated T-set
// construction may allocate the per-fault result slabs plus pooled
// per-worker scratch — and nothing per (line, block). The bound is an
// allocation *count* (objects, not bytes), because per-(line,block)
// garbage shows up as thousands of small objects while the legitimate
// slabs are a handful of large ones.
func TestStreamingWarmConesAllocationGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := randomCircuit(t, rng, 20, 40)
	e, err := RunWorkers(c, 1)
	if err != nil {
		t.Fatalf("RunWorkers: %v", err)
	}
	faults := fault.AllStuckAt(c)
	cold := e.StuckAtTSets(faults) // compiles and caches every cone

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	warm := e.StuckAtTSets(faults)
	runtime.ReadMemStats(&after)

	for i := range faults {
		if !cold[i].Equal(warm[i]) {
			t.Fatalf("fault %s: warm T-set differs from cold", faults[i].Name(c))
		}
	}

	// Legitimate warm-run objects: the result slab (NewBatch: ~3 objects
	// for all faults), grouping arrays, the replay order, and pooled
	// per-worker scratch. Per-(line,block) garbage on this circuit would
	// be ~lines × blocks ≈ 80 × 64 ≈ 5000 objects on its own; per-fault
	// bitset allocation would add 2 × len(faults). Both must stay
	// impossible under the 600-object budget.
	allocs := int64(after.Mallocs - before.Mallocs)
	if allocs > 600 {
		t.Fatalf("warm streaming run allocated %d objects for %d faults, budget 600", allocs, len(faults))
	}
	t.Logf("warm streaming run: %d objects, %d bytes for %d faults over 2^%d vectors",
		allocs, after.TotalAlloc-before.TotalAlloc, len(faults), c.NumInputs())
}
