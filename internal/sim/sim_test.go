package sim

import (
	"math/rand"
	"testing"

	"ndetect/internal/circuit"
	"ndetect/internal/fault"
)

// testCircuit builds the 4-input example used across the sim tests:
// f = (i1∧i2) ∨ (i2∧i3∧i4), plus a second output h = ¬(i3∧i4).
func testCircuit(t *testing.T) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("simtest")
	b.Input("i1")
	b.Input("i2")
	b.Input("i3")
	b.Input("i4")
	b.Gate(circuit.And, "g9", "i1", "i2")
	b.Gate(circuit.And, "g10", "i2", "i3", "i4")
	b.Gate(circuit.Or, "g11", "g9", "g10")
	b.Gate(circuit.Nand, "g12", "i3", "i4")
	b.Output("g11")
	b.Output("g12")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return c
}

// randomCircuit builds a random normalized DAG circuit for cross-checks.
func randomCircuit(t *testing.T, rng *rand.Rand, inputs, gates int) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("rand")
	names := make([]string, 0, inputs+gates)
	for i := 0; i < inputs; i++ {
		n := "x" + itoa(i)
		b.Input(n)
		names = append(names, n)
	}
	kinds := []circuit.Kind{circuit.And, circuit.Or, circuit.Nand, circuit.Nor, circuit.Xor, circuit.Xnor, circuit.Not, circuit.Buf}
	for g := 0; g < gates; g++ {
		kind := kinds[rng.Intn(len(kinds))]
		n := "g" + itoa(g)
		if kind == circuit.Not || kind == circuit.Buf {
			b.Gate(kind, n, names[rng.Intn(len(names))])
		} else {
			nf := 2 + rng.Intn(3)
			perm := rng.Perm(len(names))
			fins := make([]string, 0, nf)
			for _, p := range perm[:min(nf, len(perm))] {
				fins = append(fins, names[p])
			}
			b.Gate(kind, n, fins...)
		}
		names = append(names, n)
	}
	// Outputs: the last few gates.
	nOut := 1 + rng.Intn(3)
	for i := 0; i < nOut; i++ {
		b.Output("g" + itoa(gates-1-i))
	}
	c, err := b.Build()
	if err != nil {
		t.Fatalf("random Build: %v", err)
	}
	return c
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf []byte
	for i > 0 {
		buf = append([]byte{byte('0' + i%10)}, buf...)
		i /= 10
	}
	return string(buf)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestRunMatchesScalarEval(t *testing.T) {
	c := testCircuit(t)
	e, err := Run(c)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for v := 0; v < c.VectorSpaceSize(); v++ {
		want := c.Eval(uint64(v))
		for id := range c.Nodes {
			if got := e.Value(id, v); got != want[id] {
				t.Fatalf("node %s at v=%d: parallel %v, scalar %v", c.Node(id).Name, v, got, want[id])
			}
		}
	}
}

func TestRunMatchesScalarEvalRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		c := randomCircuit(t, rng, 3+rng.Intn(6), 5+rng.Intn(25))
		e, err := Run(c)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		for v := 0; v < c.VectorSpaceSize(); v++ {
			want := c.Eval(uint64(v))
			for id := range c.Nodes {
				if got := e.Value(id, v); got != want[id] {
					t.Fatalf("trial %d node %d v=%d: parallel %v scalar %v", trial, id, v, got, want[id])
				}
			}
		}
	}
}

func TestRunRejectsWideCircuits(t *testing.T) {
	b := circuit.NewBuilder("wide")
	names := make([]string, 26)
	for i := range names {
		names[i] = "x" + itoa(i)
		b.Input(names[i])
	}
	b.Gate(circuit.And, "g", names...)
	b.Output("g")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := Run(c); err == nil {
		t.Fatal("Run accepted a 26-input circuit")
	}
}

func TestAlternatingPatterns(t *testing.T) {
	for shift := uint(0); shift < 6; shift++ {
		pat := alternating(shift)
		for v := uint(0); v < 64; v++ {
			want := (v>>shift)&1 == 1
			if got := pat&(1<<v) != 0; got != want {
				t.Fatalf("alternating(%d) bit %d = %v, want %v", shift, v, got, want)
			}
		}
	}
}

func TestStuckAtTSetsMatchNaive(t *testing.T) {
	c := testCircuit(t)
	e, err := Run(c)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	faults := fault.AllStuckAt(c)
	tsets := e.StuckAtTSets(faults)
	for i, f := range faults {
		want := NaiveStuckAtTSet(c, f)
		if !tsets[i].Equal(want) {
			t.Fatalf("fault %s: parallel %s, naive %s", f.Name(c), tsets[i], want)
		}
	}
}

func TestStuckAtTSetsMatchNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		c := randomCircuit(t, rng, 4+rng.Intn(4), 8+rng.Intn(15))
		e, err := Run(c)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		faults := fault.AllStuckAt(c)
		tsets := e.StuckAtTSets(faults)
		for i, f := range faults {
			want := NaiveStuckAtTSet(c, f)
			if !tsets[i].Equal(want) {
				t.Fatalf("trial %d fault %s: parallel %s, naive %s", trial, f.Name(c), tsets[i], want)
			}
		}
	}
}

func TestBridgeTSetsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		c := randomCircuit(t, rng, 4+rng.Intn(4), 8+rng.Intn(15))
		e, err := Run(c)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		bridges := fault.Bridges(c)
		tsets := e.BridgeTSets(bridges)
		for i, g := range bridges {
			want := NaiveBridgeTSet(c, g)
			if !tsets[i].Equal(want) {
				t.Fatalf("trial %d bridge %s: parallel %s, naive %s", trial, g.Name(c), tsets[i], want)
			}
		}
	}
}

func TestKnownTSets(t *testing.T) {
	// In testCircuit: g12 = NAND(i3,i4). Fault i3/0 (on the branch feeding
	// g12... the stem i3 fans out). Check a stem fault instead: output g11
	// stuck-at-0 is detected wherever g11=1.
	c := testCircuit(t)
	e, err := Run(c)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	g11, _ := c.NodeByName("g11")
	// g11 may fan out only to the output (no branches), so its prop mask is
	// the full space and T(g11/0) = ON-set of f.
	fs := []fault.StuckAt{{Node: g11.ID, Value: false}, {Node: g11.ID, Value: true}}
	ts := e.StuckAtTSets(fs)
	for v := 0; v < 16; v++ {
		i1 := circuit.VectorBit(uint64(v), 0, 4)
		i2 := circuit.VectorBit(uint64(v), 1, 4)
		i3 := circuit.VectorBit(uint64(v), 2, 4)
		i4 := circuit.VectorBit(uint64(v), 3, 4)
		on := (i1 && i2) || (i2 && i3 && i4)
		if ts[0].Contains(v) != on {
			t.Fatalf("T(g11/0) wrong at %d", v)
		}
		if ts[1].Contains(v) != !on {
			t.Fatalf("T(g11/1) wrong at %d", v)
		}
	}
}

func TestPropMaskOfUnobservableNode(t *testing.T) {
	// A node that doesn't reach any output has an empty prop mask.
	b := circuit.NewBuilder("dangling")
	b.Input("a")
	b.Input("c")
	b.Gate(circuit.And, "used", "a", "c")
	b.Gate(circuit.Or, "unused", "a", "c")
	b.Output("used")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	e, err := Run(c)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	un, _ := c.NodeByName("unused")
	if !e.PropMask(un.ID).IsEmpty() {
		t.Fatal("unobservable node has non-empty prop mask")
	}
}

func TestNaiveExhaustiveMatchesRun(t *testing.T) {
	c := testCircuit(t)
	e, _ := Run(c)
	naive := NaiveExhaustive(c)
	for id := range c.Nodes {
		if !e.Values[id].Equal(naive[id]) {
			t.Fatalf("node %d differs", id)
		}
	}
}

func TestOutputVectors(t *testing.T) {
	c := testCircuit(t)
	e, _ := Run(c)
	outs := e.OutputVectors()
	if len(outs) != 2 {
		t.Fatalf("outputs = %d", len(outs))
	}
	for v := 0; v < 16; v++ {
		want := c.OutputsOf(c.Eval(uint64(v)))
		if outs[0].Contains(v) != want[0] || outs[1].Contains(v) != want[1] {
			t.Fatalf("OutputVectors wrong at %d", v)
		}
	}
}
