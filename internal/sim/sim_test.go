package sim

import (
	"math/rand"
	"runtime"
	"strconv"
	"testing"

	"ndetect/internal/circuit"
	"ndetect/internal/fault"
)

// testCircuit builds the 4-input example used across the sim tests:
// f = (i1∧i2) ∨ (i2∧i3∧i4), plus a second output h = ¬(i3∧i4).
func testCircuit(t *testing.T) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("simtest")
	b.Input("i1")
	b.Input("i2")
	b.Input("i3")
	b.Input("i4")
	b.Gate(circuit.And, "g9", "i1", "i2")
	b.Gate(circuit.And, "g10", "i2", "i3", "i4")
	b.Gate(circuit.Or, "g11", "g9", "g10")
	b.Gate(circuit.Nand, "g12", "i3", "i4")
	b.Output("g11")
	b.Output("g12")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return c
}

// randomCircuit builds a random normalized DAG circuit for cross-checks.
func randomCircuit(t *testing.T, rng *rand.Rand, inputs, gates int) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("rand")
	names := make([]string, 0, inputs+gates)
	for i := 0; i < inputs; i++ {
		n := "x" + strconv.Itoa(i)
		b.Input(n)
		names = append(names, n)
	}
	kinds := []circuit.Kind{circuit.And, circuit.Or, circuit.Nand, circuit.Nor, circuit.Xor, circuit.Xnor, circuit.Not, circuit.Buf}
	for g := 0; g < gates; g++ {
		kind := kinds[rng.Intn(len(kinds))]
		n := "g" + strconv.Itoa(g)
		if kind == circuit.Not || kind == circuit.Buf {
			b.Gate(kind, n, names[rng.Intn(len(names))])
		} else {
			nf := 2 + rng.Intn(3)
			perm := rng.Perm(len(names))
			fins := make([]string, 0, nf)
			for _, p := range perm[:min(nf, len(perm))] {
				fins = append(fins, names[p])
			}
			b.Gate(kind, n, fins...)
		}
		names = append(names, n)
	}
	// Outputs: the last few gates.
	nOut := 1 + rng.Intn(3)
	for i := 0; i < nOut; i++ {
		b.Output("g" + strconv.Itoa(gates-1-i))
	}
	c, err := b.Build()
	if err != nil {
		t.Fatalf("random Build: %v", err)
	}
	return c
}

func TestRunMatchesScalarEval(t *testing.T) {
	c := testCircuit(t)
	e, err := RunRetained(c, 0)
	if err != nil {
		t.Fatalf("RunRetained: %v", err)
	}
	for v := 0; v < c.VectorSpaceSize(); v++ {
		want := c.Eval(uint64(v))
		for id := range c.Nodes {
			if got := e.Value(id, v); got != want[id] {
				t.Fatalf("node %s at v=%d: parallel %v, scalar %v", c.Node(id).Name, v, got, want[id])
			}
		}
	}
}

func TestRunMatchesScalarEvalRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		c := randomCircuit(t, rng, 3+rng.Intn(6), 5+rng.Intn(25))
		e, err := RunRetained(c, 0)
		if err != nil {
			t.Fatalf("RunRetained: %v", err)
		}
		for v := 0; v < c.VectorSpaceSize(); v++ {
			want := c.Eval(uint64(v))
			for id := range c.Nodes {
				if got := e.Value(id, v); got != want[id] {
					t.Fatalf("trial %d node %d v=%d: parallel %v scalar %v", trial, id, v, got, want[id])
				}
			}
		}
	}
}

func TestRunRejectsWideCircuits(t *testing.T) {
	b := circuit.NewBuilder("wide")
	names := make([]string, MaxInputs+2)
	for i := range names {
		names[i] = "x" + strconv.Itoa(i)
		b.Input(names[i])
	}
	b.Gate(circuit.And, "g", names...)
	b.Output("g")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := Run(c); err == nil {
		t.Fatalf("Run accepted a %d-input circuit", MaxInputs+2)
	}
}

func TestStuckAtTSetsMatchNaive(t *testing.T) {
	c := testCircuit(t)
	e, err := Run(c)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	faults := fault.AllStuckAt(c)
	tsets := e.StuckAtTSets(faults)
	for i, f := range faults {
		want := NaiveStuckAtTSet(c, f)
		if !tsets[i].Equal(want) {
			t.Fatalf("fault %s: parallel %s, naive %s", f.Name(c), tsets[i], want)
		}
	}
}

func TestStuckAtTSetsMatchNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		c := randomCircuit(t, rng, 4+rng.Intn(4), 8+rng.Intn(15))
		e, err := Run(c)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		faults := fault.AllStuckAt(c)
		tsets := e.StuckAtTSets(faults)
		for i, f := range faults {
			want := NaiveStuckAtTSet(c, f)
			if !tsets[i].Equal(want) {
				t.Fatalf("trial %d fault %s: parallel %s, naive %s", trial, f.Name(c), tsets[i], want)
			}
		}
	}
}

func TestBridgeTSetsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		c := randomCircuit(t, rng, 4+rng.Intn(4), 8+rng.Intn(15))
		e, err := Run(c)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		bridges := fault.Bridges(c)
		tsets := e.BridgeTSets(bridges)
		for i, g := range bridges {
			want := NaiveBridgeTSet(c, g)
			if !tsets[i].Equal(want) {
				t.Fatalf("trial %d bridge %s: parallel %s, naive %s", trial, g.Name(c), tsets[i], want)
			}
		}
	}
}

func TestKnownTSets(t *testing.T) {
	// In testCircuit: g12 = NAND(i3,i4). Fault i3/0 (on the branch feeding
	// g12... the stem i3 fans out). Check a stem fault instead: output g11
	// stuck-at-0 is detected wherever g11=1.
	c := testCircuit(t)
	e, err := Run(c)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	g11, _ := c.NodeByName("g11")
	// g11 may fan out only to the output (no branches), so its prop mask is
	// the full space and T(g11/0) = ON-set of f.
	fs := []fault.StuckAt{{Node: g11.ID, Value: false}, {Node: g11.ID, Value: true}}
	ts := e.StuckAtTSets(fs)
	for v := 0; v < 16; v++ {
		i1 := circuit.VectorBit(uint64(v), 0, 4)
		i2 := circuit.VectorBit(uint64(v), 1, 4)
		i3 := circuit.VectorBit(uint64(v), 2, 4)
		i4 := circuit.VectorBit(uint64(v), 3, 4)
		on := (i1 && i2) || (i2 && i3 && i4)
		if ts[0].Contains(v) != on {
			t.Fatalf("T(g11/0) wrong at %d", v)
		}
		if ts[1].Contains(v) != !on {
			t.Fatalf("T(g11/1) wrong at %d", v)
		}
	}
}

func TestPropMaskOfUnobservableNode(t *testing.T) {
	// A node that doesn't reach any output has an empty prop mask.
	b := circuit.NewBuilder("dangling")
	b.Input("a")
	b.Input("c")
	b.Gate(circuit.And, "used", "a", "c")
	b.Gate(circuit.Or, "unused", "a", "c")
	b.Output("used")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	e, err := Run(c)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	un, _ := c.NodeByName("unused")
	if !e.PropMask(un.ID).IsEmpty() {
		t.Fatal("unobservable node has non-empty prop mask")
	}
}

func TestNaiveExhaustiveMatchesRun(t *testing.T) {
	c := testCircuit(t)
	e, _ := RunRetained(c, 0)
	naive := NaiveExhaustive(c)
	for id := range c.Nodes {
		if !e.Values[id].Equal(naive[id]) {
			t.Fatalf("node %d differs", id)
		}
	}
}

func TestOutputVectors(t *testing.T) {
	c := testCircuit(t)
	// Both the retained fast path and the streaming output-directed path
	// must agree with the scalar reference.
	retained, _ := RunRetained(c, 0)
	streaming, _ := Run(c)
	for name, e := range map[string]*Exhaustive{"retained": retained, "streaming": streaming} {
		outs, err := e.OutputVectors()
		if err != nil {
			t.Fatalf("%s: OutputVectors: %v", name, err)
		}
		if len(outs) != 2 {
			t.Fatalf("%s: outputs = %d", name, len(outs))
		}
		for v := 0; v < 16; v++ {
			want := c.OutputsOf(c.Eval(uint64(v)))
			if outs[0].Contains(v) != want[0] || outs[1].Contains(v) != want[1] {
				t.Fatalf("%s: OutputVectors wrong at %d", name, v)
			}
		}
	}
}

// ---- Engine acceptance tests -------------------------------------------
//
// `go test -run Engine -v` exercises the streaming-kernel contract: all
// three compiled widths agree with the retained naive reference, the
// streaming path materializes no per-node universe bitsets, and circuits
// wider than the old 24-input ceiling pass.

// TestEngineModesAgreeRandom is the fuzz cross-check harness: random
// circuits run through the compiled width-1 (scalar), word-block, and
// dual-rail modes, asserting exact agreement with the retained naive
// references (circuit.Eval for two-valued, SimulateTV for three-valued).
func TestEngineModesAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		c := randomCircuit(t, rng, 3+rng.Intn(6), 5+rng.Intn(25))
		e, err := RunWorkers(c, 1+rng.Intn(4))
		if err != nil {
			t.Fatalf("trial %d RunWorkers: %v", trial, err)
		}
		faults := fault.AllStuckAt(c)
		word := e.StuckAtTSets(faults) // word-block streaming

		for fi, f := range faults {
			scalar := NaiveStuckAtTSet(c, f) // compiled width-1
			if !word[fi].Equal(scalar) {
				t.Fatalf("trial %d fault %s: word-block %s, width-1 %s",
					trial, f.Name(c), word[fi], scalar)
			}
			// Dual-rail mode on fully specified patterns must agree with
			// T-set membership vector by vector.
			fc := NewFaultCone(c, f.Node)
			for base := 0; base < c.VectorSpaceSize(); base += 64 {
				var patterns [][]TV
				for v := base; v < c.VectorSpaceSize() && v < base+64; v++ {
					patterns = append(patterns, FullTest(uint64(v), c.NumInputs()))
				}
				for j, det := range fc.DetectsTVBatch(patterns, f.Value) {
					if det != word[fi].Contains(base+j) {
						t.Fatalf("trial %d fault %s v=%d: dual-rail %v, T-set %v",
							trial, f.Name(c), base+j, det, word[fi].Contains(base+j))
					}
				}
			}
		}

		// Width-1 good machine vs the retained scalar reference.
		naive := NaiveExhaustive(c)
		for v := 0; v < c.VectorSpaceSize(); v++ {
			want := c.Eval(uint64(v))
			for id := range c.Nodes {
				if naive[id].Contains(v) != want[id] {
					t.Fatalf("trial %d node %d v=%d: width-1 %v, reference %v",
						trial, id, v, naive[id].Contains(v), want[id])
				}
			}
		}
		if len(faults) > 0 {
			f := faults[rng.Intn(len(faults))]
			fc := NewFaultCone(c, f.Node)
			for iter := 0; iter < 20; iter++ {
				ti := uint64(rng.Intn(c.VectorSpaceSize()))
				tj := uint64(rng.Intn(c.VectorSpaceSize()))
				p := CommonTest(ti, tj, c.NumInputs())
				if got, want := fc.DetectsTV(p, f.Value), DetectsTV(c, p, f); got != want {
					t.Fatalf("trial %d fault %s t_%d,%d: dual-rail %v, reference %v",
						trial, f.Name(c), ti, tj, got, want)
				}
			}
		}
	}
}

// TestEngineStreamingAllocatesNoUniverse pins the memory contract of the
// tentpole: T-set construction over a 2^20-vector universe must allocate
// only the per-fault result bitsets plus block-sized scratch — far less
// than one per-node universe bitset per node (the old sim.Run allocated
// NumNodes of them before any T-set work started).
func TestEngineStreamingAllocatesNoUniverse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := randomCircuit(t, rng, 20, 40)
	e, err := RunWorkers(c, 1)
	if err != nil {
		t.Fatalf("RunWorkers: %v", err)
	}
	faults := fault.AllStuckAt(c)[:2]

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	tsets := e.StuckAtTSets(faults)
	runtime.ReadMemStats(&after)
	if len(tsets) != 2 || tsets[0].Size() != c.VectorSpaceSize() {
		t.Fatal("unexpected T-set shape")
	}

	allocated := int64(after.TotalAlloc - before.TotalAlloc)
	universeBytes := int64(c.VectorSpaceSize() / 8)
	// Budget: well under one materialized per-node pass, which would need
	// NumNodes × universeBytes before any T-set work began. The bound is
	// relative (a third of that) rather than results+scratch because
	// sync.Pool deliberately drops items under the race detector, inflating
	// scratch reallocation.
	budget := int64(c.NumNodes()) * universeBytes / 3
	if allocated > budget {
		t.Fatalf("streaming T-sets allocated %d bytes, budget %d (universe bitset = %d bytes, %d nodes)",
			allocated, budget, universeBytes, c.NumNodes())
	}
	t.Logf("streaming allocated %d bytes for 2 T-sets over 2^20 vectors (one per-node universe pass would be ≥ %d bytes)",
		allocated, int64(c.NumNodes())*universeBytes)
}

// TestEngineWideCircuit runs a 28-input circuit through the streaming path
// — the old materializing implementation refused anything over 24 inputs.
// The circuit is AND(OR(x0..x13), OR(x14..x27)), whose T-sets have closed
// forms: the root's stuck-at-0 set is the ON-set of size (2^14 − 1)^2.
func TestEngineWideCircuit(t *testing.T) {
	b := circuit.NewBuilder("wide28")
	half := make([][]string, 2)
	for i := 0; i < 28; i++ {
		n := "x" + strconv.Itoa(i)
		b.Input(n)
		half[i/14] = append(half[i/14], n)
	}
	b.Gate(circuit.Or, "l", half[0]...)
	b.Gate(circuit.Or, "r", half[1]...)
	b.Gate(circuit.And, "root", "l", "r")
	b.Output("root")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if c.NumInputs() != 28 {
		t.Fatalf("inputs = %d", c.NumInputs())
	}

	e, err := RunWorkers(c, 0)
	if err != nil {
		t.Fatalf("RunWorkers refused a 28-input circuit: %v", err)
	}
	root, _ := c.NodeByName("root")
	ts := e.StuckAtTSets([]fault.StuckAt{
		{Node: root.ID, Value: false},
		{Node: root.ID, Value: true},
	})

	on := (1<<14 - 1) * (1<<14 - 1)
	if got := ts[0].Count(); got != on {
		t.Fatalf("|T(root/0)| = %d, want %d", got, on)
	}
	if got := ts[1].Count(); got != c.VectorSpaceSize()-on {
		t.Fatalf("|T(root/1)| = %d, want %d", got, c.VectorSpaceSize()-on)
	}
	all := c.VectorSpaceSize() - 1
	if !ts[0].Contains(all) || ts[0].Contains(0) || !ts[1].Contains(0) {
		t.Fatal("T-set membership wrong at the corner vectors")
	}
}

// TestEngineBudgetCheck pins the explicit memory-budget guard that made
// raising MaxInputs safe.
func TestEngineBudgetCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	c := randomCircuit(t, rng, 20, 10)
	old := MemoryBudget
	defer func() { MemoryBudget = old }()
	MemoryBudget = 1 << 20 // 1 MiB: a 2^20-vector universe set is 128 KiB
	if err := CheckResultBudget(c, 4); err != nil {
		t.Fatalf("4 sets × 128 KiB must fit a 1 MiB budget: %v", err)
	}
	if err := CheckResultBudget(c, 100); err == nil {
		t.Fatal("100 sets × 128 KiB passed a 1 MiB budget")
	}
	if _, err := RunRetained(c, 1); err == nil {
		t.Fatal("RunRetained materialized past the budget")
	}
}
