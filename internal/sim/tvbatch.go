package sim

import (
	"ndetect/internal/circuit"
)

// Dual-rail bit-parallel 3-valued simulation: up to 64 partial patterns are
// simulated at once. Each node carries two words (p1, p0); bit j of p1/p0
// says pattern j's value can be 1/0. Definite 1 = (1,0), definite 0 =
// (0,1), X = (1,1). The Kleene operators become word operations:
//
//	NOT: swap     AND: p1 = a1&b1, p0 = a0|b0     OR: p1 = a1|b1, p0 = a0&b0
//
// Definition 2's checker burns nearly all its time deciding whether the
// common-bits test t_ij detects a fault, for many pairs against the same
// fault; this batching answers 64 of those per circuit pass.

// DetectsTVBatch evaluates up to 64 patterns at once and reports, per
// pattern, whether it detects the cone's fault (site stuck at stuckVal).
// Semantically identical to calling DetectsTV per pattern.
func (fc *FaultCone) DetectsTVBatch(patterns [][]TV, stuckVal bool) []bool {
	k := len(patterns)
	if k == 0 {
		return nil
	}
	if k > 64 {
		panic("sim: DetectsTVBatch takes at most 64 patterns")
	}
	out := make([]bool, k)
	if len(fc.outputs) == 0 {
		return out
	}
	c := fc.c

	n := c.NumNodes()
	g1 := make([]uint64, n)
	g0 := make([]uint64, n)
	for i, id := range c.Inputs {
		var p1, p0 uint64
		for j, p := range patterns {
			switch p[i] {
			case One:
				p1 |= 1 << uint(j)
			case Zero:
				p0 |= 1 << uint(j)
			default:
				p1 |= 1 << uint(j)
				p0 |= 1 << uint(j)
			}
		}
		g1[id], g0[id] = p1, p0
	}

	// Good machine on the site's fanin cone; early exit on patterns where
	// the site is not definitely excited.
	for _, id := range fc.tfiOrder {
		evalNodeTVDual(c, c.Node(id), g1, g0)
	}
	var excited uint64
	if stuckVal {
		excited = g0[fc.site] &^ g1[fc.site] // good site definitely 0, fault s-a-1
	} else {
		excited = g1[fc.site] &^ g0[fc.site]
	}
	if excited == 0 {
		return out
	}

	for _, id := range c.TopoOrder() {
		if !fc.tfi[id] {
			evalNodeTVDual(c, c.Node(id), g1, g0)
		}
	}

	b1 := make([]uint64, n)
	b0 := make([]uint64, n)
	copy(b1, g1)
	copy(b0, g0)
	if stuckVal {
		b1[fc.site], b0[fc.site] = ^uint64(0), 0
	} else {
		b1[fc.site], b0[fc.site] = 0, ^uint64(0)
	}
	for _, id := range fc.order {
		evalNodeTVDual(c, c.Node(id), b1, b0)
	}

	var detect uint64
	for _, oi := range fc.outputs {
		o := c.Outputs[oi]
		goodDef1 := g1[o] &^ g0[o]
		goodDef0 := g0[o] &^ g1[o]
		badDef1 := b1[o] &^ b0[o]
		badDef0 := b0[o] &^ b1[o]
		detect |= (goodDef1 & badDef0) | (goodDef0 & badDef1)
	}
	detect &= excited
	for j := range patterns {
		out[j] = detect&(1<<uint(j)) != 0
	}
	return out
}

// evalNodeTVDual evaluates one node in dual-rail encoding.
func evalNodeTVDual(c *circuit.Circuit, n *circuit.Node, p1, p0 []uint64) {
	switch n.Kind {
	case circuit.Input:
		// assigned by the caller
	case circuit.Const0:
		p1[n.ID], p0[n.ID] = 0, ^uint64(0)
	case circuit.Const1:
		p1[n.ID], p0[n.ID] = ^uint64(0), 0
	case circuit.Buf, circuit.Branch:
		f := n.Fanin[0]
		p1[n.ID], p0[n.ID] = p1[f], p0[f]
	case circuit.Not:
		f := n.Fanin[0]
		p1[n.ID], p0[n.ID] = p0[f], p1[f]
	case circuit.And, circuit.Nand:
		a1, a0 := ^uint64(0), uint64(0)
		for _, f := range n.Fanin {
			a1 &= p1[f]
			a0 |= p0[f]
		}
		if n.Kind == circuit.Nand {
			a1, a0 = a0, a1
		}
		p1[n.ID], p0[n.ID] = a1, a0
	case circuit.Or, circuit.Nor:
		a1, a0 := uint64(0), ^uint64(0)
		for _, f := range n.Fanin {
			a1 |= p1[f]
			a0 &= p0[f]
		}
		if n.Kind == circuit.Nor {
			a1, a0 = a0, a1
		}
		p1[n.ID], p0[n.ID] = a1, a0
	case circuit.Xor, circuit.Xnor:
		// Fold pairwise: out1 = a1·b0 + a0·b1, out0 = a1·b1 + a0·b0,
		// starting from definite 0.
		a1, a0 := uint64(0), ^uint64(0)
		for _, f := range n.Fanin {
			n1 := (a1 & p0[f]) | (a0 & p1[f])
			n0 := (a1 & p1[f]) | (a0 & p0[f])
			a1, a0 = n1, n0
		}
		if n.Kind == circuit.Xnor {
			a1, a0 = a0, a1
		}
		p1[n.ID], p0[n.ID] = a1, a0
	}
}
