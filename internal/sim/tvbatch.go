package sim

// Dual-rail bit-parallel 3-valued simulation: up to 64 partial patterns are
// simulated at once through the compiled program's dual-rail interpreter
// (engine.ExecTV). Each register carries two words (p1, p0); bit j of
// p1/p0 says pattern j's value can be 1/0. Definite 1 = (1,0), definite 0 =
// (0,1), X = (1,1). The Kleene operators become word operations:
//
//	NOT: swap     AND: p1 = a1&b1, p0 = a0|b0     OR: p1 = a1|b1, p0 = a0&b0
//
// Definition 2's checker burns nearly all its time deciding whether the
// common-bits test t_ij detects a fault, for many pairs against the same
// fault; this batching answers 64 of those per circuit pass.

// DetectsTVBatch evaluates up to 64 patterns at once and reports, per
// pattern, whether it detects the cone's fault (site stuck at stuckVal).
// Semantically identical to calling DetectsTV per pattern.
func (fc *FaultCone) DetectsTVBatch(patterns [][]TV, stuckVal bool) []bool {
	k := len(patterns)
	if k == 0 {
		return nil
	}
	if k > 64 {
		panic("sim: DetectsTVBatch takes at most 64 patterns")
	}
	out := make([]bool, k)
	if len(fc.outputs) == 0 {
		return out
	}
	c := fc.c
	prog := fc.prog

	n := prog.NumRegs // register r holds node r (CompileAll)
	g1 := make([]uint64, n)
	g0 := make([]uint64, n)
	for i, id := range c.Inputs {
		var p1, p0 uint64
		for j, p := range patterns {
			switch p[i] {
			case One:
				p1 |= 1 << uint(j)
			case Zero:
				p0 |= 1 << uint(j)
			default:
				p1 |= 1 << uint(j)
				p0 |= 1 << uint(j)
			}
		}
		g1[id], g0[id] = p1, p0
	}

	// Good machine on the site's fanin cone; early exit on patterns where
	// the site is not definitely excited.
	prog.ExecTV(fc.tfiOrder, g1, g0)
	var excited uint64
	if stuckVal {
		excited = g0[fc.site] &^ g1[fc.site] // good site definitely 0, fault s-a-1
	} else {
		excited = g1[fc.site] &^ g0[fc.site]
	}
	if excited == 0 {
		return out
	}

	prog.ExecTV(fc.rest, g1, g0)

	b1 := make([]uint64, n)
	b0 := make([]uint64, n)
	copy(b1, g1)
	copy(b0, g0)
	if stuckVal {
		b1[fc.site], b0[fc.site] = ^uint64(0), 0
	} else {
		b1[fc.site], b0[fc.site] = 0, ^uint64(0)
	}
	prog.ExecTV(fc.order, b1, b0)

	var detect uint64
	for _, oi := range fc.outputs {
		o := c.Outputs[oi]
		goodDef1 := g1[o] &^ g0[o]
		goodDef0 := g0[o] &^ g1[o]
		badDef1 := b1[o] &^ b0[o]
		badDef0 := b0[o] &^ b1[o]
		detect |= (goodDef1 & badDef0) | (goodDef0 & badDef1)
	}
	detect &= excited
	for j := range patterns {
		out[j] = detect&(1<<uint(j)) != 0
	}
	return out
}
