// Package bitset provides dense bit sets over the exhaustive input space
// U = {0, 1, ..., size-1} of a combinational circuit.
//
// Every object the n-detection analysis manipulates — the test set T(f) of a
// target fault, the test set T(g) of an untargeted fault, and the test sets
// constructed by Procedure 1 — is a subset of U and is represented by a Set.
// The worst-case analysis reduces to popcounts of intersections of such sets,
// so Set is optimized for word-parallel boolean operations and population
// counting.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-universe dense bit set. The zero value is unusable; create
// sets with New. All binary operations require operands drawn from the same
// universe size and panic otherwise, since mixing universes is always a
// programming error in this code base.
type Set struct {
	size  int
	words []uint64
}

// New returns an empty set over the universe {0, ..., size-1}.
func New(size int) *Set {
	if size < 0 {
		panic("bitset: negative universe size")
	}
	return &Set{
		size:  size,
		words: make([]uint64, (size+wordBits-1)/wordBits),
	}
}

// NewBatch returns n empty sets over the same universe backed by two
// allocations (one word slab, one header array) instead of 2n. Analyses
// that materialize one result set per fault use it so the allocation count
// and GC scan work stay independent of the fault count; the returned sets
// are otherwise ordinary and independently mutable.
func NewBatch(size, n int) []*Set {
	if size < 0 {
		panic("bitset: negative universe size")
	}
	words := (size + wordBits - 1) / wordBits
	slab := make([]uint64, n*words)
	hdrs := make([]Set, n)
	out := make([]*Set, n)
	for i := range hdrs {
		hdrs[i] = Set{size: size, words: slab[i*words : (i+1)*words : (i+1)*words]}
		out[i] = &hdrs[i]
	}
	return out
}

// FromMembers returns a set over {0,...,size-1} containing exactly the given
// members.
func FromMembers(size int, members ...int) *Set {
	s := New(size)
	for _, m := range members {
		s.Add(m)
	}
	return s
}

// Size returns the universe size (not the number of members; see Count).
func (s *Set) Size() int { return s.size }

// Words exposes the backing words for read-only word-parallel consumers such
// as the bit-parallel simulator. The final word's unused high bits are zero.
func (s *Set) Words() []uint64 { return s.words }

// SetWord overwrites the w-th 64-bit word. Bits beyond the universe size are
// masked off, preserving the invariant that unused high bits stay zero.
func (s *Set) SetWord(w int, v uint64) {
	if w == len(s.words)-1 {
		if rem := s.size % wordBits; rem != 0 {
			v &= (uint64(1) << rem) - 1
		}
	}
	s.words[w] = v
}

// maskTail re-masks the final word after a range store ending at word hi,
// preserving the invariant that bits beyond the universe size stay zero.
func (s *Set) maskTail(hi int) {
	if hi == len(s.words) {
		if rem := s.size % wordBits; rem != 0 {
			s.words[hi-1] &= (uint64(1) << rem) - 1
		}
	}
}

// SetRange overwrites words [lo, lo+len(p)) with p, masking bits beyond
// the universe size. The range stores exist for the streaming emit path:
// one call per (fault, block) instead of one SetWord call per word.
func (s *Set) SetRange(lo int, p []uint64) {
	copy(s.words[lo:lo+len(p)], p)
	s.maskTail(lo + len(p))
}

// SetRangeNot overwrites words [lo, lo+len(p)) with ^p[w].
func (s *Set) SetRangeNot(lo int, p []uint64) {
	dst := s.words[lo : lo+len(p)]
	for w := range dst {
		dst[w] = ^p[w]
	}
	s.maskTail(lo + len(p))
}

// SetRangeAnd overwrites words [lo, lo+len(p)) with p[w] & m[w].
func (s *Set) SetRangeAnd(lo int, p, m []uint64) {
	dst := s.words[lo : lo+len(p)]
	p, m = p[:len(dst)], m[:len(dst)]
	for w := range dst {
		dst[w] = p[w] & m[w]
	}
	s.maskTail(lo + len(p))
}

// SetRangeAndNot overwrites words [lo, lo+len(p)) with p[w] &^ m[w].
func (s *Set) SetRangeAndNot(lo int, p, m []uint64) {
	dst := s.words[lo : lo+len(p)]
	p, m = p[:len(dst)], m[:len(dst)]
	for w := range dst {
		dst[w] = p[w] &^ m[w]
	}
	s.maskTail(lo + len(p))
}

// SplitRangeAnd overwrites andSet's words [lo, lo+len(p)) with p[w] & m[w]
// and andNotSet's with p[w] &^ m[w] in one pass over the operands. The
// paired stuck-at emit (sa0 activated where the good value is 1, sa1 where
// it is 0) is the hot caller: one line's propagation block splits into both
// polarities' T-sets reading p and m once instead of twice.
func SplitRangeAnd(andSet, andNotSet *Set, lo int, p, m []uint64) {
	da := andSet.words[lo : lo+len(p)]
	dn := andNotSet.words[lo : lo+len(da)]
	p, m = p[:len(da)], m[:len(da)]
	for w := range da {
		pw, mw := p[w], m[w]
		da[w] = pw & mw
		dn[w] = pw &^ mw
	}
	andSet.maskTail(lo + len(p))
	andNotSet.maskTail(lo + len(p))
}

// SetRangeAndAndNot overwrites words [lo, lo+len(p)) with
// p[w] & a[w] &^ b[w].
func (s *Set) SetRangeAndAndNot(lo int, p, a, b []uint64) {
	dst := s.words[lo : lo+len(p)]
	a, b = a[:len(p)], b[:len(p)]
	for w := range dst {
		dst[w] = p[w] & a[w] &^ b[w]
	}
	s.maskTail(lo + len(p))
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.size {
		panic(fmt.Sprintf("bitset: index %d out of universe [0,%d)", i, s.size))
	}
}

// Add inserts member i.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove deletes member i.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Contains reports whether i is a member.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of members.
func (s *Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether the set has no members.
func (s *Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	c := New(s.size)
	copy(c.words, s.words)
	return c
}

// Clear removes all members.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill inserts every member of the universe.
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	if rem := s.size % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] = (uint64(1) << rem) - 1
	}
}

func (s *Set) sameUniverse(t *Set) {
	if s.size != t.size {
		panic(fmt.Sprintf("bitset: universe mismatch %d vs %d", s.size, t.size))
	}
}

// IntersectWith makes s the intersection s ∩ t.
func (s *Set) IntersectWith(t *Set) {
	s.sameUniverse(t)
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// UnionWith makes s the union s ∪ t.
func (s *Set) UnionWith(t *Set) {
	s.sameUniverse(t)
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// DifferenceWith makes s the difference s − t.
func (s *Set) DifferenceWith(t *Set) {
	s.sameUniverse(t)
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
}

// Intersection returns a new set s ∩ t.
func (s *Set) Intersection(t *Set) *Set {
	c := s.Clone()
	c.IntersectWith(t)
	return c
}

// Union returns a new set s ∪ t.
func (s *Set) Union(t *Set) *Set {
	c := s.Clone()
	c.UnionWith(t)
	return c
}

// Difference returns a new set s − t.
func (s *Set) Difference(t *Set) *Set {
	c := s.Clone()
	c.DifferenceWith(t)
	return c
}

// IntersectionCount returns |s ∩ t| without allocating.
// This is M(g,f) in the paper's worst-case analysis.
func (s *Set) IntersectionCount(t *Set) int {
	s.sameUniverse(t)
	n := 0
	for i, w := range s.words {
		n += bits.OnesCount64(w & t.words[i])
	}
	return n
}

// Intersects reports whether s ∩ t is non-empty without allocating.
func (s *Set) Intersects(t *Set) bool {
	s.sameUniverse(t)
	for i, w := range s.words {
		if w&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and t have the same universe and members.
func (s *Set) Equal(t *Set) bool {
	if s.size != t.size {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every member of s is a member of t.
func (s *Set) SubsetOf(t *Set) bool {
	s.sameUniverse(t)
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for every member in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Members returns the members in increasing order.
func (s *Set) Members() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// Nth returns the n-th member (0-based) in increasing order, or -1 if the set
// has fewer than n+1 members. It is used to draw a uniformly random member by
// indexing with a random n < Count().
func (s *Set) Nth(n int) int {
	if n < 0 {
		return -1
	}
	for wi, w := range s.words {
		c := bits.OnesCount64(w)
		if n >= c {
			n -= c
			continue
		}
		for ; w != 0; w &= w - 1 {
			if n == 0 {
				return wi*wordBits + bits.TrailingZeros64(w)
			}
			n--
		}
	}
	return -1
}

// String renders the members like "{0, 3, 7}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}
