package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if !s.IsEmpty() {
		t.Fatal("new set should be empty")
	}
	if s.Count() != 0 {
		t.Fatalf("Count() = %d, want 0", s.Count())
	}
	if s.Size() != 100 {
		t.Fatalf("Size() = %d, want 100", s.Size())
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Fatalf("fresh set contains %d", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("set does not contain %d after Add", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count() = %d, want 8", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("set contains 64 after Remove")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count() = %d, want 7", got)
	}
}

func TestAddIdempotent(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(3)
	if got := s.Count(); got != 1 {
		t.Fatalf("Count() = %d, want 1", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	cases := []func(*Set){
		func(s *Set) { s.Add(-1) },
		func(s *Set) { s.Add(10) },
		func(s *Set) { s.Contains(10) },
		func(s *Set) { s.Remove(-1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn(New(10))
		}()
	}
}

func TestUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on universe mismatch")
		}
	}()
	New(10).IntersectWith(New(11))
}

func TestFill(t *testing.T) {
	for _, size := range []int{1, 63, 64, 65, 128, 200} {
		s := New(size)
		s.Fill()
		if got := s.Count(); got != size {
			t.Fatalf("size %d: Count() after Fill = %d", size, got)
		}
		// No stray bits beyond the universe: Clone+Fill+Difference is empty.
		u := New(size)
		u.Fill()
		u.DifferenceWith(s)
		if !u.IsEmpty() {
			t.Fatalf("size %d: difference of two full sets not empty", size)
		}
	}
}

func TestSetWordMasksTail(t *testing.T) {
	s := New(70) // two words, 6 live bits in word 1
	s.SetWord(1, ^uint64(0))
	if got := s.Count(); got != 6 {
		t.Fatalf("Count() = %d, want 6 (tail bits must be masked)", got)
	}
	s.SetWord(0, ^uint64(0))
	if got := s.Count(); got != 70 {
		t.Fatalf("Count() = %d, want 70", got)
	}
}

func TestBooleanOps(t *testing.T) {
	a := FromMembers(16, 1, 2, 3, 8)
	b := FromMembers(16, 2, 3, 4, 9)

	if got := a.Intersection(b).Members(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Intersection = %v, want [2 3]", got)
	}
	if got := a.Union(b).Count(); got != 6 {
		t.Fatalf("Union count = %d, want 6", got)
	}
	if got := a.Difference(b).Members(); len(got) != 2 || got[0] != 1 || got[1] != 8 {
		t.Fatalf("Difference = %v, want [1 8]", got)
	}
	if got := a.IntersectionCount(b); got != 2 {
		t.Fatalf("IntersectionCount = %d, want 2", got)
	}
	if !a.Intersects(b) {
		t.Fatal("a should intersect b")
	}
	if a.Intersects(FromMembers(16, 0, 15)) {
		t.Fatal("a should not intersect {0,15}")
	}
}

func TestEqualSubset(t *testing.T) {
	a := FromMembers(16, 1, 2)
	b := FromMembers(16, 1, 2)
	c := FromMembers(16, 1, 2, 3)
	if !a.Equal(b) {
		t.Fatal("a should equal b")
	}
	if a.Equal(c) {
		t.Fatal("a should not equal c")
	}
	if a.Equal(FromMembers(17, 1, 2)) {
		t.Fatal("different universes are never equal")
	}
	if !a.SubsetOf(c) {
		t.Fatal("a ⊆ c")
	}
	if c.SubsetOf(a) {
		t.Fatal("c ⊄ a")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromMembers(16, 1)
	b := a.Clone()
	b.Add(2)
	if a.Contains(2) {
		t.Fatal("Clone is not independent")
	}
}

func TestForEachOrder(t *testing.T) {
	a := FromMembers(200, 199, 0, 64, 63, 100)
	var got []int
	a.ForEach(func(i int) { got = append(got, i) })
	want := []int{0, 63, 64, 100, 199}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
}

func TestNth(t *testing.T) {
	a := FromMembers(200, 5, 70, 130, 199)
	for i, want := range []int{5, 70, 130, 199} {
		if got := a.Nth(i); got != want {
			t.Fatalf("Nth(%d) = %d, want %d", i, got, want)
		}
	}
	if got := a.Nth(4); got != -1 {
		t.Fatalf("Nth(4) = %d, want -1", got)
	}
	if got := a.Nth(-1); got != -1 {
		t.Fatalf("Nth(-1) = %d, want -1", got)
	}
}

func TestString(t *testing.T) {
	if got := FromMembers(16, 6, 7).String(); got != "{6, 7}" {
		t.Fatalf("String() = %q", got)
	}
	if got := New(4).String(); got != "{}" {
		t.Fatalf("String() = %q", got)
	}
}

// randomSet builds a random set and its reference map representation.
func randomSet(rng *rand.Rand, size int) (*Set, map[int]bool) {
	s := New(size)
	ref := make(map[int]bool)
	n := rng.Intn(size)
	for i := 0; i < n; i++ {
		v := rng.Intn(size)
		s.Add(v)
		ref[v] = true
	}
	return s, ref
}

func TestQuickAgainstMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		size := 1 + rng.Intn(300)
		a, ra := randomSet(rng, size)
		b, rb := randomSet(rng, size)

		inter := a.Intersection(b)
		union := a.Union(b)
		diff := a.Difference(b)
		for i := 0; i < size; i++ {
			if inter.Contains(i) != (ra[i] && rb[i]) {
				t.Fatalf("trial %d: intersection wrong at %d", trial, i)
			}
			if union.Contains(i) != (ra[i] || rb[i]) {
				t.Fatalf("trial %d: union wrong at %d", trial, i)
			}
			if diff.Contains(i) != (ra[i] && !rb[i]) {
				t.Fatalf("trial %d: difference wrong at %d", trial, i)
			}
		}
		if a.IntersectionCount(b) != inter.Count() {
			t.Fatalf("trial %d: IntersectionCount disagrees with materialized count", trial)
		}
		if a.Intersects(b) != (inter.Count() > 0) {
			t.Fatalf("trial %d: Intersects disagrees", trial)
		}
	}
}

func TestQuickProperties(t *testing.T) {
	// De Morgan-ish and algebraic identities on a fixed universe, driven by
	// testing/quick generating member lists.
	const size = 190
	mk := func(xs []uint16) *Set {
		s := New(size)
		for _, x := range xs {
			s.Add(int(x) % size)
		}
		return s
	}

	commutative := func(xs, ys []uint16) bool {
		a, b := mk(xs), mk(ys)
		return a.Intersection(b).Equal(b.Intersection(a)) &&
			a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(commutative, nil); err != nil {
		t.Error(err)
	}

	absorption := func(xs, ys []uint16) bool {
		a, b := mk(xs), mk(ys)
		return a.Union(a.Intersection(b)).Equal(a) &&
			a.Intersection(a.Union(b)).Equal(a)
	}
	if err := quick.Check(absorption, nil); err != nil {
		t.Error(err)
	}

	inclusionExclusion := func(xs, ys []uint16) bool {
		a, b := mk(xs), mk(ys)
		return a.Union(b).Count() == a.Count()+b.Count()-a.IntersectionCount(b)
	}
	if err := quick.Check(inclusionExclusion, nil); err != nil {
		t.Error(err)
	}

	differencePartition := func(xs, ys []uint16) bool {
		a, b := mk(xs), mk(ys)
		// a = (a−b) ⊎ (a∩b)
		d := a.Difference(b)
		i := a.Intersection(b)
		return d.Count()+i.Count() == a.Count() && !d.Intersects(i) || (d.IsEmpty() || i.IsEmpty())
	}
	if err := quick.Check(differencePartition, nil); err != nil {
		t.Error(err)
	}
}

func TestNthUniformCoverage(t *testing.T) {
	// Nth(k) for k in [0, Count) must enumerate exactly Members().
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		s, _ := randomSet(rng, 1+rng.Intn(500))
		members := s.Members()
		for k, want := range members {
			if got := s.Nth(k); got != want {
				t.Fatalf("Nth(%d) = %d, want %d", k, got, want)
			}
		}
		if got := s.Nth(len(members)); got != -1 {
			t.Fatalf("Nth past end = %d, want -1", got)
		}
	}
}

func TestNewBatchIndependentSets(t *testing.T) {
	sets := NewBatch(130, 5)
	if len(sets) != 5 {
		t.Fatalf("NewBatch returned %d sets, want 5", len(sets))
	}
	for i, s := range sets {
		if s.Size() != 130 || !s.IsEmpty() {
			t.Fatalf("set %d: size %d empty=%v", i, s.Size(), s.IsEmpty())
		}
	}
	// Mutations must not leak across slab neighbors, including via
	// Fill's full-word writes right at the slab boundaries.
	sets[1].Fill()
	sets[3].Add(0)
	sets[3].Add(129)
	if !sets[0].IsEmpty() || !sets[2].IsEmpty() || !sets[4].IsEmpty() {
		t.Fatal("mutating one batch set leaked into a neighbor")
	}
	if got := sets[1].Count(); got != 130 {
		t.Fatalf("filled batch set has %d members, want 130", got)
	}
	if got := sets[3].Members(); len(got) != 2 || got[0] != 0 || got[1] != 129 {
		t.Fatalf("batch set members = %v, want [0 129]", got)
	}
	// Batch sets interoperate with ordinary sets.
	if !sets[3].SubsetOf(sets[1]) || sets[1].IntersectionCount(New(130)) != 0 {
		t.Fatal("batch sets do not interoperate with New sets")
	}
	if NewBatch(64, 0) == nil {
		t.Fatal("NewBatch(_, 0) = nil, want empty slice")
	}
}

func TestRangeStoresMatchSetWord(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		size := 1 + rng.Intn(400)
		words := (size + 63) / 64
		lo := rng.Intn(words)
		n := 1 + rng.Intn(words-lo)
		p := make([]uint64, n)
		m := make([]uint64, n)
		q := make([]uint64, n)
		for i := range p {
			p[i], m[i], q[i] = rng.Uint64(), rng.Uint64(), rng.Uint64()
		}

		type op struct {
			name  string
			bulk  func(s *Set)
			wordy func(i int) uint64
		}
		ops := []op{
			{"SetRange", func(s *Set) { s.SetRange(lo, p) }, func(i int) uint64 { return p[i] }},
			{"SetRangeNot", func(s *Set) { s.SetRangeNot(lo, p) }, func(i int) uint64 { return ^p[i] }},
			{"SetRangeAnd", func(s *Set) { s.SetRangeAnd(lo, p, m) }, func(i int) uint64 { return p[i] & m[i] }},
			{"SetRangeAndNot", func(s *Set) { s.SetRangeAndNot(lo, p, m) }, func(i int) uint64 { return p[i] &^ m[i] }},
			{"SetRangeAndAndNot", func(s *Set) { s.SetRangeAndAndNot(lo, p, m, q) }, func(i int) uint64 { return p[i] & m[i] &^ q[i] }},
		}
		for _, o := range ops {
			got := New(size)
			o.bulk(got)
			want := New(size)
			for i := 0; i < n; i++ {
				want.SetWord(lo+i, o.wordy(i))
			}
			if !got.Equal(want) {
				t.Fatalf("size %d lo %d n %d: %s diverges from SetWord reference", size, lo, n, o.name)
			}
		}

		// SplitRangeAnd must equal the And/AndNot pair it replaces.
		sa0, sa1 := New(size), New(size)
		SplitRangeAnd(sa0, sa1, lo, p, m)
		w0, w1 := New(size), New(size)
		w0.SetRangeAnd(lo, p, m)
		w1.SetRangeAndNot(lo, p, m)
		if !sa0.Equal(w0) || !sa1.Equal(w1) {
			t.Fatalf("size %d lo %d n %d: SplitRangeAnd diverges from And/AndNot pair", size, lo, n)
		}
	}
}

func TestRangeStoresMaskTail(t *testing.T) {
	// A full-word store into the final partial word must not create
	// phantom members beyond the universe.
	s := New(70) // 2 words, 6 live bits in the tail
	ones := []uint64{^uint64(0), ^uint64(0)}
	s.SetRange(0, ones)
	if got := s.Count(); got != 70 {
		t.Fatalf("SetRange all-ones: %d members, want 70", got)
	}
	s.Clear()
	s.SetRangeNot(0, make([]uint64, 2))
	if got := s.Count(); got != 70 {
		t.Fatalf("SetRangeNot of zeros: %d members, want 70", got)
	}
	a, b := New(70), New(70)
	SplitRangeAnd(a, b, 0, ones, make([]uint64, 2))
	if a.Count() != 0 || b.Count() != 70 {
		t.Fatalf("SplitRangeAnd tail: %d/%d members, want 0/70", a.Count(), b.Count())
	}
}
