package engine

// Tiled word kernels: every instruction visit at word width moves a
// multi-word tile instead of dispatching per uint64. The tile body converts
// the slice window to an array pointer, so the compiler drops bounds checks
// and can keep the eight lanes in registers; a word-remainder tail handles
// blocks that are not a tile multiple. tileWords is a compile-time constant
// — widening it is a code change, not a knob — and every kernel is a pure
// word-parallel function of its inputs, so results are byte-identical at
// any tile width.

// tileWords is the number of 64-bit words processed per instruction visit.
const tileWords = 8

func fillWords(dst []uint64, v uint64) {
	for w := range dst {
		dst[w] = v
	}
}

func notWords(dst, a []uint64) {
	n := len(dst)
	a = a[:n]
	w := 0
	for ; w+tileWords <= n; w += tileWords {
		d := (*[tileWords]uint64)(dst[w:])
		x := (*[tileWords]uint64)(a[w:])
		for i := range d {
			d[i] = ^x[i]
		}
	}
	for ; w < n; w++ {
		dst[w] = ^a[w]
	}
}

func andWords(dst, a, b []uint64) {
	n := len(dst)
	a, b = a[:n], b[:n]
	w := 0
	for ; w+tileWords <= n; w += tileWords {
		d := (*[tileWords]uint64)(dst[w:])
		x := (*[tileWords]uint64)(a[w:])
		y := (*[tileWords]uint64)(b[w:])
		for i := range d {
			d[i] = x[i] & y[i]
		}
	}
	for ; w < n; w++ {
		dst[w] = a[w] & b[w]
	}
}

func nandWords(dst, a, b []uint64) {
	n := len(dst)
	a, b = a[:n], b[:n]
	w := 0
	for ; w+tileWords <= n; w += tileWords {
		d := (*[tileWords]uint64)(dst[w:])
		x := (*[tileWords]uint64)(a[w:])
		y := (*[tileWords]uint64)(b[w:])
		for i := range d {
			d[i] = ^(x[i] & y[i])
		}
	}
	for ; w < n; w++ {
		dst[w] = ^(a[w] & b[w])
	}
}

func orWords(dst, a, b []uint64) {
	n := len(dst)
	a, b = a[:n], b[:n]
	w := 0
	for ; w+tileWords <= n; w += tileWords {
		d := (*[tileWords]uint64)(dst[w:])
		x := (*[tileWords]uint64)(a[w:])
		y := (*[tileWords]uint64)(b[w:])
		for i := range d {
			d[i] = x[i] | y[i]
		}
	}
	for ; w < n; w++ {
		dst[w] = a[w] | b[w]
	}
}

func norWords(dst, a, b []uint64) {
	n := len(dst)
	a, b = a[:n], b[:n]
	w := 0
	for ; w+tileWords <= n; w += tileWords {
		d := (*[tileWords]uint64)(dst[w:])
		x := (*[tileWords]uint64)(a[w:])
		y := (*[tileWords]uint64)(b[w:])
		for i := range d {
			d[i] = ^(x[i] | y[i])
		}
	}
	for ; w < n; w++ {
		dst[w] = ^(a[w] | b[w])
	}
}

func xorWords(dst, a, b []uint64) {
	n := len(dst)
	a, b = a[:n], b[:n]
	w := 0
	for ; w+tileWords <= n; w += tileWords {
		d := (*[tileWords]uint64)(dst[w:])
		x := (*[tileWords]uint64)(a[w:])
		y := (*[tileWords]uint64)(b[w:])
		for i := range d {
			d[i] = x[i] ^ y[i]
		}
	}
	for ; w < n; w++ {
		dst[w] = a[w] ^ b[w]
	}
}

func xnorWords(dst, a, b []uint64) {
	n := len(dst)
	a, b = a[:n], b[:n]
	w := 0
	for ; w+tileWords <= n; w += tileWords {
		d := (*[tileWords]uint64)(dst[w:])
		x := (*[tileWords]uint64)(a[w:])
		y := (*[tileWords]uint64)(b[w:])
		for i := range d {
			d[i] = ^(x[i] ^ y[i])
		}
	}
	for ; w < n; w++ {
		dst[w] = ^(a[w] ^ b[w])
	}
}

func andnWords(dst, a, b []uint64) {
	n := len(dst)
	a, b = a[:n], b[:n]
	w := 0
	for ; w+tileWords <= n; w += tileWords {
		d := (*[tileWords]uint64)(dst[w:])
		x := (*[tileWords]uint64)(a[w:])
		y := (*[tileWords]uint64)(b[w:])
		for i := range d {
			d[i] = ^x[i] & y[i]
		}
	}
	for ; w < n; w++ {
		dst[w] = ^a[w] & b[w]
	}
}

func ornWords(dst, a, b []uint64) {
	n := len(dst)
	a, b = a[:n], b[:n]
	w := 0
	for ; w+tileWords <= n; w += tileWords {
		d := (*[tileWords]uint64)(dst[w:])
		x := (*[tileWords]uint64)(a[w:])
		y := (*[tileWords]uint64)(b[w:])
		for i := range d {
			d[i] = ^x[i] | y[i]
		}
	}
	for ; w < n; w++ {
		dst[w] = ^a[w] | b[w]
	}
}

func andAccWords(dst, b []uint64) {
	n := len(dst)
	b = b[:n]
	w := 0
	for ; w+tileWords <= n; w += tileWords {
		d := (*[tileWords]uint64)(dst[w:])
		y := (*[tileWords]uint64)(b[w:])
		for i := range d {
			d[i] &= y[i]
		}
	}
	for ; w < n; w++ {
		dst[w] &= b[w]
	}
}

func nandAccWords(dst, b []uint64) {
	n := len(dst)
	b = b[:n]
	w := 0
	for ; w+tileWords <= n; w += tileWords {
		d := (*[tileWords]uint64)(dst[w:])
		y := (*[tileWords]uint64)(b[w:])
		for i := range d {
			d[i] = ^(d[i] & y[i])
		}
	}
	for ; w < n; w++ {
		dst[w] = ^(dst[w] & b[w])
	}
}

func orAccWords(dst, b []uint64) {
	n := len(dst)
	b = b[:n]
	w := 0
	for ; w+tileWords <= n; w += tileWords {
		d := (*[tileWords]uint64)(dst[w:])
		y := (*[tileWords]uint64)(b[w:])
		for i := range d {
			d[i] |= y[i]
		}
	}
	for ; w < n; w++ {
		dst[w] |= b[w]
	}
}

func norAccWords(dst, b []uint64) {
	n := len(dst)
	b = b[:n]
	w := 0
	for ; w+tileWords <= n; w += tileWords {
		d := (*[tileWords]uint64)(dst[w:])
		y := (*[tileWords]uint64)(b[w:])
		for i := range d {
			d[i] = ^(d[i] | y[i])
		}
	}
	for ; w < n; w++ {
		dst[w] = ^(dst[w] | b[w])
	}
}

func xorAccWords(dst, b []uint64) {
	n := len(dst)
	b = b[:n]
	w := 0
	for ; w+tileWords <= n; w += tileWords {
		d := (*[tileWords]uint64)(dst[w:])
		y := (*[tileWords]uint64)(b[w:])
		for i := range d {
			d[i] ^= y[i]
		}
	}
	for ; w < n; w++ {
		dst[w] ^= b[w]
	}
}

func xnorAccWords(dst, b []uint64) {
	n := len(dst)
	b = b[:n]
	w := 0
	for ; w+tileWords <= n; w += tileWords {
		d := (*[tileWords]uint64)(dst[w:])
		y := (*[tileWords]uint64)(b[w:])
		for i := range d {
			d[i] = ^(d[i] ^ y[i])
		}
	}
	for ; w < n; w++ {
		dst[w] = ^(dst[w] ^ b[w])
	}
}

// setDiffWords stores the good/bad disagreement mask dst[w] = g[w]^b[w] and
// returns the running AND of the stored words: ^0 means every word is
// saturated (all vectors propagate), which lets segmented replay stop
// early. The saturation test is strict — all 64 bits including any phantom
// bits beyond the universe — so skipping later OR contributions is exactly
// identity-preserving.
func setDiffWords(dst, g, b []uint64) uint64 {
	n := len(dst)
	g, b = g[:n], b[:n]
	sat := ^uint64(0)
	w := 0
	for ; w+tileWords <= n; w += tileWords {
		d := (*[tileWords]uint64)(dst[w:])
		x := (*[tileWords]uint64)(g[w:])
		y := (*[tileWords]uint64)(b[w:])
		for i := range d {
			v := x[i] ^ y[i]
			d[i] = v
			sat &= v
		}
	}
	for ; w < n; w++ {
		v := g[w] ^ b[w]
		dst[w] = v
		sat &= v
	}
	return sat
}

// orDiffWords ORs the good/bad disagreement mask into dst and returns the
// running AND of the resulting words (see setDiffWords).
func orDiffWords(dst, g, b []uint64) uint64 {
	n := len(dst)
	g, b = g[:n], b[:n]
	sat := ^uint64(0)
	w := 0
	for ; w+tileWords <= n; w += tileWords {
		d := (*[tileWords]uint64)(dst[w:])
		x := (*[tileWords]uint64)(g[w:])
		y := (*[tileWords]uint64)(b[w:])
		for i := range d {
			v := d[i] | (x[i] ^ y[i])
			d[i] = v
			sat &= v
		}
	}
	for ; w < n; w++ {
		v := dst[w] | (g[w] ^ b[w])
		dst[w] = v
		sat &= v
	}
	return sat
}
