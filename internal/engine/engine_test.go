package engine

import (
	"math/rand"
	"strconv"
	"testing"

	"ndetect/internal/circuit"
)

// randomCircuit builds a random normalized DAG circuit (the same shape the
// sim package fuzzes with).
func randomCircuit(t *testing.T, rng *rand.Rand, inputs, gates int) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("rand")
	names := make([]string, 0, inputs+gates)
	for i := 0; i < inputs; i++ {
		n := "x" + strconv.Itoa(i)
		b.Input(n)
		names = append(names, n)
	}
	kinds := []circuit.Kind{circuit.And, circuit.Or, circuit.Nand, circuit.Nor, circuit.Xor, circuit.Xnor, circuit.Not, circuit.Buf}
	for g := 0; g < gates; g++ {
		kind := kinds[rng.Intn(len(kinds))]
		n := "g" + strconv.Itoa(g)
		if kind == circuit.Not || kind == circuit.Buf {
			b.Gate(kind, n, names[rng.Intn(len(names))])
		} else {
			nf := 2 + rng.Intn(4) // up to 5 fanins: exercises long chains
			perm := rng.Perm(len(names))
			fins := make([]string, 0, nf)
			for _, p := range perm[:min(nf, len(perm))] {
				fins = append(fins, names[p])
			}
			b.Gate(kind, n, fins...)
		}
		names = append(names, n)
	}
	nOut := 1 + rng.Intn(3)
	for i := 0; i < nOut; i++ {
		b.Output("g" + strconv.Itoa(gates-1-i))
	}
	c, err := b.Build()
	if err != nil {
		t.Fatalf("random Build: %v", err)
	}
	return c
}

func TestScalarMatchesCircuitEval(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		c := randomCircuit(t, rng, 3+rng.Intn(6), 5+rng.Intn(25))
		p := CompileAll(c)
		regs := make([]bool, p.NumRegs)
		for v := 0; v < c.VectorSpaceSize(); v++ {
			p.EvalScalar(uint64(v), regs)
			want := c.Eval(uint64(v))
			for id := range c.Nodes {
				if regs[p.NodeReg[id]] != want[id] {
					t.Fatalf("trial %d node %d v=%d: scalar %v, reference %v",
						trial, id, v, regs[p.NodeReg[id]], want[id])
				}
			}
		}
	}
}

func TestWordBlocksMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		c := randomCircuit(t, rng, 7+rng.Intn(4), 10+rng.Intn(20))
		p := CompileAll(c)
		size := c.VectorSpaceSize()
		nWords := (size + 63) / 64
		blockWords := 1 + rng.Intn(5)
		x := NewExec(p, blockWords)
		regs := make([]bool, p.NumRegs)
		for lo := 0; lo < nWords; lo += blockWords {
			hi := min(lo+blockWords, nWords)
			x.Eval(lo, hi)
			for w := 0; w < hi-lo; w++ {
				for b := 0; b < 64; b++ {
					v := (lo+w)*64 + b
					if v >= size {
						break
					}
					p.EvalScalar(uint64(v), regs)
					for id := range c.Nodes {
						got := x.Node(id)[w]&(1<<uint(b)) != 0
						if got != regs[p.NodeReg[id]] {
							t.Fatalf("trial %d node %d v=%d: word %v, scalar %v", trial, id, v, got, regs[p.NodeReg[id]])
						}
					}
				}
			}
		}
	}
}

func TestOutputDirectedCompileMatchesKeepAll(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		c := randomCircuit(t, rng, 4+rng.Intn(5), 8+rng.Intn(25))
		full := CompileAll(c)
		lean := Compile(c, nil)
		fregs := make([]bool, full.NumRegs)
		lregs := make([]bool, lean.NumRegs)
		for v := 0; v < c.VectorSpaceSize(); v++ {
			full.EvalScalar(uint64(v), fregs)
			lean.EvalScalar(uint64(v), lregs)
			for i := range c.Outputs {
				if lregs[lean.OutputReg[i]] != fregs[full.OutputReg[i]] {
					t.Fatalf("trial %d output %d v=%d disagrees", trial, i, v)
				}
			}
		}
	}
}

// TestRegisterReuse pins the "live registers ≪ nodes" property: a deep
// chain of gates needs a constant-size register file when only the output
// is kept, because every interior register is retired after its single
// read.
func TestRegisterReuse(t *testing.T) {
	b := circuit.NewBuilder("chain")
	b.Input("x0")
	b.Input("x1")
	b.Gate(circuit.And, "g0", "x0", "x1")
	prev := "g0"
	for i := 1; i < 100; i++ {
		n := "g" + strconv.Itoa(i)
		kind := circuit.Not
		if i%2 == 0 {
			kind = circuit.Buf
		}
		b.Gate(kind, n, prev)
		prev = n
	}
	b.Output(prev)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	p := Compile(c, nil)
	if p.NumRegs >= c.NumNodes()/4 {
		t.Fatalf("chain of %d nodes compiled to %d registers; reuse is not engaging", c.NumNodes(), p.NumRegs)
	}
	if CompileAll(c).NumRegs != c.NumNodes() {
		t.Fatal("CompileAll must pin every node")
	}
}

// TestDeadLogicElimination: logic reaching no output and no kept node is
// not compiled.
func TestDeadLogicElimination(t *testing.T) {
	b := circuit.NewBuilder("dead")
	b.Input("a")
	b.Input("b")
	b.Gate(circuit.And, "live", "a", "b")
	b.Gate(circuit.Xor, "dead", "a", "b")
	b.Output("live")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	p := Compile(c, nil)
	dead, _ := c.NodeByName("dead")
	if p.NodeReg[dead.ID] != -1 {
		t.Fatal("dead node was materialized")
	}
	kept := Compile(c, []int{dead.ID})
	if kept.NodeReg[dead.ID] < 0 {
		t.Fatal("kept node was not materialized")
	}
}

// TestConeMatchesFullFlip: replaying a line's compiled cone against a good
// block must reproduce exactly the outputs of a full re-evaluation with the
// line forced to its complement.
func TestConeMatchesFullFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		c := randomCircuit(t, rng, 4+rng.Intn(4), 8+rng.Intn(20))
		p := CompileAll(c)
		nWords := (c.VectorSpaceSize() + 63) / 64
		x := NewExec(p, nWords)
		x.Eval(0, nWords)
		cx := NewConeExec(nWords)
		good := make([]bool, p.NumRegs)
		bad := make([]bool, p.NumRegs)
		for site := 0; site < c.NumNodes(); site++ {
			cp := p.CompileCone(site)
			cx.Run(cp, x)
			prop := make([]uint64, nWords)
			cx.OrProp(cp, prop, x)
			for v := 0; v < c.VectorSpaceSize(); v++ {
				p.EvalScalar(uint64(v), good)
				p.EvalScalarForced(uint64(v), site, !good[site], bad)
				want := false
				for _, o := range c.Outputs {
					if good[o] != bad[o] {
						want = true
						break
					}
				}
				if got := prop[v/64]&(1<<uint(v%64)) != 0; got != want {
					t.Fatalf("trial %d site %d v=%d: cone prop %v, forced reference %v",
						trial, site, v, got, want)
				}
			}
		}
	}
}

// TestExecTVDefinitePatterns: on fully definite rails the dual-rail
// interpreter must agree with the scalar interpreter at every node.
func TestExecTVDefinitePatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		c := randomCircuit(t, rng, 4+rng.Intn(3), 8+rng.Intn(20))
		p := CompileAll(c)
		n := p.NumRegs
		p1 := make([]uint64, n)
		p0 := make([]uint64, n)
		size := c.VectorSpaceSize()
		k := min(64, size)
		m := c.NumInputs()
		for i, id := range c.Inputs {
			var r1, r0 uint64
			for j := 0; j < k; j++ {
				if circuit.VectorBit(uint64(j), i, m) {
					r1 |= 1 << uint(j)
				} else {
					r0 |= 1 << uint(j)
				}
			}
			p1[id], p0[id] = r1, r0
		}
		p.ExecTV(c.TopoOrder(), p1, p0)
		regs := make([]bool, n)
		for j := 0; j < k; j++ {
			p.EvalScalar(uint64(j), regs)
			for id := range c.Nodes {
				d1 := p1[id]&(1<<uint(j)) != 0
				d0 := p0[id]&(1<<uint(j)) != 0
				if d1 == d0 {
					t.Fatalf("trial %d node %d pattern %d: definite input gave X or contradiction", trial, id, j)
				}
				if d1 != regs[id] {
					t.Fatalf("trial %d node %d pattern %d: dual-rail %v, scalar %v", trial, id, j, d1, regs[id])
				}
			}
		}
	}
}

func TestAlternatingPatterns(t *testing.T) {
	for shift := uint(0); shift < 6; shift++ {
		pat := alternating(shift)
		for v := uint(0); v < 64; v++ {
			want := (v>>shift)&1 == 1
			if got := pat&(1<<v) != 0; got != want {
				t.Fatalf("alternating(%d) bit %d = %v, want %v", shift, v, got, want)
			}
		}
	}
}
