package engine

import (
	"fmt"

	"ndetect/internal/circuit"
)

// Exec is a word-block execution context: a register file of blockWords
// 64-bit words per register, evaluating the program over a contiguous slice
// of the exhaustive input space U. Word w of every register depends only on
// word w of the input registers, so disjoint blocks are independent and a
// set of Execs can stream U in parallel with byte-identical results.
//
// An Exec is reused across blocks by one goroutine; it is not safe for
// concurrent use.
type Exec struct {
	p    *Program
	cap  int // allocated words per register
	n    int // words of the current block
	lo   int // global word offset of the current block
	regs []uint64
}

// NewExec returns an execution context able to evaluate blocks of up to
// blockWords words (64·blockWords vectors).
func NewExec(p *Program, blockWords int) *Exec {
	return &Exec{p: p, cap: blockWords, regs: make([]uint64, p.NumRegs*blockWords)}
}

// Program returns the compiled program this context executes.
func (x *Exec) Program() *Program { return x.p }

// Eval evaluates the program over the universe words [lo, hi): it fills the
// input registers with the vector-index bit patterns of that range and runs
// every instruction. hi−lo must not exceed the context's block capacity.
func (x *Exec) Eval(lo, hi int) {
	if hi-lo > x.cap {
		panic(fmt.Sprintf("engine: block [%d,%d) exceeds capacity %d words", lo, hi, x.cap))
	}
	x.lo, x.n = lo, hi-lo
	m := x.p.Circuit.NumInputs()
	for i, r := range x.p.InputReg {
		if r < 0 {
			continue
		}
		dst := x.Reg(r)
		// Input i (MSB-first) has value (v >> shift) & 1 at vector v. Within
		// a 64-bit word, inputs with shift ≥ 6 are constant; below that they
		// follow a fixed alternating pattern.
		shift := uint(m - 1 - i)
		if shift >= 6 {
			for w := range dst {
				if (uint64(lo+w)>>(shift-6))&1 == 1 {
					dst[w] = ^uint64(0)
				} else {
					dst[w] = 0
				}
			}
		} else {
			pat := alternating(shift)
			for w := range dst {
				dst[w] = pat
			}
		}
	}
	for _, ins := range x.p.Instrs {
		dst := x.Reg(ins.Dst)
		switch ins.Op {
		case OpConst0:
			fillWords(dst, 0)
		case OpConst1:
			fillWords(dst, ^uint64(0))
		case OpCopy:
			copy(dst, x.Reg(ins.A))
		case OpNot:
			notWords(dst, x.Reg(ins.A))
		case OpAnd:
			andWords(dst, x.Reg(ins.A), x.Reg(ins.B))
		case OpNand:
			nandWords(dst, x.Reg(ins.A), x.Reg(ins.B))
		case OpOr:
			orWords(dst, x.Reg(ins.A), x.Reg(ins.B))
		case OpNor:
			norWords(dst, x.Reg(ins.A), x.Reg(ins.B))
		case OpXor:
			xorWords(dst, x.Reg(ins.A), x.Reg(ins.B))
		case OpXnor:
			xnorWords(dst, x.Reg(ins.A), x.Reg(ins.B))
		case OpAndN:
			andnWords(dst, x.Reg(ins.A), x.Reg(ins.B))
		case OpOrN:
			ornWords(dst, x.Reg(ins.A), x.Reg(ins.B))
		case OpAndAcc:
			andAccWords(dst, x.Reg(ins.B))
		case OpNandAcc:
			nandAccWords(dst, x.Reg(ins.B))
		case OpOrAcc:
			orAccWords(dst, x.Reg(ins.B))
		case OpNorAcc:
			norAccWords(dst, x.Reg(ins.B))
		case OpXorAcc:
			xorAccWords(dst, x.Reg(ins.B))
		case OpXnorAcc:
			xnorAccWords(dst, x.Reg(ins.B))
		default:
			panic(fmt.Sprintf("engine: unknown op %v", ins.Op))
		}
	}
}

// Reg returns register r's words for the current block.
func (x *Exec) Reg(r int32) []uint64 {
	base := int(r) * x.cap
	return x.regs[base : base+x.n]
}

// Node returns the current block's value words of a node; the node must be
// materialized by the program (always true for CompileAll).
func (x *Exec) Node(id int) []uint64 {
	r := x.p.NodeReg[id]
	if r < 0 {
		panic(fmt.Sprintf("engine: node %d is not materialized by this program", id))
	}
	return x.Reg(r)
}

// alternating returns the 64-bit pattern of bit position `shift` of the
// vector index: e.g. shift 0 → 0xAAAA...: bit v = (v >> 0) & 1.
func alternating(shift uint) uint64 {
	var pat uint64
	for v := uint(0); v < 64; v++ {
		if (v>>shift)&1 == 1 {
			pat |= 1 << v
		}
	}
	return pat
}

// EvalScalar evaluates the program for one input vector at width 1, writing
// register values into regs (length ≥ NumRegs). The vector uses the
// MSB-first convention of circuit.VectorBit.
func (p *Program) EvalScalar(vector uint64, regs []bool) {
	m := p.Circuit.NumInputs()
	for i, r := range p.InputReg {
		if r >= 0 {
			regs[r] = circuit.VectorBit(vector, i, m)
		}
	}
	scalarRun(p.Instrs, regs)
}

// EvalScalarForced is EvalScalar with node `forced` overridden to val: its
// instruction chain is skipped, so downstream consumers see the override
// while the node's own fanin does not feed it. The program must come from
// CompileAll.
func (p *Program) EvalScalarForced(vector uint64, forced int, val bool, regs []bool) {
	p.mustKeepAll("EvalScalarForced")
	m := p.Circuit.NumInputs()
	for i, r := range p.InputReg {
		regs[r] = circuit.VectorBit(vector, i, m)
	}
	regs[p.NodeReg[forced]] = val
	r := p.nodeInstr[forced]
	scalarRun(p.Instrs[:r[0]], regs)
	scalarRun(p.Instrs[r[1]:], regs)
}

func scalarRun(instrs []Instr, regs []bool) {
	for _, ins := range instrs {
		switch ins.Op {
		case OpConst0:
			regs[ins.Dst] = false
		case OpConst1:
			regs[ins.Dst] = true
		case OpCopy:
			regs[ins.Dst] = regs[ins.A]
		case OpNot:
			regs[ins.Dst] = !regs[ins.A]
		case OpAnd:
			regs[ins.Dst] = regs[ins.A] && regs[ins.B]
		case OpNand:
			regs[ins.Dst] = !(regs[ins.A] && regs[ins.B])
		case OpOr:
			regs[ins.Dst] = regs[ins.A] || regs[ins.B]
		case OpNor:
			regs[ins.Dst] = !(regs[ins.A] || regs[ins.B])
		case OpXor:
			regs[ins.Dst] = regs[ins.A] != regs[ins.B]
		case OpXnor:
			regs[ins.Dst] = regs[ins.A] == regs[ins.B]
		case OpAndN:
			regs[ins.Dst] = !regs[ins.A] && regs[ins.B]
		case OpOrN:
			regs[ins.Dst] = !regs[ins.A] || regs[ins.B]
		case OpAndAcc:
			regs[ins.Dst] = regs[ins.A] && regs[ins.B]
		case OpNandAcc:
			regs[ins.Dst] = !(regs[ins.A] && regs[ins.B])
		case OpOrAcc:
			regs[ins.Dst] = regs[ins.A] || regs[ins.B]
		case OpNorAcc:
			regs[ins.Dst] = !(regs[ins.A] || regs[ins.B])
		case OpXorAcc:
			regs[ins.Dst] = regs[ins.A] != regs[ins.B]
		case OpXnorAcc:
			regs[ins.Dst] = regs[ins.A] == regs[ins.B]
		default:
			panic(fmt.Sprintf("engine: unknown op %v", ins.Op))
		}
	}
}

// ExecTV runs the instruction chains of the listed nodes (a topological
// sub-order) in dual-rail Kleene encoding: bit j of p1[r]/p0[r] says
// pattern j's value in register r can be 1/0. Definite 1 = (1,0), definite
// 0 = (0,1), X = (1,1). The rails of input registers must be set by the
// caller; the program must come from CompileAll.
func (p *Program) ExecTV(ids []int, p1, p0 []uint64) {
	p.mustKeepAll("ExecTV")
	for _, id := range ids {
		r := p.nodeInstr[id]
		for _, ins := range p.Instrs[r[0]:r[1]] {
			d := ins.Dst
			a1, a0 := p1[ins.A], p0[ins.A]
			b1, b0 := p1[ins.B], p0[ins.B]
			switch ins.Op {
			case OpConst0:
				p1[d], p0[d] = 0, ^uint64(0)
			case OpConst1:
				p1[d], p0[d] = ^uint64(0), 0
			case OpCopy:
				p1[d], p0[d] = a1, a0
			case OpNot:
				p1[d], p0[d] = a0, a1
			case OpAnd:
				p1[d], p0[d] = a1&b1, a0|b0
			case OpNand:
				p1[d], p0[d] = a0|b0, a1&b1
			case OpOr:
				p1[d], p0[d] = a1|b1, a0&b0
			case OpNor:
				p1[d], p0[d] = a0&b0, a1|b1
			case OpXor:
				p1[d], p0[d] = (a1&b0)|(a0&b1), (a1&b1)|(a0&b0)
			case OpXnor:
				p1[d], p0[d] = (a1&b1)|(a0&b0), (a1&b0)|(a0&b1)
			case OpAndN:
				// AND with a complemented first operand: swap a's rails.
				p1[d], p0[d] = a0&b1, a1|b0
			case OpOrN:
				p1[d], p0[d] = a0|b1, a1&b0
			case OpAndAcc:
				p1[d], p0[d] = a1&b1, a0|b0
			case OpNandAcc:
				p1[d], p0[d] = a0|b0, a1&b1
			case OpOrAcc:
				p1[d], p0[d] = a1|b1, a0&b0
			case OpNorAcc:
				p1[d], p0[d] = a0&b0, a1|b1
			case OpXorAcc:
				p1[d], p0[d] = (a1&b0)|(a0&b1), (a1&b1)|(a0&b0)
			case OpXnorAcc:
				p1[d], p0[d] = (a1&b1)|(a0&b0), (a1&b0)|(a0&b1)
			default:
				panic(fmt.Sprintf("engine: unknown op %v", ins.Op))
			}
		}
	}
}

func (p *Program) mustKeepAll(what string) {
	if !p.keepAll {
		panic("engine: " + what + " requires a CompileAll program")
	}
}
