package engine

// Peephole fusion over lowered programs. The compiler (emitNode) produces
// one instruction per gate pin, which leaves dispatch-bound patterns on the
// hot path: Buf/Branch copies, NOT gates feeding a single consumer, and
// accumulator chains ending in an inverting final step followed by a NOT.
// fuse rewrites these in place — copy forwarding, folding a NOT into its
// consumer (AND+NOT → OpAndN, OR+NOT → OpOrN, XOR+NOT → XNOR, …), folding a
// NOT of an invertible definition into the complemented opcode, converting
// self-accumulating steps to OpXxxAcc — then removes dead definitions.
//
// The pass is applied to output-directed programs (Compile) and cone
// programs, never to CompileAll programs: those pin node = register and
// promise per-node instruction ranges (nodeInstr) to ExecTV and
// EvalScalarForced, which fusion would break.
//
// Register files here are not SSA — Compile reuses retired registers and
// accumulator chains redefine their destination — so every forwarded
// operand carries a definition-count stamp and is only used while the
// stamp still matches. Negative operands (the good bank of cone programs)
// are external and always valid.

const opInvalid Op = 0xff

// opReadsA / opReadsB report whether an opcode reads the A / B operand.
// Accumulator ops keep A == Dst and genuinely read it.
func opReadsA(op Op) bool { return op >= OpCopy }
func opReadsB(op Op) bool { return op >= OpAnd }

// complemented returns the opcode computing the complement of op over the
// same operands, and whether the operands must swap (only the asymmetric
// OpAndN/OpOrN pair: ^(^a&b) = a|^b = OrN(b,a)).
func complemented(op Op) (c Op, swap, ok bool) {
	switch op {
	case OpConst0:
		return OpConst1, false, true
	case OpConst1:
		return OpConst0, false, true
	case OpCopy:
		return OpNot, false, true
	case OpNot:
		return OpCopy, false, true
	case OpAnd:
		return OpNand, false, true
	case OpNand:
		return OpAnd, false, true
	case OpOr:
		return OpNor, false, true
	case OpNor:
		return OpOr, false, true
	case OpXor:
		return OpXnor, false, true
	case OpXnor:
		return OpXor, false, true
	case OpAndN:
		return OpOrN, true, true
	case OpOrN:
		return OpAndN, true, true
	}
	return opInvalid, false, false
}

// foldNotA returns the opcode for OP(^a, b) expressed over (a, b), with
// swap meaning the rewritten operands exchange places.
func foldNotA(op Op) (c Op, swap, ok bool) {
	switch op {
	case OpAnd:
		return OpAndN, false, true
	case OpNand: // ^(^a&b) = a|^b = OrN(b,a)
		return OpOrN, true, true
	case OpOr:
		return OpOrN, false, true
	case OpNor: // ^(^a|b) = a&^b = AndN(b,a)
		return OpAndN, true, true
	case OpXor:
		return OpXnor, false, true
	case OpXnor:
		return OpXor, false, true
	case OpAndN: // ^(^a)&b = a&b
		return OpAnd, false, true
	case OpOrN:
		return OpOr, false, true
	}
	return opInvalid, false, false
}

// foldNotB returns the opcode for OP(a, ^b) expressed over (a, b).
func foldNotB(op Op) (c Op, swap, ok bool) {
	switch op {
	case OpAnd: // a&^b = AndN(b,a)
		return OpAndN, true, true
	case OpNand: // ^(a&^b) = ^a|b = OrN(a,b)
		return OpOrN, false, true
	case OpOr:
		return OpOrN, true, true
	case OpNor: // ^(a|^b) = ^a&b = AndN(a,b)
		return OpAndN, false, true
	case OpXor:
		return OpXnor, false, true
	case OpXnor:
		return OpXor, false, true
	case OpAndN: // ^a&^b
		return OpNor, false, true
	case OpOrN: // ^a|^b
		return OpNand, false, true
	}
	return opInvalid, false, false
}

// foldNotBoth returns the opcode for OP(^a, ^b) expressed over (a, b).
func foldNotBoth(op Op) (c Op, swap, ok bool) {
	switch op {
	case OpAnd:
		return OpNor, false, true
	case OpNand:
		return OpOr, false, true
	case OpOr:
		return OpNand, false, true
	case OpNor:
		return OpAnd, false, true
	case OpXor:
		return OpXor, false, true
	case OpXnor:
		return OpXnor, false, true
	case OpAndN: // a&^b = AndN(b,a)
		return OpAndN, true, true
	case OpOrN:
		return OpOrN, true, true
	}
	return opInvalid, false, false
}

// accOf returns the accumulator form of a plain binary opcode.
func accOf(op Op) (Op, bool) {
	switch op {
	case OpAnd:
		return OpAndAcc, true
	case OpNand:
		return OpNandAcc, true
	case OpOr:
		return OpOrAcc, true
	case OpNor:
		return OpNorAcc, true
	case OpXor:
		return OpXorAcc, true
	case OpXnor:
		return OpXnorAcc, true
	}
	return opInvalid, false
}

func commutative(op Op) bool {
	switch op {
	case OpAnd, OpNand, OpOr, OpNor, OpXor, OpXnor:
		return true
	}
	return false
}

// fuser is reusable fusion scratch: one per compiler, so batch compilation
// of many cone programs allocates nothing per program once warm.
type fuser struct {
	defIdx   []int32 // per register: index of the live definition, -1 none
	defCount []int32 // per register: definitions seen so far
	stampA   []int32 // per instruction: defCount of A at definition time
	stampB   []int32
	uses     []int32 // per instruction: reads of this definition
	rdA      []int32 // per instruction: definition index its A read resolved to
	rdB      []int32
	keep     []bool
	live     []bool // per register: value must survive the program
	removed  bool
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func (fz *fuser) grow(numRegs, n int) {
	fz.defIdx = growInt32(fz.defIdx, numRegs)
	fz.defCount = growInt32(fz.defCount, numRegs)
	if cap(fz.live) < numRegs {
		fz.live = make([]bool, numRegs)
	}
	fz.live = fz.live[:numRegs]
	fz.stampA = growInt32(fz.stampA, n)
	fz.stampB = growInt32(fz.stampB, n)
	fz.uses = growInt32(fz.uses, n)
	fz.rdA = growInt32(fz.rdA, n)
	fz.rdB = growInt32(fz.rdB, n)
	if cap(fz.keep) < n {
		fz.keep = make([]bool, n)
	}
	fz.keep = fz.keep[:n]
}

// fuse rewrites instrs in place and returns the compacted slice. liveOut
// lists registers whose final values must survive (their last definitions
// are kept with Dst unchanged). segEnd, when non-nil, is a non-decreasing
// list of instruction boundaries remapped in place as definitions are
// removed. The rewrite is deterministic: a pure function of the input
// program.
func (fz *fuser) fuse(instrs []Instr, numRegs int, liveOut []int32, segEnd []int32) []Instr {
	if len(instrs) == 0 {
		return instrs
	}
	fz.grow(numRegs, len(instrs))
	for _, r := range liveOut {
		if r >= 0 {
			fz.live[r] = true
		}
	}
	// Two rewrite+DCE passes capture virtually every fold (pass one forwards
	// copies and folds NOTs, pass two folds patterns those rewrites exposed);
	// further iterations almost never change anything and would only pay
	// their full-scan cost, so the fixpoint is capped rather than confirmed.
	for iter := 0; iter < 2; iter++ {
		changed := fz.rewrite(instrs)
		instrs = fz.dce(instrs, segEnd)
		if !changed && !fz.removed {
			break
		}
	}
	for i := range instrs {
		ins := &instrs[i]
		if acc, ok := accOf(ins.Op); ok {
			if ins.A == ins.Dst {
				ins.Op = acc
			} else if ins.B == ins.Dst && commutative(ins.Op) {
				ins.A, ins.B = ins.B, ins.A
				ins.Op = acc
			}
		}
	}
	for _, r := range liveOut {
		if r >= 0 {
			fz.live[r] = false
		}
	}
	return instrs
}

// validDef returns the index of register r's live definition if every
// register operand that definition read is still at the same definition
// count (so forwarding its operands preserves values), else -1.
func (fz *fuser) validDef(instrs []Instr, r int32) int32 {
	if r < 0 {
		return -1
	}
	j := fz.defIdx[r]
	if j < 0 {
		return -1
	}
	d := instrs[j]
	if opReadsA(d.Op) && d.A >= 0 && fz.defCount[d.A] != fz.stampA[j] {
		return -1
	}
	if opReadsB(d.Op) && d.B >= 0 && fz.defCount[d.B] != fz.stampB[j] {
		return -1
	}
	return j
}

// chaseDef forwards a read operand through still-valid copy definitions and
// returns the forwarded operand together with its live definition index
// (-1 when the operand has no still-valid definition), so callers inspect
// the definition without a second lookup.
func (fz *fuser) chaseDef(instrs []Instr, r int32) (int32, int32) {
	j := fz.validDef(instrs, r)
	for j >= 0 && instrs[j].Op == OpCopy {
		r = instrs[j].A
		j = fz.validDef(instrs, r)
	}
	return r, j
}

// rewrite is one forward pass of copy forwarding plus consumer- and
// producer-side NOT folding. It reports whether anything changed.
func (fz *fuser) rewrite(instrs []Instr) bool {
	for i := range fz.defIdx {
		fz.defIdx[i] = -1
		fz.defCount[i] = 0
	}
	changed := false
	for i := range instrs {
		ins := &instrs[i]
		ja, jb := int32(-1), int32(-1)
		if opReadsA(ins.Op) {
			a, j := fz.chaseDef(instrs, ins.A)
			ja = j
			if a != ins.A {
				ins.A = a
				changed = true
			}
		}
		if opReadsB(ins.Op) {
			b, j := fz.chaseDef(instrs, ins.B)
			jb = j
			if b != ins.B {
				ins.B = b
				changed = true
			}
		}
		switch {
		case ins.Op == OpCopy || ins.Op == OpNot:
			if ja >= 0 && instrs[ja].Op == OpNot {
				// COPY(^x) = NOT(x), NOT(^x) = COPY(x).
				if ins.Op == OpNot {
					ins.Op = OpCopy
				} else {
					ins.Op = OpNot
				}
				ins.A = instrs[ja].A
				changed = true
			} else if ins.Op == OpNot && ja >= 0 {
				// NOT of any invertible definition: recompute the definition
				// with the complemented opcode. If this was its only use the
				// definition dies in DCE; otherwise the instruction count is
				// unchanged.
				d := instrs[ja]
				if cop, swap, ok := complemented(d.Op); ok && d.Op != OpCopy {
					ins.Op, ins.A, ins.B = cop, d.A, d.B
					if swap {
						ins.A, ins.B = ins.B, ins.A
					}
					changed = true
				}
			}
		case opReadsB(ins.Op):
			okA := ja >= 0 && instrs[ja].Op == OpNot
			okB := jb >= 0 && instrs[jb].Op == OpNot
			var cop Op
			var swap, ok bool
			switch {
			case okA && okB:
				if cop, swap, ok = foldNotBoth(ins.Op); ok {
					ins.A, ins.B = instrs[ja].A, instrs[jb].A
				}
			case okA:
				if cop, swap, ok = foldNotA(ins.Op); ok {
					ins.A = instrs[ja].A
				}
			case okB:
				if cop, swap, ok = foldNotB(ins.Op); ok {
					ins.B = instrs[jb].A
				}
			}
			if ok {
				ins.Op = cop
				if swap {
					ins.A, ins.B = ins.B, ins.A
				}
				changed = true
			}
		}
		// Stamps are recorded before the destination's def count bumps, so a
		// self-reading definition (accumulator step) is never treated as
		// forwardable: its pre-redefinition operand value no longer exists.
		if opReadsA(ins.Op) && ins.A >= 0 {
			fz.stampA[i] = fz.defCount[ins.A]
		}
		if opReadsB(ins.Op) && ins.B >= 0 {
			fz.stampB[i] = fz.defCount[ins.B]
		}
		fz.defCount[ins.Dst]++
		fz.defIdx[ins.Dst] = int32(i)
	}
	return changed
}

// dce removes definitions with no remaining reads whose register is not
// live-out (or is redefined later), compacting instrs and remapping segEnd.
func (fz *fuser) dce(instrs []Instr, segEnd []int32) []Instr {
	n := len(instrs)
	for i := range fz.defIdx {
		fz.defIdx[i] = -1
	}
	uses, rdA, rdB := fz.uses[:n], fz.rdA[:n], fz.rdB[:n]
	for i, ins := range instrs {
		uses[i] = 0
		rdA[i], rdB[i] = -1, -1
		if opReadsA(ins.Op) && ins.A >= 0 {
			if j := fz.defIdx[ins.A]; j >= 0 {
				uses[j]++
				rdA[i] = j
			}
		}
		if opReadsB(ins.Op) && ins.B >= 0 {
			if j := fz.defIdx[ins.B]; j >= 0 {
				uses[j]++
				rdB[i] = j
			}
		}
		fz.defIdx[ins.Dst] = int32(i)
	}
	for r, live := range fz.live {
		if live {
			if j := fz.defIdx[r]; j >= 0 {
				uses[j]++
			}
		}
	}
	removed := 0
	keep := fz.keep[:n]
	for i := n - 1; i >= 0; i-- {
		keep[i] = uses[i] > 0
		if !keep[i] {
			removed++
			// Operand definitions sit strictly earlier, so the backward scan
			// sees the decrement before deciding their fate.
			if j := rdA[i]; j >= 0 {
				uses[j]--
			}
			if j := rdB[i]; j >= 0 {
				uses[j]--
			}
		}
	}
	fz.removed = removed > 0
	if removed == 0 {
		return instrs
	}
	out := instrs[:0]
	seg, kept := 0, int32(0)
	for i := range instrs {
		for segEnd != nil && seg < len(segEnd) && segEnd[seg] == int32(i) {
			segEnd[seg] = kept
			seg++
		}
		if keep[i] {
			out = append(out, instrs[i])
			kept++
		}
	}
	for ; segEnd != nil && seg < len(segEnd); seg++ {
		segEnd[seg] = kept
	}
	return out
}
