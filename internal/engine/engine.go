// Package engine compiles gate-level circuits into flat, levelized
// instruction programs and interprets them at three widths.
//
// A Program is a straight-line sequence of register-to-register
// instructions over a dense scratch-register file: multi-input gates are
// decomposed into binary accumulator chains, and the register allocator
// retires a node's register after its last read (fanout-aware liveness from
// circuit.ConsumerCounts), so an output-directed program keeps far fewer
// registers live than the circuit has nodes. The same program runs at three
// widths:
//
//   - scalar (width 1): one bool per register, with optional forced-node
//     override — the per-vector reference evaluator;
//   - word blocks (width 64·W): one []uint64 block per register, streaming
//     the exhaustive input space U in cache-sized chunks instead of
//     materializing per-node bitsets over all of U;
//   - dual-rail (width 64, 3-valued): two words per register carrying
//     Kleene (p1, p0) rails, for batched partial-vector fault simulation.
//
// CompileCone additionally lowers the fanout cone of a single line into a
// two-bank program (good values read from a full Program's block, faulty
// values from a compact cone-local bank), which is the inner kernel of
// streaming fault analysis: flip a line, replay only its cone, compare the
// reachable outputs.
package engine

import (
	"fmt"

	"ndetect/internal/circuit"
)

// Op is an instruction opcode. Binary gates with more than two inputs are
// decomposed by the compiler into accumulator chains, so interpreters only
// ever see two-operand instructions.
type Op uint8

// The instruction set. OpConst* take no operands, OpCopy/OpNot take one
// (A), the rest take two (A, B). The compiler (emitNode) only produces the
// first ten; the opcodes below opXnor exist solely as targets of the
// peephole fusion pass (fuse.go) and are interpreted at all three widths.
const (
	OpConst0 Op = iota
	OpConst1
	OpCopy
	OpNot
	OpAnd
	OpNand
	OpOr
	OpNor
	OpXor
	OpXnor

	// Complemented-first-operand pairs: a NOT fused into its consumer.
	OpAndN // dst = ^a & b
	OpOrN  // dst = ^a | b

	// Accumulator forms: a chain step whose first operand is its own
	// destination (dst = dst OP b). A is kept equal to Dst so width-agnostic
	// interpreters may treat them as their plain binary counterparts; the
	// word interpreter uses dedicated read-modify-write kernels.
	OpAndAcc
	OpNandAcc
	OpOrAcc
	OpNorAcc
	OpXorAcc
	OpXnorAcc
)

var opNames = [...]string{
	"const0", "const1", "copy", "not", "and", "nand", "or", "nor", "xor", "xnor",
	"andn", "orn", "and.acc", "nand.acc", "or.acc", "nor.acc", "xor.acc", "xnor.acc",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one instruction: Dst ← Op(A, B). Unary ops ignore B, consts
// ignore both. In cone programs (CompileCone) a negative operand ^r reads
// register r of the good-value bank; main programs never emit negative
// operands.
type Instr struct {
	Op   Op
	Dst  int32
	A, B int32
}

// Program is a compiled circuit: a flat instruction sequence in level order
// over NumRegs scratch registers.
type Program struct {
	Circuit *circuit.Circuit
	Instrs  []Instr
	NumRegs int
	// InputReg maps primary-input position to its register, -1 when the
	// input feeds nothing the program computes.
	InputReg []int32
	// OutputReg maps primary-output position to its register.
	OutputReg []int32
	// NodeReg maps node ID to the register holding its value after the
	// program runs, or -1 when the value was dead or its register reused.
	NodeReg []int32

	// nodeInstr is the [start, end) instruction range of each node's chain;
	// only recorded by CompileAll, where it enables subset execution
	// (ExecTV) and forced-node skips (EvalScalarForced).
	nodeInstr [][2]int32
	keepAll   bool
}

// chainOps returns the accumulator opcode and the final (possibly
// inverting) opcode for a gate kind.
func chainOps(k circuit.Kind) (chain, final Op) {
	switch k {
	case circuit.And:
		return OpAnd, OpAnd
	case circuit.Nand:
		return OpAnd, OpNand
	case circuit.Or:
		return OpOr, OpOr
	case circuit.Nor:
		return OpOr, OpNor
	case circuit.Xor:
		return OpXor, OpXor
	case circuit.Xnor:
		return OpXor, OpXnor
	}
	panic(fmt.Sprintf("engine: kind %v has no chain ops", k))
}

// emitNode appends the instruction chain computing node n into register
// dst, with fanin registers resolved through regOf. Multi-input gates
// accumulate into dst — NAND(a,b,c) compiles to dst←AND(a,b); dst←NAND(dst,c)
// — so chains need no temporaries.
func emitNode(n *circuit.Node, dst int32, regOf func(fanin int) int32, out *[]Instr) {
	switch n.Kind {
	case circuit.Input:
		// Filled by the interpreter before execution.
	case circuit.Const0:
		*out = append(*out, Instr{Op: OpConst0, Dst: dst})
	case circuit.Const1:
		*out = append(*out, Instr{Op: OpConst1, Dst: dst})
	case circuit.Buf, circuit.Branch:
		*out = append(*out, Instr{Op: OpCopy, Dst: dst, A: regOf(n.Fanin[0])})
	case circuit.Not:
		*out = append(*out, Instr{Op: OpNot, Dst: dst, A: regOf(n.Fanin[0])})
	default:
		chain, final := chainOps(n.Kind)
		op := chain
		if len(n.Fanin) == 2 {
			op = final
		}
		*out = append(*out, Instr{Op: op, Dst: dst, A: regOf(n.Fanin[0]), B: regOf(n.Fanin[1])})
		for i := 2; i < len(n.Fanin); i++ {
			op = chain
			if i == len(n.Fanin)-1 {
				op = final
			}
			*out = append(*out, Instr{Op: op, Dst: dst, A: dst, B: regOf(n.Fanin[i])})
		}
	}
}

// CompileAll lowers the whole circuit with every node pinned to its own
// register (register r holds node r). This is the analysis program: fault
// streaming reads arbitrary node values for activation and cone side
// inputs, scalar forced evaluation overrides any node, and dual-rail
// subset execution replays any topological slice of nodes.
func CompileAll(c *circuit.Circuit) *Program {
	p := &Program{
		Circuit:   c,
		NumRegs:   c.NumNodes(),
		NodeReg:   make([]int32, c.NumNodes()),
		nodeInstr: make([][2]int32, c.NumNodes()),
		keepAll:   true,
	}
	for id := range p.NodeReg {
		p.NodeReg[id] = int32(id)
	}
	for _, id := range c.LevelOrder() {
		start := int32(len(p.Instrs))
		emitNode(c.Node(id), int32(id), func(f int) int32 { return int32(f) }, &p.Instrs)
		p.nodeInstr[id] = [2]int32{start, int32(len(p.Instrs))}
	}
	p.InputReg = make([]int32, len(c.Inputs))
	for i, id := range c.Inputs {
		p.InputReg[i] = int32(id)
	}
	p.OutputReg = make([]int32, len(c.Outputs))
	for i, id := range c.Outputs {
		p.OutputReg[i] = int32(id)
	}
	return p
}

// Compile lowers the circuit into an output-directed program: only nodes
// that reach a primary output or a kept node are computed (dead logic is
// eliminated), and every other register is retired after its last read, so
// live registers stay far below the node count. keep lists node IDs whose
// values must survive to the end of the program (primary outputs always
// do); it may be nil.
func Compile(c *circuit.Circuit, keep []int) *Program {
	numNodes := c.NumNodes()

	// Mark the transitive fanin of outputs ∪ keep.
	needed := make([]bool, numNodes)
	pinned := make([]bool, numNodes)
	var stack []int
	mark := func(id int) {
		if !needed[id] {
			needed[id] = true
			stack = append(stack, id)
		}
	}
	for _, o := range c.Outputs {
		mark(o)
		pinned[o] = true
	}
	for _, k := range keep {
		mark(k)
		pinned[k] = true
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range c.Node(id).Fanin {
			mark(f)
		}
	}

	// Remaining reads per node: the circuit's consumer counts (gate pins
	// plus output observations) minus the reads of eliminated consumers.
	// Output observations never decrement, but output nodes are pinned, so
	// only the pinned[] guard below — never a residual count — is what
	// keeps a register alive to the end of the program.
	counts := c.ConsumerCounts()
	for id, in := range needed {
		if !in {
			for _, f := range c.Node(id).Fanin {
				counts[f]--
			}
		}
	}

	p := &Program{Circuit: c, NodeReg: make([]int32, numNodes)}
	for id := range p.NodeReg {
		p.NodeReg[id] = -1
	}
	var free []int32
	next := int32(0)
	alloc := func() int32 {
		if n := len(free); n > 0 {
			r := free[n-1]
			free = free[:n-1]
			return r
		}
		r := next
		next++
		return r
	}

	reg := make([]int32, numNodes)
	atAlloc := make([]int32, numNodes)
	for id := range reg {
		reg[id] = -1
		atAlloc[id] = -1
	}
	for _, id := range c.LevelOrder() {
		if !needed[id] {
			continue
		}
		n := c.Node(id)
		dst := alloc()
		reg[id] = dst
		atAlloc[id] = dst
		emitNode(n, dst, func(f int) int32 { return reg[f] }, &p.Instrs)
		// Retire fanin registers whose reads are exhausted. This runs after
		// dst was drawn from the free list, so dst never aliases a fanin.
		for _, f := range n.Fanin {
			counts[f]--
			if counts[f] == 0 && !pinned[f] {
				free = append(free, reg[f])
				reg[f] = -1
			}
		}
	}
	p.NumRegs = int(next)
	for id, r := range reg {
		p.NodeReg[id] = r
	}
	// Input registers are recorded at allocation time: the interpreter
	// fills them before instruction 0, so liveness may hand an input's
	// register to a later dst (every such write lands after the input's
	// last read), but the fill slot itself must survive in InputReg. All
	// inputs sit at level 0 where nothing has been retired yet, so their
	// registers are pairwise distinct.
	p.InputReg = make([]int32, len(c.Inputs))
	for i, id := range c.Inputs {
		p.InputReg[i] = atAlloc[id] // -1 when the input feeds no needed logic
	}
	p.OutputReg = make([]int32, len(c.Outputs))
	for i, id := range c.Outputs {
		p.OutputReg[i] = reg[id]
	}
	// Peephole fusion: forward copies, fold NOTs into their neighbors,
	// convert accumulator steps to in-place opcodes, drop dead definitions.
	// Pinned registers (outputs ∪ keep) survive with their values intact;
	// CompileAll never fuses because it promises per-node instruction
	// ranges.
	liveOut := make([]int32, 0, len(p.OutputReg)+len(keep))
	liveOut = append(liveOut, p.OutputReg...)
	for _, k := range keep {
		liveOut = append(liveOut, p.NodeReg[k])
	}
	var fz fuser
	p.Instrs = fz.fuse(p.Instrs, p.NumRegs, liveOut, nil)
	return p
}
