package engine

import (
	"math/rand"
	"testing"

	"ndetect/internal/circuit"
)

// conesEqualUnfused compares, for every node of c and over every block
// width in widths, the fused cone's propagation mask against the cone
// compiled with fusion disabled. The fusion pass promises byte-identical
// replayed values — only the instruction encoding may differ.
func conesEqualUnfused(t *testing.T, c *circuit.Circuit, widths []int) {
	t.Helper()
	p := CompileAll(c)
	fused := p.NewConeCompiler()
	plain := p.NewConeCompiler()
	plain.SetFusion(false)

	size := c.VectorSpaceSize()
	nWords := (size + 63) / 64
	for id := range c.Nodes {
		cpF := fused.Compile([]int{id})
		cpP := plain.Compile([]int{id})
		if len(cpF.Instrs) > len(cpP.Instrs) {
			t.Fatalf("node %d: fusion grew the program: %d -> %d instructions",
				id, len(cpP.Instrs), len(cpF.Instrs))
		}
		if cpF.AlwaysProp() != cpP.AlwaysProp() {
			t.Fatalf("node %d: AlwaysProp %v fused, %v unfused", id, cpF.AlwaysProp(), cpP.AlwaysProp())
		}
		for _, bw := range widths {
			bw = min(bw, nWords)
			x := NewExec(p, bw)
			cxF := NewConeExec(bw)
			cxP := NewConeExec(bw)
			dstF := make([]uint64, bw)
			dstP := make([]uint64, bw)
			for lo := 0; lo < nWords; lo += bw {
				hi := min(lo+bw, nWords)
				x.Eval(lo, hi)
				cxF.PropInto(cpF, x, dstF)
				cxP.PropInto(cpP, x, dstP)
				for w := 0; w < hi-lo; w++ {
					if dstF[w] != dstP[w] {
						t.Fatalf("node %d block [%d,%d) word %d: fused %#x, unfused %#x",
							id, lo, hi, w, dstF[w], dstP[w])
					}
				}
			}
		}
	}
}

// TestConeFusionMatchesUnfused is the fusion half of the equivalence suite:
// on random circuits, every single-site cone replayed through the fused
// interpreter produces the same propagation words as the pre-fusion
// encoding, at a one-word block, a full tile, and a tile-plus-tail width.
func TestConeFusionMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	widths := []int{1, tileWords, tileWords + 3}
	for trial := 0; trial < 12; trial++ {
		c := randomCircuit(t, rng, 7+rng.Intn(4), 10+rng.Intn(25))
		conesEqualUnfused(t, c, widths)
	}
}

// FuzzConeFusion cross-checks the fusion pass on fuzzer-chosen random
// circuits: any divergence between the fused and unfused cone replay is a
// fusion bug by definition.
func FuzzConeFusion(f *testing.F) {
	f.Add(int64(1), 6, 12)
	f.Add(int64(42), 9, 30)
	f.Add(int64(7), 4, 25)
	f.Fuzz(func(t *testing.T, seed int64, inputs, gates int) {
		// randomCircuit declares up to 3 outputs named g{gates-1-i} and
		// draws at least 2 distinct fanins for its first gate, so it needs
		// at least 3 gates and 2 inputs to be well-formed.
		if inputs < 2 || inputs > 9 || gates < 3 || gates > 40 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(t, rng, inputs, gates)
		conesEqualUnfused(t, c, []int{tileWords + 1})
	})
}

// TestFusedProgramWidthsAgree pins the three-width contract for fused
// opcodes at the whole-program level: the output-directed Compile runs the
// fusion pass, so its scalar interpreter (EvalScalar), word-block
// interpreter (Eval), and the unfused CompileAll reference must agree at
// every vector.
func TestFusedProgramWidthsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		c := randomCircuit(t, rng, 7+rng.Intn(3), 12+rng.Intn(25))
		full := CompileAll(c)
		lean := Compile(c, nil)

		size := c.VectorSpaceSize()
		nWords := (size + 63) / 64
		bw := tileWords + 2 // exercises both the tile loop and the word tail
		xf := NewExec(full, bw)
		xl := NewExec(lean, bw)
		fregs := make([]bool, full.NumRegs)
		lregs := make([]bool, lean.NumRegs)
		for lo := 0; lo < nWords; lo += bw {
			hi := min(lo+bw, nWords)
			xf.Eval(lo, hi)
			xl.Eval(lo, hi)
			for i := range c.Outputs {
				fw := xf.Reg(full.OutputReg[i])
				lw := xl.Reg(lean.OutputReg[i])
				for w := 0; w < hi-lo; w++ {
					if fw[w] != lw[w] {
						t.Fatalf("trial %d output %d word %d: fused block %#x, reference %#x",
							trial, i, lo+w, lw[w], fw[w])
					}
				}
			}
			for w := 0; w < hi-lo; w++ {
				for b := 0; b < 64; b++ {
					v := (lo+w)*64 + b
					if v >= size {
						break
					}
					full.EvalScalar(uint64(v), fregs)
					lean.EvalScalar(uint64(v), lregs)
					for i := range c.Outputs {
						if fregs[full.OutputReg[i]] != lregs[lean.OutputReg[i]] {
							t.Fatalf("trial %d output %d v=%d: fused scalar disagrees", trial, i, v)
						}
					}
				}
			}
		}
	}
}

// TestSelfSeedConeRejectsForced pins the self-seed safety contract: a
// single-site cone embeds its own complement as the first instruction, so
// forcing a constant onto the site would be silently overwritten — the
// forced-replay entry points must panic instead.
func TestSelfSeedConeRejectsForced(t *testing.T) {
	b := circuit.NewBuilder("selfseed")
	b.Input("a")
	b.Input("b")
	b.Gate(circuit.And, "g", "a", "b")
	b.Output("g")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	p := CompileAll(c)
	cp := p.CompileCone(c.Outputs[0])
	if !cp.selfSeed {
		t.Fatal("single-site cone is not self-seeded")
	}
	x := NewExec(p, 1)
	x.Eval(0, 1)
	cx := NewConeExec(1)
	for _, run := range []func(){
		func() { cx.RunForced(cp, x, []bool{true}) },
		func() { cx.PropForcedInto(cp, x, []bool{true}, make([]uint64, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("forced replay on a self-seeded cone did not panic")
				}
			}()
			run()
		}()
	}
}

// TestAlwaysPropConePropInto pins the inverter-chain shortcut: a site
// connected to an output through Not/Buf nodes only propagates at every
// vector, AlwaysProp proves it at compile time, and PropInto still
// computes the same all-ones mask when a caller replays anyway.
func TestAlwaysPropConePropInto(t *testing.T) {
	b := circuit.NewBuilder("chain")
	b.Input("a")
	b.Input("b")
	b.Gate(circuit.And, "g", "a", "b")
	b.Gate(circuit.Not, "n1", "g")
	b.Gate(circuit.Buf, "n2", "n1")
	b.Output("n2")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	p := CompileAll(c)
	x := NewExec(p, 1)
	x.Eval(0, 1)
	cx := NewConeExec(1)
	dst := make([]uint64, 1)
	for _, name := range []string{"g", "n1", "n2"} {
		n, ok := c.NodeByName(name)
		if !ok {
			t.Fatalf("node %q missing", name)
		}
		cp := p.CompileCone(n.ID)
		if !cp.AlwaysProp() {
			t.Fatalf("cone of %q: AlwaysProp = false, want true", name)
		}
		cx.PropInto(cp, x, dst)
		// Bits beyond the universe tail are unmasked by contract (the
		// bitset range stores mask them); compare universe bits only.
		mask := uint64(1)<<uint(c.VectorSpaceSize()) - 1
		if dst[0]&mask != mask {
			t.Fatalf("cone of %q: PropInto %#x, want all-ones %#x", name, dst[0]&mask, mask)
		}
	}
}
