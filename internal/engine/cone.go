package engine

import "fmt"

// ConeProgram is the compiled fanout cone of one line: the instructions
// that replay the circuit downstream of the line with its value flipped,
// reading untouched side inputs from the good-value bank of a full Program
// block and faulty values from a compact cone-local bank. Register 0 of the
// faulty bank is the flipped line itself; negative instruction operands ^r
// address good-bank register r.
//
// Streaming fault analysis runs one ConeProgram per fault line per block:
// the words where any reachable output disagrees with the good machine are
// exactly the line's flip-propagation mask for that block.
type ConeProgram struct {
	Site int
	// Sites lists every fault site of the cone in faulty-bank register
	// order: register i belongs to Sites[i]. Single-site cones (CompileCone)
	// have Sites = [Site]; multi-site cones (CompileCones) seed each site
	// register with a forced constant via RunForced.
	Sites   []int
	Instrs  []Instr
	NumRegs int
	// Outputs pairs, for every primary output reachable from the site, the
	// good-bank register with the faulty-bank register to compare.
	Outputs []ConeOut
}

// ConeOut is one observable output of a cone: Good addresses the full
// program's bank, Bad the cone-local bank.
type ConeOut struct {
	Good, Bad int32
}

// CompileCone lowers the transitive fanout cone of site against this
// program's register file. The program must come from CompileAll, so every
// side input the cone reads is materialized.
func (p *Program) CompileCone(site int) *ConeProgram {
	return p.CompileCones([]int{site})
}

// CompileCones lowers the union of several sites' fanout cones into one
// program: the faulty bank reserves registers 0..len(sites)-1 for the
// sites themselves (seeded by Run or RunForced), every downstream node in
// any site's cone is recomputed, and side inputs outside every cone read
// from the good bank. This is the kernel of multiple-fault analysis: force
// all sites at once, replay the union cone, compare reachable outputs.
func (p *Program) CompileCones(sites []int) *ConeProgram {
	p.mustKeepAll("CompileCones")
	c := p.Circuit
	inCone := make([]bool, c.NumNodes())
	for _, s := range sites {
		for id, in := range c.TransitiveFanout(s) {
			if in {
				inCone[id] = true
			}
		}
	}

	cp := &ConeProgram{Site: sites[0], Sites: append([]int(nil), sites...)}
	badReg := make([]int32, c.NumNodes())
	for i := range badReg {
		badReg[i] = -1
	}
	isSite := make([]bool, c.NumNodes())
	for i, s := range sites {
		badReg[s] = int32(i)
		isSite[s] = true
	}
	next := int32(len(sites))
	regOf := func(f int) int32 {
		if badReg[f] >= 0 {
			return badReg[f]
		}
		return ^p.NodeReg[f] // good bank
	}
	for _, id := range c.LevelOrder() {
		if !inCone[id] || isSite[id] {
			continue
		}
		dst := next
		next++
		badReg[id] = dst
		emitNode(c.Node(id), dst, regOf, &cp.Instrs)
	}
	cp.NumRegs = int(next)
	for _, o := range c.Outputs {
		if inCone[o] {
			cp.Outputs = append(cp.Outputs, ConeOut{Good: p.NodeReg[o], Bad: badReg[o]})
		}
	}
	return cp
}

// ConeExec is a reusable faulty-bank register file for cone programs. One
// ConeExec serves any number of cone programs of any size (the backing
// grows on demand); like Exec it is single-goroutine scratch.
type ConeExec struct {
	cap  int // words per register
	n    int // words of the current block
	regs []uint64
}

// NewConeExec returns a cone execution context for blocks of up to
// blockWords words.
func NewConeExec(blockWords int) *ConeExec {
	return &ConeExec{cap: blockWords}
}

// Run replays the cone over x's current block: the site register is filled
// with the flipped good value, then every cone instruction executes,
// reading good-bank operands from x.
func (cx *ConeExec) Run(cp *ConeProgram, x *Exec) {
	cx.bind(cp, x)
	site := x.Node(cp.Site)
	dst := cx.reg(0)
	for w := range dst {
		dst[w] = ^site[w]
	}
	cx.exec(cp, x)
}

// RunForced replays the cone with every site register held at a constant:
// vals[i] is the value forced onto cp.Sites[i] across the whole block.
// Comparing reachable outputs against the good machine afterwards (OrProp)
// yields exactly the vectors at which the multiple stuck-at fault
// {Sites[i] stuck at vals[i]} is detected — activation is implicit in the
// output comparison.
func (cx *ConeExec) RunForced(cp *ConeProgram, x *Exec, vals []bool) {
	if len(vals) != len(cp.Sites) {
		panic(fmt.Sprintf("engine: %d forced values for %d sites", len(vals), len(cp.Sites)))
	}
	cx.bind(cp, x)
	for i, v := range vals {
		fill := uint64(0)
		if v {
			fill = ^uint64(0)
		}
		dst := cx.reg(int32(i))
		for w := range dst {
			dst[w] = fill
		}
	}
	cx.exec(cp, x)
}

// bind sizes the faulty bank for cp over x's current block.
func (cx *ConeExec) bind(cp *ConeProgram, x *Exec) {
	if x.cap != cx.cap {
		panic(fmt.Sprintf("engine: cone block capacity %d != exec capacity %d", cx.cap, x.cap))
	}
	cx.n = x.n
	if need := cp.NumRegs * cx.cap; len(cx.regs) < need {
		cx.regs = make([]uint64, need)
	}
}

// exec interprets the cone instructions against the seeded site registers.
func (cx *ConeExec) exec(cp *ConeProgram, x *Exec) {
	for _, ins := range cp.Instrs {
		dst := cx.reg(ins.Dst)
		switch ins.Op {
		case OpCopy:
			copy(dst, cx.operand(ins.A, x))
		case OpNot:
			a := cx.operand(ins.A, x)
			for w := range dst {
				dst[w] = ^a[w]
			}
		case OpAnd:
			a, b := cx.operand(ins.A, x), cx.operand(ins.B, x)
			for w := range dst {
				dst[w] = a[w] & b[w]
			}
		case OpNand:
			a, b := cx.operand(ins.A, x), cx.operand(ins.B, x)
			for w := range dst {
				dst[w] = ^(a[w] & b[w])
			}
		case OpOr:
			a, b := cx.operand(ins.A, x), cx.operand(ins.B, x)
			for w := range dst {
				dst[w] = a[w] | b[w]
			}
		case OpNor:
			a, b := cx.operand(ins.A, x), cx.operand(ins.B, x)
			for w := range dst {
				dst[w] = ^(a[w] | b[w])
			}
		case OpXor:
			a, b := cx.operand(ins.A, x), cx.operand(ins.B, x)
			for w := range dst {
				dst[w] = a[w] ^ b[w]
			}
		case OpXnor:
			a, b := cx.operand(ins.A, x), cx.operand(ins.B, x)
			for w := range dst {
				dst[w] = ^(a[w] ^ b[w])
			}
		default:
			// Cones never contain inputs or constants: both are fanin-free.
			panic(fmt.Sprintf("engine: op %v in cone program", ins.Op))
		}
	}
}

// OrProp ORs into dst (length ≥ block words) the words where any reachable
// output of the cone disagrees with the good machine — the block's slice of
// the site's flip-propagation mask. Run must have executed for x's current
// block.
func (cx *ConeExec) OrProp(cp *ConeProgram, dst []uint64, x *Exec) {
	for _, co := range cp.Outputs {
		g := x.Reg(co.Good)
		b := cx.reg(co.Bad)
		for w := range g {
			dst[w] |= g[w] ^ b[w]
		}
	}
}

func (cx *ConeExec) reg(r int32) []uint64 {
	base := int(r) * cx.cap
	return cx.regs[base : base+cx.n]
}

func (cx *ConeExec) operand(r int32, x *Exec) []uint64 {
	if r < 0 {
		return x.Reg(^r)
	}
	return cx.reg(r)
}
