package engine

import (
	"fmt"
	"slices"

	"ndetect/internal/circuit"
)

// ConeProgram is the compiled fanout cone of one line: the instructions
// that replay the circuit downstream of the line with its value flipped,
// reading untouched side inputs from the good-value bank of a full Program
// block and faulty values from a compact cone-local bank. Register 0 of the
// faulty bank is the flipped line itself; negative instruction operands ^r
// address good-bank register r.
//
// Streaming fault analysis runs one ConeProgram per fault line per block:
// the words where any reachable output disagrees with the good machine are
// exactly the line's flip-propagation mask for that block.
//
// Instructions are grouped into per-output segments: segment k (the range
// Instrs[SegEnd[k-1]:SegEnd[k]]) holds exactly the not-yet-emitted cone
// logic output k depends on, so executing Instrs[:SegEnd[k]] computes
// Outputs[:k+1]. Logic shared between outputs lands in the first segment
// that needs it and is executed once; cone nodes reaching no output are
// never emitted at all.
type ConeProgram struct {
	Site int
	// Sites lists every fault site of the cone in faulty-bank register
	// order: register i belongs to Sites[i]. Single-site cones (CompileCone)
	// have Sites = [Site]; multi-site cones (CompileCones) seed each site
	// register with a forced constant via RunForced.
	Sites   []int
	Instrs  []Instr
	NumRegs int
	// Outputs pairs, for every primary output reachable from the site, the
	// good-bank register with the faulty-bank register to compare.
	Outputs []ConeOut
	// SegEnd[k] is the instruction boundary after which Outputs[k] is
	// computed; len(SegEnd) == len(Outputs).
	SegEnd []int32

	// alwaysProp records a compile-time proof that the flip propagates at
	// every vector: some reachable output is connected to the single site
	// by a chain of Buf/Branch/Not nodes only. Such a chain commutes with
	// complement, so the flipped site forces bad == ^good at that output at
	// every vector, making the propagation mask all-ones without replaying
	// anything. Only single-site flip semantics (Run/PropInto) support the
	// argument — forced constants (RunForced) do not complement the site.
	alwaysProp bool

	// selfSeed records that the program's first emitted definition computes
	// the flipped site itself (r0 ← NOT of the good-bank site register), so
	// Run/PropInto skip the external seeding pass — and, more importantly,
	// the fusion pass may fold the seeding NOT into its consumers and then
	// remove it entirely. Single-site cones only; forced replay
	// (RunForced/PropForcedInto) rejects self-seeded programs, since the
	// embedded complement would overwrite the forced constant.
	selfSeed bool
}

// AlwaysProp reports whether the flip provably propagates at every vector,
// so callers may substitute an all-ones mask for replaying the cone.
func (cp *ConeProgram) AlwaysProp() bool { return cp.alwaysProp }

// ConeOut is one observable output of a cone: Good addresses the full
// program's bank, Bad the cone-local bank.
type ConeOut struct {
	Good, Bad int32
}

// ConeCompiler compiles cone programs against one analysis program with
// reusable, epoch-stamped scratch: compiling many cones in a batch touches
// no per-cone node-count allocations. A compiler is single-goroutine
// scratch; the resulting ConePrograms are immutable and freely shared.
type ConeCompiler struct {
	p      *Program
	epoch  int32
	inCone []int32 // stamp: node is in the current fanout cone
	done   []int32 // stamp: node is a site or already emitted
	odd    []int32 // stamp: bad value is the complement of good at every vector
	badReg []int32
	queue  []int
	seg    []uint64 // packed (level, id) sort keys of the current segment
	instrs []Instr
	outs   []ConeOut
	segEnd []int32
	livev  []int32
	fz     fuser
	noFuse bool // see SetFusion

	// Chunked arenas backing the slices of emitted ConePrograms (see
	// arenaCopy).
	instrArena []Instr
	outArena   []ConeOut
	segArena   []int32
	siteArena  []int
}

// SetFusion toggles the peephole fusion pass (on by default). Fusion pays
// for itself when a compiled cone is replayed across many universe blocks;
// for one-block (small) universes the pass costs more compile time than the
// single replay saves, so the streaming layer turns it off there. The
// replayed values — and therefore every analysis result — are identical
// either way; only the instruction encoding differs.
func (cc *ConeCompiler) SetFusion(on bool) { cc.noFuse = !on }

// NewConeCompiler returns a cone compiler for this program. The program
// must come from CompileAll, so every side input a cone reads is
// materialized.
func (p *Program) NewConeCompiler() *ConeCompiler {
	p.mustKeepAll("NewConeCompiler")
	n := p.Circuit.NumNodes()
	cc := &ConeCompiler{
		p:      p,
		inCone: make([]int32, n),
		done:   make([]int32, n),
		odd:    make([]int32, n),
		badReg: make([]int32, n),
	}
	// Pre-size the fusion scratch for the largest possible cone — every
	// node gets at most one register, and a cone never emits more
	// instructions than the full program plus the seed — so batch
	// compilation never regrows it one cone size at a time.
	cc.fz.grow(n+1, len(p.Instrs)+1)
	return cc
}

// CompileCone lowers the transitive fanout cone of site against this
// program's register file.
func (p *Program) CompileCone(site int) *ConeProgram {
	return p.NewConeCompiler().Compile([]int{site})
}

// CompileCones lowers the union of several sites' fanout cones into one
// program: the faulty bank reserves registers 0..len(sites)-1 for the
// sites themselves (seeded by Run or RunForced), every downstream node on a
// path from any site to an output is recomputed, and side inputs outside
// every cone read from the good bank. This is the kernel of multiple-fault
// analysis: force all sites at once, replay the union cone, compare
// reachable outputs.
func (p *Program) CompileCones(sites []int) *ConeProgram {
	return p.NewConeCompiler().Compile(sites)
}

func (cc *ConeCompiler) regOf(f int) int32 {
	if cc.done[f] == cc.epoch {
		return cc.badReg[f]
	}
	return ^cc.p.NodeReg[f] // good bank
}

// Compile lowers the union fanout cone of sites. The result is a pure
// function of (program, sites): scratch reuse and batch order never change
// the emitted instructions.
func (cc *ConeCompiler) Compile(sites []int) *ConeProgram {
	cc.epoch++
	ep := cc.epoch
	c := cc.p.Circuit
	single := len(sites) == 1

	q := cc.queue[:0]
	for i, s := range sites {
		if cc.inCone[s] != ep {
			cc.inCone[s] = ep
			q = append(q, s)
		}
		cc.badReg[s] = int32(i)
		cc.done[s] = ep
		if single {
			cc.odd[s] = ep
		}
	}
	for len(q) > 0 {
		id := q[len(q)-1]
		q = q[:len(q)-1]
		for _, f := range c.Node(id).Fanout {
			if cc.inCone[f] != ep {
				cc.inCone[f] = ep
				q = append(q, f)
			}
		}
	}

	instrs := cc.instrs[:0]
	outs := cc.outs[:0]
	segEnd := cc.segEnd[:0]
	next := int32(len(sites))
	alwaysProp := false
	if single {
		// Self-seed: compute the flipped site as the program's first
		// instruction so fusion can fold the complement into consumers.
		instrs = append(instrs, Instr{Op: OpNot, Dst: 0, A: ^cc.p.NodeReg[sites[0]]})
	}
	for _, o := range c.Outputs {
		if cc.inCone[o] != ep {
			continue
		}
		if cc.done[o] != ep {
			// Collect the un-emitted cone logic this output depends on and
			// emit it in (level, id) order — deterministic and topological,
			// independent of the collection order.
			seg := cc.seg[:0]
			q = append(q[:0], o)
			cc.done[o] = ep
			for len(q) > 0 {
				id := q[len(q)-1]
				q = q[:len(q)-1]
				seg = append(seg, uint64(c.Node(id).Level)<<32|uint64(uint32(id)))
				for _, f := range c.Node(id).Fanin {
					if cc.inCone[f] == ep && cc.done[f] != ep {
						cc.done[f] = ep
						q = append(q, f)
					}
				}
			}
			slices.Sort(seg) // packed keys sort by (level, id)
			for _, key := range seg {
				id := int(uint32(key))
				n := c.Node(id)
				dst := next
				next++
				cc.badReg[id] = dst
				emitNode(n, dst, cc.regOf, &instrs)
				if single {
					switch n.Kind {
					case circuit.Buf, circuit.Branch, circuit.Not:
						if f := n.Fanin[0]; cc.odd[f] == ep {
							cc.odd[id] = ep
						}
					}
				}
			}
			cc.seg = seg[:0]
		}
		outs = append(outs, ConeOut{Good: cc.p.NodeReg[o], Bad: cc.badReg[o]})
		segEnd = append(segEnd, int32(len(instrs)))
		if cc.odd[o] == ep {
			alwaysProp = true
		}
	}
	cc.queue = q[:0]

	if !cc.noFuse && len(instrs) > 0 {
		livev := cc.livev[:0]
		for _, co := range outs {
			livev = append(livev, co.Bad)
		}
		instrs = cc.fz.fuse(instrs, int(next), livev, segEnd)
		cc.livev = livev[:0]
	}

	cp := &ConeProgram{
		Site:       sites[0],
		Sites:      arenaCopy(&cc.siteArena, sites),
		NumRegs:    int(next),
		alwaysProp: alwaysProp,
		selfSeed:   single,
	}
	if len(instrs) > 0 {
		cp.Instrs = arenaCopy(&cc.instrArena, instrs)
	}
	if len(outs) > 0 {
		cp.Outputs = arenaCopy(&cc.outArena, outs)
		cp.SegEnd = arenaCopy(&cc.segArena, segEnd)
	}
	cc.instrs = instrs[:0]
	cc.outs = outs[:0]
	cc.segEnd = segEnd[:0]
	return cp
}

// arenaCopy copies src into chunked arena storage, returning a right-capped
// slice. Compiling one cone program emits four small immutable slices; a
// batch of hundreds of cones would hand the garbage collector thousands of
// tiny objects to track, so each compiler carves them out of shared chunks
// with the same lifetime instead.
func arenaCopy[T any](arena *[]T, src []T) []T {
	if len(*arena) < len(src) {
		*arena = make([]T, max(arenaChunk, len(src)))
	}
	dst := (*arena)[:len(src):len(src)]
	*arena = (*arena)[len(src):]
	copy(dst, src)
	return dst
}

// arenaChunk sizes compiler arena chunks in elements; cone segments are
// small, so one chunk serves many compiled programs.
const arenaChunk = 1024

// ConeExec is a reusable faulty-bank register file for cone programs. One
// ConeExec serves any number of cone programs of any size (the backing
// grows on demand); like Exec it is single-goroutine scratch.
type ConeExec struct {
	cap  int // words per register
	n    int // words of the current block
	regs []uint64
}

// NewConeExec returns a cone execution context for blocks of up to
// blockWords words.
func NewConeExec(blockWords int) *ConeExec {
	return &ConeExec{cap: blockWords}
}

// Reserve pre-sizes the faulty bank for cones of up to numRegs registers.
// Replay loops that visit many cones in ascending-size order call it once
// with the maximum, so bind never regrows the bank one size step at a time.
func (cx *ConeExec) Reserve(numRegs int) {
	if need := numRegs * cx.cap; len(cx.regs) < need {
		cx.regs = make([]uint64, need)
	}
}

// Run replays the cone over x's current block: the site register is filled
// with the flipped good value, then every cone instruction executes,
// reading good-bank operands from x.
func (cx *ConeExec) Run(cp *ConeProgram, x *Exec) {
	cx.bind(cp, x)
	if !cp.selfSeed {
		notWords(cx.reg(0), x.Node(cp.Site))
	}
	cx.execInstrs(cp.Instrs, x)
}

// RunForced replays the cone with every site register held at a constant:
// vals[i] is the value forced onto cp.Sites[i] across the whole block.
// Comparing reachable outputs against the good machine afterwards (OrProp)
// yields exactly the vectors at which the multiple stuck-at fault
// {Sites[i] stuck at vals[i]} is detected — activation is implicit in the
// output comparison.
func (cx *ConeExec) RunForced(cp *ConeProgram, x *Exec, vals []bool) {
	cx.seedForced(cp, x, vals)
	cx.execInstrs(cp.Instrs, x)
}

func (cx *ConeExec) seedForced(cp *ConeProgram, x *Exec, vals []bool) {
	if cp.selfSeed {
		panic("engine: forced replay on a self-seeded (single-site flip) cone program")
	}
	if len(vals) != len(cp.Sites) {
		panic(fmt.Sprintf("engine: %d forced values for %d sites", len(vals), len(cp.Sites)))
	}
	cx.bind(cp, x)
	for i, v := range vals {
		fill := uint64(0)
		if v {
			fill = ^uint64(0)
		}
		fillWords(cx.reg(int32(i)), fill)
	}
}

// PropInto writes into dst (length ≥ block words) the block's slice of the
// site's flip-propagation mask: the words where any reachable output
// disagrees with the good machine under the flipped site. It overwrites dst
// (no pre-clearing needed) and replays the cone one output segment at a
// time, stopping as soon as the mask saturates to all-ones — further
// outputs can only OR into saturated words, so skipping them is exactly
// identity-preserving, and the cut depends only on register data, never on
// worker schedule. Single-site cones only.
func (cx *ConeExec) PropInto(cp *ConeProgram, x *Exec, dst []uint64) {
	if len(cp.Sites) != 1 {
		panic(fmt.Sprintf("engine: PropInto on a %d-site cone", len(cp.Sites)))
	}
	cx.bind(cp, x)
	dst = dst[:cx.n]
	if len(cp.Outputs) == 0 {
		fillWords(dst, 0)
		return
	}
	if !cp.selfSeed {
		notWords(cx.reg(0), x.Node(cp.Site))
	}
	cx.propSegments(cp, x, dst)
}

// PropForcedInto is PropInto for forced multi-site replay (RunForced
// semantics): it overwrites dst with the detection mask of the multiple
// stuck-at fault {Sites[i] stuck at vals[i]}, with the same segmented
// early exit.
func (cx *ConeExec) PropForcedInto(cp *ConeProgram, x *Exec, vals []bool, dst []uint64) {
	cx.seedForced(cp, x, vals)
	dst = dst[:cx.n]
	if len(cp.Outputs) == 0 {
		fillWords(dst, 0)
		return
	}
	cx.propSegments(cp, x, dst)
}

func (cx *ConeExec) propSegments(cp *ConeProgram, x *Exec, dst []uint64) {
	start := int32(0)
	last := len(cp.Outputs) - 1
	for k, co := range cp.Outputs {
		end := cp.SegEnd[k]
		cx.execInstrs(cp.Instrs[start:end], x)
		start = end
		g, b := x.Reg(co.Good), cx.reg(co.Bad)
		var sat uint64
		if k == 0 {
			sat = setDiffWords(dst, g, b)
		} else {
			sat = orDiffWords(dst, g, b)
		}
		if sat == ^uint64(0) && k < last {
			return // saturated: drop the remaining segments
		}
	}
}

// bind sizes the faulty bank for cp over x's current block.
func (cx *ConeExec) bind(cp *ConeProgram, x *Exec) {
	if x.cap != cx.cap {
		panic(fmt.Sprintf("engine: cone block capacity %d != exec capacity %d", cx.cap, x.cap))
	}
	cx.n = x.n
	if need := cp.NumRegs * cx.cap; len(cx.regs) < need {
		cx.regs = make([]uint64, need)
	}
}

// execInstrs interprets cone instructions against the seeded site
// registers, resolving negative operands to x's good bank.
func (cx *ConeExec) execInstrs(instrs []Instr, x *Exec) {
	for _, ins := range instrs {
		dst := cx.reg(ins.Dst)
		switch ins.Op {
		case OpCopy:
			copy(dst, cx.operand(ins.A, x))
		case OpNot:
			notWords(dst, cx.operand(ins.A, x))
		case OpAnd:
			andWords(dst, cx.operand(ins.A, x), cx.operand(ins.B, x))
		case OpNand:
			nandWords(dst, cx.operand(ins.A, x), cx.operand(ins.B, x))
		case OpOr:
			orWords(dst, cx.operand(ins.A, x), cx.operand(ins.B, x))
		case OpNor:
			norWords(dst, cx.operand(ins.A, x), cx.operand(ins.B, x))
		case OpXor:
			xorWords(dst, cx.operand(ins.A, x), cx.operand(ins.B, x))
		case OpXnor:
			xnorWords(dst, cx.operand(ins.A, x), cx.operand(ins.B, x))
		case OpAndN:
			andnWords(dst, cx.operand(ins.A, x), cx.operand(ins.B, x))
		case OpOrN:
			ornWords(dst, cx.operand(ins.A, x), cx.operand(ins.B, x))
		case OpAndAcc:
			andAccWords(dst, cx.operand(ins.B, x))
		case OpNandAcc:
			nandAccWords(dst, cx.operand(ins.B, x))
		case OpOrAcc:
			orAccWords(dst, cx.operand(ins.B, x))
		case OpNorAcc:
			norAccWords(dst, cx.operand(ins.B, x))
		case OpXorAcc:
			xorAccWords(dst, cx.operand(ins.B, x))
		case OpXnorAcc:
			xnorAccWords(dst, cx.operand(ins.B, x))
		default:
			// Cones never contain inputs or constants: both are fanin-free.
			panic(fmt.Sprintf("engine: op %v in cone program", ins.Op))
		}
	}
}

// OrProp ORs into dst (length ≥ block words) the words where any reachable
// output of the cone disagrees with the good machine — the block's slice of
// the site's flip-propagation mask. Run or RunForced must have executed for
// x's current block.
func (cx *ConeExec) OrProp(cp *ConeProgram, dst []uint64, x *Exec) {
	for _, co := range cp.Outputs {
		orDiffWords(dst[:cx.n], x.Reg(co.Good), cx.reg(co.Bad))
	}
}

func (cx *ConeExec) reg(r int32) []uint64 {
	base := int(r) * cx.cap
	return cx.regs[base : base+cx.n]
}

func (cx *ConeExec) operand(r int32, x *Exec) []uint64 {
	if r < 0 {
		return x.Reg(^r)
	}
	return cx.reg(r)
}
