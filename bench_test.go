package ndetect

// The benchmark harness: one testing.B benchmark per table/figure of the
// paper, plus the ablation benches DESIGN.md §6 calls out. Each table bench
// exercises exactly the code path cmd/paper uses to regenerate that table,
// on a trimmed circuit list / K so `go test -bench=.` stays laptop-sized;
// cmd/paper runs the full sweep (`-k5 10000 -k6 1000 -ge11cap 0` for
// paper-scale statistics).

import (
	"testing"

	"ndetect/internal/bench"
	"ndetect/internal/bitset"
	"ndetect/internal/encode"
	"ndetect/internal/engine"
	"ndetect/internal/exp"
	"ndetect/internal/fault"
	core "ndetect/internal/ndetect"
	"ndetect/internal/partition"
	"ndetect/internal/sim"
	"ndetect/internal/synth"
)

// ---- Table and figure benches ------------------------------------------

// BenchmarkTable2 regenerates Table 2 rows (worst-case coverage CDF) for a
// representative circuit spread: tiny (lion), mid (bbara), large-tail
// (dvram).
func BenchmarkTable2(b *testing.B) {
	cfg := exp.Config{Circuits: []string{"lion", "bbara", "dvram"}}
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table2(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkTable3 regenerates Table 3 rows (worst-case tail counts) for two
// tail circuits.
func BenchmarkTable3(b *testing.B) {
	cfg := exp.Config{Circuits: []string{"log", "fetch"}}
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table3(cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 regenerates the Figure 2 histogram for dvram.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := exp.Figure2("dvram", 100)
		if err != nil {
			b.Fatal(err)
		}
		if len(s) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkTable5 regenerates a Table 5 row (average case, Definition 1) at
// reduced K.
func BenchmarkTable5(b *testing.B) {
	cfg := exp.Config{Circuits: []string{"bbara", "log"}, K5: 100, Ge11Limit: 100}
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table5(cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6 regenerates a Table 6 row (Definition 1 vs 2) at reduced K.
func BenchmarkTable6(b *testing.B) {
	cfg := exp.Config{Circuits: []string{"bbara"}, K6: 50, Ge11Limit: 50}
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table6(cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// runAllBenchConfig is the circuit spread the RunAll ablation pair below
// shares: enough circuits that the circuit-level fan-out has work to
// balance, worst-case analysis only (Tables 2+3) so the bench isolates the
// engine rather than Procedure 1's own worker pool.
func runAllBenchConfig() exp.Config {
	return exp.Config{Circuits: []string{"lion", "train4", "bbara", "beecount", "log", "fetch"}}
}

// BenchmarkRunAllSerial pins the single-worker reproduction pass — the
// pre-parallel-engine baseline (Workers=1 is bit-for-bit the old serial
// path).
func BenchmarkRunAllSerial(b *testing.B) {
	cfg := runAllBenchConfig()
	cfg.Workers = 1
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunAll(cfg, "", false, false, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAllParallel runs the same pass with one worker per CPU. The
// worker budget is split across levels (see exp.mapCircuits): with ≤ 6
// cores this measures the circuit-level fan-out (inner pools get 1 worker);
// beyond that the fault-level and word-shard pools engage too. The ratio to
// BenchmarkRunAllSerial is the engine's multi-core speedup; the outputs are
// identical (see exp.TestRunAllWorkersDeterministic).
func BenchmarkRunAllParallel(b *testing.B) {
	cfg := runAllBenchConfig() // Workers 0 = GOMAXPROCS
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunAll(cfg, "", false, false, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitionedAnalysis measures the end-to-end large-circuit
// pipeline (Split → per-part exhaustive analysis → MergeNMin) on the
// embedded 64-input .bench sample — the workload class the exhaustive
// engine cannot touch at all (2^64 vectors). One worker per CPU; the
// budget is split between concurrent parts and their inner simulation.
func BenchmarkPartitionedAnalysis(b *testing.B) {
	c, err := EmbeddedBenchCircuit("w64")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := AnalyzePartitioned(c, PartitionOptions{MaxInputs: 16}, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Merged) == 0 {
			b.Fatal("empty merge")
		}
	}
}

// BenchmarkSweepSharedUniverse measures the sweep engine's point: S
// option variants over one circuit with the exhaustive universe
// constructed once (exp.Sweep) versus recomputed per variant (one
// exp.AnalyzeCircuit each). The documents are byte-identical either way
// (exp.TestSweepSharesUniverseAndMatchesColdRuns); the ratio is what the
// universe tier of the artifact store saves every warm request
// (DESIGN.md §11).
func BenchmarkSweepSharedUniverse(b *testing.B) {
	c := mustCircuit(b, "bbara")
	variants, err := exp.ParseSweep("analysis=average;nmax=10;k=20;seed=1..4")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			docs, err := exp.Sweep(c, variants, exp.SweepOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if len(docs) != len(variants) {
				b.Fatal("variant count mismatch")
			}
		}
	})
	b.Run("recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, v := range variants {
				if _, err := exp.AnalyzeCircuit(c, v); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkWorstCaseExample runs the worst-case analysis on the paper's
// published Table 1 detection sets.
func BenchmarkWorstCaseExample(b *testing.B) {
	mk := func(members ...int) *bitset.Set { return bitset.FromMembers(16, members...) }
	u := &Universe{
		Size: 16,
		Targets: []Fault{
			{Name: "1/1", T: mk(4, 5, 6, 7)},
			{Name: "2/0", T: mk(6, 7, 12, 13, 14, 15)},
			{Name: "3/0", T: mk(2, 6, 7, 10, 14, 15)},
			{Name: "8/0", T: mk(2, 6, 10, 14)},
			{Name: "9/1", T: mk(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11)},
			{Name: "10/0", T: mk(6, 7, 14, 15)},
			{Name: "11/0", T: mk(1, 2, 3, 5, 6, 7, 9, 10, 11, 13, 14, 15)},
		},
		Untargeted: []Fault{{Name: "(9,0,10,1)", T: mk(6, 7)}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wc := WorstCase(u)
		if wc.NMin[0] != 3 {
			b.Fatalf("nmin = %d, want 3", wc.NMin[0])
		}
	}
}

// ---- Ablation benches (DESIGN.md §6) -------------------------------------

func mustCircuit(b *testing.B, name string) *Circuit {
	b.Helper()
	bm, ok := bench.ByName(name)
	if !ok {
		b.Fatalf("unknown benchmark %s", name)
	}
	r, err := bm.SynthesizeDefault()
	if err != nil {
		b.Fatal(err)
	}
	return r.Circuit
}

// BenchmarkExhaustiveParallel measures 64-way bit-parallel materialization
// of every node's universe bitset — the old production path, kept behind
// sim.RunRetained as the ablation baseline for the streaming engine.
func BenchmarkExhaustiveParallel(b *testing.B) {
	c := mustCircuit(b, "bbara")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunRetained(c, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineCompile measures lowering a circuit into the engine's
// levelized instruction programs: the pinned analysis program plus the
// output-directed program with register reuse.
func BenchmarkEngineCompile(b *testing.B) {
	c := mustCircuit(b, "bbara")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.CompileAll(c)
		engine.Compile(c, nil)
	}
}

// BenchmarkEngineStream measures the streaming T-set kernel end to end —
// compile, then stream U in word blocks accumulating only per-fault result
// bitsets. Two workload classes: "bbara" is a small-universe STG benchmark
// (one block, cone-compile-bound), "w64" is the embedded 64-input .bench
// sample split into exhaustive parts (2^16-vector universes, replay-bound).
// The MB/s metric counts the universe words streamed — one good-machine
// pass plus one propagation pass per fault line — and is what the CI perf
// gate compares against BenchmarkMemBandwidth (see cmd/benchjson -gate).
func BenchmarkEngineStream(b *testing.B) {
	b.Run("bbara", func(b *testing.B) {
		c := mustCircuit(b, "bbara")
		u, err := Analyze(c)
		if err != nil {
			b.Fatal(err)
		}
		faults := u.StuckAt()
		lines := map[int]bool{}
		for _, f := range faults {
			lines[f.Node] = true
		}
		nWords := (c.VectorSpaceSize() + 63) / 64
		b.SetBytes(int64((len(lines) + 1) * nWords * 8))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e, err := sim.Run(c)
			if err != nil {
				b.Fatal(err)
			}
			e.StuckAtTSets(faults)
		}
	})
	b.Run("w64", func(b *testing.B) {
		c, err := EmbeddedBenchCircuit("w64")
		if err != nil {
			b.Fatal(err)
		}
		parts, err := partition.Split(c, partition.Options{MaxInputs: 16})
		if err != nil {
			b.Fatal(err)
		}
		var streamed int64
		faultsOf := make([][]fault.StuckAt, len(parts))
		for pi, p := range parts {
			faultsOf[pi] = fault.AllStuckAt(p.Circuit)
			lines := map[int]bool{}
			for _, f := range faultsOf[pi] {
				lines[f.Node] = true
			}
			nWords := (p.Circuit.VectorSpaceSize() + 63) / 64
			streamed += int64((len(lines) + 1) * nWords * 8)
		}
		b.SetBytes(streamed)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for pi, p := range parts {
				e, err := sim.Run(p.Circuit)
				if err != nil {
					b.Fatal(err)
				}
				e.StuckAtTSets(faultsOf[pi])
			}
		}
	})
}

// BenchmarkMemBandwidth is the memcpy baseline the stream kernel is gated
// against: copying a buffer the size of a w64-class part's streamed state
// is the fastest any universe pass can possibly go, so the EngineStream
// MB/s divided by this MB/s is a machine-independent efficiency ratio —
// which is what the CI perf gate checks (a ratio regression > 20% fails).
func BenchmarkMemBandwidth(b *testing.B) {
	const size = 8 << 20
	src := make([]byte, size)
	dst := make([]byte, size)
	for i := range src {
		src[i] = byte(i)
	}
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(dst, src)
	}
}

// BenchmarkTransitionTSets measures the transition-model universe build
// end to end: stream the single-vector launch/initialization factors, then
// lift every T-set into the |U|² pair space by outer product. Compare
// against BenchmarkEngineStream on the same circuit for the cost of the
// pair-space lift itself — no pair-space simulation ever runs.
func BenchmarkTransitionTSets(b *testing.B) {
	c := mustCircuit(b, "bbtas")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, err := AnalyzeModel(c, "transition", AnalyzeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(u.Untargeted) == 0 {
			b.Fatal("no transition faults kept")
		}
	}
}

// BenchmarkExhaustiveNaive measures scalar per-vector simulation (the
// ablation baseline).
func BenchmarkExhaustiveNaive(b *testing.B) {
	c := mustCircuit(b, "bbara")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.NaiveExhaustive(c)
	}
}

// BenchmarkTSetsViaPropMasks measures T-set extraction alone (cone replay
// shared per line, the production streaming path) against a pre-built
// simulation view, isolating it from compile time.
func BenchmarkTSetsViaPropMasks(b *testing.B) {
	c := mustCircuit(b, "bbara")
	e, err := sim.Run(c)
	if err != nil {
		b.Fatal(err)
	}
	faults := allStuckAt(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.StuckAtTSets(faults)
	}
}

// BenchmarkTSetsPerFault measures per-fault scalar resimulation (the
// ablation baseline) on a slice of the fault list.
func BenchmarkTSetsPerFault(b *testing.B) {
	c := mustCircuit(b, "bbara")
	faults := allStuckAt(c)
	if len(faults) > 40 {
		faults = faults[:40] // the naive path is ~1000× slower; sample it
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range faults {
			sim.NaiveStuckAtTSet(c, f)
		}
	}
}

func allStuckAt(c *Circuit) []StuckAt {
	u, err := Analyze(c)
	if err != nil {
		panic(err)
	}
	return u.StuckAt()
}

// BenchmarkProcedure1Def1 measures random test set construction under plain
// detection counting.
func BenchmarkProcedure1Def1(b *testing.B) {
	u, err := LoadBenchmark("bbara")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Procedure1(&u.Universe, Procedure1Options{NMax: 10, K: 20, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProcedure1Def2 measures the same construction under Definition 2
// (similarity-filtered counting via 3-valued simulation).
func BenchmarkProcedure1Def2(b *testing.B) {
	u, err := LoadBenchmark("bbara")
	if err != nil {
		b.Fatal(err)
	}
	checker := NewDef2Checker(u)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := Procedure1Options{NMax: 10, K: 20, Seed: 1, Definition: Def2, Checker: checker}
		if _, err := Procedure1(&u.Universe, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodings compares synthesis + universe construction across
// state encodings (DESIGN.md §6: encoding shapes the circuit and so the
// nmin distribution).
func BenchmarkEncodings(b *testing.B) {
	bm, _ := bench.ByName("beecount")
	m, err := bm.STG()
	if err != nil {
		b.Fatal(err)
	}
	for _, style := range []string{encode.Binary, encode.Gray, encode.OneHot} {
		b.Run(style, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := synth.Synthesize(m, synth.Options{EncodingStyle: style, MultiLevel: true, MaxFanin: 4})
				if err != nil {
					b.Fatal(err)
				}
				u, err := core.FromCircuit(r.Circuit)
				if err != nil {
					b.Fatal(err)
				}
				core.WorstCase(&u.Universe)
			}
		})
	}
}

// BenchmarkTwoLevelVsMultiLevel compares the synthesis styles end to end —
// the ablation behind the multi-level decision (two-level mapping collapses
// nearly every bridge to nmin = 1; see synth/multilevel.go).
func BenchmarkTwoLevelVsMultiLevel(b *testing.B) {
	bm, _ := bench.ByName("bbara")
	m, err := bm.STG()
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts synth.Options
	}{
		{"two-level", synth.Options{}},
		{"multi-level", synth.Options{MultiLevel: true, MaxFanin: 4}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := synth.Synthesize(m, tc.opts)
				if err != nil {
					b.Fatal(err)
				}
				u, err := core.FromCircuit(r.Circuit)
				if err != nil {
					b.Fatal(err)
				}
				core.WorstCase(&u.Universe)
			}
		})
	}
}

// BenchmarkSetSizeGrowth records mean n-detection test set sizes across n
// (the paper's premise that size grows roughly linearly with n).
func BenchmarkSetSizeGrowth(b *testing.B) {
	u, err := LoadBenchmark("opus")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Procedure1(&u.Universe, Procedure1Options{NMax: 10, K: 10, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("mean sizes: n=1 %.1f, n=5 %.1f, n=10 %.1f",
				res.MeanSetSize(1), res.MeanSetSize(5), res.MeanSetSize(10))
		}
	}
}
