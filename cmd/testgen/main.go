// Command testgen generates a compact n-detection test set for a circuit
// and reports its size against the theoretical lower bound and its
// untargeted (bridging) fault coverage. The output format (one decimal
// vector per line) feeds directly into faultsim -tests.
//
// Usage:
//
//	testgen -bench keyb -n 5 -o tests.txt
//	testgen -netlist adder.net -n 3 -workers 8
//	faultsim -bench keyb -tests tests.txt -verify 5
//
// -workers bounds the fault-universe construction like every other binary
// (0 = one per CPU, 1 = serial); the generated test set is identical for
// every value (DESIGN.md §5). Generation itself is deterministic greedy
// selection.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"ndetect"
)

func main() {
	var (
		benchF   = flag.String("bench", "", "embedded benchmark name")
		netF     = flag.String("netlist", "", "netlist file")
		nF       = flag.Int("n", 1, "detections per target fault")
		outF     = flag.String("o", "", "output file (default stdout)")
		quietF   = flag.Bool("q", false, "suppress the stderr summary")
		workersF = flag.Int("workers", 0, "worker pool size for the fault-universe construction (0 = one per CPU, 1 = serial; DESIGN.md §5)")
	)
	flag.Parse()
	if *nF < 1 {
		fail(fmt.Errorf("-n must be ≥ 1"))
	}

	var c *ndetect.Circuit
	switch {
	case *benchF != "" && *netF == "":
		b, ok := ndetect.BenchmarkByName(*benchF)
		if !ok {
			fail(fmt.Errorf("unknown benchmark %q", *benchF))
		}
		r, err := b.SynthesizeDefault()
		if err != nil {
			fail(err)
		}
		c = r.Circuit
	case *netF != "" && *benchF == "":
		f, err := os.Open(*netF)
		if err != nil {
			fail(err)
		}
		cc, err := ndetect.ReadNetlist(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		c = cc
	default:
		fail(fmt.Errorf("specify exactly one of -bench or -netlist"))
	}

	u, err := ndetect.AnalyzeParallel(c, *workersF)
	if err != nil {
		fail(err)
	}
	ts := ndetect.GenerateCompact(&u.Universe, *nF)

	out := os.Stdout
	if *outF != "" {
		f, err := os.Create(*outF)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	fmt.Fprintf(w, "# compact %d-detection test set for %s (%d vectors)\n", *nF, c.Name, ts.Len())
	for _, v := range ts.Vectors() {
		fmt.Fprintln(w, v)
	}
	if err := w.Flush(); err != nil {
		fail(err)
	}

	if !*quietF {
		cov := ndetect.UntargetedCoverage(ts, u.Untargeted)
		fmt.Fprintf(os.Stderr, "%s: %d vectors (lower bound %d) for n=%d over %d target faults\n",
			c.Name, ts.Len(), ndetect.TestSetLowerBound(&u.Universe, *nF), *nF, len(u.Targets))
		fmt.Fprintf(os.Stderr, "bridging coverage: %d/%d (%.2f%%)\n",
			cov, len(u.Untargeted), 100*float64(cov)/float64(max(len(u.Untargeted), 1)))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "testgen:", err)
	os.Exit(1)
}
