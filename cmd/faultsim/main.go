// Command faultsim is an exhaustive fault simulator: given a circuit and a
// test set, it reports stuck-at and bridging fault coverage, per-fault
// detection counts (Definition 1 and, optionally, Definition 2), and can
// verify the n-detection property.
//
// Usage:
//
//	faultsim -netlist FILE [-format net|bench] [-tests FILE] [-verify N] [-def2] [-faults]
//	faultsim -bench NAME  ...
//
// -format bench parses the file as an ISCAS-85/89 .bench netlist (DFFs
// stripped to the full-scan combinational view); -bench also accepts the
// embedded .bench samples (c17, s27, w64) besides the FSM surrogates.
//
// The test set file holds one input vector per line, in the paper's
// decimal MSB-first notation (e.g. "6" means 0110 for a 4-input circuit);
// blank lines and #-comments are ignored. Without -tests, the exhaustive
// set U is used (reporting plain detectability).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"ndetect"
)

func main() {
	var (
		netF     = flag.String("netlist", "", "netlist file")
		formatF  = flag.String("format", "net", `syntax of the -netlist file: "net" or "bench" (ISCAS .bench)`)
		benchF   = flag.String("bench", "", "embedded benchmark name")
		testsF   = flag.String("tests", "", "test set file (decimal vectors; default: exhaustive)")
		verifyF  = flag.Int("verify", 0, "verify the test set is an N-detection test set")
		def2F    = flag.Bool("def2", false, "also count detections under Definition 2")
		faultsF  = flag.Bool("faults", false, "per-fault detail")
		workersF = flag.Int("workers", 0, "worker pool size for the exhaustive analysis (0 = one per CPU, 1 = serial)")
	)
	flag.Parse()

	var c *ndetect.Circuit
	switch {
	case *netF != "" && *benchF == "":
		f, err := os.Open(*netF)
		if err != nil {
			fail(err)
		}
		var cc *ndetect.Circuit
		switch *formatF {
		case "net", "":
			cc, err = ndetect.ReadNetlist(f)
		case "bench":
			cc, err = ndetect.ReadBench(strings.TrimSuffix(filepath.Base(*netF), ".bench"), f)
		default:
			err = fmt.Errorf("unknown -format %q (want net or bench)", *formatF)
		}
		f.Close()
		if err != nil {
			fail(err)
		}
		c = cc
	case *benchF != "" && *netF == "":
		b, ok := ndetect.BenchmarkByName(*benchF)
		if !ok {
			cc, err := ndetect.EmbeddedBenchCircuit(*benchF)
			if err != nil {
				var names []string
				for _, bm := range ndetect.Benchmarks() {
					names = append(names, bm.Name)
				}
				names = append(names, ndetect.EmbeddedBenchNames()...)
				fail(fmt.Errorf("unknown benchmark %q; known: %s", *benchF, strings.Join(names, " ")))
			}
			c = cc
			break
		}
		r, err := b.SynthesizeDefault()
		if err != nil {
			fail(err)
		}
		c = r.Circuit
	default:
		fail(fmt.Errorf("specify exactly one of -netlist or -bench"))
	}

	u, err := ndetect.AnalyzeParallel(c, *workersF)
	if err != nil {
		fail(err)
	}

	ts := ndetect.NewTestSet(u.Size)
	if *testsF != "" {
		if err := readTests(*testsF, u.Size, ts); err != nil {
			fail(err)
		}
	} else {
		for v := 0; v < u.Size; v++ {
			ts.Add(v)
		}
	}

	fmt.Printf("circuit %s: %s\n", c.Name, c.ComputeStats())
	fmt.Printf("test set: %d vectors\n\n", ts.Len())

	// Stuck-at coverage.
	saDet, saDetectable := 0, 0
	for _, f := range u.Targets {
		if !f.T.IsEmpty() {
			saDetectable++
			if ts.Detects(f) {
				saDet++
			}
		}
	}
	fmt.Printf("stuck-at (collapsed): %d/%d detectable faults detected (%.2f%%)\n",
		saDet, saDetectable, pct(saDet, saDetectable))
	fmt.Printf("collapse ratio:       %.3f (equivalence collapsing kept %d targets)\n",
		ndetect.StuckAtCollapseRatio(c), len(u.Targets))

	brDet := 0
	for _, g := range u.Untargeted {
		if ts.Detects(g) {
			brDet++
		}
	}
	fmt.Printf("four-way bridging:    %d/%d detectable faults detected (%.2f%%)\n\n",
		brDet, len(u.Untargeted), pct(brDet, len(u.Untargeted)))

	if *verifyF > 0 {
		if ts.IsNDetection(*verifyF, u.Targets) {
			fmt.Printf("test set IS a %d-detection test set (Definition 1)\n", *verifyF)
		} else {
			fmt.Printf("test set is NOT a %d-detection test set (Definition 1)\n", *verifyF)
			for _, f := range u.Targets {
				d := ts.Detections(f)
				if d < *verifyF && d < f.N() {
					fmt.Printf("  %-20s detected %d times, N(f)=%d\n", f.Name, d, f.N())
				}
			}
		}
		fmt.Println()
	}

	if *faultsF {
		var checker ndetect.DistinctChecker
		if *def2F {
			checker = ndetect.NewDef2Checker(u)
		}
		fmt.Println("per-fault stuck-at detail:")
		for i, f := range u.Targets {
			d1 := ts.Detections(f)
			line := fmt.Sprintf("  %-20s N=%-5d det1=%d", f.Name, f.N(), d1)
			if checker != nil {
				line += fmt.Sprintf(" det2=%d", def2Count(checker, i, f, ts))
			}
			fmt.Println(line)
		}
	}
}

// def2Count greedily counts Definition 2 detections of fault i by the test
// set, processing tests in insertion order.
func def2Count(checker ndetect.DistinctChecker, i int, f ndetect.Fault, ts *ndetect.TestSet) int {
	var counted []int
	for _, v := range ts.Vectors() {
		if !f.T.Contains(v) {
			continue
		}
		ok := true
		for _, m := range counted {
			if !checker.Distinct(i, v, m) {
				ok = false
				break
			}
		}
		if ok {
			counted = append(counted, v)
		}
	}
	return len(counted)
}

func readTests(path string, size int, ts *ndetect.TestSet) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 || v >= size {
			return fmt.Errorf("%s:%d: bad vector %q (universe size %d)", path, line, s, size)
		}
		ts.Add(v)
	}
	return sc.Err()
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "faultsim:", err)
	os.Exit(1)
}
