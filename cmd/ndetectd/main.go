// Command ndetectd is the analysis server: a long-lived daemon that
// accepts circuits over HTTP, runs the worst-case, average-case or
// partitioned analysis, deduplicates identical in-flight requests, and
// caches results under a canonical content address (DESIGN.md §10).
//
// Because every analysis is a pure function of (circuit, options, seed),
// a cached response is byte-identical to the cold run — and identical to
// `ndetect -json` for the same circuit and options.
//
//	ndetectd -addr :8414 -workers 8 -cache 256
//
//	# enqueue the embedded bbtas benchmark
//	curl -s localhost:8414/jobs -d '{"benchmark":"bbtas","analysis":"worstcase"}'
//	# poll status, then fetch the result
//	curl -s localhost:8414/jobs/<id>
//	curl -s localhost:8414/jobs/<id>/result
//
// Endpoints: POST /jobs, GET /jobs/{id}, GET /jobs/{id}/result,
// GET /healthz, GET /metrics. See internal/service for the API shapes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ndetect/internal/service"
	"ndetect/internal/sim"
)

func main() {
	var (
		addrF    = flag.String("addr", ":8414", "listen address")
		workersF = flag.Int("workers", 0, "server-wide worker budget, split across concurrent jobs (0 = one per CPU; DESIGN.md §5/§10)")
		cacheF   = flag.Int("cache", service.DefaultCacheEntries, "result cache capacity (LRU entries)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: ndetectd [-addr :8414] [-workers N] [-cache N]")
		os.Exit(2)
	}

	m := service.NewManager(service.Config{Workers: *workersF, CacheEntries: *cacheF})
	srv := &http.Server{
		Addr:              *addrF,
		Handler:           service.NewServer(m).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	log.Printf("ndetectd: listening on %s (workers=%d, cache=%d entries)",
		*addrF, sim.ResolveWorkers(*workersF), *cacheF)

	// Serve until SIGINT/SIGTERM, then stop accepting and drain briefly.
	// In-flight analyses are abandoned with the process: they are pure
	// recomputable functions, so nothing is lost.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatalf("ndetectd: %v", err)
	case <-ctx.Done():
		log.Printf("ndetectd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("ndetectd: shutdown: %v", err)
		}
	}
}
