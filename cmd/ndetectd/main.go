// Command ndetectd is the analysis server: a long-lived daemon that
// accepts circuits over HTTP, runs the worst-case, average-case or
// partitioned analysis, deduplicates identical in-flight requests, and
// caches results under a canonical content address (DESIGN.md §10).
//
// Because every analysis is a pure function of (circuit, options, seed),
// a cached response is byte-identical to the cold run — and identical to
// `ndetect -json` for the same circuit and options.
//
// With -store-dir the caches become persistent (DESIGN.md §11): results
// and universe artifacts are written to a crash-safe on-disk store, so a
// restarted daemon serves previously computed work from disk and new
// option variants over known circuits skip straight past exhaustive
// simulation.
//
//	ndetectd -addr :8414 -workers 8 -cache 256 -store-dir /var/lib/ndetectd
//
//	# enqueue the embedded bbtas benchmark
//	curl -s localhost:8414/jobs -d '{"benchmark":"bbtas","analysis":"worstcase"}'
//	# poll status, then fetch the result
//	curl -s localhost:8414/jobs/<id>
//	curl -s localhost:8414/jobs/<id>/result
//	# sweep option variants over one circuit (shared universe)
//	curl -s localhost:8414/sweeps -d '{"benchmark":"bbtas","sweep":"nmax=10;k=1000;seed=1..5;def=1,2"}'
//	# follow a job live as Server-Sent Events (state + progress, §14)
//	curl -sN localhost:8414/jobs/<id>/events
//
// Endpoints: POST /jobs, POST /sweeps, GET /jobs/{id},
// GET /jobs/{id}/result, GET /jobs/{id}/events, GET /healthz,
// GET /metrics. See internal/service for the API shapes.
//
// With -debug-addr a second, separate listener serves introspection only
// (keep it private): net/http/pprof under /debug/pprof/, and /trace/{id}
// dumping a job's stage spans as JSON. Every API request is logged with
// method, path (which carries the job's content-address hash), status,
// bytes and duration.
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: it stops accepting
// jobs (new submissions answer 503), drains in-flight analyses for up to
// -drain, flushes the store, and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ndetect/internal/fault"
	"ndetect/internal/obs"
	"ndetect/internal/service"
	"ndetect/internal/sim"
	"ndetect/internal/store"
)

func main() {
	var (
		addrF     = flag.String("addr", ":8414", "listen address")
		workersF  = flag.Int("workers", 0, "server-wide worker budget, split across concurrent jobs (0 = one per CPU; DESIGN.md §5/§10)")
		cacheF    = flag.Int("cache", service.DefaultCacheEntries, "result cache capacity (LRU entries)")
		storeF    = flag.String("store-dir", "", "persistent artifact store directory (empty = in-memory caches only; DESIGN.md §11)")
		storeMaxF = flag.Int64("store-max-bytes", 0, "artifact store size bound in bytes (0 = default 1 GiB; LRU eviction)")
		modelF    = flag.String("fault-model", "", `fault model filled into submissions that name none ("" = the stuck-at + bridging default); requests carrying their own options.fault_model are unaffected (DESIGN.md §12)`)
		drainF    = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for draining in-flight analyses")
		debugF    = flag.String("debug-addr", "", "separate introspection listener: net/http/pprof and /trace/{id} span dumps (empty = off; keep private, DESIGN.md §14)")
		queueF    = flag.Int("max-queue", service.DefaultMaxQueue, "accept-queue bound: submissions beyond it shed with 503 + Retry-After (0 = unbounded; DESIGN.md §15)")
		quotaF    = flag.Float64("quota-rps", 0, "per-client submission quota in requests/second, keyed by X-Ndetect-Client or remote host (0 = off; over-quota submits shed with 429)")
		burstF    = flag.Int("quota-burst", 0, "per-client quota burst size (0 = 2×quota-rps)")
		sampleF   = flag.Int("access-log-sample", 1, "log every Nth API request (0 = off, 1 = all; responses ≥500 are always logged)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: ndetectd [-addr :8414] [-workers N] [-cache N] [-store-dir DIR] [-store-max-bytes N] [-fault-model ID] [-drain 30s] [-debug-addr :8415] [-max-queue N] [-quota-rps R] [-quota-burst N] [-access-log-sample N]")
		os.Exit(2)
	}
	if _, err := fault.Resolve(*modelF); err != nil {
		log.Fatalf("ndetectd: %v (registered models: %v)", err, fault.ModelIDs())
	}

	var st *store.Store
	if *storeF != "" {
		var err error
		if st, err = store.Open(*storeF, store.Options{MaxBytes: *storeMaxF}); err != nil {
			log.Fatalf("ndetectd: %v", err)
		}
	}

	m := service.NewManager(service.Config{
		Workers: *workersF, CacheEntries: *cacheF, Store: st,
		DefaultFaultModel: *modelF,
		MaxQueue:          *queueF,
		QuotaRPS:          *quotaF,
		QuotaBurst:        *burstF,
	})
	api := service.NewServer(m)
	srv := &http.Server{
		Addr:              *addrF,
		Handler:           obs.AccessLogSampled(log.Printf, *sampleF, api.Handler()),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if *debugF != "" {
		dbg := &http.Server{
			Addr:              *debugF,
			Handler:           api.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("ndetectd: debug listener: %v", err)
			}
		}()
		log.Printf("ndetectd: debug listener on %s (pprof + /trace/{id})", *debugF)
	}

	storeDesc := "none"
	if st != nil {
		storeDesc = st.Dir()
	}
	log.Printf("ndetectd: listening on %s (workers=%d, cache=%d entries, store=%s)",
		*addrF, sim.ResolveWorkers(*workersF), *cacheF, storeDesc)

	// Serve until SIGINT/SIGTERM, then shut down gracefully: stop
	// accepting (HTTP first, then the manager), drain in-flight analyses
	// so their results reach the store, and close the store. Analyses
	// still running at the -drain deadline are abandoned with the process
	// — they are pure recomputable functions, so nothing is lost beyond
	// the cache warmth.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatalf("ndetectd: %v", err)
	case <-ctx.Done():
		log.Printf("ndetectd: shutting down (draining up to %s)", *drainF)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainF)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("ndetectd: shutdown: %v", err)
		}
		if err := m.Drain(shutdownCtx); err != nil {
			log.Printf("ndetectd: drain: %v (abandoning in-flight analyses)", err)
		}
		if st != nil {
			if err := st.Close(); err != nil {
				log.Printf("ndetectd: store close: %v", err)
			}
		}
		log.Printf("ndetectd: bye")
	}
}
