package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func doc(pairs map[string]float64) *Document {
	d := &Document{}
	for name, mbs := range pairs {
		d.Benchmarks = append(d.Benchmarks, Result{
			Name:    name,
			NsPerOp: 1,
			Metrics: map[string]float64{"MB/s": mbs},
		})
	}
	return d
}

func writeBaseline(t *testing.T, d *Document) string {
	t.Helper()
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestStreamRatiosNormalizeByMemcpy(t *testing.T) {
	r, err := streamRatios(doc(map[string]float64{
		"MemBandwidth":     10000,
		"EngineStream/w64": 700,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if got := r["EngineStream/w64"]; got != 0.07 {
		t.Fatalf("ratio = %v, want 0.07", got)
	}
}

func TestStreamRatiosTakeBestSample(t *testing.T) {
	// -count N emits duplicate names; the best sample must win on both
	// sides of the ratio.
	d := doc(map[string]float64{"MemBandwidth": 8000})
	d.Benchmarks = append(d.Benchmarks,
		Result{Name: "MemBandwidth", NsPerOp: 1, Metrics: map[string]float64{"MB/s": 12000}},
		Result{Name: "EngineStream/w64", NsPerOp: 1, Metrics: map[string]float64{"MB/s": 400}},
		Result{Name: "EngineStream/w64", NsPerOp: 1, Metrics: map[string]float64{"MB/s": 600}},
	)
	r, err := streamRatios(d)
	if err != nil {
		t.Fatal(err)
	}
	if got := r["EngineStream/w64"]; got != 0.05 {
		t.Fatalf("ratio = %v, want 600/12000 = 0.05", got)
	}
}

func TestStreamRatiosRejectIncompleteRuns(t *testing.T) {
	if _, err := streamRatios(doc(map[string]float64{"EngineStream/w64": 700})); err == nil {
		t.Fatal("missing MemBandwidth accepted")
	}
	if _, err := streamRatios(doc(map[string]float64{"MemBandwidth": 10000})); err == nil {
		t.Fatal("run with no gated benchmarks accepted")
	}
}

func TestGatePassesWithinTolerance(t *testing.T) {
	base := writeBaseline(t, doc(map[string]float64{
		"MemBandwidth":       10000,
		"EngineStream/w64":   700,
		"EngineStream/bbara": 300,
	}))
	// 15% down on one, 10% up on the other: both inside the 20% band.
	cur := doc(map[string]float64{
		"MemBandwidth":       10000,
		"EngineStream/w64":   595,
		"EngineStream/bbara": 330,
	})
	if err := runGate(cur, base); err != nil {
		t.Fatalf("gate failed inside tolerance: %v", err)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	base := writeBaseline(t, doc(map[string]float64{
		"MemBandwidth":     10000,
		"EngineStream/w64": 700,
	}))
	cur := doc(map[string]float64{
		"MemBandwidth":     10000,
		"EngineStream/w64": 500, // -28.6%
	})
	err := runGate(cur, base)
	if err == nil || !strings.Contains(err.Error(), "EngineStream/w64") {
		t.Fatalf("gate did not flag the regression: %v", err)
	}
}

func TestGateCancelsMachineSpeed(t *testing.T) {
	// A uniformly slower machine (half the memcpy bandwidth, half the
	// stream throughput) must pass: the ratio is unchanged.
	base := writeBaseline(t, doc(map[string]float64{
		"MemBandwidth":     12000,
		"EngineStream/w64": 700,
	}))
	cur := doc(map[string]float64{
		"MemBandwidth":     6000,
		"EngineStream/w64": 350,
	})
	if err := runGate(cur, base); err != nil {
		t.Fatalf("gate failed on a uniformly slower machine: %v", err)
	}
}

func TestGateFailsOnLostCoverage(t *testing.T) {
	base := writeBaseline(t, doc(map[string]float64{
		"MemBandwidth":       10000,
		"EngineStream/w64":   700,
		"EngineStream/bbara": 300,
	}))
	cur := doc(map[string]float64{
		"MemBandwidth":     10000,
		"EngineStream/w64": 700,
	})
	err := runGate(cur, base)
	if err == nil || !strings.Contains(err.Error(), "bbara") {
		t.Fatalf("gate did not flag missing gated benchmark: %v", err)
	}
}
