package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"ndetect/internal/obs"
)

// The serving SLO gate (DESIGN.md §15): `benchjson -slo` closes the load
// loop by judging the ndetect.load/v1 documents merged into the run.
// Three invariants hold unconditionally — any identity mismatch fails
// (the §7 determinism contract was observed broken end to end), any
// non-shed 5xx fails (sheds are designed refusals; other 5xx are not),
// and the document must carry at least one class with completed
// requests. Two more hold only for runs NOT marked deliberate-overload:
// zero sheds and zero transport errors, and every class's p99 — always
// recomputed from the latency buckets via HistogramSnapshot.Quantile,
// never trusted from the stamped fields — within the -slo-p99 budget.

// defaultSLOP99 is the per-class p99 latency budget in seconds when
// -slo-p99 is not given: generous against local noise, far below the
// collapse regime the gate exists to catch.
const defaultSLOP99 = 2.0

// readLoadDocument parses and sanity-checks one ndetect.load/v1 file.
func readLoadDocument(path string) (obs.LoadDocument, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return obs.LoadDocument{}, err
	}
	var ld obs.LoadDocument
	if err := json.Unmarshal(raw, &ld); err != nil {
		return obs.LoadDocument{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	if ld.Schema != obs.LoadSchema {
		return obs.LoadDocument{}, fmt.Errorf("%s: schema %q, want %q", path, ld.Schema, obs.LoadSchema)
	}
	return ld, nil
}

// runSLOGate judges every merged load document and returns an error
// listing all violations. p99Budget is the per-class latency budget in
// seconds.
func runSLOGate(doc *Document, p99Budget float64) error {
	if len(doc.Load) == 0 {
		return fmt.Errorf("no load documents in the run (merge one with -load)")
	}
	var failures []string
	for i := range doc.Load {
		failures = append(failures, judgeLoad(&doc.Load[i], p99Budget)...)
	}
	if len(failures) > 0 {
		return fmt.Errorf("serving SLOs violated:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// judgeLoad applies the SLO invariants to one load document, printing a
// verdict line per class and returning the violations.
func judgeLoad(ld *obs.LoadDocument, p99Budget float64) []string {
	label := ld.Tag
	if label == "" {
		label = ld.Target
	}
	mode := "steady-state"
	if ld.DeliberateOverload {
		mode = "deliberate-overload"
	}
	fmt.Fprintf(os.Stderr, "SLO gate %s (%s, p99 budget %s):\n", label, mode, formatBudget(p99Budget))

	var failures []string
	fail := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf("%s: ", label)+fmt.Sprintf(format, args...))
	}
	if ld.IdentityMismatches > 0 {
		fail("%d identity mismatches (served results diverged from the driver)", ld.IdentityMismatches)
	}
	var done int64
	for i := range ld.Classes {
		c := &ld.Classes[i]
		done += c.Requests
		p99 := c.Latency.Quantile(0.99)
		status := "ok"
		switch {
		case c.Errors5xx > 0:
			status = "FAIL"
			fail("class %s: %d non-shed 5xx", c.Name, c.Errors5xx)
		case !ld.DeliberateOverload && c.Shed > 0:
			status = "FAIL"
			fail("class %s: %d sheds in a steady-state run", c.Name, c.Shed)
		case !ld.DeliberateOverload && c.Errors > 0:
			status = "FAIL"
			fail("class %s: %d errors", c.Name, c.Errors)
		case !ld.DeliberateOverload && c.Latency.Count > 0 && p99 > p99Budget:
			status = "FAIL"
			fail("class %s: p99 %.3fs over the %.3fs budget", c.Name, p99, p99Budget)
		}
		fmt.Fprintf(os.Stderr, "  %-8s done %5d  shed %4d  5xx %3d  err %3d  p99 %8s  %s\n",
			c.Name, c.Requests, c.Shed, c.Errors5xx, c.Errors, formatBudget(p99), status)
	}
	if done == 0 {
		fail("no completed requests in any class")
	}
	return failures
}

// formatBudget renders a seconds value for the verdict lines ("-" for
// NaN — a class with no latency observations).
func formatBudget(s float64) string {
	if s != s { // NaN
		return "-"
	}
	return fmt.Sprintf("%.3fs", s)
}
