package main

import "testing"

func TestStampSchemaAndMemcpyBaseline(t *testing.T) {
	d := doc(map[string]float64{
		"MemBandwidth":     8000,
		"EngineStream/w64": 700,
	})
	// -count N emits duplicate baseline samples; the best one is stamped.
	d.Benchmarks = append(d.Benchmarks,
		Result{Name: "MemBandwidth", NsPerOp: 1, Metrics: map[string]float64{"MB/s": 12000}})
	d.stamp()
	if d.Schema != BenchSchema {
		t.Fatalf("schema = %q, want %q", d.Schema, BenchSchema)
	}
	if d.MemcpyMBps != 12000 {
		t.Fatalf("memcpy_mb_s = %v, want the best sample 12000", d.MemcpyMBps)
	}
}

func TestStampWithoutMemcpyBaseline(t *testing.T) {
	// A run that skipped the memcpy benchmark still gets the schema, but
	// no host baseline (omitted from the JSON via omitempty).
	d := doc(map[string]float64{"EngineStream/w64": 700})
	d.stamp()
	if d.Schema != BenchSchema {
		t.Fatalf("schema = %q, want %q", d.Schema, BenchSchema)
	}
	if d.MemcpyMBps != 0 {
		t.Fatalf("memcpy_mb_s = %v, want 0", d.MemcpyMBps)
	}
}

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkEngineStream/w64-8   120  9876543 ns/op  701.5 MB/s  12 B/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "EngineStream/w64" || r.Procs != 8 || r.Iterations != 120 {
		t.Fatalf("parsed %+v", r)
	}
	if r.NsPerOp != 9876543 || r.Metrics["MB/s"] != 701.5 || r.Metrics["B/op"] != 12 {
		t.Fatalf("parsed metrics %+v", r)
	}
	if _, ok := parseBenchLine("ok  	ndetect/internal/sim	1.2s"); ok {
		t.Fatal("non-benchmark line parsed")
	}
}
