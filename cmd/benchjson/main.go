// Command benchjson converts the text output of `go test -bench` into JSON,
// so CI can archive benchmark results as a machine-readable trajectory
// (one JSON document per run; see .github/workflows/ci.yml).
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x . | benchjson > bench.json
//	benchjson -tag pr123 < bench.txt
//	benchjson -gate benchmarks/baseline.json < bench.txt
//
// With -gate, the parsed run is additionally checked against a committed
// baseline document: the streaming kernel's throughput, normalized by the
// same run's memcpy bandwidth, must stay within gateTolerance of the
// baseline ratio (see gate.go). A regression exits non-zero, failing CI.
//
// Non-benchmark lines (test output, PASS/ok) pass through to stderr with
// -echo, and are dropped otherwise. Context lines (goos/goarch/pkg/cpu) are
// captured into the document header.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ndetect/internal/obs"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name without the "Benchmark" prefix and
	// without the -GOMAXPROCS suffix, e.g. "RunAllParallel" or
	// "Encodings/one-hot".
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix of the line (1 when absent).
	Procs int `json:"procs"`
	// Iterations is b.N for the measured run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline metric.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every further "value unit" pair (B/op, allocs/op,
	// custom b.ReportMetric units).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// BenchSchema versions the document layout, stamped into every emitted
// document so archived BENCH_*.json trajectories are self-describing:
// v2 added the schema field itself and the memcpy_mb_s host baseline;
// v3 added the load field, merging ndetect.load/v1 summaries from
// ndetect-loadgen into the trajectory. Every added field is optional, so
// v2 (and pre-v2) archives still parse — old documents simply carry no
// load runs.
const BenchSchema = "ndetect.bench/v3"

// Document is the emitted JSON root.
type Document struct {
	// Schema is the document layout version (BenchSchema). Absent in
	// pre-v2 archives.
	Schema string `json:"schema,omitempty"`
	Tag    string `json:"tag,omitempty"`
	// MemcpyMBps is the run's best MemBandwidth MB/s sample — the host
	// speed constant the perf gate normalizes by, surfaced at the top
	// level so trajectory tooling can compare hosts without re-deriving
	// it from the benchmark list. Zero when the run did not include the
	// memcpy baseline.
	MemcpyMBps float64           `json:"memcpy_mb_s,omitempty"`
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []Result          `json:"benchmarks"`
	// Load holds the ndetect.load/v1 summaries merged into this run with
	// -load (v3) — the serving-side trajectory riding along with the
	// kernel benchmarks.
	Load []obs.LoadDocument `json:"load,omitempty"`
}

// stamp fills the derived document fields after parsing: the schema
// version and the host memcpy baseline.
func (doc *Document) stamp() {
	doc.Schema = BenchSchema
	for _, b := range doc.Benchmarks {
		if b.Name == memBandwidthName {
			doc.MemcpyMBps = max(doc.MemcpyMBps, b.Metrics["MB/s"])
		}
	}
}

// fileList collects a repeatable -load flag.
type fileList []string

func (f *fileList) String() string     { return strings.Join(*f, ",") }
func (f *fileList) Set(v string) error { *f = append(*f, v); return nil }

func main() {
	tag := flag.String("tag", "", "optional run label recorded in the document")
	echo := flag.Bool("echo", false, "echo non-benchmark lines to stderr")
	gate := flag.String("gate", "", "baseline JSON to gate stream throughput against (see gate.go); non-zero exit on regression")
	var loads fileList
	flag.Var(&loads, "load", "ndetect.load/v1 document to merge into the run (repeatable)")
	slo := flag.Bool("slo", false, "gate the merged load documents against the serving SLOs (see slo.go); non-zero exit on violation")
	sloP99 := flag.Float64("slo-p99", defaultSLOP99, "per-class p99 latency budget in seconds for -slo")
	flag.Parse()

	doc := Document{Tag: *tag, Context: map[string]string{}, Benchmarks: []Result{}}
	for _, path := range loads {
		ld, err := readLoadDocument(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		doc.Load = append(doc.Load, ld)
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if r, ok := parseBenchLine(line); ok {
			doc.Benchmarks = append(doc.Benchmarks, r)
			continue
		}
		if k, v, ok := parseContextLine(line); ok {
			doc.Context[k] = v
			continue
		}
		if *echo {
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	doc.stamp()

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *gate != "" {
		if err := runGate(&doc, *gate); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: perf gate:", err)
			os.Exit(1)
		}
	}
	if *slo {
		if err := runSLOGate(&doc, *sloP99); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: SLO gate:", err)
			os.Exit(1)
		}
	}
}

// parseContextLine captures the "key: value" preamble go test prints before
// benchmark lines (goos, goarch, pkg, cpu).
func parseContextLine(line string) (key, val string, ok bool) {
	for _, k := range []string{"goos", "goarch", "pkg", "cpu"} {
		if strings.HasPrefix(line, k+":") {
			return k, strings.TrimSpace(strings.TrimPrefix(line, k+":")), true
		}
	}
	return "", "", false
}

// parseBenchLine parses one "BenchmarkName-P  N  V ns/op [V unit]..." line.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 1
	if i := strings.LastIndex(name, "-"); i >= 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}

	r := Result{Name: name, Procs: procs, Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = v
			seenNs = true
			continue
		}
		if r.Metrics == nil {
			r.Metrics = map[string]float64{}
		}
		r.Metrics[unit] = v
	}
	if !seenNs {
		return Result{}, false
	}
	return r, true
}
